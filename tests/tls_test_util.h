// Shared harness for TLS tests and benches: drives a client/server pair over
// an in-memory pipe in one thread, polling a QAT engine when a side reports
// kWantAsync.
#pragma once

#include <memory>

#include "engine/qat_engine.h"
#include "net/memory_transport.h"
#include "tls/connection.h"

namespace qtls::tls::testutil {

struct PumpResult {
  bool ok = false;
  TlsResult client_last = TlsResult::kOk;
  TlsResult server_last = TlsResult::kOk;
  int want_async_events = 0;
  int iterations = 0;
};

// Steps both handshakes until completion or `max_iters`. `qat` (nullable) is
// polled whenever either side is waiting on async crypto.
inline PumpResult pump_handshake(TlsConnection* client, TlsConnection* server,
                                 engine::QatEngineProvider* qat = nullptr,
                                 int max_iters = 100000) {
  PumpResult result;
  for (int i = 0; i < max_iters; ++i) {
    result.iterations = i + 1;
    bool progress = false;
    if (!client->handshake_complete()) {
      result.client_last = client->handshake();
      if (result.client_last == TlsResult::kError) return result;
      if (result.client_last == TlsResult::kWantAsync)
        ++result.want_async_events;
      progress = true;
    }
    if (!server->handshake_complete()) {
      result.server_last = server->handshake();
      if (result.server_last == TlsResult::kError) return result;
      if (result.server_last == TlsResult::kWantAsync)
        ++result.want_async_events;
      progress = true;
    }
    if (qat) qat->poll();
    if (client->handshake_complete() && server->handshake_complete()) {
      result.ok = true;
      return result;
    }
    if (!progress) return result;
  }
  return result;
}

// Drives one side's pending read until data or a terminal result.
inline TlsResult pump_read(TlsConnection* conn, Bytes* out,
                           engine::QatEngineProvider* qat = nullptr,
                           int max_iters = 100000) {
  for (int i = 0; i < max_iters; ++i) {
    const TlsResult r = conn->read(out);
    if (r == TlsResult::kWantAsync || r == TlsResult::kWantRead) {
      if (qat) qat->poll();
      if (r == TlsResult::kWantRead) return r;
      continue;
    }
    return r;
  }
  return TlsResult::kError;
}

inline TlsResult pump_write(TlsConnection* conn, BytesView data,
                            engine::QatEngineProvider* qat = nullptr,
                            int max_iters = 100000) {
  TlsResult r = conn->write(data);
  for (int i = 0; i < max_iters && r == TlsResult::kWantAsync; ++i) {
    if (qat) qat->poll();
    r = conn->write({});  // resume the paused job
  }
  return r;
}

}  // namespace qtls::tls::testutil
