// Multi-worker deployment over real TCP loopback: N worker threads sharing
// one port via SO_REUSEPORT (the paper's §5.1 multi-worker setup), driven
// by TCP clients from the test thread.
#include <gtest/gtest.h>

#include <chrono>

#include "client/https_client.h"
#include "crypto/keystore.h"
#include "server/worker_pool.h"

namespace qtls::server {
namespace {

TEST(WorkerPool, ServesTcpClientsAcrossWorkers) {
  qat::QatDevice device;  // 3 endpoints x 12 engines

  WorkerPoolOptions options;
  options.workers = 2;
  options.tls_config.async_mode = true;
  options.tls_config.cipher_suites = {
      tls::CipherSuite::kEcdheRsaWithAes128CbcSha};
  options.response_body_size = 2048;

  WorkerPool pool(&device, &test_rsa2048(), options);
  ASSERT_TRUE(pool.start(0).is_ok());
  ASSERT_GT(pool.port(), 0);

  engine::SoftwareProvider client_provider;
  tls::TlsContextConfig ccfg;
  ccfg.cipher_suites = options.tls_config.cipher_suites;
  tls::TlsContext cctx(ccfg, &client_provider);

  client::Pool clients;
  const uint16_t port = pool.port();
  for (int i = 0; i < 6; ++i) {
    client::ClientOptions copts;
    copts.max_requests = 3;
    copts.keepalive = i % 2 == 0;
    clients.add(std::make_unique<client::HttpsClient>(
        &cctx,
        [port]() -> int {
          auto fd = net::tcp_connect(port);
          return fd.is_ok() ? fd.value() : -1;
        },
        copts, 3000 + static_cast<uint64_t>(i)));
  }

  // Workers run on their own threads; the test thread only steps clients.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  bool all_done = false;
  while (!all_done && std::chrono::steady_clock::now() < deadline) {
    all_done = true;
    for (auto& c : clients.clients()) {
      if (c->step()) all_done = false;
    }
  }
  pool.stop();

  ASSERT_TRUE(all_done) << "clients did not finish";
  const client::ClientStats cstats = clients.aggregate();
  EXPECT_EQ(cstats.errors, 0u);
  EXPECT_EQ(cstats.requests, 18u);

  const WorkerPoolStats wstats = pool.stats();
  EXPECT_EQ(wstats.totals.requests_served, 18u);
  EXPECT_EQ(wstats.totals.errors, 0u);
  EXPECT_GT(wstats.totals.async_parks, 0u);
  // Both workers were created and reported stats (kernel hashing decides
  // the accept split; totals are the invariant).
  ASSERT_EQ(wstats.per_worker_handshakes.size(), 2u);
  EXPECT_EQ(wstats.per_worker_handshakes[0] + wstats.per_worker_handshakes[1],
            wstats.totals.handshakes_completed);
}

TEST(WorkerPool, MultipleInstancesPerWorker) {
  qat::QatDevice device;
  WorkerPoolOptions options;
  options.workers = 1;
  options.instances_per_worker = 3;  // §2.3: more engines for one process
  options.tls_config.async_mode = true;
  options.tls_config.cipher_suites = {
      tls::CipherSuite::kTlsRsaWithAes128CbcSha};

  WorkerPool pool(&device, &test_rsa2048(), options);
  ASSERT_TRUE(pool.start(0).is_ok());

  engine::SoftwareProvider client_provider;
  tls::TlsContextConfig ccfg;
  ccfg.cipher_suites = options.tls_config.cipher_suites;
  tls::TlsContext cctx(ccfg, &client_provider);
  const uint16_t port = pool.port();
  client::ClientOptions copts;
  copts.max_requests = 4;
  client::HttpsClient client(
      &cctx,
      [port]() -> int {
        auto fd = net::tcp_connect(port);
        return fd.is_ok() ? fd.value() : -1;
      },
      copts);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (client.step() && std::chrono::steady_clock::now() < deadline) {
  }
  pool.stop();
  EXPECT_TRUE(client.finished());
  EXPECT_EQ(client.stats().errors, 0u);
  EXPECT_EQ(client.stats().requests, 4u);
  // Requests were spread across endpoints (instances came from different
  // endpoints; round-robin submit hits at least two of them).
  int endpoints_used = 0;
  for (int i = 0; i < device.num_endpoints(); ++i) {
    if (device.endpoint(i).fw_counters().total_requests() > 0)
      ++endpoints_used;
  }
  EXPECT_GE(endpoints_used, 2);
}

TEST(WorkerPool, TopologyPoolPlacesWorkersAndReportsFleet) {
  qat::TopologyConfig tc;
  tc.num_devices = 2;
  qat::DeviceTopology topo(tc);

  WorkerPoolOptions options;
  options.workers = 2;
  options.tls_config.async_mode = true;
  options.tls_config.cipher_suites = {
      tls::CipherSuite::kTlsRsaWithAes128CbcSha};
  // Explicit map (conf: worker_affinity) deliberately inverted vs striping
  // so the test can tell the two policies apart.
  options.worker_affinity = {1, 0};

  WorkerPool pool(&topo, &test_rsa2048(), options);
  ASSERT_TRUE(pool.start(0).is_ok());
  ASSERT_EQ(pool.topology(), &topo);
  EXPECT_EQ(pool.engine(0)->preferred_device(), 1);
  EXPECT_EQ(pool.engine(1)->preferred_device(), 0);

  engine::SoftwareProvider client_provider;
  tls::TlsContextConfig ccfg;
  ccfg.cipher_suites = options.tls_config.cipher_suites;
  tls::TlsContext cctx(ccfg, &client_provider);
  const uint16_t port = pool.port();

  // A few requests (kernel hashing decides the worker split), then the
  // operator surface: GET /stats must carry the fleet "topology" object.
  client::ClientOptions copts;
  copts.max_requests = 2;
  client::HttpsClient client(
      &cctx,
      [port]() -> int {
        auto fd = net::tcp_connect(port);
        return fd.is_ok() ? fd.value() : -1;
      },
      copts, 41);
  client::ClientOptions sopts;
  sopts.path = "/stats";
  sopts.max_requests = 1;
  client::HttpsClient stats_client(
      &cctx,
      [port]() -> int {
        auto fd = net::tcp_connect(port);
        return fd.is_ok() ? fd.value() : -1;
      },
      sopts, 42);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while ((client.step() | stats_client.step()) &&
         std::chrono::steady_clock::now() < deadline) {
  }
  pool.stop();
  EXPECT_EQ(client.stats().errors, 0u);
  ASSERT_EQ(stats_client.stats().errors, 0u);

  const std::string body(
      reinterpret_cast<const char*>(stats_client.last_body().data()),
      stats_client.last_body().size());
  EXPECT_NE(body.find("\"topology\":{\"fleet\":"), std::string::npos) << body;
  EXPECT_NE(body.find("\"preferred_device\":"), std::string::npos);
  EXPECT_NE(body.find("\"lanes\":["), std::string::npos);
  // Pool-level dump carries the same fleet JSON.
  EXPECT_NE(pool.stats_text().find("\"devices\":2"), std::string::npos);
  // All offloaded work landed on the fleet.
  EXPECT_GT(topo.device(0).fw_counters().total_requests() +
                topo.device(1).fw_counters().total_requests(),
            0u);
}

}  // namespace
}  // namespace qtls::server
