// Record data-plane regressions (DESIGN.md §11, `ctest -L dataplane`):
//  * wire parity — the iovec-chain batched TX plane must emit byte-for-byte
//    what the legacy coalesced plane emits, under random interleavings of
//    queue/queue_many/flush against a partial-write transport, for both
//    CBC-HMAC and AEAD record protection;
//  * copy meter — the new plane must memcpy strictly fewer payload bytes;
//  * RX compaction — many small records must not shift or reallocate the
//    receive buffer per record;
//  * QAT batching — a multi-fragment payload must reach the engine as ONE
//    submit_batch dispatch carrying all of its records;
//  * static-file streaming — the worker's file_root path serves files in
//    bounded chunks, 404s misses, and rejects traversal.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <random>

#include "crypto/keystore.h"
#include "engine/provider.h"
#include "engine/qat_engine.h"
#include "net/memory_transport.h"
#include "server_test_util.h"
#include "tls/record.h"

namespace qtls::tls {
namespace {

// Twin rigs: identical DRBG seeds and identical transport pacing, one on the
// batched iovec-chain plane, one on the legacy coalesced plane.
struct TwinRig {
  net::MemoryPipe pipe_new;
  net::MemoryPipe pipe_legacy;
  engine::SoftwareProvider provider{1};
  HmacDrbg rng_new{HashAlg::kSha256, to_bytes("dataplane")};
  HmacDrbg rng_legacy{HashAlg::kSha256, to_bytes("dataplane")};
  RecordLayer layer_new{&pipe_new.a(), &provider, &rng_new,
                        /*legacy_coalesced_tx=*/false};
  RecordLayer layer_legacy{&pipe_legacy.a(), &provider, &rng_legacy,
                           /*legacy_coalesced_tx=*/true};
  Bytes wire_new;
  Bytes wire_legacy;

  void set_pacing(size_t chunk_limit, size_t capacity) {
    pipe_new.set_chunk_limit(chunk_limit);
    pipe_new.set_capacity(capacity);
    pipe_legacy.set_chunk_limit(chunk_limit);
    pipe_legacy.set_capacity(capacity);
  }

  void drain() {
    uint8_t buf[256];
    for (;;) {
      const auto io = pipe_new.b().read(buf, sizeof(buf));
      if (io.status != IoStatus::kOk || io.bytes == 0) break;
      wire_new.insert(wire_new.end(), buf, buf + io.bytes);
    }
    for (;;) {
      const auto io = pipe_legacy.b().read(buf, sizeof(buf));
      if (io.status != IoStatus::kOk || io.bytes == 0) break;
      wire_legacy.insert(wire_legacy.end(), buf, buf + io.bytes);
    }
  }

  // Flush both planes to completion, draining the reader side between
  // passes (the capacity cap forces kWantWrite on both).
  void flush_all() {
    for (int guard = 0; guard < 100000; ++guard) {
      const TlsResult rn = layer_new.flush();
      const TlsResult rl = layer_legacy.flush();
      drain();
      if (rn == TlsResult::kOk && rl == TlsResult::kOk) return;
    }
    FAIL() << "flush_all did not converge";
  }
};

CbcHmacKeys test_cbc_keys() {
  CbcHmacKeys k;
  k.enc_key = Bytes(16, 0x42);
  k.mac_key = Bytes(20, 0x24);
  return k;
}

AeadKeys test_aead_keys() {
  AeadKeys k;
  k.key = Bytes(16, 0x51);
  k.iv = Bytes(12, 0x52);
  return k;
}

// Random interleaving of queue / queue_many / flush against a partial-write
// transport; asserts wire parity, a working RX round trip of the new plane's
// stream, and the copy-meter ordering.
void run_wire_parity(bool aead, uint64_t seed) {
  TwinRig rig;
  if (aead) {
    rig.layer_new.enable_encryption_tx(test_aead_keys());
    rig.layer_legacy.enable_encryption_tx(test_aead_keys());
  } else {
    rig.layer_new.enable_encryption_tx(test_cbc_keys());
    rig.layer_legacy.enable_encryption_tx(test_cbc_keys());
  }
  rig.set_pacing(/*chunk_limit=*/97, /*capacity=*/4096);

  std::mt19937_64 prng(seed);
  Bytes expected;  // every queued plaintext byte, in order

  const auto make_payload = [&](size_t max_len) {
    const size_t len = prng() % (max_len + 1);
    Bytes p(len);
    for (auto& b : p) b = static_cast<uint8_t>(prng());
    return p;
  };

  for (int step = 0; step < 48; ++step) {
    switch (prng() % 4) {
      case 0: {  // small payload (single record, possibly empty)
        const Bytes p = make_payload(5000);
        ASSERT_TRUE(
            rig.layer_new.queue(ContentType::kApplicationData, p).is_ok());
        ASSERT_TRUE(
            rig.layer_legacy.queue(ContentType::kApplicationData, p).is_ok());
        append(expected, p);
        break;
      }
      case 1: {  // fragmenting payload (> 16 KB)
        Bytes p = make_payload(24 * 1024);
        p.resize(p.size() + kMaxPlaintextFragment + 1,
                 static_cast<uint8_t>(prng()));
        ASSERT_TRUE(
            rig.layer_new.queue(ContentType::kApplicationData, p).is_ok());
        ASSERT_TRUE(
            rig.layer_legacy.queue(ContentType::kApplicationData, p).is_ok());
        append(expected, p);
        break;
      }
      case 2: {  // queue_many: one batch spanning several payloads
        std::vector<Bytes> storage;
        const size_t n = 2 + prng() % 3;
        for (size_t i = 0; i < n; ++i) storage.push_back(make_payload(8000));
        std::vector<BytesView> views;
        for (const Bytes& p : storage) {
          views.emplace_back(p);
          append(expected, p);
        }
        ASSERT_TRUE(rig.layer_new
                        .queue_many(ContentType::kApplicationData, views)
                        .is_ok());
        // The legacy plane has no multi-payload entry; per-payload queue is
        // its defined equivalent (same records, same order).
        for (const BytesView& v : views)
          ASSERT_TRUE(
              rig.layer_legacy.queue(ContentType::kApplicationData, v).is_ok());
        break;
      }
      case 3: {  // partial flush + drain
        (void)rig.layer_new.flush();
        (void)rig.layer_legacy.flush();
        rig.drain();
        break;
      }
    }
  }
  rig.flush_all();

  ASSERT_EQ(rig.wire_new.size(), rig.wire_legacy.size());
  EXPECT_EQ(rig.wire_new, rig.wire_legacy)
      << "wire divergence between batched and legacy TX planes";
  EXPECT_EQ(rig.layer_new.records_sent(), rig.layer_legacy.records_sent());
  EXPECT_EQ(rig.layer_new.bytes_sent(), rig.layer_legacy.bytes_sent());
  // Copy meter: the iovec-chain plane must beat the coalesced baseline (it
  // only pays the sealed-append the engine makes; the legacy plane re-stages
  // every wire byte).
  if (!expected.empty()) {
    EXPECT_LT(rig.layer_new.bytes_copied(), rig.layer_legacy.bytes_copied());
  }

  // RX round trip: the new plane's stream decodes back to the queued bytes.
  net::MemoryPipe rx_pipe;
  engine::SoftwareProvider rx_provider{2};
  HmacDrbg rx_rng{HashAlg::kSha256, to_bytes("rx")};
  RecordLayer rx{&rx_pipe.b(), &rx_provider, &rx_rng};
  if (aead) {
    rx.enable_encryption_rx(test_aead_keys());
  } else {
    rx.enable_encryption_rx(test_cbc_keys());
  }
  size_t fed = 0;
  Bytes decoded;
  int guard = 0;
  while (decoded.size() < expected.size() && guard++ < 1000000) {
    if (fed < rig.wire_new.size()) {
      const size_t n = std::min<size_t>(1024, rig.wire_new.size() - fed);
      const auto io = rx_pipe.a().write(rig.wire_new.data() + fed, n);
      ASSERT_EQ(io.status, IoStatus::kOk);
      fed += io.bytes;
    }
    for (;;) {
      const auto outcome = rx.read_record();
      if (!outcome.record.has_value()) {
        ASSERT_EQ(outcome.result, TlsResult::kWantRead);
        break;
      }
      append(decoded, outcome.record->payload);
    }
  }
  EXPECT_EQ(decoded, expected);
}

TEST(RecordDataPlane, WireParityCbcHmac) { run_wire_parity(false, 1); }
TEST(RecordDataPlane, WireParityCbcHmacAltSeed) { run_wire_parity(false, 7); }
TEST(RecordDataPlane, WireParityAead) { run_wire_parity(true, 2); }
TEST(RecordDataPlane, WireParityAeadAltSeed) { run_wire_parity(true, 9); }

// Many small records: the receive buffer must consume via the offset cursor
// (amortized compaction), not shift or reallocate per record.
TEST(RecordDataPlane, RxCompactionAmortized) {
  net::MemoryPipe pipe;
  engine::SoftwareProvider provider{1};
  HmacDrbg rng_a{HashAlg::kSha256, to_bytes("a")};
  HmacDrbg rng_b{HashAlg::kSha256, to_bytes("b")};
  RecordLayer a{&pipe.a(), &provider, &rng_a};
  RecordLayer b{&pipe.b(), &provider, &rng_b};

  constexpr int kRecords = 2000;
  const Bytes payload(32, 0x5c);
  for (int i = 0; i < kRecords; ++i) {
    ASSERT_TRUE(a.queue(ContentType::kApplicationData, payload).is_ok());
    ASSERT_EQ(a.flush(), TlsResult::kOk);
    const auto outcome = b.read_record();
    ASSERT_TRUE(outcome.record.has_value()) << i;
    ASSERT_EQ(outcome.record->payload, payload);
  }
  EXPECT_EQ(b.records_received(), static_cast<uint64_t>(kRecords));
  // 2000 × 37-byte records ≈ 74 KB of wire; the 16 KB compaction threshold
  // allows a handful of prefix erasures, never one per record.
  EXPECT_LE(b.rx_compactions(), 16u);
  // No per-record reallocation either: capacity stays near the threshold,
  // nowhere near the total stream size.
  EXPECT_LE(b.recv_buffer_capacity(), 64u * 1024);
}

// A 64 KB payload fragments into four records which must reach the QAT
// engine as ONE submit_batch dispatch (acceptance: batches > 1 op).
TEST(RecordDataPlane, QatSealBatchCarriesAllFragments) {
  qat::DeviceConfig dcfg;
  dcfg.num_endpoints = 1;
  dcfg.engines_per_endpoint = 8;
  qat::QatDevice device(dcfg);
  engine::QatEngineConfig qcfg;
  qcfg.offload_mode = engine::OffloadMode::kSync;  // self-polls, no fibers
  engine::QatEngineProvider qat(device.allocate_instance(), qcfg);

  net::MemoryPipe pipe;
  engine::SoftwareProvider sw{7};
  HmacDrbg rng_a{HashAlg::kSha256, to_bytes("qa")};
  HmacDrbg rng_b{HashAlg::kSha256, to_bytes("qb")};
  RecordLayer a{&pipe.a(), &qat, &rng_a};
  RecordLayer b{&pipe.b(), &sw, &rng_b};
  const CbcHmacKeys keys = test_cbc_keys();
  a.enable_encryption_tx(keys);
  b.enable_encryption_rx(keys);

  const Bytes big(64 * 1024, 0x7e);  // exactly 4 × 16 KB fragments
  ASSERT_TRUE(a.queue(ContentType::kApplicationData, big).is_ok());
  ASSERT_EQ(a.flush(), TlsResult::kOk);

  const engine::QatEngineStats& stats = qat.stats();
  EXPECT_GE(stats.seal_batches, 1u);
  EXPECT_EQ(stats.max_seal_batch, 4u);
  EXPECT_GE(stats.seal_batch_ops, 4u);

  Bytes decoded;
  while (decoded.size() < big.size()) {
    const auto outcome = b.read_record();
    ASSERT_TRUE(outcome.record.has_value());
    append(decoded, outcome.record->payload);
  }
  EXPECT_EQ(decoded, big);
}

}  // namespace
}  // namespace qtls::tls

namespace qtls::server {
namespace {

using testutil::run_to_completion;
using testutil::socketpair_connector;

struct FileRig {
  engine::SoftwareProvider server_provider{3};
  engine::SoftwareProvider client_provider{99};
  std::unique_ptr<tls::TlsContext> server_ctx;
  std::unique_ptr<tls::TlsContext> client_ctx;
  std::unique_ptr<Worker> worker;

  explicit FileRig(WorkerConfig wcfg) {
    tls::TlsContextConfig scfg;
    scfg.is_server = true;
    scfg.drbg_seed = 1;
    server_ctx = std::make_unique<tls::TlsContext>(scfg, &server_provider);
    server_ctx->credentials().rsa_key = &test_rsa2048();
    tls::TlsContextConfig ccfg;
    ccfg.drbg_seed = 2;
    client_ctx = std::make_unique<tls::TlsContext>(ccfg, &client_provider);
    worker = std::make_unique<Worker>(server_ctx.get(), nullptr, wcfg);
  }

  Bytes fetch(const std::string& path) {
    client::Pool pool;
    client::ClientOptions copts;
    copts.path = path;
    copts.max_requests = 1;
    pool.add(std::make_unique<client::HttpsClient>(
        client_ctx.get(), socketpair_connector(worker.get()), copts));
    EXPECT_TRUE(run_to_completion(worker.get(), &pool));
    EXPECT_EQ(pool.aggregate().errors, 0u);
    return static_cast<client::HttpsClient*>(pool.clients()[0].get())
        ->last_body();
  }

  // The stock client treats any non-200 as a connection failure (and would
  // retry forever); a rejected path is observed as exactly that failure.
  void expect_rejected(const std::string& path) {
    client::Pool pool;
    client::ClientOptions copts;
    copts.path = path;
    copts.max_requests = 1;
    pool.add(std::make_unique<client::HttpsClient>(
        client_ctx.get(), socketpair_connector(worker.get()), copts));
    auto& c = pool.clients()[0];
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (c->stats().errors == 0 && c->step()) {
      worker->run_once(0);
      if (std::chrono::steady_clock::now() > deadline) break;
    }
    EXPECT_GE(c->stats().errors, 1u) << path;
    EXPECT_EQ(c->stats().requests, 0u) << path;
  }
};

TEST(WorkerStaticFile, StreamsServesAndRejects) {
  char tmpl[] = "/tmp/qtls_fileroot_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string root = tmpl;
  // 150 KB: spans multiple 64 KB staging chunks, so the pread loop and the
  // mid-file resume path both run.
  Bytes content(150 * 1024);
  for (size_t i = 0; i < content.size(); ++i)
    content[i] = static_cast<uint8_t>(i % 251);
  const std::string file_path = root + "/data.bin";
  {
    std::FILE* f = std::fopen(file_path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(content.data(), 1, content.size(), f),
              content.size());
    std::fclose(f);
  }

  WorkerConfig wcfg;
  wcfg.file_root = root;
  FileRig rig(wcfg);

  // Hit: streamed byte-for-byte.
  EXPECT_EQ(rig.fetch("/data.bin"), content);
  // Miss: the worker answers 404 (the client surfaces it as a rejected
  // request, never a completed one).
  rig.expect_rejected("/missing.bin");
  // Traversal: never resolved outside the root.
  rig.expect_rejected("/../data.bin");
  rig.expect_rejected("/subdir/../../data.bin");
  // /stats keeps working with file_root set and reports the copy meter.
  const Bytes stats = rig.fetch("/stats");
  const std::string json(stats.begin(), stats.end());
  EXPECT_NE(json.find("\"record\":{"), std::string::npos);
  EXPECT_NE(json.find("\"copied_per_byte\""), std::string::npos);
  // Both 200s (data.bin + /stats) complete cleanly; the rejected fetches
  // tear down abruptly on the client side, so don't assert errors == 0.
  EXPECT_GE(rig.worker->stats().requests_served, 2u);

  ::unlink(file_path.c_str());
  ::rmdir(root.c_str());
}

}  // namespace
}  // namespace qtls::server
