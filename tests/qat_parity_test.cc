// Behavioral parity between the real-time QAT backend (src/qat/, worker
// threads) and the virtual-time backend (src/sim/, DES clock). The lock-free
// dispatch rework touched only the real-time plane; these tests pin the
// contract both planes must keep sharing: non-blocking submit with
// ring-full -> false (§3.2 retry), FIFO retrieval within an instance,
// inflight accounting from submit to poll, and one service-time model.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "qat/device.h"
#include "qat/service_time.h"
#include "sim/costs.h"
#include "sim/qat_sim.h"

namespace qtls {
namespace {

// --- shared service-time model ---------------------------------------------

// The sim's CostModel embeds qat::ServiceTimeModel and must route every op
// through it — the planes may not drift apart on engine occupancy.
TEST(QatParity, ServiceTimeModelIsShared) {
  const sim::CostModel costs;
  const qat::ServiceTimeModel reference;
  using sim::SOp;
  EXPECT_EQ(costs.qat_service(SOp::kRsaPriv),
            reference.service_ns(qat::OpKind::kRsa2048Priv));
  EXPECT_EQ(costs.qat_service(SOp::kEcdhP256),
            reference.service_ns(qat::OpKind::kEcP256));
  EXPECT_EQ(costs.qat_service(SOp::kEcdhB283),
            reference.service_ns(qat::OpKind::kEcBinary283));
  EXPECT_EQ(costs.qat_service(SOp::kPrf),
            reference.service_ns(qat::OpKind::kPrfTls12));
  EXPECT_EQ(costs.qat_service(SOp::kCipher16k),
            reference.service_ns(qat::OpKind::kCipher16k));
}

// --- ring-full -> retry semantics ------------------------------------------

// Real backend: with the engines wedged on a gated compute, submits fail
// once the bounded ring is full; draining responses re-admits submissions.
TEST(QatParity, RealRingFullThenRetrySucceeds) {
  qat::DeviceConfig cfg;
  cfg.num_endpoints = 1;
  cfg.engines_per_endpoint = 1;
  cfg.ring_capacity = 2;
  qat::QatDevice device(cfg);
  qat::CryptoInstance* inst = device.allocate_instance();

  std::atomic<bool> gate{false};
  std::atomic<int> responded{0};
  auto request = [&](uint64_t id, bool gated) {
    qat::CryptoRequest req;
    req.request_id = id;
    req.kind = qat::OpKind::kPrfTls12;
    req.compute = [&gate, gated] {
      if (gated)
        while (!gate.load(std::memory_order_acquire))
          std::this_thread::yield();
      return true;
    };
    req.on_response = [&responded](const qat::CryptoResponse&) {
      responded.fetch_add(1, std::memory_order_relaxed);
    };
    return req;
  };

  // First request wedges the single engine; subsequent ones queue until
  // the ring (plus the in-service slot) is exhausted.
  size_t accepted = 0;
  uint64_t id = 1;
  while (inst->submit(request(id, id == 1))) {
    ++accepted;
    ++id;
    ASSERT_LT(accepted, 100u) << "submit never rejected";
  }
  // Ring full: the rejection is a return value, not a block or a throw —
  // same contract as the sim below.
  EXPECT_FALSE(inst->submit(request(id, false)));
  EXPECT_GE(accepted, cfg.ring_capacity);

  // Drain and retry: the §3.2 path. Release the gate, poll everything back.
  gate.store(true, std::memory_order_release);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (responded.load() < static_cast<int>(accepted) &&
         std::chrono::steady_clock::now() < deadline) {
    inst->poll();
    std::this_thread::yield();
  }
  ASSERT_EQ(responded.load(), static_cast<int>(accepted));
  EXPECT_TRUE(inst->submit(request(id, false)));
}

// Virtual-time backend: same shape, same contract.
TEST(QatParity, SimRingFullThenRetrySucceeds) {
  sim::Simulator simulator;
  const sim::CostModel costs;
  sim::SimQatEndpoint endpoint(&simulator, &costs, /*engines=*/1);
  sim::SimQatInstance* inst = endpoint.make_instance(/*ring_capacity=*/2);

  int retrieved = 0;
  auto on_retrieved = [&retrieved] { ++retrieved; };

  EXPECT_TRUE(inst->submit(sim::SOp::kPrf, on_retrieved));
  EXPECT_TRUE(inst->submit(sim::SOp::kPrf, on_retrieved));
  EXPECT_FALSE(inst->submit(sim::SOp::kPrf, on_retrieved));  // ring full

  // Advance virtual time past both completions, drain, retry.
  simulator.run_until(10 * costs.qat_service(sim::SOp::kPrf));
  EXPECT_EQ(inst->poll(), 2u);
  EXPECT_EQ(retrieved, 2);
  EXPECT_TRUE(inst->submit(sim::SOp::kPrf, on_retrieved));
}

// --- FIFO retrieval within an instance -------------------------------------

TEST(QatParity, RealFifoWithinInstance) {
  qat::DeviceConfig cfg;
  cfg.num_endpoints = 1;
  cfg.engines_per_endpoint = 1;  // one engine => service order == ring order
  cfg.ring_capacity = 16;
  qat::QatDevice device(cfg);
  qat::CryptoInstance* inst = device.allocate_instance();

  std::vector<uint64_t> order;
  std::atomic<int> responded{0};
  for (uint64_t id = 1; id <= 8; ++id) {
    qat::CryptoRequest req;
    req.request_id = id;
    req.kind = qat::OpKind::kPrfTls12;
    req.compute = [] { return true; };
    req.on_response = [&order, &responded](const qat::CryptoResponse& r) {
      order.push_back(r.request_id);  // poll() runs callbacks sequentially
      responded.fetch_add(1, std::memory_order_release);
    };
    ASSERT_TRUE(inst->submit(req));
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (responded.load(std::memory_order_acquire) < 8 &&
         std::chrono::steady_clock::now() < deadline) {
    inst->poll();
    std::this_thread::yield();
  }
  ASSERT_EQ(order.size(), 8u);
  for (uint64_t i = 0; i < 8; ++i) EXPECT_EQ(order[i], i + 1);
}

TEST(QatParity, SimFifoWithinInstance) {
  sim::Simulator simulator;
  const sim::CostModel costs;
  sim::SimQatEndpoint endpoint(&simulator, &costs, /*engines=*/1);
  sim::SimQatInstance* inst = endpoint.make_instance(/*ring_capacity=*/16);

  std::vector<int> order;
  for (int i = 0; i < 8; ++i)
    ASSERT_TRUE(inst->submit(sim::SOp::kPrf, [&order, i] {
      order.push_back(i);
    }));
  simulator.run_until(100 * costs.qat_service(sim::SOp::kPrf));
  EXPECT_EQ(inst->poll(), 8u);
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

// --- inflight accounting ----------------------------------------------------

// Both planes count a request as inflight from accepted submit until the
// poll that retrieves it — the invariant the heuristic poller (§4.3) reads.
TEST(QatParity, InflightCountsUntilPolled) {
  // Real plane.
  qat::DeviceConfig cfg;
  cfg.num_endpoints = 1;
  cfg.engines_per_endpoint = 2;
  cfg.ring_capacity = 8;
  qat::QatDevice device(cfg);
  qat::CryptoInstance* inst = device.allocate_instance();

  std::atomic<int> computed{0};
  for (uint64_t id = 1; id <= 4; ++id) {
    qat::CryptoRequest req;
    req.request_id = id;
    req.kind = qat::OpKind::kPrfTls12;
    req.compute = [&computed] {
      computed.fetch_add(1, std::memory_order_release);
      return true;
    };
    ASSERT_TRUE(inst->submit(req));
  }
  // Even after all compute closures ran, the requests stay inflight until
  // retrieved by poll().
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (computed.load(std::memory_order_acquire) < 4 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  ASSERT_EQ(computed.load(), 4);
  EXPECT_EQ(inst->inflight(), 4u);
  size_t polled = 0;
  const auto poll_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (polled < 4 && std::chrono::steady_clock::now() < poll_deadline)
    polled += inst->poll();
  EXPECT_EQ(polled, 4u);
  EXPECT_EQ(inst->inflight(), 0u);

  // Virtual-time plane.
  sim::Simulator simulator;
  const sim::CostModel costs;
  sim::SimQatEndpoint endpoint(&simulator, &costs, /*engines=*/2);
  sim::SimQatInstance* sinst = endpoint.make_instance(/*ring_capacity=*/8);
  for (int i = 0; i < 4; ++i)
    ASSERT_TRUE(sinst->submit(sim::SOp::kPrf, [] {}));
  EXPECT_EQ(sinst->inflight_total(), 4u);
  simulator.run_until(100 * costs.qat_service(sim::SOp::kPrf));
  EXPECT_EQ(sinst->inflight_total(), 4u);  // completed but unpolled
  EXPECT_EQ(sinst->poll(), 4u);
  EXPECT_EQ(sinst->inflight_total(), 0u);
}

}  // namespace
}  // namespace qtls
