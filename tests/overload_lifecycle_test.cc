// Overload-control plane lifecycle tests (DESIGN.md §10): per-connection
// deadlines on the event loop's timer wheel (virtual clock — every timeout
// here is deterministic), admission control with shed/park past the cap,
// and graceful drain on both transports (socketpair-adopted worker and a
// TCP WorkerPool).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>

#include "client/https_client.h"
#include "crypto/keystore.h"
#include "obs/metrics.h"
#include "server/worker_pool.h"
#include "server_test_util.h"

namespace qtls::server {
namespace {

using testutil::run_to_completion;
using testutil::socketpair_connector;

uint64_t obs_counter(const char* name) {
  return obs::MetricsRegistry::global().snapshot().counter_value(name);
}

// A TLS client driven by hand against a Worker in the same thread: the test
// controls exactly when bytes move and when the (virtual) clock advances.
struct ManualClient {
  int fd;
  net::SocketTransport transport;
  tls::TlsConnection tls;

  ManualClient(tls::TlsContext* ctx, int client_fd)
      : fd(client_fd), transport(client_fd), tls(ctx, &transport) {}
};

// Single software worker with an injectable virtual clock. No QAT: every
// TLS entry point completes synchronously, so one run_once settles each
// flight and the only thing that can time out is the peer.
struct SoftRig {
  engine::SoftwareProvider server_provider{3};
  std::unique_ptr<tls::TlsContext> server_ctx;
  engine::SoftwareProvider client_provider{99};
  std::unique_ptr<tls::TlsContext> client_ctx;
  std::unique_ptr<Worker> worker;
  uint64_t vnow = 1000;  // virtual milliseconds

  explicit SoftRig(WorkerConfig wcfg) {
    tls::TlsContextConfig scfg;
    scfg.is_server = true;
    scfg.cipher_suites = {tls::CipherSuite::kTlsRsaWithAes128CbcSha};
    scfg.drbg_seed = 1;
    server_ctx = std::make_unique<tls::TlsContext>(scfg, &server_provider);
    server_ctx->credentials().rsa_key = &test_rsa2048();

    tls::TlsContextConfig ccfg;
    ccfg.cipher_suites = scfg.cipher_suites;
    ccfg.drbg_seed = 2;
    client_ctx = std::make_unique<tls::TlsContext>(ccfg, &client_provider);

    wcfg.clock = [this] { return vnow; };
    worker = std::make_unique<Worker>(server_ctx.get(), nullptr, wcfg);
  }

  // Returns the client end of a freshly adopted socketpair (or -1).
  int adopt_pair() {
    auto pair = net::make_socketpair();
    if (!pair.is_ok()) return -1;
    (void)worker->adopt(pair.value().second);
    return pair.value().first;
  }
};

bool pump_handshake(SoftRig& rig, ManualClient& client, int iters = 200) {
  for (int i = 0; i < iters; ++i) {
    const tls::TlsResult r = client.tls.handshake();
    rig.worker->run_once(0);
    if (r == tls::TlsResult::kOk && client.tls.handshake_complete())
      return true;
  }
  return false;
}

// One full request/response round trip; the response body lands in *body.
bool pump_request(SoftRig& rig, ManualClient& client, const std::string& path,
                  Bytes* body, bool keepalive = true) {
  if (client.tls.write(build_http_request(path, keepalive)) !=
      tls::TlsResult::kOk)
    return false;
  Bytes rx;
  for (int i = 0; i < 2000; ++i) {
    rig.worker->run_once(0);
    Bytes chunk;
    const tls::TlsResult r = client.tls.read(&chunk);
    if (r == tls::TlsResult::kOk) append(rx, chunk);
    else if (r != tls::TlsResult::kWantRead) return false;
    auto head = parse_http_response_head(rx);
    if (head.has_value() &&
        rx.size() >= head->header_bytes + head->content_length) {
      body->assign(rx.begin() + static_cast<long>(head->header_bytes),
                   rx.end());
      return true;
    }
  }
  return false;
}

// ----------------------------------------------------------- timeouts ----

TEST(Slowloris, HalfOpenHandshakeClosedAtDeadline) {
  WorkerConfig wcfg;
  wcfg.overload.handshake_timeout_ms = 5000;
  SoftRig rig(wcfg);
  const uint64_t obs_before = obs_counter("overload.handshake_timeout");

  const int fd = rig.adopt_pair();
  ASSERT_GE(fd, 0);
  // The trickle: two bytes of a TLS record header, then silence.
  ASSERT_EQ(::send(fd, "\x16\x03", 2, 0), 2);
  for (int i = 0; i < 5; ++i) rig.worker->run_once(0);
  EXPECT_EQ(rig.worker->alive_connections(), 1u);
  EXPECT_EQ(rig.worker->handshaking_connections(), 1u);

  // One millisecond short: nothing fires.
  rig.vnow += 4999;
  rig.worker->run_once(0);
  EXPECT_EQ(rig.worker->alive_connections(), 1u);

  rig.vnow += 2;
  rig.worker->run_once(0);
  EXPECT_EQ(rig.worker->alive_connections(), 0u);
  EXPECT_EQ(rig.worker->handshaking_connections(), 0u);
  EXPECT_EQ(rig.worker->overload_stats().handshake_timeouts, 1u);
  EXPECT_EQ(obs_counter("overload.handshake_timeout"), obs_before + 1);

  // The peer got a fatal user_canceled alert, then FIN.
  uint8_t buf[16];
  const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
  ASSERT_GE(n, 7);
  EXPECT_EQ(buf[0], 0x15);  // ContentType alert
  EXPECT_EQ(::recv(fd, buf, sizeof buf, 0), 0);  // EOF
  ::close(fd);
}

TEST(Slowloris, AsyncParkedHandshakeTimeoutReclaimsSlotAndCapSheds) {
  // QAT worker with kTimer polling but no polling thread: an offloaded op
  // stays in flight until someone polls, which freezes the handshake at the
  // park — the async flavour of a half-open connection.
  qat::QatDevice device;
  engine::QatEngineConfig qcfg;
  engine::QatEngineProvider qat(device.allocate_instance(), qcfg);

  tls::TlsContextConfig scfg;
  scfg.is_server = true;
  scfg.async_mode = true;
  scfg.cipher_suites = {tls::CipherSuite::kTlsRsaWithAes128CbcSha};
  scfg.drbg_seed = 1;
  tls::TlsContext server_ctx(scfg, &qat);
  server_ctx.credentials().rsa_key = &test_rsa2048();

  engine::SoftwareProvider client_provider(99);
  tls::TlsContextConfig ccfg;
  ccfg.cipher_suites = scfg.cipher_suites;
  ccfg.drbg_seed = 2;
  tls::TlsContext client_ctx(ccfg, &client_provider);

  uint64_t vnow = 1000;
  WorkerConfig wcfg;
  wcfg.poll = PollScheme::kTimer;  // nobody polls: parks never resume
  wcfg.overload.handshake_timeout_ms = 3000;
  wcfg.overload.max_async_inflight = 1;
  wcfg.clock = [&vnow] { return vnow; };
  Worker worker(&server_ctx, &qat, wcfg);

  auto pair = net::make_socketpair();
  ASSERT_TRUE(pair.is_ok());
  ASSERT_TRUE(worker.adopt(pair.value().second).is_ok());
  ManualClient client(&client_ctx, pair.value().first);

  for (int i = 0; i < 200 && qat.inflight_total() == 0; ++i) {
    (void)client.tls.handshake();
    worker.run_once(0);
  }
  ASSERT_GT(qat.inflight_total(), 0u);
  ASSERT_GE(worker.stats().async_parks, 1u);

  // Past the async-inflight cap, a new accept is shed pre-handshake.
  auto pair2 = net::make_socketpair();
  ASSERT_TRUE(pair2.is_ok());
  ASSERT_TRUE(worker.adopt(pair2.value().second).is_ok());
  EXPECT_EQ(worker.overload_stats().shed, 1u);
  uint8_t b;
  EXPECT_EQ(::recv(pair2.value().first, &b, 1, 0), 0);  // clean FIN, no data
  ::close(pair2.value().first);

  // Deadline expiry: the connection dies, the paused fiber is drained and
  // the in-flight slot comes back (the PR 2 abandoned-op sweep).
  vnow += 3001;
  worker.run_once(0);
  EXPECT_EQ(worker.alive_connections(), 0u);
  EXPECT_EQ(worker.overload_stats().handshake_timeouts, 1u);
  EXPECT_EQ(qat.inflight_total(), 0u);
  ::close(client.fd);
}

TEST(Slowloris, WriteStallClosedDespitePartialProgress) {
  WorkerConfig wcfg;
  wcfg.overload.write_stall_timeout_ms = 10000;
  wcfg.response_body_size = 1 << 20;  // far beyond the socketpair buffer
  SoftRig rig(wcfg);

  const int fd = rig.adopt_pair();
  ASSERT_GE(fd, 0);
  ManualClient client(rig.client_ctx.get(), fd);
  ASSERT_TRUE(pump_handshake(rig, client));

  // Request the megabyte, then refuse to read it: the server's transport
  // backpressures and the write-stall deadline arms.
  ASSERT_EQ(client.tls.write(build_http_request("/index.html", true)),
            tls::TlsResult::kOk);
  for (int i = 0; i < 10; ++i) rig.worker->run_once(0);
  EXPECT_EQ(rig.worker->alive_connections(), 1u);

  // Trickle like the classic attack: drain a sliver now and then. Partial
  // progress must NOT push the deadline out.
  uint8_t sink[65536];
  rig.vnow += 4000;
  ASSERT_GT(::recv(fd, sink, sizeof sink, 0), 0);
  for (int i = 0; i < 5; ++i) rig.worker->run_once(0);
  rig.vnow += 4000;
  ASSERT_GT(::recv(fd, sink, sizeof sink, 0), 0);
  for (int i = 0; i < 5; ++i) rig.worker->run_once(0);
  EXPECT_EQ(rig.worker->alive_connections(), 1u);  // 8s < 10s: still alive

  rig.vnow += 2001;  // 10001 ms after the stall began
  rig.worker->run_once(0);
  EXPECT_EQ(rig.worker->alive_connections(), 0u);
  EXPECT_EQ(rig.worker->overload_stats().write_stall_timeouts, 1u);
  ::close(fd);
}

TEST(Timeouts, IdleKeepaliveClosedWithCloseNotify) {
  WorkerConfig wcfg;
  wcfg.overload.idle_timeout_ms = 30000;
  SoftRig rig(wcfg);

  const int fd = rig.adopt_pair();
  ASSERT_GE(fd, 0);
  ManualClient client(rig.client_ctx.get(), fd);
  ASSERT_TRUE(pump_handshake(rig, client));
  Bytes body;
  ASSERT_TRUE(pump_request(rig, client, "/index.html", &body));
  EXPECT_EQ(rig.worker->idle_connections(), 1u);

  rig.vnow += 30001;
  rig.worker->run_once(0);
  EXPECT_EQ(rig.worker->alive_connections(), 0u);
  EXPECT_EQ(rig.worker->overload_stats().idle_timeouts, 1u);

  // An orderly goodbye: the client reads close_notify, not a reset.
  Bytes chunk;
  EXPECT_EQ(client.tls.read(&chunk), tls::TlsResult::kClosed);
  ::close(fd);
}

// ---------------------------------------------------------- admission ----

TEST(Admission, ShedAtFourTimesCapWithCleanCloses) {
  WorkerConfig wcfg;
  wcfg.overload.max_handshaking = 2;
  wcfg.overload.past_cap = OverloadConfig::PastCap::kShed;
  SoftRig rig(wcfg);
  const uint64_t obs_before = obs_counter("overload.shed");

  // 8 simultaneous accepts against a cap of 2 — the 4x overload of the
  // acceptance criterion. The first two are admitted, six are shed.
  int admitted[2];
  int shed[6];
  for (int i = 0; i < 2; ++i) admitted[i] = rig.adopt_pair();
  for (int i = 0; i < 6; ++i) shed[i] = rig.adopt_pair();
  EXPECT_EQ(rig.worker->alive_connections(), 2u);
  EXPECT_EQ(rig.worker->overload_stats().shed, 6u);
  EXPECT_EQ(obs_counter("overload.shed"), obs_before + 6);

  // Shed connections get a clean close: immediate EOF, no stray bytes.
  for (int i = 0; i < 6; ++i) {
    uint8_t b;
    EXPECT_EQ(::recv(shed[i], &b, 1, 0), 0) << "shed conn " << i;
    ::close(shed[i]);
  }

  // Admitted connections are unaffected: both complete handshake + request,
  // and GET /stats reports the shed decisions.
  ManualClient c0(rig.client_ctx.get(), admitted[0]);
  ManualClient c1(rig.client_ctx.get(), admitted[1]);
  ASSERT_TRUE(pump_handshake(rig, c0));
  ASSERT_TRUE(pump_handshake(rig, c1));
  EXPECT_EQ(rig.worker->handshaking_connections(), 0u);
  Bytes stats_body;
  ASSERT_TRUE(pump_request(rig, c0, "/stats", &stats_body));
  const std::string json = to_string(stats_body);
  EXPECT_NE(json.find("\"overload\":"), std::string::npos);
  EXPECT_NE(json.find("\"shed\":6"), std::string::npos);
  ::close(admitted[0]);
  ::close(admitted[1]);
}

TEST(Admission, ParkAdmitsAsCapacityFrees) {
  WorkerConfig wcfg;
  wcfg.overload.max_handshaking = 1;
  wcfg.overload.past_cap = OverloadConfig::PastCap::kPark;
  wcfg.overload.park_backlog = 8;
  SoftRig rig(wcfg);

  client::Pool pool;
  for (int i = 0; i < 4; ++i) {
    client::ClientOptions copts;
    copts.max_requests = 1;
    pool.add(std::make_unique<client::HttpsClient>(
        rig.client_ctx.get(), socketpair_connector(rig.worker.get()), copts,
        700 + static_cast<uint64_t>(i)));
  }
  ASSERT_TRUE(run_to_completion(rig.worker.get(), &pool));
  EXPECT_EQ(pool.aggregate().errors, 0u);
  EXPECT_EQ(pool.aggregate().requests, 4u);
  // With a cap of one, three of the four accepts had to wait in the park
  // and every one of them was admitted once capacity freed.
  EXPECT_EQ(rig.worker->overload_stats().parked, 3u);
  EXPECT_EQ(rig.worker->overload_stats().admitted_from_park, 3u);
  EXPECT_EQ(rig.worker->overload_stats().shed, 0u);
  EXPECT_EQ(rig.worker->stats().accepted, 4u);
}

TEST(Admission, ParkOverflowSheds) {
  WorkerConfig wcfg;
  wcfg.overload.max_handshaking = 1;
  wcfg.overload.past_cap = OverloadConfig::PastCap::kPark;
  wcfg.overload.park_backlog = 1;
  SoftRig rig(wcfg);

  int fds[4];
  for (int i = 0; i < 4; ++i) fds[i] = rig.adopt_pair();
  EXPECT_EQ(rig.worker->alive_connections(), 1u);
  EXPECT_EQ(rig.worker->parked_accepts(), 1u);
  EXPECT_EQ(rig.worker->overload_stats().parked, 1u);
  EXPECT_EQ(rig.worker->overload_stats().park_overflow, 2u);
  EXPECT_EQ(rig.worker->overload_stats().shed, 2u);
  for (int i = 0; i < 4; ++i) ::close(fds[i]);
}

// S1 regression (DESIGN.md §14): a parked accept ages against the handshake
// deadline like an admitted connection. Pre-fix the backlog held raw fds
// with no deadline at all — a peer that hit its handshake deadline simply
// never left the park, and the deadline path that should have removed it
// had a node-destroyed-while-linked lifetime bug this test pins down
// (run under ASan: the unlink must happen before the slab slot recycles).
TEST(Admission, ParkedAcceptAgedOutAtHandshakeDeadline) {
  WorkerConfig wcfg;
  wcfg.overload.max_handshaking = 1;
  wcfg.overload.handshake_timeout_ms = 5000;
  wcfg.overload.past_cap = OverloadConfig::PastCap::kPark;
  wcfg.overload.park_backlog = 8;
  SoftRig rig(wcfg);
  const uint64_t obs_before = obs_counter("overload.park_timeout");

  // A half-open handshake holds the single slot (deadline at t=6000)...
  const int fd_hog = rig.adopt_pair();
  ASSERT_GE(fd_hog, 0);
  ASSERT_EQ(::send(fd_hog, "\x16\x03", 2, 0), 2);
  rig.worker->run_once(0);
  // ...and two later peers land in the park (deadlines at t=7000).
  rig.vnow = 2000;
  const int fd_p1 = rig.adopt_pair();
  const int fd_p2 = rig.adopt_pair();
  ASSERT_GE(fd_p1, 0);
  ASSERT_GE(fd_p2, 0);
  EXPECT_EQ(rig.worker->parked_accepts(), 2u);

  // The hog's deadline tears it down; the freed slot admits the FIRST
  // parked peer, whose own park deadline is cancelled by the unlink.
  rig.vnow = 6500;
  for (int i = 0; i < 3; ++i) rig.worker->run_once(0);
  EXPECT_EQ(rig.worker->overload_stats().handshake_timeouts, 1u);
  EXPECT_EQ(rig.worker->overload_stats().admitted_from_park, 1u);
  EXPECT_EQ(rig.worker->overload_stats().park_timeouts, 0u);
  EXPECT_EQ(rig.worker->parked_accepts(), 1u);

  // The second peer is still parked when ITS deadline passes: unlinked from
  // the backlog, counted, closed, slab slot released.
  rig.vnow = 7500;
  for (int i = 0; i < 3; ++i) rig.worker->run_once(0);
  EXPECT_EQ(rig.worker->overload_stats().park_timeouts, 1u);
  EXPECT_EQ(rig.worker->parked_accepts(), 0u);
  EXPECT_EQ(obs_counter("overload.park_timeout"), obs_before + 1);

  // The backlog links survived the mid-life removal: parking again works
  // (a dangling node here is what ASan caught pre-fix).
  const int fd_p3 = rig.adopt_pair();
  ASSERT_GE(fd_p3, 0);
  EXPECT_EQ(rig.worker->parked_accepts(), 1u);

  ::close(fd_hog);
  ::close(fd_p1);
  ::close(fd_p2);
  ::close(fd_p3);
}

// -------------------------------------------------------------- drain ----

TEST(Drain, WorkerDrainsIdleThenForceClosesAtDeadline) {
  WorkerConfig wcfg;
  SoftRig rig(wcfg);
  const uint64_t obs_refused = obs_counter("overload.drain_refused");
  const uint64_t obs_forced = obs_counter("overload.drain_force_closed");

  // Connection A: admitted, served, now an idle keepalive.
  const int fd_a = rig.adopt_pair();
  ASSERT_GE(fd_a, 0);
  ManualClient client_a(rig.client_ctx.get(), fd_a);
  ASSERT_TRUE(pump_handshake(rig, client_a));
  Bytes body;
  ASSERT_TRUE(pump_request(rig, client_a, "/index.html", &body));

  // Connection B: a handshake that will never finish.
  const int fd_b = rig.adopt_pair();
  ASSERT_GE(fd_b, 0);
  ASSERT_EQ(::send(fd_b, "\x16\x03", 2, 0), 2);
  for (int i = 0; i < 5; ++i) rig.worker->run_once(0);
  ASSERT_EQ(rig.worker->alive_connections(), 2u);
  const uint64_t accepted_before = rig.worker->stats().accepted;

  rig.worker->request_drain(5000);
  rig.worker->run_once(0);  // begin_drain: idle A closed, in-flight B kept
  EXPECT_TRUE(rig.worker->draining());
  EXPECT_FALSE(rig.worker->drained());
  EXPECT_EQ(rig.worker->alive_connections(), 1u);
  Bytes chunk;
  EXPECT_EQ(client_a.tls.read(&chunk), tls::TlsResult::kClosed);

  // No new accepts once the drain began.
  const int fd_late = rig.adopt_pair();
  ASSERT_GE(fd_late, 0);
  EXPECT_EQ(rig.worker->stats().accepted, accepted_before);
  EXPECT_EQ(obs_counter("overload.drain_refused"), obs_refused + 1);
  uint8_t b;
  EXPECT_EQ(::recv(fd_late, &b, 1, 0), 0);  // refused: clean FIN
  ::close(fd_late);

  // The straggler survives until the deadline, not a tick longer.
  rig.vnow += 4999;
  rig.worker->run_once(0);
  EXPECT_EQ(rig.worker->alive_connections(), 1u);
  rig.vnow += 2;
  rig.worker->run_once(0);
  EXPECT_EQ(rig.worker->alive_connections(), 0u);
  EXPECT_TRUE(rig.worker->drained());
  EXPECT_EQ(rig.worker->overload_stats().drain_force_closed, 1u);
  EXPECT_EQ(obs_counter("overload.drain_force_closed"), obs_forced + 1);
  ::close(fd_a);
  ::close(fd_b);
}

TEST(Drain, TcpPoolShutdownCompletesAndStopsAccepting) {
  qat::QatDevice device;
  WorkerPoolOptions options;
  options.workers = 2;
  options.tls_config.async_mode = true;
  options.tls_config.cipher_suites = {
      tls::CipherSuite::kTlsRsaWithAes128CbcSha};

  WorkerPool pool(&device, &test_rsa2048(), options);
  ASSERT_TRUE(pool.start(0).is_ok());
  const uint16_t port = pool.port();

  engine::SoftwareProvider client_provider;
  tls::TlsContextConfig ccfg;
  ccfg.cipher_suites = options.tls_config.cipher_suites;
  tls::TlsContext cctx(ccfg, &client_provider);

  // Phase 1: real requests complete before the drain.
  client::Pool clients;
  for (int i = 0; i < 2; ++i) {
    client::ClientOptions copts;
    copts.max_requests = 2;
    copts.keepalive = true;
    clients.add(std::make_unique<client::HttpsClient>(
        &cctx,
        [port]() -> int {
          auto fd = net::tcp_connect(port);
          return fd.is_ok() ? fd.value() : -1;
        },
        copts, 8000 + static_cast<uint64_t>(i)));
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  bool all_done = false;
  while (!all_done && std::chrono::steady_clock::now() < deadline) {
    all_done = true;
    for (auto& c : clients.clients()) {
      if (c->step()) all_done = false;
    }
  }
  ASSERT_TRUE(all_done);
  ASSERT_EQ(clients.aggregate().errors, 0u);

  // Phase 2: three half-open TCP connections that never send a byte; only
  // the drain deadline can get rid of them.
  int raw[3];
  for (int i = 0; i < 3; ++i) {
    auto fd = net::tcp_connect(port);
    ASSERT_TRUE(fd.is_ok());
    raw[i] = fd.value();
  }
  // Let the workers accept them (real time: they are on their own threads).
  std::this_thread::sleep_for(std::chrono::milliseconds(1000));

  const uint64_t obs_forced = obs_counter("overload.drain_force_closed");
  const auto t0 = std::chrono::steady_clock::now();
  pool.shutdown(/*deadline_ms=*/300);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  // Force-close bounds the drain: well past 300 ms but nowhere near the
  // 60 s hang a lost connection would cause.
  EXPECT_LT(elapsed, std::chrono::seconds(30));

  const WorkerPoolStats wstats = pool.stats();
  EXPECT_EQ(wstats.totals.requests_served, 4u);
  EXPECT_EQ(wstats.totals.accepted, 2u + 3u);
  EXPECT_EQ(obs_counter("overload.drain_force_closed"), obs_forced + 3);

  // No accepts after the drain: a late connect may sit in the kernel
  // backlog, but no worker ever picks it up.
  auto late = net::tcp_connect(port);
  if (late.is_ok()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    ::close(late.value());
  }
  EXPECT_EQ(pool.stats().totals.accepted, 5u);
  for (int i = 0; i < 3; ++i) ::close(raw[i]);
}

}  // namespace
}  // namespace qtls::server
