// Property tests for the LatencyHistogram the observability plane leans on:
// percentile queries stay inside the documented ~2.4% relative-error bound
// (bucket-midpoint answers are in fact within half a bucket, ~1.54%), and
// merge() / merge_counts() are exactly equivalent to recording the union.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"

namespace qtls {
namespace {

// The documented relative-error bound for percentile queries (half a bucket
// width at kSubBits=5 is (1/64)/(1+1/64) ~ 1.54%; the public contract says
// ~2.4%).
constexpr double kRelErrorBound = 0.024;

double rel_error(uint64_t reported, uint64_t exact) {
  if (exact == 0) return reported == 0 ? 0.0 : 1.0;
  return std::abs(static_cast<double>(reported) -
                  static_cast<double>(exact)) /
         static_cast<double>(exact);
}

uint64_t exact_percentile(const std::vector<uint64_t>& sorted, double p) {
  // Mirrors LatencyHistogram's rank convention: the first element whose
  // 1-based cumulative count reaches p/100 * n.
  const double target = p / 100.0 * static_cast<double>(sorted.size());
  uint64_t seen = 0;
  for (const uint64_t v : sorted) {
    if (static_cast<double>(++seen) >= target) return v;
  }
  return sorted.back();
}

TEST(StatsProperty, PercentilesWithinDocumentedBound) {
  Rng rng(0x51a75);
  // Several distributions spanning the histogram's range: uniform,
  // exponential-ish (via squaring), and bimodal latencies.
  for (int dist = 0; dist < 3; ++dist) {
    LatencyHistogram h;
    std::vector<uint64_t> samples;
    for (int i = 0; i < 20'000; ++i) {
      uint64_t v = 0;
      const double u = rng.uniform01();
      switch (dist) {
        case 0: v = 1 + static_cast<uint64_t>(u * 1e6); break;        // µs-ish
        case 1: v = 1 + static_cast<uint64_t>(u * u * u * 1e9); break; // tail
        case 2:  // bimodal: fast path vs stall
          v = (i % 10 == 0) ? 8'000'000 + static_cast<uint64_t>(u * 1e6)
                            : 500 + static_cast<uint64_t>(u * 1000);
          break;
      }
      samples.push_back(v);
      h.record(v);
    }
    std::sort(samples.begin(), samples.end());
    for (const double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0,
                           99.9}) {
      const uint64_t exact = exact_percentile(samples, p);
      const uint64_t got = h.percentile_nanos(p);
      EXPECT_LE(rel_error(got, exact), kRelErrorBound)
          << "dist=" << dist << " p=" << p << " exact=" << exact
          << " got=" << got;
    }
    EXPECT_EQ(h.count(), samples.size());
    EXPECT_EQ(h.max_nanos(), samples.back());
  }
}

TEST(StatsProperty, SmallValuesAreExact) {
  // Values below 2^(kSubBits+1) land in width-1 buckets: percentiles are
  // exact there, not just within the bound.
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 63; ++v) h.record(v);
  EXPECT_EQ(h.percentile_nanos(50), 32u);
  EXPECT_EQ(h.percentile_nanos(100), 63u);
}

TEST(StatsProperty, MergeEqualsRecordingTheUnion) {
  Rng rng(0xabcdef);
  LatencyHistogram a, b, unioned;
  for (int i = 0; i < 10'000; ++i) {
    const uint64_t va = 1 + static_cast<uint64_t>(rng.uniform01() * 1e8);
    const uint64_t vb = 1 + static_cast<uint64_t>(rng.uniform01() * 1e5);
    a.record(va);
    b.record(vb);
    unioned.record(va);
    unioned.record(vb);
  }
  LatencyHistogram merged = a;
  merged.merge(b);

  EXPECT_EQ(merged.count(), unioned.count());
  EXPECT_EQ(merged.max_nanos(), unioned.max_nanos());
  EXPECT_DOUBLE_EQ(merged.mean_nanos(), unioned.mean_nanos());
  // Bucketed state is identical, so every percentile agrees exactly.
  for (double p = 0.5; p <= 100.0; p += 0.5)
    EXPECT_EQ(merged.percentile_nanos(p), unioned.percentile_nanos(p)) << p;
}

TEST(StatsProperty, MergeCountsEqualsMerge) {
  // merge_counts() (the obs registry's shard-merge path) must agree with
  // merge() given the same bucket geometry.
  Rng rng(0x777);
  std::vector<uint64_t> cells(LatencyHistogram::kNumBuckets, 0);
  uint64_t count = 0, sum = 0, max = 0;
  LatencyHistogram direct;
  for (int i = 0; i < 5'000; ++i) {
    const uint64_t v = 1 + static_cast<uint64_t>(rng.uniform01() * 1e7);
    direct.record(v);
    ++cells[LatencyHistogram::bucket_index(v)];
    ++count;
    sum += v;
    max = std::max(max, v);
  }
  LatencyHistogram rebuilt;
  rebuilt.merge_counts(cells.data(), cells.size(), count, sum, max);

  EXPECT_EQ(rebuilt.count(), direct.count());
  EXPECT_EQ(rebuilt.max_nanos(), direct.max_nanos());
  EXPECT_DOUBLE_EQ(rebuilt.mean_nanos(), direct.mean_nanos());
  for (const double p : {50.0, 90.0, 99.0, 99.9})
    EXPECT_EQ(rebuilt.percentile_nanos(p), direct.percentile_nanos(p));

  // A truncated cell array (missing empty tail) is accepted.
  LatencyHistogram truncated;
  truncated.merge_counts(cells.data(), cells.size() / 2, 0, 0, 0);
  (void)truncated;
}

TEST(StatsProperty, BucketGeometryRoundTrips) {
  // bucket_low(bucket_index(v)) <= v for all v, and bucket boundaries map to
  // themselves.
  Rng rng(0x9e3779b9);
  for (int i = 0; i < 100'000; ++i) {
    const uint64_t v =
        1 + static_cast<uint64_t>(rng.uniform01() * 1.8e18);
    const size_t idx = LatencyHistogram::bucket_index(v);
    ASSERT_LT(idx, LatencyHistogram::kNumBuckets);
    EXPECT_LE(LatencyHistogram::bucket_low(idx), v);
    if (idx + 1 < LatencyHistogram::kNumBuckets) {
      EXPECT_GT(LatencyHistogram::bucket_low(idx + 1), v);
    }
  }
}

}  // namespace
}  // namespace qtls
