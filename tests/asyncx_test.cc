#include <gtest/gtest.h>

#include <string>
#include <sys/epoll.h>
#include <unistd.h>

#include "asyncx/job.h"
#include "asyncx/stack_async.h"
#include "asyncx/wait_ctx.h"

namespace qtls::asyncx {
namespace {

TEST(AsyncJob, RunsToCompletionWithoutPause) {
  AsyncJob* job = nullptr;
  WaitCtx wctx;
  int ret = 0;
  const JobStatus status =
      start_job(&job, &wctx, &ret, [] { return 42; });
  EXPECT_EQ(status, JobStatus::kFinished);
  EXPECT_EQ(ret, 42);
  EXPECT_EQ(job, nullptr);
}

TEST(AsyncJob, PauseAndResume) {
  AsyncJob* job = nullptr;
  WaitCtx wctx;
  int ret = 0;
  int phase = 0;
  auto fn = [&phase] {
    phase = 1;
    pause_job();
    phase = 2;
    pause_job();
    phase = 3;
    return 7;
  };
  EXPECT_EQ(start_job(&job, &wctx, &ret, fn), JobStatus::kPaused);
  EXPECT_EQ(phase, 1);
  ASSERT_NE(job, nullptr);
  EXPECT_EQ(start_job(&job, &wctx, &ret, fn), JobStatus::kPaused);
  EXPECT_EQ(phase, 2);
  EXPECT_EQ(start_job(&job, &wctx, &ret, fn), JobStatus::kFinished);
  EXPECT_EQ(phase, 3);
  EXPECT_EQ(ret, 7);
  EXPECT_EQ(job, nullptr);
}

TEST(AsyncJob, GetCurrentJobInsideAndOutside) {
  EXPECT_EQ(get_current_job(), nullptr);
  AsyncJob* job = nullptr;
  WaitCtx wctx;
  int ret = 0;
  AsyncJob* seen = nullptr;
  start_job(&job, &wctx, &ret, [&seen] {
    seen = get_current_job();
    return 0;
  });
  EXPECT_NE(seen, nullptr);
  EXPECT_EQ(get_current_job(), nullptr);
}

TEST(AsyncJob, WaitCtxVisibleInsideJob) {
  AsyncJob* job = nullptr;
  WaitCtx wctx;
  int ret = 0;
  WaitCtx* seen = nullptr;
  start_job(&job, &wctx, &ret, [&seen] {
    seen = get_current_job()->wait_ctx();
    return 0;
  });
  EXPECT_EQ(seen, &wctx);
}

TEST(AsyncJob, LocalStateSurvivesPause) {
  // The whole point of fibers: locals (here a string built across pauses)
  // survive on the job's private stack.
  AsyncJob* job = nullptr;
  WaitCtx wctx;
  int ret = 0;
  std::string result;
  auto fn = [&result] {
    std::string local = "a";
    pause_job();
    local += "b";
    pause_job();
    local += "c";
    result = local;
    return static_cast<int>(local.size());
  };
  while (start_job(&job, &wctx, &ret, fn) == JobStatus::kPaused) {
  }
  EXPECT_EQ(result, "abc");
  EXPECT_EQ(ret, 3);
}

TEST(AsyncJob, ManyInterleavedJobs) {
  // Interleave 16 paused jobs, resume round-robin — models concurrent
  // offloaded connections in one worker.
  constexpr int kJobs = 16;
  AsyncJob* jobs[kJobs] = {};
  WaitCtx wctxs[kJobs];
  int rets[kJobs] = {};
  int counters[kJobs] = {};
  for (int i = 0; i < kJobs; ++i) {
    auto fn = [&counters, i] {
      for (int step = 0; step < 3; ++step) {
        ++counters[i];
        pause_job();
      }
      return i;
    };
    EXPECT_EQ(start_job(&jobs[i], &wctxs[i], &rets[i], fn),
              JobStatus::kPaused);
  }
  int finished = 0;
  while (finished < kJobs) {
    for (int i = 0; i < kJobs; ++i) {
      if (!jobs[i]) continue;
      if (start_job(&jobs[i], &wctxs[i], &rets[i], nullptr) ==
          JobStatus::kFinished) {
        ++finished;
        EXPECT_EQ(rets[i], i);
        EXPECT_EQ(counters[i], 3);
      }
    }
  }
}

TEST(AsyncJob, JobsAreRecycled) {
  // Run a job to completion, remember pool size, run another: the pool must
  // not grow (stack reuse).
  AsyncJob* job = nullptr;
  WaitCtx wctx;
  int ret = 0;
  start_job(&job, &wctx, &ret, [] { return 1; });
  const size_t pool_after_first = pooled_jobs();
  EXPECT_GE(pool_after_first, 1u);
  start_job(&job, &wctx, &ret, [] { return 2; });
  EXPECT_EQ(pooled_jobs(), pool_after_first);
}

TEST(AsyncJob, ContextSwapCounterAdvances) {
  const uint64_t before = AsyncJob::total_context_swaps();
  AsyncJob* job = nullptr;
  WaitCtx wctx;
  int ret = 0;
  auto fn = [] {
    pause_job();
    return 0;
  };
  start_job(&job, &wctx, &ret, fn);   // swap in + pause swap out
  start_job(&job, &wctx, &ret, fn);   // swap in + finish
  EXPECT_GE(AsyncJob::total_context_swaps() - before, 3u);
}

TEST(WaitCtx, FdNotification) {
  WaitCtx wctx;
  EXPECT_FALSE(wctx.has_fd());
  const int fd = wctx.ensure_fd();
  ASSERT_GE(fd, 0);
  EXPECT_TRUE(wctx.has_fd());
  EXPECT_EQ(wctx.ensure_fd(), fd);  // idempotent

  // Signal makes the fd readable; observable through epoll like the
  // application's I/O multiplexing would.
  const int ep = epoll_create1(0);
  ASSERT_GE(ep, 0);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  ASSERT_EQ(epoll_ctl(ep, EPOLL_CTL_ADD, fd, &ev), 0);

  epoll_event out{};
  EXPECT_EQ(epoll_wait(ep, &out, 1, 0), 0);  // nothing yet
  wctx.signal_fd();
  EXPECT_EQ(epoll_wait(ep, &out, 1, 100), 1);
  wctx.clear_fd();
  EXPECT_EQ(epoll_wait(ep, &out, 1, 0), 0);  // drained
  close(ep);
}

TEST(WaitCtx, CallbackNotificationBypassesFd) {
  WaitCtx wctx;
  int called = 0;
  wctx.set_callback([](void* arg) { ++*static_cast<int*>(arg); }, &called);
  EXPECT_TRUE(wctx.has_callback());
  EXPECT_TRUE(wctx.notify());
  EXPECT_EQ(called, 1);
}

TEST(WaitCtx, NotifyPrefersCallbackOverFd) {
  WaitCtx wctx;
  wctx.ensure_fd();
  int called = 0;
  wctx.set_callback([](void* arg) { ++*static_cast<int*>(arg); }, &called);
  EXPECT_TRUE(wctx.notify());
  EXPECT_EQ(called, 1);
  // FD must not have been signalled (kernel bypassed).
  uint64_t value = 0;
  EXPECT_LT(read(wctx.fd(), &value, sizeof(value)), 0);  // EAGAIN
}

TEST(WaitCtx, NotifyWithoutChannelsReturnsFalse) {
  WaitCtx wctx;
  EXPECT_FALSE(wctx.notify());
}

TEST(StackAsync, SlotLifecycle) {
  StackAsyncSlot<int> slot;
  EXPECT_TRUE(slot.idle());
  slot.mark_inflight();
  EXPECT_TRUE(slot.inflight());
  slot.complete(99);
  EXPECT_TRUE(slot.ready());
  EXPECT_EQ(slot.take(), 99);
  EXPECT_TRUE(slot.idle());
}

TEST(StackAsync, RetryPath) {
  StackAsyncSlot<int> slot;
  slot.mark_retry();
  EXPECT_TRUE(slot.want_retry());
  // Retry succeeds on second attempt.
  slot.mark_inflight();
  slot.complete(5);
  EXPECT_EQ(slot.take(), 5);
}

TEST(StackAsync, ResetClearsState) {
  StackAsyncSlot<std::string> slot;
  slot.mark_inflight();
  slot.complete("value");
  slot.reset();
  EXPECT_TRUE(slot.idle());
}

// The stack-async workflow of Figure 5, end to end: a fake "TLS API" driven
// by the state flag, with careful skipping on re-entry.
TEST(StackAsync, Figure5Workflow) {
  StackAsyncSlot<int> slot;
  int submissions = 0;
  int pre_processing_runs = 0;

  // Returns true when the API completed, false when paused.
  auto tls_api = [&](bool ring_full) -> bool {
    if (slot.idle() || slot.want_retry()) {
      if (slot.idle()) ++pre_processing_runs;  // skipped on retry re-entry
      if (ring_full) {
        slot.mark_retry();
        return false;
      }
      ++submissions;
      slot.mark_inflight();
      return false;
    }
    if (slot.inflight()) return false;  // response not yet retrieved
    EXPECT_TRUE(slot.ready());
    EXPECT_EQ(slot.take(), 1234);  // consume crypto result, jump over submit
    return true;
  };

  EXPECT_FALSE(tls_api(true));   // first call: ring full -> retry flag
  EXPECT_FALSE(tls_api(false));  // retry submission succeeds -> inflight
  EXPECT_FALSE(tls_api(false));  // still inflight
  slot.complete(1234);           // response callback
  EXPECT_TRUE(tls_api(false));   // resumption consumes the result
  EXPECT_EQ(submissions, 1);
  EXPECT_EQ(pre_processing_runs, 1);
}

}  // namespace
}  // namespace qtls::asyncx
