// Tests of the virtual-time plane: DES core invariants, the device model,
// and — most importantly — the acceptance criteria of DESIGN.md §3: the
// paper's shapes must hold on the simulator (who wins, by what factor,
// where the crossovers fall).
#include <gtest/gtest.h>

#include "sim/des.h"
#include "sim/qat_sim.h"
#include "sim/system.h"

namespace qtls::sim {
namespace {

// ------------------------------------------------------------- DES core --

TEST(Des, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run_until(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 100u);
}

TEST(Des, TiesBreakByScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    sim.schedule_at(50, [&order, i] { order.push_back(i); });
  sim.run_until(100);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Des, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(200, [&] { ++fired; });
  sim.run_until(100);
  EXPECT_EQ(fired, 1);
  sim.run_until(300);
  EXPECT_EQ(fired, 2);
}

TEST(Des, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) sim.schedule_after(5, chain);
  };
  sim.schedule_at(0, chain);
  sim.run_until(1000);
  EXPECT_EQ(depth, 10);
}

TEST(Des, PastEventsClampToNow) {
  Simulator sim;
  sim.schedule_at(50, [] {});
  sim.run_until(50);
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });  // in the past: runs "now"
  sim.run_until(60);
  EXPECT_EQ(fired, 1);
}

TEST(SimResourceTest, SerializesTasks) {
  Simulator sim;
  SimResource cpu(&sim);
  std::vector<SimTime> completions;
  sim.schedule_at(0, [&] {
    cpu.exec(100, [&] { completions.push_back(sim.now()); });
    cpu.exec(50, [&] { completions.push_back(sim.now()); });
  });
  sim.run_until(1000);
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_EQ(completions[0], 100u);
  EXPECT_EQ(completions[1], 150u);  // queued behind the first
  EXPECT_EQ(cpu.total_busy(), 150u);
}

// ------------------------------------------------------------ device ----

TEST(SimQat, EnginesServeInParallel) {
  Simulator sim;
  CostModel costs;
  SimQatDevice device(&sim, &costs, 1, 4);
  SimQatInstance* inst = device.allocate_instance();

  // Four asym ops submitted together on four engines: all ready after ~one
  // service time, not four.
  int retrieved = 0;
  sim.schedule_at(0, [&] {
    for (int i = 0; i < 4; ++i)
      ASSERT_TRUE(inst->submit(SOp::kRsaPriv, [&] { ++retrieved; }));
  });
  sim.run_until(costs.qat_service(SOp::kRsaPriv) + 1000);
  EXPECT_EQ(inst->poll(), 4u);
  EXPECT_EQ(retrieved, 4);
}

TEST(SimQat, QueueingWhenEnginesBusy) {
  Simulator sim;
  CostModel costs;
  SimQatDevice device(&sim, &costs, 1, 1);  // one engine
  SimQatInstance* inst = device.allocate_instance();
  const SimTime service = costs.qat_service(SOp::kRsaPriv);

  sim.schedule_at(0, [&] {
    ASSERT_TRUE(inst->submit(SOp::kRsaPriv, nullptr));
    ASSERT_TRUE(inst->submit(SOp::kRsaPriv, nullptr));
  });
  sim.run_until(service + 1000);
  EXPECT_EQ(inst->poll(), 1u);  // second op still in service
  sim.run_until(2 * service + 1000);
  EXPECT_EQ(inst->poll(), 1u);
}

TEST(SimQat, RingCapacityBoundsSubmissions) {
  Simulator sim;
  CostModel costs;
  SimQatDevice device(&sim, &costs, 1, 1);
  SimQatInstance* inst = device.allocate_instance(/*ring_capacity=*/4);
  sim.schedule_at(0, [&] {
    int accepted = 0;
    for (int i = 0; i < 10; ++i)
      if (inst->submit(SOp::kRsaPriv, nullptr)) ++accepted;
    EXPECT_EQ(accepted, 4);
  });
  sim.run_until(1);
}

TEST(SimQat, InflightCountsPerClass) {
  Simulator sim;
  CostModel costs;
  SimQatDevice device(&sim, &costs, 1, 4);
  SimQatInstance* inst = device.allocate_instance();
  sim.schedule_at(0, [&] {
    inst->submit(SOp::kRsaPriv, nullptr);
    inst->submit(SOp::kPrf, nullptr);
    EXPECT_EQ(inst->inflight_total(), 2u);
    EXPECT_EQ(inst->inflight_asym(), 1u);
  });
  sim.run_until(costs.qat_service(SOp::kRsaPriv) + 1000);
  inst->poll();
  EXPECT_EQ(inst->inflight_total(), 0u);
}

// ------------------------------------------------- configuration knobs --

TEST(ConfigKnobsTest, MatchPaperConfigurations) {
  RunParams p;
  p.config = Config::kSW;
  EXPECT_FALSE(resolve_config(p).offload);

  p.config = Config::kQatS;
  EXPECT_TRUE(resolve_config(p).offload);
  EXPECT_FALSE(resolve_config(p).async);

  p.config = Config::kQatA;
  EXPECT_EQ(resolve_config(p).poll, PollMode::kTimer);
  EXPECT_EQ(resolve_config(p).notify, NotifyMode::kFd);

  p.config = Config::kQatAH;
  EXPECT_EQ(resolve_config(p).poll, PollMode::kHeuristic);
  EXPECT_EQ(resolve_config(p).notify, NotifyMode::kFd);

  p.config = Config::kQtls;
  EXPECT_EQ(resolve_config(p).poll, PollMode::kHeuristic);
  EXPECT_EQ(resolve_config(p).notify, NotifyMode::kKernelBypass);

  // §5.6 overrides only apply to async configurations.
  p.config = Config::kQatS;
  p.poll_override = PollMode::kHeuristic;
  EXPECT_EQ(resolve_config(p).poll, PollMode::kBusy);
}

// --------------------------------------------- acceptance: paper shapes --
// Short windows keep the suite fast; the ratios have wide tolerances since
// the full benches (bench/fig*) are the precise check.

RunParams quick(Config cfg, int workers, tls::CipherSuite suite) {
  RunParams p;
  p.config = cfg;
  p.workers = workers;
  p.clients = 200;
  p.suite = suite;
  p.warmup = 400 * kMs;
  p.duration = 400 * kMs;
  return p;
}

double cps_of(Config cfg, int workers, tls::CipherSuite suite) {
  return run_simulation(quick(cfg, workers, suite)).cps;
}

TEST(PaperShapes, Fig7aOrderingAndFactors) {
  const auto suite = tls::CipherSuite::kTlsRsaWithAes128CbcSha;
  const double sw = cps_of(Config::kSW, 8, suite);
  const double qat_s = cps_of(Config::kQatS, 8, suite);
  const double qat_a = cps_of(Config::kQatA, 8, suite);
  const double qat_ah = cps_of(Config::kQatAH, 8, suite);
  const double qtls = cps_of(Config::kQtls, 8, suite);

  // Strict ordering of the five configurations.
  EXPECT_LT(sw, qat_s);
  EXPECT_LT(qat_s, qat_a);
  EXPECT_LT(qat_a, qat_ah);
  EXPECT_LT(qat_ah, qtls);
  // Factors (paper: 2x, 7x, +20%, +8%, 9x) with tolerance.
  EXPECT_NEAR(qat_s / sw, 2.0, 0.7);
  EXPECT_NEAR(qat_a / sw, 7.0, 1.5);
  EXPECT_NEAR(qtls / sw, 9.0, 2.0);
}

TEST(PaperShapes, Fig7aPlateauAtCardLimit) {
  const auto suite = tls::CipherSuite::kTlsRsaWithAes128CbcSha;
  RunParams p = quick(Config::kQtls, 32, suite);
  p.clients = 400;
  const double qtls32 = run_simulation(p).cps;
  // DH8970 limit ~100K CPS (paper §5.2).
  EXPECT_GT(qtls32, 85'000);
  EXPECT_LT(qtls32, 110'000);
}

TEST(PaperShapes, Fig7bStraightOffloadGainsNothing) {
  const auto suite = tls::CipherSuite::kEcdheRsaWithAes128CbcSha;
  const double sw = cps_of(Config::kSW, 8, suite);
  const double qat_s = cps_of(Config::kQatS, 8, suite);
  // Paper: "no CPS improvement over the SW configuration" — allow up to
  // ~1.5x; the distinctive claim is the contrast with TLS-RSA's clear 2x
  // and the async framework's >4x below.
  EXPECT_LT(qat_s / sw, 1.6);
  const double qat_a = cps_of(Config::kQatA, 8, suite);
  EXPECT_GT(qat_a / sw, 4.0);
}

TEST(PaperShapes, Fig7cMontgomeryP256AnomalyAndBinaryGains) {
  const auto suite = tls::CipherSuite::kEcdheEcdsaWithAes128CbcSha;
  // P-256: SW beats straight offload (the §5.2 anomaly)...
  RunParams sw_p = quick(Config::kSW, 4, suite);
  sw_p.curve = CurveId::kP256;
  RunParams qs_p = quick(Config::kQatS, 4, suite);
  qs_p.curve = CurveId::kP256;
  RunParams qt_p = quick(Config::kQtls, 4, suite);
  qt_p.curve = CurveId::kP256;
  const double sw256 = run_simulation(sw_p).cps;
  const double qats256 = run_simulation(qs_p).cps;
  const double qtls256 = run_simulation(qt_p).cps;
  EXPECT_GT(sw256, qats256);
  // ...yet QTLS still enhances CPS by more than 70%.
  EXPECT_GT(qtls256 / sw256, 1.7);

  // P-384: ~14x.
  sw_p.curve = qt_p.curve = CurveId::kP384;
  const double sw384 = run_simulation(sw_p).cps;
  const double qtls384 = run_simulation(qt_p).cps;
  EXPECT_NEAR(qtls384 / sw384, 14.0, 4.0);

  // Binary curves: more than 12x (allowing sim tolerance at the margin).
  for (CurveId curve : {CurveId::kB283, CurveId::kK409}) {
    sw_p.curve = qt_p.curve = curve;
    const double sw_bin = run_simulation(sw_p).cps;
    const double qtls_bin = run_simulation(qt_p).cps;
    EXPECT_GT(qtls_bin / sw_bin, 8.0) << curve_name(curve);
  }
}

TEST(PaperShapes, Fig8Tls13LowerGainBecauseHkdfStaysOnCpu) {
  const double sw12 = cps_of(Config::kSW, 8,
                             tls::CipherSuite::kEcdheRsaWithAes128CbcSha);
  const double qtls12 = cps_of(Config::kQtls, 8,
                               tls::CipherSuite::kEcdheRsaWithAes128CbcSha);
  const double sw13 =
      cps_of(Config::kSW, 8, tls::CipherSuite::kTls13Aes128Sha256);
  const double qtls13 =
      cps_of(Config::kQtls, 8, tls::CipherSuite::kTls13Aes128Sha256);
  EXPECT_NEAR(qtls13 / sw13, 3.5, 1.0);
  // The TLS 1.3 gain must be clearly below the TLS 1.2 gain.
  EXPECT_LT(qtls13 / sw13, qtls12 / sw12 * 0.7);
}

TEST(PaperShapes, Fig9ResumptionShapes) {
  RunParams p = quick(Config::kSW, 8, tls::CipherSuite::kEcdheRsaWithAes128CbcSha);
  p.full_handshake_ratio = 0.0;
  const double sw = run_simulation(p).cps;
  p.config = Config::kQtls;
  const double qtls = run_simulation(p).cps;
  p.config = Config::kQatS;
  const double qat_s = run_simulation(p).cps;
  // 30-40% gain for QTLS; QAT+S *loses* to SW (paper §5.3).
  EXPECT_GT(qtls / sw, 1.2);
  EXPECT_LT(qtls / sw, 1.6);
  EXPECT_LT(qat_s, sw);

  // 1:9 mix: more than 2x.
  p.config = Config::kSW;
  p.full_handshake_ratio = 0.1;
  const double sw_mix = run_simulation(p).cps;
  p.config = Config::kQtls;
  const double qtls_mix = run_simulation(p).cps;
  EXPECT_GT(qtls_mix / sw_mix, 2.0);
}

TEST(PaperShapes, Fig10TransferCrossover) {
  auto tput = [&](Config cfg, size_t kb) {
    RunParams p = quick(cfg, 8, tls::CipherSuite::kTlsRsaWithAes128CbcSha);
    p.transfer_mode = true;
    p.clients = 400;
    p.file_bytes = kb * 1024;
    return run_simulation(p).throughput_gbps;
  };
  // 4 KB: request overhead dominates — only slight gain.
  EXPECT_LT(tput(Config::kQtls, 4) / tput(Config::kSW, 4), 1.4);
  // 128 KB: > 2x (paper §5.4).
  EXPECT_GT(tput(Config::kQtls, 128) / tput(Config::kSW, 128), 2.0);
}

TEST(PaperShapes, Fig11LatencyOrderingAndReduction) {
  auto latency_ms = [&](Config cfg, int clients) {
    RunParams p = quick(cfg, 1, tls::CipherSuite::kTlsRsaWithAes128CbcSha);
    p.clients = clients;
    p.include_request = true;
    p.sync_busy_poll = true;
    return run_simulation(p).latency.mean_nanos() / 1e6;
  };
  // Concurrency 1 ordering (paper §5.5).
  const double sw1 = latency_ms(Config::kSW, 1);
  const double qats1 = latency_ms(Config::kQatS, 1);
  const double qata1 = latency_ms(Config::kQatA, 1);
  const double qtls1 = latency_ms(Config::kQtls, 1);
  EXPECT_LT(qats1, qtls1);
  EXPECT_LE(qtls1, qata1);
  EXPECT_LT(qata1, sw1);
  // ~75% / ~85% reductions at concurrency 64.
  const double sw64 = latency_ms(Config::kSW, 64);
  const double qata64 = latency_ms(Config::kQatA, 64);
  const double qtls64 = latency_ms(Config::kQtls, 64);
  EXPECT_NEAR(1.0 - qata64 / sw64, 0.78, 0.10);
  EXPECT_NEAR(1.0 - qtls64 / sw64, 0.86, 0.08);
}

TEST(PaperShapes, Fig12PollingSchemes) {
  // CPS: heuristic beats the 10us timer by roughly the §5.6 20% gap.
  RunParams p10 = quick(Config::kQatA, 8, tls::CipherSuite::kTlsRsaWithAes128CbcSha);
  p10.timer_interval = 10 * kUs;
  RunParams ph = quick(Config::kQtls, 8, tls::CipherSuite::kTlsRsaWithAes128CbcSha);
  const double t10 = run_simulation(p10).cps;
  const double heur = run_simulation(ph).cps;
  EXPECT_GT(heur / t10, 1.1);
  EXPECT_LT(heur / t10, 1.6);

  // Latency: 1ms interval imposes a multi-ms floor at low concurrency.
  RunParams l1ms = quick(Config::kQatA, 1, tls::CipherSuite::kTlsRsaWithAes128CbcSha);
  l1ms.clients = 1;
  l1ms.include_request = true;
  l1ms.timer_interval = 1 * kMs;
  RunParams lh = quick(Config::kQtls, 1, tls::CipherSuite::kTlsRsaWithAes128CbcSha);
  lh.clients = 1;
  lh.include_request = true;
  const double lat_1ms = run_simulation(l1ms).latency.mean_nanos() / 1e6;
  const double lat_h = run_simulation(lh).latency.mean_nanos() / 1e6;
  EXPECT_GT(lat_1ms - lat_h, 2.0);  // several quanta of added latency
}

TEST(SimDeterminism, SameSeedSameResult) {
  RunParams p = quick(Config::kQtls, 4, tls::CipherSuite::kTlsRsaWithAes128CbcSha);
  const RunResult a = run_simulation(p);
  const RunResult b = run_simulation(p);
  EXPECT_EQ(a.handshakes, b.handshakes);
  EXPECT_EQ(a.submit_retries, b.submit_retries);
  EXPECT_EQ(a.heuristic_polls, b.heuristic_polls);
}

TEST(SimDeterminism, DifferentSeedSimilarThroughput) {
  RunParams p = quick(Config::kQtls, 4, tls::CipherSuite::kTlsRsaWithAes128CbcSha);
  const double a = run_simulation(p).cps;
  p.seed = 777;
  const double b = run_simulation(p).cps;
  EXPECT_NEAR(a / b, 1.0, 0.1);
}

}  // namespace
}  // namespace qtls::sim
