// Network-chaos plane for the remote offload tier (DESIGN.md §13). A
// seeded ChaosTransport drops, duplicates, delays, reorders and bisects
// whole frames between a RemoteChannel and an OffloadServerCore against a
// virtual clock, proving the channel's conservation invariant
// (submitted == completed + expired + failed), exactly-once completion
// dispatch, deadline propagation (budget rewriting, RTT spikes, server
// refusal), channel death mid-batch, and the engine's three-tier ladder
// under channel death. A real-TCP soak runs the same traffic through
// OffloadServer for the sanitizer trees. Select with `ctest -L
// remote-chaos`; run under -DQTLS_SANITIZE=address and =thread.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <poll.h>
#include <unistd.h>

#include "engine/provider.h"
#include "engine/qat_engine.h"
#include "net/socket_transport.h"
#include "qat/device.h"
#include "qat/fault.h"
#include "remote/channel.h"
#include "remote/offload_server.h"
#include "remote/wire.h"
#include "remote_test_util.h"

namespace qtls {
namespace {

using remote::RemoteChannel;
using remote::RemoteChannelConfig;
using remote::RemoteOp;
using remote::RemoteStatus;
using remote::testutil::ChaosConfig;
using remote::testutil::ChaosTransport;
using remote::testutil::LoopbackTransport;

constexpr uint64_t kMs = 1'000'000;
constexpr uint64_t kUs = 1'000;

Bytes prf_body(int i) {
  return remote::encode_prf_tls12(HashAlg::kSha256,
                                  to_bytes("secret" + std::to_string(i)),
                                  "chaos", to_bytes("seed"), 32);
}

Bytes prf_expect(int i) {
  engine::SoftwareProvider sw;
  auto r = sw.prf_tls12(HashAlg::kSha256,
                        to_bytes("secret" + std::to_string(i)), "chaos",
                        to_bytes("seed"), 32);
  EXPECT_TRUE(r.is_ok());
  return r.value();
}

// ------------------------------------------------------- conservation ----

// 300 ops through ~10% drop/dup/reorder with latency+jitter: every op's
// completion fires exactly once, and the ledger balances — an op either
// completed, expired, or failed; nothing is lost, nothing double-counted.
TEST(RemoteChaos, ChannelConservationUnderChaos) {
  uint64_t now = 1'000 * kMs;

  ChaosConfig to_server;
  to_server.seed = 0xc4a05;
  to_server.drop_rate = 0.10;
  to_server.dup_rate = 0.10;
  to_server.reorder_rate = 0.10;
  to_server.latency_ns = 100 * kUs;
  to_server.jitter_ns = 50 * kUs;
  ChaosConfig to_client = to_server;
  to_client.seed = 0x5eed2;

  auto transport = std::make_unique<ChaosTransport>(to_server, to_client, &now);
  ChaosTransport* chaos = transport.get();
  RemoteChannelConfig ccfg;
  ccfg.max_batch = 32;
  ccfg.coalesce_window_us = 50;
  RemoteChannel channel(std::move(transport), ccfg);
  channel.set_clock([&now] { return now; });

  constexpr int kOps = 300;
  std::vector<int> fired(kOps, 0);
  std::vector<RemoteStatus> status(kOps, RemoteStatus::kChannelDown);

  int submitted = 0;
  uint64_t last_deadline = 0;
  for (int iter = 0; iter < 5000; ++iter) {
    for (int burst = 0; burst < 3 && submitted < kOps; ++burst, ++submitted) {
      const int i = submitted;
      const uint64_t deadline = now + 5 * kMs;
      last_deadline = deadline;
      ASSERT_TRUE(channel.submit(
          RemoteOp::kPrfTls12, prf_body(i), deadline,
          [&fired, &status, i](RemoteStatus st, BytesView) {
            ++fired[i];
            status[i] = st;
          }));
    }
    now += 20 * kUs;
    chaos->step();
    channel.pump();
    if (submitted == kOps && now > last_deadline + 30 * kMs &&
        channel.queued() == 0 && channel.inflight() == 0) {
      break;
    }
  }

  const remote::RemoteChannelStats st = channel.stats();
  EXPECT_EQ(st.submitted, static_cast<uint64_t>(kOps));
  // The conservation invariant, with everything settled.
  EXPECT_EQ(channel.queued(), 0u);
  EXPECT_EQ(channel.inflight(), 0u);
  EXPECT_EQ(st.completed + st.expired + st.failed, st.submitted);
  EXPECT_EQ(st.failed, 0u);  // the channel never died
  EXPECT_GT(st.completed, 0u);
  EXPECT_GT(st.expired, 0u);  // ~10% request/response drops force expiries
  // Exactly-once dispatch: duplicated response frames must not re-fire a
  // completion (they land in dropped_late instead).
  for (int i = 0; i < kOps; ++i) {
    ASSERT_EQ(fired[i], 1) << "op " << i;
    EXPECT_TRUE(status[i] == RemoteStatus::kOk ||
                status[i] == RemoteStatus::kDeadlineExpired)
        << "op " << i << " status "
        << static_cast<int>(status[i]);
  }
  // Batching actually happened (the whole point of the frame protocol).
  EXPECT_GT(st.batches, 0u);
  EXPECT_GT(st.max_batch, 1u);
}

// ------------------------------------------- deadline propagation --------

// The wire carries remaining budget, not an absolute deadline: flush()
// rewrites deadline_ns - now into budget_us, sends 0 for unbounded ops, and
// expires already-dead ops locally without ever serializing them.
TEST(RemoteChaos, DeadlineBudgetIsRewrittenOnTheWire) {
  // Captures the serialized frames without ever responding.
  class CaptureTransport final : public tls::Transport {
   public:
    tls::IoResult read(uint8_t*, size_t) override {
      return {tls::IoStatus::kWouldBlock, 0};
    }
    tls::IoResult write(const uint8_t* buf, size_t len) override {
      captured.insert(captured.end(), buf, buf + len);
      return {tls::IoStatus::kOk, len};
    }
    Bytes captured;
  };

  uint64_t now = 1'000 * kMs;
  auto transport = std::make_unique<CaptureTransport>();
  CaptureTransport* capture = transport.get();
  RemoteChannel channel(std::move(transport));
  channel.set_clock([&now] { return now; });

  int expired_fired = 0;
  RemoteStatus expired_status = RemoteStatus::kOk;
  ASSERT_TRUE(channel.submit(RemoteOp::kPrfTls12, prf_body(0),
                             now + 1'500 * kUs, [](RemoteStatus, BytesView) {}));
  ASSERT_TRUE(channel.submit(RemoteOp::kPrfTls12, prf_body(1),
                             /*deadline_ns=*/0, [](RemoteStatus, BytesView) {}));
  // Already dead at flush: expires client-side, never reaches the wire.
  ASSERT_TRUE(channel.submit(RemoteOp::kPrfTls12, prf_body(2), now - 1,
                             [&](RemoteStatus st, BytesView) {
                               ++expired_fired;
                               expired_status = st;
                             }));
  channel.flush();

  EXPECT_EQ(expired_fired, 1);
  EXPECT_EQ(expired_status, RemoteStatus::kDeadlineExpired);
  EXPECT_EQ(channel.stats().expired, 1u);

  remote::FrameDecoder decoder;
  ASSERT_TRUE(decoder.feed(BytesView(capture->captured)).is_ok());
  remote::Frame frame;
  ASSERT_TRUE(decoder.next(&frame));
  ASSERT_EQ(frame.requests.size(), 2u);  // the dead op was never serialized
  EXPECT_EQ(frame.requests[0].budget_us, 1500u);
  EXPECT_EQ(frame.requests[1].budget_us, 0u);  // unbounded
  EXPECT_FALSE(decoder.next(&frame));
}

// An RTT spike past the deadline: the op expires exactly once; the late
// response is counted dropped_late and never re-delivered as a success.
TEST(RemoteChaos, RttSpikeExpiresThenDropsLateResponse) {
  uint64_t now = 1'000 * kMs;
  ChaosConfig to_server;  // instant delivery toward the server
  ChaosConfig to_client;
  to_client.latency_ns = 10 * kMs;  // the spike: response takes 10ms

  auto transport = std::make_unique<ChaosTransport>(to_server, to_client, &now);
  ChaosTransport* chaos = transport.get();
  RemoteChannel channel(std::move(transport));
  channel.set_clock([&now] { return now; });

  int fired = 0;
  RemoteStatus st = RemoteStatus::kOk;
  ASSERT_TRUE(channel.submit(RemoteOp::kPrfTls12, prf_body(0), now + 2 * kMs,
                             [&](RemoteStatus s, BytesView) {
                               ++fired;
                               st = s;
                             }));
  channel.flush();
  chaos->step();  // request reaches the server; response now rides the spike

  now += 2 * kMs + 1;  // deadline passes before the response lands
  chaos->step();
  channel.pump();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(st, RemoteStatus::kDeadlineExpired);
  EXPECT_EQ(channel.stats().expired, 1u);

  now += 20 * kMs;  // the response finally arrives — far too late
  chaos->step();
  channel.pump();
  EXPECT_EQ(fired, 1);  // never re-fired
  const remote::RemoteChannelStats stats = channel.stats();
  EXPECT_EQ(stats.dropped_late, 1u);
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.completed + stats.expired + stats.failed, stats.submitted);
}

// Server-side budget discipline: an op whose propagated budget is consumed
// by the server's queueing delay is REFUSED, never executed.
TEST(RemoteChaos, ServerRefusesBudgetExhaustedOpsWithoutExecuting) {
  uint64_t now = 1'000 * kMs;
  remote::OffloadServerCore::Config scfg;
  scfg.queue_delay_ns = 5 * kMs;  // every op waits 5ms before service
  auto transport = std::make_unique<LoopbackTransport>(scfg);
  LoopbackTransport* loop = transport.get();
  RemoteChannel channel(std::move(transport));
  channel.set_clock([&now] { return now; });

  // Budget 2000us < 5ms queueing: refused at the server, surfaced as
  // kBudgetExhausted (the local deadline has NOT yet passed).
  int fired = 0;
  RemoteStatus st = RemoteStatus::kOk;
  ASSERT_TRUE(channel.submit(RemoteOp::kPrfTls12, prf_body(0), now + 2 * kMs,
                             [&](RemoteStatus s, BytesView) {
                               ++fired;
                               st = s;
                             }));
  channel.flush();
  channel.pump();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(st, RemoteStatus::kBudgetExhausted);
  EXPECT_EQ(loop->core().stats().refused_expired, 1u);
  EXPECT_EQ(loop->core().stats().ops_ok, 0u);  // never executed

  // An unbounded op (budget 0) sails through the same delay.
  Bytes payload;
  ASSERT_TRUE(channel.submit(RemoteOp::kPrfTls12, prf_body(1),
                             /*deadline_ns=*/0,
                             [&](RemoteStatus s, BytesView body) {
                               st = s;
                               payload.assign(body.begin(), body.end());
                             }));
  channel.flush();
  channel.pump();
  EXPECT_EQ(st, RemoteStatus::kOk);
  EXPECT_EQ(payload, prf_expect(1));
  EXPECT_EQ(loop->core().stats().ops_ok, 1u);
}

// --------------------------------------------------- channel death -------

// kill() with a full batch in flight: every pending op fails kChannelDown
// exactly once, later submits are refused, and the ledger balances.
TEST(RemoteChaos, KillMidBatchFailsPendingOpsExactlyOnce) {
  uint64_t now = 1'000 * kMs;
  ChaosConfig cfg;
  cfg.latency_ns = 1 * kMs;  // the batch is in the pipe, not yet delivered
  auto transport = std::make_unique<ChaosTransport>(cfg, cfg, &now);
  RemoteChannel channel(std::move(transport));
  channel.set_clock([&now] { return now; });

  constexpr int kOps = 8;
  std::vector<int> fired(kOps, 0);
  std::vector<RemoteStatus> st(kOps, RemoteStatus::kOk);
  for (int i = 0; i < kOps; ++i) {
    ASSERT_TRUE(channel.submit(RemoteOp::kPrfTls12, prf_body(i), now + 50 * kMs,
                               [&fired, &st, i](RemoteStatus s, BytesView) {
                                 ++fired[i];
                                 st[i] = s;
                               }));
  }
  channel.flush();
  EXPECT_EQ(channel.inflight(), static_cast<size_t>(kOps));

  channel.kill();
  EXPECT_FALSE(channel.alive());
  for (int i = 0; i < kOps; ++i) {
    ASSERT_EQ(fired[i], 1) << "op " << i;
    EXPECT_EQ(st[i], RemoteStatus::kChannelDown) << "op " << i;
  }
  // Dead channels refuse work instead of swallowing it.
  EXPECT_FALSE(channel.submit(RemoteOp::kPrfTls12, prf_body(0), 0,
                              [](RemoteStatus, BytesView) {}));
  const remote::RemoteChannelStats stats = channel.stats();
  EXPECT_EQ(stats.submitted, static_cast<uint64_t>(kOps));
  EXPECT_EQ(stats.failed, static_cast<uint64_t>(kOps));
  EXPECT_EQ(stats.completed + stats.expired + stats.failed, stats.submitted);
  EXPECT_EQ(channel.inflight(), 0u);
  EXPECT_EQ(channel.queued(), 0u);
}

// Byte-level bisection both ways (1-byte deliveries): FrameDecoder
// reassembly keeps every op completing with software parity.
TEST(RemoteChaos, BisectedMidFrameStreamStillCompletes) {
  uint64_t now = 1'000 * kMs;
  ChaosConfig cfg;
  cfg.bisect_bytes = 1;
  auto transport = std::make_unique<ChaosTransport>(cfg, cfg, &now);
  ChaosTransport* chaos = transport.get();
  RemoteChannel channel(std::move(transport));
  channel.set_clock([&now] { return now; });

  constexpr int kOps = 5;
  std::vector<Bytes> payload(kOps);
  std::vector<RemoteStatus> st(kOps, RemoteStatus::kChannelDown);
  int done = 0;
  for (int i = 0; i < kOps; ++i) {
    ASSERT_TRUE(channel.submit(RemoteOp::kPrfTls12, prf_body(i), now + 50 * kMs,
                               [&, i](RemoteStatus s, BytesView body) {
                                 st[i] = s;
                                 payload[i].assign(body.begin(), body.end());
                                 ++done;
                               }));
  }
  channel.flush();
  for (int iter = 0; iter < 2000 && done < kOps; ++iter) {
    now += 10 * kUs;
    chaos->step();
    channel.pump();
  }
  ASSERT_EQ(done, kOps);
  for (int i = 0; i < kOps; ++i) {
    EXPECT_EQ(st[i], RemoteStatus::kOk) << "op " << i;
    EXPECT_EQ(payload[i], prf_expect(i)) << "op " << i;
  }
}

// ------------------------------------------------ engine ladder ----------

Result<Bytes> run_prf(engine::QatEngineProvider& e, int i) {
  return e.prf_tls12(HashAlg::kSha256, to_bytes("secret" + std::to_string(i)),
                     "chaos", to_bytes("seed"), 32);
}

// QAT -> remote -> software through the engine, end to end: a healthy
// device keeps the remote tier idle; a resetting device diverts to the
// remote tier WITHOUT charging the class breaker (a live channel shields
// it); killing the channel then drops the ladder to software and the class
// breaker opens — remote is never bypassed while its channel is live.
TEST(RemoteChaos, EngineLadderUnderChannelDeath) {
  engine::QatEngineConfig ecfg;
  ecfg.offload_mode = engine::OffloadMode::kSync;
  ecfg.max_retries = 1;
  ecfg.retry_backoff_base_us = 1;
  ecfg.breaker_threshold = 2;
  ecfg.breaker_cooldown_ms = 60'000;  // no re-probe inside the test
  ecfg.remote_breaker_threshold = 100;

  qat::FaultPlan plan(0x1adde5);
  qat::DeviceConfig dcfg;
  dcfg.fault_plan = &plan;
  qat::QatDevice device(dcfg);
  engine::QatEngineProvider engine(device.allocate_instance(), ecfg);

  auto transport = std::make_unique<LoopbackTransport>();
  RemoteChannel channel(std::move(transport));
  engine.set_remote_backend(&channel);

  // Phase 0: healthy device — QAT serves, the remote tier is never touched.
  for (int i = 0; i < 3; ++i) {
    Result<Bytes> got = run_prf(engine, i);
    ASSERT_TRUE(got.is_ok());
    EXPECT_EQ(got.value(), prf_expect(i));
  }
  EXPECT_EQ(engine.stats().remote_ops, 0u);
  EXPECT_EQ(engine.stats().sw_fallbacks, 0u);

  // Phase 1: device reset latch — every op migrates down to the remote
  // tier. The class breaker must NOT be charged: the live channel is a
  // higher tier than software.
  plan.trigger_reset();
  for (int i = 10; i < 13; ++i) {
    Result<Bytes> got = run_prf(engine, i);
    ASSERT_TRUE(got.is_ok());
    EXPECT_EQ(got.value(), prf_expect(i));
  }
  EXPECT_EQ(engine.stats().remote_ops, 3u);
  EXPECT_EQ(engine.stats().remote_completed, 3u);
  EXPECT_EQ(engine.stats().sw_fallbacks, 0u);
  EXPECT_EQ(engine.stats().breaker_opens, 0u);
  EXPECT_EQ(engine.breaker_state(qat::OpClass::kPrf),
            engine::BreakerState::kClosed);

  // Phase 2: channel death — with no higher tier left, ops complete in
  // software and the per-class breaker is finally charged (opens at 2).
  channel.kill();
  for (int i = 20; i < 23; ++i) {
    Result<Bytes> got = run_prf(engine, i);
    ASSERT_TRUE(got.is_ok());
    EXPECT_EQ(got.value(), prf_expect(i));
  }
  EXPECT_EQ(engine.stats().sw_fallbacks, 3u);
  EXPECT_EQ(engine.stats().breaker_opens, 1u);
  EXPECT_EQ(engine.breaker_state(qat::OpClass::kPrf),
            engine::BreakerState::kOpen);

  // Conservation on both ledgers, with nothing left in flight.
  const engine::QatEngineStats& st = engine.stats();
  EXPECT_EQ(st.remote_ops,
            st.remote_completed + st.remote_expiries + st.remote_failures);
  EXPECT_EQ(engine.inflight_total(), 0u);
  const remote::RemoteChannelStats ch = channel.stats();
  EXPECT_EQ(ch.completed + ch.expired + ch.failed, ch.submitted);
  EXPECT_EQ(channel.inflight(), 0u);
}

// ------------------------------------------------- real-TCP soak ---------

// Two threads share one channel against a real OffloadServer over TCP —
// the mutex/completion discipline under the sanitizers, plus end-to-end
// parity through actual sockets.
TEST(RemoteChaos, SocketSoakSharedChannel) {
  remote::OffloadServer server;
  ASSERT_TRUE(server.start(0).is_ok());
  std::atomic<bool> stop{false};
  std::thread server_thread([&] { server.serve(stop); });

  Result<int> fd = net::tcp_connect(server.port());
  ASSERT_TRUE(fd.is_ok()) << fd.status().message();
  struct pollfd pfd{fd.value(), POLLOUT, 0};
  ASSERT_GT(::poll(&pfd, 1, 2'000), 0);
  ASSERT_EQ(pfd.revents & (POLLERR | POLLHUP), 0);

  RemoteChannel channel(std::make_unique<net::SocketTransport>(fd.value()));

  constexpr int kThreads = 2;
  constexpr int kOpsPerThread = 40;
  std::atomic<int> ok{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int id = t * kOpsPerThread + i;
        std::atomic<bool> done{false};
        RemoteStatus st = RemoteStatus::kChannelDown;
        Bytes payload;
        const uint64_t deadline =
            static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now().time_since_epoch())
                    .count()) +
            5'000 * kMs;
        ASSERT_TRUE(channel.submit(RemoteOp::kPrfTls12, prf_body(id), deadline,
                                   [&](RemoteStatus s, BytesView body) {
                                     st = s;
                                     payload.assign(body.begin(), body.end());
                                     done.store(true,
                                                std::memory_order_release);
                                   }));
        channel.flush();
        while (!done.load(std::memory_order_acquire)) {
          channel.pump();
          std::this_thread::yield();
        }
        EXPECT_EQ(st, RemoteStatus::kOk) << "op " << id;
        EXPECT_EQ(payload, prf_expect(id)) << "op " << id;
        if (st == RemoteStatus::kOk) ++ok;
      }
    });
  }
  for (auto& w : workers) w.join();
  stop.store(true);
  server_thread.join();

  EXPECT_EQ(ok.load(), kThreads * kOpsPerThread);
  const remote::RemoteChannelStats st = channel.stats();
  EXPECT_EQ(st.submitted, static_cast<uint64_t>(kThreads * kOpsPerThread));
  EXPECT_EQ(st.completed, st.submitted);
  EXPECT_EQ(st.expired + st.failed, 0u);
  EXPECT_EQ(channel.inflight(), 0u);
  EXPECT_EQ(server.total_stats().ops_ok,
            static_cast<uint64_t>(kThreads * kOpsPerThread));
}

}  // namespace
}  // namespace qtls
