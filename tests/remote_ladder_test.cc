// Three-tier fallback-ladder matrix (DESIGN.md §13): QAT lane state (up /
// failing / hot-removed) crossed with remote channel state (up / slow /
// dead), asserting which tier serves each op and — the load-bearing
// invariant — that the per-class breaker is charged ONLY when no higher
// tier is available: a live remote channel shields the class exactly like
// a surviving device lane, and the no-lane path (device hot-removed)
// never charges it at all. Also covers the remote_offload{} conf block.
// Select with `ctest -L remote`.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "engine/provider.h"
#include "engine/qat_engine.h"
#include "qat/device.h"
#include "qat/fault.h"
#include "qat/topology.h"
#include "remote/channel.h"
#include "remote_test_util.h"
#include "server/ssl_engine_conf.h"

namespace qtls {
namespace {

using remote::RemoteChannel;
using remote::testutil::LoopbackTransport;

Result<Bytes> run_prf(engine::QatEngineProvider& e, int i) {
  return e.prf_tls12(HashAlg::kSha256, to_bytes("secret" + std::to_string(i)),
                     "ladder", to_bytes("seed"), 32);
}

Bytes expect_prf(int i) {
  engine::SoftwareProvider sw;
  auto r = sw.prf_tls12(HashAlg::kSha256,
                        to_bytes("secret" + std::to_string(i)), "ladder",
                        to_bytes("seed"), 32);
  EXPECT_TRUE(r.is_ok());
  return r.value();
}

enum class QatState { kUp, kFailing, kRemoved };
enum class RemoteState { kUp, kSlow, kDead };

enum class Tier { kQat, kRemote, kSw };

struct MatrixCase {
  QatState qat;
  RemoteState remote;
  Tier serves;                       // who completes the ops
  bool class_open;                   // per-class breaker state afterwards
  uint64_t breaker_opens;            // class flips to software
  uint64_t remote_expiries;          // channel-deadline expiries seen
  bool remote_untouched;             // try_remote never even entered
};

const char* name(QatState s) {
  switch (s) {
    case QatState::kUp: return "qat-up";
    case QatState::kFailing: return "qat-failing";
    case QatState::kRemoved: return "qat-removed";
  }
  return "?";
}
const char* name(RemoteState s) {
  switch (s) {
    case RemoteState::kUp: return "remote-up";
    case RemoteState::kSlow: return "remote-slow";
    case RemoteState::kDead: return "remote-dead";
  }
  return "?";
}

constexpr int kOps = 3;

void run_case(const MatrixCase& c) {
  SCOPED_TRACE(std::string(name(c.qat)) + " x " + name(c.remote));

  engine::QatEngineConfig ecfg;
  ecfg.offload_mode = engine::OffloadMode::kSync;
  ecfg.max_retries = 1;
  ecfg.retry_backoff_base_us = 1;
  ecfg.breaker_threshold = 2;
  ecfg.breaker_cooldown_ms = 60'000;        // no class re-probe mid-case
  ecfg.remote_op_deadline_us = 2'000;       // bounds the kSlow waits
  ecfg.remote_breaker_threshold = 100;      // tier breaker out of the way
  ecfg.remote_breaker_cooldown_ms = 60'000;

  // QAT side. kUp/kFailing use the standalone single-device shape, where a
  // terminal failure reaches the retries-exhausted ladder point; kRemoved
  // uses a one-device topology whose device is hot-removed, exercising the
  // no-lane path instead.
  qat::FaultPlan plan(0x1adde5);
  std::unique_ptr<qat::QatDevice> device;
  std::unique_ptr<qat::DeviceTopology> topo;
  std::unique_ptr<engine::QatEngineProvider> eng;
  if (c.qat == QatState::kRemoved) {
    qat::TopologyConfig tc;
    tc.num_devices = 1;
    tc.numa_nodes = 1;
    tc.device.num_endpoints = 1;
    tc.device.engines_per_endpoint = 2;
    tc.device.ring_capacity = 32;
    tc.device.max_instances_per_endpoint = 4;
    topo = std::make_unique<qat::DeviceTopology>(tc);
    engine::DeviceInstanceSet set;
    set.device_id = 0;
    set.instances.push_back(topo->device(0).allocate_instance());
    std::vector<engine::DeviceInstanceSet> sets;
    sets.push_back(std::move(set));
    eng = std::make_unique<engine::QatEngineProvider>(topo.get(), 0,
                                                      std::move(sets), ecfg);
    ASSERT_TRUE(topo->hot_remove(0));
  } else {
    qat::DeviceConfig dcfg;
    dcfg.fault_plan = &plan;
    device = std::make_unique<qat::QatDevice>(dcfg);
    eng = std::make_unique<engine::QatEngineProvider>(
        device->allocate_instance(), ecfg);
    if (c.qat == QatState::kFailing) plan.trigger_reset();
  }

  // Remote side: a loopback server; kSlow parks frames without answering
  // (live-but-unresponsive), kDead is a client-visible channel death.
  auto transport = std::make_unique<LoopbackTransport>();
  LoopbackTransport* loop = transport.get();
  RemoteChannel channel(std::move(transport));
  if (c.remote == RemoteState::kSlow) loop->stall();
  if (c.remote == RemoteState::kDead) channel.kill();
  eng->set_remote_backend(&channel);

  for (int i = 0; i < kOps; ++i) {
    Result<Bytes> got = run_prf(*eng, i);
    ASSERT_TRUE(got.is_ok()) << got.status().message();
    EXPECT_EQ(got.value(), expect_prf(i));
  }

  const engine::QatEngineStats& st = eng->stats();
  switch (c.serves) {
    case Tier::kQat:
      EXPECT_EQ(st.completed, static_cast<uint64_t>(kOps));
      EXPECT_EQ(st.remote_ops, 0u);
      EXPECT_EQ(st.sw_fallbacks, 0u);
      break;
    case Tier::kRemote:
      EXPECT_EQ(st.remote_completed, static_cast<uint64_t>(kOps));
      EXPECT_EQ(st.sw_fallbacks, 0u);
      break;
    case Tier::kSw:
      EXPECT_EQ(st.sw_fallbacks, static_cast<uint64_t>(kOps));
      break;
  }
  EXPECT_EQ(eng->breaker_state(qat::OpClass::kPrf),
            c.class_open ? engine::BreakerState::kOpen
                         : engine::BreakerState::kClosed);
  EXPECT_EQ(st.breaker_opens, c.breaker_opens);
  EXPECT_EQ(st.remote_expiries, c.remote_expiries);
  if (c.remote_untouched) {
    EXPECT_EQ(st.remote_ops, 0u);
  }

  // Engine-side remote ledger balances and nothing is left in flight.
  EXPECT_EQ(st.remote_ops,
            st.remote_completed + st.remote_expiries + st.remote_failures);
  EXPECT_EQ(eng->inflight_total(), 0u);
  EXPECT_EQ(channel.inflight(), 0u);
  const remote::RemoteChannelStats ch = channel.stats();
  EXPECT_EQ(ch.completed + ch.expired + ch.failed, ch.submitted);
}

TEST(RemoteLadderMatrix, TierChoiceAndBreakerCharging) {
  const MatrixCase cases[] = {
      // A healthy device serves everything; the remote tier stays idle
      // regardless of its own state.
      {QatState::kUp, RemoteState::kUp, Tier::kQat, false, 0, 0, true},
      {QatState::kUp, RemoteState::kSlow, Tier::kQat, false, 0, 0, true},
      {QatState::kUp, RemoteState::kDead, Tier::kQat, false, 0, 0, true},
      // A failing device migrates down the ladder. A live channel takes
      // the ops AND shields the class breaker; a slow channel expires
      // per-op and software finishes, still without a class charge (the
      // tier counts as live while alive); only a DEAD channel lets the
      // class breaker charge — it opens at the threshold of 2.
      {QatState::kFailing, RemoteState::kUp, Tier::kRemote, false, 0, 0,
       false},
      {QatState::kFailing, RemoteState::kSlow, Tier::kSw, false, 0, kOps,
       false},
      {QatState::kFailing, RemoteState::kDead, Tier::kSw, true, 1, 0, true},
      // A hot-removed device takes the no-lane path: the remote tier is
      // tried first, and the class breaker is NEVER charged — lane probes
      // own recovery, and a class flip would outlive the outage.
      {QatState::kRemoved, RemoteState::kUp, Tier::kRemote, false, 0, 0,
       false},
      {QatState::kRemoved, RemoteState::kSlow, Tier::kSw, false, 0, kOps,
       false},
      {QatState::kRemoved, RemoteState::kDead, Tier::kSw, false, 0, 0, true},
  };
  for (const MatrixCase& c : cases) run_case(c);
}

// ------------------------------------------------ remote_offload{} conf --

TEST(RemoteOffloadConf, FullBlockMapsIntoSettings) {
  auto r = server::parse_ssl_engine_settings(R"(
    worker_processes 2;
    ssl_engine {
        use qat_engine;
        remote_offload {
            enable on;
            host 10.1.2.3;
            port 7433;
            max_batch 16;
            coalesce_window_us 200;
            op_deadline_us 5000;
            breaker_threshold 6;
            breaker_cooldown_ms 500;
        }
    }
  )");
  ASSERT_TRUE(r.is_ok()) << r.status().message();
  const server::SslEngineSettings& s = r.value();
  EXPECT_TRUE(s.remote.enabled);
  EXPECT_EQ(s.remote.host, "10.1.2.3");
  EXPECT_EQ(s.remote.port, 7433);
  EXPECT_EQ(s.remote.max_batch, 16u);
  EXPECT_EQ(s.remote.coalesce_window_us, 200u);
  // Deadline/breaker policy lands in the engine config — the engine owns
  // the ladder.
  EXPECT_EQ(s.engine.remote_op_deadline_us, 5'000u);
  EXPECT_EQ(s.engine.remote_breaker_threshold, 6);
  EXPECT_EQ(s.engine.remote_breaker_cooldown_ms, 500u);
}

TEST(RemoteOffloadConf, DefaultsOffWithoutBlock) {
  auto r = server::parse_ssl_engine_settings(R"(
    ssl_engine { use qat_engine; }
  )");
  ASSERT_TRUE(r.is_ok());
  EXPECT_FALSE(r.value().remote.enabled);
  EXPECT_EQ(r.value().remote.port, 0);
}

TEST(RemoteOffloadConf, RejectsBadValues) {
  // Enabled without a port is a config error, not a silent no-op.
  EXPECT_FALSE(server::parse_ssl_engine_settings(R"(
    ssl_engine { remote_offload { enable on; } }
  )").is_ok());
  EXPECT_FALSE(server::parse_ssl_engine_settings(R"(
    ssl_engine { remote_offload { enable maybe; port 1; } }
  )").is_ok());
  EXPECT_FALSE(server::parse_ssl_engine_settings(R"(
    ssl_engine { remote_offload { enable on; port 7433; max_batch 0; } }
  )").is_ok());
  EXPECT_FALSE(server::parse_ssl_engine_settings(R"(
    ssl_engine { remote_offload { enable on; port 70000; } }
  )").is_ok());
  EXPECT_FALSE(server::parse_ssl_engine_settings(R"(
    ssl_engine { remote_offload { enable on; port 7433;
                                  breaker_threshold 0; } }
  )").is_ok());
  // A disabled block with sane values still parses.
  EXPECT_TRUE(server::parse_ssl_engine_settings(R"(
    ssl_engine { remote_offload { enable off; port 7433; } }
  )").is_ok());
}

}  // namespace
}  // namespace qtls
