// Property/stress coverage for the multi-device balancer (DESIGN.md §12):
// randomized op streams from concurrent workers across 1/2/4-device fleets,
// asserting the invariants the placement layer promises —
//   * conservation: submitted == completed + abandoned, per provider, with
//     zero in-flight residue at quiescence;
//   * no cross-device misdelivery: every response's bytes must equal the
//     software provider's answer for THAT op's inputs, so a response routed
//     to the wrong caller fails loudly;
//   * bounded queue-depth skew: with affinity pinned and no faults every
//     worker's traffic stays on its device (skew zero); with everyone
//     contending for one device and a zero spill threshold the balancer
//     spreads load instead of piling on;
//   * chaos: concurrent hot_remove/re_add never loses an op and never
//     degrades to software while a healthy device remains.
// Runs in the ASan and TSan suite configs (`QTLS_SANITIZE=thread` must be
// clean — workers, engine threads and the chaos thread all touch the
// topology concurrently). Select with `ctest -L topology`.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "engine/qat_engine.h"
#include "qat/fault.h"
#include "qat/topology.h"

namespace qtls {
namespace {

struct StressRig {
  qat::DeviceTopology topo;
  std::vector<std::unique_ptr<engine::QatEngineProvider>> providers;

  StressRig(int devices, int workers, engine::QatEngineConfig ecfg,
            size_t spill_threshold = 32, uint64_t extra_service_ns = 0)
      : topo(make_config(devices, spill_threshold, extra_service_ns)) {
    for (int w = 0; w < workers; ++w) {
      std::vector<engine::DeviceInstanceSet> sets;
      for (int d = 0; d < devices; ++d) {
        engine::DeviceInstanceSet set;
        set.device_id = d;
        set.instances.push_back(topo.device(d).allocate_instance());
        sets.push_back(std::move(set));
      }
      providers.push_back(std::make_unique<engine::QatEngineProvider>(
          &topo, /*preferred=*/w % devices, std::move(sets), ecfg));
    }
  }

  static qat::TopologyConfig make_config(int devices, size_t spill_threshold,
                                         uint64_t extra_service_ns) {
    qat::TopologyConfig tc;
    tc.num_devices = devices;
    tc.device.num_endpoints = 1;
    tc.device.engines_per_endpoint = 2;
    tc.device.ring_capacity = 32;
    tc.device.max_instances_per_endpoint = 8;
    tc.device.extra_service_ns = extra_service_ns;
    tc.spill_threshold = spill_threshold;
    return tc;
  }
};

engine::QatEngineConfig stress_engine_config() {
  engine::QatEngineConfig ecfg;
  ecfg.offload_mode = engine::OffloadMode::kSync;
  ecfg.max_retries = 3;
  ecfg.retry_backoff_base_us = 10;
  ecfg.breaker_threshold = 2;
  ecfg.breaker_cooldown_ms = 10;
  return ecfg;
}

// One worker's randomized stream: each op's inputs come from the worker's
// own seeded rng and every result is checked against the software answer
// for those exact inputs — the misdelivery oracle.
int run_stream(engine::QatEngineProvider& e, uint64_t seed, int ops) {
  std::mt19937_64 rng(seed);
  engine::SoftwareProvider sw;
  int failures = 0;
  for (int i = 0; i < ops; ++i) {
    const std::string secret = "s" + std::to_string(rng());
    const std::string label = (rng() & 1) ? "stress-a" : "stress-b";
    const size_t out_len = 16 + (rng() % 48);
    auto got = e.prf_tls12(HashAlg::kSha256, to_bytes(secret), label.c_str(),
                           to_bytes("seed"), out_len);
    if (!got.is_ok()) {
      ++failures;
      continue;
    }
    auto want = sw.prf_tls12(HashAlg::kSha256, to_bytes(secret), label.c_str(),
                             to_bytes("seed"), out_len);
    if (got.value() != want.value()) ++failures;
  }
  return failures;
}

void assert_conserved(const StressRig& rig) {
  for (size_t w = 0; w < rig.providers.size(); ++w) {
    const engine::QatEngineStats& s = rig.providers[w]->stats();
    EXPECT_EQ(s.submitted, s.completed + s.deadline_expiries)
        << "worker " << w;
    EXPECT_EQ(rig.providers[w]->inflight_total(), 0u) << "worker " << w;
    EXPECT_EQ(rig.providers[w]->pending_deadline_ops(), 0u) << "worker " << w;
  }
}

class TopologyStress : public ::testing::TestWithParam<int> {};

// Pinned affinity, no faults: every worker's ops land on its own device and
// nowhere else — the per-device firmware counters carry exactly one stream
// each, i.e. queue-depth skew is zero by construction.
TEST_P(TopologyStress, AffinityKeepsStreamsSeparate) {
  const int devices = GetParam();
  constexpr int kOps = 150;
  StressRig rig(devices, /*workers=*/devices, stress_engine_config());

  std::vector<std::thread> threads;
  std::vector<int> failures(static_cast<size_t>(devices), 0);
  for (int w = 0; w < devices; ++w) {
    threads.emplace_back([&, w] {
      failures[static_cast<size_t>(w)] =
          run_stream(*rig.providers[static_cast<size_t>(w)],
                     0xace0ULL + static_cast<uint64_t>(w), kOps);
    });
  }
  for (auto& t : threads) t.join();

  for (int w = 0; w < devices; ++w)
    EXPECT_EQ(failures[static_cast<size_t>(w)], 0) << "worker " << w;
  assert_conserved(rig);
  for (int d = 0; d < devices; ++d) {
    const qat::FwCounters fw = rig.topo.device(d).fw_counters();
    EXPECT_EQ(fw.total_requests(), static_cast<uint64_t>(kOps))
        << "device " << d;
  }
  for (const auto& p : rig.providers) {
    EXPECT_EQ(p->stats().sw_fallbacks, 0u);
    EXPECT_EQ(p->stats().device_migrations, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Fleets, TopologyStress, ::testing::Values(1, 2, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return std::to_string(info.param) + "dev";
                         });

// Everyone prefers device 0, spill threshold zero, and each op holds an
// engine for a while: the balancer must shed contention onto other devices
// rather than queue the world on the affine one.
TEST(TopologyStressSkew, ZeroThresholdSpreadsContendedLoad) {
  constexpr int kDevices = 4;
  constexpr int kWorkers = 4;
  constexpr int kOps = 120;
  StressRig rig(kDevices, kWorkers, stress_engine_config(),
                /*spill_threshold=*/0, /*extra_service_ns=*/200'000);
  // Re-pin every worker to device 0 by rebuilding the providers with
  // preferred=0? Simpler: the rig striped preferred across devices, so
  // build dedicated providers here instead.
  rig.providers.clear();
  for (int w = 0; w < kWorkers; ++w) {
    std::vector<engine::DeviceInstanceSet> sets;
    for (int d = 0; d < kDevices; ++d) {
      engine::DeviceInstanceSet set;
      set.device_id = d;
      set.instances.push_back(rig.topo.device(d).allocate_instance());
      sets.push_back(std::move(set));
    }
    rig.providers.push_back(std::make_unique<engine::QatEngineProvider>(
        &rig.topo, /*preferred=*/0, std::move(sets), stress_engine_config()));
  }

  std::vector<std::thread> threads;
  std::vector<int> failures(kWorkers, 0);
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] {
      failures[static_cast<size_t>(w)] =
          run_stream(*rig.providers[static_cast<size_t>(w)],
                     0xbeefULL + static_cast<uint64_t>(w), kOps);
    });
  }
  for (auto& t : threads) t.join();

  for (int w = 0; w < kWorkers; ++w)
    EXPECT_EQ(failures[static_cast<size_t>(w)], 0) << "worker " << w;
  assert_conserved(rig);

  // The affine device must NOT have absorbed the whole load, and at least
  // one other device must have taken real traffic via spillover.
  const uint64_t total = static_cast<uint64_t>(kWorkers) * kOps;
  EXPECT_LT(rig.topo.device(0).fw_counters().total_requests(), total);
  int devices_used = 0;
  for (int d = 0; d < kDevices; ++d)
    if (rig.topo.device(d).fw_counters().total_requests() > 0) ++devices_used;
  EXPECT_GE(devices_used, 2);
  uint64_t spillovers = 0;
  for (const auto& p : rig.providers) spillovers += p->stats().lane_spillovers;
  EXPECT_GT(spillovers, 0u);
}

// Chaos: a device is ripped out and re-added repeatedly while randomized
// streams run. Nothing may be lost (conservation), nothing may be wrong
// (misdelivery oracle), and nothing may touch software — a healthy device
// is always available.
class TopologyChaos : public ::testing::TestWithParam<int> {};

TEST_P(TopologyChaos, HotRemoveReAddUnderRandomLoad) {
  const int devices = GetParam();
  const int workers = devices;
  constexpr int kOps = 200;
  StressRig rig(devices, workers, stress_engine_config());

  std::atomic<bool> stop{false};
  std::thread chaos([&] {
    std::mt19937_64 rng(0xc4a05ULL);
    while (!stop.load(std::memory_order_acquire)) {
      // One victim at a time: the fleet always keeps >= devices-1 online.
      const int victim = static_cast<int>(rng() % devices);
      rig.topo.hot_remove(victim);
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
      rig.topo.re_add(victim);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::vector<std::thread> threads;
  std::vector<int> failures(static_cast<size_t>(workers), 0);
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      failures[static_cast<size_t>(w)] =
          run_stream(*rig.providers[static_cast<size_t>(w)],
                     0xfadeULL + static_cast<uint64_t>(w), kOps);
    });
  }
  for (auto& t : threads) t.join();
  stop.store(true, std::memory_order_release);
  chaos.join();

  for (int w = 0; w < workers; ++w)
    EXPECT_EQ(failures[static_cast<size_t>(w)], 0) << "worker " << w;
  assert_conserved(rig);
  for (const auto& p : rig.providers) {
    // Migration keeps every op on hardware: the class breaker never flips.
    EXPECT_EQ(p->stats().sw_fallbacks, 0u);
    EXPECT_EQ(p->stats().breaker_opens, 0u);
    EXPECT_EQ(p->breaker_state(qat::OpClass::kPrf),
              engine::BreakerState::kClosed);
  }
  // The fleet ends whole.
  EXPECT_EQ(rig.topo.online_devices(), devices);
}

INSTANTIATE_TEST_SUITE_P(Fleets, TopologyChaos, ::testing::Values(2, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return std::to_string(info.param) + "dev";
                         });

}  // namespace
}  // namespace qtls
