// Contention stress for the lock-free dispatch path: several submitter
// threads drive one endpoint through deliberately tiny rings, so every
// moving part is exercised under pressure — the §3.2 ring-full retry path,
// the per-engine futex wakeups, the claim protocol racing multiple engines
// over multiple instances, and the MPSC response rings with all engines
// pushing concurrently. Run under -DQTLS_SANITIZE=thread this is the
// dispatch path's race detector workload.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "qat/device.h"

namespace qtls::qat {
namespace {

CryptoRequest counting_request(uint64_t id, std::atomic<int>* computed,
                               std::atomic<int>* responded) {
  CryptoRequest req;
  req.request_id = id;
  req.kind = OpKind::kPrfTls12;
  req.compute = [computed] {
    computed->fetch_add(1, std::memory_order_relaxed);
    return true;
  };
  req.on_response = [responded](const CryptoResponse& r) {
    EXPECT_TRUE(r.success);
    responded->fetch_add(1, std::memory_order_relaxed);
  };
  return req;
}

// Each submitter owns one instance (the SPSC submit contract) but all of
// them share the endpoint's engines; tiny rings force constant ring-full
// rejections and re-submissions.
TEST(QatStress, ManySubmittersTinyRings) {
  constexpr int kSubmitters = 4;
  constexpr int kOpsPerSubmitter = 2'000;

  DeviceConfig cfg;
  cfg.num_endpoints = 1;
  cfg.engines_per_endpoint = 3;
  cfg.ring_capacity = 2;  // tiny: the retry path is the common case
  cfg.max_instances_per_endpoint = kSubmitters;
  QatDevice device(cfg);

  std::vector<CryptoInstance*> instances;
  for (int i = 0; i < kSubmitters; ++i) {
    CryptoInstance* inst = device.allocate_instance();
    ASSERT_NE(inst, nullptr);
    instances.push_back(inst);
  }

  std::atomic<int> computed{0}, responded{0};
  std::atomic<uint64_t> rejected{0};
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      CryptoInstance* inst = instances[static_cast<size_t>(s)];
      for (int i = 0; i < kOpsPerSubmitter; ++i) {
        const uint64_t id =
            static_cast<uint64_t>(s) * kOpsPerSubmitter + i + 1;
        while (!inst->submit(counting_request(id, &computed, &responded))) {
          rejected.fetch_add(1, std::memory_order_relaxed);
          inst->poll();  // drain our own responses to make room
          std::this_thread::yield();
        }
        if ((i & 63) == 0) inst->poll();
      }
      // Drain the tail: everything this instance submitted must come back.
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(30);
      while (inst->inflight() > 0 &&
             std::chrono::steady_clock::now() < deadline) {
        inst->poll();
        std::this_thread::yield();
      }
      EXPECT_EQ(inst->inflight(), 0u);
    });
  }
  for (auto& t : submitters) t.join();

  constexpr int kTotal = kSubmitters * kOpsPerSubmitter;
  EXPECT_EQ(computed.load(), kTotal);
  EXPECT_EQ(responded.load(), kTotal);

  const FwCounters fw = device.fw_counters();
  EXPECT_EQ(fw.requests[static_cast<int>(OpClass::kPrf)],
            static_cast<uint64_t>(kTotal));
  EXPECT_EQ(fw.responses[static_cast<int>(OpClass::kPrf)],
            static_cast<uint64_t>(kTotal));
  // With 2-slot rings and 8'000 ops, the ring-full path must actually fire.
  EXPECT_GT(rejected.load(), 0u);
}

// Batched submits under the same contention: submit_batch must accept a
// prefix, never lose or duplicate a request, and issue wakeups that keep
// the engines draining.
TEST(QatStress, BatchedSubmittersTinyRings) {
  constexpr int kSubmitters = 3;
  constexpr int kOpsPerSubmitter = 1'536;
  constexpr size_t kBatch = 8;

  DeviceConfig cfg;
  cfg.num_endpoints = 1;
  cfg.engines_per_endpoint = 2;
  cfg.ring_capacity = 4;
  cfg.max_instances_per_endpoint = kSubmitters;
  QatDevice device(cfg);

  std::vector<CryptoInstance*> instances;
  for (int i = 0; i < kSubmitters; ++i)
    instances.push_back(device.allocate_instance());

  std::atomic<int> computed{0}, responded{0};
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      CryptoInstance* inst = instances[static_cast<size_t>(s)];
      uint64_t next_id = static_cast<uint64_t>(s) * kOpsPerSubmitter + 1;
      int remaining = kOpsPerSubmitter;
      while (remaining > 0) {
        const size_t want =
            std::min(kBatch, static_cast<size_t>(remaining));
        std::vector<CryptoRequest> batch;
        for (size_t i = 0; i < want; ++i)
          batch.push_back(
              counting_request(next_id + i, &computed, &responded));
        const size_t accepted =
            inst->submit_batch({batch.data(), batch.size()});
        ASSERT_LE(accepted, want);
        next_id += accepted;
        remaining -= static_cast<int>(accepted);
        if (accepted < want) {
          inst->poll();
          std::this_thread::yield();
        }
      }
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(30);
      while (inst->inflight() > 0 &&
             std::chrono::steady_clock::now() < deadline) {
        inst->poll();
        std::this_thread::yield();
      }
      EXPECT_EQ(inst->inflight(), 0u);
    });
  }
  for (auto& t : submitters) t.join();

  constexpr int kTotal = kSubmitters * kOpsPerSubmitter;
  EXPECT_EQ(computed.load(), kTotal);
  EXPECT_EQ(responded.load(), kTotal);
  EXPECT_EQ(device.fw_counters().total_requests(),
            static_cast<uint64_t>(kTotal));
}

// The inflight gate (response-ring backpressure) must hold even when the
// submitter never polls: accepted submissions are bounded by
// inflight_limit(), and every accepted one is eventually retrievable.
TEST(QatStress, BackpressureBoundsInflight) {
  DeviceConfig cfg;
  cfg.num_endpoints = 1;
  cfg.engines_per_endpoint = 2;
  cfg.ring_capacity = 4;
  QatDevice device(cfg);
  CryptoInstance* inst = device.allocate_instance();

  std::atomic<int> computed{0}, responded{0};
  size_t accepted = 0;
  for (uint64_t id = 1; id <= 10'000; ++id) {
    if (inst->submit(counting_request(id, &computed, &responded)))
      ++accepted;
    else
      break;
  }
  EXPECT_GT(accepted, 0u);
  EXPECT_LE(accepted, inst->inflight_limit());
  EXPECT_EQ(inst->inflight(), accepted);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (responded.load() < static_cast<int>(accepted) &&
         std::chrono::steady_clock::now() < deadline) {
    inst->poll();
    std::this_thread::yield();
  }
  EXPECT_EQ(responded.load(), static_cast<int>(accepted));
  EXPECT_EQ(inst->inflight(), 0u);
}

}  // namespace
}  // namespace qtls::qat
