// The §4.2 event-disorder scenario, forced deterministically: a read event
// arrives on a connection's socket while the worker is expecting that
// connection's async event. The worker must save the read event, process
// the async resume first, then replay the read.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>

#include "crypto/keystore.h"
#include "server_test_util.h"

namespace qtls::server {
namespace {

// Client-side transport that parks outgoing bytes in a buffer; the test
// releases them to the real socket in controlled slices.
class HoldTransport final : public tls::Transport {
 public:
  explicit HoldTransport(int fd) : fd_(fd) { (void)net::set_nonblocking(fd); }
  ~HoldTransport() override { ::close(fd_); }

  tls::IoResult read(uint8_t* buf, size_t len) override {
    const ssize_t n = ::recv(fd_, buf, len, 0);
    if (n > 0) return {tls::IoStatus::kOk, static_cast<size_t>(n)};
    if (n == 0) return {tls::IoStatus::kClosed, 0};
    return {tls::IoStatus::kWouldBlock, 0};
  }

  tls::IoResult write(const uint8_t* buf, size_t len) override {
    held_.insert(held_.end(), buf, buf + len);
    return {tls::IoStatus::kOk, len};
  }

  size_t held() const { return held_.size(); }

  // Pushes exactly the first TLS record (header + body) to the socket;
  // returns false when no complete record is held.
  bool release_one_record() {
    if (held_.size() < 5) return false;
    const size_t len = 5 + (static_cast<size_t>(held_[3]) << 8 | held_[4]);
    if (held_.size() < len) return false;
    send_all(held_.data(), len);
    held_.erase(held_.begin(), held_.begin() + static_cast<ptrdiff_t>(len));
    return true;
  }

  void release_all() {
    send_all(held_.data(), held_.size());
    held_.clear();
  }

 private:
  void send_all(const uint8_t* buf, size_t len) {
    size_t off = 0;
    while (off < len) {
      const ssize_t n = ::send(fd_, buf + off, len - off, MSG_NOSIGNAL);
      if (n > 0) off += static_cast<size_t>(n);
    }
  }

  int fd_;
  Bytes held_;
};

TEST(WorkerDisorder, ReadEventDuringAsyncWaitIsSavedAndReplayed) {
  // QTLS worker: async offload + heuristic polling + kernel bypass.
  qat::DeviceConfig dcfg;
  dcfg.num_endpoints = 1;
  dcfg.engines_per_endpoint = 4;
  qat::QatDevice device(dcfg);
  engine::QatEngineConfig qcfg;
  engine::QatEngineProvider qat(device.allocate_instance(), qcfg);

  tls::TlsContextConfig scfg;
  scfg.is_server = true;
  scfg.async_mode = true;
  scfg.cipher_suites = {tls::CipherSuite::kTlsRsaWithAes128CbcSha};
  tls::TlsContext sctx(scfg, &qat);
  sctx.credentials().rsa_key = &test_rsa2048();

  WorkerConfig wcfg;
  wcfg.notify = NotifyScheme::kKernelBypass;
  Worker worker(&sctx, &qat, wcfg);

  auto pair = net::make_socketpair();
  ASSERT_TRUE(pair.is_ok());
  ASSERT_TRUE(worker.adopt(pair.value().second).is_ok());

  engine::SoftwareProvider client_provider;
  tls::TlsContextConfig ccfg;
  ccfg.cipher_suites = scfg.cipher_suites;
  tls::TlsContext cctx(ccfg, &client_provider);
  HoldTransport transport(pair.value().first);
  tls::TlsConnection client(&cctx, &transport);

  // Flight 1: ClientHello. Release it, let the server answer.
  ASSERT_EQ(client.handshake(), tls::TlsResult::kWantRead);
  transport.release_all();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  auto pump_client = [&] {
    while (std::chrono::steady_clock::now() < deadline) {
      const tls::TlsResult r = client.handshake();
      if (r != tls::TlsResult::kWantRead) return r;
      if (worker.run_once(0) == 0 && transport.held() > 0) return r;
    }
    return tls::TlsResult::kError;
  };
  // Drive until the client has produced its second flight
  // (CKE + CCS + Finished) into the hold buffer.
  while (transport.held() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    (void)client.handshake();
    worker.run_once(0);
  }
  ASSERT_GT(transport.held(), 0u);

  // Release ONLY the ClientKeyExchange record: the server starts the RSA
  // decrypt (milliseconds on the device) and parks the connection.
  ASSERT_TRUE(transport.release_one_record());
  while (worker.stats().async_parks == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    worker.run_once(0);
  }
  ASSERT_GT(worker.stats().async_parks, 0u);

  // While the async event is expected, the remaining flight arrives: the
  // §4.2 disorder. The worker must defer (not process) it.
  transport.release_all();
  worker.run_once(0);
  EXPECT_GT(worker.stats().disorder_events, 0u);

  // Recovery: the async event resumes the handshake handler, then the
  // saved read event is replayed and the handshake completes.
  while (!client.handshake_complete() &&
         std::chrono::steady_clock::now() < deadline) {
    const tls::TlsResult r = pump_client();
    if (transport.held() > 0) transport.release_all();
    if (r == tls::TlsResult::kOk) break;
    worker.run_once(0);
  }
  ASSERT_TRUE(client.handshake_complete());
  // And the connection still works: serve one request through it.
  ASSERT_EQ(client.write(server::build_http_request("/x", false)),
            tls::TlsResult::kOk);
  transport.release_all();
  Bytes response;
  while (response.empty() && std::chrono::steady_clock::now() < deadline) {
    worker.run_once(0);
    (void)client.read(&response);
  }
  EXPECT_FALSE(response.empty());
  EXPECT_EQ(worker.stats().handshakes_completed, 1u);
}

}  // namespace
}  // namespace qtls::server
