// Shared rig for the remote-offload tests (DESIGN.md §13): an in-process
// loopback transport that splices a RemoteChannel directly onto an
// OffloadServerCore, and a seeded chaos variant that cuts the byte stream
// into whole frames and then drops, duplicates, delays and reorders them —
// plus byte-level bisection to exercise FrameDecoder reassembly. Frame
// granularity keeps the stream parseable, so every surviving delivery is a
// well-formed frame and the invariants under test are the channel's, not
// the decoder's.
#pragma once

#include <algorithm>
#include <memory>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "remote/offload_server.h"
#include "remote/wire.h"
#include "tls/transport.h"

namespace qtls::remote::testutil {

// Splits a leading whole frame (length prefix + body) off `stream` into
// `frame`; false when the stream holds less than one full frame.
inline bool cut_frame(Bytes* stream, Bytes* frame) {
  if (stream->size() < 4) return false;
  const uint32_t len = static_cast<uint32_t>((*stream)[0]) << 24 |
                       static_cast<uint32_t>((*stream)[1]) << 16 |
                       static_cast<uint32_t>((*stream)[2]) << 8 |
                       static_cast<uint32_t>((*stream)[3]);
  const size_t total = 4 + len;
  if (stream->size() < total) return false;
  frame->assign(stream->begin(),
                stream->begin() + static_cast<ptrdiff_t>(total));
  stream->erase(stream->begin(),
                stream->begin() + static_cast<ptrdiff_t>(total));
  return true;
}

// Straight loopback: the channel's writes feed the server core directly,
// reads drain the server's output. stall() parks written frames without
// delivering them (a live-but-unresponsive tier); kill() fails all I/O.
class LoopbackTransport final : public tls::Transport {
 public:
  explicit LoopbackTransport(OffloadServerCore::Config cfg =
                                 OffloadServerCore::Config())
      : core_(cfg) {}

  tls::IoResult read(uint8_t* buf, size_t len) override {
    if (dead_) return {tls::IoStatus::kError, 0};
    const Bytes& out = core_.output();
    if (out.empty()) return {tls::IoStatus::kWouldBlock, 0};
    const size_t n = std::min(len, out.size());
    std::copy(out.begin(), out.begin() + static_cast<ptrdiff_t>(n), buf);
    core_.consume(n);
    return {tls::IoStatus::kOk, n};
  }

  tls::IoResult write(const uint8_t* buf, size_t len) override {
    if (dead_) return {tls::IoStatus::kError, 0};
    if (stalled_) {
      parked_.insert(parked_.end(), buf, buf + len);
      return {tls::IoStatus::kOk, len};
    }
    if (!core_.on_bytes(BytesView(buf, len)).is_ok())
      return {tls::IoStatus::kError, 0};
    return {tls::IoStatus::kOk, len};
  }

  void stall() { stalled_ = true; }
  void kill() { dead_ = true; }
  OffloadServerCore& core() { return core_; }

 private:
  OffloadServerCore core_;
  Bytes parked_;
  bool stalled_ = false;
  bool dead_ = false;
};

struct ChaosConfig {
  uint64_t seed = 1;
  double drop_rate = 0;
  double dup_rate = 0;
  double reorder_rate = 0;    // held back behind later frames
  uint64_t latency_ns = 0;    // base one-way frame latency
  uint64_t jitter_ns = 0;     // uniform extra [0, jitter)
  size_t bisect_bytes = 0;    // >0: deliver/read at most this many bytes
                              // per call (mid-frame splits)
};

struct ChaosStats {
  uint64_t frames = 0;
  uint64_t dropped = 0;
  uint64_t duplicated = 0;
  uint64_t reordered = 0;
};

// One chaotic direction: whole frames in, (fewer/more, delayed, shuffled)
// frames out against a caller-owned virtual clock.
class ChaosLink {
 public:
  explicit ChaosLink(ChaosConfig cfg) : cfg_(cfg), rng_(cfg.seed) {}

  void push(Bytes frame, uint64_t now_ns) {
    ++stats_.frames;
    if (rng_.uniform01() < cfg_.drop_rate) {
      ++stats_.dropped;
      return;
    }
    const int copies = rng_.uniform01() < cfg_.dup_rate ? 2 : 1;
    if (copies == 2) ++stats_.duplicated;
    for (int c = 0; c < copies; ++c) {
      uint64_t at = now_ns + cfg_.latency_ns;
      if (cfg_.jitter_ns) at += rng_.uniform(cfg_.jitter_ns);
      if (rng_.uniform01() < cfg_.reorder_rate) {
        ++stats_.reordered;
        at += 2 * (cfg_.latency_ns ? cfg_.latency_ns : 1000);
      }
      queue_.push_back({at, seq_++, frame});
    }
  }

  // Appends every frame due by `now_ns` to `out` in delivery order.
  void deliver_due(uint64_t now_ns, Bytes* out) {
    std::stable_sort(queue_.begin(), queue_.end(),
                     [](const Pending& a, const Pending& b) {
                       return a.at_ns != b.at_ns ? a.at_ns < b.at_ns
                                                 : a.seq < b.seq;
                     });
    size_t taken = 0;
    for (const Pending& p : queue_) {
      if (p.at_ns > now_ns) break;
      out->insert(out->end(), p.frame.begin(), p.frame.end());
      ++taken;
    }
    queue_.erase(queue_.begin(), queue_.begin() + static_cast<ptrdiff_t>(taken));
  }

  size_t pending() const { return queue_.size(); }
  const ChaosStats& stats() const { return stats_; }

 private:
  struct Pending {
    uint64_t at_ns;
    uint64_t seq;
    Bytes frame;
  };
  ChaosConfig cfg_;
  Rng rng_;
  uint64_t seq_ = 0;
  std::vector<Pending> queue_;
  ChaosStats stats_;
};

// Chaotic loopback: channel <-> [to_server link] <-> server core <->
// [to_client link] <-> channel reads. The owner advances the shared
// virtual clock and calls step() to move due frames; the channel's pump()
// then sees whatever survived. kill() fails all subsequent I/O.
class ChaosTransport final : public tls::Transport {
 public:
  ChaosTransport(ChaosConfig to_server, ChaosConfig to_client,
                 const uint64_t* now_ns,
                 OffloadServerCore::Config server_cfg =
                     OffloadServerCore::Config())
      : core_(server_cfg),
        to_server_(to_server),
        to_client_(to_client),
        bisect_(to_client.bisect_bytes),
        now_ns_(now_ns) {}

  tls::IoResult read(uint8_t* buf, size_t len) override {
    if (dead_) return {tls::IoStatus::kError, 0};
    if (rx_.empty()) return {tls::IoStatus::kWouldBlock, 0};
    size_t n = std::min(len, rx_.size());
    if (bisect_) n = std::min(n, bisect_);
    std::copy(rx_.begin(), rx_.begin() + static_cast<ptrdiff_t>(n), buf);
    rx_.erase(rx_.begin(), rx_.begin() + static_cast<ptrdiff_t>(n));
    return {tls::IoStatus::kOk, n};
  }

  tls::IoResult write(const uint8_t* buf, size_t len) override {
    if (dead_) return {tls::IoStatus::kError, 0};
    tx_.insert(tx_.end(), buf, buf + len);
    Bytes frame;
    while (cut_frame(&tx_, &frame)) to_server_.push(frame, *now_ns_);
    return {tls::IoStatus::kOk, len};
  }

  // Moves due frames into the server (optionally bisected) and the
  // server's responses back toward the client. Call after advancing the
  // clock, before pumping the channel.
  void step() {
    if (dead_) return;
    Bytes to_srv;
    to_server_.deliver_due(*now_ns_, &to_srv);
    if (!to_srv.empty()) {
      const size_t chunk = bisect_ ? bisect_ : to_srv.size();
      for (size_t off = 0; off < to_srv.size(); off += chunk) {
        const size_t n = std::min(chunk, to_srv.size() - off);
        // A poisoned server stream is a test bug here: chaos is frame-
        // granular, so every delivery parses.
        if (!core_.on_bytes(BytesView(to_srv.data() + off, n)).is_ok()) {
          dead_ = true;
          return;
        }
      }
    }
    if (!core_.output().empty()) {
      srv_out_.insert(srv_out_.end(), core_.output().begin(),
                      core_.output().end());
      core_.consume(core_.output().size());
      Bytes frame;
      while (cut_frame(&srv_out_, &frame)) to_client_.push(frame, *now_ns_);
    }
    to_client_.deliver_due(*now_ns_, &rx_);
  }

  void kill() { dead_ = true; }
  OffloadServerCore& core() { return core_; }
  ChaosLink& to_server() { return to_server_; }
  ChaosLink& to_client() { return to_client_; }
  size_t undelivered() const {
    return to_server_.pending() + to_client_.pending() + rx_.size();
  }

 private:
  OffloadServerCore core_;
  ChaosLink to_server_;
  ChaosLink to_client_;
  size_t bisect_;
  const uint64_t* now_ns_;
  Bytes tx_;       // client bytes not yet a whole frame
  Bytes srv_out_;  // server bytes not yet a whole frame
  Bytes rx_;       // delivered, readable by the channel
  bool dead_ = false;
};

}  // namespace qtls::remote::testutil
