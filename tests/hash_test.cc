#include <gtest/gtest.h>

#include "crypto/hash.h"

namespace qtls {
namespace {

TEST(Sha1, KnownVectors) {
  EXPECT_EQ(to_hex(sha1(to_bytes("abc"))),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(to_hex(sha1(Bytes{})),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha256, KnownVectors) {
  EXPECT_EQ(to_hex(sha256(to_bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(to_hex(sha256(Bytes{})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(
      to_hex(sha256(to_bytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha384, KnownVector) {
  EXPECT_EQ(to_hex(sha384(to_bytes("abc"))),
            "cb00753f45a35e8bb5a03d699ac65007272c32ab0eded1631a8b605a43ff5bed"
            "8086072ba1e7cc2358baeca134c825a7");
}

TEST(Sha512, KnownVector) {
  EXPECT_EQ(to_hex(sha512(to_bytes("abc"))),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
}

TEST(Hash, StreamingMatchesOneShot) {
  const std::string msg =
      "The quick brown fox jumps over the lazy dog, repeatedly, to cross "
      "block boundaries in the streaming interface. ";
  std::string big;
  for (int i = 0; i < 50; ++i) big += msg;

  for (HashAlg alg : {HashAlg::kSha1, HashAlg::kSha256, HashAlg::kSha384,
                      HashAlg::kSha512}) {
    auto ctx = make_hash(alg);
    // Feed in awkward chunk sizes.
    size_t off = 0;
    size_t chunk = 1;
    const Bytes data = to_bytes(big);
    while (off < data.size()) {
      const size_t take = std::min(chunk, data.size() - off);
      ctx->update(BytesView(data.data() + off, take));
      off += take;
      chunk = chunk * 2 + 1;
    }
    EXPECT_EQ(ctx->finish(), hash(alg, data)) << hash_name(alg);
  }
}

TEST(Hash, CloneForksState) {
  auto ctx = make_hash(HashAlg::kSha256);
  ctx->update(to_bytes("hello "));
  auto fork = ctx->clone();
  ctx->update(to_bytes("world"));
  fork->update(to_bytes("there"));
  EXPECT_EQ(ctx->finish(), sha256(to_bytes("hello world")));
  EXPECT_EQ(fork->finish(), sha256(to_bytes("hello there")));
}

TEST(Hash, SizesAndNames) {
  EXPECT_EQ(hash_digest_size(HashAlg::kSha1), 20u);
  EXPECT_EQ(hash_digest_size(HashAlg::kSha256), 32u);
  EXPECT_EQ(hash_digest_size(HashAlg::kSha384), 48u);
  EXPECT_EQ(hash_digest_size(HashAlg::kSha512), 64u);
  EXPECT_EQ(hash_block_size(HashAlg::kSha256), 64u);
  EXPECT_EQ(hash_block_size(HashAlg::kSha384), 128u);
  EXPECT_STREQ(hash_name(HashAlg::kSha1), "SHA1");
}

TEST(Hmac, Rfc2202Sha1) {
  // Test case 1 of RFC 2202.
  const Bytes key(20, 0x0b);
  EXPECT_EQ(to_hex(hmac(HashAlg::kSha1, key, to_bytes("Hi There"))),
            "b617318655057264e28bc0b6fb378c8ef146be00");
  // Test case 2: key "Jefe", data "what do ya want for nothing?"
  EXPECT_EQ(to_hex(hmac(HashAlg::kSha1, to_bytes("Jefe"),
                        to_bytes("what do ya want for nothing?"))),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
}

TEST(Hmac, Rfc4231Sha256) {
  // Test case 1 of RFC 4231.
  const Bytes key(20, 0x0b);
  EXPECT_EQ(to_hex(hmac(HashAlg::kSha256, key, to_bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
  // Test case 2.
  EXPECT_EQ(to_hex(hmac(HashAlg::kSha256, to_bytes("Jefe"),
                        to_bytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, LongKeyIsHashed) {
  // Keys longer than the block size must be hashed first; equivalent short
  // key is hash(key).
  const Bytes long_key(200, 0xaa);
  const Bytes short_key = sha256(long_key);
  const Bytes msg = to_bytes("payload");
  EXPECT_EQ(hmac(HashAlg::kSha256, long_key, msg),
            hmac(HashAlg::kSha256, short_key, msg));
}

TEST(Hmac, StreamingMatchesOneShot) {
  const Bytes key = to_bytes("secret-key");
  const Bytes part1 = to_bytes("part one|");
  const Bytes part2 = to_bytes("part two");
  HmacCtx ctx(HashAlg::kSha256, key);
  ctx.update(part1);
  ctx.update(part2);
  Bytes all = part1;
  append(all, part2);
  EXPECT_EQ(ctx.finish(), hmac(HashAlg::kSha256, key, all));
}

TEST(Hmac, DifferentKeysDiffer) {
  const Bytes msg = to_bytes("same message");
  EXPECT_NE(hmac(HashAlg::kSha256, to_bytes("k1"), msg),
            hmac(HashAlg::kSha256, to_bytes("k2"), msg));
}

}  // namespace
}  // namespace qtls
