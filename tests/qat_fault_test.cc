// Deterministic fault-injection coverage: every fault kind (error response,
// dropped response, engine stall, device reset) exercised on BOTH backends —
// the real-time device model (src/qat/, engine threads) and the virtual-time
// DES model (src/sim/) — extending qat_parity_test's discipline to faulty
// runs: the two planes must agree on what a fault does to the response
// stream, the inflight accounting and the firmware counters. Plus the
// engine-level recovery paths: per-op deadline on dropped responses and
// bounded retry on transient errors.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "engine/qat_engine.h"
#include "qat/device.h"
#include "qat/fault.h"
#include "sim/costs.h"
#include "sim/qat_sim.h"

namespace qtls {
namespace {

using qat::CryptoStatus;
using qat::FaultKind;

// --- decision-stream determinism -------------------------------------------

TEST(FaultPlan, SameSeedSameDecisionStream) {
  qat::FaultPlan a(/*seed=*/42), b(/*seed=*/42);
  qat::FaultRates rates;
  rates.error_rate = 0.2;
  rates.drop_rate = 0.1;
  rates.stall_rate = 0.1;
  rates.stall_ns = 500;
  a.set_rates_all(rates);
  b.set_rates_all(rates);

  int injected = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto da = a.decide(qat::OpKind::kRsa2048Priv);
    const auto db = b.decide(qat::OpKind::kRsa2048Priv);
    ASSERT_EQ(da.kind, db.kind) << "diverged at op " << i;
    ASSERT_EQ(da.stall_ns, db.stall_ns);
    if (da.kind != FaultKind::kNone) ++injected;
  }
  // ~40% fault rate over 1000 draws: statistically impossible to be zero.
  EXPECT_GT(injected, 0);
  EXPECT_EQ(a.counters().decisions.load(), 1000u);
  EXPECT_EQ(a.counters().injected_total(), b.counters().injected_total());
  EXPECT_EQ(a.ops_seen(qat::OpKind::kRsa2048Priv), 1000u);
}

TEST(FaultPlan, ScheduledFaultsWinOverRates) {
  qat::FaultPlan plan(7);
  plan.schedule(qat::OpKind::kPrfTls12, 2, FaultKind::kError);
  EXPECT_EQ(plan.decide(qat::OpKind::kPrfTls12).kind, FaultKind::kNone);
  EXPECT_EQ(plan.decide(qat::OpKind::kPrfTls12).kind, FaultKind::kError);
  EXPECT_EQ(plan.decide(qat::OpKind::kPrfTls12).kind, FaultKind::kNone);
  // Other kinds have their own service-order counters.
  EXPECT_EQ(plan.decide(qat::OpKind::kRsa2048Priv).kind, FaultKind::kNone);
  EXPECT_EQ(plan.counters().injected_errors.load(), 1u);
}

// --- table-driven: every fault kind, real-time backend ----------------------

struct FaultCase {
  const char* name;
  FaultKind kind;
  uint64_t stall_ns;
  CryptoStatus expect_status;  // status of the faulted op (if delivered)
  bool delivered;              // false => dropped (no response ever)
};

const FaultCase kFaultCases[] = {
    {"error", FaultKind::kError, 0, CryptoStatus::kDeviceError, true},
    {"reset", FaultKind::kReset, 0, CryptoStatus::kDeviceReset, true},
    {"stall", FaultKind::kStall, 200'000, CryptoStatus::kSuccess, true},
    {"drop", FaultKind::kDrop, 0, CryptoStatus::kSuccess, false},
};

TEST(QatFault, RealBackendEveryFaultKind) {
  for (const FaultCase& fc : kFaultCases) {
    SCOPED_TRACE(fc.name);
    qat::FaultPlan plan(1);
    // Fault the 2nd of 3 PRF ops; neighbours must be untouched.
    plan.schedule(qat::OpKind::kPrfTls12, 2, fc.kind, fc.stall_ns);

    qat::DeviceConfig cfg;
    cfg.num_endpoints = 1;
    cfg.engines_per_endpoint = 1;  // one engine => service order == ring order
    cfg.ring_capacity = 8;
    cfg.fault_plan = &plan;
    qat::QatDevice device(cfg);
    qat::CryptoInstance* inst = device.allocate_instance();

    std::vector<std::pair<uint64_t, CryptoStatus>> responses;
    std::atomic<int> responded{0};
    std::atomic<int> computed{0};
    for (uint64_t id = 1; id <= 3; ++id) {
      qat::CryptoRequest req;
      req.request_id = id;
      req.kind = qat::OpKind::kPrfTls12;
      req.compute = [&computed] {
        computed.fetch_add(1, std::memory_order_relaxed);
        return true;
      };
      req.on_response = [&responses,
                         &responded](const qat::CryptoResponse& r) {
        responses.emplace_back(r.request_id, r.status);
        responded.fetch_add(1, std::memory_order_release);
      };
      ASSERT_TRUE(inst->submit(req));
    }

    const int expect_responses = fc.delivered ? 3 : 2;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (responded.load(std::memory_order_acquire) < expect_responses &&
           std::chrono::steady_clock::now() < deadline) {
      inst->poll();
      std::this_thread::yield();
    }
    ASSERT_EQ(responded.load(), expect_responses);

    if (fc.delivered) {
      ASSERT_EQ(responses.size(), 3u);
      EXPECT_EQ(responses[0].second, CryptoStatus::kSuccess);
      EXPECT_EQ(responses[1].second, fc.expect_status);
      EXPECT_EQ(responses[2].second, CryptoStatus::kSuccess);
      if (fc.kind == FaultKind::kError || fc.kind == FaultKind::kReset) {
        // CPA-style failure: the computation never ran for the faulted op.
        EXPECT_EQ(computed.load(), 2);
      } else {
        EXPECT_EQ(computed.load(), 3);
      }
    } else {
      // Dropped: ops 1 and 3 respond; op 2 never will. The device freed its
      // slot (no inflight leak) and the firmware counters show the gap.
      ASSERT_EQ(responses.size(), 2u);
      EXPECT_EQ(responses[0].first, 1u);
      EXPECT_EQ(responses[1].first, 3u);
      EXPECT_EQ(inst->inflight(), 0u);
      const auto fw = device.fw_counters();
      const int prf = static_cast<int>(qat::OpClass::kPrf);
      EXPECT_EQ(fw.requests[prf] - fw.responses[prf], 1u);
      EXPECT_EQ(inst->poll(), 0u);
    }

    // Exactly one injection of the scheduled kind.
    const qat::FaultCounters& fcnt = plan.counters();
    EXPECT_EQ(fcnt.injected_total(), 1u);
    if (fc.kind == FaultKind::kReset) {
      EXPECT_EQ(fcnt.reset_failures.load(), 1u);
    }
  }
}

// --- table-driven: every fault kind, virtual-time backend -------------------

TEST(QatFault, SimBackendEveryFaultKind) {
  for (const FaultCase& fc : kFaultCases) {
    SCOPED_TRACE(fc.name);
    qat::FaultPlan plan(1);
    plan.schedule(qat::OpKind::kPrfTls12, 2, fc.kind, fc.stall_ns);

    sim::Simulator simulator;
    const sim::CostModel costs;
    sim::SimQatEndpoint endpoint(&simulator, &costs, /*engines=*/1);
    endpoint.set_fault_plan(&plan);
    sim::SimQatInstance* inst = endpoint.make_instance(/*ring_capacity=*/8);

    std::vector<CryptoStatus> statuses;
    for (int i = 0; i < 3; ++i)
      ASSERT_TRUE(inst->submit_with_status(
          sim::SOp::kPrf, costs.qat_service(sim::SOp::kPrf),
          [&statuses](CryptoStatus s) { statuses.push_back(s); }));

    simulator.run_until(100 * costs.qat_service(sim::SOp::kPrf) +
                        10 * fc.stall_ns);
    const size_t expect = fc.delivered ? 3u : 2u;
    EXPECT_EQ(inst->poll(), expect);
    ASSERT_EQ(statuses.size(), expect);

    if (fc.delivered) {
      EXPECT_EQ(statuses[0], CryptoStatus::kSuccess);
      EXPECT_EQ(statuses[1], fc.expect_status);
      EXPECT_EQ(statuses[2], CryptoStatus::kSuccess);
      EXPECT_EQ(inst->dropped_responses(), 0u);
    } else {
      EXPECT_EQ(statuses[0], CryptoStatus::kSuccess);
      EXPECT_EQ(statuses[1], CryptoStatus::kSuccess);
      EXPECT_EQ(inst->dropped_responses(), 1u);
    }
    // No inflight leak in either delivery outcome.
    EXPECT_EQ(inst->inflight_total(), 0u);
    EXPECT_EQ(plan.counters().injected_total(), 1u);
  }
}

// --- cross-plane parity on a faulty run -------------------------------------

// Identically-configured plans (same seed, same schedules) against the same
// op sequence must produce the same per-op outcome on both planes.
TEST(QatFault, FaultOutcomeParityAcrossPlanes) {
  auto configure = [](qat::FaultPlan* plan) {
    plan->schedule(qat::OpKind::kPrfTls12, 2, FaultKind::kError);
    plan->schedule(qat::OpKind::kPrfTls12, 4, FaultKind::kDrop);
    plan->schedule(qat::OpKind::kPrfTls12, 5, FaultKind::kReset);
  };
  constexpr int kOps = 6;

  // Real plane.
  qat::FaultPlan real_plan(3);
  configure(&real_plan);
  qat::DeviceConfig cfg;
  cfg.num_endpoints = 1;
  cfg.engines_per_endpoint = 1;
  cfg.ring_capacity = 16;
  cfg.fault_plan = &real_plan;
  qat::QatDevice device(cfg);
  qat::CryptoInstance* inst = device.allocate_instance();

  std::vector<std::pair<uint64_t, CryptoStatus>> real_out;
  std::atomic<int> responded{0};
  for (uint64_t id = 1; id <= kOps; ++id) {
    qat::CryptoRequest req;
    req.request_id = id;
    req.kind = qat::OpKind::kPrfTls12;
    req.compute = [] { return true; };
    req.on_response = [&real_out, &responded](const qat::CryptoResponse& r) {
      real_out.emplace_back(r.request_id, r.status);
      responded.fetch_add(1, std::memory_order_release);
    };
    ASSERT_TRUE(inst->submit(req));
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (responded.load(std::memory_order_acquire) < kOps - 1 &&
         std::chrono::steady_clock::now() < deadline) {
    inst->poll();
    std::this_thread::yield();
  }
  ASSERT_EQ(responded.load(), kOps - 1);  // one op dropped

  // Virtual plane, same plan configuration.
  qat::FaultPlan sim_plan(3);
  configure(&sim_plan);
  sim::Simulator simulator;
  const sim::CostModel costs;
  sim::SimQatEndpoint endpoint(&simulator, &costs, /*engines=*/1);
  endpoint.set_fault_plan(&sim_plan);
  sim::SimQatInstance* sinst = endpoint.make_instance(/*ring_capacity=*/16);

  std::vector<std::pair<uint64_t, CryptoStatus>> sim_out;
  for (uint64_t id = 1; id <= kOps; ++id)
    ASSERT_TRUE(sinst->submit_with_status(
        sim::SOp::kPrf, costs.qat_service(sim::SOp::kPrf),
        [&sim_out, id](CryptoStatus s) { sim_out.emplace_back(id, s); }));
  simulator.run_until(1000 * costs.qat_service(sim::SOp::kPrf));
  EXPECT_EQ(sinst->poll(), static_cast<size_t>(kOps - 1));

  // Same delivered ids in the same order with the same statuses.
  ASSERT_EQ(real_out.size(), sim_out.size());
  for (size_t i = 0; i < real_out.size(); ++i) {
    EXPECT_EQ(real_out[i].first, sim_out[i].first) << "op index " << i;
    EXPECT_EQ(real_out[i].second, sim_out[i].second) << "op index " << i;
  }
  EXPECT_EQ(real_plan.counters().injected_total(),
            sim_plan.counters().injected_total());
}

// --- global device reset ----------------------------------------------------

TEST(QatFault, TriggeredResetFailsAllUntilCleared) {
  qat::FaultPlan plan(9);
  qat::DeviceConfig cfg;
  cfg.num_endpoints = 1;
  cfg.engines_per_endpoint = 2;
  cfg.ring_capacity = 16;
  cfg.fault_plan = &plan;
  qat::QatDevice device(cfg);
  qat::CryptoInstance* inst = device.allocate_instance();

  std::atomic<int> reset_failed{0};
  std::atomic<int> succeeded{0};
  std::atomic<int> responded{0};
  auto submit_one = [&](uint64_t id) {
    qat::CryptoRequest req;
    req.request_id = id;
    req.kind = qat::OpKind::kRsa2048Priv;
    req.compute = [] { return true; };
    req.on_response = [&](const qat::CryptoResponse& r) {
      if (r.status == CryptoStatus::kDeviceReset)
        reset_failed.fetch_add(1, std::memory_order_relaxed);
      else if (r.status == CryptoStatus::kSuccess)
        succeeded.fetch_add(1, std::memory_order_relaxed);
      responded.fetch_add(1, std::memory_order_release);
    };
    ASSERT_TRUE(inst->submit(req));
  };
  auto drain_to = [&](int n) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (responded.load(std::memory_order_acquire) < n &&
           std::chrono::steady_clock::now() < deadline) {
      inst->poll();
      std::this_thread::yield();
    }
    ASSERT_EQ(responded.load(), n);
  };

  plan.trigger_reset();
  for (uint64_t id = 1; id <= 4; ++id) submit_one(id);
  drain_to(4);
  EXPECT_EQ(reset_failed.load(), 4);
  EXPECT_EQ(succeeded.load(), 0);
  EXPECT_EQ(plan.counters().reset_failures.load(), 4u);

  // Re-probe window: the device comes back and serves normally.
  plan.clear_reset();
  submit_one(5);
  drain_to(5);
  EXPECT_EQ(succeeded.load(), 1);
  EXPECT_EQ(inst->inflight(), 0u);
}

// --- engine-level recovery: deadline on dropped response --------------------

TEST(QatFault, DroppedResponseDeadlineFiresAndFallsBack) {
  qat::FaultPlan plan(5);
  plan.schedule(qat::OpKind::kPrfTls12, 1, FaultKind::kDrop);

  qat::DeviceConfig cfg;
  cfg.num_endpoints = 1;
  cfg.engines_per_endpoint = 2;
  cfg.fault_plan = &plan;
  qat::QatDevice device(cfg);

  engine::QatEngineConfig ecfg;
  ecfg.offload_mode = engine::OffloadMode::kSync;
  ecfg.op_deadline_us = 2'000;
  ecfg.max_retries = 0;
  engine::QatEngineProvider qat_engine(device.allocate_instance(), ecfg);

  const Bytes secret = to_bytes("secret");
  const Bytes seed = to_bytes("seed");
  auto result =
      qat_engine.prf_tls12(HashAlg::kSha256, secret, "test", seed, 32);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();

  // The fallback result is the same PRF the device would have produced.
  engine::SoftwareProvider sw;
  auto expect = sw.prf_tls12(HashAlg::kSha256, secret, "test", seed, 32);
  ASSERT_TRUE(expect.is_ok());
  EXPECT_EQ(result.value(), expect.value());

  const engine::QatEngineStats& stats = qat_engine.stats();
  EXPECT_EQ(stats.deadline_expiries, 1u);
  EXPECT_EQ(stats.sw_fallbacks, 1u);
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.completed, 0u);  // the response never arrived
  EXPECT_EQ(qat_engine.inflight_total(), 0u);  // no leaked slot
}

TEST(QatFault, DeadlineExpiryWithoutFallbackSurfacesUnavailable) {
  qat::FaultPlan plan(5);
  plan.schedule(qat::OpKind::kPrfTls12, 1, FaultKind::kDrop);

  qat::DeviceConfig cfg;
  cfg.num_endpoints = 1;
  cfg.engines_per_endpoint = 2;
  cfg.fault_plan = &plan;
  qat::QatDevice device(cfg);

  engine::QatEngineConfig ecfg;
  ecfg.offload_mode = engine::OffloadMode::kSync;
  ecfg.op_deadline_us = 2'000;
  ecfg.max_retries = 0;
  ecfg.sw_fallback_on_device_error = false;
  engine::QatEngineProvider qat_engine(device.allocate_instance(), ecfg);

  auto result = qat_engine.prf_tls12(HashAlg::kSha256, to_bytes("secret"),
                                     "test", to_bytes("seed"), 32);
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), Code::kUnavailable);
  EXPECT_EQ(qat_engine.stats().deadline_expiries, 1u);
  EXPECT_EQ(qat_engine.stats().sw_fallbacks, 0u);
  EXPECT_EQ(qat_engine.inflight_total(), 0u);
}

// --- engine-level recovery: bounded retry on transient error ----------------

TEST(QatFault, TransientErrorRetriesAndSucceeds) {
  qat::FaultPlan plan(5);
  plan.schedule(qat::OpKind::kPrfTls12, 1, FaultKind::kError);

  qat::DeviceConfig cfg;
  cfg.num_endpoints = 1;
  cfg.engines_per_endpoint = 2;
  cfg.fault_plan = &plan;
  qat::QatDevice device(cfg);

  engine::QatEngineConfig ecfg;
  ecfg.offload_mode = engine::OffloadMode::kSync;
  ecfg.max_retries = 3;
  ecfg.retry_backoff_base_us = 10;  // keep the test fast
  engine::QatEngineProvider qat_engine(device.allocate_instance(), ecfg);

  auto result = qat_engine.prf_tls12(HashAlg::kSha256, to_bytes("secret"),
                                     "test", to_bytes("seed"), 32);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();

  const engine::QatEngineStats& stats = qat_engine.stats();
  EXPECT_EQ(stats.device_errors, 1u);
  EXPECT_EQ(stats.op_retries, 1u);
  EXPECT_EQ(stats.submitted, 2u);  // original + one resubmission
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.sw_fallbacks, 0u);  // recovered on the device itself
  EXPECT_EQ(qat_engine.breaker_state(qat::OpClass::kPrf),
            engine::BreakerState::kClosed);
  EXPECT_EQ(qat_engine.inflight_total(), 0u);
}

TEST(QatFault, RetriesExhaustedFallsBackToSoftware) {
  qat::FaultPlan plan(5);
  qat::FaultRates always_fail;
  always_fail.error_rate = 1.0;
  plan.set_rates(qat::OpKind::kPrfTls12, always_fail);

  qat::DeviceConfig cfg;
  cfg.num_endpoints = 1;
  cfg.engines_per_endpoint = 2;
  cfg.fault_plan = &plan;
  qat::QatDevice device(cfg);

  engine::QatEngineConfig ecfg;
  ecfg.offload_mode = engine::OffloadMode::kSync;
  ecfg.max_retries = 2;
  ecfg.retry_backoff_base_us = 10;
  engine::QatEngineProvider qat_engine(device.allocate_instance(), ecfg);

  auto result = qat_engine.prf_tls12(HashAlg::kSha256, to_bytes("secret"),
                                     "test", to_bytes("seed"), 32);
  ASSERT_TRUE(result.is_ok());  // completed in software

  const engine::QatEngineStats& stats = qat_engine.stats();
  EXPECT_EQ(stats.device_errors, 3u);  // initial + 2 retries, all failed
  EXPECT_EQ(stats.op_retries, 2u);
  EXPECT_EQ(stats.sw_fallbacks, 1u);
  EXPECT_EQ(qat_engine.inflight_total(), 0u);
}

}  // namespace
}  // namespace qtls
