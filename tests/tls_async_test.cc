// Integration of the full offload pipeline: TLS state machine -> fiber async
// jobs -> QAT engine -> device model, over in-memory transports. This is the
// paper's four-phase framework (§3.1) exercised end to end in one thread.
#include <gtest/gtest.h>

#include "crypto/keystore.h"
#include "tls_test_util.h"

namespace qtls::tls {
namespace {

using testutil::pump_handshake;
using testutil::pump_read;
using testutil::pump_write;

qat::DeviceConfig device_config() {
  qat::DeviceConfig cfg;
  cfg.num_endpoints = 1;
  cfg.engines_per_endpoint = 8;
  cfg.ring_capacity = 64;
  return cfg;
}

struct AsyncServerFixture {
  qat::QatDevice device{device_config()};
  std::unique_ptr<engine::QatEngineProvider> qat;
  engine::SoftwareProvider client_provider{7};
  std::unique_ptr<TlsContext> server_ctx;
  std::unique_ptr<TlsContext> client_ctx;

  explicit AsyncServerFixture(CipherSuite suite,
                              engine::OffloadMode mode =
                                  engine::OffloadMode::kAsync,
                              CurveId curve = CurveId::kP256) {
    engine::QatEngineConfig qcfg;
    qcfg.offload_mode = mode;
    qat = std::make_unique<engine::QatEngineProvider>(
        device.allocate_instance(), qcfg);

    TlsContextConfig scfg;
    scfg.is_server = true;
    scfg.async_mode = mode == engine::OffloadMode::kAsync;
    scfg.cipher_suites = {suite};
    scfg.curve = curve;
    scfg.drbg_seed = 11;
    server_ctx = std::make_unique<TlsContext>(scfg, qat.get());
    server_ctx->credentials().rsa_key = &test_rsa2048();
    server_ctx->credentials().ecdsa_p256 = &test_ec_key_p256();
    server_ctx->credentials().ecdsa_p384 = &test_ec_key_p384();

    TlsContextConfig ccfg;
    ccfg.cipher_suites = {suite};
    ccfg.curve = curve;
    ccfg.drbg_seed = 12;
    client_ctx = std::make_unique<TlsContext>(ccfg, &client_provider);
  }
};

TEST(TlsAsync, FullHandshakeWithAsyncOffload) {
  AsyncServerFixture fx(CipherSuite::kTlsRsaWithAes128CbcSha);
  net::MemoryPipe pipe;
  TlsConnection server(fx.server_ctx.get(), &pipe.b());
  TlsConnection client(fx.client_ctx.get(), &pipe.a());

  const auto result = pump_handshake(&client, &server, fx.qat.get());
  ASSERT_TRUE(result.ok) << "server=" << tls_result_name(result.server_last);
  // The server must have paused at least once per offloaded op.
  EXPECT_GT(result.want_async_events, 0);
  EXPECT_EQ(server.op_counters().rsa, 1);
  EXPECT_EQ(server.op_counters().prf, 4);
  // Device counters agree: 1 asym + 4 prf requests (client side is software).
  const auto fw = fx.device.fw_counters();
  EXPECT_EQ(fw.requests[static_cast<int>(qat::OpClass::kAsym)], 1u);
  EXPECT_EQ(fw.requests[static_cast<int>(qat::OpClass::kPrf)], 4u);

  // Encrypted echo (cipher ops offloaded too).
  ASSERT_EQ(pump_write(&server, to_bytes("async hello"), fx.qat.get()),
            TlsResult::kOk);
  Bytes got;
  ASSERT_EQ(pump_read(&client, &got), TlsResult::kOk);
  EXPECT_EQ(to_string(got), "async hello");
}

TEST(TlsAsync, StraightOffloadAlsoCompletes) {
  // QAT+S: same handshake, blocking offload — no kWantAsync surfaces.
  AsyncServerFixture fx(CipherSuite::kTlsRsaWithAes128CbcSha,
                        engine::OffloadMode::kSync);
  net::MemoryPipe pipe;
  TlsConnection server(fx.server_ctx.get(), &pipe.b());
  TlsConnection client(fx.client_ctx.get(), &pipe.a());
  const auto result = pump_handshake(&client, &server, fx.qat.get());
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.want_async_events, 0);
  EXPECT_GT(fx.qat->stats().sync_blocks, 0u);
}

TEST(TlsAsync, EcdheRsaAsyncHandshake) {
  AsyncServerFixture fx(CipherSuite::kEcdheRsaWithAes128CbcSha);
  net::MemoryPipe pipe;
  TlsConnection server(fx.server_ctx.get(), &pipe.b());
  TlsConnection client(fx.client_ctx.get(), &pipe.a());
  ASSERT_TRUE(pump_handshake(&client, &server, fx.qat.get()).ok);
  EXPECT_EQ(server.op_counters().rsa, 1);
  EXPECT_EQ(server.op_counters().ecc, 2);
  EXPECT_EQ(server.op_counters().prf, 4);
}

TEST(TlsAsync, Tls13AsyncHandshakeKeepsHkdfOnCpu) {
  AsyncServerFixture fx(CipherSuite::kTls13Aes128Sha256);
  net::MemoryPipe pipe;
  TlsConnection server(fx.server_ctx.get(), &pipe.b());
  TlsConnection client(fx.client_ctx.get(), &pipe.a());
  ASSERT_TRUE(pump_handshake(&client, &server, fx.qat.get()).ok);
  EXPECT_EQ(server.version(), ProtocolVersion::kTls13);
  EXPECT_GT(server.op_counters().hkdf, 4);
  // HKDF must NOT appear on the device (paper §5.2): only 1 RSA + 2 EC asym
  // requests from the server side.
  const auto fw = fx.device.fw_counters();
  EXPECT_EQ(fw.requests[static_cast<int>(qat::OpClass::kPrf)], 0u);
  EXPECT_EQ(fw.requests[static_cast<int>(qat::OpClass::kAsym)], 3u);
}

TEST(TlsAsync, AbbreviatedHandshakeOffloadsPrfOnly) {
  AsyncServerFixture fx(CipherSuite::kEcdheRsaWithAes128CbcSha);
  std::optional<ClientSession> session;
  {
    net::MemoryPipe pipe;
    TlsConnection server(fx.server_ctx.get(), &pipe.b());
    TlsConnection client(fx.client_ctx.get(), &pipe.a());
    ASSERT_TRUE(pump_handshake(&client, &server, fx.qat.get()).ok);
    session = client.established_session();
  }
  ASSERT_TRUE(session.has_value());
  const auto fw_before = fx.device.fw_counters();

  net::MemoryPipe pipe;
  TlsConnection server(fx.server_ctx.get(), &pipe.b());
  TlsConnection client(fx.client_ctx.get(), &pipe.a());
  client.offer_session(*session);
  ASSERT_TRUE(pump_handshake(&client, &server, fx.qat.get()).ok);
  EXPECT_TRUE(server.resumed_session());
  const auto fw_after = fx.device.fw_counters();
  EXPECT_EQ(fw_after.requests[static_cast<int>(qat::OpClass::kAsym)],
            fw_before.requests[static_cast<int>(qat::OpClass::kAsym)]);
  EXPECT_EQ(fw_after.requests[static_cast<int>(qat::OpClass::kPrf)] -
                fw_before.requests[static_cast<int>(qat::OpClass::kPrf)],
            3u);
}

TEST(TlsAsync, ManyConcurrentServerConnectionsInOneThread) {
  // The headline behaviour: one thread, many connections, crypto from all
  // of them concurrently in flight on the accelerator.
  AsyncServerFixture fx(CipherSuite::kTlsRsaWithAes128CbcSha);
  constexpr int kConns = 12;

  std::vector<std::unique_ptr<net::MemoryPipe>> pipes;
  std::vector<std::unique_ptr<TlsConnection>> servers;
  std::vector<std::unique_ptr<TlsConnection>> clients;
  for (int i = 0; i < kConns; ++i) {
    pipes.push_back(std::make_unique<net::MemoryPipe>());
    servers.push_back(std::make_unique<TlsConnection>(fx.server_ctx.get(),
                                                      &pipes.back()->b()));
    clients.push_back(std::make_unique<TlsConnection>(fx.client_ctx.get(),
                                                      &pipes.back()->a()));
  }

  size_t peak_inflight = 0;
  int done = 0;
  for (int iter = 0; iter < 100000 && done < kConns; ++iter) {
    done = 0;
    for (int i = 0; i < kConns; ++i) {
      if (!clients[i]->handshake_complete()) (void)clients[i]->handshake();
      if (!servers[i]->handshake_complete()) (void)servers[i]->handshake();
      if (clients[i]->handshake_complete() &&
          servers[i]->handshake_complete())
        ++done;
    }
    peak_inflight = std::max(peak_inflight, fx.qat->inflight_total());
    fx.qat->poll();
  }
  ASSERT_EQ(done, kConns);
  // Multiple requests were genuinely concurrent on the device.
  EXPECT_GE(peak_inflight, 2u);
  const auto fw = fx.device.fw_counters();
  EXPECT_EQ(fw.requests[static_cast<int>(qat::OpClass::kAsym)],
            static_cast<uint64_t>(kConns));
}

TEST(TlsAsync, BinaryCurveAsyncHandshake) {
  AsyncServerFixture fx(CipherSuite::kEcdheRsaWithAes128CbcSha,
                        engine::OffloadMode::kAsync, CurveId::kK283);
  net::MemoryPipe pipe;
  TlsConnection server(fx.server_ctx.get(), &pipe.b());
  TlsConnection client(fx.client_ctx.get(), &pipe.a());
  ASSERT_TRUE(pump_handshake(&client, &server, fx.qat.get()).ok);
  EXPECT_EQ(server.op_counters().ecc, 2);
}

}  // namespace
}  // namespace qtls::tls
