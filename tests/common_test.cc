#include <gtest/gtest.h>

#include <thread>

#include "common/bytes.h"
#include "common/conf.h"
#include "common/rng.h"
#include "common/spsc_ring.h"
#include "common/stats.h"
#include "common/status.h"

namespace qtls {
namespace {

TEST(Status, OkAndError) {
  Status ok = Status::ok();
  EXPECT_TRUE(ok.is_ok());
  EXPECT_EQ(ok.to_string(), "OK");
  Status e = err(Code::kProtocolError, "bad record");
  EXPECT_FALSE(e.is_ok());
  EXPECT_EQ(e.code(), Code::kProtocolError);
  EXPECT_EQ(e.to_string(), "PROTOCOL_ERROR: bad record");
}

TEST(Result, ValueAndStatus) {
  Result<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  Result<int> e = err(Code::kNotFound, "nope");
  EXPECT_FALSE(e.is_ok());
  EXPECT_EQ(e.status().code(), Code::kNotFound);
}

TEST(Bytes, HexRoundTrip) {
  Bytes data = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(to_hex(data), "0001abff");
  EXPECT_EQ(from_hex("0001abff"), data);
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(Bytes, AppendHelpers) {
  Bytes b;
  append_u8(b, 0x01);
  append_u16(b, 0x0203);
  append_u24(b, 0x040506);
  append_u32(b, 0x0708090a);
  EXPECT_EQ(to_hex(b), "0102030405060708090a");
}

TEST(ByteReader, ReadsBigEndian) {
  Bytes b = from_hex("010203040506070809");
  ByteReader r(b);
  EXPECT_EQ(r.u8(), 0x01);
  EXPECT_EQ(r.u16(), 0x0203);
  EXPECT_EQ(r.u24(), 0x040506u);
  EXPECT_EQ(r.u24(), 0x070809u);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteReader, OverrunSetsNotOk) {
  Bytes b = {0x01};
  ByteReader r(b);
  EXPECT_EQ(r.u16(), 0);
  EXPECT_FALSE(r.ok());
}

TEST(ByteReader, BytesAndSkip) {
  Bytes b = from_hex("aabbccddee");
  ByteReader r(b);
  r.skip(1);
  EXPECT_EQ(to_hex(r.bytes(2)), "bbcc");
  EXPECT_EQ(r.remaining(), 2u);
}

TEST(Bytes, CtEqual) {
  Bytes a = from_hex("deadbeef");
  Bytes b = from_hex("deadbeef");
  Bytes c = from_hex("deadbeee");
  EXPECT_TRUE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(a, c));
  EXPECT_FALSE(ct_equal(a, BytesView(a.data(), 3)));
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.25);
}

TEST(OnlineStats, MeanAndStddev) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(OnlineStats, Merge) {
  OnlineStats a, b, whole;
  for (int i = 0; i < 50; ++i) {
    a.add(i);
    whole.add(i);
  }
  for (int i = 50; i < 100; ++i) {
    b.add(i);
    whole.add(i);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_DOUBLE_EQ(a.mean(), whole.mean());
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
}

TEST(LatencyHistogram, Percentiles) {
  LatencyHistogram h;
  for (uint64_t i = 1; i <= 1000; ++i) h.record(i * 1000);  // 1..1000 us
  EXPECT_EQ(h.count(), 1000u);
  // ~2.4% relative error buckets
  EXPECT_NEAR(static_cast<double>(h.percentile_nanos(50)), 500e3, 500e3 * 0.05);
  EXPECT_NEAR(static_cast<double>(h.percentile_nanos(99)), 990e3, 990e3 * 0.05);
  EXPECT_EQ(h.max_nanos(), 1000000u);
}

TEST(LatencyHistogram, Merge) {
  LatencyHistogram a, b;
  a.record(1000);
  b.record(2000);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.max_nanos(), 2000u);
}

TEST(TextTable, Renders) {
  TextTable t({"x", "value"});
  t.add_row({"1", "10.5"});
  t.add_row({"22", "7"});
  const std::string s = t.render();
  EXPECT_NE(s.find("x"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
}

TEST(Conf, ParsesDirectivesAndBlocks) {
  auto result = parse_conf(R"(
    worker_processes 8;  # comment
    ssl_engine {
        use qat_engine;
        default_algorithm RSA,EC,DH,PKEY_CRYPTO;
        qat_engine {
            qat_offload_mode async;
            qat_poll_mode heuristic;
            qat_heuristic_poll_asym_threshold 48;
            qat_heuristic_poll_sym_threshold 24;
        }
    }
  )");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const ConfBlock& root = *result.value();
  EXPECT_EQ(root.get_int("worker_processes", 0), 8);
  const ConfBlock* engine = root.find_block("ssl_engine");
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->get_string("use"), "qat_engine");
  const auto algs = engine->get_list("default_algorithm");
  ASSERT_EQ(algs.size(), 4u);
  EXPECT_EQ(algs[0], "RSA");
  EXPECT_EQ(algs[3], "PKEY_CRYPTO");
  const ConfBlock* qat = engine->find_block("qat_engine");
  ASSERT_NE(qat, nullptr);
  EXPECT_EQ(qat->get_string("qat_offload_mode"), "async");
  EXPECT_EQ(qat->get_int("qat_heuristic_poll_asym_threshold", 0), 48);
  EXPECT_EQ(qat->get_int("qat_heuristic_poll_sym_threshold", 0), 24);
}

TEST(Conf, QuotedArguments) {
  auto result = parse_conf(R"(greeting "hello world";)");
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value()->get_string("greeting"), "hello world");
}

TEST(Conf, RejectsMalformed) {
  EXPECT_FALSE(parse_conf("a { b;").is_ok());
  EXPECT_FALSE(parse_conf("}").is_ok());
  EXPECT_FALSE(parse_conf("dangling").is_ok());
  EXPECT_FALSE(parse_conf("{ x; }").is_ok());
}

TEST(Conf, BoolAndDefaults) {
  auto result = parse_conf("flag on; other off;");
  ASSERT_TRUE(result.is_ok());
  EXPECT_TRUE(result.value()->get_bool("flag", false));
  EXPECT_FALSE(result.value()->get_bool("other", true));
  EXPECT_TRUE(result.value()->get_bool("missing", true));
  EXPECT_EQ(result.value()->get_int("missing", 5), 5);
}

TEST(SpscRing, PushPopOrder) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));  // full
  for (int i = 0; i < 8; ++i) {
    auto v = ring.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(SpscRing, CapacityRoundsToPow2) {
  SpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
}

TEST(SpscRing, CrossThreadTransfer) {
  SpscRing<uint64_t> ring(64);
  constexpr uint64_t kCount = 200000;
  std::thread producer([&] {
    for (uint64_t i = 0; i < kCount; ++i) {
      while (!ring.try_push(i)) std::this_thread::yield();
    }
  });
  uint64_t expected = 0;
  while (expected < kCount) {
    auto v = ring.try_pop();
    if (!v.has_value()) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(*v, expected);
    ++expected;
  }
  producer.join();
  EXPECT_TRUE(ring.empty_hint());
}

}  // namespace
}  // namespace qtls
