// Direct tests of the cooperative load clients (the s_time / ApacheBench
// stand-ins) against a software worker.
#include <gtest/gtest.h>

#include "crypto/keystore.h"
#include "server_test_util.h"

namespace qtls::client {
namespace {

struct ClientRig {
  engine::SoftwareProvider server_provider{1};
  engine::SoftwareProvider client_provider{2};
  std::unique_ptr<tls::TlsContext> server_ctx;
  std::unique_ptr<tls::TlsContext> client_ctx;
  std::unique_ptr<server::Worker> worker;

  explicit ClientRig(size_t body_size = 512) {
    tls::TlsContextConfig scfg;
    scfg.is_server = true;
    scfg.cipher_suites = {tls::CipherSuite::kEcdheRsaWithAes128CbcSha};
    server_ctx = std::make_unique<tls::TlsContext>(scfg, &server_provider);
    server_ctx->credentials().rsa_key = &test_rsa2048();

    tls::TlsContextConfig ccfg;
    ccfg.cipher_suites = scfg.cipher_suites;
    client_ctx = std::make_unique<tls::TlsContext>(ccfg, &client_provider);

    server::WorkerConfig wcfg;
    wcfg.response_body_size = body_size;
    worker = std::make_unique<server::Worker>(server_ctx.get(), nullptr,
                                              wcfg);
  }
};

TEST(HttpsClientTest, STimeModeOneHandshakePerRequest) {
  ClientRig rig;
  ClientOptions opts;
  opts.keepalive = false;
  opts.max_requests = 5;
  Pool pool;
  pool.add(std::make_unique<HttpsClient>(
      rig.client_ctx.get(),
      server::testutil::socketpair_connector(rig.worker.get()), opts));
  ASSERT_TRUE(server::testutil::run_to_completion(rig.worker.get(), &pool));
  const ClientStats stats = pool.aggregate();
  EXPECT_EQ(stats.requests, 5u);
  EXPECT_EQ(stats.connections, 5u);  // one handshake per request
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.response_time.count(), 5u);
  EXPECT_GT(stats.bytes_received, 5u * 512u);
}

TEST(HttpsClientTest, KeepaliveModeOneHandshakeManyRequests) {
  ClientRig rig;
  ClientOptions opts;
  opts.keepalive = true;
  opts.max_requests = 8;
  Pool pool;
  pool.add(std::make_unique<HttpsClient>(
      rig.client_ctx.get(),
      server::testutil::socketpair_connector(rig.worker.get()), opts));
  ASSERT_TRUE(server::testutil::run_to_completion(rig.worker.get(), &pool));
  const ClientStats stats = pool.aggregate();
  EXPECT_EQ(stats.requests, 8u);
  EXPECT_EQ(stats.connections, 1u);
  EXPECT_EQ(rig.worker->stats().handshakes_completed, 1u);
  EXPECT_EQ(rig.worker->stats().requests_served, 8u);
}

TEST(HttpsClientTest, ResumptionRatioHonoured) {
  ClientRig rig;
  ClientOptions opts;
  opts.keepalive = false;
  opts.max_requests = 10;
  opts.full_handshake_ratio = 0.0;  // resume whenever possible
  Pool pool;
  pool.add(std::make_unique<HttpsClient>(
      rig.client_ctx.get(),
      server::testutil::socketpair_connector(rig.worker.get()), opts));
  ASSERT_TRUE(server::testutil::run_to_completion(rig.worker.get(), &pool));
  const ClientStats stats = pool.aggregate();
  EXPECT_EQ(stats.connections, 10u);
  EXPECT_EQ(stats.resumed, 9u);  // all but the first
}

TEST(HttpsClientTest, MixedRatioRoughlyProportional) {
  ClientRig rig;
  ClientOptions opts;
  opts.keepalive = false;
  opts.max_requests = 60;
  opts.full_handshake_ratio = 0.5;
  Pool pool;
  pool.add(std::make_unique<HttpsClient>(
      rig.client_ctx.get(),
      server::testutil::socketpair_connector(rig.worker.get()), opts, 7));
  ASSERT_TRUE(
      server::testutil::run_to_completion(rig.worker.get(), &pool, 120));
  const ClientStats stats = pool.aggregate();
  EXPECT_EQ(stats.connections, 60u);
  // ~50% resumed; wide tolerance for the small sample.
  EXPECT_GT(stats.resumed, 15u);
  EXPECT_LT(stats.resumed, 45u);
}

TEST(HttpsClientTest, FinishedFlagAndStepAfterCompletion) {
  ClientRig rig;
  ClientOptions opts;
  opts.max_requests = 1;
  HttpsClient client(rig.client_ctx.get(),
                     server::testutil::socketpair_connector(rig.worker.get()),
                     opts);
  EXPECT_FALSE(client.finished());
  for (int i = 0; i < 200000 && !client.finished(); ++i) {
    client.step();
    rig.worker->run_once(0);
  }
  EXPECT_TRUE(client.finished());
  EXPECT_FALSE(client.step());  // terminal: step() keeps returning false
}

TEST(HttpsClientTest, ConnectFailureCountsError) {
  ClientRig rig;
  ClientOptions opts;
  opts.max_requests = 1;
  HttpsClient client(rig.client_ctx.get(), []() -> int { return -1; }, opts);
  client.step();  // attempts and fails to connect
  EXPECT_GE(client.stats().errors, 1u);
  EXPECT_FALSE(client.finished());  // keeps retrying, never completes
}

TEST(HttpsClientTest, PoolAggregatesAcrossClients) {
  ClientRig rig;
  Pool pool;
  for (int i = 0; i < 3; ++i) {
    ClientOptions opts;
    opts.max_requests = 2;
    pool.add(std::make_unique<HttpsClient>(
        rig.client_ctx.get(),
        server::testutil::socketpair_connector(rig.worker.get()), opts,
        10 + static_cast<uint64_t>(i)));
  }
  ASSERT_TRUE(server::testutil::run_to_completion(rig.worker.get(), &pool));
  const ClientStats stats = pool.aggregate();
  EXPECT_EQ(stats.requests, 6u);
  EXPECT_EQ(stats.response_time.count(), 6u);
}

}  // namespace
}  // namespace qtls::client
