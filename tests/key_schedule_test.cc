#include <gtest/gtest.h>

#include "engine/provider.h"
#include "tls/key_schedule.h"

namespace qtls::tls {
namespace {

class KeyScheduleTest : public ::testing::Test {
 protected:
  engine::SoftwareProvider provider{1};
  Bytes premaster = Bytes(48, 0x11);
  Bytes client_random = Bytes(32, 0x22);
  Bytes server_random = Bytes(32, 0x33);
};

TEST_F(KeyScheduleTest, MasterSecretDeterministicAndSized) {
  auto a = tls12_master_secret(&provider, HashAlg::kSha256, premaster,
                               client_random, server_random);
  auto b = tls12_master_secret(&provider, HashAlg::kSha256, premaster,
                               client_random, server_random);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(a.value().size(), kMasterSecretSize);
  EXPECT_EQ(a.value(), b.value());
}

TEST_F(KeyScheduleTest, MasterSecretDependsOnRandoms) {
  auto a = tls12_master_secret(&provider, HashAlg::kSha256, premaster,
                               client_random, server_random);
  Bytes other_random = client_random;
  other_random[0] ^= 1;
  auto b = tls12_master_secret(&provider, HashAlg::kSha256, premaster,
                               other_random, server_random);
  EXPECT_NE(a.value(), b.value());
}

TEST_F(KeyScheduleTest, KeyExpansionProducesDistinctDirectionalKeys) {
  const CipherSuiteInfo& info =
      cipher_suite_info(CipherSuite::kEcdheRsaWithAes128CbcSha);
  auto master = tls12_master_secret(&provider, info.prf_hash, premaster,
                                    client_random, server_random);
  ASSERT_TRUE(master.is_ok());
  auto keys = tls12_key_expansion(&provider, info, master.value(),
                                  client_random, server_random);
  ASSERT_TRUE(keys.is_ok());
  const SessionKeys& sk = keys.value();
  EXPECT_EQ(sk.client_write.enc_key.size(), info.enc_key_len);
  EXPECT_EQ(sk.client_write.mac_key.size(), info.mac_key_len);
  // All four keys must be pairwise distinct (key separation).
  EXPECT_NE(sk.client_write.enc_key, sk.server_write.enc_key);
  EXPECT_NE(sk.client_write.mac_key, sk.server_write.mac_key);
  EXPECT_NE(sk.client_write.enc_key, sk.client_write.mac_key);
}

TEST_F(KeyScheduleTest, FinishedVerifyLabelSeparation) {
  const Bytes master(48, 0x44);
  const Bytes transcript = sha256(to_bytes("transcript"));
  auto client = tls12_finished_verify(&provider, HashAlg::kSha256, master,
                                      "client finished", transcript);
  auto server = tls12_finished_verify(&provider, HashAlg::kSha256, master,
                                      "server finished", transcript);
  ASSERT_TRUE(client.is_ok());
  ASSERT_TRUE(server.is_ok());
  EXPECT_EQ(client.value().size(), kVerifyDataSize);
  EXPECT_NE(client.value(), server.value());
}

TEST(Tls13Schedule, SecretsChainAndCount) {
  const Bytes shared(32, 0x55);
  const Bytes transcript = sha256(to_bytes("ch-sh"));
  Tls13Secrets s = tls13_handshake_secrets(HashAlg::kSha256, shared, transcript);
  EXPECT_FALSE(s.handshake_secret.empty());
  EXPECT_NE(s.client_hs_traffic, s.server_hs_traffic);
  EXPECT_EQ(s.hkdf_ops, 7);  // extract x3 + derive x4 up to the master

  const int before = s.hkdf_ops;
  tls13_application_secrets(HashAlg::kSha256, &s,
                            sha256(to_bytes("full transcript")));
  EXPECT_EQ(s.hkdf_ops, before + 2);
  EXPECT_NE(s.client_app_traffic, s.server_app_traffic);
  EXPECT_NE(s.client_app_traffic, s.client_hs_traffic);
}

TEST(Tls13Schedule, SecretsDependOnEcdheInput) {
  const Bytes transcript = sha256(to_bytes("t"));
  Tls13Secrets a =
      tls13_handshake_secrets(HashAlg::kSha256, Bytes(32, 1), transcript);
  Tls13Secrets b =
      tls13_handshake_secrets(HashAlg::kSha256, Bytes(32, 2), transcript);
  EXPECT_NE(a.client_hs_traffic, b.client_hs_traffic);
}

TEST(Tls13Schedule, TrafficKeysAndFinished) {
  const CipherSuiteInfo& info =
      cipher_suite_info(CipherSuite::kTls13Aes128Sha256);
  const Bytes secret(32, 0x66);
  int ops = 0;
  const CbcHmacKeys keys =
      tls13_traffic_keys(HashAlg::kSha256, secret, info, &ops);
  EXPECT_EQ(ops, 2);
  EXPECT_EQ(keys.enc_key.size(), info.enc_key_len);
  EXPECT_EQ(keys.mac_key.size(), info.mac_key_len);
  EXPECT_NE(keys.enc_key, Bytes(info.enc_key_len, 0));

  const Bytes transcript = sha256(to_bytes("msgs"));
  const Bytes v1 = tls13_finished_verify(HashAlg::kSha256, secret, transcript,
                                         &ops);
  EXPECT_EQ(ops, 3);
  EXPECT_EQ(v1.size(), hash_digest_size(HashAlg::kSha256));
  // Different transcript -> different verify data.
  const Bytes v2 = tls13_finished_verify(HashAlg::kSha256, secret,
                                         sha256(to_bytes("other")), nullptr);
  EXPECT_NE(v1, v2);
}

TEST(Tls13Schedule, Sha384Variant) {
  const Bytes shared(48, 0x01);
  Tls13Secrets s = tls13_handshake_secrets(HashAlg::kSha384, shared,
                                           sha384(to_bytes("t")));
  EXPECT_EQ(s.client_hs_traffic.size(), hash_digest_size(HashAlg::kSha384));
}

}  // namespace
}  // namespace qtls::tls
