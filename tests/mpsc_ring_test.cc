#include "common/mpsc_ring.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace qtls {
namespace {

TEST(MpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(MpscRing<int>(64).capacity(), 64u);
  EXPECT_EQ(MpscRing<int>(65).capacity(), 128u);
}

TEST(MpscRing, PushPopFifoSingleThread) {
  MpscRing<int> ring(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(i));
  for (int i = 0; i < 8; ++i) {
    auto v = ring.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(MpscRing, FullRingRejectsPush) {
  MpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));
  // Draining one slot re-admits exactly one push.
  EXPECT_TRUE(ring.try_pop().has_value());
  EXPECT_TRUE(ring.try_push(100));
  EXPECT_FALSE(ring.try_push(101));
}

TEST(MpscRing, WrapAroundManyLaps) {
  MpscRing<int> ring(4);
  for (int lap = 0; lap < 1000; ++lap) {
    EXPECT_TRUE(ring.try_push(lap));
    EXPECT_TRUE(ring.try_push(lap + 1'000'000));
    auto a = ring.try_pop();
    auto b = ring.try_pop();
    ASSERT_TRUE(a.has_value() && b.has_value());
    EXPECT_EQ(*a, lap);
    EXPECT_EQ(*b, lap + 1'000'000);
  }
}

TEST(MpscRing, PopBatchDrains) {
  MpscRing<int> ring(16);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(ring.try_push(i));
  int out[16];
  EXPECT_EQ(ring.pop_batch(out, 4), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], i);
  EXPECT_EQ(ring.pop_batch(out, 16), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(out[i], i + 4);
  EXPECT_EQ(ring.pop_batch(out, 16), 0u);
}

TEST(MpscRing, MoveOnlyPayload) {
  MpscRing<std::unique_ptr<int>> ring(4);
  EXPECT_TRUE(ring.try_push(std::make_unique<int>(7)));
  auto v = ring.try_pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 7);
}

// Multiple producers hammer a small ring while one consumer drains it; every
// element must arrive exactly once and each producer's stream must stay in
// order (the device relies on per-engine response ordering for nothing, but
// per-producer FIFO is part of the Vyukov contract).
TEST(MpscRing, MultiProducerStress) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 20'000;
  MpscRing<uint64_t> ring(64);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const uint64_t v = (static_cast<uint64_t>(p) << 32) |
                           static_cast<uint64_t>(i);
        while (!ring.try_push(v)) std::this_thread::yield();
      }
    });
  }

  std::vector<int> next(kProducers, 0);
  int total = 0;
  while (total < kProducers * kPerProducer) {
    auto v = ring.try_pop();
    if (!v.has_value()) {
      std::this_thread::yield();
      continue;
    }
    const int p = static_cast<int>(*v >> 32);
    const int i = static_cast<int>(*v & 0xffffffff);
    ASSERT_LT(p, kProducers);
    EXPECT_EQ(i, next[p]) << "producer " << p << " stream out of order";
    next[p] = i + 1;
    ++total;
  }
  for (auto& t : producers) t.join();
  EXPECT_FALSE(ring.try_pop().has_value());
  for (int p = 0; p < kProducers; ++p) EXPECT_EQ(next[p], kPerProducer);
}

}  // namespace
}  // namespace qtls
