#include <gtest/gtest.h>

#include "crypto/keystore.h"
#include "engine/polling_thread.h"
#include <thread>

#include "server_test_util.h"

namespace qtls::server {
namespace {

using testutil::run_to_completion;
using testutil::socketpair_connector;

// ------------------------------------------------------------- HTTP ----

TEST(Http, ParsesSimpleGet) {
  HttpRequestParser parser;
  parser.feed(to_bytes("GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n"));
  auto req = parser.next();
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->method, "GET");
  EXPECT_EQ(req->path, "/index.html");
  EXPECT_TRUE(req->keepalive);
}

TEST(Http, ParsesIncrementally) {
  HttpRequestParser parser;
  parser.feed(to_bytes("GET / HT"));
  EXPECT_FALSE(parser.next().has_value());
  parser.feed(to_bytes("TP/1.1\r\n"));
  EXPECT_FALSE(parser.next().has_value());
  parser.feed(to_bytes("\r\n"));
  ASSERT_TRUE(parser.next().has_value());
}

TEST(Http, ConnectionCloseDetected) {
  HttpRequestParser parser;
  parser.feed(to_bytes("GET / HTTP/1.1\r\nConnection: close\r\n\r\n"));
  auto req = parser.next();
  ASSERT_TRUE(req.has_value());
  EXPECT_FALSE(req->keepalive);
}

TEST(Http, PipelinedRequests) {
  HttpRequestParser parser;
  parser.feed(to_bytes("GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n"));
  auto r1 = parser.next();
  auto r2 = parser.next();
  ASSERT_TRUE(r1.has_value());
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r1->path, "/a");
  EXPECT_EQ(r2->path, "/b");
}

TEST(Http, ResponseRoundTrip) {
  const Bytes body = to_bytes("hello body");
  const Bytes resp = build_http_response(200, body, true);
  auto head = parse_http_response_head(resp);
  ASSERT_TRUE(head.has_value());
  EXPECT_EQ(head->status, 200);
  EXPECT_EQ(head->content_length, body.size());
  EXPECT_TRUE(head->keepalive);
  EXPECT_EQ(resp.size(), head->header_bytes + body.size());
}

TEST(Http, MalformedRequestSetsError) {
  HttpRequestParser parser;
  parser.feed(to_bytes("NONSENSE\r\n\r\n"));
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_TRUE(parser.error());
}

// ------------------------------------------------- parser hardening ----

TEST(HttpLimits, OversizedHeaderBlockFlagsTooLarge) {
  HttpLimits limits;
  limits.max_header_bytes = 256;
  HttpRequestParser parser(limits);
  // A single giant header pushes the buffered-but-incomplete header block
  // past the cap: the parser must flag it without waiting for CRLFCRLF.
  parser.feed(to_bytes("GET / HTTP/1.1\r\nX-Bomb: " +
                       std::string(1024, 'a')));
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_TRUE(parser.error());
  EXPECT_TRUE(parser.too_large());
}

TEST(HttpLimits, CompleteHeaderOverCapFlagsTooLarge) {
  HttpLimits limits;
  limits.max_header_bytes = 64;
  HttpRequestParser parser(limits);
  // Complete (terminated) header that still exceeds the byte cap.
  parser.feed(to_bytes("GET / HTTP/1.1\r\nX-Pad: " + std::string(64, 'b') +
                       "\r\n\r\n"));
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_TRUE(parser.too_large());
}

TEST(HttpLimits, TooManyHeaderLinesFlagsTooLarge) {
  HttpLimits limits;
  limits.max_header_count = 4;
  HttpRequestParser parser(limits);
  std::string req = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 8; ++i)
    req += "X-H" + std::to_string(i) + ": v\r\n";
  req += "\r\n";
  parser.feed(to_bytes(req));
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_TRUE(parser.too_large());
}

TEST(HttpLimits, DefaultsAcceptOrdinaryRequests) {
  HttpRequestParser parser;  // default limits
  std::string req = "GET /index.html HTTP/1.1\r\n";
  for (int i = 0; i < 20; ++i)
    req += "X-H" + std::to_string(i) + ": value\r\n";
  req += "\r\n";
  parser.feed(to_bytes(req));
  ASSERT_TRUE(parser.next().has_value());
  EXPECT_FALSE(parser.too_large());
}

TEST(HttpLimits, ResponseBodyClamped) {
  const Bytes huge(kMaxResponseBody + 4096, 0x5a);
  const Bytes resp = build_http_response(200, huge, false);
  auto head = parse_http_response_head(resp);
  ASSERT_TRUE(head.has_value());
  EXPECT_EQ(head->content_length, kMaxResponseBody);
  EXPECT_EQ(resp.size(), head->header_bytes + kMaxResponseBody);
}

// ------------------------------------------------------------- conf ----

TEST(SslEngineConf, ParsesPaperExample) {
  auto settings = parse_ssl_engine_settings(R"(
    worker_processes 8;
    ssl_engine {
        use qat_engine;
        default_algorithm RSA,EC,DH,PKEY_CRYPTO;
        qat_engine {
            qat_offload_mode async;
            qat_notify_mode poll;
            qat_poll_mode heuristic;
            qat_heuristic_poll_asym_threshold 48;
            qat_heuristic_poll_sym_threshold 24;
        }
    }
  )");
  ASSERT_TRUE(settings.is_ok()) << settings.status().to_string();
  const SslEngineSettings& s = settings.value();
  EXPECT_EQ(s.worker_processes, 8);
  EXPECT_TRUE(s.use_qat);
  EXPECT_EQ(s.engine.offload_mode, engine::OffloadMode::kAsync);
  EXPECT_TRUE(s.engine.offload_rsa);
  EXPECT_TRUE(s.engine.offload_ec);
  EXPECT_EQ(s.notify, NotifyScheme::kKernelBypass);
  EXPECT_EQ(s.poll, PollScheme::kHeuristic);
  EXPECT_EQ(s.heuristic.asym_threshold, 48u);
  EXPECT_EQ(s.heuristic.sym_threshold, 24u);
}

TEST(SslEngineConf, AlgorithmSwitchesAreSelective) {
  auto settings = parse_ssl_engine_settings(R"(
    ssl_engine {
        use qat_engine;
        default_algorithm RSA;
        qat_engine { qat_offload_mode sync; }
    }
  )");
  ASSERT_TRUE(settings.is_ok());
  EXPECT_TRUE(settings.value().engine.offload_rsa);
  EXPECT_FALSE(settings.value().engine.offload_ec);
  EXPECT_FALSE(settings.value().engine.offload_prf);
  EXPECT_EQ(settings.value().engine.offload_mode, engine::OffloadMode::kSync);
}

TEST(SslEngineConf, RejectsInvalidCombos) {
  EXPECT_FALSE(parse_ssl_engine_settings(R"(
    ssl_engine { use qat_engine;
      qat_engine { qat_notify_mode poll; qat_poll_mode timer; } }
  )").is_ok());
  EXPECT_FALSE(parse_ssl_engine_settings(
                   "ssl_engine { qat_engine { qat_offload_mode magic; } }")
                   .is_ok());
  EXPECT_FALSE(parse_ssl_engine_settings("worker_processes 0;").is_ok());
  EXPECT_FALSE(
      parse_ssl_engine_settings("ssl_engine { use other_engine; }").is_ok());
}

TEST(SslEngineConf, ParsesTopologyBlock) {
  auto settings = parse_ssl_engine_settings(R"(
    ssl_engine {
        use qat_engine;
        qat_topology {
            devices 4;
            numa_nodes 2;
            spill_threshold 16;
            worker_affinity 0 2 1 3;
        }
        qat_engine { qat_offload_mode async; }
    }
  )");
  ASSERT_TRUE(settings.is_ok()) << settings.status().to_string();
  const TopologySettings& t = settings.value().topology;
  EXPECT_EQ(t.devices, 4);
  EXPECT_EQ(t.numa_nodes, 2);
  EXPECT_EQ(t.spill_threshold, 16u);
  ASSERT_EQ(t.worker_affinity.size(), 4u);
  EXPECT_EQ(t.worker_affinity[1], 2);
  // The explicit map wins over NUMA striping, wrapping past its length.
  qat::TopologyConfig tc;
  tc.num_devices = 4;
  tc.numa_nodes = 2;
  qat::DeviceTopology topo(tc);
  EXPECT_EQ(t.affinity_for(1, 8, topo), 2);
  EXPECT_EQ(t.affinity_for(5, 8, topo), 2);  // wraps: 5 % 4 -> slot 1
  // Defaults when the block is absent: a single device, striping policy.
  auto plain = parse_ssl_engine_settings(
      "ssl_engine { use qat_engine; qat_engine { qat_offload_mode sync; } }");
  ASSERT_TRUE(plain.is_ok());
  EXPECT_EQ(plain.value().topology.devices, 1);
  EXPECT_TRUE(plain.value().topology.worker_affinity.empty());
  // Bounds are validated, not clamped.
  EXPECT_FALSE(parse_ssl_engine_settings(
                   "ssl_engine { use qat_engine; qat_topology { devices 0; } }")
                   .is_ok());
  EXPECT_FALSE(parse_ssl_engine_settings(R"(
    ssl_engine { use qat_engine;
      qat_topology { devices 2; worker_affinity 0 7; } }
  )").is_ok());
}

TEST(SslEngineConf, SoftwareOnlyWhenNoEngineBlock) {
  auto settings = parse_ssl_engine_settings("worker_processes 4;");
  ASSERT_TRUE(settings.is_ok());
  EXPECT_FALSE(settings.value().use_qat);
  EXPECT_EQ(settings.value().worker_processes, 4);
}

TEST(SslEngineConf, ParsesOverloadBlock) {
  auto settings = parse_ssl_engine_settings(R"(
    overload {
        handshake_timeout_ms 5000;
        idle_timeout_ms 30000;
        write_stall_timeout_ms 10000;
        max_handshaking 256;
        max_async_inflight 1024;
        past_cap park;
        park_backlog 32;
        max_header_bytes 4096;
        max_header_count 50;
    }
  )");
  ASSERT_TRUE(settings.is_ok()) << settings.status().to_string();
  const OverloadConfig& ov = settings.value().overload;
  EXPECT_EQ(ov.handshake_timeout_ms, 5000u);
  EXPECT_EQ(ov.idle_timeout_ms, 30000u);
  EXPECT_EQ(ov.write_stall_timeout_ms, 10000u);
  EXPECT_EQ(ov.max_handshaking, 256u);
  EXPECT_EQ(ov.max_async_inflight, 1024u);
  EXPECT_EQ(ov.past_cap, OverloadConfig::PastCap::kPark);
  EXPECT_EQ(ov.park_backlog, 32u);
  EXPECT_EQ(settings.value().http_limits.max_header_bytes, 4096u);
  EXPECT_EQ(settings.value().http_limits.max_header_count, 50u);
}

TEST(SslEngineConf, OverloadDefaultsWhenBlockAbsent) {
  auto settings = parse_ssl_engine_settings("worker_processes 1;");
  ASSERT_TRUE(settings.is_ok());
  const OverloadConfig& ov = settings.value().overload;
  EXPECT_EQ(ov.handshake_timeout_ms, 0u);  // timeouts disabled by default
  EXPECT_EQ(ov.max_handshaking, 0u);       // unlimited by default
  EXPECT_EQ(ov.past_cap, OverloadConfig::PastCap::kShed);
}

TEST(SslEngineConf, RejectsBadOverloadValues) {
  EXPECT_FALSE(parse_ssl_engine_settings(
                   "overload { handshake_timeout_ms -1; }").is_ok());
  EXPECT_FALSE(parse_ssl_engine_settings(
                   "overload { past_cap maybe; }").is_ok());
  EXPECT_FALSE(parse_ssl_engine_settings(
                   "overload { max_header_bytes 8; }").is_ok());
  EXPECT_FALSE(parse_ssl_engine_settings(
                   "overload { max_header_count 0; }").is_ok());
}

// ------------------------------------------------------ async queue ----

TEST(AsyncQueue, FifoAndDrainBoundary) {
  AsyncEventQueue q;
  std::vector<int> order;
  q.push([&] { order.push_back(1); });
  q.push([&] {
    order.push_back(2);
    // Handler queued during drain runs in the NEXT drain.
    q.push([&] { order.push_back(3); });
  });
  EXPECT_EQ(q.drain(), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(q.drain(), 1u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.total_pushed(), 3u);
  EXPECT_EQ(q.total_drained(), 3u);
}

// -------------------------------------------------- worker end-to-end ----

struct ServerRig {
  qat::QatDevice device;
  std::unique_ptr<engine::QatEngineProvider> qat;
  std::unique_ptr<engine::SoftwareProvider> software;
  std::unique_ptr<tls::TlsContext> server_ctx;
  engine::SoftwareProvider client_provider{99};
  std::unique_ptr<tls::TlsContext> client_ctx;
  std::unique_ptr<Worker> worker;

  ServerRig(bool use_qat, engine::OffloadMode mode, WorkerConfig wcfg,
            tls::CipherSuite suite = tls::CipherSuite::kTlsRsaWithAes128CbcSha,
            bool self_poll_when_blocking = true)
      : device([] {
          qat::DeviceConfig d;
          d.num_endpoints = 1;
          d.engines_per_endpoint = 8;
          return d;
        }()) {
    tls::TlsContextConfig scfg;
    scfg.is_server = true;
    scfg.cipher_suites = {suite};
    scfg.drbg_seed = 1;
    engine::CryptoProvider* provider = nullptr;
    if (use_qat) {
      engine::QatEngineConfig qcfg;
      qcfg.offload_mode = mode;
      qcfg.self_poll_when_blocking = self_poll_when_blocking;
      qat = std::make_unique<engine::QatEngineProvider>(
          device.allocate_instance(), qcfg);
      provider = qat.get();
      scfg.async_mode = mode == engine::OffloadMode::kAsync;
    } else {
      software = std::make_unique<engine::SoftwareProvider>(3);
      provider = software.get();
    }
    server_ctx = std::make_unique<tls::TlsContext>(scfg, provider);
    server_ctx->credentials().rsa_key = &test_rsa2048();
    server_ctx->credentials().ecdsa_p256 = &test_ec_key_p256();
    server_ctx->credentials().ecdsa_p384 = &test_ec_key_p384();

    tls::TlsContextConfig ccfg;
    ccfg.cipher_suites = {suite};
    ccfg.drbg_seed = 2;
    client_ctx = std::make_unique<tls::TlsContext>(ccfg, &client_provider);

    worker = std::make_unique<Worker>(server_ctx.get(), qat.get(), wcfg);
  }
};

TEST(WorkerE2E, SoftwareServerServesRequests) {
  WorkerConfig wcfg;
  wcfg.response_body_size = 256;
  ServerRig rig(false, engine::OffloadMode::kAsync, wcfg);

  client::Pool pool;
  client::ClientOptions copts;
  copts.max_requests = 3;
  pool.add(std::make_unique<client::HttpsClient>(
      rig.client_ctx.get(), socketpair_connector(rig.worker.get()), copts));

  ASSERT_TRUE(run_to_completion(rig.worker.get(), &pool));
  const auto stats = pool.aggregate();
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(rig.worker->stats().requests_served, 3u);
  EXPECT_EQ(rig.worker->stats().handshakes_completed, 3u);  // no keepalive
}

TEST(WorkerE2E, QtlsConfigurationFullPipeline) {
  // The full QTLS configuration: async offload + heuristic polling +
  // kernel-bypass notification.
  WorkerConfig wcfg;
  wcfg.notify = NotifyScheme::kKernelBypass;
  wcfg.poll = PollScheme::kHeuristic;
  wcfg.response_body_size = 512;
  ServerRig rig(true, engine::OffloadMode::kAsync, wcfg);

  client::Pool pool;
  client::ClientOptions copts;
  copts.max_requests = 4;
  for (int i = 0; i < 6; ++i) {
    pool.add(std::make_unique<client::HttpsClient>(
        rig.client_ctx.get(), socketpair_connector(rig.worker.get()), copts,
        100 + i));
  }
  ASSERT_TRUE(run_to_completion(rig.worker.get(), &pool));
  const auto stats = pool.aggregate();
  EXPECT_EQ(stats.requests, 24u);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_GT(rig.worker->stats().async_parks, 0u);
  // Kernel-bypass delivered every async event through the queue.
  EXPECT_GT(rig.worker->async_queue().total_drained(), 0u);
  // Heuristic polling retrieved the responses.
  ASSERT_NE(rig.worker->poller_stats(), nullptr);
  EXPECT_GT(rig.worker->poller_stats()->polls, 0u);
  EXPECT_EQ(rig.qat->inflight_total(), 0u);
}

TEST(WorkerE2E, FdNotificationConfiguration) {
  // QAT+A-style: async offload + FD notification (heuristic polling kept
  // in-app so the test stays single-threaded deterministic).
  WorkerConfig wcfg;
  wcfg.notify = NotifyScheme::kFd;
  wcfg.poll = PollScheme::kHeuristic;
  ServerRig rig(true, engine::OffloadMode::kAsync, wcfg);

  client::Pool pool;
  client::ClientOptions copts;
  copts.max_requests = 2;
  for (int i = 0; i < 3; ++i) {
    pool.add(std::make_unique<client::HttpsClient>(
        rig.client_ctx.get(), socketpair_connector(rig.worker.get()), copts,
        200 + i));
  }
  ASSERT_TRUE(run_to_completion(rig.worker.get(), &pool));
  EXPECT_EQ(pool.aggregate().errors, 0u);
  EXPECT_EQ(pool.aggregate().requests, 6u);
  // Events travelled via eventfd, not the queue.
  EXPECT_EQ(rig.worker->async_queue().total_pushed(), 0u);
}

TEST(WorkerE2E, TimerPollingThreadConfiguration) {
  // QAT+A as evaluated in the paper: external 10us timer polling thread.
  WorkerConfig wcfg;
  wcfg.notify = NotifyScheme::kFd;
  wcfg.poll = PollScheme::kTimer;
  ServerRig rig(true, engine::OffloadMode::kAsync, wcfg);
  engine::PollingThread poller({rig.qat->instance()},
                               std::chrono::microseconds(10));

  client::Pool pool;
  client::ClientOptions copts;
  copts.max_requests = 2;
  for (int i = 0; i < 3; ++i) {
    pool.add(std::make_unique<client::HttpsClient>(
        rig.client_ctx.get(), socketpair_connector(rig.worker.get()), copts,
        300 + i));
  }
  ASSERT_TRUE(run_to_completion(rig.worker.get(), &pool));
  poller.stop();
  EXPECT_EQ(pool.aggregate().errors, 0u);
  EXPECT_GT(poller.retrieved(), 0u);
}

TEST(WorkerE2E, StraightOffloadConfiguration) {
  // QAT+S: blocking offload, no async parks at all.
  WorkerConfig wcfg;
  wcfg.poll = PollScheme::kInline;
  ServerRig rig(true, engine::OffloadMode::kSync, wcfg);

  client::Pool pool;
  client::ClientOptions copts;
  copts.max_requests = 2;
  pool.add(std::make_unique<client::HttpsClient>(
      rig.client_ctx.get(), socketpair_connector(rig.worker.get()), copts));
  ASSERT_TRUE(run_to_completion(rig.worker.get(), &pool));
  EXPECT_EQ(pool.aggregate().errors, 0u);
  EXPECT_EQ(rig.worker->stats().async_parks, 0u);
  EXPECT_GT(rig.qat->stats().sync_blocks, 0u);
}

TEST(WorkerE2E, KeepaliveSessionAndResumption) {
  WorkerConfig wcfg;
  wcfg.notify = NotifyScheme::kKernelBypass;
  ServerRig rig(true, engine::OffloadMode::kAsync, wcfg,
                tls::CipherSuite::kEcdheRsaWithAes128CbcSha);

  // Client 1: keepalive — one handshake, many requests.
  {
    client::Pool pool;
    client::ClientOptions copts;
    copts.keepalive = true;
    copts.max_requests = 5;
    pool.add(std::make_unique<client::HttpsClient>(
        rig.client_ctx.get(), socketpair_connector(rig.worker.get()), copts));
    ASSERT_TRUE(run_to_completion(rig.worker.get(), &pool));
    EXPECT_EQ(pool.aggregate().requests, 5u);
    EXPECT_EQ(pool.aggregate().connections, 1u);
  }
  // Client 2: session resumption — all abbreviated after the first.
  {
    client::Pool pool;
    client::ClientOptions copts;
    copts.keepalive = false;
    copts.max_requests = 4;
    copts.full_handshake_ratio = 0.0;  // resume whenever a session exists
    pool.add(std::make_unique<client::HttpsClient>(
        rig.client_ctx.get(), socketpair_connector(rig.worker.get()), copts));
    ASSERT_TRUE(run_to_completion(rig.worker.get(), &pool));
    EXPECT_EQ(pool.aggregate().requests, 4u);
    EXPECT_EQ(pool.aggregate().resumed, 3u);  // first is full
    EXPECT_EQ(rig.worker->stats().resumed_handshakes, 3u);
  }
}

TEST(WorkerE2E, ActiveIdleAccounting) {
  WorkerConfig wcfg;
  ServerRig rig(true, engine::OffloadMode::kAsync, wcfg);
  client::Pool pool;
  client::ClientOptions copts;
  copts.keepalive = true;
  copts.max_requests = 2;
  pool.add(std::make_unique<client::HttpsClient>(
      rig.client_ctx.get(), socketpair_connector(rig.worker.get()), copts));
  ASSERT_TRUE(run_to_completion(rig.worker.get(), &pool));
  // run_to_completion returns when every CLIENT is done — but the server
  // side may still be mid-op: decrypting the client's final close_notify is
  // itself an async cipher_open offload, so that connection sits parked
  // (expecting_async, hence non-idle) until the engine thread completes the
  // op and the worker drains the async event. Asserting TC_active == 0 at
  // that instant raced the engine thread — the original flake. Quiescence,
  // not the client's view, defines when the accounting invariant applies:
  // drive the loop until no connection is parked on an offload, then the
  // invariant must hold unconditionally.
  const auto settle_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (rig.worker->pending_async_connections() > 0 &&
         std::chrono::steady_clock::now() < settle_deadline)
    rig.worker->run_once(0);
  ASSERT_EQ(rig.worker->pending_async_connections(), 0u);
  // Every connection is now gone or idle: TC_active == 0.
  EXPECT_EQ(rig.worker->active_connections(), 0u);
}

TEST(WorkerE2E, ManyConcurrentClientsNoStarvation) {
  WorkerConfig wcfg;
  wcfg.notify = NotifyScheme::kKernelBypass;
  wcfg.heuristic.asym_threshold = 8;  // force coalesced polls with 16 conns
  wcfg.heuristic.sym_threshold = 4;
  ServerRig rig(true, engine::OffloadMode::kAsync, wcfg);

  client::Pool pool;
  client::ClientOptions copts;
  copts.max_requests = 2;
  for (int i = 0; i < 16; ++i) {
    pool.add(std::make_unique<client::HttpsClient>(
        rig.client_ctx.get(), socketpair_connector(rig.worker.get()), copts,
        400 + i));
  }
  ASSERT_TRUE(run_to_completion(rig.worker.get(), &pool));
  const auto stats = pool.aggregate();
  EXPECT_EQ(stats.requests, 32u);
  EXPECT_EQ(stats.errors, 0u);
  // With thresholds this low and 16 concurrent connections, the efficiency
  // trigger must have fired.
  EXPECT_GT(rig.worker->poller_stats()->efficiency_triggers, 0u);
}

TEST(HeuristicPoller, TimelinessTriggerFiresWhenAllActiveBlocked) {
  qat::DeviceConfig dcfg;
  dcfg.num_endpoints = 1;
  dcfg.engines_per_endpoint = 2;
  qat::QatDevice device(dcfg);
  engine::QatEngineConfig qcfg;
  engine::QatEngineProvider qat(device.allocate_instance(), qcfg);
  HeuristicPollerConfig hcfg;
  hcfg.asym_threshold = 48;
  hcfg.sym_threshold = 24;
  HeuristicPoller poller(&qat, hcfg);

  // One async job inflight, one active connection: R_total == TC_active.
  asyncx::AsyncJob* job = nullptr;
  asyncx::WaitCtx wctx;
  int ret = 0;
  auto fn = [&]() -> int {
    auto r = qat.prf_tls12(HashAlg::kSha256, to_bytes("k"), "l",
                           to_bytes("s"), 32);
    return r.is_ok() ? 1 : -1;
  };
  ASSERT_EQ(asyncx::start_job(&job, &wctx, &ret, fn),
            asyncx::JobStatus::kPaused);
  EXPECT_EQ(qat.inflight_total(), 1u);

  // Below both thresholds, but timeliness applies (1 inflight >= 1 active).
  int guard = 0;
  while (qat.inflight_total() > 0 && guard++ < 100000) {
    poller.maybe_poll(/*active=*/1, /*now_ms=*/0);
    std::this_thread::yield();  // single-core: let the engine thread run
  }
  EXPECT_EQ(qat.inflight_total(), 0u);
  EXPECT_GT(poller.stats().timeliness_triggers, 0u);
  EXPECT_EQ(poller.stats().efficiency_triggers, 0u);
  ASSERT_EQ(asyncx::start_job(&job, &wctx, &ret, fn),
            asyncx::JobStatus::kFinished);
  EXPECT_EQ(ret, 1);
}

TEST(HeuristicPoller, FailoverFiresAfterInterval) {
  qat::DeviceConfig dcfg;
  dcfg.num_endpoints = 1;
  dcfg.engines_per_endpoint = 2;
  qat::QatDevice device(dcfg);
  engine::QatEngineConfig qcfg;
  engine::QatEngineProvider qat(device.allocate_instance(), qcfg);
  HeuristicPollerConfig hcfg;
  hcfg.failover_interval_ms = 5;
  HeuristicPoller poller(&qat, hcfg);

  asyncx::AsyncJob* job = nullptr;
  asyncx::WaitCtx wctx;
  int ret = 0;
  auto fn = [&]() -> int {
    auto r = qat.prf_tls12(HashAlg::kSha256, to_bytes("k"), "l",
                           to_bytes("s"), 32);
    return r.is_ok() ? 1 : -1;
  };
  ASSERT_EQ(asyncx::start_job(&job, &wctx, &ret, fn),
            asyncx::JobStatus::kPaused);

  // Active count of 50 means neither heuristic constraint fires (1 < 24,
  // 1 < 50); only the failover timer can retrieve the response.
  EXPECT_EQ(poller.maybe_poll(/*active=*/50, /*now_ms=*/0), 0u);
  EXPECT_EQ(poller.failover_poll(/*now_ms=*/2), 0u);  // interval not reached
  int guard = 0;
  while (qat.inflight_total() > 0 && guard++ < 100000) {
    (void)poller.failover_poll(/*now_ms=*/10 + guard);
    std::this_thread::yield();  // single-core: let the engine thread run
  }
  EXPECT_GT(poller.stats().failover_triggers, 0u);
  ASSERT_EQ(asyncx::start_job(&job, &wctx, &ret, fn),
            asyncx::JobStatus::kFinished);
}

}  // namespace
}  // namespace qtls::server
