// Idle-footprint regression tests (DESIGN.md §14, S2 of the scale pass):
// once a connection reaches established, its handshake-phase state —
// transcript, reassembly buffer, key-schedule intermediates — must be wiped
// and released, and the record layer must shed its handshake high-water
// buffers. Pre-fix, every established connection dragged that scratch
// around for its whole keepalive life; at a million connections the
// difference is gigabytes.
#include <gtest/gtest.h>

#include <memory>

#include "common/slab.h"
#include "crypto/keystore.h"
#include "obs/metrics.h"
#include "server/worker.h"
#include "tls_test_util.h"

namespace qtls::tls {
namespace {

using testutil::pump_handshake;
using testutil::pump_read;
using testutil::pump_write;

int64_t obs_gauge(const char* name) {
  for (const auto& [gname, value] :
       obs::MetricsRegistry::global().snapshot().gauges)
    if (gname == name) return value;
  return -1;
}

struct Pair {
  net::MemoryPipe pipe;
  engine::SoftwareProvider server_provider{1};
  engine::SoftwareProvider client_provider{2};
  std::unique_ptr<TlsContext> server_ctx;
  std::unique_ptr<TlsContext> client_ctx;
  common::SlabPool<HandshakeScratch> scratch_pool;
  std::unique_ptr<TlsConnection> server;
  std::unique_ptr<TlsConnection> client;

  explicit Pair(CipherSuite suite, bool retain, bool tickets = false) {
    TlsContextConfig server_cfg;
    server_cfg.is_server = true;
    server_cfg.cipher_suites = {suite};
    server_cfg.use_session_tickets = tickets;
    server_cfg.retain_handshake_state = retain;
    server_cfg.drbg_seed = 111;
    server_ctx = std::make_unique<TlsContext>(server_cfg, &server_provider);
    server_ctx->credentials().rsa_key = &test_rsa2048();
    server_ctx->credentials().ecdsa_p256 = &test_ec_key_p256();
    server_ctx->credentials().ecdsa_p384 = &test_ec_key_p384();

    TlsContextConfig client_cfg;
    client_cfg.cipher_suites = {suite};
    client_cfg.retain_handshake_state = retain;
    client_cfg.drbg_seed = 222;
    client_ctx = std::make_unique<TlsContext>(client_cfg, &client_provider);

    server = std::make_unique<TlsConnection>(server_ctx.get(), &pipe.b(),
                                             &scratch_pool);
    client = std::make_unique<TlsConnection>(client_ctx.get(), &pipe.a(),
                                             &scratch_pool);
  }

  size_t server_idle_bytes() const {
    return sizeof(TlsConnection) + server->heap_footprint();
  }
};

// Full handshake, then one echo so both directions carried traffic and the
// connection is in its steady keepalive state.
void settle(Pair& pair) {
  ASSERT_TRUE(pump_handshake(pair.client.get(), pair.server.get()).ok);
  ASSERT_EQ(pump_write(pair.client.get(), to_bytes("ping")), TlsResult::kOk);
  Bytes got;
  ASSERT_EQ(pump_read(pair.server.get(), &got), TlsResult::kOk);
  EXPECT_EQ(to_string(got), "ping");
  // Drain both sides to their keepalive-idle state (the read that reports
  // kWantRead is the one that sheds the RX chunk).
  got.clear();
  EXPECT_EQ(pump_read(pair.server.get(), &got), TlsResult::kWantRead);
  EXPECT_EQ(pump_read(pair.client.get(), &got), TlsResult::kWantRead);
}

TEST(IdleFootprint, HandshakeScratchReleasedAtEstablished) {
  Pair pair(CipherSuite::kTlsRsaWithAes128CbcSha, /*retain=*/false);
  EXPECT_FALSE(pair.server->handshake_state_released());
  settle(pair);
  EXPECT_TRUE(pair.server->handshake_state_released());
  EXPECT_TRUE(pair.client->handshake_state_released());
  // Both scratches returned to the pool; the slots stay carved for reuse.
  EXPECT_EQ(pair.scratch_pool.live(), 0u);
  EXPECT_EQ(pair.scratch_pool.stats().total_frees, 2u);
}

TEST(IdleFootprint, RetainKnobKeepsScratchForBaseline) {
  Pair pair(CipherSuite::kTlsRsaWithAes128CbcSha, /*retain=*/true);
  settle(pair);
  EXPECT_FALSE(pair.server->handshake_state_released());
  EXPECT_EQ(pair.scratch_pool.live(), 2u);
}

// The headline S2 number: an established connection in release mode pins
// less than half the heap of the retain baseline (the real gate, with the
// measured factor, lives in bench/million_conn).
TEST(IdleFootprint, ReleaseShrinksIdleBytesAtLeastTwofold) {
  Pair retained(CipherSuite::kTlsRsaWithAes128CbcSha, /*retain=*/true);
  settle(retained);
  Pair released(CipherSuite::kTlsRsaWithAes128CbcSha, /*retain=*/false);
  settle(released);
  const size_t bytes_retained = retained.server_idle_bytes();
  const size_t bytes_released = released.server_idle_bytes();
  EXPECT_GE(bytes_retained, 2 * bytes_released)
      << "retained=" << bytes_retained << " released=" << bytes_released;
}

// TLS 1.3 with tickets: the post-handshake NewSessionTicket flows through
// the record layer without the handshake scratch, and resumption state
// survives the release.
TEST(IdleFootprint, Tls13TicketFlowSurvivesScratchRelease) {
  Pair pair(CipherSuite::kTls13Aes128Sha256, /*retain=*/false,
            /*tickets=*/true);
  settle(pair);
  EXPECT_TRUE(pair.server->handshake_state_released());
  // Client captured the ticket after its scratch was gone (kDone records a
  // ticketless session; the post-handshake NST read fills it in).
  for (int i = 0; i < 50; ++i) {
    if (pair.client->established_session().has_value() &&
        !pair.client->established_session()->ticket.empty())
      break;
    Bytes sink;
    (void)pair.client->read(&sink);
  }
  ASSERT_TRUE(pair.client->established_session().has_value());
  EXPECT_FALSE(pair.client->established_session()->ticket.empty());
}

// The reassembly high-water regression: a handshake that buffered multi-KB
// flights must not leave that capacity pinned in the receive buffer.
TEST(IdleFootprint, RecvBufferHighWaterShedAfterHandshake) {
  Pair pair(CipherSuite::kEcdheRsaWithAes128CbcSha, /*retain=*/false);
  settle(pair);
  // The client buffered the server's Certificate..Done flight (several KB);
  // after release only the (empty) steady-state buffer remains.
  EXPECT_LE(pair.client->record_layer().recv_buffer_capacity(), 1024u);
}

// ------------------------------------------------------- worker surface ----

struct WorkerRig {
  engine::SoftwareProvider server_provider{3};
  std::unique_ptr<TlsContext> server_ctx;
  engine::SoftwareProvider client_provider{99};
  std::unique_ptr<TlsContext> client_ctx;
  std::unique_ptr<server::Worker> worker;
  uint64_t vnow = 1000;

  explicit WorkerRig(bool retain) {
    TlsContextConfig scfg;
    scfg.is_server = true;
    scfg.cipher_suites = {CipherSuite::kTlsRsaWithAes128CbcSha};
    scfg.retain_handshake_state = retain;
    scfg.drbg_seed = 1;
    server_ctx = std::make_unique<TlsContext>(scfg, &server_provider);
    server_ctx->credentials().rsa_key = &test_rsa2048();

    TlsContextConfig ccfg;
    ccfg.cipher_suites = scfg.cipher_suites;
    ccfg.drbg_seed = 2;
    client_ctx = std::make_unique<TlsContext>(ccfg, &client_provider);

    server::WorkerConfig wcfg;
    wcfg.clock = [this] { return vnow; };
    worker = std::make_unique<server::Worker>(server_ctx.get(), nullptr, wcfg);
  }

  // Adopts one end of a socketpair and completes a client handshake on the
  // other. Returns the client connection (keeps the link alive).
  struct Client {
    int fd;
    net::SocketTransport transport;
    TlsConnection tls;
    Client(TlsContext* ctx, int client_fd)
        : fd(client_fd), transport(client_fd), tls(ctx, &transport) {}
    ~Client() { ::close(fd); }
  };

  std::unique_ptr<Client> connect_and_handshake() {
    auto pair = net::make_socketpair();
    if (!pair.is_ok()) return nullptr;
    (void)worker->adopt(pair.value().second);
    auto client = std::make_unique<Client>(client_ctx.get(),
                                           pair.value().first);
    for (int i = 0; i < 200; ++i) {
      const TlsResult r = client->tls.handshake();
      worker->run_once(0);
      if (r == TlsResult::kOk && client->tls.handshake_complete())
        return client;
    }
    return nullptr;
  }
};

TEST(IdleFootprint, WorkerGaugeAndStatsJsonReportMemoryPlane) {
  WorkerRig rig(/*retain=*/false);
  auto client = rig.connect_and_handshake();
  ASSERT_NE(client, nullptr);
  EXPECT_EQ(rig.worker->released_scratch_connections(), 1u);
  const size_t bpc = rig.worker->bytes_per_conn();
  EXPECT_GT(bpc, 0u);

  // A retain-mode worker carrying the same single idle connection pins at
  // least twice the bytes (asserted via the public gauge surface).
  WorkerRig retained(/*retain=*/true);
  auto retained_client = retained.connect_and_handshake();
  ASSERT_NE(retained_client, nullptr);
  EXPECT_EQ(retained.worker->released_scratch_connections(), 0u);
  EXPECT_GE(retained.worker->bytes_per_conn(), 2 * bpc)
      << "retained=" << retained.worker->bytes_per_conn()
      << " released=" << bpc;

  // stats_json carries the memory object and refreshes the global gauge.
  const std::string json = rig.worker->stats_json();
  EXPECT_NE(json.find("\"memory\":"), std::string::npos);
  EXPECT_NE(json.find("\"bytes_per_conn\":"), std::string::npos);
#if QTLS_SLAB_STATS_ENABLED
  EXPECT_NE(json.find("\"slabs\":"), std::string::npos);
  EXPECT_NE(json.find("server.hs_scratch"), std::string::npos);
#endif
  EXPECT_EQ(obs_gauge("memory.bytes_per_conn"),
            static_cast<int64_t>(rig.worker->bytes_per_conn()));
}

}  // namespace
}  // namespace qtls::tls
