#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/gf2m.h"

namespace qtls {
namespace {

Gf2mElem random_elem(const Gf2mField& f, Rng& rng) {
  Gf2mElem e;
  for (auto& w : e.w) w = rng.next_u64();
  // Mask to field degree via decode of encode-sized bytes.
  Bytes raw((static_cast<size_t>(f.degree()) + 7) / 8);
  rng.fill(raw.data(), raw.size());
  return f.decode(raw);
}

class Gf2mFieldTest : public ::testing::TestWithParam<const Gf2mField*> {};

INSTANTIATE_TEST_SUITE_P(Fields, Gf2mFieldTest,
                         ::testing::Values(&gf2m_283(), &gf2m_409()),
                         [](const auto& info) {
                           return "M" + std::to_string(info.param->degree());
                         });

TEST_P(Gf2mFieldTest, AddIsXorAndSelfInverse) {
  const Gf2mField& f = *GetParam();
  Rng rng(1);
  const Gf2mElem a = random_elem(f, rng);
  const Gf2mElem b = random_elem(f, rng);
  EXPECT_EQ(Gf2mField::add(a, b), Gf2mField::add(b, a));
  EXPECT_TRUE(Gf2mField::add(a, a).is_zero());
}

TEST_P(Gf2mFieldTest, MulCommutativeAssociativeDistributive) {
  const Gf2mField& f = *GetParam();
  Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    const Gf2mElem a = random_elem(f, rng);
    const Gf2mElem b = random_elem(f, rng);
    const Gf2mElem c = random_elem(f, rng);
    EXPECT_EQ(f.mul(a, b), f.mul(b, a));
    EXPECT_EQ(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
    EXPECT_EQ(f.mul(a, Gf2mField::add(b, c)),
              Gf2mField::add(f.mul(a, b), f.mul(a, c)));
  }
}

TEST_P(Gf2mFieldTest, OneIsMultiplicativeIdentity) {
  const Gf2mField& f = *GetParam();
  Rng rng(3);
  const Gf2mElem a = random_elem(f, rng);
  EXPECT_EQ(f.mul(a, Gf2mField::one()), a);
  EXPECT_TRUE(f.mul(a, Gf2mField::zero()).is_zero());
}

TEST_P(Gf2mFieldTest, SqrMatchesMulSelf) {
  const Gf2mField& f = *GetParam();
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    const Gf2mElem a = random_elem(f, rng);
    EXPECT_EQ(f.sqr(a), f.mul(a, a));
  }
}

TEST_P(Gf2mFieldTest, SqrIsLinear) {
  // Frobenius: (a+b)^2 = a^2 + b^2 in characteristic 2.
  const Gf2mField& f = *GetParam();
  Rng rng(5);
  const Gf2mElem a = random_elem(f, rng);
  const Gf2mElem b = random_elem(f, rng);
  EXPECT_EQ(f.sqr(Gf2mField::add(a, b)),
            Gf2mField::add(f.sqr(a), f.sqr(b)));
}

TEST_P(Gf2mFieldTest, InverseWorks) {
  const Gf2mField& f = *GetParam();
  Rng rng(6);
  for (int i = 0; i < 20; ++i) {
    Gf2mElem a = random_elem(f, rng);
    if (a.is_zero()) continue;
    const Gf2mElem inv = f.inv(a);
    EXPECT_TRUE(f.mul(a, inv).is_one());
  }
  EXPECT_TRUE(f.inv(Gf2mField::one()).is_one());
}

TEST_P(Gf2mFieldTest, DivConsistent) {
  const Gf2mField& f = *GetParam();
  Rng rng(7);
  Gf2mElem a = random_elem(f, rng);
  Gf2mElem b = random_elem(f, rng);
  if (b.is_zero()) b = Gf2mField::one();
  EXPECT_EQ(f.mul(f.div(a, b), b), a);
}

TEST_P(Gf2mFieldTest, TraceIsBinaryAndLinear) {
  const Gf2mField& f = *GetParam();
  Rng rng(8);
  int seen0 = 0, seen1 = 0;
  for (int i = 0; i < 20; ++i) {
    const Gf2mElem a = random_elem(f, rng);
    const Gf2mElem b = random_elem(f, rng);
    const int ta = f.trace(a);
    const int tb = f.trace(b);
    ASSERT_TRUE(ta == 0 || ta == 1);
    EXPECT_EQ(f.trace(Gf2mField::add(a, b)), ta ^ tb);
    (ta ? seen1 : seen0)++;
  }
  // Both trace values occur for random elements (probability ~2^-20 to fail).
  EXPECT_GT(seen0, 0);
  EXPECT_GT(seen1, 0);
}

TEST_P(Gf2mFieldTest, HalfTraceSolvesQuadratic) {
  const Gf2mField& f = *GetParam();
  Rng rng(9);
  for (int i = 0; i < 20; ++i) {
    const Gf2mElem c = random_elem(f, rng);
    if (f.trace(c) != 0) continue;
    const Gf2mElem z = f.half_trace(c);
    EXPECT_EQ(Gf2mField::add(f.sqr(z), z), c);
  }
}

TEST_P(Gf2mFieldTest, EncodeDecodeRoundTrip) {
  const Gf2mField& f = *GetParam();
  Rng rng(10);
  const Gf2mElem a = random_elem(f, rng);
  EXPECT_EQ(f.decode(f.encode(a)), a);
  EXPECT_EQ(f.encode(a).size(), f.elem_bytes());
}

TEST_P(Gf2mFieldTest, FermatForFieldOrder) {
  // a^(2^m - 1) == 1 for nonzero a, computed via repeated squaring:
  // a^(2^m) == a (Frobenius fixed by full orbit).
  const Gf2mField& f = *GetParam();
  Rng rng(11);
  Gf2mElem a = random_elem(f, rng);
  if (a.is_zero()) a = f.from_u64(2);
  Gf2mElem t = a;
  for (int i = 0; i < f.degree(); ++i) t = f.sqr(t);
  EXPECT_EQ(t, a);
}

TEST(Gf2m, KnownSmallProducts) {
  // In GF(2^283) with poly x^283+x^12+x^7+x^5+1: x * x = x^2 (no reduction).
  const Gf2mField& f = gf2m_283();
  const Gf2mElem x = f.from_u64(2);
  EXPECT_EQ(f.mul(x, x), f.from_u64(4));
  // (x+1)*(x+1) = x^2 + 1 in char 2.
  const Gf2mElem xp1 = f.from_u64(3);
  EXPECT_EQ(f.mul(xp1, xp1), f.from_u64(5));
}

TEST(Gf2m, ReductionKicksIn) {
  // x^282 * x = x^283 = x^12 + x^7 + x^5 + 1 (mod poly).
  const Gf2mField& f = gf2m_283();
  Gf2mElem x282;
  x282.set_bit(282);
  const Gf2mElem prod = f.mul(x282, f.from_u64(2));
  Gf2mElem expected;
  expected.set_bit(12);
  expected.set_bit(7);
  expected.set_bit(5);
  expected.set_bit(0);
  EXPECT_EQ(prod, expected);
}

}  // namespace
}  // namespace qtls
