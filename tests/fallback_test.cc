// Software-fallback degradation (QAT_Engine sw-fallback semantics): the
// per-op-class circuit breaker flips to the software path after K
// consecutive terminal device failures, TLS handshakes keep completing end
// to end while the device is dead, and a re-probe after the cooldown
// restores offload.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "crypto/keystore.h"
#include "qat/fault.h"
#include "tls_test_util.h"

namespace qtls::tls {
namespace {

using testutil::pump_handshake;
using testutil::pump_read;
using testutil::pump_write;

qat::DeviceConfig faulty_device_config(qat::FaultPlan* plan) {
  qat::DeviceConfig cfg;
  cfg.num_endpoints = 1;
  cfg.engines_per_endpoint = 4;
  cfg.fault_plan = plan;
  return cfg;
}

// --- breaker unit behaviour (sync engine, no TLS) ---------------------------

TEST(Fallback, BreakerOpensAfterKConsecutiveFailures) {
  qat::FaultPlan plan(11);
  qat::FaultRates always_fail;
  always_fail.error_rate = 1.0;
  plan.set_rates(qat::OpKind::kPrfTls12, always_fail);

  qat::QatDevice device(faulty_device_config(&plan));
  engine::QatEngineConfig ecfg;
  ecfg.offload_mode = engine::OffloadMode::kSync;
  ecfg.max_retries = 0;
  ecfg.breaker_threshold = 3;
  ecfg.breaker_cooldown_ms = 10'000;  // long: must not re-probe in this test
  engine::QatEngineProvider qat_engine(device.allocate_instance(), ecfg);

  auto prf = [&] {
    return qat_engine.prf_tls12(HashAlg::kSha256, to_bytes("s"), "t",
                                to_bytes("x"), 32);
  };

  // K-1 failures: breaker still closed, every op went to the device.
  for (int i = 0; i < 2; ++i) ASSERT_TRUE(prf().is_ok());
  EXPECT_EQ(qat_engine.breaker_state(qat::OpClass::kPrf),
            engine::BreakerState::kClosed);
  EXPECT_EQ(qat_engine.stats().breaker_opens, 0u);

  // Kth failure flips the class open.
  ASSERT_TRUE(prf().is_ok());
  EXPECT_EQ(qat_engine.breaker_state(qat::OpClass::kPrf),
            engine::BreakerState::kOpen);
  EXPECT_EQ(qat_engine.stats().breaker_opens, 1u);
  const uint64_t submitted_at_open = qat_engine.stats().submitted;

  // Open: ops complete in software without touching the device.
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(prf().is_ok());
  EXPECT_EQ(qat_engine.stats().submitted, submitted_at_open);
  EXPECT_EQ(qat_engine.stats().sw_fallbacks, 3u + 4u);

  // Other classes are unaffected.
  EXPECT_EQ(qat_engine.breaker_state(qat::OpClass::kAsym),
            engine::BreakerState::kClosed);
  auto keygen = qat_engine.ecdhe_keygen(CurveId::kP256);
  ASSERT_TRUE(keygen.is_ok());
  EXPECT_GT(qat_engine.stats().submitted, submitted_at_open);
}

TEST(Fallback, ReProbeClosesBreakerWhenDeviceRecovers) {
  qat::FaultPlan plan(12);
  qat::FaultRates always_fail;
  always_fail.error_rate = 1.0;
  plan.set_rates(qat::OpKind::kPrfTls12, always_fail);

  qat::QatDevice device(faulty_device_config(&plan));
  engine::QatEngineConfig ecfg;
  ecfg.offload_mode = engine::OffloadMode::kSync;
  ecfg.max_retries = 0;
  ecfg.breaker_threshold = 2;
  ecfg.breaker_cooldown_ms = 20;
  engine::QatEngineProvider qat_engine(device.allocate_instance(), ecfg);

  auto prf = [&] {
    return qat_engine.prf_tls12(HashAlg::kSha256, to_bytes("s"), "t",
                                to_bytes("x"), 32);
  };

  for (int i = 0; i < 2; ++i) ASSERT_TRUE(prf().is_ok());
  ASSERT_EQ(qat_engine.breaker_state(qat::OpClass::kPrf),
            engine::BreakerState::kOpen);

  // Device still broken at the first re-probe: the probe fails and the
  // breaker reopens for another cooldown.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_TRUE(prf().is_ok());
  EXPECT_EQ(qat_engine.breaker_state(qat::OpClass::kPrf),
            engine::BreakerState::kOpen);
  EXPECT_EQ(qat_engine.stats().breaker_opens, 2u);
  EXPECT_EQ(qat_engine.stats().breaker_closes, 0u);

  // Heal the device; after the cooldown the next op re-probes and offload
  // recovers.
  plan.set_rates_all(qat::FaultRates{});
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const uint64_t submitted_before = qat_engine.stats().submitted;
  ASSERT_TRUE(prf().is_ok());
  EXPECT_EQ(qat_engine.breaker_state(qat::OpClass::kPrf),
            engine::BreakerState::kClosed);
  EXPECT_EQ(qat_engine.stats().breaker_closes, 1u);
  EXPECT_EQ(qat_engine.stats().submitted, submitted_before + 1);

  // Closed again: subsequent ops offload normally.
  ASSERT_TRUE(prf().is_ok());
  EXPECT_EQ(qat_engine.stats().submitted, submitted_before + 2);
}

// --- end-to-end: handshakes complete while the device is dead ---------------

TEST(Fallback, HandshakeCompletesWithDeadDevice) {
  qat::FaultPlan plan(13);
  qat::FaultRates always_fail;
  always_fail.error_rate = 1.0;
  plan.set_rates_all(always_fail);  // every op class fails on the device

  qat::QatDevice device(faulty_device_config(&plan));
  engine::QatEngineConfig ecfg;
  ecfg.offload_mode = engine::OffloadMode::kAsync;
  ecfg.max_retries = 1;
  ecfg.breaker_threshold = 2;
  ecfg.breaker_cooldown_ms = 60'000;  // stays degraded for the whole test
  engine::QatEngineProvider qat_engine(device.allocate_instance(), ecfg);

  TlsContextConfig scfg;
  scfg.is_server = true;
  scfg.async_mode = true;
  scfg.cipher_suites = {CipherSuite::kTlsRsaWithAes128CbcSha};
  scfg.drbg_seed = 21;
  TlsContext server_ctx(scfg, &qat_engine);
  server_ctx.credentials().rsa_key = &test_rsa2048();

  engine::SoftwareProvider client_provider(7);
  TlsContextConfig ccfg;
  ccfg.cipher_suites = scfg.cipher_suites;
  ccfg.drbg_seed = 22;
  TlsContext client_ctx(ccfg, &client_provider);

  net::MemoryPipe pipe;
  TlsConnection server(&server_ctx, &pipe.b());
  TlsConnection client(&client_ctx, &pipe.a());

  const auto result = pump_handshake(&client, &server, &qat_engine);
  ASSERT_TRUE(result.ok) << "client=" << tls_result_name(result.client_last)
                         << " server=" << tls_result_name(result.server_last);

  // The handshake was carried by the fallback path, not the device.
  EXPECT_GT(qat_engine.stats().device_errors, 0u);
  EXPECT_GT(qat_engine.stats().sw_fallbacks, 0u);
  EXPECT_GT(qat_engine.stats().breaker_opens, 0u);

  // Record protection also survives (cipher class degraded too).
  ASSERT_EQ(pump_write(&server, to_bytes("degraded but serving"),
                       &qat_engine),
            TlsResult::kOk);
  Bytes got;
  ASSERT_EQ(pump_read(&client, &got), TlsResult::kOk);
  EXPECT_EQ(to_string(got), "degraded but serving");
  EXPECT_EQ(qat_engine.inflight_total(), 0u);
}

// --- end-to-end: recovery after the device comes back -----------------------

TEST(Fallback, HandshakeOffloadRecoversAfterReProbe) {
  qat::FaultPlan plan(14);
  qat::FaultRates always_fail;
  always_fail.error_rate = 1.0;
  plan.set_rates_all(always_fail);

  qat::QatDevice device(faulty_device_config(&plan));
  engine::QatEngineConfig ecfg;
  ecfg.offload_mode = engine::OffloadMode::kAsync;
  ecfg.max_retries = 0;
  ecfg.breaker_threshold = 2;
  ecfg.breaker_cooldown_ms = 20;
  engine::QatEngineProvider qat_engine(device.allocate_instance(), ecfg);

  TlsContextConfig scfg;
  scfg.is_server = true;
  scfg.async_mode = true;
  scfg.cipher_suites = {CipherSuite::kTlsRsaWithAes128CbcSha};
  scfg.drbg_seed = 31;
  TlsContext server_ctx(scfg, &qat_engine);
  server_ctx.credentials().rsa_key = &test_rsa2048();

  engine::SoftwareProvider client_provider(7);
  TlsContextConfig ccfg;
  ccfg.cipher_suites = scfg.cipher_suites;
  ccfg.drbg_seed = 32;
  TlsContext client_ctx(ccfg, &client_provider);

  // First handshake degrades to software.
  {
    net::MemoryPipe pipe;
    TlsConnection server(&server_ctx, &pipe.b());
    TlsConnection client(&client_ctx, &pipe.a());
    ASSERT_TRUE(pump_handshake(&client, &server, &qat_engine).ok);
  }
  ASSERT_GT(qat_engine.stats().breaker_opens, 0u);
  const uint64_t submitted_degraded = qat_engine.stats().submitted;

  // Device heals; cooldown passes; a fresh handshake re-probes per class and
  // restores offload.
  plan.set_rates_all(qat::FaultRates{});
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  {
    net::MemoryPipe pipe;
    TlsConnection server(&server_ctx, &pipe.b());
    TlsConnection client(&client_ctx, &pipe.a());
    ASSERT_TRUE(pump_handshake(&client, &server, &qat_engine).ok);
  }
  EXPECT_GT(qat_engine.stats().submitted, submitted_degraded);
  EXPECT_GT(qat_engine.stats().breaker_closes, 0u);
  EXPECT_EQ(qat_engine.breaker_state(qat::OpClass::kPrf),
            engine::BreakerState::kClosed);
  EXPECT_EQ(qat_engine.inflight_total(), 0u);
}

}  // namespace
}  // namespace qtls::tls
