// Harness that co-schedules one Worker and a set of cooperative HTTPS
// clients in a single thread, connected over AF_UNIX socketpairs (real fds,
// real epoll — no network dependency).
#pragma once

#include <chrono>
#include <memory>

#include "client/https_client.h"
#include "server/worker.h"

namespace qtls::server::testutil {

inline client::ConnectFn socketpair_connector(Worker* worker) {
  return [worker]() -> int {
    auto pair = net::make_socketpair();
    if (!pair.is_ok()) return -1;
    if (!worker->adopt(pair.value().second).is_ok()) {
      ::close(pair.value().first);
      return -1;
    }
    return pair.value().first;
  };
}

// Runs until every client finished or the wall deadline passes. Returns true
// when all clients finished.
inline bool run_to_completion(Worker* worker, client::Pool* pool,
                              int deadline_seconds = 60) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(deadline_seconds);
  for (;;) {
    bool any_active = false;
    for (auto& c : pool->clients()) {
      if (c->step()) any_active = true;
    }
    worker->run_once(0);
    if (!any_active) return true;
    if (std::chrono::steady_clock::now() > deadline) return false;
  }
}

}  // namespace qtls::server::testutil
