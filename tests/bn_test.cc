#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/bn.h"
#include "crypto/primes.h"
#include "crypto/kdf.h"

namespace qtls {
namespace {

Bignum random_bignum(Rng& rng, size_t max_limbs) {
  const size_t n = 1 + rng.uniform(max_limbs);
  Bytes bytes = rng.bytes(n * 8);
  return Bignum::from_bytes_be(bytes);
}

TEST(Bignum, BytesRoundTrip) {
  const Bignum a = Bignum::from_hex("0123456789abcdef00ff");
  EXPECT_EQ(to_hex(a.to_bytes_be()), "0123456789abcdef00ff");
  EXPECT_EQ(a.to_hex(), "0123456789abcdef00ff");
  EXPECT_EQ(a.byte_length(), 10u);
  EXPECT_EQ(a.bit_length(), 73u);
}

TEST(Bignum, ZeroBehaviour) {
  const Bignum z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.bit_length(), 0u);
  EXPECT_EQ(to_hex(z.to_bytes_be()), "00");
  EXPECT_EQ(Bignum::cmp(z, Bignum(0)), 0);
}

TEST(Bignum, PaddedBytes) {
  const Bignum a(0xabcd);
  EXPECT_EQ(to_hex(a.to_bytes_be(4)), "0000abcd");
}

TEST(Bignum, AddSubInverse) {
  Rng rng(42);
  for (int i = 0; i < 200; ++i) {
    const Bignum a = random_bignum(rng, 6);
    const Bignum b = random_bignum(rng, 6);
    const Bignum s = Bignum::add(a, b);
    EXPECT_EQ(Bignum::sub(s, b), a);
    EXPECT_EQ(Bignum::sub(s, a), b);
  }
}

TEST(Bignum, AddCarriesAcrossLimbs) {
  const Bignum a = Bignum::from_hex("ffffffffffffffffffffffffffffffff");
  const Bignum one(1);
  EXPECT_EQ(Bignum::add(a, one).to_hex(), "0100000000000000000000000000000000");
}

TEST(Bignum, MulMatchesSmall) {
  EXPECT_EQ(Bignum::mul(Bignum(123456789), Bignum(987654321)).low_u64(),
            123456789ULL * 987654321ULL);
  EXPECT_TRUE(Bignum::mul(Bignum(0), Bignum(55)).is_zero());
}

TEST(Bignum, MulCommutativeAssociative) {
  Rng rng(43);
  for (int i = 0; i < 50; ++i) {
    const Bignum a = random_bignum(rng, 4);
    const Bignum b = random_bignum(rng, 4);
    const Bignum c = random_bignum(rng, 4);
    EXPECT_EQ(Bignum::mul(a, b), Bignum::mul(b, a));
    EXPECT_EQ(Bignum::mul(Bignum::mul(a, b), c),
              Bignum::mul(a, Bignum::mul(b, c)));
    // distributivity
    EXPECT_EQ(Bignum::mul(a, Bignum::add(b, c)),
              Bignum::add(Bignum::mul(a, b), Bignum::mul(a, c)));
  }
}

TEST(Bignum, ShiftRoundTrip) {
  Rng rng(44);
  for (int i = 0; i < 100; ++i) {
    const Bignum a = random_bignum(rng, 5);
    const size_t s = rng.uniform(200);
    EXPECT_EQ(Bignum::shr(Bignum::shl(a, s), s), a);
  }
}

TEST(Bignum, ShlIsMulByPow2) {
  const Bignum a = Bignum::from_hex("deadbeefcafebabe");
  EXPECT_EQ(Bignum::shl(a, 13), Bignum::mul(a, Bignum(1 << 13)));
}

TEST(Bignum, DivModProperty) {
  Rng rng(45);
  for (int i = 0; i < 300; ++i) {
    const Bignum a = random_bignum(rng, 8);
    Bignum b = random_bignum(rng, 4);
    if (b.is_zero()) b = Bignum(1);
    const auto [q, r] = Bignum::divmod(a, b);
    EXPECT_LT(Bignum::cmp(r, b), 0);
    EXPECT_EQ(Bignum::add(Bignum::mul(q, b), r), a);
  }
}

TEST(Bignum, DivModSingleLimb) {
  const Bignum a = Bignum::from_hex("123456789abcdef0123456789abcdef0");
  const auto [q, r] = Bignum::divmod(a, Bignum(1000003));
  EXPECT_EQ(Bignum::add(Bignum::mul(q, Bignum(1000003)), r), a);
}

TEST(Bignum, DivByLargerGivesZero) {
  const Bignum a(5);
  const Bignum b = Bignum::from_hex("ffffffffffffffffff");
  const auto [q, r] = Bignum::divmod(a, b);
  EXPECT_TRUE(q.is_zero());
  EXPECT_EQ(r, a);
}

TEST(Bignum, DivisionByZeroThrows) {
  EXPECT_THROW(Bignum::divmod(Bignum(5), Bignum()), std::invalid_argument);
}

TEST(Bignum, KnuthAddBackCase) {
  // Divisor with top limb 0x8000.. and dividend shaped to stress qhat
  // correction.
  const Bignum b = Bignum::from_hex("80000000000000000000000000000001");
  const Bignum a = Bignum::from_hex(
      "7fffffffffffffffffffffffffffffff00000000000000000000000000000000");
  const auto [q, r] = Bignum::divmod(a, b);
  EXPECT_EQ(Bignum::add(Bignum::mul(q, b), r), a);
  EXPECT_LT(Bignum::cmp(r, b), 0);
}

TEST(Bignum, ModExpSmall) {
  // 3^7 mod 11 = 2187 mod 11 = 9
  EXPECT_EQ(Bignum::mod_exp(Bignum(3), Bignum(7), Bignum(11)).low_u64(), 9u);
  // x^0 = 1
  EXPECT_TRUE(Bignum::mod_exp(Bignum(5), Bignum(0), Bignum(7)).is_one());
  // 0^x = 0
  EXPECT_TRUE(Bignum::mod_exp(Bignum(0), Bignum(5), Bignum(7)).is_zero());
}

TEST(Bignum, ModExpEvenModulus) {
  // 5^3 mod 14 = 125 mod 14 = 13
  EXPECT_EQ(Bignum::mod_exp(Bignum(5), Bignum(3), Bignum(14)).low_u64(), 13u);
}

TEST(Bignum, FermatLittleTheorem) {
  // For prime p and gcd(a, p) = 1: a^(p-1) = 1 mod p.
  const Bignum p = Bignum::from_hex(
      "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff");
  Rng rng(46);
  for (int i = 0; i < 5; ++i) {
    const Bignum a = Bignum::mod(random_bignum(rng, 4), p);
    if (a.is_zero()) continue;
    EXPECT_TRUE(
        Bignum::mod_exp(a, Bignum::sub(p, Bignum(1)), p).is_one());
  }
}

TEST(Bignum, ModInverse) {
  Rng rng(47);
  const Bignum m = Bignum::from_hex("fffffffffffffffffffffffffffffff1");
  for (int i = 0; i < 50; ++i) {
    Bignum a = Bignum::mod(random_bignum(rng, 3), m);
    if (a.is_zero()) continue;
    const Bignum inv = Bignum::mod_inverse(a, m);
    if (inv.is_zero()) continue;  // not invertible (shared factor)
    EXPECT_TRUE(Bignum::mod_mul(a, inv, m).is_one());
  }
}

TEST(Bignum, ModInverseNotInvertible) {
  EXPECT_TRUE(Bignum::mod_inverse(Bignum(6), Bignum(9)).is_zero());
  EXPECT_TRUE(Bignum::mod_inverse(Bignum(0), Bignum(7)).is_zero());
}

TEST(Bignum, Gcd) {
  EXPECT_EQ(Bignum::gcd(Bignum(48), Bignum(36)).low_u64(), 12u);
  EXPECT_EQ(Bignum::gcd(Bignum(17), Bignum(13)).low_u64(), 1u);
  EXPECT_EQ(Bignum::gcd(Bignum(0), Bignum(5)).low_u64(), 5u);
}

TEST(Montgomery, MatchesModMul) {
  Rng rng(48);
  const Bignum m = Bignum::from_hex(
      "c90102faa48f18b5eac1f76bb88da5f6e0d6c9b5092de1a92e02ba6f9c4781ad");
  MontCtx ctx(m);
  for (int i = 0; i < 100; ++i) {
    const Bignum a = Bignum::mod(random_bignum(rng, 4), m);
    const Bignum b = Bignum::mod(random_bignum(rng, 4), m);
    const Bignum am = ctx.to_mont(a);
    const Bignum bm = ctx.to_mont(b);
    const Bignum prod = ctx.from_mont(ctx.mul(am, bm));
    EXPECT_EQ(prod, Bignum::mod_mul(a, b, m));
  }
}

TEST(Montgomery, ToFromRoundTrip) {
  const Bignum m = Bignum::from_hex("f123456789abcdef123456789abcdef1");
  MontCtx ctx(m);
  const Bignum a = Bignum::from_hex("0123456789abcdef");
  EXPECT_EQ(ctx.from_mont(ctx.to_mont(a)), a);
}

TEST(Montgomery, RequiresOddModulus) {
  EXPECT_THROW(MontCtx(Bignum(10)), std::invalid_argument);
}

TEST(Montgomery, ExpMatchesNaive) {
  Rng rng(49);
  const Bignum m = Bignum::from_hex("e3b0c44298fc1c149afbf4c8996fb925");
  MontCtx ctx(m);
  for (int i = 0; i < 20; ++i) {
    const Bignum a = Bignum::mod(random_bignum(rng, 2), m);
    const uint64_t e = rng.uniform(1000);
    // Naive repeated multiplication.
    Bignum expect(1);
    for (uint64_t k = 0; k < e; ++k) expect = Bignum::mod_mul(expect, a, m);
    EXPECT_EQ(ctx.exp(a, Bignum(e)), expect) << "e=" << e;
  }
}

TEST(Primes, SmallPrimesRecognized) {
  HmacDrbg rng = HmacDrbg(HashAlg::kSha256, to_bytes("prime-test"));
  EXPECT_TRUE(is_probable_prime(Bignum(2), 10, rng));
  EXPECT_TRUE(is_probable_prime(Bignum(3), 10, rng));
  EXPECT_TRUE(is_probable_prime(Bignum(65537), 10, rng));
  EXPECT_FALSE(is_probable_prime(Bignum(1), 10, rng));
  EXPECT_FALSE(is_probable_prime(Bignum(561), 10, rng));   // Carmichael
  EXPECT_FALSE(is_probable_prime(Bignum(65535), 10, rng));
}

TEST(Primes, KnownLargePrime) {
  // P-256 order is prime.
  HmacDrbg rng = HmacDrbg(HashAlg::kSha256, to_bytes("prime-test-2"));
  const Bignum n = Bignum::from_hex(
      "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551");
  EXPECT_TRUE(is_probable_prime(n, 8, rng));
  EXPECT_FALSE(is_probable_prime(Bignum::sub(n, Bignum(1)), 8, rng));
}

TEST(Primes, GeneratedPrimeHasRequestedShape) {
  HmacDrbg rng = HmacDrbg(HashAlg::kSha256, to_bytes("prime-gen"));
  const Bignum p = generate_prime(128, rng);
  EXPECT_EQ(p.bit_length(), 128u);
  EXPECT_TRUE(p.bit(126));  // second-highest bit forced
  EXPECT_TRUE(p.is_odd());
  EXPECT_TRUE(is_probable_prime(p, 16, rng));
}

TEST(Primes, RandomBelowIsBelow) {
  HmacDrbg rng = HmacDrbg(HashAlg::kSha256, to_bytes("below"));
  const Bignum bound = Bignum::from_hex("0123456789");
  for (int i = 0; i < 200; ++i)
    EXPECT_LT(Bignum::cmp(random_below(bound, rng), bound), 0);
}

}  // namespace
}  // namespace qtls
