// Parameterized property sweeps across the crypto substrate: the same
// invariants checked over families of sizes rather than single points.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/keystore.h"
#include "crypto/primes.h"
#include "crypto/rsa.h"

namespace qtls {
namespace {

// ----------------------------------------------------- RSA key sizes ----

class RsaKeySizeTest : public ::testing::TestWithParam<size_t> {};

INSTANTIATE_TEST_SUITE_P(Sizes, RsaKeySizeTest,
                         ::testing::Values(512u, 768u, 1024u),
                         [](const auto& info) {
                           return "Bits" + std::to_string(info.param);
                         });

TEST_P(RsaKeySizeTest, FullKeyLifecycle) {
  const size_t bits = GetParam();
  HmacDrbg rng = make_test_drbg(9000 + bits);
  const RsaPrivateKey key = rsa_generate(bits, rng);
  EXPECT_EQ(key.pub.n.bit_length(), bits);

  // Sign/verify.
  const Bytes digest = sha256(to_bytes("lifecycle"));
  const Bytes sig = rsa_sign_pkcs1(key, digest);
  EXPECT_TRUE(rsa_verify_pkcs1(key.pub, digest, sig).is_ok());

  // Encrypt/decrypt.
  const Bytes msg = rng.generate(bits / 8 - 16);
  auto ct = rsa_encrypt_pkcs1(key.pub, msg, rng);
  ASSERT_TRUE(ct.is_ok());
  auto pt = rsa_decrypt_pkcs1(key, ct.value());
  ASSERT_TRUE(pt.is_ok());
  EXPECT_EQ(pt.value(), msg);

  // CRT private op agrees with plain exponentiation.
  const Bignum c = Bignum::mod(Bignum::from_bytes_be(rng.generate(bits / 8)),
                               key.pub.n);
  EXPECT_EQ(rsa_private_op(key, c), Bignum::mod_exp(c, key.d, key.pub.n));

  // Public-then-private is the identity (RSA correctness).
  const Bignum m = Bignum::mod(Bignum::from_bytes_be(rng.generate(16)),
                               key.pub.n);
  EXPECT_EQ(rsa_private_op(key, rsa_public_op(key.pub, m)), m);
}

// ------------------------------------------------------- KDF lengths ----

class KdfLengthTest : public ::testing::TestWithParam<size_t> {};

INSTANTIATE_TEST_SUITE_P(Lengths, KdfLengthTest,
                         ::testing::Values(1u, 12u, 31u, 32u, 33u, 48u, 64u,
                                           100u, 255u),
                         [](const auto& info) {
                           return "Len" + std::to_string(info.param);
                         });

TEST_P(KdfLengthTest, PrfPrefixAndDeterminism) {
  const size_t len = GetParam();
  const Bytes secret = to_bytes("secret");
  const Bytes seed = to_bytes("seed");
  const Bytes out =
      tls12_prf(HashAlg::kSha256, secret, "sweep", seed, len);
  EXPECT_EQ(out.size(), len);
  // Prefix property: shorter requests are prefixes of longer ones.
  const Bytes longer =
      tls12_prf(HashAlg::kSha256, secret, "sweep", seed, len + 16);
  EXPECT_EQ(Bytes(longer.begin(), longer.begin() + static_cast<ptrdiff_t>(len)),
            out);
}

TEST_P(KdfLengthTest, HkdfExpandSizes) {
  const size_t len = GetParam();
  const Bytes prk =
      hkdf_extract(HashAlg::kSha256, to_bytes("salt"), to_bytes("ikm"));
  const Bytes out = hkdf_expand(HashAlg::kSha256, prk, to_bytes("info"), len);
  EXPECT_EQ(out.size(), len);
  const Bytes longer =
      hkdf_expand(HashAlg::kSha256, prk, to_bytes("info"), len + 8);
  EXPECT_EQ(Bytes(longer.begin(), longer.begin() + static_cast<ptrdiff_t>(len)),
            out);
}

// -------------------------------------------------- bignum width sweep ----

class BignumWidthTest : public ::testing::TestWithParam<size_t> {};

INSTANTIATE_TEST_SUITE_P(Widths, BignumWidthTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 6u, 8u, 16u, 32u),
                         [](const auto& info) {
                           return "Limbs" + std::to_string(info.param);
                         });

TEST_P(BignumWidthTest, DivModAndModExpInvariants) {
  const size_t limbs = GetParam();
  Rng rng(5000 + limbs);
  for (int iter = 0; iter < 20; ++iter) {
    const Bignum a = Bignum::from_bytes_be(rng.bytes(limbs * 8));
    Bignum b = Bignum::from_bytes_be(rng.bytes((limbs + 1) / 2 * 8));
    if (b.is_zero()) b = Bignum(3);
    const auto [q, r] = Bignum::divmod(a, b);
    EXPECT_EQ(Bignum::add(Bignum::mul(q, b), r), a);
    EXPECT_LT(Bignum::cmp(r, b), 0);

    // (a mod b)^2 mod b == a^2 mod b
    EXPECT_EQ(Bignum::mod_mul(r, r, b),
              Bignum::mod(Bignum::mul(a, a), b));
  }
}

TEST_P(BignumWidthTest, MontgomeryAgreesAtEveryWidth) {
  const size_t limbs = GetParam();
  Rng rng(6000 + limbs);
  Bytes modulus_bytes = rng.bytes(limbs * 8);
  modulus_bytes.back() |= 1;   // odd
  modulus_bytes.front() |= 0x80;
  const Bignum m = Bignum::from_bytes_be(modulus_bytes);
  MontCtx ctx(m);
  for (int iter = 0; iter < 10; ++iter) {
    const Bignum a = Bignum::mod(Bignum::from_bytes_be(rng.bytes(limbs * 8)), m);
    const Bignum e(rng.uniform(50) + 1);
    // Naive square-and-multiply reference.
    Bignum expect(1);
    for (uint64_t k = 0; k < e.low_u64(); ++k)
      expect = Bignum::mod_mul(expect, a, m);
    EXPECT_EQ(ctx.exp(a, e), expect);
  }
}

// ------------------------------------------------ prime size behaviour ----

class PrimeSizeTest : public ::testing::TestWithParam<size_t> {};

INSTANTIATE_TEST_SUITE_P(Bits, PrimeSizeTest,
                         ::testing::Values(64u, 96u, 128u, 256u),
                         [](const auto& info) {
                           return "Bits" + std::to_string(info.param);
                         });

TEST_P(PrimeSizeTest, GeneratedPrimesHaveShapeAndPassFermat) {
  const size_t bits = GetParam();
  HmacDrbg rng = make_test_drbg(7000 + bits);
  const Bignum p = generate_prime(bits, rng);
  EXPECT_EQ(p.bit_length(), bits);
  EXPECT_TRUE(p.is_odd());
  // Fermat check with several bases.
  const Bignum p1 = Bignum::sub(p, Bignum(1));
  for (uint64_t base : {2ULL, 3ULL, 65537ULL}) {
    EXPECT_TRUE(Bignum::mod_exp(Bignum(base), p1, p).is_one())
        << "base " << base;
  }
}

}  // namespace
}  // namespace qtls
