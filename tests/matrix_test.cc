// Combinatorial end-to-end matrix: every evaluated cipher suite crossed
// with both notification schemes and both curve families, each cell running
// full handshakes + requests through the real worker/QTLS pipeline. This is
// the breadth check that no (suite, scheme) combination has a divergent
// code path.
#include <gtest/gtest.h>

#include "crypto/keystore.h"
#include "server_test_util.h"

namespace qtls::server {
namespace {

using MatrixParam = std::tuple<tls::CipherSuite, NotifyScheme, CurveId>;

class WorkerMatrixTest : public ::testing::TestWithParam<MatrixParam> {};

std::string suite_tag(tls::CipherSuite suite) {
  switch (suite) {
    case tls::CipherSuite::kTlsRsaWithAes128CbcSha: return "TlsRsa";
    case tls::CipherSuite::kEcdheRsaWithAes128CbcSha: return "EcdheRsa";
    case tls::CipherSuite::kEcdheEcdsaWithAes128CbcSha: return "EcdheEcdsa";
    case tls::CipherSuite::kTls13Aes128Sha256: return "Tls13";
  }
  return "Unknown";
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, WorkerMatrixTest,
    ::testing::Combine(
        ::testing::Values(tls::CipherSuite::kTlsRsaWithAes128CbcSha,
                          tls::CipherSuite::kEcdheRsaWithAes128CbcSha,
                          tls::CipherSuite::kEcdheEcdsaWithAes128CbcSha,
                          tls::CipherSuite::kTls13Aes128Sha256),
        ::testing::Values(NotifyScheme::kKernelBypass, NotifyScheme::kFd),
        ::testing::Values(CurveId::kP256, CurveId::kK283)),
    [](const auto& info) {
      std::string name = suite_tag(std::get<0>(info.param));
      name += std::get<1>(info.param) == NotifyScheme::kKernelBypass ? "Kb"
                                                                     : "Fd";
      name += std::get<2>(info.param) == CurveId::kP256 ? "P256" : "K283";
      return name;
    });

TEST_P(WorkerMatrixTest, HandshakesAndRequestsSucceed) {
  const auto [suite, notify, curve] = GetParam();
  // TLS 1.3 on a binary ECDHE group is outside the reproduced scope (the
  // paper's Fig. 8 uses P-256).
  if (suite == tls::CipherSuite::kTls13Aes128Sha256 &&
      curve == CurveId::kK283)
    GTEST_SKIP() << "TLS 1.3 evaluated on P-256 only (Fig. 8)";

  qat::DeviceConfig dcfg;
  dcfg.num_endpoints = 1;
  dcfg.engines_per_endpoint = 6;
  qat::QatDevice device(dcfg);
  engine::QatEngineConfig qcfg;
  engine::QatEngineProvider qat(device.allocate_instance(), qcfg);

  tls::TlsContextConfig scfg;
  scfg.is_server = true;
  scfg.async_mode = true;
  scfg.cipher_suites = {suite};
  scfg.curve = curve;
  tls::TlsContext sctx(scfg, &qat);
  sctx.credentials().rsa_key = &test_rsa2048();
  sctx.credentials().ecdsa_p256 = &test_ec_key_p256();
  sctx.credentials().ecdsa_p384 = &test_ec_key_p384();

  engine::SoftwareProvider client_provider;
  tls::TlsContextConfig ccfg;
  ccfg.cipher_suites = {suite};
  ccfg.curve = curve;
  tls::TlsContext cctx(ccfg, &client_provider);

  WorkerConfig wcfg;
  wcfg.notify = notify;
  Worker worker(&sctx, &qat, wcfg);

  client::Pool pool;
  for (int i = 0; i < 3; ++i) {
    client::ClientOptions copts;
    copts.max_requests = 2;
    copts.keepalive = i % 2 == 0;
    pool.add(std::make_unique<client::HttpsClient>(
        &cctx, testutil::socketpair_connector(&worker), copts,
        900 + static_cast<uint64_t>(i)));
  }
  ASSERT_TRUE(testutil::run_to_completion(&worker, &pool));
  const auto stats = pool.aggregate();
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.requests, 6u);
  EXPECT_EQ(qat.inflight_total(), 0u);
  EXPECT_GT(worker.stats().async_parks, 0u);
  // Offloads actually reached the device (asym ops for every suite; PRF for
  // the 1.2 suites).
  EXPECT_GT(device.fw_counters().total_requests(), 0u);
}

}  // namespace
}  // namespace qtls::server
