// TLS 1.3 PSK resumption (psk_dhe_ke) — the extension beyond the paper's
// Fig. 9 (which covers TLS 1.2 resumption): NewSessionTicket issued after
// the full handshake; a later handshake offering the ticket skips the
// certificate and the RSA signature while keeping the ECDHE exchange.
#include <gtest/gtest.h>

#include "crypto/keystore.h"
#include "tls_test_util.h"

namespace qtls::tls {
namespace {

using testutil::pump_handshake;
using testutil::pump_read;
using testutil::pump_write;

struct Rig13 {
  net::MemoryPipe pipe;
  engine::SoftwareProvider server_provider{1};
  engine::SoftwareProvider client_provider{2};
  std::unique_ptr<TlsContext> server_ctx;
  std::unique_ptr<TlsContext> client_ctx;
  std::unique_ptr<TlsConnection> server;
  std::unique_ptr<TlsConnection> client;

  Rig13() {
    TlsContextConfig scfg;
    scfg.is_server = true;
    scfg.cipher_suites = {CipherSuite::kTls13Aes128Sha256};
    scfg.use_session_tickets = true;
    scfg.drbg_seed = 31;
    server_ctx = std::make_unique<TlsContext>(scfg, &server_provider);
    server_ctx->credentials().rsa_key = &test_rsa2048();

    TlsContextConfig ccfg;
    ccfg.cipher_suites = {CipherSuite::kTls13Aes128Sha256};
    ccfg.drbg_seed = 32;
    client_ctx = std::make_unique<TlsContext>(ccfg, &client_provider);
    reset();
  }

  void reset() {
    server = std::make_unique<TlsConnection>(server_ctx.get(), &pipe.b());
    client = std::make_unique<TlsConnection>(client_ctx.get(), &pipe.a());
  }

  // Full handshake + one read to deliver the post-handshake ticket.
  std::optional<ClientSession> full_handshake_and_ticket() {
    if (!pump_handshake(client.get(), server.get()).ok) return std::nullopt;
    // The NewSessionTicket arrives as a post-handshake record; a client
    // read (that then would-block on app data) consumes it.
    Bytes sink;
    (void)pump_read(client.get(), &sink);
    return client->established_session();
  }
};

TEST(Tls13Resumption, TicketIssuedAfterFullHandshake) {
  Rig13 rig;
  auto session = rig.full_handshake_and_ticket();
  ASSERT_TRUE(session.has_value());
  EXPECT_FALSE(session->ticket.empty());
  EXPECT_FALSE(session->master_secret.empty());
  EXPECT_EQ(session->suite, CipherSuite::kTls13Aes128Sha256);
  // The full handshake performed the RSA CertificateVerify.
  EXPECT_EQ(rig.server->op_counters().rsa, 1);
}

TEST(Tls13Resumption, PskHandshakeSkipsAsymmetricSignature) {
  Rig13 rig;
  auto session = rig.full_handshake_and_ticket();
  ASSERT_TRUE(session.has_value());

  rig.reset();
  rig.client->offer_session(*session);
  const auto result = pump_handshake(rig.client.get(), rig.server.get());
  ASSERT_TRUE(result.ok) << "client=" << tls_result_name(result.client_last)
                         << " server=" << tls_result_name(result.server_last);
  EXPECT_TRUE(rig.server->resumed_session());
  EXPECT_TRUE(rig.client->resumed_session());
  // §2.1: the asymmetric-key calculation is skipped; ECDHE (2 EC ops)
  // remains for forward secrecy (psk_dhe_ke).
  EXPECT_EQ(rig.server->op_counters().rsa, 0);
  EXPECT_EQ(rig.server->op_counters().ecc, 2);

  // Application data flows under the resumed keys.
  ASSERT_EQ(pump_write(rig.client.get(), to_bytes("psk data")),
            TlsResult::kOk);
  Bytes got;
  ASSERT_EQ(pump_read(rig.server.get(), &got), TlsResult::kOk);
  EXPECT_EQ(to_string(got), "psk data");
}

TEST(Tls13Resumption, ResumedSessionsChainViaFreshTickets) {
  Rig13 rig;
  auto session = rig.full_handshake_and_ticket();
  ASSERT_TRUE(session.has_value());

  // Resume, collect the refreshed ticket, resume again.
  for (int round = 0; round < 2; ++round) {
    rig.reset();
    rig.client->offer_session(*session);
    ASSERT_TRUE(pump_handshake(rig.client.get(), rig.server.get()).ok)
        << "round " << round;
    EXPECT_TRUE(rig.server->resumed_session());
    Bytes sink;
    (void)pump_read(rig.client.get(), &sink);  // pick up the new ticket
    session = rig.client->established_session();
    ASSERT_TRUE(session.has_value());
    ASSERT_FALSE(session->ticket.empty());
  }
}

TEST(Tls13Resumption, TamperedTicketFallsBackToFullHandshake) {
  Rig13 rig;
  auto session = rig.full_handshake_and_ticket();
  ASSERT_TRUE(session.has_value());

  rig.reset();
  ClientSession bad = *session;
  bad.ticket[4] ^= 0x01;
  rig.client->offer_session(bad);
  ASSERT_TRUE(pump_handshake(rig.client.get(), rig.server.get()).ok);
  EXPECT_FALSE(rig.server->resumed_session());
  EXPECT_EQ(rig.server->op_counters().rsa, 1);  // full handshake again
}

TEST(Tls13Resumption, ExpiredTicketFallsBackToFullHandshake) {
  Rig13 rig;
  uint64_t fake_now = 10'000'000;
  rig.server_ctx->set_clock([&fake_now] { return fake_now; });
  auto session = rig.full_handshake_and_ticket();
  ASSERT_TRUE(session.has_value());

  fake_now += 2 * 3'600'000;  // beyond the 1h ticket lifetime
  rig.reset();
  rig.client->offer_session(*session);
  ASSERT_TRUE(pump_handshake(rig.client.get(), rig.server.get()).ok);
  EXPECT_FALSE(rig.server->resumed_session());
}

TEST(Tls13Resumption, WithQatAsyncOffload) {
  // PSK resumption through the full offload pipeline: only EC ops reach the
  // accelerator.
  qat::DeviceConfig dcfg;
  dcfg.num_endpoints = 1;
  dcfg.engines_per_endpoint = 4;
  qat::QatDevice device(dcfg);
  engine::QatEngineConfig qcfg;
  engine::QatEngineProvider qat(device.allocate_instance(), qcfg);

  TlsContextConfig scfg;
  scfg.is_server = true;
  scfg.async_mode = true;
  scfg.cipher_suites = {CipherSuite::kTls13Aes128Sha256};
  scfg.use_session_tickets = true;
  TlsContext sctx(scfg, &qat);
  sctx.credentials().rsa_key = &test_rsa2048();

  engine::SoftwareProvider client_provider;
  TlsContextConfig ccfg;
  ccfg.cipher_suites = {CipherSuite::kTls13Aes128Sha256};
  TlsContext cctx(ccfg, &client_provider);

  std::optional<ClientSession> session;
  {
    net::MemoryPipe pipe;
    TlsConnection server(&sctx, &pipe.b());
    TlsConnection client(&cctx, &pipe.a());
    ASSERT_TRUE(pump_handshake(&client, &server, &qat).ok);
    Bytes sink;
    (void)pump_read(&client, &sink, &qat);
    session = client.established_session();
  }
  ASSERT_TRUE(session.has_value());
  const auto asym_before =
      device.fw_counters().requests[static_cast<int>(qat::OpClass::kAsym)];

  net::MemoryPipe pipe;
  TlsConnection server(&sctx, &pipe.b());
  TlsConnection client(&cctx, &pipe.a());
  client.offer_session(*session);
  ASSERT_TRUE(pump_handshake(&client, &server, &qat).ok);
  EXPECT_TRUE(server.resumed_session());
  const auto asym_after =
      device.fw_counters().requests[static_cast<int>(qat::OpClass::kAsym)];
  EXPECT_EQ(asym_after - asym_before, 2u);  // ECDHE only, no RSA
}

}  // namespace
}  // namespace qtls::tls
