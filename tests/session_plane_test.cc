// Resumption-plane tests (ctest label "session"): the four session-lifetime
// /eviction bugfix regressions, the sharded cache under concurrency, the
// rotating ticket-key ring matrix, and end-to-end cross-worker resumption
// through a WorkerPool's shared plane.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "client/https_client.h"
#include "crypto/aes.h"
#include "crypto/hash.h"
#include "crypto/keystore.h"
#include "server/ssl_engine_conf.h"
#include "server/worker_pool.h"
#include "tls/session_plane.h"
#include "tls_test_util.h"

namespace qtls::tls {
namespace {

using testutil::pump_handshake;

SessionState make_state(uint8_t fill = 0xab) {
  SessionState state;
  state.suite = CipherSuite::kEcdheRsaWithAes128CbcSha;
  state.master_secret.assign(48, fill);
  return state;
}

Bytes id_of(uint32_t n) {
  Bytes id(kSessionIdSize, 0);
  id[0] = static_cast<uint8_t>(n);
  id[1] = static_cast<uint8_t>(n >> 8);
  id[2] = static_cast<uint8_t>(n >> 16);
  id[3] = static_cast<uint8_t>(n >> 24);
  return id;
}

// ---------------------------------------------------------------------------
// Bugfix 1: re-sealing a ticket on resumption must NOT restart its lifetime.

struct TicketPair {
  net::MemoryPipe pipe;
  engine::SoftwareProvider server_provider{1};
  engine::SoftwareProvider client_provider{2};
  std::unique_ptr<TlsContext> server_ctx;
  std::unique_ptr<TlsContext> client_ctx;
  std::unique_ptr<TlsConnection> server;
  std::unique_ptr<TlsConnection> client;

  TicketPair() {
    TlsContextConfig scfg;
    scfg.is_server = true;
    scfg.cipher_suites = {CipherSuite::kEcdheRsaWithAes128CbcSha};
    scfg.use_session_tickets = true;
    // Park the key ring in epoch 0 for the whole test so only the ticket
    // LIFETIME decides acceptance, not key rotation.
    scfg.ticket_rotate_interval_ms = 1ULL << 40;
    scfg.drbg_seed = 111;
    server_ctx = std::make_unique<TlsContext>(scfg, &server_provider);
    server_ctx->credentials().rsa_key = &test_rsa2048();

    TlsContextConfig ccfg;
    ccfg.cipher_suites = scfg.cipher_suites;
    ccfg.drbg_seed = 222;
    client_ctx = std::make_unique<TlsContext>(ccfg, &client_provider);
    reset_connections();
  }

  void reset_connections() {
    server = std::make_unique<TlsConnection>(server_ctx.get(), &pipe.b());
    client = std::make_unique<TlsConnection>(client_ctx.get(), &pipe.a());
  }
};

TEST(TicketLifetime, ResumptionDoesNotExtendLifetime) {
  TicketPair pair;
  uint64_t fake_now = 1'000'000;
  pair.server_ctx->set_clock([&fake_now] { return fake_now; });
  const uint64_t lifetime = pair.server_ctx->config().session_lifetime_ms;

  ASSERT_TRUE(pump_handshake(pair.client.get(), pair.server.get()).ok);
  auto session = pair.client->established_session();
  ASSERT_TRUE(session.has_value());
  ASSERT_FALSE(session->ticket.empty());

  // Resume at 3/4 of the lifetime: accepted, and the server issues a
  // refreshed ticket. The refreshed ticket must carry the ORIGINAL creation
  // time forward.
  fake_now += lifetime * 3 / 4;
  pair.reset_connections();
  pair.client->offer_session(*session);
  ASSERT_TRUE(pump_handshake(pair.client.get(), pair.server.get()).ok);
  ASSERT_TRUE(pair.server->resumed_session());
  session = pair.client->established_session();
  ASSERT_TRUE(session.has_value());
  ASSERT_FALSE(session->ticket.empty());

  // Another 3/4 lifetime later the cumulative age exceeds the cap, so the
  // refreshed ticket must be rejected and the handshake falls back to full.
  // (Pre-fix, every refresh restarted the clock and a chatty client could
  // keep one master secret alive forever.)
  fake_now += lifetime * 3 / 4;
  pair.reset_connections();
  pair.client->offer_session(*session);
  ASSERT_TRUE(pump_handshake(pair.client.get(), pair.server.get()).ok);
  EXPECT_FALSE(pair.server->resumed_session());
}

// ---------------------------------------------------------------------------
// Bugfix 2: expiry checks must clamp, not underflow, when the clock reads
// EARLIER than the entry's creation time (cross-worker skew, sim restart).

TEST(SessionCacheExpiry, FutureDatedEntryIsNotExpired) {
  SessionCache cache(16, /*lifetime_ms=*/1000);
  cache.put(id_of(1), make_state(), /*now_ms=*/10'000);
  // Clock behind creation: age clamps to 0. Pre-fix the unsigned
  // subtraction wrapped to ~2^64 and the live entry was dropped.
  EXPECT_TRUE(cache.get(id_of(1), /*now_ms=*/5'000).has_value());
  // Normal forward expiry is unchanged.
  EXPECT_TRUE(cache.get(id_of(1), 11'000).has_value());
  EXPECT_FALSE(cache.get(id_of(1), 11'001).has_value());
}

TEST(TicketExpiry, FutureDatedTicketIsNotExpired) {
  HmacDrbg rng(HashAlg::kSha256, to_bytes("iv-seed"));
  TicketKeeper keeper(to_bytes("seed"), /*lifetime_ms=*/1000);
  SessionState state = make_state();
  state.created_at_ms = 10'000;
  const Bytes ticket = keeper.seal(state, 10'000, rng);
  EXPECT_TRUE(keeper.unseal(ticket, /*now_ms=*/5'000).is_ok());
  EXPECT_TRUE(keeper.unseal(ticket, 11'000).is_ok());
  EXPECT_FALSE(keeper.unseal(ticket, 11'001).is_ok());
}

// ---------------------------------------------------------------------------
// Bugfix 3: capacity 0 disables the cache outright, and eviction prefers an
// expired entry over the live LRU tail.

TEST(SessionCacheEviction, CapacityZeroNeverInserts) {
  SessionCache cache(0, 1000);
  cache.put(id_of(1), make_state(), 0);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.get(id_of(1), 0).has_value());
}

TEST(SessionCacheEviction, PrefersExpiredOverLruTail) {
  SessionCache cache(/*capacity=*/2, /*lifetime_ms=*/10);
  cache.put(id_of(1), make_state(), /*now_ms=*/0);  // A: expires after t=10
  cache.put(id_of(2), make_state(), 8);             // B: expires after t=18
  // Touch A so it is MRU and live B sits at the LRU tail.
  ASSERT_TRUE(cache.get(id_of(1), 9).has_value());
  // At t=12, A is expired. Inserting C at capacity must evict expired A,
  // not the live LRU-tail entry B (which pre-fix eviction removed).
  // Reclaiming the expired entry books as an EXPIRATION (PR 9 taxonomy),
  // not an eviction: no live entry was displaced.
  cache.put(id_of(3), make_state(), 12);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.expirations(), 1u);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_FALSE(cache.get(id_of(1), 12).has_value());
  EXPECT_TRUE(cache.get(id_of(2), 12).has_value());
  EXPECT_TRUE(cache.get(id_of(3), 12).has_value());
}

// ---------------------------------------------------------------------------
// Bugfix 4: unseal must verify EVERY PKCS7 pad byte and reject ciphertext
// that is not a whole number of AES blocks.

// Re-derive the keeper's enc/mac keys (the derivation is deterministic) so
// the test can forge tickets that pass the MAC with corrupted plaintext.
struct KeeperKeys {
  Bytes enc;
  Bytes mac;
  explicit KeeperKeys(BytesView seed) {
    const Bytes prk =
        hkdf_extract(HashAlg::kSha256, to_bytes("qtls-ticket-key"), seed);
    enc = hkdf_expand(HashAlg::kSha256, prk, to_bytes("enc"), 16);
    mac = hkdf_expand(HashAlg::kSha256, prk, to_bytes("mac"), 32);
  }
};

TEST(TicketPadding, RejectsCorruptInteriorPadBytes) {
  const Bytes seed = to_bytes("pad-test-seed");
  TicketKeeper keeper(seed, 3'600'000);
  KeeperKeys keys(seed);

  // Valid ticket body: suite(2) + created_at(8) + len(2) + secret(32) = 44
  // bytes, so PKCS7 pad is 4. Corrupt the two interior pad bytes while
  // keeping the final one: {4, 9, 9, 4} instead of {4, 4, 4, 4}.
  Bytes plain;
  append_u16(plain, static_cast<uint16_t>(
                        CipherSuite::kEcdheRsaWithAes128CbcSha));
  append_u64(plain, 1'000);
  Bytes secret(32, 0x5a);
  append_u16(plain, static_cast<uint16_t>(secret.size()));
  append(plain, secret);
  ASSERT_EQ(plain.size(), 44u);
  plain.insert(plain.end(), {4, 9, 9, 4});

  Bytes iv(16, 0x11);
  Aes aes(keys.enc);
  Bytes forged = iv;
  append(forged, aes_cbc_encrypt(aes, iv, plain));
  append(forged, hmac(HashAlg::kSha256, keys.mac, forged));

  // The MAC is genuine, so only full pad verification can catch this.
  // Pre-fix unseal checked plain.back() alone and ACCEPTED the ticket.
  auto result = keeper.unseal(forged, 2'000);
  EXPECT_FALSE(result.is_ok());

  // Control: the same forge with correct padding unseals fine.
  plain.resize(44);
  plain.insert(plain.end(), {4, 4, 4, 4});
  Bytes good = iv;
  append(good, aes_cbc_encrypt(aes, iv, plain));
  append(good, hmac(HashAlg::kSha256, keys.mac, good));
  EXPECT_TRUE(keeper.unseal(good, 2'000).is_ok());
}

TEST(TicketPadding, RejectsNonBlockAlignedCiphertext) {
  const Bytes seed = to_bytes("pad-test-seed");
  TicketKeeper keeper(seed, 3'600'000);
  KeeperKeys keys(seed);
  HmacDrbg rng(HashAlg::kSha256, to_bytes("iv-seed"));

  const Bytes ticket = keeper.seal(make_state(), 1'000, rng);
  // Chop 8 bytes off the ciphertext and re-MAC so the forgery reaches the
  // decrypt stage; the up-front block-size check must reject it.
  Bytes chopped(ticket.begin(), ticket.end() - 32 - 8);
  append(chopped, hmac(HashAlg::kSha256, keys.mac, chopped));
  EXPECT_FALSE(keeper.unseal(chopped, 2'000).is_ok());
}

// ---------------------------------------------------------------------------
// Sharded cache under concurrency: run under -DQTLS_SANITIZE=thread for the
// race check; the counter-conservation invariants hold either way.

TEST(ShardedSessionCache, ConcurrentCountersConserve) {
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4'000;
  constexpr uint32_t kKeySpace = 256;
  // TTL chosen so phase-2 ops (run at now=10'000) find every phase-1 entry
  // (created at now=1'000) expired: expirations then happen on BOTH the
  // get path and the insert path's expired-first probe, concurrently.
  ShardedSessionCache cache(16, /*capacity=*/128, /*lifetime_ms=*/2'000);

  std::vector<std::thread> threads;
  std::atomic<uint64_t> gets{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &gets, t] {
      uint64_t rng = 0x9e3779b9u * static_cast<uint64_t>(t + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
        const uint32_t key = static_cast<uint32_t>(rng >> 33) % kKeySpace;
        const uint64_t now_ms = i < kOpsPerThread / 2 ? 1'000 : 10'000;
        if ((rng & 3) == 0) {
          cache.put(id_of(key), make_state(), now_ms);
        } else {
          (void)cache.get(id_of(key), now_ms);
          gets.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  // Every get was either a hit or a miss — nothing lost across shards.
  EXPECT_EQ(cache.hits() + cache.misses(), gets.load());
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_GT(cache.misses(), 0u);
  // Capacity is honored (ceil(128/16) = 8 per shard, 16 shards).
  EXPECT_LE(cache.size(), 128u);
  // 256 keys into 128 slots must have evicted, and the TTL boundary must
  // have expired entries through both the get path and the insert probe.
  EXPECT_GT(cache.evictions(), 0u);
  EXPECT_GT(cache.expirations(), 0u);
  // The conservation invariant the eviction counters used to break: every
  // inserted entry is still live or was removed for exactly one booked
  // reason. Pre-fix, expired-first probe victims were booked as evictions
  // and get-path expiry removals were not booked at all, so this equality
  // failed whenever the cache ran at capacity across a TTL boundary.
  EXPECT_EQ(cache.inserts(),
            cache.size() + cache.evictions() + cache.expirations() +
                cache.removes());
}

// Deterministic single-shard repro of the insert-path accounting bug: fill
// past capacity, cross the TTL boundary, insert again. The expired-first
// probe reclaims expired entries — those are expirations, not evictions.
TEST(ShardedSessionCache, ExpiredProbeOnInsertBooksExpirationNotEviction) {
  SessionCache cache(/*capacity=*/4, /*lifetime_ms=*/1'000);
  for (uint32_t k = 0; k < 4; ++k)
    cache.put(id_of(k), make_state(), /*now_ms=*/0);
  EXPECT_EQ(cache.size(), 4u);

  // All four entries are now expired; each new insert's probe finds one.
  for (uint32_t k = 100; k < 104; ++k)
    cache.put(id_of(k), make_state(), /*now_ms=*/5'000);

  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.inserts(), 8u);
  EXPECT_EQ(cache.expirations(), 4u);  // pre-fix: booked as 4 evictions
  EXPECT_EQ(cache.evictions(), 0u);
  // A fifth insert at the same timestamp must displace a LIVE entry — a
  // genuine eviction.
  cache.put(id_of(200), make_state(), 5'000);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.inserts(),
            cache.size() + cache.evictions() + cache.expirations() +
                cache.removes());
}

// ---------------------------------------------------------------------------
// Ticket-key ring rotation matrix.

TEST(TicketKeyRing, RotationMatrix) {
  TicketKeyRing ring(to_bytes("ring-seed"), /*rotate_interval_ms=*/1000,
                     /*accept_epochs=*/1, /*lifetime_ms=*/3'600'000);
  HmacDrbg rng(HashAlg::kSha256, to_bytes("iv-seed"));
  const SessionState state = make_state();

  // Sealed in epoch 0; the ticket leads with epoch 0's key name.
  const Bytes ticket = ring.seal(state, /*now_ms=*/500, rng);
  ASSERT_GE(ticket.size(), TicketKeyRing::kKeyNameLen);
  EXPECT_TRUE(std::equal(ticket.begin(),
                         ticket.begin() + TicketKeyRing::kKeyNameLen,
                         ring.key_name(0).begin()));

  // Same epoch: accepted as current.
  auto same = ring.unseal(ticket, 999);
  ASSERT_TRUE(same.is_ok());
  EXPECT_EQ(same.value().epoch, 0u);
  EXPECT_TRUE(same.value().current);

  // One epoch later: still accepted (accept_epochs = 1) but flagged stale,
  // and a re-seal now uses epoch 1's key.
  auto old = ring.unseal(ticket, 1'500);
  ASSERT_TRUE(old.is_ok());
  EXPECT_EQ(old.value().epoch, 0u);
  EXPECT_FALSE(old.value().current);
  EXPECT_EQ(old.value().state.master_secret, state.master_secret);
  const Bytes resealed = ring.seal(old.value().state, 1'500, rng);
  EXPECT_TRUE(std::equal(resealed.begin(),
                         resealed.begin() + TicketKeyRing::kKeyNameLen,
                         ring.key_name(1).begin()));
  auto fresh = ring.unseal(resealed, 1'600);
  ASSERT_TRUE(fresh.is_ok());
  EXPECT_EQ(fresh.value().epoch, 1u);
  EXPECT_TRUE(fresh.value().current);

  // Two epochs later: outside the accept window.
  EXPECT_FALSE(ring.unseal(ticket, 2'500).is_ok());

  EXPECT_EQ(ring.unseal_ok(), 3u);
  EXPECT_EQ(ring.unseal_old_epoch(), 1u);
  EXPECT_EQ(ring.unseal_rejects(), 1u);
}

TEST(TicketKeyRing, ZeroIntervalDisablesRotationNotLifetime) {
  TicketKeyRing ring(to_bytes("ring-seed"), /*rotate_interval_ms=*/0,
                     /*accept_epochs=*/0, /*lifetime_ms=*/10'000);
  HmacDrbg rng(HashAlg::kSha256, to_bytes("iv-seed"));
  EXPECT_EQ(ring.epoch_at(0), 0u);
  EXPECT_EQ(ring.epoch_at(1ULL << 50), 0u);
  const Bytes ticket = ring.seal(make_state(), 0, rng);
  // No epoch ever rejects it, but the lifetime still does.
  EXPECT_TRUE(ring.unseal(ticket, 10'000).is_ok());
  EXPECT_FALSE(ring.unseal(ticket, 10'001).is_ok());
}

TEST(TicketKeyRing, EpochKeysDifferAndAreDeterministic) {
  TicketKeyRing a(to_bytes("ring-seed"), 1000, 1, 1000);
  TicketKeyRing b(to_bytes("ring-seed"), 1000, 1, 1000);
  TicketKeyRing c(to_bytes("other-seed"), 1000, 1, 1000);
  EXPECT_EQ(a.key_name(7), b.key_name(7));   // same seed: same ring
  EXPECT_NE(a.key_name(7), a.key_name(8));   // epochs are distinct
  EXPECT_NE(a.key_name(7), c.key_name(7));   // seeds are distinct
}

// ---------------------------------------------------------------------------
// End-to-end: a WorkerPool's shared plane resumes sessions across workers.

client::ClientStats drive_pool_clients(server::WorkerPool& pool,
                                       bool session_tickets, int clients,
                                       uint64_t requests_per_client) {
  engine::SoftwareProvider client_provider;
  TlsContextConfig ccfg;
  ccfg.cipher_suites = {CipherSuite::kEcdheRsaWithAes128CbcSha};
  TlsContext cctx(ccfg, &client_provider);

  client::Pool cpool;
  const uint16_t port = pool.port();
  for (int i = 0; i < clients; ++i) {
    client::ClientOptions copts;
    copts.full_handshake_ratio = 0.0;  // offer whenever a session exists
    copts.max_requests = requests_per_client;
    cpool.add(std::make_unique<client::HttpsClient>(
        &cctx,
        [port]() -> int {
          auto fd = net::tcp_connect(port);
          return fd.is_ok() ? fd.value() : -1;
        },
        copts, 5000 + static_cast<uint64_t>(i) +
                   (session_tickets ? 100'000 : 0)));
  }

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  bool all_done = false;
  while (!all_done && std::chrono::steady_clock::now() < deadline) {
    all_done = true;
    for (auto& c : cpool.clients()) {
      if (c->step()) all_done = false;
    }
  }
  EXPECT_TRUE(all_done) << "clients did not finish before the deadline";
  return cpool.aggregate();
}

void run_cross_worker(bool session_tickets) {
  qat::QatDevice device;
  server::WorkerPoolOptions options;
  options.workers = 4;
  options.tls_config.async_mode = true;
  options.tls_config.use_session_tickets = session_tickets;
  options.tls_config.cipher_suites = {
      CipherSuite::kEcdheRsaWithAes128CbcSha};

  server::WorkerPool pool(&device, &test_rsa2048(), options);
  ASSERT_TRUE(pool.start(0).is_ok());
  const client::ClientStats cstats =
      drive_pool_clients(pool, session_tickets, /*clients=*/12,
                         /*requests_per_client=*/5);
  pool.stop();

  EXPECT_EQ(cstats.errors, 0u);
  // Each client's first connection is full; every later one offers, and
  // with the pool-shared plane EVERY offer must land no matter which
  // SO_REUSEPORT worker accepted it.
  EXPECT_EQ(cstats.offered, 12u * 4u);
  EXPECT_EQ(cstats.resumed, cstats.offered);

  // The kernel spread 60 connections over the listeners, so more than one
  // worker must have handled handshakes (otherwise this test proves
  // nothing about CROSS-worker resumption).
  const server::WorkerPoolStats wstats = pool.stats();
  int workers_hit = 0;
  for (uint64_t h : wstats.per_worker_handshakes) {
    if (h > 0) ++workers_hit;
  }
  EXPECT_GE(workers_hit, 2);
  if (session_tickets) {
    EXPECT_GE(pool.session_plane().tickets().unseal_ok(), cstats.resumed);
  } else {
    EXPECT_GE(wstats.session_hits, cstats.resumed);
  }
}

TEST(CrossWorkerResumption, SessionIdCacheSharedAcrossWorkers) {
  run_cross_worker(/*session_tickets=*/false);
}

TEST(CrossWorkerResumption, TicketRingSharedAcrossWorkers) {
  run_cross_worker(/*session_tickets=*/true);
}

// ---------------------------------------------------------------------------
// Conf plumbing: the session_cache{} block shapes the plane.

TEST(SessionCacheConf, ParsesBlock) {
  const char* text = R"(
worker_processes 2;
session_cache {
    shards 8;
    capacity 512;
    lifetime_ms 60000;
    ticket_rotate_interval_ms 5000;
    ticket_accept_epochs 2;
}
)";
  auto settings = server::parse_ssl_engine_settings(text);
  ASSERT_TRUE(settings.is_ok()) << settings.status().message();
  EXPECT_EQ(settings.value().session.cache_shards, 8u);
  EXPECT_EQ(settings.value().session.cache_capacity, 512u);
  EXPECT_EQ(settings.value().session.lifetime_ms, 60'000u);
  EXPECT_EQ(settings.value().session.ticket_rotate_interval_ms, 5'000u);
  EXPECT_EQ(settings.value().session.ticket_accept_epochs, 2u);
}

TEST(SessionCacheConf, DefaultsWithoutBlockAndRejectsBadValues) {
  auto defaults = server::parse_ssl_engine_settings("worker_processes 1;");
  ASSERT_TRUE(defaults.is_ok());
  EXPECT_EQ(defaults.value().session.cache_shards, 16u);
  EXPECT_EQ(defaults.value().session.cache_capacity, 10'000u);

  EXPECT_FALSE(server::parse_ssl_engine_settings(
                   "session_cache { shards 0; }")
                   .is_ok());
  EXPECT_FALSE(server::parse_ssl_engine_settings(
                   "session_cache { lifetime_ms 0; }")
                   .is_ok());
  EXPECT_FALSE(server::parse_ssl_engine_settings(
                   "session_cache { ticket_accept_epochs 100; }")
                   .is_ok());
}

}  // namespace
}  // namespace qtls::tls
