// Wire-protocol unit tests for the remote-offload batch RPC (DESIGN.md
// §13): frame round trips, incremental reassembly at every split point,
// poison-on-malformed hardening, body codecs, and the server core's
// request handling (budget refusal, bad requests, compute parity with the
// local software provider). Select with `ctest -L remote`.
#include <gtest/gtest.h>

#include "engine/provider.h"
#include "remote/offload_server.h"
#include "remote/wire.h"

namespace qtls::remote {
namespace {

RemoteOpRequest prf_request(uint64_t id, uint32_t budget_us = 0) {
  RemoteOpRequest req;
  req.request_id = id;
  req.op = RemoteOp::kPrfTls12;
  req.budget_us = budget_us;
  req.body = encode_prf_tls12(HashAlg::kSha256, to_bytes("secret"), "label",
                              to_bytes("seed"), 32);
  return req;
}

// --- framing ---------------------------------------------------------------

TEST(WireFrame, RequestRoundTrip) {
  std::vector<RemoteOpRequest> ops = {prf_request(7, 1500), prf_request(8)};
  Bytes wire;
  encode_request_frame(42, ops, &wire);

  FrameDecoder dec;
  ASSERT_TRUE(dec.feed(wire).is_ok());
  Frame f;
  ASSERT_TRUE(dec.next(&f));
  EXPECT_EQ(f.type, FrameType::kBatchRequest);
  EXPECT_EQ(f.batch_id, 42u);
  ASSERT_EQ(f.requests.size(), 2u);
  EXPECT_EQ(f.requests[0].request_id, 7u);
  EXPECT_EQ(f.requests[0].budget_us, 1500u);
  EXPECT_EQ(f.requests[0].op, RemoteOp::kPrfTls12);
  EXPECT_EQ(f.requests[0].body, ops[0].body);
  EXPECT_EQ(f.requests[1].budget_us, 0u);
  EXPECT_FALSE(dec.next(&f));
  EXPECT_EQ(dec.frames_decoded(), 1u);
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(WireFrame, ResponseRoundTrip) {
  std::vector<RemoteOpResponse> ops(2);
  ops[0].request_id = 7;
  ops[0].status = RemoteStatus::kOk;
  ops[0].body = to_bytes("payload");
  ops[1].request_id = 8;
  ops[1].status = RemoteStatus::kBudgetExhausted;
  Bytes wire;
  encode_response_frame(42, ops, &wire);

  FrameDecoder dec;
  ASSERT_TRUE(dec.feed(wire).is_ok());
  Frame f;
  ASSERT_TRUE(dec.next(&f));
  EXPECT_EQ(f.type, FrameType::kBatchResponse);
  ASSERT_EQ(f.responses.size(), 2u);
  EXPECT_EQ(f.responses[0].status, RemoteStatus::kOk);
  EXPECT_EQ(to_string(f.responses[0].body), "payload");
  EXPECT_EQ(f.responses[1].status, RemoteStatus::kBudgetExhausted);
  EXPECT_TRUE(f.responses[1].body.empty());
}

TEST(WireFrame, ReassemblesAtEverySplitPoint) {
  std::vector<RemoteOpRequest> ops = {prf_request(1, 9), prf_request(2)};
  Bytes wire;
  encode_request_frame(5, ops, &wire);

  for (size_t split = 1; split < wire.size(); ++split) {
    FrameDecoder dec;
    ASSERT_TRUE(dec.feed(BytesView(wire.data(), split)).is_ok());
    Frame f;
    EXPECT_FALSE(dec.next(&f)) << "frame completed early at split " << split;
    ASSERT_TRUE(
        dec.feed(BytesView(wire.data() + split, wire.size() - split)).is_ok());
    ASSERT_TRUE(dec.next(&f)) << "no frame after full feed, split " << split;
    EXPECT_EQ(f.requests.size(), 2u);
  }
}

TEST(WireFrame, BackToBackFramesInOneFeed) {
  Bytes wire;
  std::vector<RemoteOpRequest> a = {prf_request(1)};
  std::vector<RemoteOpRequest> b = {prf_request(2), prf_request(3)};
  encode_request_frame(10, a, &wire);
  encode_request_frame(11, b, &wire);

  FrameDecoder dec;
  ASSERT_TRUE(dec.feed(wire).is_ok());
  Frame f;
  ASSERT_TRUE(dec.next(&f));
  EXPECT_EQ(f.batch_id, 10u);
  ASSERT_TRUE(dec.next(&f));
  EXPECT_EQ(f.batch_id, 11u);
  EXPECT_EQ(f.requests.size(), 2u);
  EXPECT_EQ(dec.frames_decoded(), 2u);
}

// --- hardening -------------------------------------------------------------

TEST(WireHardening, BadMagicPoisonsPermanently) {
  std::vector<RemoteOpRequest> ops = {prf_request(1)};
  Bytes wire;
  encode_request_frame(1, ops, &wire);
  wire[4] ^= 0xff;  // corrupt the magic inside the payload

  FrameDecoder dec;
  EXPECT_FALSE(dec.feed(wire).is_ok());
  EXPECT_TRUE(dec.poisoned());
  // Even a pristine frame is refused afterwards: no resync point exists.
  Bytes good;
  encode_request_frame(2, ops, &good);
  EXPECT_FALSE(dec.feed(good).is_ok());
  Frame f;
  EXPECT_FALSE(dec.next(&f));
}

TEST(WireHardening, OversizedFrameRefused) {
  Bytes wire;
  append_u32(wire, 1u << 20);  // claims 1 MiB against a 1 KiB bound
  FrameDecoder dec(/*max_frame=*/1024);
  EXPECT_FALSE(dec.feed(wire).is_ok());
  EXPECT_TRUE(dec.poisoned());
}

TEST(WireHardening, TruncatedOpListPoisons) {
  std::vector<RemoteOpRequest> ops = {prf_request(1)};
  Bytes wire;
  encode_request_frame(1, ops, &wire);
  // Shrink the payload length so the op list is cut mid-field; the inner
  // parse must fail rather than read out of bounds.
  Bytes cut(wire.begin(), wire.end() - 5);
  const uint32_t new_len = static_cast<uint32_t>(cut.size() - 4);
  cut[0] = static_cast<uint8_t>(new_len >> 24);
  cut[1] = static_cast<uint8_t>(new_len >> 16);
  cut[2] = static_cast<uint8_t>(new_len >> 8);
  cut[3] = static_cast<uint8_t>(new_len);
  FrameDecoder dec;
  EXPECT_FALSE(dec.feed(cut).is_ok());
  EXPECT_TRUE(dec.poisoned());
}

TEST(WireHardening, BadVersionAndBadOpRefused) {
  std::vector<RemoteOpRequest> ops = {prf_request(1)};
  {
    Bytes wire;
    encode_request_frame(1, ops, &wire);
    wire[5] = 99;  // version
    FrameDecoder dec;
    EXPECT_FALSE(dec.feed(wire).is_ok());
  }
  {
    RemoteOpRequest bad = prf_request(1);
    Bytes wire;
    encode_request_frame(1, std::vector<RemoteOpRequest>{bad}, &wire);
    // op byte sits after len(4) + magic/version/type(3) + batch(8) +
    // count(2) + request_id(8).
    wire[4 + 3 + 8 + 2 + 8] = 200;  // out of the RemoteOp range
    FrameDecoder dec;
    EXPECT_FALSE(dec.feed(wire).is_ok());
  }
}

// --- body codecs -----------------------------------------------------------

TEST(WireBody, KeyshareRoundTrip) {
  WireKeyShare in;
  in.curve = 23;
  in.priv = to_bytes("private-scalar");
  in.pub_point = to_bytes("\x04point");
  Bytes body;
  encode_keyshare_body(in, &body);
  auto out = decode_keyshare_body(body);
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(out.value().curve, 23);
  EXPECT_EQ(out.value().priv, in.priv);
  EXPECT_EQ(out.value().pub_point, in.pub_point);
  // Truncated body refused.
  EXPECT_FALSE(
      decode_keyshare_body(BytesView(body.data(), body.size() - 1)).is_ok());
}

TEST(WireBody, ErrorBodyReconstructsStatus) {
  Bytes body;
  encode_error_body(err(Code::kInvalidArgument, "bad point"), &body);
  const Status st = decode_error_body(body);
  EXPECT_EQ(st.code(), Code::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad point");
  // Degenerate bodies still yield an error, never ok.
  EXPECT_FALSE(decode_error_body(BytesView()).is_ok());
  Bytes ok_code = {0};  // a "kOk" error body is itself a protocol violation
  EXPECT_FALSE(decode_error_body(ok_code).is_ok());
}

// --- server core -----------------------------------------------------------

TEST(ServerCore, ExecutesPrfWithSoftwareParity) {
  OffloadServerCore core;
  Bytes wire;
  encode_request_frame(1, std::vector<RemoteOpRequest>{prf_request(9)},
                       &wire);
  ASSERT_TRUE(core.on_bytes(wire).is_ok());

  FrameDecoder dec;
  ASSERT_TRUE(dec.feed(core.output()).is_ok());
  Frame f;
  ASSERT_TRUE(dec.next(&f));
  EXPECT_EQ(f.type, FrameType::kBatchResponse);
  ASSERT_EQ(f.responses.size(), 1u);
  EXPECT_EQ(f.responses[0].request_id, 9u);
  EXPECT_EQ(f.responses[0].status, RemoteStatus::kOk);

  engine::SoftwareProvider sw;
  auto expect = sw.prf_tls12(HashAlg::kSha256, to_bytes("secret"), "label",
                             to_bytes("seed"), 32);
  ASSERT_TRUE(expect.is_ok());
  EXPECT_EQ(f.responses[0].body, expect.value());
  EXPECT_EQ(core.stats().ops_ok, 1u);
}

TEST(ServerCore, RefusesBudgetExhaustedWithoutExecuting) {
  OffloadServerCore core;
  core.set_queue_delay_ns(5'000'000);  // 5 ms modeled queueing
  Bytes wire;
  // 2 ms budget: refused. 0 budget: unbounded, executed.
  encode_request_frame(
      1,
      std::vector<RemoteOpRequest>{prf_request(1, 2'000), prf_request(2, 0)},
      &wire);
  ASSERT_TRUE(core.on_bytes(wire).is_ok());

  FrameDecoder dec;
  ASSERT_TRUE(dec.feed(core.output()).is_ok());
  Frame f;
  ASSERT_TRUE(dec.next(&f));
  ASSERT_EQ(f.responses.size(), 2u);
  EXPECT_EQ(f.responses[0].status, RemoteStatus::kBudgetExhausted);
  EXPECT_EQ(f.responses[1].status, RemoteStatus::kOk);
  EXPECT_EQ(core.stats().refused_expired, 1u);
  EXPECT_EQ(core.stats().ops_ok, 1u);
}

TEST(ServerCore, MalformedOpBodyIsBadRequestNotDeath) {
  OffloadServerCore core;
  RemoteOpRequest req;
  req.request_id = 3;
  req.op = RemoteOp::kPrfTls12;
  req.body = to_bytes("garbage");
  Bytes wire;
  encode_request_frame(1, std::vector<RemoteOpRequest>{req}, &wire);
  ASSERT_TRUE(core.on_bytes(wire).is_ok());  // stream stays healthy

  FrameDecoder dec;
  ASSERT_TRUE(dec.feed(core.output()).is_ok());
  Frame f;
  ASSERT_TRUE(dec.next(&f));
  ASSERT_EQ(f.responses.size(), 1u);
  EXPECT_EQ(f.responses[0].status, RemoteStatus::kBadRequest);
  EXPECT_EQ(core.stats().bad_requests, 1u);
}

TEST(ServerCore, ResponseFramePoisonsServerStream) {
  OffloadServerCore core;
  Bytes wire;
  encode_response_frame(1, std::vector<RemoteOpResponse>(1), &wire);
  EXPECT_FALSE(core.on_bytes(wire).is_ok());
}

TEST(ServerCore, SeededKeygenIsDeterministic) {
  OffloadServerCore a, b;
  RemoteOpRequest req;
  req.request_id = 1;
  req.op = RemoteOp::kEcdheKeygen;
  req.body = encode_ecdhe_keygen(CurveId::kP256, /*seed=*/0xfeed);
  Bytes wire;
  encode_request_frame(1, std::vector<RemoteOpRequest>{req}, &wire);
  ASSERT_TRUE(a.on_bytes(wire).is_ok());
  ASSERT_TRUE(b.on_bytes(wire).is_ok());
  // Same seed, different server instances: identical key share bytes.
  EXPECT_EQ(a.output(), b.output());

  FrameDecoder dec;
  ASSERT_TRUE(dec.feed(a.output()).is_ok());
  Frame f;
  ASSERT_TRUE(dec.next(&f));
  ASSERT_EQ(f.responses.size(), 1u);
  ASSERT_EQ(f.responses[0].status, RemoteStatus::kOk);
  auto share = decode_keyshare_body(f.responses[0].body);
  ASSERT_TRUE(share.is_ok());
  EXPECT_EQ(share.value().curve, 23);  // P-256
  EXPECT_FALSE(share.value().pub_point.empty());
}

}  // namespace
}  // namespace qtls::remote
