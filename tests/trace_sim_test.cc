// Virtual-time trace oracle (DESIGN.md §8): the sim backend stamps request
// lifecycles with the DES clock, so every per-stage latency recovered from
// the trace ring must equal the sim/costs.h model EXACTLY — no tolerance.
// Also proves fault-counter conservation: each injected FaultPlan decision
// shows up exactly once in the global registry's sim.qat.* counters.
#include <gtest/gtest.h>

#include "qat/fault.h"
#include "sim/qat_sim.h"

namespace qtls::sim {
namespace {

#if !QTLS_OBS_ENABLED

// Whole-tree -DQTLS_OBS=OFF build: tracing is compiled out, nothing to
// oracle against (tests/obs_noop_test.cc covers the disabled contract).
TEST(TraceSim, SkippedObservabilityBuiltOut) { SUCCEED(); }

#else

using obs::Stage;
using obs::TraceRecord;

uint64_t stage_ts(const TraceRecord& r, Stage s) {
  return r.ts[static_cast<size_t>(s)];
}

struct SimRig {
  Simulator sim;
  CostModel costs;
  SimQatDevice device;
  SimQatInstance* inst;

  explicit SimRig(int engines = 4, size_t ring = 4096)
      : device(&sim, &costs, /*endpoints=*/1, engines),
        inst(device.allocate_instance(ring)) {
    obs::set_trace_sample_period(1);
    obs::trace_ring_clear();
    obs::MetricsRegistry::global().reset();
  }
  ~SimRig() { obs::set_trace_sample_period(64); }
};

TEST(TraceSim, StageLatenciesMatchCostModelExactly) {
  SimRig rig;
  const SimTime service = rig.costs.qat_service(SOp::kRsaPriv);
  ASSERT_GT(service, 0u);

  // Advance the clock so stamps are nonzero (0 means "unstamped").
  const SimTime t0 = kMs;
  rig.sim.run_until(t0);

  bool done = false;
  ASSERT_TRUE(rig.inst->submit(SOp::kRsaPriv, [&] { done = true; }));
  const SimTime poll_time = t0 + service + 10 * kUs;
  rig.sim.run_until(poll_time);
  ASSERT_EQ(rig.inst->poll(), 1u);
  ASSERT_TRUE(done);

  const auto records = obs::trace_ring_snapshot();
  ASSERT_EQ(records.size(), 1u);
  const TraceRecord& r = records[0];
  EXPECT_TRUE(r.sim);
  EXPECT_EQ(r.op_class, static_cast<uint8_t>(qat::OpClass::kAsym));

  // Submitted onto an idle engine: submit == enqueue == claim ==
  // service-start, service-done == +the model's service time, drain == the
  // poll instant. Every delta is exact — no tolerance.
  EXPECT_EQ(stage_ts(r, Stage::kSubmit), t0);
  EXPECT_EQ(stage_ts(r, Stage::kRingEnqueue), t0);
  EXPECT_EQ(stage_ts(r, Stage::kEngineClaim), t0);
  EXPECT_EQ(stage_ts(r, Stage::kServiceStart), t0);
  EXPECT_EQ(stage_ts(r, Stage::kServiceDone), t0 + service);
  EXPECT_EQ(stage_ts(r, Stage::kPollDrain), poll_time);
  EXPECT_EQ(stage_ts(r, Stage::kServiceDone) -
                stage_ts(r, Stage::kServiceStart),
            service);
  EXPECT_EQ(stage_ts(r, Stage::kPollDrain) - stage_ts(r, Stage::kServiceDone),
            poll_time - (t0 + service));

  // The per-stage histograms saw exactly these deltas.
  const obs::MetricsSnapshot snap =
      obs::MetricsRegistry::global().snapshot();
  const LatencyHistogram* svc = snap.histogram("sim.qat.stage.service");
  ASSERT_NE(svc, nullptr);
  EXPECT_EQ(svc->count(), 1u);
  EXPECT_EQ(svc->max_nanos(), service);
  const LatencyHistogram* drain = snap.histogram("sim.qat.stage.drain");
  ASSERT_NE(drain, nullptr);
  EXPECT_EQ(drain->max_nanos(), poll_time - (t0 + service));
}

TEST(TraceSim, QueueDelayEqualsPredecessorServiceTime) {
  // One engine, two back-to-back submits: the second op's engine-claim is
  // exactly the first op's completion (the queueing delay is the model).
  SimRig rig(/*engines=*/1);
  const SimTime service = rig.costs.qat_service(SOp::kEcdhP256);
  const SimTime t0 = kMs;
  rig.sim.run_until(t0);

  ASSERT_TRUE(rig.inst->submit(SOp::kEcdhP256, [] {}));
  ASSERT_TRUE(rig.inst->submit(SOp::kEcdhP256, [] {}));
  rig.sim.run_until(t0 + 10 * service);
  EXPECT_EQ(rig.inst->poll(), 2u);

  const auto records = obs::trace_ring_snapshot();
  ASSERT_EQ(records.size(), 2u);
  const TraceRecord& second = records[1];
  EXPECT_EQ(stage_ts(second, Stage::kSubmit), t0);
  EXPECT_EQ(stage_ts(second, Stage::kEngineClaim), t0 + service);
  EXPECT_EQ(stage_ts(second, Stage::kEngineClaim) -
                stage_ts(second, Stage::kRingEnqueue),
            service);
  EXPECT_EQ(stage_ts(second, Stage::kServiceDone), t0 + 2 * service);

  // The per-stage histograms in the global registry saw both requests.
  const obs::MetricsSnapshot snap =
      obs::MetricsRegistry::global().snapshot();
  const LatencyHistogram* queue = snap.histogram("sim.qat.stage.queue");
  const LatencyHistogram* svc = snap.histogram("sim.qat.stage.service");
  ASSERT_NE(queue, nullptr);
  ASSERT_NE(svc, nullptr);
  EXPECT_EQ(queue->count(), 2u);
  EXPECT_EQ(svc->count(), 2u);
  EXPECT_EQ(svc->max_nanos(), service);
  EXPECT_EQ(queue->max_nanos(), service);  // second op queued one service
  EXPECT_EQ(snap.counter_value("sim.qat.op.asym.completed"), 2u);
}

TEST(TraceSim, PerClassHistogramsSeparateAsymFromSym) {
  SimRig rig;
  rig.sim.run_until(kMs);
  ASSERT_TRUE(rig.inst->submit(SOp::kRsaPriv, [] {}));
  ASSERT_TRUE(rig.inst->submit(SOp::kCipher16k, [] {}));
  ASSERT_TRUE(rig.inst->submit(SOp::kPrf, [] {}));
  rig.sim.run_until(10 * kMs);
  EXPECT_EQ(rig.inst->poll(), 3u);

  const obs::MetricsSnapshot snap =
      obs::MetricsRegistry::global().snapshot();
  EXPECT_EQ(snap.counter_value("sim.qat.op.asym.completed"), 1u);
  EXPECT_EQ(snap.counter_value("sim.qat.op.cipher.completed"), 1u);
  EXPECT_EQ(snap.counter_value("sim.qat.op.prf.completed"), 1u);
  ASSERT_NE(snap.histogram("sim.qat.op.asym.total_ns"), nullptr);
  EXPECT_EQ(snap.histogram("sim.qat.op.asym.total_ns")->count(), 1u);
}

TEST(TraceSim, FaultCountersConserveAgainstPlan) {
  SimRig rig(/*engines=*/8);
  qat::FaultPlan plan(/*seed=*/0xfeedULL);
  qat::FaultRates rates;
  rates.error_rate = 0.05;
  rates.drop_rate = 0.03;
  rates.stall_rate = 0.02;
  rates.stall_ns = 10 * kUs;
  plan.set_rates_all(rates);
  rig.device.set_fault_plan(&plan);

  constexpr int kOps = 1500;
  const SOp kinds[] = {SOp::kRsaPriv, SOp::kEcdhP256, SOp::kPrf,
                       SOp::kCipher16k};
  uint64_t cb_errors = 0, cb_ok = 0, delivered = 0;
  for (int i = 0; i < kOps; ++i) {
    ASSERT_TRUE(rig.inst->submit_with_status(
        kinds[i % 4], rig.costs.qat_service(kinds[i % 4]),
        [&](qat::CryptoStatus st) {
          ++delivered;
          if (st == qat::CryptoStatus::kDeviceError)
            ++cb_errors;
          else if (st == qat::CryptoStatus::kSuccess)
            ++cb_ok;
        }));
  }
  rig.sim.run_until(kSec);
  rig.inst->poll();

  // A reset window: every op dispatched while open fails with kDeviceReset.
  plan.trigger_reset();
  constexpr int kResetOps = 7;
  uint64_t cb_resets = 0;
  for (int i = 0; i < kResetOps; ++i) {
    ASSERT_TRUE(rig.inst->submit_with_status(
        SOp::kRsaPriv, rig.costs.qat_service(SOp::kRsaPriv),
        [&](qat::CryptoStatus st) {
          if (st == qat::CryptoStatus::kDeviceReset) ++cb_resets;
        }));
  }
  plan.clear_reset();
  rig.sim.run_until(2 * kSec);
  rig.inst->poll();

  const qat::FaultCounters& fc = plan.counters();
  const obs::MetricsSnapshot snap =
      obs::MetricsRegistry::global().snapshot();

  // Conservation: every service-point decision appears exactly once in the
  // registry; nothing double-counted, nothing lost.
  EXPECT_EQ(snap.counter_value("sim.qat.submitted"),
            static_cast<uint64_t>(kOps + kResetOps));
  EXPECT_EQ(fc.decisions.load(), static_cast<uint64_t>(kOps + kResetOps));
  EXPECT_EQ(snap.counter_value("sim.qat.error"), fc.injected_errors.load());
  EXPECT_EQ(snap.counter_value("sim.qat.drop"), fc.injected_drops.load());
  EXPECT_EQ(snap.counter_value("sim.qat.stall"), fc.injected_stalls.load());
  EXPECT_EQ(snap.counter_value("sim.qat.reset"), fc.reset_failures.load());
  EXPECT_EQ(fc.reset_failures.load(), static_cast<uint64_t>(kResetOps));
  EXPECT_GT(fc.injected_errors.load(), 0u);
  EXPECT_GT(fc.injected_drops.load(), 0u);
  EXPECT_GT(fc.injected_stalls.load(), 0u);

  // Delivery-side conservation: dropped responses are never polled, every
  // other submission is delivered exactly once with its injected status.
  EXPECT_EQ(cb_errors, fc.injected_errors.load());
  EXPECT_EQ(cb_resets, fc.reset_failures.load());
  EXPECT_EQ(rig.inst->dropped_responses(), fc.injected_drops.load());
  EXPECT_EQ(delivered, kOps - fc.injected_drops.load());
  EXPECT_EQ(cb_ok,
            kOps - fc.injected_errors.load() - fc.injected_drops.load());
  EXPECT_EQ(rig.inst->inflight_total(), 0u);
}

#endif  // QTLS_OBS_ENABLED

}  // namespace
}  // namespace qtls::sim
