#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "qat/device.h"
#include "qat/service_time.h"

namespace qtls::qat {
namespace {

DeviceConfig small_config() {
  DeviceConfig cfg;
  cfg.num_endpoints = 1;
  cfg.engines_per_endpoint = 4;
  cfg.ring_capacity = 16;
  return cfg;
}

CryptoRequest simple_request(uint64_t id, OpKind kind,
                             std::atomic<int>* computed,
                             std::atomic<int>* responded) {
  CryptoRequest req;
  req.request_id = id;
  req.kind = kind;
  req.compute = [computed] {
    computed->fetch_add(1);
    return true;
  };
  req.on_response = [responded](const CryptoResponse& r) {
    EXPECT_TRUE(r.success);
    responded->fetch_add(1);
  };
  return req;
}

void poll_until(CryptoInstance* inst, std::atomic<int>* responded, int want) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (responded->load() < want &&
         std::chrono::steady_clock::now() < deadline) {
    inst->poll();
    std::this_thread::yield();
  }
}

TEST(QatDevice, SubmitPollRoundTrip) {
  QatDevice device(small_config());
  CryptoInstance* inst = device.allocate_instance();
  ASSERT_NE(inst, nullptr);

  std::atomic<int> computed{0}, responded{0};
  EXPECT_TRUE(inst->submit(simple_request(1, OpKind::kPrfTls12, &computed,
                                          &responded)));
  poll_until(inst, &responded, 1);
  EXPECT_EQ(computed.load(), 1);
  EXPECT_EQ(responded.load(), 1);
  EXPECT_EQ(inst->inflight(), 0u);
}

TEST(QatDevice, InflightTracksOutstanding) {
  QatDevice device(small_config());
  CryptoInstance* inst = device.allocate_instance();
  std::atomic<int> computed{0}, responded{0};
  for (uint64_t i = 0; i < 8; ++i)
    ASSERT_TRUE(inst->submit(
        simple_request(i, OpKind::kPrfTls12, &computed, &responded)));
  EXPECT_GE(inst->inflight(), 1u);  // some may already be serviced, none polled
  poll_until(inst, &responded, 8);
  EXPECT_EQ(inst->inflight(), 0u);
  EXPECT_EQ(computed.load(), 8);
}

TEST(QatDevice, RingFullRejectsSubmit) {
  DeviceConfig cfg = small_config();
  cfg.engines_per_endpoint = 1;
  cfg.ring_capacity = 4;
  // Block the single engine with a slow request so the ring backs up.
  QatDevice device(cfg);
  CryptoInstance* inst = device.allocate_instance();
  std::atomic<bool> release{false};
  std::atomic<int> responded{0};
  CryptoRequest blocker;
  blocker.kind = OpKind::kRsa2048Priv;
  blocker.compute = [&release] {
    while (!release.load()) std::this_thread::yield();
    return true;
  };
  blocker.on_response = [&responded](const CryptoResponse&) {
    responded.fetch_add(1);
  };
  ASSERT_TRUE(inst->submit(blocker));
  // Wait for the engine to take the blocker off the ring.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  std::atomic<int> computed{0};
  int accepted = 0;
  for (uint64_t i = 0; i < 64; ++i) {
    if (inst->submit(
            simple_request(i, OpKind::kPrfTls12, &computed, &responded)))
      ++accepted;
  }
  // The ring holds only `ring_capacity` requests; submissions beyond that
  // must fail — this is the §3.2 retry path trigger.
  EXPECT_LE(accepted, static_cast<int>(cfg.ring_capacity));
  EXPECT_LT(accepted, 64);

  release.store(true);
  poll_until(inst, &responded, accepted + 1);
  EXPECT_EQ(responded.load(), accepted + 1);
}

TEST(QatDevice, ParallelServiceAcrossEngines) {
  // With 4 engines, 4 concurrent slow requests from ONE instance must
  // overlap: total wall time ~1x service, not 4x (paper §2.3 parallelism).
  DeviceConfig cfg = small_config();
  QatDevice device(cfg);
  CryptoInstance* inst = device.allocate_instance();

  std::atomic<int> active{0}, peak{0}, responded{0};
  auto slow = [&](uint64_t id) {
    CryptoRequest req;
    req.request_id = id;
    req.kind = OpKind::kRsa2048Priv;
    req.compute = [&] {
      const int now = active.fetch_add(1) + 1;
      int prev = peak.load();
      while (prev < now && !peak.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      active.fetch_sub(1);
      return true;
    };
    req.on_response = [&](const CryptoResponse&) { responded.fetch_add(1); };
    return req;
  };
  for (uint64_t i = 0; i < 4; ++i) ASSERT_TRUE(inst->submit(slow(i)));
  poll_until(inst, &responded, 4);
  EXPECT_GE(peak.load(), 2) << "engines did not serve concurrently";
}

TEST(QatDevice, FwCountersPerClass) {
  QatDevice device(small_config());
  CryptoInstance* inst = device.allocate_instance();
  std::atomic<int> computed{0}, responded{0};
  ASSERT_TRUE(inst->submit(
      simple_request(1, OpKind::kRsa2048Priv, &computed, &responded)));
  ASSERT_TRUE(inst->submit(
      simple_request(2, OpKind::kPrfTls12, &computed, &responded)));
  ASSERT_TRUE(inst->submit(
      simple_request(3, OpKind::kCipher16k, &computed, &responded)));
  poll_until(inst, &responded, 3);

  const FwCounters c = device.fw_counters();
  EXPECT_EQ(c.requests[static_cast<int>(OpClass::kAsym)], 1u);
  EXPECT_EQ(c.requests[static_cast<int>(OpClass::kPrf)], 1u);
  EXPECT_EQ(c.requests[static_cast<int>(OpClass::kCipher)], 1u);
  EXPECT_EQ(c.total_requests(), 3u);
  EXPECT_EQ(c.responses[static_cast<int>(OpClass::kAsym)], 1u);
  EXPECT_NE(c.to_string().find("asym"), std::string::npos);
}

TEST(QatDevice, InstanceAllocationLimit) {
  DeviceConfig cfg = small_config();
  cfg.max_instances_per_endpoint = 2;
  cfg.num_endpoints = 2;
  QatDevice device(cfg);
  // 2 endpoints x 2 instances = 4 allocations, then exhaustion.
  for (int i = 0; i < 4; ++i) EXPECT_NE(device.allocate_instance(), nullptr);
  EXPECT_EQ(device.allocate_instance(), nullptr);
}

TEST(QatDevice, InstancesDistributedAcrossEndpoints) {
  DeviceConfig cfg = small_config();
  cfg.num_endpoints = 3;
  QatDevice device(cfg);
  CryptoInstance* a = device.allocate_instance();
  CryptoInstance* b = device.allocate_instance();
  CryptoInstance* c = device.allocate_instance();
  // Even distribution (§5.1): three instances land on three endpoints.
  EXPECT_NE(a->endpoint(), b->endpoint());
  EXPECT_NE(b->endpoint(), c->endpoint());
  EXPECT_NE(a->endpoint(), c->endpoint());
}

TEST(QatDevice, FailedComputeReportsFailure) {
  QatDevice device(small_config());
  CryptoInstance* inst = device.allocate_instance();
  std::atomic<int> responded{0};
  std::atomic<bool> success{true};
  CryptoRequest req;
  req.kind = OpKind::kPrfTls12;
  req.compute = [] { return false; };
  req.on_response = [&](const CryptoResponse& r) {
    success.store(r.success);
    responded.fetch_add(1);
  };
  ASSERT_TRUE(inst->submit(req));
  poll_until(inst, &responded, 1);
  EXPECT_FALSE(success.load());
}

TEST(QatDevice, PollMaxLimitsBatch) {
  QatDevice device(small_config());
  CryptoInstance* inst = device.allocate_instance();
  std::atomic<int> computed{0}, responded{0};
  for (uint64_t i = 0; i < 6; ++i)
    ASSERT_TRUE(inst->submit(
        simple_request(i, OpKind::kPrfTls12, &computed, &responded)));
  // Wait until all are computed and queued.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (computed.load() < 6 && std::chrono::steady_clock::now() < deadline)
    std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(inst->poll(2), 2u);
  EXPECT_EQ(responded.load(), 2);
  EXPECT_EQ(inst->poll(), 4u);
  EXPECT_EQ(responded.load(), 6);
}

TEST(ServiceTime, ModelOrdering) {
  const ServiceTimeModel model;
  // Asymmetric ops dominate; P-384 costs more than P-256; symmetric ops are
  // orders of magnitude cheaper — the premises behind the heuristic polling
  // thresholds.
  EXPECT_GT(model.service_ns(OpKind::kRsa2048Priv),
            10 * model.service_ns(OpKind::kPrfTls12));
  EXPECT_GT(model.service_ns(OpKind::kEcP384),
            model.service_ns(OpKind::kEcP256));
  EXPECT_GT(model.service_ns(OpKind::kRsa2048Priv),
            model.service_ns(OpKind::kCipher16k));
}

TEST(ServiceTime, CardLimitAnchors) {
  // 36 engines / 360us = 100K RSA/s (Fig. 7a plateau);
  // 36 / (360us + 2*270us) = 40K ECDHE-RSA handshakes/s (Fig. 7b plateau).
  const ServiceTimeModel model;
  const double engines = 36.0;
  const double rsa_cps = engines / (model.rsa2048_priv_ns * 1e-9);
  EXPECT_NEAR(rsa_cps, 100e3, 5e3);
  const double ecdhe_cps =
      engines /
      ((model.rsa2048_priv_ns + 2.0 * model.ec_p256_ns) * 1e-9);
  EXPECT_NEAR(ecdhe_cps, 40e3, 2e3);
}

TEST(OpClass, MappingMatchesPaper) {
  EXPECT_EQ(op_class_of(OpKind::kRsa2048Priv), OpClass::kAsym);
  EXPECT_EQ(op_class_of(OpKind::kEcP256), OpClass::kAsym);
  EXPECT_EQ(op_class_of(OpKind::kEcBinary409), OpClass::kAsym);
  EXPECT_EQ(op_class_of(OpKind::kPrfTls12), OpClass::kPrf);
  EXPECT_EQ(op_class_of(OpKind::kHkdf), OpClass::kPrf);
  EXPECT_EQ(op_class_of(OpKind::kCipher16k), OpClass::kCipher);
}

}  // namespace
}  // namespace qtls::qat
