#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/gcm.h"

namespace qtls {
namespace {

// NIST SP 800-38D / McGrew-Viega test case 1: empty plaintext, empty AAD.
TEST(Gcm, NistTestCase1) {
  const Bytes key(16, 0x00);
  const Bytes iv(12, 0x00);
  const Bytes sealed = gcm_seal(key, iv, {}, {});
  ASSERT_EQ(sealed.size(), kGcmTagSize);
  EXPECT_EQ(to_hex(sealed), "58e2fccefa7e3061367f1d57a4e7455a");
}

// Test case 2: one zero block.
TEST(Gcm, NistTestCase2) {
  const Bytes key(16, 0x00);
  const Bytes iv(12, 0x00);
  const Bytes pt(16, 0x00);
  const Bytes sealed = gcm_seal(key, iv, {}, pt);
  ASSERT_EQ(sealed.size(), 32u);
  EXPECT_EQ(to_hex(BytesView(sealed.data(), 16)),
            "0388dace60b6a392f328c2b971b2fe78");
  EXPECT_EQ(to_hex(BytesView(sealed.data() + 16, 16)),
            "ab6e47d42cec13bdf53a67b21257bddf");
}

TEST(Gcm, RoundTripVariousSizes) {
  Rng rng(0x6763);
  const Bytes key = rng.bytes(16);
  for (size_t len : {0u, 1u, 15u, 16u, 17u, 100u, 1000u, 16384u}) {
    const Bytes nonce = rng.bytes(kGcmNonceSize);
    const Bytes aad = rng.bytes(13);
    const Bytes pt = rng.bytes(len);
    const Bytes sealed = gcm_seal(key, nonce, aad, pt);
    EXPECT_EQ(sealed.size(), len + kGcmTagSize);
    auto opened = gcm_open(key, nonce, aad, sealed);
    ASSERT_TRUE(opened.is_ok()) << "len=" << len;
    EXPECT_EQ(opened.value(), pt) << "len=" << len;
  }
}

TEST(Gcm, Aes256KeysWork) {
  Rng rng(0x6764);
  const Bytes key = rng.bytes(32);
  const Bytes nonce = rng.bytes(kGcmNonceSize);
  const Bytes pt = rng.bytes(64);
  auto opened = gcm_open(key, nonce, {}, gcm_seal(key, nonce, {}, pt));
  ASSERT_TRUE(opened.is_ok());
  EXPECT_EQ(opened.value(), pt);
}

TEST(Gcm, TamperDetection) {
  Rng rng(0x6765);
  const Bytes key = rng.bytes(16);
  const Bytes nonce = rng.bytes(kGcmNonceSize);
  const Bytes aad = to_bytes("header");
  const Bytes pt = rng.bytes(48);
  const Bytes sealed = gcm_seal(key, nonce, aad, pt);

  // Flip a ciphertext byte.
  Bytes bad = sealed;
  bad[5] ^= 0x01;
  EXPECT_FALSE(gcm_open(key, nonce, aad, bad).is_ok());
  // Flip a tag byte.
  bad = sealed;
  bad[bad.size() - 1] ^= 0x01;
  EXPECT_FALSE(gcm_open(key, nonce, aad, bad).is_ok());
  // Wrong AAD.
  EXPECT_FALSE(gcm_open(key, nonce, to_bytes("headex"), sealed).is_ok());
  // Wrong nonce.
  Bytes other_nonce = nonce;
  other_nonce[0] ^= 1;
  EXPECT_FALSE(gcm_open(key, other_nonce, aad, sealed).is_ok());
  // Truncated input.
  EXPECT_FALSE(gcm_open(key, nonce, aad, BytesView(sealed.data(), 8)).is_ok());
}

TEST(Gcm, DistinctNoncesDistinctCiphertexts) {
  const Bytes key(16, 0x11);
  const Bytes pt(32, 0x22);
  Bytes n1(12, 0x00), n2(12, 0x00);
  n2[11] = 1;
  EXPECT_NE(gcm_seal(key, n1, {}, pt), gcm_seal(key, n2, {}, pt));
}

TEST(Gcm, AadAuthenticatedButNotEncrypted) {
  // Same plaintext, different AAD: ciphertext bytes equal, tags differ.
  const Bytes key(16, 0x31);
  const Bytes nonce(12, 0x32);
  const Bytes pt(40, 0x33);
  const Bytes s1 = gcm_seal(key, nonce, to_bytes("a"), pt);
  const Bytes s2 = gcm_seal(key, nonce, to_bytes("b"), pt);
  EXPECT_EQ(Bytes(s1.begin(), s1.end() - 16), Bytes(s2.begin(), s2.end() - 16));
  EXPECT_NE(Bytes(s1.end() - 16, s1.end()), Bytes(s2.end() - 16, s2.end()));
}

}  // namespace
}  // namespace qtls
