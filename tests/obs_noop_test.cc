// Compiled-out observability regression: this translation unit is built with
// -DQTLS_OBS_ENABLED=0 (see tests/CMakeLists.txt) while linking the enabled
// qtls_obs library, proving the disabled header-only mirror coexists with an
// enabled build (distinct inline namespaces, shared snapshot layout) and that
// every call site degrades to a no-op rather than a link error.
#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace qtls::obs {
namespace {

static_assert(!QTLS_OBS_ENABLED,
              "obs_noop_test must be compiled with QTLS_OBS_ENABLED=0");

TEST(ObsDisabled, RegistryIsAnEmptyStub) {
  MetricsRegistry& reg = MetricsRegistry::global();
  Counter c = reg.counter("requests");
  Gauge g = reg.gauge("depth");
  Histogram h = reg.histogram("latency");

  c.add(100);
  c.inc();
  g.set(42);
  g.add(-1);
  h.record(12345);

  EXPECT_EQ(reg.num_counters(), 0u);
  EXPECT_EQ(reg.num_gauges(), 0u);
  EXPECT_EQ(reg.num_histograms(), 0u);
  EXPECT_EQ(reg.num_shards(), 0u);

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
  EXPECT_EQ(snap.counter_value("requests"), 0u);
  EXPECT_EQ(snap.histogram("latency"), nullptr);
  reg.reset();
}

TEST(ObsDisabled, SnapshotFormattersStillLink) {
  // The snapshot type and its formatters are compiled unconditionally into
  // qtls_obs so mixed-mode programs can still serialize (empty) snapshots.
  const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_TRUE(snap.to_text().empty());  // no metrics -> no lines
}

TEST(ObsDisabled, TracingNeverSamples) {
  set_trace_sample_period(1);  // no-op: cannot enable tracing when built out
  EXPECT_EQ(trace_sample_period(), 0u);

  TraceStamps t;
  trace_begin(t);
  EXPECT_FALSE(t.sampled);
  trace_begin_at(t, 1000);
  EXPECT_FALSE(t.sampled);

  // Stamps on an unsampled request are dropped (shared TraceStamps layout,
  // same behavior in both modes).
  stamp_now(t, Stage::kRingEnqueue);
  t.stamp_at(Stage::kServiceStart, 2000);
  EXPECT_EQ(t[Stage::kRingEnqueue], 0u);
  EXPECT_EQ(t[Stage::kServiceStart], 0u);

  record_pipeline(t, /*request_id=*/1, /*op_class_idx=*/0, /*sim=*/false);
  EXPECT_TRUE(trace_ring_snapshot().empty());
  trace_ring_clear();
}

TEST(ObsDisabled, StageNamesRemainAvailable) {
  // stage_name() is shared metadata (compiled unconditionally) so log lines
  // and tooling keep working regardless of build mode.
  EXPECT_STREQ(stage_name(Stage::kSubmit), "submit");
  EXPECT_STREQ(stage_name(Stage::kPollDrain), "poll_drain");
}

}  // namespace
}  // namespace qtls::obs
