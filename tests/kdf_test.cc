#include <gtest/gtest.h>

#include "crypto/kdf.h"

namespace qtls {
namespace {

TEST(Tls12Prf, DeterministicAndLabelSensitive) {
  const Bytes secret = to_bytes("top secret");
  const Bytes seed = to_bytes("client random server random");
  const Bytes a = tls12_prf(HashAlg::kSha256, secret, "master secret", seed, 48);
  const Bytes b = tls12_prf(HashAlg::kSha256, secret, "master secret", seed, 48);
  const Bytes c = tls12_prf(HashAlg::kSha256, secret, "key expansion", seed, 48);
  EXPECT_EQ(a.size(), 48u);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Tls12Prf, PrefixConsistency) {
  // Requesting a shorter output must be a prefix of the longer one.
  const Bytes secret = to_bytes("s");
  const Bytes seed = to_bytes("seed");
  const Bytes long_out = tls12_prf(HashAlg::kSha256, secret, "test", seed, 100);
  const Bytes short_out = tls12_prf(HashAlg::kSha256, secret, "test", seed, 33);
  EXPECT_EQ(Bytes(long_out.begin(), long_out.begin() + 33), short_out);
}

TEST(Tls12Prf, Sha384Variant) {
  const Bytes out =
      tls12_prf(HashAlg::kSha384, to_bytes("k"), "label", to_bytes("seed"), 64);
  EXPECT_EQ(out.size(), 64u);
  EXPECT_NE(out, tls12_prf(HashAlg::kSha256, to_bytes("k"), "label",
                           to_bytes("seed"), 64));
}

TEST(Hkdf, Rfc5869TestCase1) {
  const Bytes ikm(22, 0x0b);
  const Bytes salt = from_hex("000102030405060708090a0b0c");
  const Bytes info = from_hex("f0f1f2f3f4f5f6f7f8f9");
  const Bytes prk = hkdf_extract(HashAlg::kSha256, salt, ikm);
  EXPECT_EQ(to_hex(prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");
  const Bytes okm = hkdf_expand(HashAlg::kSha256, prk, info, 42);
  EXPECT_EQ(to_hex(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, EmptySaltUsesZeros) {
  const Bytes ikm(22, 0x0b);
  const Bytes zeros(32, 0x00);
  EXPECT_EQ(hkdf_extract(HashAlg::kSha256, {}, ikm),
            hkdf_extract(HashAlg::kSha256, zeros, ikm));
}

TEST(Hkdf, ExpandLengths) {
  const Bytes prk = hkdf_extract(HashAlg::kSha256, to_bytes("salt"),
                                 to_bytes("ikm"));
  for (size_t len : {1u, 31u, 32u, 33u, 64u, 255u}) {
    EXPECT_EQ(hkdf_expand(HashAlg::kSha256, prk, to_bytes("i"), len).size(),
              len);
  }
}

TEST(HkdfExpandLabel, IncludesLabelAndContext) {
  const Bytes secret(32, 0x5a);
  const Bytes a = hkdf_expand_label(HashAlg::kSha256, secret, "key", {}, 16);
  const Bytes b = hkdf_expand_label(HashAlg::kSha256, secret, "iv", {}, 16);
  const Bytes c =
      hkdf_expand_label(HashAlg::kSha256, secret, "key", to_bytes("ctx"), 16);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.size(), 16u);
}

TEST(Tls13DeriveSecret, DigestLength) {
  const Bytes secret(32, 0x01);
  const Bytes transcript = sha256(to_bytes("messages"));
  const Bytes out =
      tls13_derive_secret(HashAlg::kSha256, secret, "c hs traffic", transcript);
  EXPECT_EQ(out.size(), 32u);
}

TEST(HmacDrbg, DeterministicFromSeed) {
  HmacDrbg a(HashAlg::kSha256, to_bytes("seed-1"));
  HmacDrbg b(HashAlg::kSha256, to_bytes("seed-1"));
  HmacDrbg c(HashAlg::kSha256, to_bytes("seed-2"));
  EXPECT_EQ(a.generate(64), b.generate(64));
  EXPECT_NE(a.generate(64), c.generate(64));
}

TEST(HmacDrbg, OutputAdvances) {
  HmacDrbg rng(HashAlg::kSha256, to_bytes("seed"));
  const Bytes first = rng.generate(32);
  const Bytes second = rng.generate(32);
  EXPECT_NE(first, second);
}

TEST(HmacDrbg, ReseedChangesStream) {
  HmacDrbg a(HashAlg::kSha256, to_bytes("seed"));
  HmacDrbg b(HashAlg::kSha256, to_bytes("seed"));
  (void)a.generate(16);
  (void)b.generate(16);
  b.reseed(to_bytes("extra entropy"));
  EXPECT_NE(a.generate(32), b.generate(32));
}

TEST(HmacDrbg, OddSizes) {
  HmacDrbg rng(HashAlg::kSha256, to_bytes("seed"));
  EXPECT_EQ(rng.generate(1).size(), 1u);
  EXPECT_EQ(rng.generate(33).size(), 33u);
  EXPECT_EQ(rng.generate(100).size(), 100u);
}

}  // namespace
}  // namespace qtls
