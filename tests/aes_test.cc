#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/aes.h"

namespace qtls {
namespace {

TEST(Aes, Fips197Aes128Vector) {
  const Bytes key = from_hex("000102030405060708090a0b0c0d0e0f");
  const Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  Aes aes(key);
  uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct);
  EXPECT_EQ(to_hex(BytesView(ct, 16)), "69c4e0d86a7b0430d8cdb78070b4c55a");
  uint8_t back[16];
  aes.decrypt_block(ct, back);
  EXPECT_EQ(to_hex(BytesView(back, 16)), to_hex(pt));
}

TEST(Aes, Fips197Aes256Vector) {
  const Bytes key =
      from_hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  Aes aes(key);
  uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct);
  EXPECT_EQ(to_hex(BytesView(ct, 16)), "8ea2b7ca516745bfeafc49904b496089");
}

TEST(Aes, RejectsBadKeySize) {
  EXPECT_THROW(Aes(Bytes(10, 0)), std::invalid_argument);
  EXPECT_THROW(Aes(Bytes(24, 0)), std::invalid_argument);
}

TEST(Aes, EncryptDecryptRandomRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const Bytes key = rng.bytes(i % 2 ? 16 : 32);
    const Bytes pt = rng.bytes(16);
    Aes aes(key);
    uint8_t ct[16], back[16];
    aes.encrypt_block(pt.data(), ct);
    aes.decrypt_block(ct, back);
    EXPECT_EQ(Bytes(back, back + 16), pt);
  }
}

TEST(AesCbc, RoundTrip) {
  Rng rng(2);
  const Bytes key = rng.bytes(16);
  const Bytes iv = rng.bytes(16);
  const Bytes pt = rng.bytes(160);
  Aes aes(key);
  const Bytes ct = aes_cbc_encrypt(aes, iv, pt);
  EXPECT_EQ(ct.size(), pt.size());
  EXPECT_NE(ct, pt);
  auto back = aes_cbc_decrypt(aes, iv, ct);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), pt);
}

TEST(AesCbc, ChainingPropagates) {
  // Same plaintext blocks must produce different ciphertext blocks.
  Rng rng(3);
  const Bytes key = rng.bytes(16);
  const Bytes iv = rng.bytes(16);
  Bytes pt(64, 0x42);
  Aes aes(key);
  const Bytes ct = aes_cbc_encrypt(aes, iv, pt);
  EXPECT_NE(Bytes(ct.begin(), ct.begin() + 16),
            Bytes(ct.begin() + 16, ct.begin() + 32));
}

TEST(AesCbc, RejectsUnalignedInput) {
  Aes aes(Bytes(16, 1));
  const Bytes iv(16, 0);
  EXPECT_THROW(aes_cbc_encrypt(aes, iv, Bytes(15, 0)), std::invalid_argument);
  EXPECT_FALSE(aes_cbc_decrypt(aes, iv, Bytes(17, 0)).is_ok());
  EXPECT_FALSE(aes_cbc_decrypt(aes, Bytes(8, 0), Bytes(16, 0)).is_ok());
}

CbcHmacKeys test_keys() {
  CbcHmacKeys keys;
  keys.enc_key = Bytes(16, 0x11);
  keys.mac_key = Bytes(20, 0x22);
  keys.mac_alg = HashAlg::kSha1;
  return keys;
}

Bytes record_header(uint8_t type, size_t len) {
  Bytes h;
  append_u8(h, type);
  append_u16(h, 0x0303);
  append_u16(h, static_cast<uint16_t>(len));
  return h;
}

TEST(CbcHmac, SealOpenRoundTrip) {
  const CbcHmacKeys keys = test_keys();
  Rng rng(4);
  for (size_t len : {0u, 1u, 15u, 16u, 100u, 1000u}) {
    const Bytes fragment = rng.bytes(len);
    const Bytes iv = rng.bytes(16);
    const Bytes header = record_header(23, fragment.size());
    const Bytes sealed = cbc_hmac_seal(keys, 7, header, iv, fragment);
    EXPECT_EQ(sealed.size() % 16, 0u);

    const Bytes header3(header.begin(), header.begin() + 3);
    auto opened = cbc_hmac_open(keys, 7, header3, iv, sealed);
    ASSERT_TRUE(opened.is_ok()) << opened.status().to_string();
    EXPECT_EQ(opened.value(), fragment);
  }
}

TEST(CbcHmac, WrongSequenceFailsMac) {
  const CbcHmacKeys keys = test_keys();
  Rng rng(5);
  const Bytes fragment = rng.bytes(64);
  const Bytes iv = rng.bytes(16);
  const Bytes header = record_header(23, fragment.size());
  const Bytes sealed = cbc_hmac_seal(keys, 1, header, iv, fragment);
  const Bytes header3(header.begin(), header.begin() + 3);
  EXPECT_FALSE(cbc_hmac_open(keys, 2, header3, iv, sealed).is_ok());
}

TEST(CbcHmac, TamperedCiphertextFails) {
  const CbcHmacKeys keys = test_keys();
  Rng rng(6);
  const Bytes fragment = rng.bytes(64);
  const Bytes iv = rng.bytes(16);
  const Bytes header = record_header(23, fragment.size());
  Bytes sealed = cbc_hmac_seal(keys, 1, header, iv, fragment);
  sealed[10] ^= 0x01;
  const Bytes header3(header.begin(), header.begin() + 3);
  EXPECT_FALSE(cbc_hmac_open(keys, 1, header3, iv, sealed).is_ok());
}

TEST(CbcHmac, WrongKeyFails) {
  const CbcHmacKeys keys = test_keys();
  CbcHmacKeys other = keys;
  other.mac_key = Bytes(20, 0x33);
  Rng rng(7);
  const Bytes fragment = rng.bytes(32);
  const Bytes iv = rng.bytes(16);
  const Bytes header = record_header(23, fragment.size());
  const Bytes sealed = cbc_hmac_seal(keys, 0, header, iv, fragment);
  const Bytes header3(header.begin(), header.begin() + 3);
  EXPECT_FALSE(cbc_hmac_open(other, 0, header3, iv, sealed).is_ok());
}

}  // namespace
}  // namespace qtls
