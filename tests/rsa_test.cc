#include <gtest/gtest.h>

#include "crypto/keystore.h"
#include "crypto/rsa.h"

namespace qtls {
namespace {

TEST(RsaKeygen, ProducesConsistentKey) {
  HmacDrbg rng = make_test_drbg(1001);
  const RsaPrivateKey key = rsa_generate(512, rng);
  EXPECT_EQ(key.pub.n.bit_length(), 512u);
  EXPECT_EQ(key.pub.e.low_u64(), 65537u);
  EXPECT_EQ(Bignum::mul(key.p, key.q), key.pub.n);
  // d*e = 1 mod (p-1)(q-1)
  const Bignum phi = Bignum::mul(Bignum::sub(key.p, Bignum(1)),
                                 Bignum::sub(key.q, Bignum(1)));
  EXPECT_TRUE(Bignum::mod_mul(key.d, key.pub.e, phi).is_one());
}

TEST(RsaKeygen, DeterministicFromSeed) {
  HmacDrbg rng1 = make_test_drbg(77);
  HmacDrbg rng2 = make_test_drbg(77);
  EXPECT_EQ(rsa_generate(512, rng1).pub.n, rsa_generate(512, rng2).pub.n);
}

TEST(Rsa, CrtMatchesPlainExp) {
  const RsaPrivateKey& key = test_rsa1024();
  HmacDrbg rng = make_test_drbg(3);
  for (int i = 0; i < 5; ++i) {
    const Bignum c = Bignum::from_bytes_be(rng.generate(100));
    EXPECT_EQ(rsa_private_op(key, c),
              Bignum::mod_exp(c, key.d, key.pub.n));
  }
}

TEST(Rsa, SignVerifyRoundTrip) {
  const RsaPrivateKey& key = test_rsa1024();
  const Bytes digest = sha256(to_bytes("message to sign"));
  const Bytes sig = rsa_sign_pkcs1(key, digest);
  EXPECT_EQ(sig.size(), key.modulus_bytes());
  EXPECT_TRUE(rsa_verify_pkcs1(key.pub, digest, sig).is_ok());
}

TEST(Rsa, VerifyRejectsWrongDigest) {
  const RsaPrivateKey& key = test_rsa1024();
  const Bytes sig = rsa_sign_pkcs1(key, sha256(to_bytes("original")));
  EXPECT_FALSE(
      rsa_verify_pkcs1(key.pub, sha256(to_bytes("forged")), sig).is_ok());
}

TEST(Rsa, VerifyRejectsTamperedSignature) {
  const RsaPrivateKey& key = test_rsa1024();
  const Bytes digest = sha256(to_bytes("message"));
  Bytes sig = rsa_sign_pkcs1(key, digest);
  sig[sig.size() / 2] ^= 0x01;
  EXPECT_FALSE(rsa_verify_pkcs1(key.pub, digest, sig).is_ok());
}

TEST(Rsa, VerifyRejectsBadLength) {
  const RsaPrivateKey& key = test_rsa1024();
  const Bytes digest = sha256(to_bytes("message"));
  EXPECT_FALSE(rsa_verify_pkcs1(key.pub, digest, Bytes(10, 0)).is_ok());
}

TEST(Rsa, EncryptDecryptRoundTrip) {
  const RsaPrivateKey& key = test_rsa1024();
  HmacDrbg rng = make_test_drbg(4);
  const Bytes premaster = rng.generate(48);  // TLS premaster size
  auto ct = rsa_encrypt_pkcs1(key.pub, premaster, rng);
  ASSERT_TRUE(ct.is_ok());
  EXPECT_EQ(ct.value().size(), key.modulus_bytes());
  auto pt = rsa_decrypt_pkcs1(key, ct.value());
  ASSERT_TRUE(pt.is_ok());
  EXPECT_EQ(pt.value(), premaster);
}

TEST(Rsa, EncryptionIsRandomized) {
  const RsaPrivateKey& key = test_rsa1024();
  HmacDrbg rng = make_test_drbg(5);
  const Bytes msg = to_bytes("hello");
  auto c1 = rsa_encrypt_pkcs1(key.pub, msg, rng);
  auto c2 = rsa_encrypt_pkcs1(key.pub, msg, rng);
  ASSERT_TRUE(c1.is_ok());
  ASSERT_TRUE(c2.is_ok());
  EXPECT_NE(c1.value(), c2.value());
}

TEST(Rsa, DecryptRejectsTampered) {
  const RsaPrivateKey& key = test_rsa1024();
  HmacDrbg rng = make_test_drbg(6);
  auto ct = rsa_encrypt_pkcs1(key.pub, to_bytes("secret"), rng);
  ASSERT_TRUE(ct.is_ok());
  Bytes bad = ct.value();
  bad[0] = 0xff;  // makes the value >= n or corrupts padding
  auto pt = rsa_decrypt_pkcs1(key, bad);
  if (pt.is_ok()) {
    EXPECT_NE(pt.value(), to_bytes("secret"));
  }
}

TEST(Rsa, MessageTooLongRejected) {
  const RsaPrivateKey& key = test_rsa1024();
  HmacDrbg rng = make_test_drbg(7);
  const Bytes huge(key.modulus_bytes() - 5, 0x41);
  EXPECT_FALSE(rsa_encrypt_pkcs1(key.pub, huge, rng).is_ok());
}

TEST(Rsa, SerializeDeserializeRoundTrip) {
  const RsaPrivateKey& key = test_rsa1024();
  auto restored = RsaPrivateKey::deserialize(key.serialize());
  ASSERT_TRUE(restored.is_ok());
  EXPECT_EQ(restored.value().pub.n, key.pub.n);
  EXPECT_EQ(restored.value().d, key.d);
  EXPECT_EQ(restored.value().qinv, key.qinv);
  // The restored key must still work.
  const Bytes digest = sha256(to_bytes("x"));
  EXPECT_TRUE(rsa_verify_pkcs1(restored.value().pub, digest,
                               rsa_sign_pkcs1(restored.value(), digest))
                  .is_ok());
}

TEST(Rsa, DeserializeRejectsMissingFields) {
  EXPECT_FALSE(RsaPrivateKey::deserialize("n=ab\ne=03\n").is_ok());
}

TEST(Rsa, Rsa2048KeyFromKeystore) {
  const RsaPrivateKey& key = test_rsa2048();
  EXPECT_EQ(key.pub.n.bit_length(), 2048u);
  const Bytes digest = sha256(to_bytes("qtls"));
  EXPECT_TRUE(
      rsa_verify_pkcs1(key.pub, digest, rsa_sign_pkcs1(key, digest)).is_ok());
}

}  // namespace
}  // namespace qtls
