#include <gtest/gtest.h>

#include "crypto/ec2m.h"
#include "crypto/keystore.h"

namespace qtls {
namespace {

class BinaryCurveTest : public ::testing::TestWithParam<const Ec2mCurve*> {};

INSTANTIATE_TEST_SUITE_P(Curves, BinaryCurveTest,
                         ::testing::Values(&curve_b283(), &curve_b409(),
                                           &curve_k283(), &curve_k409()),
                         [](const auto& info) {
                           std::string n = info.param->name();
                           n.erase(std::remove(n.begin(), n.end(), '-'),
                                   n.end());
                           return n;
                         });

TEST_P(BinaryCurveTest, GeneratorOnCurve) {
  const Ec2mCurve& c = *GetParam();
  EXPECT_FALSE(c.generator().infinity);
  EXPECT_TRUE(c.on_curve(c.generator()));
}

TEST_P(BinaryCurveTest, DoubleOnCurve) {
  const Ec2mCurve& c = *GetParam();
  const Ec2mPoint d = c.dbl(c.generator());
  EXPECT_TRUE(c.on_curve(d));
  EXPECT_FALSE(d.infinity);
}

TEST_P(BinaryCurveTest, AddOnCurveAndCommutative) {
  const Ec2mCurve& c = *GetParam();
  const Ec2mPoint g = c.generator();
  const Ec2mPoint g2 = c.dbl(g);
  const Ec2mPoint s1 = c.add(g, g2);
  const Ec2mPoint s2 = c.add(g2, g);
  EXPECT_TRUE(c.on_curve(s1));
  EXPECT_EQ(s1.x, s2.x);
  EXPECT_EQ(s1.y, s2.y);
}

TEST_P(BinaryCurveTest, AddNegationGivesInfinity) {
  const Ec2mCurve& c = *GetParam();
  const Ec2mPoint g = c.generator();
  const Ec2mPoint neg = c.negate(g);
  EXPECT_TRUE(c.on_curve(neg));
  EXPECT_TRUE(c.add(g, neg).infinity);
}

TEST_P(BinaryCurveTest, SmallScalarConsistency) {
  const Ec2mCurve& c = *GetParam();
  const Ec2mPoint g = c.generator();
  Ec2mPoint acc = Ec2mPoint::at_infinity();
  for (uint8_t k = 1; k <= 10; ++k) {
    acc = c.add(acc, g);
    const Bytes scalar = {k};
    const Ec2mPoint via_mul = c.mul(scalar, g);
    EXPECT_EQ(acc.x, via_mul.x) << "k=" << int(k);
    EXPECT_EQ(acc.y, via_mul.y) << "k=" << int(k);
    EXPECT_TRUE(c.on_curve(acc));
  }
}

TEST_P(BinaryCurveTest, ScalarDistributivitySmall) {
  const Ec2mCurve& c = *GetParam();
  const Ec2mPoint g = c.generator();
  // (37 + 91) G == 37 G + 91 G
  const Ec2mPoint lhs = c.mul(Bytes{128}, g);
  const Ec2mPoint rhs = c.add(c.mul(Bytes{37}, g), c.mul(Bytes{91}, g));
  EXPECT_EQ(lhs.x, rhs.x);
  EXPECT_EQ(lhs.y, rhs.y);
}

TEST_P(BinaryCurveTest, AssociativityOfAdd) {
  const Ec2mCurve& c = *GetParam();
  const Ec2mPoint g = c.generator();
  const Ec2mPoint p2 = c.dbl(g);
  const Ec2mPoint p3 = c.add(p2, g);
  const Ec2mPoint lhs = c.add(c.add(g, p2), p3);
  const Ec2mPoint rhs = c.add(g, c.add(p2, p3));
  EXPECT_EQ(lhs.x, rhs.x);
  EXPECT_EQ(lhs.y, rhs.y);
}

TEST_P(BinaryCurveTest, PointCodecRoundTrip) {
  const Ec2mCurve& c = *GetParam();
  const Ec2mPoint p = c.mul(Bytes{0x12, 0x34}, c.generator());
  const Bytes enc = c.encode_point(p);
  auto dec = c.decode_point(enc);
  ASSERT_TRUE(dec.is_ok());
  EXPECT_EQ(dec.value().x, p.x);
  EXPECT_EQ(dec.value().y, p.y);
}

TEST_P(BinaryCurveTest, DecodeRejectsOffCurve) {
  const Ec2mCurve& c = *GetParam();
  Bytes enc = c.encode_point(c.generator());
  enc[enc.size() - 1] ^= 0x01;
  EXPECT_FALSE(c.decode_point(enc).is_ok());
}

TEST_P(BinaryCurveTest, EcdhAgreement) {
  const Ec2mCurve& c = *GetParam();
  HmacDrbg rng = make_test_drbg(0xb283);
  const Ec2mKeyPair alice = ec2m_generate_key(c, rng);
  const Ec2mKeyPair bob = ec2m_generate_key(c, rng);
  auto s1 = ec2m_shared_secret(c, alice.priv, bob.pub);
  auto s2 = ec2m_shared_secret(c, bob.priv, alice.pub);
  ASSERT_TRUE(s1.is_ok());
  ASSERT_TRUE(s2.is_ok());
  EXPECT_EQ(s1.value(), s2.value());
}

TEST_P(BinaryCurveTest, EcdhRejectsInfinity) {
  const Ec2mCurve& c = *GetParam();
  HmacDrbg rng = make_test_drbg(0xb284);
  const Ec2mKeyPair alice = ec2m_generate_key(c, rng);
  EXPECT_FALSE(
      ec2m_shared_secret(c, alice.priv, Ec2mPoint::at_infinity()).is_ok());
}

TEST_P(BinaryCurveTest, SolveYProducesCurvePoints) {
  const Ec2mCurve& c = *GetParam();
  const Gf2mField& f = c.field();
  int solved = 0;
  for (uint64_t xv = 2; xv < 40 && solved < 5; ++xv) {
    const Gf2mElem x = f.from_u64(xv);
    Gf2mElem y;
    if (!c.solve_y(x, &y)) continue;
    EXPECT_TRUE(c.on_curve(Ec2mPoint::affine(x, y)));
    ++solved;
  }
  EXPECT_GT(solved, 0);
}

TEST(Ec2m, KoblitzCurveShape) {
  EXPECT_TRUE(curve_k283().a().is_zero());
  EXPECT_TRUE(curve_k283().b().is_one());
  EXPECT_TRUE(curve_b283().a().is_one());
  EXPECT_FALSE(curve_b283().b().is_one());
}

TEST(Ec2m, DifferentCurvesDifferentGenerators) {
  EXPECT_FALSE(curve_b283().generator().x == curve_k283().generator().x);
}

}  // namespace
}  // namespace qtls
