// Self-healing control plane (ctest label "control"; DESIGN.md §15):
//
//  * conf: the control{} block parses, bounds are enforced, defaults hold;
//  * hot reload: generation numbers are monotonic, a bad conf text leaves
//    the old generation serving, credentials{} swaps resolve against the
//    keystore, and session_cache{} shape edits are PRESERVED (ignored) so
//    the resumption plane survives the reload;
//  * worker plumbing: a worker applies a published generation at the top of
//    its loop, serves /healthz + /reload + /stats, and an IN-FLIGHT
//    handshake finishes on the credentials it snapshotted at accept;
//  * reload-under-churn: a 2-worker pool takes SIGHUP, direct loads and a
//    wire POST /reload mid-churn with zero client errors and a perfect
//    resumption hit rate (offered == resumed) across credential swaps;
//  * watchdog: a seeded wedge (cooperative loop_hook) is detected after
//    missed_windows frozen windows, /readyz and /healthz flip to 503,
//    crash-only recovery joins + reaps the worker's slab connections
//    (conservation checked against the registry), the replacement accepts,
//    and a BUSY worker (progress advancing inside one long pass) is held,
//    never restarted — the false-positive regression;
//  * EINTR: the socket transport retries interrupted blocking reads and
//    writes instead of surfacing them as connection errors;
//  * set_nonblocking failures propagate out of Worker::adopt.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "client/https_client.h"
#include "common/slab.h"
#include "crypto/keystore.h"
#include "net/socket_transport.h"
#include "server/control.h"
#include "server/worker_pool.h"
#include "server_test_util.h"

namespace qtls::server {
namespace {

using std::chrono::milliseconds;
using std::chrono::seconds;
using std::chrono::steady_clock;

uint64_t steady_ms() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<milliseconds>(
          steady_clock::now().time_since_epoch())
          .count());
}

// One conf text, parameterized on the knobs the tests reload: the resolved
// RSA key size, the session-cache shard count (a plane SHAPE change the
// reload must refuse to apply), the wedge threshold and the admission cap.
std::string conf_text(int rsa_bits, int cache_shards, int missed_windows,
                      int max_handshaking, const char* past_cap) {
  std::ostringstream os;
  os << "worker_processes 2;\n"
        "ssl_engine {\n"
        "    use qat_engine;\n"
        "    qat_engine {\n"
        "        qat_offload_mode async;\n"
        "        qat_notify_mode poll;\n"
        "        qat_poll_mode heuristic;\n"
        "    }\n"
        "}\n"
        "session_cache {\n"
     << "    shards " << cache_shards << ";\n"
     << "    capacity 512;\n"
        "}\n"
        "overload {\n"
        "    handshake_timeout_ms 60000;\n"
        "    idle_timeout_ms 60000;\n"
        "    write_stall_timeout_ms 60000;\n"
     << "    max_handshaking " << max_handshaking << ";\n"
     << "    past_cap " << past_cap << ";\n"
        "    park_backlog 256;\n"
        "}\n"
        "control {\n"
        "    heartbeat_interval_ms 50;\n"
     << "    missed_windows " << missed_windows << ";\n"
     << "    eject_grace_ms 2000;\n"
        "    supervise off;\n"
        "}\n"
        "credentials {\n"
     << "    rsa " << rsa_bits << ";\n"
        "}\n";
  return os.str();
}

// Single-threaded fetch of one path from a socketpair-coupled worker.
std::string fetch_body(Worker* worker, tls::TlsContext* cctx,
                       const std::string& path, uint64_t seed,
                       uint64_t* errors) {
  client::ClientOptions copts;
  copts.path = path;
  copts.max_requests = 1;
  client::HttpsClient c(cctx, testutil::socketpair_connector(worker), copts,
                        seed);
  const auto deadline = steady_clock::now() + seconds(30);
  while (c.step() && steady_clock::now() < deadline) worker->run_once(0);
  if (errors != nullptr) *errors = c.stats().errors;
  return std::string(c.last_body().begin(), c.last_body().end());
}

// ------------------------------------------------------------------ conf ----

TEST(ControlConf, ParsesControlBlockAndDefaults) {
  auto s = parse_ssl_engine_settings(conf_text(2048, 4, 7, 256, "shed"));
  ASSERT_TRUE(s.is_ok());
  EXPECT_EQ(s.value().control.heartbeat_interval_ms, 50u);
  EXPECT_EQ(s.value().control.missed_windows, 7);
  EXPECT_EQ(s.value().control.eject_grace_ms, 2000u);
  EXPECT_FALSE(s.value().control.supervise);

  auto d = parse_ssl_engine_settings("worker_processes 1;\n");
  ASSERT_TRUE(d.is_ok());
  EXPECT_EQ(d.value().control.heartbeat_interval_ms, 100u);
  EXPECT_EQ(d.value().control.missed_windows, 5);
  EXPECT_EQ(d.value().control.eject_grace_ms, 500u);
  EXPECT_TRUE(d.value().control.supervise);

  EXPECT_FALSE(
      parse_ssl_engine_settings("control { heartbeat_interval_ms 0; }")
          .is_ok());
  EXPECT_FALSE(
      parse_ssl_engine_settings("control { missed_windows 0; }").is_ok());
  EXPECT_FALSE(
      parse_ssl_engine_settings("control { supervise maybe; }").is_ok());
}

// ------------------------------------------------------------ hot reload ----

TEST(ControlPlane, GenerationMonotonicCredentialSwapAndBadConf) {
  ControlPlane control;
  EXPECT_FALSE(control.reload_now().is_ok());  // nothing loaded yet

  ASSERT_TRUE(control.load(conf_text(2048, 4, 3, 256, "shed")).is_ok());
  EXPECT_EQ(control.generation(), 1u);
  auto rc = control.current();
  ASSERT_NE(rc, nullptr);
  ASSERT_NE(rc->credentials, nullptr);
  EXPECT_EQ(rc->credentials->rsa_key, &test_rsa2048());

  // reload_now re-parses the retained text.
  ASSERT_TRUE(control.reload_now().is_ok());
  EXPECT_EQ(control.generation(), 2u);

  // A credential swap resolves against the keystore.
  ASSERT_TRUE(control.load(conf_text(1024, 4, 3, 256, "shed")).is_ok());
  EXPECT_EQ(control.generation(), 3u);
  EXPECT_EQ(control.current()->credentials->rsa_key, &test_rsa1024());

  // Bad texts: nothing published, the old generation keeps serving, and
  // reload_now still re-publishes the last GOOD text afterwards.
  const auto before = control.stats();
  EXPECT_FALSE(control.load("ssl_engine {").is_ok());  // truncated
  EXPECT_FALSE(control.load("session_cache { shards 999999; }").is_ok());
  EXPECT_EQ(control.generation(), 3u);
  EXPECT_EQ(control.current()->credentials->rsa_key, &test_rsa1024());
  EXPECT_EQ(control.stats().reload_failures, before.reload_failures + 2);
  EXPECT_EQ(control.stats().reloads, 3u);
  ASSERT_TRUE(control.reload_now().is_ok());
  EXPECT_EQ(control.generation(), 4u);

  // The deferred (SIGHUP-style) path: request_reload is acted on by the
  // next supervision pass even with no pool attached.
  control.request_reload();
  const auto rep = control.check_now(/*now_ms=*/123);
  EXPECT_TRUE(rep.reloaded);
  EXPECT_EQ(control.generation(), 5u);
}

TEST(ControlPlane, SessionPlaneShapePreservedAcrossReload) {
  ControlPlane control;
  ASSERT_TRUE(control.load(conf_text(2048, 4, 3, 256, "shed")).is_ok());
  EXPECT_EQ(control.current()->settings.session.cache_shards, 4u);

  // A shard-count edit is a plane SHAPE change: the reload publishes (the
  // generation moves) but keeps the old shape — rebuilding the ticket ring
  // or cache would orphan every outstanding session.
  ASSERT_TRUE(control.load(conf_text(2048, 8, 3, 256, "shed")).is_ok());
  EXPECT_EQ(control.generation(), 2u);
  EXPECT_EQ(control.current()->settings.session.cache_shards, 4u);
  EXPECT_EQ(control.stats().plane_changes_ignored, 1u);

  // Same shape again: publishes normally, no further ignore.
  ASSERT_TRUE(control.load(conf_text(1024, 4, 3, 256, "shed")).is_ok());
  EXPECT_EQ(control.current()->settings.session.cache_shards, 4u);
  EXPECT_EQ(control.stats().plane_changes_ignored, 1u);
}

// -------------------------------------------------------- worker plumbing ----

TEST(ControlWorker, AppliesGenerationServesHealthAndReload) {
  ControlPlane control;
  ASSERT_TRUE(control.load(conf_text(2048, 4, 3, 256, "shed")).is_ok());

  engine::SoftwareProvider provider;
  tls::TlsContextConfig scfg;
  scfg.is_server = true;
  scfg.cipher_suites = {tls::CipherSuite::kEcdheRsaWithAes128CbcSha};
  tls::TlsContext ctx(scfg, &provider);
  ctx.credentials().rsa_key = &test_rsa2048();

  WorkerConfig wcfg;
  wcfg.control = &control;
  Worker worker(&ctx, nullptr, wcfg);
  worker.run_once(0);
  EXPECT_EQ(worker.applied_generation(), 1u);

  engine::SoftwareProvider cprov;
  tls::TlsContextConfig ccfg;
  ccfg.cipher_suites = scfg.cipher_suites;
  tls::TlsContext cctx(ccfg, &cprov);

  uint64_t errors = 0;
  std::string body = fetch_body(&worker, &cctx, "/healthz", 6001, &errors);
  EXPECT_EQ(errors, 0u);
  EXPECT_NE(body.find("\"status\":\"ok\""), std::string::npos);

  // POST /reload runs synchronously: the response carries the generation it
  // published and the serving worker has already applied it.
  body = fetch_body(&worker, &cctx, "/reload", 6002, &errors);
  EXPECT_EQ(errors, 0u);
  EXPECT_NE(body.find("\"ok\":true"), std::string::npos);
  EXPECT_EQ(control.generation(), 2u);
  EXPECT_EQ(worker.applied_generation(), 2u);

  // Readiness without an attached pool is 503 (the client counts non-200 as
  // an error by design, so read it through the API).
  int http = 0;
  control.readyz_json(&http);
  EXPECT_EQ(http, 503);

  // /stats carries the control sub-object.
  body = fetch_body(&worker, &cctx, "/stats", 6003, &errors);
  EXPECT_EQ(errors, 0u);
  EXPECT_NE(body.find("\"applied_generation\":2"), std::string::npos);
}

TEST(ControlWorker, InflightHandshakeSurvivesCredentialReload) {
  ControlPlane control;
  ASSERT_TRUE(control.load(conf_text(2048, 4, 3, 256, "shed")).is_ok());

  engine::SoftwareProvider provider;
  tls::TlsContextConfig scfg;
  scfg.is_server = true;
  scfg.cipher_suites = {tls::CipherSuite::kEcdheRsaWithAes128CbcSha};
  tls::TlsContext ctx(scfg, &provider);
  ctx.credentials().rsa_key = &test_rsa2048();

  WorkerConfig wcfg;
  wcfg.control = &control;
  Worker worker(&ctx, nullptr, wcfg);
  worker.run_once(0);

  engine::SoftwareProvider cprov;
  tls::TlsContextConfig ccfg;
  ccfg.cipher_suites = scfg.cipher_suites;
  tls::TlsContext cctx(ccfg, &cprov);

  // Start a handshake: the accept path snapshots generation-1 credentials.
  client::ClientOptions copts;
  copts.max_requests = 1;
  client::HttpsClient a(&cctx, testutil::socketpair_connector(&worker), copts,
                        6101);
  a.step();
  worker.run_once(0);

  // The credential reload lands MID-handshake; the in-flight connection
  // must finish on its snapshot while the worker applies the new generation.
  ASSERT_TRUE(control.load(conf_text(1024, 4, 3, 256, "shed")).is_ok());
  const auto deadline = steady_clock::now() + seconds(30);
  while (a.step() && steady_clock::now() < deadline) worker.run_once(0);
  EXPECT_EQ(a.stats().errors, 0u);
  EXPECT_EQ(a.stats().requests, 1u);
  EXPECT_EQ(worker.applied_generation(), 2u);

  // A fresh accept completes on the new generation.
  client::HttpsClient b(&cctx, testutil::socketpair_connector(&worker), copts,
                        6102);
  while (b.step() && steady_clock::now() < deadline) worker.run_once(0);
  EXPECT_EQ(b.stats().errors, 0u);
  EXPECT_EQ(b.stats().requests, 1u);
}

// ---------------------------------------------------- reload under churn ----

TEST(ControlPool, ReloadUnderChurnKeepsResumptionPerfect) {
  qat::QatDevice device;
  ControlPlane control;  // auto_recover on: churn must not look like a wedge
  ASSERT_TRUE(control.load(conf_text(2048, 4, 100, 4, "park")).is_ok());

  WorkerPoolOptions options;
  options.workers = 2;
  options.tls_config.async_mode = true;
  options.tls_config.use_session_tickets = true;
  options.tls_config.cipher_suites = {
      tls::CipherSuite::kEcdheRsaWithAes128CbcSha};
  options.worker_config.control = &control;
  WorkerPool pool(&device, &test_rsa2048(), options);
  ASSERT_TRUE(pool.start(0).is_ok());
  control.attach(&pool);
  control.install_sighup();
  const uint16_t port = pool.port();

  engine::SoftwareProvider client_provider;
  tls::TlsContextConfig ccfg;
  ccfg.cipher_suites = options.tls_config.cipher_suites;
  tls::TlsContext cctx(ccfg, &client_provider);
  auto connect = [port]() -> int {
    auto fd = net::tcp_connect(port);
    return fd.is_ok() ? fd.value() : -1;
  };

  constexpr int kClients = 8;
  constexpr uint64_t kRequests = 6;
  client::Pool clients;
  for (int i = 0; i < kClients; ++i) {
    client::ClientOptions copts;
    copts.full_handshake_ratio = 0.0;  // offer whenever a session exists
    copts.max_requests = kRequests;
    clients.add(std::make_unique<client::HttpsClient>(
        &cctx, connect, copts, 7000 + static_cast<uint64_t>(i)));
  }
  // Operator clients fired mid-churn: a wire POST /reload and a /readyz.
  client::ClientOptions ropts;
  ropts.path = "/reload";
  ropts.max_requests = 1;
  client::HttpsClient reloader(&cctx, connect, ropts, 7777);
  client::ClientOptions yopts;
  yopts.path = "/readyz";
  yopts.max_requests = 1;
  client::HttpsClient readyz(&cctx, connect, yopts, 7778);

  // Reload schedule keyed off churn progress: SIGHUP -> credential+shape
  // flip -> flip back -> wire /reload (+ /readyz), with a supervision pass
  // at least every 15 ms throughout — the no-false-positive half of the
  // watchdog contract rides along (wedge_events must stay 0).
  int stage = 0;
  auto last_check = steady_clock::now();
  const auto deadline = steady_clock::now() + seconds(120);
  bool all_done = false;
  while (!all_done && steady_clock::now() < deadline) {
    all_done = true;
    for (auto& c : clients.clients())
      if (c->step()) all_done = false;
    if (stage >= 3) {
      if (reloader.step()) all_done = false;
      if (readyz.step()) all_done = false;
    }
    const uint64_t done = clients.aggregate().requests;
    if (stage == 0 && done >= kClients) {
      std::raise(SIGHUP);
      const auto rep = control.check_now(steady_ms());
      EXPECT_TRUE(rep.reloaded);  // -> generation 2
      stage = 1;
    } else if (stage == 1 && done >= 2 * kClients) {
      // Credential swap + an (ignored) plane-shape edit. -> generation 3
      ASSERT_TRUE(control.load(conf_text(1024, 8, 100, 4, "park")).is_ok());
      stage = 2;
    } else if (stage == 2 && done >= 3 * kClients) {
      ASSERT_TRUE(
          control.load(conf_text(2048, 4, 100, 4, "park")).is_ok());  // -> 4
      stage = 3;
    }
    if (steady_clock::now() - last_check >= milliseconds(15)) {
      last_check = steady_clock::now();
      (void)control.check_now(steady_ms());
    }
  }
  ASSERT_TRUE(all_done) << "churn hung across reloads";
  EXPECT_EQ(stage, 3);

  // Zero drops, and a PERFECT resumption hit rate across the credential
  // reloads: the ticket ring and session cache were preserved.
  const client::ClientStats cstats = clients.aggregate();
  EXPECT_EQ(cstats.errors, 0u);
  EXPECT_EQ(cstats.requests, kClients * kRequests);
  EXPECT_EQ(cstats.offered, kClients * (kRequests - 1));
  EXPECT_EQ(cstats.resumed, cstats.offered);

  // The wire reload answered with the generation it published (5: load,
  // SIGHUP, two direct loads, POST /reload).
  EXPECT_EQ(reloader.stats().errors, 0u);
  const std::string rbody(reloader.last_body().begin(),
                          reloader.last_body().end());
  EXPECT_NE(rbody.find("\"ok\":true"), std::string::npos);
  EXPECT_EQ(control.generation(), 5u);
  EXPECT_EQ(readyz.stats().errors, 0u);
  const std::string ybody(readyz.last_body().begin(),
                          readyz.last_body().end());
  EXPECT_NE(ybody.find("\"ready\":true"), std::string::npos);

  const auto cs = control.stats();
  EXPECT_EQ(cs.reloads, 5u);
  EXPECT_EQ(cs.reload_failures, 0u);
  EXPECT_GE(cs.plane_changes_ignored, 1u);
  EXPECT_EQ(cs.wedge_events, 0u);
  EXPECT_EQ(pool.total_worker_restarts(), 0u);

  // Generation propagation: every worker applies the final generation.
  const auto prop_deadline = steady_clock::now() + seconds(10);
  bool propagated = false;
  while (!propagated && steady_clock::now() < prop_deadline) {
    propagated = true;
    for (const WorkerHeartbeatView& hb : pool.heartbeats())
      if (hb.applied_generation != control.generation()) propagated = false;
    if (!propagated) std::this_thread::sleep_for(milliseconds(2));
  }
  EXPECT_TRUE(propagated);
  pool.stop();
}

// ---------------------------------------------------------------- watchdog ----

TEST(ControlWatchdog, WedgeDetectedRecoveredReadyzFlips) {
  qat::QatDevice device;
  ControlPlane::Options copts;
  copts.auto_recover = false;  // observe the unready window, recover by hand
  ControlPlane control(std::move(copts));
  ASSERT_TRUE(control.load(conf_text(2048, 4, 3, 256, "shed")).is_ok());

  std::atomic<Worker*> wedge_target{nullptr};
  std::atomic<bool> wedge_on{false};

  WorkerPoolOptions options;
  options.workers = 2;
  options.tls_config.async_mode = true;
  options.tls_config.cipher_suites = {
      tls::CipherSuite::kEcdheRsaWithAes128CbcSha};
  options.worker_config.control = &control;
  // Cooperative wedge: the hooked worker spins inside ONE loop pass with no
  // progress until ejected (the crash-only recovery's happy path).
  options.worker_config.loop_hook = [&wedge_target, &wedge_on](Worker& w) {
    if (wedge_target.load(std::memory_order_acquire) != &w) return;
    while (wedge_on.load(std::memory_order_acquire) && !w.eject_requested())
      std::this_thread::sleep_for(milliseconds(1));
  };
  WorkerPool pool(&device, &test_rsa2048(), options);
  ASSERT_TRUE(pool.start(0).is_ok());
  control.attach(&pool);
  const uint16_t port = pool.port();

  engine::SoftwareProvider client_provider;
  tls::TlsContextConfig ccfg;
  ccfg.cipher_suites = options.tls_config.cipher_suites;
  tls::TlsContext cctx(ccfg, &client_provider);
  auto connect = [port]() -> int {
    auto fd = net::tcp_connect(port);
    return fd.is_ok() ? fd.value() : -1;
  };

  // Park keepalive connections until at least one lands on worker slot 0,
  // identified TSan-safely by the slot's atomic progress counter moving
  // (only the accepting worker's handlers bump it).
  std::vector<std::unique_ptr<client::HttpsClient>> parked;
  size_t conns_on_w0 = 0;
  const auto park_deadline = steady_clock::now() + seconds(60);
  while (conns_on_w0 == 0 && parked.size() < 32 &&
         steady_clock::now() < park_deadline) {
    const uint64_t before = pool.heartbeats()[0].progress;
    client::ClientOptions kopts;
    kopts.keepalive = true;
    kopts.max_requests = 0;  // unlimited: we simply stop stepping it
    auto c = std::make_unique<client::HttpsClient>(
        &cctx, connect, kopts, 8100 + static_cast<uint64_t>(parked.size()));
    const auto one = steady_clock::now() + seconds(30);
    while (c->stats().requests == 0 && c->stats().errors == 0 &&
           steady_clock::now() < one)
      c->step();
    ASSERT_EQ(c->stats().errors, 0u);
    std::this_thread::sleep_for(milliseconds(50));  // worker back to idle
    if (pool.heartbeats()[0].progress > before) ++conns_on_w0;
    parked.push_back(std::move(c));
  }
  ASSERT_GT(conns_on_w0, 0u);
  const size_t live_before =
      common::SlabRegistry::global().totals("server.").live;

  // Wedge worker 0 and drive supervision windows until it is declared.
  wedge_target.store(pool.worker(0), std::memory_order_release);
  wedge_on.store(true, std::memory_order_release);
  std::this_thread::sleep_for(milliseconds(30));  // next pass enters the hook

  uint64_t vnow = 1'000'000;
  int wedged_events = 0;
  for (int i = 0; i < 30 && wedged_events == 0; ++i) {
    std::this_thread::sleep_for(milliseconds(20));
    vnow += 50;
    wedged_events += control.check_now(vnow).wedged;
  }
  EXPECT_EQ(wedged_events, 1);
  EXPECT_FALSE(control.healthy());
  int http = 0;
  std::string body = control.readyz_json(&http);
  EXPECT_EQ(http, 503);
  EXPECT_NE(body.find("\"ready\":false"), std::string::npos);
  body = control.healthz_json(vnow, &http);
  EXPECT_EQ(http, 503);
  EXPECT_NE(body.find("\"wedged\":true"), std::string::npos);
  auto cs = control.stats();
  EXPECT_EQ(cs.wedge_events, 1u);
  EXPECT_GT(cs.last_time_to_detect_ms, 0u);
  EXPECT_EQ(cs.worker_restarts, 0u);  // auto_recover off: still down

  // Crash-only recovery: eject -> the cooperative wedge honours it -> the
  // thread is joined and the worker destructor reaps its slab connections.
  // Clear the target first so a replacement reusing the heap address can
  // never match the hook.
  wedge_target.store(nullptr, std::memory_order_release);
  EXPECT_TRUE(control.recover(0));
  wedge_on.store(false, std::memory_order_release);

  cs = control.stats();
  EXPECT_EQ(cs.worker_restarts, 1u);
  EXPECT_EQ(cs.workers_abandoned, 0u);  // joined, not quarantined
  EXPECT_EQ(pool.total_worker_restarts(), 1u);
  EXPECT_TRUE(control.healthy());
  control.readyz_json(&http);
  EXPECT_EQ(http, 200);

  // Slab conservation: exactly the wedged worker's connections went home.
  EXPECT_EQ(common::SlabRegistry::global().totals("server.").live,
            live_before - conns_on_w0);

  // The replacement accepts on the same reuseport share: keep probing until
  // slot 0's (fresh) progress counter moves.
  const auto serve_deadline = steady_clock::now() + seconds(60);
  bool replacement_hit = false;
  uint64_t seed = 8600;
  while (!replacement_hit && steady_clock::now() < serve_deadline) {
    const uint64_t before = pool.heartbeats()[0].progress;
    client::ClientOptions sopts;
    sopts.max_requests = 1;
    client::HttpsClient c(&cctx, connect, sopts, seed++);
    const auto one = steady_clock::now() + seconds(30);
    while (c.step() && steady_clock::now() < one) {
    }
    EXPECT_EQ(c.stats().errors, 0u);
    std::this_thread::sleep_for(milliseconds(20));
    if (pool.heartbeats()[0].progress > before) replacement_hit = true;
  }
  EXPECT_TRUE(replacement_hit);
  pool.stop();
}

TEST(ControlWatchdog, BusyWorkerHeldNotWedged) {
  qat::QatDevice device;
  ControlPlane control;  // auto_recover ON: a hold that misfires would restart
  ASSERT_TRUE(control.load(conf_text(2048, 4, 3, 256, "shed")).is_ok());

  std::atomic<bool> busy_on{false};
  WorkerPoolOptions options;
  options.workers = 1;
  options.tls_config.async_mode = true;
  options.tls_config.cipher_suites = {
      tls::CipherSuite::kEcdheRsaWithAes128CbcSha};
  options.worker_config.control = &control;
  // Busy, not wedged: one very long pass whose "handlers" keep advancing
  // the progress counter — the supervisor must hold, never restart.
  options.worker_config.loop_hook = [&busy_on](Worker& w) {
    while (busy_on.load(std::memory_order_acquire) && !w.eject_requested()) {
      w.note_progress();
      std::this_thread::sleep_for(milliseconds(1));
    }
  };
  WorkerPool pool(&device, &test_rsa2048(), options);
  ASSERT_TRUE(pool.start(0).is_ok());
  control.attach(&pool);

  busy_on.store(true, std::memory_order_release);
  std::this_thread::sleep_for(milliseconds(30));

  uint64_t vnow = 500'000;
  int busy = 0, wedged = 0;
  for (int i = 0; i < 8; ++i) {
    std::this_thread::sleep_for(milliseconds(20));
    vnow += 50;
    const auto rep = control.check_now(vnow);
    busy += rep.busy;
    wedged += rep.wedged;
  }
  EXPECT_GE(busy, 2);
  EXPECT_EQ(wedged, 0);
  EXPECT_TRUE(control.healthy());
  const auto cs = control.stats();
  EXPECT_GE(cs.busy_holds, 2u);
  EXPECT_EQ(cs.wedge_events, 0u);
  EXPECT_EQ(cs.worker_restarts, 0u);
  EXPECT_EQ(pool.total_worker_restarts(), 0u);

  // Released: the pass completes and the next windows score fresh again.
  busy_on.store(false, std::memory_order_release);
  int fresh = 0;
  for (int i = 0; i < 30 && fresh == 0; ++i) {
    std::this_thread::sleep_for(milliseconds(20));
    vnow += 50;
    fresh += control.check_now(vnow).fresh;
  }
  EXPECT_GT(fresh, 0);
  pool.stop();
}

// ------------------------------------------------------------------ EINTR ----

void noop_signal_handler(int) {}

struct ScopedSigusr1 {
  struct sigaction old {};
  ScopedSigusr1() {
    struct sigaction sa {};
    sa.sa_handler = noop_signal_handler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;  // deliberately no SA_RESTART: force EINTR
    ::sigaction(SIGUSR1, &sa, &old);
  }
  ~ScopedSigusr1() { ::sigaction(SIGUSR1, &old, nullptr); }
};

TEST(TransportEintr, BlockingReadRetries) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  net::SocketTransport t(sv[0]);
  // The transport sets O_NONBLOCK; clear it so read() sleeps in the kernel
  // where a non-SA_RESTART signal interrupts it with EINTR.
  const int fl = ::fcntl(sv[0], F_GETFL, 0);
  ASSERT_EQ(::fcntl(sv[0], F_SETFL, fl & ~O_NONBLOCK), 0);

  ScopedSigusr1 guard;
  pthread_t reader = pthread_self();
  std::thread kicker([reader, fd = sv[1]] {
    for (int i = 0; i < 3; ++i) {
      std::this_thread::sleep_for(milliseconds(20));
      pthread_kill(reader, SIGUSR1);
    }
    std::this_thread::sleep_for(milliseconds(20));
    (void)::write(fd, "x", 1);
  });

  uint8_t buf[8] = {0};
  const tls::IoResult r = t.read(buf, sizeof buf);
  kicker.join();
  // Without the retry loop the first EINTR surfaces as kError and the
  // connection would be torn down mid-reload.
  EXPECT_EQ(r.status, tls::IoStatus::kOk);
  EXPECT_EQ(r.bytes, 1u);
  EXPECT_EQ(buf[0], 'x');
  ::close(sv[1]);
}

TEST(TransportEintr, BlockingWriteRetries) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  int sndbuf = 4096;
  ::setsockopt(sv[0], SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof sndbuf);
  net::SocketTransport t(sv[0]);

  // Fill the (non-blocking) send buffer until it pushes back...
  std::vector<uint8_t> chunk(65536, 0xaa);
  while (t.write(chunk.data(), chunk.size()).status == tls::IoStatus::kOk) {
  }
  // ...then switch to blocking so the next write sleeps in the kernel.
  const int fl = ::fcntl(sv[0], F_GETFL, 0);
  ASSERT_EQ(::fcntl(sv[0], F_SETFL, fl & ~O_NONBLOCK), 0);

  ScopedSigusr1 guard;
  pthread_t writer = pthread_self();
  std::atomic<bool> done{false};
  std::thread kicker([writer, fd = sv[1], &done] {
    std::this_thread::sleep_for(milliseconds(30));
    pthread_kill(writer, SIGUSR1);
    std::this_thread::sleep_for(milliseconds(30));
    std::vector<uint8_t> sink(65536);
    while (!done.load(std::memory_order_acquire)) {
      if (::recv(fd, sink.data(), sink.size(), MSG_DONTWAIT) < 0)
        std::this_thread::sleep_for(milliseconds(1));
    }
  });

  const tls::IoResult r = t.write(chunk.data(), chunk.size());
  done.store(true, std::memory_order_release);
  kicker.join();
  EXPECT_EQ(r.status, tls::IoStatus::kOk);
  EXPECT_GT(r.bytes, 0u);
  ::close(sv[1]);
}

// --------------------------------------------------------- set_nonblocking ----

TEST(SetNonblocking, BadFdErrorPropagatesThroughAdopt) {
  EXPECT_FALSE(net::set_nonblocking(-1).is_ok());
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  EXPECT_TRUE(net::set_nonblocking(sv[0]).is_ok());
  ::close(sv[0]);
  ::close(sv[1]);

  engine::SoftwareProvider provider;
  tls::TlsContextConfig scfg;
  scfg.is_server = true;
  scfg.cipher_suites = {tls::CipherSuite::kEcdheRsaWithAes128CbcSha};
  tls::TlsContext ctx(scfg, &provider);
  ctx.credentials().rsa_key = &test_rsa2048();
  Worker worker(&ctx, nullptr, WorkerConfig{});
  // A fd that cannot be made non-blocking must be REJECTED at adopt — a
  // silently-blocking fd would stall the whole event loop on its first read.
  EXPECT_FALSE(worker.adopt(-1).is_ok());
  EXPECT_EQ(worker.alive_connections(), 0u);
}

}  // namespace
}  // namespace qtls::server
