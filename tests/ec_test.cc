#include <gtest/gtest.h>

#include "crypto/ec.h"
#include "crypto/keystore.h"
#include "crypto/primes.h"

namespace qtls {
namespace {

class PrimeCurveTest : public ::testing::TestWithParam<const EcCurve*> {};

INSTANTIATE_TEST_SUITE_P(Curves, PrimeCurveTest,
                         ::testing::Values(&curve_p256(), &curve_p384()),
                         [](const auto& info) {
                           return info.param->name() == "P-256"
                                      ? std::string("P256")
                                      : std::string("P384");
                         });

TEST_P(PrimeCurveTest, GeneratorOnCurve) {
  const EcCurve& c = *GetParam();
  EXPECT_TRUE(c.on_curve(c.generator()));
}

TEST_P(PrimeCurveTest, OrderTimesGeneratorIsInfinity) {
  // This jointly validates p, a, b, Gx, Gy and n — a wrong digit anywhere
  // breaks it.
  const EcCurve& c = *GetParam();
  EXPECT_TRUE(c.mul(c.order(), c.generator()).infinity);
}

TEST_P(PrimeCurveTest, DoubleEqualsAdd) {
  const EcCurve& c = *GetParam();
  const EcPoint g = c.generator();
  const EcPoint d = c.dbl(g);
  const EcPoint a = c.add(g, g);
  EXPECT_FALSE(d.infinity);
  EXPECT_EQ(Bignum::cmp(d.x, a.x), 0);
  EXPECT_EQ(Bignum::cmp(d.y, a.y), 0);
  EXPECT_TRUE(c.on_curve(d));
}

TEST_P(PrimeCurveTest, SmallMultiplesConsistent) {
  const EcCurve& c = *GetParam();
  const EcPoint g = c.generator();
  EcPoint acc = EcPoint::at_infinity();
  for (uint64_t k = 1; k <= 20; ++k) {
    acc = c.add(acc, g);
    const EcPoint via_mul = c.mul(Bignum(k), g);
    EXPECT_EQ(Bignum::cmp(acc.x, via_mul.x), 0) << "k=" << k;
    EXPECT_EQ(Bignum::cmp(acc.y, via_mul.y), 0) << "k=" << k;
    EXPECT_TRUE(c.on_curve(acc));
  }
}

TEST_P(PrimeCurveTest, ScalarDistributivity) {
  const EcCurve& c = *GetParam();
  HmacDrbg rng = make_test_drbg(100);
  const Bignum a = random_below(c.order(), rng);
  const Bignum b = random_below(c.order(), rng);
  const EcPoint lhs = c.mul_base(Bignum::mod(Bignum::add(a, b), c.order()));
  const EcPoint rhs = c.add(c.mul_base(a), c.mul_base(b));
  EXPECT_EQ(Bignum::cmp(lhs.x, rhs.x), 0);
  EXPECT_EQ(Bignum::cmp(lhs.y, rhs.y), 0);
}

TEST_P(PrimeCurveTest, AddInverseGivesInfinity) {
  const EcCurve& c = *GetParam();
  const EcPoint g = c.generator();
  const EcPoint neg = EcPoint::affine(g.x, Bignum::sub(c.p(), g.y));
  EXPECT_TRUE(c.on_curve(neg));
  EXPECT_TRUE(c.add(g, neg).infinity);
}

TEST_P(PrimeCurveTest, InfinityIsIdentity)
{
  const EcCurve& c = *GetParam();
  const EcPoint g = c.generator();
  const EcPoint inf = EcPoint::at_infinity();
  const EcPoint sum = c.add(g, inf);
  EXPECT_EQ(Bignum::cmp(sum.x, g.x), 0);
  const EcPoint sum2 = c.add(inf, g);
  EXPECT_EQ(Bignum::cmp(sum2.x, g.x), 0);
  EXPECT_TRUE(c.add(inf, inf).infinity);
  EXPECT_TRUE(c.mul(Bignum(5), inf).infinity);
  EXPECT_TRUE(c.mul(Bignum(0), g).infinity);
}

TEST_P(PrimeCurveTest, PointCodecRoundTrip) {
  const EcCurve& c = *GetParam();
  const EcPoint p = c.mul_base(Bignum(12345));
  const Bytes enc = c.encode_point(p);
  EXPECT_EQ(enc.size(), 1 + 2 * c.field_bytes());
  EXPECT_EQ(enc[0], 0x04);
  auto dec = c.decode_point(enc);
  ASSERT_TRUE(dec.is_ok());
  EXPECT_EQ(Bignum::cmp(dec.value().x, p.x), 0);
  EXPECT_EQ(Bignum::cmp(dec.value().y, p.y), 0);
}

TEST_P(PrimeCurveTest, DecodeRejectsOffCurvePoint) {
  const EcCurve& c = *GetParam();
  Bytes enc = c.encode_point(c.generator());
  enc[enc.size() - 1] ^= 0x01;  // corrupt y
  EXPECT_FALSE(c.decode_point(enc).is_ok());
}

TEST_P(PrimeCurveTest, DecodeRejectsBadFormat) {
  const EcCurve& c = *GetParam();
  EXPECT_FALSE(c.decode_point(Bytes{0x04, 0x01}).is_ok());
  Bytes enc = c.encode_point(c.generator());
  enc[0] = 0x02;  // compressed not supported
  EXPECT_FALSE(c.decode_point(enc).is_ok());
}

TEST_P(PrimeCurveTest, EcdhAgreement) {
  const EcCurve& c = *GetParam();
  HmacDrbg rng = make_test_drbg(101);
  const EcKeyPair alice = ec_generate_key(c, rng);
  const EcKeyPair bob = ec_generate_key(c, rng);
  auto s1 = ecdh_shared_secret(c, alice.priv, bob.pub);
  auto s2 = ecdh_shared_secret(c, bob.priv, alice.pub);
  ASSERT_TRUE(s1.is_ok());
  ASSERT_TRUE(s2.is_ok());
  EXPECT_EQ(s1.value(), s2.value());
  EXPECT_EQ(s1.value().size(), c.field_bytes());
}

TEST_P(PrimeCurveTest, EcdhRejectsInfinity) {
  const EcCurve& c = *GetParam();
  HmacDrbg rng = make_test_drbg(102);
  const EcKeyPair alice = ec_generate_key(c, rng);
  EXPECT_FALSE(
      ecdh_shared_secret(c, alice.priv, EcPoint::at_infinity()).is_ok());
}

TEST_P(PrimeCurveTest, EcdsaSignVerify) {
  const EcCurve& c = *GetParam();
  HmacDrbg rng = make_test_drbg(103);
  const EcKeyPair key = ec_generate_key(c, rng);
  const Bytes digest = sha256(to_bytes("sign me"));
  const EcdsaSignature sig = ecdsa_sign(c, key.priv, digest, rng);
  EXPECT_TRUE(ecdsa_verify(c, key.pub, digest, sig).is_ok());
}

TEST_P(PrimeCurveTest, EcdsaRejectsWrongMessage) {
  const EcCurve& c = *GetParam();
  HmacDrbg rng = make_test_drbg(104);
  const EcKeyPair key = ec_generate_key(c, rng);
  const EcdsaSignature sig =
      ecdsa_sign(c, key.priv, sha256(to_bytes("original")), rng);
  EXPECT_FALSE(
      ecdsa_verify(c, key.pub, sha256(to_bytes("forged")), sig).is_ok());
}

TEST_P(PrimeCurveTest, EcdsaRejectsWrongKey) {
  const EcCurve& c = *GetParam();
  HmacDrbg rng = make_test_drbg(105);
  const EcKeyPair key = ec_generate_key(c, rng);
  const EcKeyPair other = ec_generate_key(c, rng);
  const Bytes digest = sha256(to_bytes("msg"));
  const EcdsaSignature sig = ecdsa_sign(c, key.priv, digest, rng);
  EXPECT_FALSE(ecdsa_verify(c, other.pub, digest, sig).is_ok());
}

TEST_P(PrimeCurveTest, EcdsaRejectsOutOfRange) {
  const EcCurve& c = *GetParam();
  HmacDrbg rng = make_test_drbg(106);
  const EcKeyPair key = ec_generate_key(c, rng);
  const Bytes digest = sha256(to_bytes("msg"));
  EcdsaSignature sig = ecdsa_sign(c, key.priv, digest, rng);
  sig.r = c.order();
  EXPECT_FALSE(ecdsa_verify(c, key.pub, digest, sig).is_ok());
  sig.r = Bignum();
  EXPECT_FALSE(ecdsa_verify(c, key.pub, digest, sig).is_ok());
}

TEST(Ec, SignatureCodecRoundTrip) {
  const EcCurve& c = curve_p256();
  HmacDrbg rng = make_test_drbg(107);
  const EcKeyPair key = ec_generate_key(c, rng);
  const Bytes digest = sha256(to_bytes("codec"));
  const EcdsaSignature sig = ecdsa_sign(c, key.priv, digest, rng);
  auto decoded = EcdsaSignature::decode(sig.encode(), c);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().r, sig.r);
  EXPECT_EQ(decoded.value().s, sig.s);
}

TEST(Ec, CurveNames) {
  EXPECT_STREQ(curve_name(CurveId::kP256), "P-256");
  EXPECT_STREQ(curve_name(CurveId::kK409), "K-409");
  EXPECT_FALSE(curve_is_binary(CurveId::kP384));
  EXPECT_TRUE(curve_is_binary(CurveId::kB283));
}

TEST(Ec, KeystoreKeysValid) {
  EXPECT_TRUE(curve_p256().on_curve(test_ec_key_p256().pub));
  EXPECT_TRUE(curve_p384().on_curve(test_ec_key_p384().pub));
}

}  // namespace
}  // namespace qtls
