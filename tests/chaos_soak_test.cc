// Chaos/soak harness: sustained load against a QAT device model that is
// actively misbehaving under a seeded FaultPlan. Two scenarios:
//
//  1. A 4-worker WorkerPool over real TCP loopback with transient errors
//     and dropped responses on the asymmetric op kinds. Every connection
//     must complete (via retry or software fallback) with zero client
//     errors, zero hangs and no leaked inflight slots; firmware counters
//     must conserve: requests - responses == injected drops.
//
//  2. A multi-threaded memory-transport soak — one engine provider per
//     thread on a shared device — with error/drop/stall rates on every op
//     kind plus a device reset fired mid-run. Engine accounting must
//     conserve: submitted == completed + deadline expiries, per engine.
//
// Iteration count scales with QTLS_FAULT_SOAK_ITERS (CMake cache knob):
// short in tier-1, long under -DQTLS_SANITIZE=thread soaks.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <csignal>

#include "client/https_client.h"
#include "crypto/keystore.h"
#include "obs/metrics.h"
#include "qat/fault.h"
#include "server/control.h"
#include "server/worker_pool.h"
#include "tls_test_util.h"

#ifndef QTLS_FAULT_SOAK_ITERS
#define QTLS_FAULT_SOAK_ITERS 40
#endif

namespace qtls::server {
namespace {

constexpr int kSoakIters = QTLS_FAULT_SOAK_ITERS;

// Conf for the control plane riding the faulty-device soak: overload knobs
// mirror the test's own (the first applied generation must not tighten the
// deadlines the soak depends on), and the wedge threshold is generous so a
// starved-but-alive worker under sanitizers is never a false positive.
constexpr char kChaosControlConf[] = R"(
worker_processes 4;
overload {
    handshake_timeout_ms 60000;
    idle_timeout_ms 60000;
    write_stall_timeout_ms 60000;
}
control {
    heartbeat_interval_ms 100;
    missed_windows 50;
    eject_grace_ms 2000;
    supervise on;
}
credentials {
    rsa 2048;
}
)";

constexpr qat::OpKind kAsymKinds[] = {
    qat::OpKind::kRsa2048Priv,
    qat::OpKind::kRsa2048Pub,
    qat::OpKind::kEcP256,
    qat::OpKind::kEcP384,
};

uint64_t total_fw_responses(qat::QatDevice& device) {
  uint64_t responses = 0;
  for (int i = 0; i < device.num_endpoints(); ++i) {
    const qat::FwCounters fw = device.endpoint(i).fw_counters();
    responses += fw.responses[0] + fw.responses[1] + fw.responses[2];
  }
  return responses;
}

uint64_t total_fw_requests(qat::QatDevice& device) {
  uint64_t requests = 0;
  for (int i = 0; i < device.num_endpoints(); ++i)
    requests += device.endpoint(i).fw_counters().total_requests();
  return requests;
}

TEST(ChaosSoak, WorkerPoolSurvivesFaultyDevice) {
  qat::FaultPlan plan(/*seed=*/2026);
  qat::FaultRates asym_rates;
  asym_rates.error_rate = 0.05;  // 5% transient CPA failures
  asym_rates.drop_rate = 0.001;  // 1 in 1000 responses vanish
  for (qat::OpKind kind : kAsymKinds) plan.set_rates(kind, asym_rates);
  // Deterministic minimum chaos regardless of how the rate draws land: the
  // first RSA sign errors, the third's response is dropped.
  plan.schedule(qat::OpKind::kRsa2048Priv, 1, qat::FaultKind::kError);
  plan.schedule(qat::OpKind::kRsa2048Priv, 3, qat::FaultKind::kDrop);

  qat::DeviceConfig dcfg;
  dcfg.num_endpoints = 2;
  dcfg.engines_per_endpoint = 8;
  dcfg.fault_plan = &plan;
  qat::QatDevice device(dcfg);

  WorkerPoolOptions options;
  options.workers = 4;
  options.tls_config.async_mode = true;
  options.tls_config.cipher_suites = {
      tls::CipherSuite::kEcdheRsaWithAes128CbcSha};
  options.engine_config.op_deadline_us = 20'000;
  options.engine_config.max_retries = 3;
  options.engine_config.breaker_cooldown_ms = 50;
  options.engine_config.sw_fallback_on_device_error = true;
  // Connection deadlines armed throughout the soak (generous enough never
  // to fire under sanitizers): every accept arms and every completion
  // cancels a timer-wheel entry while the fault plan misbehaves — the
  // overload plane must stay TSan-clean and must not cost a single request.
  options.worker_config.overload.handshake_timeout_ms = 60'000;
  options.worker_config.overload.idle_timeout_ms = 60'000;
  options.worker_config.overload.write_stall_timeout_ms = 60'000;

  // The self-healing control plane rides the soak: the real supervisor
  // thread scores heartbeats while the device misbehaves, and periodic
  // SIGHUPs hot-reload the conf mid-chaos. Everything must still complete
  // with zero errors and zero (false-positive) worker restarts.
  ControlPlane control;
  ASSERT_TRUE(control.load(kChaosControlConf).is_ok());
  options.worker_config.control = &control;

  const uint64_t timeouts_before =
      obs::MetricsRegistry::global().snapshot().counter_value(
          "overload.handshake_timeout");

  WorkerPool pool(&device, &test_rsa2048(), options);
  ASSERT_TRUE(pool.start(0).is_ok());
  control.attach(&pool);
  control.install_sighup();
  control.start_supervisor();
  const uint16_t port = pool.port();

  engine::SoftwareProvider client_provider;
  tls::TlsContextConfig ccfg;
  ccfg.cipher_suites = options.tls_config.cipher_suites;
  tls::TlsContext cctx(ccfg, &client_provider);

  client::Pool clients;
  const uint64_t per_client =
      static_cast<uint64_t>(std::max(1, kSoakIters / 10));
  for (int i = 0; i < 8; ++i) {
    client::ClientOptions copts;
    copts.max_requests = per_client;
    copts.keepalive = i % 2 == 0;
    clients.add(std::make_unique<client::HttpsClient>(
        &cctx,
        [port]() -> int {
          auto fd = net::tcp_connect(port);
          return fd.is_ok() ? fd.value() : -1;
        },
        copts, 5000 + static_cast<uint64_t>(i)));
  }

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  auto next_sighup =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(100);
  bool all_done = false;
  while (!all_done && std::chrono::steady_clock::now() < deadline) {
    all_done = true;
    for (auto& c : clients.clients()) {
      if (c->step()) all_done = false;
    }
    if (std::chrono::steady_clock::now() >= next_sighup) {
      std::raise(SIGHUP);  // hot reload mid-chaos, served by the supervisor
      next_sighup += std::chrono::milliseconds(100);
    }
  }
  // One final deferred reload, then wait for the supervisor to serve it so
  // the SIGHUP path is exercised at least once even on a fast machine.
  control.request_reload();
  const auto reload_settle =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (control.stats().reloads < 2 &&
         std::chrono::steady_clock::now() < reload_settle) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  control.stop_supervisor();
  pool.stop();
  ASSERT_TRUE(all_done) << "soak hung: clients never finished under faults";

  // The reloads landed cleanly and the watchdog never misfired: a soak this
  // busy is the false-positive stress for the wedge detector.
  EXPECT_GE(control.stats().reloads, 2u);
  EXPECT_EQ(control.stats().reload_failures, 0u);
  EXPECT_EQ(control.stats().wedge_events, 0u);
  EXPECT_EQ(pool.total_worker_restarts(), 0u);

  // Every request completed despite the chaos — retries and software
  // fallback absorbed all of it.
  const client::ClientStats cstats = clients.aggregate();
  EXPECT_EQ(cstats.errors, 0u);
  EXPECT_EQ(cstats.requests, per_client * 8);
  const WorkerPoolStats wstats = pool.stats();
  EXPECT_EQ(wstats.totals.requests_served, per_client * 8);
  EXPECT_EQ(wstats.totals.errors, 0u);
  EXPECT_EQ(wstats.totals.async_failures, 0u);
  // The armed deadlines never fired: retries and fallback kept every
  // connection inside the (generous) handshake budget.
  EXPECT_EQ(obs::MetricsRegistry::global().snapshot().counter_value(
                "overload.handshake_timeout"),
            timeouts_before);

  // The plan actually did something.
  const qat::FaultCounters& fcnt = plan.counters();
  EXPECT_GE(fcnt.injected_total(), 2u);
  EXPECT_GE(fcnt.injected_drops.load(), 1u);

  // Counter conservation: engines may still be finishing abandoned ops
  // right after stop(), so give the gap a moment to settle at exactly the
  // injected drop count (drops are the only requests that never produce a
  // response stripe).
  const auto settle = std::chrono::steady_clock::now() +
                      std::chrono::seconds(10);
  while (total_fw_requests(device) - total_fw_responses(device) !=
             fcnt.injected_drops.load() &&
         std::chrono::steady_clock::now() < settle) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(total_fw_requests(device) - total_fw_responses(device),
            fcnt.injected_drops.load());
}

TEST(ChaosSoak, ThreadedHandshakeSoakConservesCounters) {
  qat::FaultPlan plan(/*seed=*/4096);
  qat::FaultRates rates;
  rates.error_rate = 0.02;
  rates.drop_rate = 0.002;
  rates.stall_rate = 0.01;
  rates.stall_ns = 500'000;  // 0.5 ms engine stall, inside the deadline
  plan.set_rates_all(rates);
  // One guaranteed reset-style failure even if the timed reset window below
  // lands after the soak finished on a fast machine.
  plan.schedule(qat::OpKind::kRsa2048Priv, 5, qat::FaultKind::kReset);

  qat::DeviceConfig dcfg;
  dcfg.num_endpoints = 2;
  dcfg.engines_per_endpoint = 8;
  dcfg.fault_plan = &plan;
  qat::QatDevice device(dcfg);

  constexpr int kThreads = 4;
  std::atomic<uint64_t> failed_handshakes{0};
  std::atomic<uint64_t> failed_echoes{0};
  std::vector<std::unique_ptr<engine::QatEngineProvider>> engines;
  for (int t = 0; t < kThreads; ++t) {
    engine::QatEngineConfig ecfg;
    ecfg.offload_mode = engine::OffloadMode::kAsync;
    ecfg.op_deadline_us = 20'000;
    ecfg.max_retries = 2;
    ecfg.breaker_cooldown_ms = 50;
    engines.push_back(std::make_unique<engine::QatEngineProvider>(
        device.allocate_instance(), ecfg));
  }

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      engine::QatEngineProvider* qat_engine = engines[static_cast<size_t>(t)]
                                                  .get();
      tls::TlsContextConfig scfg;
      scfg.is_server = true;
      scfg.async_mode = true;
      scfg.cipher_suites = {tls::CipherSuite::kTlsRsaWithAes128CbcSha};
      scfg.drbg_seed = 100 + static_cast<uint64_t>(t);
      tls::TlsContext server_ctx(scfg, qat_engine);
      server_ctx.credentials().rsa_key = &test_rsa2048();

      engine::SoftwareProvider client_provider(
          static_cast<uint64_t>(200 + t));
      tls::TlsContextConfig ccfg;
      ccfg.cipher_suites = scfg.cipher_suites;
      ccfg.drbg_seed = 300 + static_cast<uint64_t>(t);
      tls::TlsContext client_ctx(ccfg, &client_provider);

      for (int i = 0; i < kSoakIters; ++i) {
        net::MemoryPipe pipe;
        tls::TlsConnection server(&server_ctx, &pipe.b());
        tls::TlsConnection client(&client_ctx, &pipe.a());
        const auto result = tls::testutil::pump_handshake(
            &client, &server, qat_engine, /*max_iters=*/5'000'000);
        if (!result.ok) {
          ++failed_handshakes;
          continue;
        }
        // One echo through the (possibly degraded) cipher path.
        if (tls::testutil::pump_write(&server, to_bytes("chaos"),
                                      qat_engine) != tls::TlsResult::kOk) {
          ++failed_echoes;
          continue;
        }
        Bytes got;
        if (tls::testutil::pump_read(&client, &got) != tls::TlsResult::kOk ||
            to_string(got) != "chaos") {
          ++failed_echoes;
        }
      }
    });
  }

  // Mid-soak device reset: every op in flight (and every new one) fails
  // with kDeviceReset until the window closes; breakers open, fallback
  // carries the load, re-probes recover afterwards.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  plan.trigger_reset();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  plan.clear_reset();

  for (auto& th : threads) th.join();

  // Zero hangs, zero failed connections: everything completed via device,
  // retry or fallback.
  EXPECT_EQ(failed_handshakes.load(), 0u);
  EXPECT_EQ(failed_echoes.load(), 0u);

  // Per-engine accounting conservation: every submission was either
  // retrieved or written off as a deadline expiry; no inflight slot leaked,
  // no deadline registration leaked.
  for (auto& eng : engines) {
    const engine::QatEngineStats& st = eng->stats();
    EXPECT_EQ(st.submitted, st.completed + st.deadline_expiries);
    EXPECT_EQ(eng->inflight_total(), 0u);
    EXPECT_EQ(eng->pending_deadline_ops(), 0u);
  }
  EXPECT_GT(plan.counters().injected_total(), 0u);
  EXPECT_GT(plan.counters().reset_failures.load(), 0u);
}

}  // namespace
}  // namespace qtls::server
