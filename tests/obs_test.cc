// Observability-plane unit tests (src/obs): interning, shard-and-merge
// under concurrency, snapshot-while-writing, the no-allocation recording
// contract, lifecycle trace plumbing, and the live GET /stats endpoint.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

#include "crypto/keystore.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server_test_util.h"

// ---------------------------------------------------------------------------
// Counting allocator hook: global operator new/delete tallies allocations so
// the no-allocation recording contract is a hard regression, not a comment.
// ---------------------------------------------------------------------------

namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace qtls {
namespace {

#if !QTLS_OBS_ENABLED

// Whole-tree -DQTLS_OBS=OFF build: the enabled-plane behaviors below are
// compiled out (tests/obs_noop_test.cc covers the disabled contract).
TEST(ObsTest, SkippedObservabilityBuiltOut) { SUCCEED(); }

#else

using obs::MetricsRegistry;
using obs::MetricsSnapshot;

// ------------------------------------------------------------ interning ----

TEST(MetricsRegistry, InterningAssignsStableIds) {
  MetricsRegistry reg;
  obs::Counter a = reg.counter("requests");
  obs::Counter b = reg.counter("errors");
  obs::Counter a2 = reg.counter("requests");
  EXPECT_EQ(a.id(), a2.id());
  EXPECT_NE(a.id(), b.id());
  EXPECT_EQ(reg.num_counters(), 2u);

  obs::Histogram h = reg.histogram("latency");
  obs::Histogram h2 = reg.histogram("latency");
  EXPECT_EQ(h.id(), h2.id());
  EXPECT_EQ(reg.num_histograms(), 1u);

  // Counter/gauge/histogram namespaces are independent.
  obs::Gauge g = reg.gauge("requests");
  (void)g;
  EXPECT_EQ(reg.num_gauges(), 1u);
  EXPECT_EQ(reg.num_counters(), 2u);
}

TEST(MetricsRegistry, RegistrationBeyondCapClampsToLastId) {
  MetricsRegistry reg;
  obs::Gauge last;
  for (size_t i = 0; i < MetricsRegistry::kMaxGauges + 8; ++i)
    last = reg.gauge("g" + std::to_string(i));
  EXPECT_EQ(reg.num_gauges(), MetricsRegistry::kMaxGauges);
  EXPECT_EQ(last.id(), static_cast<uint32_t>(MetricsRegistry::kMaxGauges - 1));
  last.set(7);  // must not write out of bounds
  (void)reg.snapshot();
}

// ---------------------------------------------------------- shard merge ----

TEST(MetricsRegistry, ShardMergeAcrossEightThreads) {
  MetricsRegistry reg;
  obs::Counter ops = reg.counter("ops");
  obs::Gauge queue = reg.gauge("queue_depth");
  obs::Histogram lat = reg.histogram("lat");

  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        ops.add(1);
        lat.record(1'000 + i % 64);
      }
      queue.set(t);  // per-thread contribution; snapshot sums
    });
  }
  for (auto& t : threads) t.join();

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_value("ops"), kThreads * kPerThread);
  const LatencyHistogram* h = snap.histogram("lat");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), kThreads * kPerThread);
  EXPECT_GE(h->max_nanos(), 1'000u);
  EXPECT_EQ(reg.num_shards(), static_cast<size_t>(kThreads));
  // Gauges sum across shards: 0+1+...+7.
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, 0 + 1 + 2 + 3 + 4 + 5 + 6 + 7);
}

TEST(MetricsRegistry, SnapshotWhileWriting) {
  MetricsRegistry reg;
  obs::Counter ops = reg.counter("ops");
  obs::Histogram lat = reg.histogram("lat");

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> written{0};
  std::thread writer([&] {
    uint64_t n = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ops.add(1);
      lat.record(500);
      ++n;
    }
    written.store(n, std::memory_order_release);
  });

  // Concurrent snapshots must observe monotonically non-decreasing,
  // never-torn values per metric. (Different metrics are summed at
  // different instants, so no cross-metric ordering is guaranteed.)
  uint64_t prev_ops = 0, prev_lat = 0;
  for (int i = 0; i < 200; ++i) {
    const MetricsSnapshot snap = reg.snapshot();
    const uint64_t v = snap.counter_value("ops");
    EXPECT_GE(v, prev_ops);
    prev_ops = v;
    const LatencyHistogram* h = snap.histogram("lat");
    ASSERT_NE(h, nullptr);
    EXPECT_GE(h->count(), prev_lat);
    prev_lat = h->count();
  }
  stop.store(true);
  writer.join();

  const MetricsSnapshot final_snap = reg.snapshot();
  EXPECT_EQ(final_snap.counter_value("ops"),
            written.load(std::memory_order_acquire));
  EXPECT_EQ(final_snap.histogram("lat")->count(),
            written.load(std::memory_order_acquire));
}

TEST(MetricsRegistry, ResetZeroesAllCells) {
  MetricsRegistry reg;
  obs::Counter c = reg.counter("c");
  obs::Histogram h = reg.histogram("h");
  c.add(42);
  h.record(1234);
  reg.reset();
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_value("c"), 0u);
  EXPECT_EQ(snap.histogram("h")->count(), 0u);
}

// ------------------------------------------------------- no-allocation ----

TEST(MetricsRegistry, RecordPathDoesNotAllocate) {
  MetricsRegistry reg;
  obs::Counter c = reg.counter("hot_counter");
  obs::Gauge g = reg.gauge("hot_gauge");
  obs::Histogram h = reg.histogram("hot_hist");
  // Warm-up: the first record on a thread creates its shard (the only
  // allocation the record path may ever trigger).
  c.add(1);
  g.set(1);
  h.record(1);

  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (uint64_t i = 0; i < 50'000; ++i) {
    c.add(1);
    g.add(1);
    h.record(i % 100'000);
  }
  const uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "metrics record path allocated";
}

TEST(LatencyHistogram, RecordAndSummaryDoNotAllocateOnRecordPath) {
  LatencyHistogram h;
  h.record(1);  // buckets are sized at construction; nothing grows later
  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (uint64_t i = 0; i < 100'000; ++i) h.record(i);
  const uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "LatencyHistogram::record allocated";
  // summary() runs on the reader side and may allocate its string, but must
  // not disturb recorded state.
  const std::string s = h.summary();
  EXPECT_NE(s.find("p50"), std::string::npos);
  EXPECT_EQ(h.count(), 100'001u);
}

// ----------------------------------------------------------- tracing ----

TEST(Trace, SamplePeriodRoundsToPowerOfTwo) {
  obs::set_trace_sample_period(3);
  EXPECT_EQ(obs::trace_sample_period(), 4u);
  obs::set_trace_sample_period(64);
  EXPECT_EQ(obs::trace_sample_period(), 64u);
  obs::set_trace_sample_period(0);
  EXPECT_EQ(obs::trace_sample_period(), 0u);
  obs::TraceStamps t;
  obs::trace_begin(t);
  EXPECT_FALSE(t.sampled);  // period 0: tracing disabled
  obs::set_trace_sample_period(64);  // restore default
}

TEST(Trace, StampsAndRingRoundTrip) {
  obs::set_trace_sample_period(1);
  obs::trace_ring_clear();

  obs::TraceStamps t;
  obs::trace_begin_at(t, 100);
  ASSERT_TRUE(t.sampled);
  t.stamp_at(obs::Stage::kRingEnqueue, 100);
  t.stamp_at(obs::Stage::kEngineClaim, 150);
  t.stamp_at(obs::Stage::kServiceStart, 150);
  t.stamp_at(obs::Stage::kServiceDone, 450);
  t.stamp_at(obs::Stage::kPollDrain, 500);
  obs::record_pipeline(t, /*request_id=*/77, /*op_class_idx=*/0,
                       /*sim=*/true);

  const auto records = obs::trace_ring_snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].request_id, 77u);
  EXPECT_EQ(records[0].op_class, 0);
  EXPECT_TRUE(records[0].sim);
  EXPECT_EQ(records[0].ts[static_cast<size_t>(obs::Stage::kServiceDone)] -
                records[0].ts[static_cast<size_t>(obs::Stage::kServiceStart)],
            300u);

  // The per-stage histograms got the deltas.
  const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
  const LatencyHistogram* service = snap.histogram("sim.qat.stage.service");
  ASSERT_NE(service, nullptr);
  EXPECT_GE(service->count(), 1u);

  obs::trace_ring_clear();
  EXPECT_TRUE(obs::trace_ring_snapshot().empty());
  obs::set_trace_sample_period(64);
}

TEST(Trace, UnsampledRequestsRecordNothing) {
  obs::set_trace_sample_period(0);
  obs::trace_ring_clear();
  obs::TraceStamps t;
  obs::trace_begin(t);
  EXPECT_FALSE(t.sampled);
  t.stamp_at(obs::Stage::kRingEnqueue, 5);  // no-op when unsampled
  EXPECT_EQ(t[obs::Stage::kRingEnqueue], 0u);
  obs::record_pipeline(t, 1, 0, false);
  EXPECT_TRUE(obs::trace_ring_snapshot().empty());
  obs::set_trace_sample_period(64);
}

// ------------------------------------------------------- GET /stats e2e ----

TEST(StatsEndpoint, LiveWorkerServesStatsJson) {
  using namespace qtls::server;
  obs::set_trace_sample_period(1);  // deterministic: every op traced

  qat::DeviceConfig dcfg;
  dcfg.num_endpoints = 1;
  dcfg.engines_per_endpoint = 8;
  qat::QatDevice device(dcfg);

  engine::QatEngineConfig qcfg;
  qcfg.offload_mode = engine::OffloadMode::kAsync;
  engine::QatEngineProvider qat(device.allocate_instance(), qcfg);

  tls::TlsContextConfig scfg;
  scfg.is_server = true;
  scfg.drbg_seed = 1;
  scfg.async_mode = true;
  tls::TlsContext server_ctx(scfg, &qat);
  server_ctx.credentials().rsa_key = &test_rsa2048();
  server_ctx.credentials().ecdsa_p256 = &test_ec_key_p256();
  server_ctx.credentials().ecdsa_p384 = &test_ec_key_p384();

  engine::SoftwareProvider client_provider(99);
  tls::TlsContextConfig ccfg;
  ccfg.drbg_seed = 2;
  tls::TlsContext client_ctx(ccfg, &client_provider);

  WorkerConfig wcfg;
  wcfg.notify = NotifyScheme::kKernelBypass;
  wcfg.poll = PollScheme::kHeuristic;
  Worker worker(&server_ctx, &qat, wcfg);

  client::Pool pool;
  client::ClientOptions copts;
  copts.path = "/stats";
  copts.max_requests = 1;
  pool.add(std::make_unique<client::HttpsClient>(
      &client_ctx, testutil::socketpair_connector(&worker), copts));

  ASSERT_TRUE(testutil::run_to_completion(&worker, &pool));
  ASSERT_EQ(pool.aggregate().errors, 0u);
  EXPECT_EQ(worker.stats().requests_served, 1u);

  client::HttpsClient* c = pool.clients().front().get();
  const std::string body(c->last_body().begin(), c->last_body().end());
  // Worker counters, engine fault/fallback counters, breaker states, and
  // the registry snapshot (per-stage histograms) are all present.
  EXPECT_NE(body.find("\"worker\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"requests_served\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"engine\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"sw_fallbacks\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"breaker\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"asym\":\"closed\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"metrics\""), std::string::npos) << body;
  EXPECT_NE(body.find("qat.engine.submitted"), std::string::npos) << body;
  // The handshake offloaded at least one op with tracing on, so the
  // real-plane per-stage histograms exist in the snapshot.
  EXPECT_NE(body.find("qat.stage.total"), std::string::npos) << body;
  obs::set_trace_sample_period(64);
}

#endif  // QTLS_OBS_ENABLED

}  // namespace
}  // namespace qtls
