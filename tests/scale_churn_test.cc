// Scale churn soak (DESIGN.md §14, S4 of the scale pass): hammer the slab
// allocator and timer wheel with connect/handshake/close-shaped churn in
// virtual time, and drive real TLS connections through a worker, asserting
// after every cycle that pool occupancy returns exactly to its prior value
// — the conservation invariant that turns "no leak" from a hope into an
// assert. Run under -DQTLS_SANITIZE=address and =thread (`ctest -L scale`);
// the multi-pool test exercises the one-pool-per-thread discipline while
// the registry is snapshotted concurrently.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/slab.h"
#include "crypto/keystore.h"
#include "net/timer_wheel.h"
#include "server/worker.h"
#include "tls_test_util.h"

#ifndef QTLS_SCALE_CHURN_CYCLES
#define QTLS_SCALE_CHURN_CYCLES 100000
#endif

namespace qtls {
namespace {

// A connection-shaped payload: a couple of buffers and a timer link, the
// same mix the worker's Conn slab carries.
struct FakeConn {
  Bytes rx;
  Bytes scratch;
  net::TimerWheel::TimerId deadline = 0;
  uint64_t id = 0;
};

// One virtual-time connect/handshake/close churn loop on a private pool +
// wheel. Every cycle allocates a conn and a handshake deadline, "completes"
// or "times out" the handshake, then frees both — and the pool must land on
// exactly the occupancy it started the cycle with.
void churn_loop(size_t cycles, uint64_t seed, size_t* peak_capacity) {
  common::SlabPool<FakeConn> pool;
  net::TimerWheel wheel(/*tick_ms=*/10, /*num_slots=*/256);
  uint64_t vnow = 1;
  uint64_t rng = seed;
  auto next = [&rng] {
    rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
    return rng >> 33;
  };
  std::vector<FakeConn*> live;  // a small keepalive population
  size_t capacity_at_warmup = 0;

  for (size_t i = 0; i < cycles; ++i) {
    const size_t live_before = pool.live();
    FakeConn* conn = pool.create();
    conn->id = i;
    conn->rx.resize(64 + next() % 512);  // handshake flight
    conn->scratch.resize(256);
    bool timed_out = false;
    conn->deadline = wheel.arm(vnow, 50 + next() % 200,
                               [&timed_out] { timed_out = true; });
    vnow += next() % 40;
    wheel.advance(vnow);
    if (!timed_out) (void)wheel.cancel(conn->deadline);
    conn->deadline = 0;
    // Established: shed the handshake-phase buffers (the S2 discipline).
    conn->scratch.clear();
    conn->scratch.shrink_to_fit();
    // Most connections close immediately; some linger as keepalives.
    if (next() % 8 == 0 && live.size() < 64) {
      live.push_back(conn);
      ASSERT_EQ(pool.live(), live_before + 1);
    } else {
      pool.destroy(conn);
      ASSERT_EQ(pool.live(), live_before);
    }
    // Keepalive churn: occasionally close the oldest lingerer.
    if (!live.empty() && next() % 16 == 0) {
      pool.destroy(live.front());
      live.erase(live.begin());
    }
    if (i == cycles / 10) capacity_at_warmup = pool.capacity();
  }
  for (FakeConn* conn : live) pool.destroy(conn);
  live.clear();

  // Zero leak, balanced books, and no unbounded slab growth after warmup
  // (the keepalive population is bounded, so the carved capacity is too).
  ASSERT_EQ(pool.live(), 0u);
  const common::SlabStats s = pool.stats();
  ASSERT_EQ(s.total_allocs, s.total_frees);
  ASSERT_EQ(s.total_allocs, static_cast<uint64_t>(cycles));
  ASSERT_LE(pool.capacity(), capacity_at_warmup + 256);
  if (peak_capacity) *peak_capacity = pool.capacity();
  ASSERT_EQ(wheel.armed(), 0u);
}

TEST(ScaleChurn, HundredThousandCyclesConserveOccupancy) {
  size_t peak = 0;
  churn_loop(QTLS_SCALE_CHURN_CYCLES, 42, &peak);
  EXPECT_GT(peak, 0u);
}

// One pool per thread (the worker discipline) while another thread reads
// the global registry — the TSan case: relaxed-atomic counters may be
// approximate mid-flight but must never race.
TEST(ScaleChurn, PerThreadPoolsWithConcurrentRegistrySnapshots) {
  constexpr int kThreads = 4;
  std::atomic<bool> done{false};
  std::thread snapshotter([&done] {
    uint64_t reads = 0;
    while (!done.load(std::memory_order_acquire)) {
      const common::SlabStats totals =
          common::SlabRegistry::global().totals();
      (void)totals;
      (void)common::SlabRegistry::global().to_json();
      ++reads;
    }
    EXPECT_GT(reads, 0u);
  });
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      // Named pools so the snapshotter actually sees them (registration and
      // deregistration race with snapshots by design).
      common::SlabPool<FakeConn> pool(
          "scale.churn" + std::to_string(t), 128);
      uint64_t rng = 1000 + static_cast<uint64_t>(t);
      std::vector<FakeConn*> live;
      for (size_t i = 0; i < QTLS_SCALE_CHURN_CYCLES / kThreads; ++i) {
        rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
        if ((rng >> 33) % 3 != 0 || live.empty()) {
          live.push_back(pool.create());
        } else {
          pool.destroy(live.back());
          live.pop_back();
        }
      }
      for (FakeConn* conn : live) pool.destroy(conn);
      ASSERT_EQ(pool.live(), 0u);
    });
  }
  for (auto& w : workers) w.join();
  done.store(true, std::memory_order_release);
  snapshotter.join();
}

// Real-stack churn: repeated connect/handshake/close cycles through a
// Worker. After every close, the server.conn / server.hs_scratch pools must
// be back at their pre-cycle occupancy (scratch released at established,
// conn slot released at close), and at teardown everything is back to zero.
TEST(ScaleChurn, WorkerSlabConservationAcrossRealCycles) {
  engine::SoftwareProvider server_provider{3};
  tls::TlsContextConfig scfg;
  scfg.is_server = true;
  scfg.cipher_suites = {tls::CipherSuite::kTlsRsaWithAes128CbcSha};
  scfg.drbg_seed = 1;
  auto server_ctx = std::make_unique<tls::TlsContext>(scfg, &server_provider);
  server_ctx->credentials().rsa_key = &test_rsa2048();

  engine::SoftwareProvider client_provider{99};
  tls::TlsContextConfig ccfg;
  ccfg.cipher_suites = scfg.cipher_suites;
  ccfg.drbg_seed = 2;
  auto client_ctx = std::make_unique<tls::TlsContext>(ccfg, &client_provider);

  uint64_t vnow = 1000;
  server::WorkerConfig wcfg;
  wcfg.clock = [&vnow] { return vnow; };
  auto worker =
      std::make_unique<server::Worker>(server_ctx.get(), nullptr, wcfg);

  auto server_pool_live = [] {
    return common::SlabRegistry::global().totals("server.").live;
  };
  const size_t live_baseline = server_pool_live();

  constexpr int kRealCycles = 60;
  for (int cycle = 0; cycle < kRealCycles; ++cycle) {
    auto pair = net::make_socketpair();
    ASSERT_TRUE(pair.is_ok());
    ASSERT_TRUE(worker->adopt(pair.value().second).is_ok());
    net::SocketTransport transport(pair.value().first);
    tls::TlsConnection client(client_ctx.get(), &transport);
    bool established = false;
    for (int i = 0; i < 200 && !established; ++i) {
      const tls::TlsResult r = client.handshake();
      worker->run_once(0);
      established = r == tls::TlsResult::kOk && client.handshake_complete();
    }
    ASSERT_TRUE(established) << "cycle " << cycle;
#if QTLS_SLAB_STATS_ENABLED
    // One conn slot live, its scratch already released at established.
    EXPECT_EQ(common::SlabRegistry::global().totals("server.conn").live, 1u);
    EXPECT_EQ(
        common::SlabRegistry::global().totals("server.hs_scratch").live, 0u);
#endif
    (void)client.shutdown();
    ::close(pair.value().first);
    for (int i = 0; i < 50 && worker->alive_connections() > 0; ++i) {
      vnow += 10;
      worker->run_once(0);
    }
    ASSERT_EQ(worker->alive_connections(), 0u) << "cycle " << cycle;
    ASSERT_EQ(server_pool_live(), live_baseline) << "cycle " << cycle;
  }
  EXPECT_EQ(worker->stats().handshakes_completed,
            static_cast<uint64_t>(kRealCycles));
  worker.reset();  // pools destroyed empty — a live slot here would assert
}

}  // namespace
}  // namespace qtls
