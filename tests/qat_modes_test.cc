// Extensions of the device/engine model beyond the headline path:
// interrupt-style response delivery (§2.3's alternative to polling) and
// multi-instance engine binding (§2.3: one process, several instances from
// different endpoints).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "crypto/keystore.h"
#include "engine/qat_engine.h"

namespace qtls {
namespace {

TEST(InterruptDelivery, CallbackFiresWithoutPolling) {
  qat::DeviceConfig cfg;
  cfg.num_endpoints = 1;
  cfg.engines_per_endpoint = 2;
  cfg.delivery = qat::ResponseDelivery::kInterrupt;
  qat::QatDevice device(cfg);
  qat::CryptoInstance* inst = device.allocate_instance();

  std::atomic<int> delivered{0};
  qat::CryptoRequest req;
  req.kind = qat::OpKind::kPrfTls12;
  req.compute = [] { return true; };
  req.on_response = [&delivered](const qat::CryptoResponse& r) {
    EXPECT_TRUE(r.success);
    delivered.fetch_add(1);
  };
  ASSERT_TRUE(inst->submit(req));

  // No poll() call anywhere: the engine thread delivers directly.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (delivered.load() == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::yield();
  EXPECT_EQ(delivered.load(), 1);
  EXPECT_EQ(inst->inflight(), 0u);
  EXPECT_EQ(device.fw_counters().responses[static_cast<int>(
                qat::OpClass::kPrf)],
            1u);
  EXPECT_EQ(inst->poll(), 0u);  // nothing queued in interrupt mode
}

TEST(InterruptDelivery, SyncEngineOffloadCompletes) {
  // The blocking engine path works unchanged: `done` flips from the
  // interrupt context instead of a poll.
  qat::DeviceConfig cfg;
  cfg.num_endpoints = 1;
  cfg.engines_per_endpoint = 2;
  cfg.delivery = qat::ResponseDelivery::kInterrupt;
  qat::QatDevice device(cfg);
  engine::QatEngineConfig qcfg;
  qcfg.offload_mode = engine::OffloadMode::kSync;
  qcfg.self_poll_when_blocking = false;  // nothing to poll: interrupts
  engine::QatEngineProvider qat(device.allocate_instance(), qcfg);

  auto out = qat.prf_tls12(HashAlg::kSha256, to_bytes("k"), "label",
                           to_bytes("s"), 32);
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(out.value(), tls12_prf(HashAlg::kSha256, to_bytes("k"), "label",
                                   to_bytes("s"), 32));
}

TEST(MultiInstance, RequestsSpreadAcrossEndpoints) {
  qat::DeviceConfig cfg;
  cfg.num_endpoints = 2;
  cfg.engines_per_endpoint = 2;
  qat::QatDevice device(cfg);
  qat::CryptoInstance* a = device.allocate_instance();
  qat::CryptoInstance* b = device.allocate_instance();
  ASSERT_NE(a->endpoint(), b->endpoint());

  engine::QatEngineConfig qcfg;
  qcfg.offload_mode = engine::OffloadMode::kSync;
  engine::QatEngineProvider qat({a, b}, qcfg);

  for (int i = 0; i < 6; ++i) {
    auto out = qat.prf_tls12(HashAlg::kSha256, to_bytes("k"), "l",
                             Bytes{static_cast<uint8_t>(i)}, 16);
    ASSERT_TRUE(out.is_ok());
  }
  // Round-robin: both endpoints served requests.
  EXPECT_EQ(a->endpoint()->fw_counters().requests[2], 3u);
  EXPECT_EQ(b->endpoint()->fw_counters().requests[2], 3u);
}

TEST(MultiInstance, AsyncOffloadsUseAllInstances) {
  qat::DeviceConfig cfg;
  cfg.num_endpoints = 3;
  cfg.engines_per_endpoint = 2;
  qat::QatDevice device(cfg);
  std::vector<qat::CryptoInstance*> instances = {device.allocate_instance(),
                                                 device.allocate_instance(),
                                                 device.allocate_instance()};
  engine::QatEngineConfig qcfg;
  engine::QatEngineProvider qat(instances, qcfg);
  const RsaPrivateKey& key = test_rsa1024();

  constexpr int kJobs = 6;
  asyncx::AsyncJob* jobs[kJobs] = {};
  asyncx::WaitCtx wctxs[kJobs];
  int rets[kJobs] = {};
  auto make_fn = [&](int i) {
    return [&, i]() -> int {
      auto sig = qat.rsa_sign(key, sha256(Bytes{static_cast<uint8_t>(i)}));
      return sig.is_ok() ? 1 : -1;
    };
  };
  for (int i = 0; i < kJobs; ++i)
    ASSERT_EQ(asyncx::start_job(&jobs[i], &wctxs[i], &rets[i], make_fn(i)),
              asyncx::JobStatus::kPaused);
  EXPECT_EQ(qat.inflight_total(), static_cast<size_t>(kJobs));

  int done = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (done < kJobs && std::chrono::steady_clock::now() < deadline) {
    qat.poll();  // drains all three instances
    for (int i = 0; i < kJobs; ++i) {
      if (!jobs[i]) continue;
      if (asyncx::start_job(&jobs[i], &wctxs[i], &rets[i], nullptr) ==
          asyncx::JobStatus::kFinished) {
        EXPECT_EQ(rets[i], 1);
        ++done;
      }
    }
  }
  EXPECT_EQ(done, kJobs);
  // Every instance's endpoint saw exactly two of the six requests.
  for (qat::CryptoInstance* inst : instances)
    EXPECT_EQ(inst->endpoint()->fw_counters().requests[0], 2u);
}

}  // namespace
}  // namespace qtls
