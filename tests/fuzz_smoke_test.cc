// Deterministic mutation-fuzz smoke harness (DESIGN.md §10): seeded Rng
// mutations of valid TLS handshake bytes, raw record frames and HTTP
// requests are thrown at a live Worker. Three invariants, checked after
// every iteration:
//
//   1. never crashes (the harness runs under ASan/TSan in sanitizer CI);
//   2. never leaks a slot — connection, handshake and idle accounting all
//      return to zero once the peer is gone;
//   3. always ends in close-or-alert — every byte the server emits is a
//      well-formed TLS record frame; hostile input produces an alert or a
//      plain close, never garbage or a wedged connection.
//
// Iteration count scales with QTLS_FUZZ_ITERS (CMake cache knob): short in
// tier-1, long under -DQTLS_SANITIZE=... soaks. Select with `ctest -L fuzz`.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <string>

#include "common/rng.h"
#include "crypto/keystore.h"
#include "net/memory_transport.h"
#include "server/worker.h"
#include "server_test_util.h"

#ifndef QTLS_FUZZ_ITERS
#define QTLS_FUZZ_ITERS 100
#endif

namespace qtls::server {
namespace {

constexpr int kFuzzIters = QTLS_FUZZ_ITERS;

// Worker under fuzz: software provider (every entry point settles in one
// run_once), virtual clock (deadlines fire only when the harness advances
// time), all three deadline kinds armed so the timer wheel is part of the
// fuzz surface.
struct FuzzRig {
  engine::SoftwareProvider server_provider{3};
  std::unique_ptr<tls::TlsContext> server_ctx;
  engine::SoftwareProvider client_provider{99};
  std::unique_ptr<tls::TlsContext> client_ctx;
  std::unique_ptr<Worker> worker;
  uint64_t vnow = 1000;

  FuzzRig() {
    tls::TlsContextConfig scfg;
    scfg.is_server = true;
    scfg.cipher_suites = {tls::CipherSuite::kTlsRsaWithAes128CbcSha};
    scfg.drbg_seed = 1;
    server_ctx = std::make_unique<tls::TlsContext>(scfg, &server_provider);
    server_ctx->credentials().rsa_key = &test_rsa2048();

    tls::TlsContextConfig ccfg;
    ccfg.cipher_suites = scfg.cipher_suites;
    ccfg.drbg_seed = 2;
    client_ctx = std::make_unique<tls::TlsContext>(ccfg, &client_provider);

    WorkerConfig wcfg;
    wcfg.overload.handshake_timeout_ms = 4000;
    wcfg.overload.idle_timeout_ms = 8000;
    wcfg.overload.write_stall_timeout_ms = 4000;
    wcfg.clock = [this] { return vnow; };
    worker = std::make_unique<Worker>(server_ctx.get(), nullptr, wcfg);
  }

  int adopt_pair() {
    auto pair = net::make_socketpair();
    if (!pair.is_ok()) return -1;
    (void)worker->adopt(pair.value().second);
    return pair.value().first;
  }

  // Invariant 2: after the peer is gone, all accounting returns to zero.
  // Bounded settle loop — a wedge here IS the bug the harness hunts.
  void assert_settled(const char* what, int iter) {
    for (int i = 0; i < 1000 && worker->alive_connections() > 0; ++i) {
      worker->run_once(0);
      if (i % 100 == 99) vnow += 10000;  // deadlines mop up stragglers
    }
    ASSERT_EQ(worker->alive_connections(), 0u) << what << " iter " << iter;
    ASSERT_EQ(worker->handshaking_connections(), 0u) << what << " iter "
                                                     << iter;
    ASSERT_EQ(worker->idle_connections(), 0u) << what << " iter " << iter;
  }
};

// Invariant 3: everything the server sent parses as TLS record frames
// (a trailing partial frame is fine — the close can land mid-record).
void assert_frames_wellformed(const Bytes& rx, const char* what, int iter) {
  size_t off = 0;
  while (rx.size() - off >= 5) {
    const uint8_t type = rx[off];
    const size_t len = (static_cast<size_t>(rx[off + 3]) << 8) | rx[off + 4];
    ASSERT_TRUE(type >= 20 && type <= 23)
        << what << " iter " << iter << ": bad content type "
        << static_cast<int>(type) << " at offset " << off;
    ASSERT_EQ(rx[off + 1], 3) << what << " iter " << iter;
    ASSERT_LE(len, 16384u + 2048u) << what << " iter " << iter;
    if (rx.size() - off - 5 < len) break;  // partial tail
    off += 5 + len;
  }
}

// Drains whatever the server wrote without blocking.
void drain_fd(int fd, Bytes* rx) {
  uint8_t buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) return;
    rx->insert(rx->end(), buf, buf + n);
  }
}

// One valid first-flight ClientHello, captured from a pristine client.
Bytes capture_client_hello(tls::TlsContext* ctx) {
  net::MemoryPipe pipe;
  tls::TlsConnection client(ctx, &pipe.a());
  (void)client.handshake();
  Bytes out(pipe.b().readable());
  (void)pipe.b().read(out.data(), out.size());
  return out;
}

// Seeded mutators over a valid seed buffer.
Bytes mutate(Rng& rng, const Bytes& seed) {
  Bytes out = seed;
  switch (rng.uniform(6)) {
    case 0:  // bit flips
      for (uint64_t i = 0, n = 1 + rng.uniform(8); i < n && !out.empty(); ++i)
        out[rng.uniform(out.size())] ^= static_cast<uint8_t>(
            1u << rng.uniform(8));
      break;
    case 1:  // truncate
      if (!out.empty()) out.resize(rng.uniform(out.size()));
      break;
    case 2: {  // duplicate a slice
      if (out.empty()) break;
      const size_t at = rng.uniform(out.size());
      const size_t len = 1 + rng.uniform(out.size() - at);
      out.insert(out.begin() + static_cast<long>(at), out.begin() +
                 static_cast<long>(at), out.begin() +
                 static_cast<long>(at + len));
      break;
    }
    case 3: {  // splice random bytes into the middle
      const Bytes junk = rng.bytes(1 + rng.uniform(64));
      const size_t at = out.empty() ? 0 : rng.uniform(out.size());
      out.insert(out.begin() + static_cast<long>(at), junk.begin(),
                 junk.end());
      break;
    }
    case 4:  // pure garbage
      out = rng.bytes(1 + rng.uniform(512));
      break;
    case 5:  // valid prefix + garbage tail
      if (!out.empty()) out.resize(1 + rng.uniform(out.size()));
      {
        const Bytes junk = rng.bytes(rng.uniform(128));
        out.insert(out.end(), junk.begin(), junk.end());
      }
      break;
  }
  return out;
}

TEST(FuzzSmoke, MutatedHandshakeStreams) {
  FuzzRig rig;
  const Bytes hello = capture_client_hello(rig.client_ctx.get());
  ASSERT_GT(hello.size(), 5u);

  Rng rng(0xF00D);
  for (int iter = 0; iter < kFuzzIters; ++iter) {
    const int fd = rig.adopt_pair();
    ASSERT_GE(fd, 0);
    const Bytes input = mutate(rng, hello);
    // Feed in random-sized chunks with worker steps in between, so the
    // mutation also exercises reassembly boundaries.
    size_t off = 0;
    while (off < input.size()) {
      const size_t n = std::min<size_t>(1 + rng.uniform(256),
                                        input.size() - off);
      if (::send(fd, input.data() + off, n, MSG_NOSIGNAL) <= 0) break;
      off += n;
      rig.worker->run_once(0);
    }
    for (int i = 0; i < 20; ++i) rig.worker->run_once(0);
    // Occasionally let a deadline (not the peer) end the connection.
    if (rng.uniform(4) == 0) {
      rig.vnow += 5000;
      rig.worker->run_once(0);
    }
    Bytes rx;
    drain_fd(fd, &rx);
    assert_frames_wellformed(rx, "handshake", iter);
    ::close(fd);
    rig.assert_settled("handshake", iter);
  }
}

TEST(FuzzSmoke, MutatedRecordFramesPostHandshake) {
  FuzzRig rig;
  Rng rng(0xBEEF);
  // A plausible-but-unauthenticated application record as the mutation seed:
  // correct header framing, random ciphertext. Every descendant must bounce
  // off the record layer as an alert (bad_record_mac / record_overflow /
  // decode_error), never as a crash.
  Bytes seed_record = {0x17, 0x03, 0x03, 0x00, 0x40};
  {
    const Bytes body = rng.bytes(0x40);
    seed_record.insert(seed_record.end(), body.begin(), body.end());
  }

  for (int iter = 0; iter < kFuzzIters; ++iter) {
    const int fd = rig.adopt_pair();
    ASSERT_GE(fd, 0);
    net::SocketTransport transport(fd);
    tls::TlsConnection client(rig.client_ctx.get(), &transport);
    bool complete = false;
    for (int i = 0; i < 200 && !complete; ++i) {
      const tls::TlsResult r = client.handshake();
      rig.worker->run_once(0);
      complete = r == tls::TlsResult::kOk && client.handshake_complete();
    }
    ASSERT_TRUE(complete) << "iter " << iter;

    // Raw mutated frames injected underneath the TLS client.
    for (uint64_t k = 0, n = 1 + rng.uniform(4); k < n; ++k) {
      const Bytes frame = mutate(rng, seed_record);
      if (!frame.empty() &&
          ::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL) <= 0)
        break;
      rig.worker->run_once(0);
    }
    for (int i = 0; i < 20; ++i) rig.worker->run_once(0);
    Bytes rx;
    drain_fd(fd, &rx);
    assert_frames_wellformed(rx, "record", iter);
    ::close(fd);
    rig.assert_settled("record", iter);
  }
}

TEST(FuzzSmoke, MutatedHttpRequestsThroughValidTls) {
  FuzzRig rig;
  Rng rng(0xCAFE);

  for (int iter = 0; iter < kFuzzIters; ++iter) {
    const int fd = rig.adopt_pair();
    ASSERT_GE(fd, 0);
    net::SocketTransport transport(fd);
    tls::TlsConnection client(rig.client_ctx.get(), &transport);
    bool complete = false;
    for (int i = 0; i < 200 && !complete; ++i) {
      const tls::TlsResult r = client.handshake();
      rig.worker->run_once(0);
      complete = r == tls::TlsResult::kOk && client.handshake_complete();
    }
    ASSERT_TRUE(complete) << "iter " << iter;

    // Mutated HTTP: sometimes valid, sometimes header bombs that must trip
    // the parser caps (431 + close), sometimes binary noise.
    std::string req;
    switch (rng.uniform(5)) {
      case 0:
        req = "GET /index.html HTTP/1.1\r\n\r\n";
        break;
      case 1: {  // oversized single header (> max_header_bytes)
        req = "GET / HTTP/1.1\r\nX-Bomb: " +
              std::string(9000 + rng.uniform(4000), 'a') + "\r\n\r\n";
        break;
      }
      case 2: {  // header-count bomb
        req = "GET / HTTP/1.1\r\n";
        for (int i = 0; i < 150; ++i)
          req += "X-" + std::to_string(i) + ": v\r\n";
        req += "\r\n";
        break;
      }
      case 3: {  // binary noise
        const Bytes junk = rng.bytes(1 + rng.uniform(256));
        req.assign(junk.begin(), junk.end());
        req += "\r\n\r\n";
        break;
      }
      case 4:  // request-line torture, no terminator
        req = std::string(1 + rng.uniform(64), ' ') + "\rGET\n/ HTTP/9.9";
        break;
    }
    Bytes payload(req.begin(), req.end());
    size_t off = 0;
    int guard = 0;
    while (off < payload.size() && guard++ < 1000) {
      const size_t n = std::min<size_t>(4096, payload.size() - off);
      const tls::TlsResult r = client.write(
          BytesView(payload.data() + off, n));
      if (r == tls::TlsResult::kOk) off += n;
      else if (r != tls::TlsResult::kWantWrite) break;  // server gave up
      rig.worker->run_once(0);
    }
    for (int i = 0; i < 20; ++i) rig.worker->run_once(0);
    Bytes rx;
    drain_fd(fd, &rx);
    assert_frames_wellformed(rx, "http", iter);
    ::close(fd);
    rig.assert_settled("http", iter);
  }
}

}  // namespace
}  // namespace qtls::server
