#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <vector>

#include "net/event_loop.h"
#include "net/memory_transport.h"
#include "net/socket_transport.h"
#include "net/timer_wheel.h"

namespace qtls::net {
namespace {

TEST(MemoryPipeTest, DuplexTransfer) {
  MemoryPipe pipe;
  const Bytes msg = to_bytes("a to b");
  auto w = pipe.a().write(msg.data(), msg.size());
  EXPECT_EQ(w.status, tls::IoStatus::kOk);
  EXPECT_EQ(w.bytes, msg.size());
  EXPECT_EQ(pipe.b().readable(), msg.size());

  uint8_t buf[64];
  auto r = pipe.b().read(buf, sizeof(buf));
  EXPECT_EQ(r.status, tls::IoStatus::kOk);
  EXPECT_EQ(to_string(BytesView(buf, r.bytes)), "a to b");

  // Other direction independent.
  const Bytes msg2 = to_bytes("b to a");
  pipe.b().write(msg2.data(), msg2.size());
  EXPECT_EQ(pipe.a().readable(), msg2.size());
  EXPECT_EQ(pipe.b().readable(), 0u);
}

TEST(MemoryPipeTest, WouldBlockOnEmpty) {
  MemoryPipe pipe;
  uint8_t buf[8];
  EXPECT_EQ(pipe.a().read(buf, sizeof(buf)).status,
            tls::IoStatus::kWouldBlock);
}

TEST(MemoryPipeTest, CapacityBackpressure) {
  MemoryPipe pipe;
  pipe.set_capacity(4);
  const Bytes msg = to_bytes("0123456789");
  auto w = pipe.a().write(msg.data(), msg.size());
  EXPECT_EQ(w.status, tls::IoStatus::kOk);
  EXPECT_EQ(w.bytes, 4u);  // truncated to capacity
  auto w2 = pipe.a().write(msg.data(), msg.size());
  EXPECT_EQ(w2.status, tls::IoStatus::kWouldBlock);
}

TEST(MemoryPipeTest, CloseSemantics) {
  MemoryPipe pipe;
  const Bytes msg = to_bytes("last");
  pipe.a().write(msg.data(), msg.size());
  pipe.close_side(0);
  // Peer drains buffered bytes, then sees clean EOF.
  uint8_t buf[8];
  auto r = pipe.b().read(buf, sizeof(buf));
  EXPECT_EQ(r.status, tls::IoStatus::kOk);
  EXPECT_EQ(pipe.b().read(buf, sizeof(buf)).status, tls::IoStatus::kClosed);
  // Writes from the closed side fail.
  EXPECT_EQ(pipe.a().write(msg.data(), msg.size()).status,
            tls::IoStatus::kError);
}

// Minimal transport without a native writev: every write is capped at
// `cap` bytes and consults a budget, exercising the base-class writev
// loop-fallback cursor (partial totals, would-block precedence).
class CappedWriteTransport final : public tls::Transport {
 public:
  CappedWriteTransport(size_t cap, size_t budget)
      : cap_(cap), budget_(budget) {}

  tls::IoResult read(uint8_t*, size_t) override {
    return {tls::IoStatus::kWouldBlock, 0};
  }
  tls::IoResult write(const uint8_t* buf, size_t len) override {
    if (budget_ == 0) return {tls::IoStatus::kWouldBlock, 0};
    const size_t n = std::min({len, cap_, budget_});
    budget_ -= n;
    sunk_.insert(sunk_.end(), buf, buf + n);
    return {tls::IoStatus::kOk, n};
  }

  void refill(size_t budget) { budget_ = budget; }
  const Bytes& sunk() const { return sunk_; }

 private:
  size_t cap_;
  size_t budget_;
  Bytes sunk_;
};

TEST(TransportWritevTest, LoopFallbackAdvancesCursorAcrossSegments) {
  // Three segments, 4+4+4 bytes; per-call cap 4 with budget 8: the loop
  // must take the first two segments whole and stop with a partial total.
  CappedWriteTransport t(/*cap=*/4, /*budget=*/8);
  const Bytes a = to_bytes("aaaa"), b = to_bytes("bbbb"), c = to_bytes("cccc");
  struct iovec iov[3] = {{const_cast<uint8_t*>(a.data()), a.size()},
                         {const_cast<uint8_t*>(b.data()), b.size()},
                         {const_cast<uint8_t*>(c.data()), c.size()}};
  auto r = t.writev(iov, 3);
  EXPECT_EQ(r.status, tls::IoStatus::kOk);
  EXPECT_EQ(r.bytes, 8u);
  EXPECT_EQ(to_string(t.sunk()), "aaaabbbb");

  // Exhausted budget: would-block with zero progress surfaces as-is.
  auto r2 = t.writev(iov, 3);
  EXPECT_EQ(r2.status, tls::IoStatus::kWouldBlock);
  EXPECT_EQ(r2.bytes, 0u);
}

TEST(TransportWritevTest, PartialProgressBeatsMidVectorWouldBlock) {
  // Budget runs dry inside segment 2: the call must report the bytes it
  // did move as kOk, not the would-block it hit afterwards.
  CappedWriteTransport t(/*cap=*/64, /*budget=*/6);
  const Bytes a = to_bytes("aaaa"), b = to_bytes("bbbb");
  struct iovec iov[2] = {{const_cast<uint8_t*>(a.data()), a.size()},
                         {const_cast<uint8_t*>(b.data()), b.size()}};
  auto r = t.writev(iov, 2);
  EXPECT_EQ(r.status, tls::IoStatus::kOk);
  EXPECT_EQ(r.bytes, 6u);
  EXPECT_EQ(to_string(t.sunk()), "aaaabb");
}

TEST(TransportWritevTest, ShortWriteStopsGatheringWithinCall) {
  // cap 3 < first segment: the loop takes a short write and stops without
  // touching segment 2 (no out-of-order bytes).
  CappedWriteTransport t(/*cap=*/3, /*budget=*/100);
  const Bytes a = to_bytes("aaaa"), b = to_bytes("bbbb");
  struct iovec iov[2] = {{const_cast<uint8_t*>(a.data()), a.size()},
                         {const_cast<uint8_t*>(b.data()), b.size()}};
  auto r = t.writev(iov, 2);
  EXPECT_EQ(r.status, tls::IoStatus::kOk);
  EXPECT_EQ(r.bytes, 3u);
  EXPECT_EQ(to_string(t.sunk()), "aaa");
}

TEST(TransportWritevTest, ZeroLengthSegmentsSkipped) {
  CappedWriteTransport t(/*cap=*/64, /*budget=*/64);
  const Bytes a = to_bytes("xy");
  struct iovec iov[3] = {{nullptr, 0},
                         {const_cast<uint8_t*>(a.data()), a.size()},
                         {nullptr, 0}};
  auto r = t.writev(iov, 3);
  EXPECT_EQ(r.status, tls::IoStatus::kOk);
  EXPECT_EQ(r.bytes, 2u);
  EXPECT_EQ(to_string(t.sunk()), "xy");
}

TEST(MemoryPipeTest, WritevOneByteAtATimeDrain) {
  // chunk_limit 1: each writev call moves exactly one byte; a caller-side
  // cursor loop must reassemble the full message across iovec boundaries.
  MemoryPipe pipe;
  pipe.set_chunk_limit(1);
  const Bytes h = to_bytes("hel"), l = to_bytes("lo "), w = to_bytes("world");
  Bytes all;
  all.insert(all.end(), h.begin(), h.end());
  all.insert(all.end(), l.begin(), l.end());
  all.insert(all.end(), w.begin(), w.end());

  size_t cursor = 0;
  int calls = 0;
  while (cursor < all.size()) {
    // Rebuild the remaining iovec from the cursor, like the record plane's
    // TX path does after a partial write.
    struct iovec iov[3];
    int iovcnt = 0;
    size_t off = cursor;
    for (const Bytes* seg : {&h, &l, &w}) {
      if (off >= seg->size()) {
        off -= seg->size();
        continue;
      }
      iov[iovcnt].iov_base = const_cast<uint8_t*>(seg->data()) + off;
      iov[iovcnt].iov_len = seg->size() - off;
      ++iovcnt;
      off = 0;
    }
    auto r = pipe.a().writev(iov, iovcnt);
    ASSERT_EQ(r.status, tls::IoStatus::kOk);
    ASSERT_EQ(r.bytes, 1u);  // chunk_limit pins each call to one byte
    cursor += r.bytes;
    ++calls;
  }
  EXPECT_EQ(calls, 11);
  pipe.set_chunk_limit(0);  // chunk limit also paces reads; lift it to drain
  uint8_t buf[32];
  auto r = pipe.b().read(buf, sizeof(buf));
  ASSERT_EQ(r.status, tls::IoStatus::kOk);
  EXPECT_EQ(to_string(BytesView(buf, r.bytes)), "hello world");
}

TEST(SocketTransportTest, RoundTripAndClose) {
  auto pair = make_socketpair();
  ASSERT_TRUE(pair.is_ok());
  SocketTransport a(pair.value().first);
  {
    SocketTransport b(pair.value().second);
    const Bytes msg = to_bytes("over a socket");
    auto w = a.write(msg.data(), msg.size());
    EXPECT_EQ(w.status, tls::IoStatus::kOk);
    uint8_t buf[64];
    // Nonblocking: poll until bytes arrive.
    tls::IoResult r{tls::IoStatus::kWouldBlock, 0};
    for (int i = 0; i < 1000 && r.status == tls::IoStatus::kWouldBlock; ++i)
      r = b.read(buf, sizeof(buf));
    ASSERT_EQ(r.status, tls::IoStatus::kOk);
    EXPECT_EQ(to_string(BytesView(buf, r.bytes)), "over a socket");
    EXPECT_EQ(b.read(buf, sizeof(buf)).status, tls::IoStatus::kWouldBlock);
  }  // b closes
  uint8_t buf[8];
  tls::IoResult r{tls::IoStatus::kWouldBlock, 0};
  for (int i = 0; i < 1000 && r.status == tls::IoStatus::kWouldBlock; ++i)
    r = a.read(buf, sizeof(buf));
  EXPECT_EQ(r.status, tls::IoStatus::kClosed);
}

TEST(TcpListenerTest, EphemeralPortAcceptConnect) {
  TcpListener listener;
  ASSERT_TRUE(listener.listen(0).is_ok());
  ASSERT_GT(listener.port(), 0);
  auto fd = tcp_connect(listener.port());
  ASSERT_TRUE(fd.is_ok());
  int accepted = -1;
  for (int i = 0; i < 1000 && accepted < 0; ++i) {
    accepted = listener.accept_fd();
    if (accepted < 0) usleep(1000);
  }
  ASSERT_GE(accepted, 0);
  ::close(accepted);
  ::close(fd.value());
}

TEST(TcpListenerTest, ReuseportSharesPort) {
  TcpListener first, second;
  ASSERT_TRUE(first.listen(0, 512, /*reuseport=*/true).is_ok());
  EXPECT_TRUE(second.listen(first.port(), 512, /*reuseport=*/true).is_ok());
  // Without reuseport the same bind must fail.
  TcpListener third;
  EXPECT_FALSE(third.listen(first.port()).is_ok());
}

TEST(EventLoopTest, DispatchesReadAndWrite) {
  auto pair = make_socketpair();
  ASSERT_TRUE(pair.is_ok());
  const int a = pair.value().first;
  const int b = pair.value().second;

  EventLoop loop;
  int reads = 0, writes = 0;
  ASSERT_TRUE(loop.add(b, true, true, [&](FdEvents ev) {
    if (ev.readable) ++reads;
    if (ev.writable) ++writes;
  }).is_ok());
  EXPECT_TRUE(loop.watching(b));
  EXPECT_EQ(loop.watched_count(), 1u);

  // Socket is writable immediately.
  loop.run_once(10);
  EXPECT_GT(writes, 0);

  // Readable after the peer writes.
  const uint8_t byte = 1;
  ASSERT_EQ(::send(a, &byte, 1, 0), 1);
  reads = 0;
  for (int i = 0; i < 100 && reads == 0; ++i) loop.run_once(10);
  EXPECT_GT(reads, 0);

  // modify: drop write interest, keep read.
  ASSERT_TRUE(loop.modify(b, true, false).is_ok());
  writes = 0;
  loop.run_once(10);
  EXPECT_EQ(writes, 0);

  ASSERT_TRUE(loop.remove(b).is_ok());
  EXPECT_FALSE(loop.watching(b));
  ::close(a);
  ::close(b);
}

TEST(EventLoopTest, HandlerCanRemoveItself) {
  auto pair = make_socketpair();
  ASSERT_TRUE(pair.is_ok());
  const int a = pair.value().first;
  const int b = pair.value().second;
  EventLoop loop;
  int calls = 0;
  ASSERT_TRUE(loop.add(b, true, false, [&](FdEvents) {
    ++calls;
    (void)loop.remove(b);
  }).is_ok());
  const uint8_t byte = 1;
  ASSERT_EQ(::send(a, &byte, 1, 0), 1);
  for (int i = 0; i < 100 && calls == 0; ++i) loop.run_once(10);
  EXPECT_EQ(calls, 1);
  loop.run_once(10);  // no further dispatch: fd removed
  EXPECT_EQ(calls, 1);
  ::close(a);
  ::close(b);
}

TEST(TimerWheelTest, FiresAtDeadlineNotBefore) {
  TimerWheel wheel(/*tick_ms=*/4, /*num_slots=*/64);
  int fired = 0;
  wheel.arm(1000, 50, [&] { ++fired; });
  EXPECT_EQ(wheel.armed(), 1u);
  EXPECT_EQ(wheel.advance(1049), 0u);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(wheel.advance(1050), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(wheel.armed(), 0u);
  EXPECT_EQ(wheel.advance(2000), 0u);  // one-shot
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheelTest, ZeroDelayFiresOnNextAdvance) {
  TimerWheel wheel;
  int fired = 0;
  wheel.advance(500);  // establish the current tick
  wheel.arm(500, 0, [&] { ++fired; });
  EXPECT_EQ(wheel.advance(500), 1u);  // same now: still fires
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheelTest, CancelPreventsFire) {
  TimerWheel wheel;
  int fired = 0;
  const auto id = wheel.arm(0, 10, [&] { ++fired; });
  EXPECT_TRUE(wheel.cancel(id));
  EXPECT_FALSE(wheel.cancel(id));  // redundant cancel is safe
  EXPECT_EQ(wheel.armed(), 0u);
  EXPECT_EQ(wheel.advance(100), 0u);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(wheel.cancelled_total(), 1u);
  EXPECT_EQ(wheel.fired_total(), 0u);
}

TEST(TimerWheelTest, FutureRoundEntriesSurviveCollision) {
  // Two deadlines a full wheel revolution apart hash to the same slot; the
  // near one must fire without disturbing the far one.
  TimerWheel wheel(/*tick_ms=*/1, /*num_slots=*/8);
  std::vector<int> order;
  wheel.arm(0, 3, [&] { order.push_back(3); });
  wheel.arm(0, 3 + 8, [&] { order.push_back(11); });
  wheel.advance(3);
  ASSERT_EQ(order.size(), 1u);
  EXPECT_EQ(order[0], 3);
  EXPECT_EQ(wheel.armed(), 1u);
  wheel.advance(10);  // incremental walk passes other slots; nothing due
  EXPECT_EQ(order.size(), 1u);
  wheel.advance(11);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[1], 11);
}

TEST(TimerWheelTest, LargeClockJumpFiresEverythingDue) {
  // Virtual-time tests jump the clock by many revolutions at once.
  TimerWheel wheel(/*tick_ms=*/4, /*num_slots=*/16);
  int fired = 0;
  for (int i = 0; i < 50; ++i)
    wheel.arm(0, static_cast<uint64_t>(10 + i * 37), [&] { ++fired; });
  wheel.advance(0);
  EXPECT_EQ(fired, 0);
  wheel.advance(1'000'000);
  EXPECT_EQ(fired, 50);
  EXPECT_EQ(wheel.armed(), 0u);
}

TEST(TimerWheelTest, CallbackMayArmAndCancel) {
  TimerWheel wheel;
  int chained = 0;
  TimerWheel::TimerId victim = 0;
  victim = wheel.arm(0, 20, [&] { ADD_FAILURE() << "cancelled timer fired"; });
  wheel.arm(0, 10, [&] {
    // Cancel a peer already collected as due, and arm a follow-up.
    wheel.cancel(victim);
    wheel.arm(20, 5, [&] { ++chained; });
  });
  wheel.advance(20);  // both due; the callback kills the victim first
  EXPECT_EQ(chained, 0);
  wheel.advance(25);
  EXPECT_EQ(chained, 1);
}

TEST(TimerWheelTest, ArmCancelRearmSameTickFiresOnce) {
  // All three operations land on the same wheel tick: the cancelled
  // incarnation must not fire, the re-armed one must fire exactly once.
  TimerWheel wheel(/*tick_ms=*/4, /*num_slots=*/16);
  int stale = 0, fresh = 0;
  const auto id = wheel.arm(100, 8, [&] { ++stale; });
  EXPECT_TRUE(wheel.cancel(id));
  const auto id2 = wheel.arm(100, 8, [&] { ++fresh; });
  EXPECT_NE(id, id2);  // ids are never recycled within a wheel
  EXPECT_EQ(wheel.armed(), 1u);
  EXPECT_EQ(wheel.advance(108), 1u);
  EXPECT_EQ(stale, 0);
  EXPECT_EQ(fresh, 1);
  EXPECT_FALSE(wheel.cancel(id2));  // already fired
  EXPECT_EQ(wheel.advance(200), 0u);
  EXPECT_EQ(fresh, 1);
}

TEST(TimerWheelTest, DeadlineOnRotationBoundaryNotEarly) {
  // tick 4 x 8 slots = one 32 ms revolution. A deadline exactly one (and
  // two) revolutions out hashes to the *current* slot; it must neither
  // fire early when advance passes that slot this round nor be missed
  // when its round arrives.
  TimerWheel wheel(/*tick_ms=*/4, /*num_slots=*/8);
  int one_rev = 0, two_rev = 0;
  wheel.advance(0);  // pin the current tick
  wheel.arm(0, 32, [&] { ++one_rev; });
  wheel.arm(0, 64, [&] { ++two_rev; });

  // Walk right up to the boundary: nothing may fire at 31 ms even though
  // every slot, including the deadline's own, has been visited.
  EXPECT_EQ(wheel.advance(31), 0u);
  EXPECT_EQ(one_rev, 0);
  EXPECT_EQ(two_rev, 0);
  // Exactly on the boundary: the one-revolution timer fires, the
  // two-revolution co-resident survives untouched.
  EXPECT_EQ(wheel.advance(32), 1u);
  EXPECT_EQ(one_rev, 1);
  EXPECT_EQ(two_rev, 0);
  EXPECT_EQ(wheel.armed(), 1u);
  EXPECT_EQ(wheel.advance(63), 0u);
  EXPECT_EQ(wheel.advance(64), 1u);
  EXPECT_EQ(two_rev, 1);
}

TEST(TimerWheelTest, UntilNextBoundsSleep) {
  TimerWheel wheel;
  EXPECT_EQ(wheel.until_next(0), UINT64_MAX);
  wheel.arm(100, 40, [] {});
  wheel.arm(100, 90, [] {});
  EXPECT_EQ(wheel.until_next(100), 40u);
  EXPECT_EQ(wheel.until_next(135), 5u);
  EXPECT_EQ(wheel.until_next(140), 0u);  // already due
  EXPECT_EQ(wheel.until_next(170), 0u);
}

TEST(EventLoopTest, TimerFiresWithVirtualClock) {
  EventLoop loop;
  uint64_t now = 1000;
  loop.set_clock([&] { return now; });
  int fired = 0;
  loop.timers().arm(loop.now_ms(), 50, [&] { ++fired; });
  loop.run_once(0);
  EXPECT_EQ(fired, 0);
  now = 1050;
  loop.run_once(0);
  EXPECT_EQ(fired, 1);
}

TEST(EventLoopTest, SleepClampedToNextDeadline) {
  EventLoop loop;
  loop.timers().arm(loop.now_ms(), 20, [] {});
  const auto start = std::chrono::steady_clock::now();
  loop.run_once(-1);  // "forever" must wake for the timer
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            5000);
}

TEST(EventLoopTest, TimeoutReturnsZero) {
  EventLoop loop;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(loop.run_once(20), 0);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            15);
}

}  // namespace
}  // namespace qtls::net
