#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>

#include "net/event_loop.h"
#include "net/memory_transport.h"
#include "net/socket_transport.h"

namespace qtls::net {
namespace {

TEST(MemoryPipeTest, DuplexTransfer) {
  MemoryPipe pipe;
  const Bytes msg = to_bytes("a to b");
  auto w = pipe.a().write(msg.data(), msg.size());
  EXPECT_EQ(w.status, tls::IoStatus::kOk);
  EXPECT_EQ(w.bytes, msg.size());
  EXPECT_EQ(pipe.b().readable(), msg.size());

  uint8_t buf[64];
  auto r = pipe.b().read(buf, sizeof(buf));
  EXPECT_EQ(r.status, tls::IoStatus::kOk);
  EXPECT_EQ(to_string(BytesView(buf, r.bytes)), "a to b");

  // Other direction independent.
  const Bytes msg2 = to_bytes("b to a");
  pipe.b().write(msg2.data(), msg2.size());
  EXPECT_EQ(pipe.a().readable(), msg2.size());
  EXPECT_EQ(pipe.b().readable(), 0u);
}

TEST(MemoryPipeTest, WouldBlockOnEmpty) {
  MemoryPipe pipe;
  uint8_t buf[8];
  EXPECT_EQ(pipe.a().read(buf, sizeof(buf)).status,
            tls::IoStatus::kWouldBlock);
}

TEST(MemoryPipeTest, CapacityBackpressure) {
  MemoryPipe pipe;
  pipe.set_capacity(4);
  const Bytes msg = to_bytes("0123456789");
  auto w = pipe.a().write(msg.data(), msg.size());
  EXPECT_EQ(w.status, tls::IoStatus::kOk);
  EXPECT_EQ(w.bytes, 4u);  // truncated to capacity
  auto w2 = pipe.a().write(msg.data(), msg.size());
  EXPECT_EQ(w2.status, tls::IoStatus::kWouldBlock);
}

TEST(MemoryPipeTest, CloseSemantics) {
  MemoryPipe pipe;
  const Bytes msg = to_bytes("last");
  pipe.a().write(msg.data(), msg.size());
  pipe.close_side(0);
  // Peer drains buffered bytes, then sees clean EOF.
  uint8_t buf[8];
  auto r = pipe.b().read(buf, sizeof(buf));
  EXPECT_EQ(r.status, tls::IoStatus::kOk);
  EXPECT_EQ(pipe.b().read(buf, sizeof(buf)).status, tls::IoStatus::kClosed);
  // Writes from the closed side fail.
  EXPECT_EQ(pipe.a().write(msg.data(), msg.size()).status,
            tls::IoStatus::kError);
}

TEST(SocketTransportTest, RoundTripAndClose) {
  auto pair = make_socketpair();
  ASSERT_TRUE(pair.is_ok());
  SocketTransport a(pair.value().first);
  {
    SocketTransport b(pair.value().second);
    const Bytes msg = to_bytes("over a socket");
    auto w = a.write(msg.data(), msg.size());
    EXPECT_EQ(w.status, tls::IoStatus::kOk);
    uint8_t buf[64];
    // Nonblocking: poll until bytes arrive.
    tls::IoResult r{tls::IoStatus::kWouldBlock, 0};
    for (int i = 0; i < 1000 && r.status == tls::IoStatus::kWouldBlock; ++i)
      r = b.read(buf, sizeof(buf));
    ASSERT_EQ(r.status, tls::IoStatus::kOk);
    EXPECT_EQ(to_string(BytesView(buf, r.bytes)), "over a socket");
    EXPECT_EQ(b.read(buf, sizeof(buf)).status, tls::IoStatus::kWouldBlock);
  }  // b closes
  uint8_t buf[8];
  tls::IoResult r{tls::IoStatus::kWouldBlock, 0};
  for (int i = 0; i < 1000 && r.status == tls::IoStatus::kWouldBlock; ++i)
    r = a.read(buf, sizeof(buf));
  EXPECT_EQ(r.status, tls::IoStatus::kClosed);
}

TEST(TcpListenerTest, EphemeralPortAcceptConnect) {
  TcpListener listener;
  ASSERT_TRUE(listener.listen(0).is_ok());
  ASSERT_GT(listener.port(), 0);
  auto fd = tcp_connect(listener.port());
  ASSERT_TRUE(fd.is_ok());
  int accepted = -1;
  for (int i = 0; i < 1000 && accepted < 0; ++i) {
    accepted = listener.accept_fd();
    if (accepted < 0) usleep(1000);
  }
  ASSERT_GE(accepted, 0);
  ::close(accepted);
  ::close(fd.value());
}

TEST(TcpListenerTest, ReuseportSharesPort) {
  TcpListener first, second;
  ASSERT_TRUE(first.listen(0, 512, /*reuseport=*/true).is_ok());
  EXPECT_TRUE(second.listen(first.port(), 512, /*reuseport=*/true).is_ok());
  // Without reuseport the same bind must fail.
  TcpListener third;
  EXPECT_FALSE(third.listen(first.port()).is_ok());
}

TEST(EventLoopTest, DispatchesReadAndWrite) {
  auto pair = make_socketpair();
  ASSERT_TRUE(pair.is_ok());
  const int a = pair.value().first;
  const int b = pair.value().second;

  EventLoop loop;
  int reads = 0, writes = 0;
  ASSERT_TRUE(loop.add(b, true, true, [&](FdEvents ev) {
    if (ev.readable) ++reads;
    if (ev.writable) ++writes;
  }).is_ok());
  EXPECT_TRUE(loop.watching(b));
  EXPECT_EQ(loop.watched_count(), 1u);

  // Socket is writable immediately.
  loop.run_once(10);
  EXPECT_GT(writes, 0);

  // Readable after the peer writes.
  const uint8_t byte = 1;
  ASSERT_EQ(::send(a, &byte, 1, 0), 1);
  reads = 0;
  for (int i = 0; i < 100 && reads == 0; ++i) loop.run_once(10);
  EXPECT_GT(reads, 0);

  // modify: drop write interest, keep read.
  ASSERT_TRUE(loop.modify(b, true, false).is_ok());
  writes = 0;
  loop.run_once(10);
  EXPECT_EQ(writes, 0);

  ASSERT_TRUE(loop.remove(b).is_ok());
  EXPECT_FALSE(loop.watching(b));
  ::close(a);
  ::close(b);
}

TEST(EventLoopTest, HandlerCanRemoveItself) {
  auto pair = make_socketpair();
  ASSERT_TRUE(pair.is_ok());
  const int a = pair.value().first;
  const int b = pair.value().second;
  EventLoop loop;
  int calls = 0;
  ASSERT_TRUE(loop.add(b, true, false, [&](FdEvents) {
    ++calls;
    (void)loop.remove(b);
  }).is_ok());
  const uint8_t byte = 1;
  ASSERT_EQ(::send(a, &byte, 1, 0), 1);
  for (int i = 0; i < 100 && calls == 0; ++i) loop.run_once(10);
  EXPECT_EQ(calls, 1);
  loop.run_once(10);  // no further dispatch: fd removed
  EXPECT_EQ(calls, 1);
  ::close(a);
  ::close(b);
}

TEST(EventLoopTest, TimeoutReturnsZero) {
  EventLoop loop;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(loop.run_once(20), 0);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            15);
}

}  // namespace
}  // namespace qtls::net
