#include <gtest/gtest.h>

#include <chrono>
#include <atomic>
#include <thread>

#include "crypto/keystore.h"
#include "engine/qat_engine.h"
#include "engine/stack_engine.h"

namespace qtls::engine {
namespace {

qat::DeviceConfig small_device() {
  qat::DeviceConfig cfg;
  cfg.num_endpoints = 1;
  cfg.engines_per_endpoint = 2;
  return cfg;
}

void poll_until_ready(StackAsyncEngine& engine, const StackAsyncOp& op) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (op.idle() == false &&
         std::chrono::steady_clock::now() < deadline) {
    if (engine.poll() > 0) return;
    std::this_thread::yield();
  }
}

TEST(StackEngine, Figure5HappyPath) {
  qat::QatDevice device(small_device());
  StackAsyncEngine engine(device.allocate_instance());
  const RsaPrivateKey& key = test_rsa1024();
  const Bytes digest = sha256(to_bytes("stack async"));

  StackAsyncOp op;
  Bytes signature;
  auto compute = [&key, digest]() -> Result<Bytes> {
    Bytes sig = rsa_sign_pkcs1(key, digest);
    if (sig.empty()) return err(Code::kInternal, "sign failed");
    return sig;
  };

  // First entry: submission, pause.
  ASSERT_EQ(engine.run(&op, qat::OpKind::kRsa2048Priv, compute, &signature),
            StackStep::kPaused);
  // Re-entry before retrieval: still paused (the "inflight" flag).
  EXPECT_EQ(engine.run(&op, qat::OpKind::kRsa2048Priv, compute, &signature),
            StackStep::kPaused);

  poll_until_ready(engine, op);

  // Re-entry after the response: jumps over submission, consumes result.
  ASSERT_EQ(engine.run(&op, qat::OpKind::kRsa2048Priv, compute, &signature),
            StackStep::kDone);
  EXPECT_TRUE(rsa_verify_pkcs1(key.pub, digest, signature).is_ok());
  EXPECT_TRUE(op.idle());  // flag reset: the slot is reusable
  EXPECT_EQ(engine.submitted(), 1u);
}

TEST(StackEngine, ComputeFailureSurfacesAsError) {
  qat::QatDevice device(small_device());
  StackAsyncEngine engine(device.allocate_instance());
  StackAsyncOp op;
  Bytes out;
  auto failing = []() -> Result<Bytes> {
    return err(Code::kCryptoError, "boom");
  };
  ASSERT_EQ(engine.run(&op, qat::OpKind::kPrfTls12, failing, &out),
            StackStep::kPaused);
  poll_until_ready(engine, op);
  EXPECT_EQ(engine.run(&op, qat::OpKind::kPrfTls12, failing, &out),
            StackStep::kError);
  EXPECT_EQ(op.status().code(), Code::kCryptoError);
}

TEST(StackEngine, RingFullRetryPath) {
  qat::DeviceConfig cfg = small_device();
  cfg.engines_per_endpoint = 1;
  cfg.ring_capacity = 2;
  qat::QatDevice device(cfg);
  StackAsyncEngine engine(device.allocate_instance());

  // Saturate the 2-slot ring with slow computations.
  std::atomic<bool> release{false};
  auto slow = [&release]() -> Result<Bytes> {
    while (!release.load()) std::this_thread::yield();
    return Bytes{1};
  };
  std::vector<std::unique_ptr<StackAsyncOp>> ops;
  int paused = 0, retried = 0;
  for (int i = 0; i < 8; ++i) {
    ops.push_back(std::make_unique<StackAsyncOp>());
    const StackStep step =
        engine.run(ops.back().get(), qat::OpKind::kPrfTls12, slow, nullptr);
    if (step == StackStep::kPaused) ++paused;
    if (step == StackStep::kRetry) ++retried;
  }
  EXPECT_GT(retried, 0);
  EXPECT_GT(engine.ring_full_events(), 0u);

  release.store(true);
  // Drive everything to completion, re-entering retry-flagged ops.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  int done = 0;
  while (done < 8 && std::chrono::steady_clock::now() < deadline) {
    engine.poll();
    done = 0;
    for (auto& op : ops) {
      Bytes out;
      const StackStep step =
          engine.run(op.get(), qat::OpKind::kPrfTls12, slow, &out);
      if (step == StackStep::kDone || (op->idle() && step != StackStep::kRetry))
        ++done;
    }
  }
  EXPECT_EQ(done, 8);
}

TEST(StackEngine, NotifiesWaitCtx) {
  qat::QatDevice device(small_device());
  StackAsyncEngine engine(device.allocate_instance());
  asyncx::WaitCtx wctx;
  int notified = 0;
  wctx.set_callback([](void* arg) { ++*static_cast<int*>(arg); }, &notified);

  StackAsyncOp op;
  auto compute = []() -> Result<Bytes> { return Bytes{42}; };
  ASSERT_EQ(engine.run(&op, qat::OpKind::kPrfTls12, compute, nullptr, &wctx),
            StackStep::kPaused);
  poll_until_ready(engine, op);
  EXPECT_EQ(notified, 1);
  Bytes out;
  EXPECT_EQ(engine.run(&op, qat::OpKind::kPrfTls12, compute, &out),
            StackStep::kDone);
  EXPECT_EQ(out, Bytes{42});
}

TEST(StackEngine, MatchesFiberAsyncResults) {
  // Both §4.1 implementations must compute identical results.
  qat::QatDevice device(small_device());
  StackAsyncEngine stack_engine(device.allocate_instance());
  QatEngineConfig qcfg;
  qcfg.offload_mode = OffloadMode::kSync;  // fiber-less reference path
  QatEngineProvider fiber_engine(device.allocate_instance(), qcfg);

  const Bytes secret = to_bytes("secret");
  const Bytes seed = to_bytes("seed");
  auto compute = [&]() -> Result<Bytes> {
    return tls12_prf(HashAlg::kSha256, secret, "master secret", seed, 48);
  };

  StackAsyncOp op;
  Bytes stack_out;
  ASSERT_EQ(stack_engine.run(&op, qat::OpKind::kPrfTls12, compute, &stack_out),
            StackStep::kPaused);
  poll_until_ready(stack_engine, op);
  ASSERT_EQ(stack_engine.run(&op, qat::OpKind::kPrfTls12, compute, &stack_out),
            StackStep::kDone);

  auto fiber_out = fiber_engine.prf_tls12(HashAlg::kSha256, secret,
                                          "master secret", seed, 48);
  ASSERT_TRUE(fiber_out.is_ok());
  EXPECT_EQ(stack_out, fiber_out.value());
}

}  // namespace
}  // namespace qtls::engine
