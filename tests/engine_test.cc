#include <gtest/gtest.h>

#include <chrono>

#include "asyncx/job.h"
#include "crypto/keystore.h"
#include "engine/polling_thread.h"
#include "engine/provider.h"
#include "engine/qat_engine.h"

namespace qtls::engine {
namespace {

qat::DeviceConfig test_device_config() {
  qat::DeviceConfig cfg;
  cfg.num_endpoints = 1;
  cfg.engines_per_endpoint = 4;
  cfg.ring_capacity = 32;
  return cfg;
}

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : device_(test_device_config()) {}

  qat::QatDevice device_;
};

TEST_F(EngineTest, SoftwareProviderRsaRoundTrip) {
  SoftwareProvider sw;
  const RsaPrivateKey& key = test_rsa1024();
  const Bytes digest = sha256(to_bytes("hello"));
  auto sig = sw.rsa_sign(key, digest);
  ASSERT_TRUE(sig.is_ok());
  EXPECT_TRUE(rsa_verify_pkcs1(key.pub, digest, sig.value()).is_ok());
}

TEST_F(EngineTest, SoftwareProviderEcdheAllCurves) {
  SoftwareProvider a, b;
  for (CurveId curve : {CurveId::kP256, CurveId::kP384, CurveId::kB283,
                        CurveId::kB409, CurveId::kK283, CurveId::kK409}) {
    auto share_a = a.ecdhe_keygen(curve);
    auto share_b = b.ecdhe_keygen(curve);
    ASSERT_TRUE(share_a.is_ok()) << curve_name(curve);
    ASSERT_TRUE(share_b.is_ok()) << curve_name(curve);
    auto s1 = a.ecdhe_derive(share_a.value(), share_b.value().pub_point);
    auto s2 = b.ecdhe_derive(share_b.value(), share_a.value().pub_point);
    ASSERT_TRUE(s1.is_ok()) << curve_name(curve);
    ASSERT_TRUE(s2.is_ok()) << curve_name(curve);
    EXPECT_EQ(s1.value(), s2.value()) << curve_name(curve);
  }
}

TEST_F(EngineTest, SoftwareEcdsaRejectsBinaryCurves) {
  SoftwareProvider sw;
  EXPECT_FALSE(sw.ecdsa_sign(CurveId::kB283, Bignum(5), sha256({})).is_ok());
}

TEST_F(EngineTest, SyncOffloadBlocksAndCompletes) {
  QatEngineConfig cfg;
  cfg.offload_mode = OffloadMode::kSync;
  QatEngineProvider qat(device_.allocate_instance(), cfg);

  const RsaPrivateKey& key = test_rsa1024();
  const Bytes digest = sha256(to_bytes("sync offload"));
  auto sig = qat.rsa_sign(key, digest);
  ASSERT_TRUE(sig.is_ok());
  EXPECT_TRUE(rsa_verify_pkcs1(key.pub, digest, sig.value()).is_ok());
  EXPECT_EQ(qat.stats().sync_blocks, 1u);
  EXPECT_EQ(qat.inflight_total(), 0u);
  // Device saw exactly one asym request.
  EXPECT_EQ(device_.fw_counters().requests[0], 1u);
}

TEST_F(EngineTest, SyncModeWithExternalPollingThread) {
  QatEngineConfig cfg;
  cfg.offload_mode = OffloadMode::kSync;
  cfg.self_poll_when_blocking = false;
  qat::CryptoInstance* inst = device_.allocate_instance();
  QatEngineProvider qat(inst, cfg);
  PollingThread poller({inst}, std::chrono::microseconds(100));

  auto out = qat.prf_tls12(HashAlg::kSha256, to_bytes("secret"),
                           "master secret", to_bytes("seed"), 48);
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(out.value(),
            tls12_prf(HashAlg::kSha256, to_bytes("secret"), "master secret",
                      to_bytes("seed"), 48));
  poller.stop();
  EXPECT_GT(poller.polls(), 0u);
  EXPECT_EQ(poller.retrieved(), 1u);
}

TEST_F(EngineTest, AsyncOffloadPausesJob) {
  QatEngineConfig cfg;
  QatEngineProvider qat(device_.allocate_instance(), cfg);
  const RsaPrivateKey& key = test_rsa1024();
  const Bytes digest = sha256(to_bytes("async offload"));

  asyncx::AsyncJob* job = nullptr;
  asyncx::WaitCtx wctx;
  int notified = 0;
  wctx.set_callback([](void* arg) { ++*static_cast<int*>(arg); }, &notified);

  Bytes sig;
  int ret = 0;
  auto fn = [&]() -> int {
    auto result = qat.rsa_sign(key, digest);
    if (!result.is_ok()) return -1;
    sig = std::move(result).take();
    return 1;
  };

  // Pre-processing: the job must pause with the request in flight.
  ASSERT_EQ(asyncx::start_job(&job, &wctx, &ret, fn),
            asyncx::JobStatus::kPaused);
  EXPECT_EQ(qat.inflight_total(), 1u);
  EXPECT_EQ(qat.inflight(qat::OpClass::kAsym), 1u);

  // QAT response retrieval: poll until the callback delivers the event.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (notified == 0 && std::chrono::steady_clock::now() < deadline)
    qat.poll();
  ASSERT_EQ(notified, 1);
  EXPECT_EQ(qat.inflight_total(), 0u);

  // Post-processing: resume consumes the result.
  ASSERT_EQ(asyncx::start_job(&job, &wctx, &ret, fn),
            asyncx::JobStatus::kFinished);
  EXPECT_EQ(ret, 1);
  EXPECT_TRUE(rsa_verify_pkcs1(key.pub, digest, sig).is_ok());
}

TEST_F(EngineTest, AsyncWithoutJobFallsBackToBlocking) {
  // Outside a fiber, async mode degrades to the blocking path so plain
  // callers (e.g. the client side of tests) still work.
  QatEngineConfig cfg;
  QatEngineProvider qat(device_.allocate_instance(), cfg);
  auto out = qat.prf_tls12(HashAlg::kSha256, to_bytes("s"), "l",
                           to_bytes("x"), 12);
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(out.value().size(), 12u);
}

TEST_F(EngineTest, ConcurrentOffloadsFromOneThread) {
  // The core QTLS claim: multiple crypto ops from different connections
  // in flight simultaneously from ONE thread.
  QatEngineConfig cfg;
  QatEngineProvider qat(device_.allocate_instance(), cfg);
  const RsaPrivateKey& key = test_rsa1024();

  constexpr int kJobs = 8;
  asyncx::AsyncJob* jobs[kJobs] = {};
  asyncx::WaitCtx wctxs[kJobs];
  int rets[kJobs] = {};
  int done = 0;

  auto make_fn = [&](int i) {
    return [&, i]() -> int {
      const Bytes digest = sha256(Bytes{static_cast<uint8_t>(i)});
      auto sig = qat.rsa_sign(key, digest);
      if (!sig.is_ok()) return -1;
      return rsa_verify_pkcs1(key.pub, digest, sig.value()).is_ok() ? 1 : -2;
    };
  };

  for (int i = 0; i < kJobs; ++i) {
    ASSERT_EQ(asyncx::start_job(&jobs[i], &wctxs[i], &rets[i], make_fn(i)),
              asyncx::JobStatus::kPaused);
  }
  // All eight requests concurrently in flight — impossible in straight
  // offload mode.
  EXPECT_EQ(qat.inflight_total(), static_cast<size_t>(kJobs));

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (done < kJobs && std::chrono::steady_clock::now() < deadline) {
    qat.poll();
    for (int i = 0; i < kJobs; ++i) {
      if (!jobs[i]) continue;
      // Only resume jobs whose response arrived (inflight drop is global;
      // resuming early is tolerated by the engine's spurious-resume loop,
      // but we only call once finished to exercise the clean path).
      if (asyncx::start_job(&jobs[i], &wctxs[i], &rets[i], nullptr) ==
          asyncx::JobStatus::kFinished) {
        EXPECT_EQ(rets[i], 1) << "job " << i;
        ++done;
      }
    }
  }
  EXPECT_EQ(done, kJobs);
  EXPECT_EQ(qat.stats().submitted, static_cast<uint64_t>(kJobs));
  EXPECT_EQ(qat.stats().completed, static_cast<uint64_t>(kJobs));
}

TEST_F(EngineTest, RingFullTriggersRetryPath) {
  qat::DeviceConfig dcfg;
  dcfg.num_endpoints = 1;
  dcfg.engines_per_endpoint = 1;
  dcfg.ring_capacity = 2;
  qat::QatDevice tiny(dcfg);
  QatEngineConfig cfg;
  QatEngineProvider qat(tiny.allocate_instance(), cfg);

  // Saturate: many async PRF jobs against a 2-slot ring and 1 engine.
  constexpr int kJobs = 24;
  asyncx::AsyncJob* jobs[kJobs] = {};
  asyncx::WaitCtx wctxs[kJobs];
  int rets[kJobs] = {};
  auto make_fn = [&](int i) {
    return [&, i]() -> int {
      auto out = qat.prf_tls12(HashAlg::kSha256, to_bytes("k"), "label",
                               Bytes{static_cast<uint8_t>(i)}, 32);
      return out.is_ok() ? 1 : -1;
    };
  };
  for (int i = 0; i < kJobs; ++i)
    ASSERT_EQ(asyncx::start_job(&jobs[i], &wctxs[i], &rets[i], make_fn(i)),
              asyncx::JobStatus::kPaused);

  int done = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (done < kJobs && std::chrono::steady_clock::now() < deadline) {
    qat.poll();
    for (int i = 0; i < kJobs; ++i) {
      if (!jobs[i]) continue;
      if (asyncx::start_job(&jobs[i], &wctxs[i], &rets[i], nullptr) ==
          asyncx::JobStatus::kFinished) {
        EXPECT_EQ(rets[i], 1);
        ++done;
      }
    }
  }
  EXPECT_EQ(done, kJobs);
  // With 24 jobs racing a 2-slot ring, some submissions must have failed
  // and retried.
  EXPECT_GT(qat.stats().submit_retries, 0u);
}

TEST_F(EngineTest, OffloadSwitchesFallBackToSoftware) {
  QatEngineConfig cfg;
  cfg.offload_rsa = false;
  cfg.offload_prf = false;
  cfg.offload_ec = false;
  cfg.offload_cipher = false;
  QatEngineProvider qat(device_.allocate_instance(), cfg);

  const RsaPrivateKey& key = test_rsa1024();
  const Bytes digest = sha256(to_bytes("sw fallback"));
  auto sig = qat.rsa_sign(key, digest);
  ASSERT_TRUE(sig.is_ok());
  // Nothing must have reached the device.
  EXPECT_EQ(device_.fw_counters().total_requests(), 0u);
}

TEST_F(EngineTest, InflightCountersPerClass) {
  QatEngineConfig cfg;
  QatEngineProvider qat(device_.allocate_instance(), cfg);

  asyncx::AsyncJob* job1 = nullptr;
  asyncx::AsyncJob* job2 = nullptr;
  asyncx::WaitCtx w1, w2;
  int ret = 0;
  const RsaPrivateKey& key = test_rsa1024();

  auto rsa_fn = [&]() -> int {
    auto r = qat.rsa_sign(key, sha256(to_bytes("a")));
    return r.is_ok() ? 1 : -1;
  };
  auto prf_fn = [&]() -> int {
    auto r = qat.prf_tls12(HashAlg::kSha256, to_bytes("k"), "l",
                           to_bytes("s"), 32);
    return r.is_ok() ? 1 : -1;
  };
  ASSERT_EQ(asyncx::start_job(&job1, &w1, &ret, rsa_fn),
            asyncx::JobStatus::kPaused);
  ASSERT_EQ(asyncx::start_job(&job2, &w2, &ret, prf_fn),
            asyncx::JobStatus::kPaused);
  EXPECT_EQ(qat.inflight(qat::OpClass::kAsym), 1u);
  EXPECT_EQ(qat.inflight(qat::OpClass::kPrf), 1u);
  EXPECT_EQ(qat.inflight_total(), 2u);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  int finished = 0;
  while (finished < 2 && std::chrono::steady_clock::now() < deadline) {
    qat.poll();
    if (job1 && asyncx::start_job(&job1, &w1, &ret, nullptr) ==
                    asyncx::JobStatus::kFinished)
      ++finished;
    if (job2 && asyncx::start_job(&job2, &w2, &ret, nullptr) ==
                    asyncx::JobStatus::kFinished)
      ++finished;
  }
  EXPECT_EQ(finished, 2);
  EXPECT_EQ(qat.inflight_total(), 0u);
}

TEST_F(EngineTest, CipherOffloadRoundTrip) {
  QatEngineConfig cfg;
  cfg.offload_mode = OffloadMode::kSync;
  QatEngineProvider qat(device_.allocate_instance(), cfg);

  CbcHmacKeys keys;
  keys.enc_key = Bytes(16, 0x01);
  keys.mac_key = Bytes(20, 0x02);
  const Bytes iv(16, 0x03);
  const Bytes fragment = to_bytes("record payload for the chained cipher");
  Bytes header;
  append_u8(header, 23);
  append_u16(header, 0x0303);
  append_u16(header, static_cast<uint16_t>(fragment.size()));

  auto sealed = qat.cipher_seal(keys, 5, header, iv, fragment);
  ASSERT_TRUE(sealed.is_ok());
  const Bytes header3(header.begin(), header.begin() + 3);
  auto opened = qat.cipher_open(keys, 5, header3, iv, sealed.value());
  ASSERT_TRUE(opened.is_ok());
  EXPECT_EQ(opened.value(), fragment);
  EXPECT_EQ(device_.fw_counters().requests[1], 2u);  // two cipher ops
}

TEST_F(EngineTest, EcdheOffloadAgreesWithSoftware) {
  QatEngineConfig cfg;
  cfg.offload_mode = OffloadMode::kSync;
  QatEngineProvider qat(device_.allocate_instance(), cfg);
  SoftwareProvider sw;

  auto qat_share = qat.ecdhe_keygen(CurveId::kP256);
  auto sw_share = sw.ecdhe_keygen(CurveId::kP256);
  ASSERT_TRUE(qat_share.is_ok());
  ASSERT_TRUE(sw_share.is_ok());
  auto s1 = qat.ecdhe_derive(qat_share.value(), sw_share.value().pub_point);
  auto s2 = sw.ecdhe_derive(sw_share.value(), qat_share.value().pub_point);
  ASSERT_TRUE(s1.is_ok());
  ASSERT_TRUE(s2.is_ok());
  EXPECT_EQ(s1.value(), s2.value());
}

}  // namespace
}  // namespace qtls::engine
