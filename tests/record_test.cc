#include <gtest/gtest.h>

#include "engine/provider.h"
#include "net/memory_transport.h"
#include "tls/record.h"

namespace qtls::tls {
namespace {

struct RecordRig {
  net::MemoryPipe pipe;
  engine::SoftwareProvider provider{1};
  HmacDrbg rng_a{HashAlg::kSha256, to_bytes("a")};
  HmacDrbg rng_b{HashAlg::kSha256, to_bytes("b")};
  RecordLayer a{&pipe.a(), &provider, &rng_a};
  RecordLayer b{&pipe.b(), &provider, &rng_b};

  CbcHmacKeys keys() {
    CbcHmacKeys k;
    k.enc_key = Bytes(16, 0x42);
    k.mac_key = Bytes(20, 0x24);
    return k;
  }
};

TEST(RecordLayer, PlaintextRoundTrip) {
  RecordRig rig;
  ASSERT_TRUE(rig.a.queue(ContentType::kHandshake, to_bytes("hello")).is_ok());
  ASSERT_EQ(rig.a.flush(), TlsResult::kOk);
  auto outcome = rig.b.read_record();
  ASSERT_TRUE(outcome.record.has_value());
  EXPECT_EQ(outcome.record->type, ContentType::kHandshake);
  EXPECT_EQ(to_string(outcome.record->payload), "hello");
}

TEST(RecordLayer, WantReadWhenNoData) {
  RecordRig rig;
  auto outcome = rig.b.read_record();
  EXPECT_FALSE(outcome.record.has_value());
  EXPECT_EQ(outcome.result, TlsResult::kWantRead);
}

TEST(RecordLayer, PartialHeaderThenBody) {
  RecordRig rig;
  ASSERT_TRUE(rig.a.queue(ContentType::kAlert, to_bytes("xy")).is_ok());
  rig.pipe.set_chunk_limit(3);  // drip-feed 3 bytes per read
  ASSERT_EQ(rig.a.flush(), TlsResult::kOk);
  // First read sees only part of the record.
  RecordLayer::ReadOutcome outcome = rig.b.read_record();
  // Keep reading; the layer reassembles across reads.
  int guard = 0;
  while (!outcome.record.has_value() && guard++ < 100)
    outcome = rig.b.read_record();
  ASSERT_TRUE(outcome.record.has_value());
  EXPECT_EQ(to_string(outcome.record->payload), "xy");
}

TEST(RecordLayer, FragmentsAbove16K) {
  RecordRig rig;
  const Bytes big(40 * 1024, 0x7a);  // 3 records: 16K + 16K + 8K
  ASSERT_TRUE(rig.a.queue(ContentType::kApplicationData, big).is_ok());
  ASSERT_EQ(rig.a.flush(), TlsResult::kOk);
  EXPECT_EQ(rig.a.records_sent(), 3u);
  size_t total = 0;
  for (int i = 0; i < 3; ++i) {
    auto outcome = rig.b.read_record();
    ASSERT_TRUE(outcome.record.has_value()) << i;
    EXPECT_LE(outcome.record->payload.size(), kMaxPlaintextFragment);
    total += outcome.record->payload.size();
  }
  EXPECT_EQ(total, big.size());
}

TEST(RecordLayer, EncryptedRoundTripAndSequence) {
  RecordRig rig;
  const CbcHmacKeys keys = rig.keys();
  rig.a.enable_encryption_tx(keys);
  rig.b.enable_encryption_rx(keys);

  for (int i = 0; i < 5; ++i) {
    const std::string msg = "record-" + std::to_string(i);
    ASSERT_TRUE(
        rig.a.queue(ContentType::kApplicationData, to_bytes(msg)).is_ok());
    ASSERT_EQ(rig.a.flush(), TlsResult::kOk);
    auto outcome = rig.b.read_record();
    ASSERT_TRUE(outcome.record.has_value()) << i;
    EXPECT_EQ(to_string(outcome.record->payload), msg);
  }
}

TEST(RecordLayer, ReplayedRecordFailsSequenceCheck) {
  RecordRig rig;
  const CbcHmacKeys keys = rig.keys();
  rig.a.enable_encryption_tx(keys);
  rig.b.enable_encryption_rx(keys);

  ASSERT_TRUE(rig.a.queue(ContentType::kApplicationData, to_bytes("x")).is_ok());
  ASSERT_EQ(rig.a.flush(), TlsResult::kOk);
  // Capture the wire bytes and replay them after delivery.
  uint8_t wire[512];
  auto io = rig.pipe.b().read(wire, sizeof(wire));
  ASSERT_EQ(io.status, IoStatus::kOk);
  // First delivery (re-inject): fine.
  rig.pipe.a().write(wire, io.bytes);
  auto first = rig.b.read_record();
  ASSERT_TRUE(first.record.has_value());
  // Replay: the receiver's sequence number advanced -> MAC mismatch.
  rig.pipe.a().write(wire, io.bytes);
  auto replay = rig.b.read_record();
  EXPECT_FALSE(replay.record.has_value());
  EXPECT_EQ(replay.result, TlsResult::kError);
}

TEST(RecordLayer, WrongKeysFail) {
  RecordRig rig;
  rig.a.enable_encryption_tx(rig.keys());
  CbcHmacKeys other = rig.keys();
  other.enc_key = Bytes(16, 0x99);
  rig.b.enable_encryption_rx(other);
  ASSERT_TRUE(rig.a.queue(ContentType::kApplicationData, to_bytes("x")).is_ok());
  ASSERT_EQ(rig.a.flush(), TlsResult::kOk);
  auto outcome = rig.b.read_record();
  EXPECT_EQ(outcome.result, TlsResult::kError);
}

TEST(RecordLayer, BackpressureAndResume) {
  RecordRig rig;
  rig.pipe.set_capacity(100);
  const Bytes payload(1000, 0x11);
  ASSERT_TRUE(rig.a.queue(ContentType::kApplicationData, payload).is_ok());
  EXPECT_EQ(rig.a.flush(), TlsResult::kWantWrite);
  EXPECT_FALSE(rig.a.send_buffer_empty());

  // Drain the pipe from the other side, then resume the flush.
  Bytes received;
  int guard = 0;
  while (guard++ < 1000) {
    uint8_t buf[64];
    auto io = rig.pipe.b().read(buf, sizeof(buf));
    if (io.status == IoStatus::kOk) {
      received.insert(received.end(), buf, buf + io.bytes);
    }
    const TlsResult r = rig.a.flush();
    if (r == TlsResult::kOk) break;
  }
  EXPECT_TRUE(rig.a.send_buffer_empty());
}

TEST(RecordLayer, AeadRoundTripAndSequence) {
  RecordRig rig;
  AeadKeys keys;
  keys.key = Bytes(16, 0x51);
  keys.iv = Bytes(12, 0x52);
  rig.a.enable_encryption_tx(keys);
  rig.b.enable_encryption_rx(keys);
  for (int i = 0; i < 4; ++i) {
    const std::string msg = "aead-" + std::to_string(i);
    ASSERT_TRUE(
        rig.a.queue(ContentType::kApplicationData, to_bytes(msg)).is_ok());
    ASSERT_EQ(rig.a.flush(), TlsResult::kOk);
    auto outcome = rig.b.read_record();
    ASSERT_TRUE(outcome.record.has_value()) << i;
    EXPECT_EQ(to_string(outcome.record->payload), msg);
  }
}

TEST(RecordLayer, AeadReplayRejected) {
  RecordRig rig;
  AeadKeys keys;
  keys.key = Bytes(16, 0x61);
  keys.iv = Bytes(12, 0x62);
  rig.a.enable_encryption_tx(keys);
  rig.b.enable_encryption_rx(keys);
  ASSERT_TRUE(rig.a.queue(ContentType::kApplicationData, to_bytes("x")).is_ok());
  ASSERT_EQ(rig.a.flush(), TlsResult::kOk);
  uint8_t wire[256];
  auto io = rig.pipe.b().read(wire, sizeof(wire));
  ASSERT_EQ(io.status, IoStatus::kOk);
  rig.pipe.a().write(wire, io.bytes);
  ASSERT_TRUE(rig.b.read_record().record.has_value());
  // Replay: nonce derivation advanced with the sequence number.
  rig.pipe.a().write(wire, io.bytes);
  EXPECT_EQ(rig.b.read_record().result, TlsResult::kError);
}

TEST(RecordLayer, AeadTamperRejected) {
  RecordRig rig;
  AeadKeys keys;
  keys.key = Bytes(16, 0x71);
  keys.iv = Bytes(12, 0x72);
  rig.a.enable_encryption_tx(keys);
  rig.b.enable_encryption_rx(keys);
  ASSERT_TRUE(
      rig.a.queue(ContentType::kApplicationData, to_bytes("payload")).is_ok());
  ASSERT_EQ(rig.a.flush(), TlsResult::kOk);
  uint8_t wire[256];
  auto io = rig.pipe.b().read(wire, sizeof(wire));
  ASSERT_EQ(io.status, IoStatus::kOk);
  wire[io.bytes - 1] ^= 0x01;  // flip a tag bit
  rig.pipe.a().write(wire, io.bytes);
  EXPECT_EQ(rig.b.read_record().result, TlsResult::kError);
}

TEST(RecordLayer, OversizedLengthRejected) {
  RecordRig rig;
  const Bytes bogus = from_hex("170303ffff");  // 65535-byte claim
  rig.pipe.a().write(bogus.data(), bogus.size());
  auto outcome = rig.b.read_record();
  EXPECT_EQ(outcome.result, TlsResult::kError);
  ASSERT_TRUE(rig.b.last_error_alert().has_value());
  EXPECT_EQ(*rig.b.last_error_alert(), AlertDescription::kRecordOverflow);
}

TEST(RecordLayer, PlaintextRecordAboveRfcLimitRejected) {
  // RFC 5246 §6.2.1: an *unprotected* record is bounded by 2^14 exactly —
  // the ciphertext expansion allowance does not apply before encryption is
  // on. 2^14 + 1 must be rejected even though the bytes are all present.
  RecordRig rig;
  Bytes wire;
  append_u8(wire, static_cast<uint8_t>(ContentType::kHandshake));
  append_u16(wire, static_cast<uint16_t>(ProtocolVersion::kTls12));
  append_u16(wire, static_cast<uint16_t>(kMaxPlaintextFragment + 1));
  wire.resize(wire.size() + kMaxPlaintextFragment + 1, 0xab);
  rig.pipe.set_capacity(wire.size());
  rig.pipe.a().write(wire.data(), wire.size());
  auto outcome = rig.b.read_record();
  EXPECT_EQ(outcome.result, TlsResult::kError);
  EXPECT_FALSE(outcome.record.has_value());
  ASSERT_TRUE(rig.b.last_error_alert().has_value());
  EXPECT_EQ(*rig.b.last_error_alert(), AlertDescription::kRecordOverflow);
}

TEST(RecordLayer, CbcDecryptedPlaintextAboveRfcLimitRejected) {
  // A protected record whose wire length fits the expansion bound but whose
  // *decrypted* fragment exceeds 2^14 (RFC 5246 §6.2.3) must be rejected —
  // the expansion allowance is for IV/MAC/padding, not smuggled plaintext.
  RecordRig rig;
  const CbcHmacKeys keys = rig.keys();
  rig.b.enable_encryption_rx(keys);

  const Bytes fragment(kMaxPlaintextFragment + 1, 0xcd);
  Bytes header;
  append_u8(header, static_cast<uint8_t>(ContentType::kApplicationData));
  append_u16(header, static_cast<uint16_t>(ProtocolVersion::kTls12));
  append_u16(header, static_cast<uint16_t>(fragment.size()));
  Bytes iv(16);
  rig.rng_a.generate(iv.data(), iv.size());
  auto sealed = rig.provider.cipher_seal(keys, /*seq=*/0, header, iv, fragment);
  ASSERT_TRUE(sealed.is_ok());

  Bytes wire;
  append_u8(wire, static_cast<uint8_t>(ContentType::kApplicationData));
  append_u16(wire, static_cast<uint16_t>(ProtocolVersion::kTls12));
  append_u16(wire, static_cast<uint16_t>(iv.size() + sealed.value().size()));
  append(wire, iv);
  append(wire, sealed.value());
  rig.pipe.set_capacity(wire.size());
  rig.pipe.a().write(wire.data(), wire.size());

  auto outcome = rig.b.read_record();
  EXPECT_EQ(outcome.result, TlsResult::kError);
  EXPECT_FALSE(outcome.record.has_value());
  ASSERT_TRUE(rig.b.last_error_alert().has_value());
  EXPECT_EQ(*rig.b.last_error_alert(), AlertDescription::kRecordOverflow);
}

TEST(RecordLayer, TamperSetsBadRecordMacAlert) {
  RecordRig rig;
  AeadKeys keys;
  keys.key = Bytes(16, 0x81);
  keys.iv = Bytes(12, 0x82);
  rig.a.enable_encryption_tx(keys);
  rig.b.enable_encryption_rx(keys);
  ASSERT_TRUE(
      rig.a.queue(ContentType::kApplicationData, to_bytes("data")).is_ok());
  ASSERT_EQ(rig.a.flush(), TlsResult::kOk);
  uint8_t wire[256];
  auto io = rig.pipe.b().read(wire, sizeof(wire));
  ASSERT_EQ(io.status, IoStatus::kOk);
  wire[io.bytes - 1] ^= 0x01;
  rig.pipe.a().write(wire, io.bytes);
  EXPECT_EQ(rig.b.read_record().result, TlsResult::kError);
  ASSERT_TRUE(rig.b.last_error_alert().has_value());
  EXPECT_EQ(*rig.b.last_error_alert(), AlertDescription::kBadRecordMac);
}

TEST(RecordLayer, PeerCloseSurfacesClosed) {
  RecordRig rig;
  rig.pipe.close_side(0);  // side a closed
  auto outcome = rig.b.read_record();
  EXPECT_EQ(outcome.result, TlsResult::kClosed);
}

TEST(RecordLayer, EmptyPayloadRecord) {
  RecordRig rig;
  ASSERT_TRUE(rig.a.queue(ContentType::kHandshake, {}).is_ok());
  ASSERT_EQ(rig.a.flush(), TlsResult::kOk);
  auto outcome = rig.b.read_record();
  ASSERT_TRUE(outcome.record.has_value());
  EXPECT_TRUE(outcome.record->payload.empty());
}

}  // namespace
}  // namespace qtls::tls
