// Multi-device topology (DESIGN.md §12): placement invariants (NUMA
// striping, affinity, exhaustion spillover, offline exclusion), device-level
// failover through the engine's per-device lanes (ops MIGRATE to surviving
// devices — the per-class breaker must never flip to software while another
// device is up), hot_remove/re_add under load with conservation, and
// cross-device result parity. Select with `ctest -L topology`.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "engine/qat_engine.h"
#include "qat/fault.h"
#include "qat/topology.h"

namespace qtls {
namespace {

qat::TopologyConfig small_topology(int devices, int nodes = 1) {
  qat::TopologyConfig tc;
  tc.num_devices = devices;
  tc.numa_nodes = nodes;
  tc.device.num_endpoints = 1;
  tc.device.engines_per_endpoint = 2;
  tc.device.ring_capacity = 32;
  tc.device.max_instances_per_endpoint = 4;
  return tc;
}

// A provider with one lane per device (the multi-device worker shape).
struct TopoRig {
  qat::DeviceTopology topo;
  std::unique_ptr<engine::QatEngineProvider> engine;

  TopoRig(int devices, engine::QatEngineConfig ecfg, int preferred = 0,
          int instances_per_device = 1)
      : topo(small_topology(devices)) {
    std::vector<engine::DeviceInstanceSet> sets;
    for (int d = 0; d < devices; ++d) {
      engine::DeviceInstanceSet set;
      set.device_id = d;
      for (int k = 0; k < instances_per_device; ++k)
        set.instances.push_back(topo.device(d).allocate_instance());
      sets.push_back(std::move(set));
    }
    engine = std::make_unique<engine::QatEngineProvider>(
        &topo, preferred, std::move(sets), ecfg);
  }
};

Result<Bytes> run_prf(engine::QatEngineProvider& e, int i) {
  return e.prf_tls12(HashAlg::kSha256, to_bytes("secret" + std::to_string(i)),
                     "topology", to_bytes("seed"), 32);
}

Result<Bytes> expect_prf(int i) {
  engine::SoftwareProvider sw;
  return sw.prf_tls12(HashAlg::kSha256, to_bytes("secret" + std::to_string(i)),
                      "topology", to_bytes("seed"), 32);
}

// ------------------------------------------------ placement invariants ----

TEST(TopologyPlacement, NumaStripingAcrossNodes) {
  qat::DeviceTopology topo(small_topology(4, /*nodes=*/2));
  // Devices populate sockets round-robin.
  EXPECT_EQ(topo.numa_node_of(0), 0);
  EXPECT_EQ(topo.numa_node_of(1), 1);
  EXPECT_EQ(topo.numa_node_of(2), 0);
  EXPECT_EQ(topo.numa_node_of(3), 1);
  // Workers stripe across nodes, then across each node's devices: worker w
  // sits on node w % 2 and takes that node's device by rank w / 2.
  EXPECT_EQ(topo.preferred_device(0, 4), 0);  // node 0, rank 0 -> dev 0
  EXPECT_EQ(topo.preferred_device(1, 4), 1);  // node 1, rank 0 -> dev 1
  EXPECT_EQ(topo.preferred_device(2, 4), 2);  // node 0, rank 1 -> dev 2
  EXPECT_EQ(topo.preferred_device(3, 4), 3);  // node 1, rank 1 -> dev 3
  EXPECT_EQ(topo.preferred_device(4, 8), 0);  // wraps
  // Single device: everything lands on it.
  qat::DeviceTopology one(small_topology(1, 2));
  EXPECT_EQ(one.preferred_device(3, 4), 0);
}

TEST(TopologyPlacement, AllocationSpillsWhenAffineDeviceExhausted) {
  // Each device holds at most 4 instances (1 endpoint x 4 slots); asking for
  // 6 must take 4 from the affine device and spill 2 to the other.
  qat::DeviceTopology topo(small_topology(2));
  auto placements = topo.allocate_for_worker(/*worker=*/0, /*workers=*/1,
                                             /*count=*/6);
  ASSERT_EQ(placements.size(), 6u);
  int on_dev0 = 0, on_dev1 = 0;
  for (const auto& p : placements) {
    ASSERT_NE(p.instance, nullptr);
    (p.device == 0 ? on_dev0 : on_dev1)++;
  }
  EXPECT_EQ(on_dev0, 4);
  EXPECT_EQ(on_dev1, 2);
}

TEST(TopologyPlacement, OfflineDeviceNeverPlaced) {
  qat::DeviceTopology topo(small_topology(2));
  ASSERT_TRUE(topo.hot_remove(0));
  EXPECT_FALSE(topo.hot_remove(0));  // idempotent: already offline
  auto placements = topo.allocate_for_worker(0, 1, 2);
  ASSERT_EQ(placements.size(), 2u);
  for (const auto& p : placements) EXPECT_EQ(p.device, 1);
  // pick_device skips the offline affine device...
  EXPECT_EQ(topo.pick_device(0), 1);
  // ...and reports -1 when the whole fleet is dark.
  ASSERT_TRUE(topo.hot_remove(1));
  EXPECT_EQ(topo.pick_device(0), -1);
  // Re-add restores placement and bumps the generation each flip.
  const uint64_t gen = topo.generation();
  ASSERT_TRUE(topo.re_add(0));
  EXPECT_FALSE(topo.re_add(0));
  EXPECT_EQ(topo.pick_device(0), 0);
  EXPECT_EQ(topo.generation(), gen + 1);
  EXPECT_EQ(topo.online_devices(), 1);
}

// --------------------------------------------- failover through lanes ----

// One device's FaultPlan fails every op; the other stays healthy. Ops must
// migrate to the surviving device — never degrade to software — and after
// the faulty device recovers, the half-open probe must rebind it. Table-
// driven over the two terminal-failure shapes (persistent device errors vs
// the reset latch) and the two re-probe triggers (cooldown elapsed vs
// topology generation bump).
struct FailoverCase {
  const char* name;
  bool use_reset_latch;  // else: error_rate = 1.0
  bool recover_via_generation;  // else: wait out the breaker cooldown
};

class TopologyFailover : public ::testing::TestWithParam<FailoverCase> {};

TEST_P(TopologyFailover, OpsMigrateThenReProbeRebinds) {
  const FailoverCase& fc = GetParam();
  SCOPED_TRACE(fc.name);

  engine::QatEngineConfig ecfg;
  ecfg.offload_mode = engine::OffloadMode::kSync;
  ecfg.max_retries = 2;
  ecfg.retry_backoff_base_us = 10;
  ecfg.breaker_threshold = 3;
  ecfg.breaker_cooldown_ms = 30;
  TopoRig rig(/*devices=*/2, ecfg, /*preferred=*/0);

  // Break device 0.
  if (fc.use_reset_latch) {
    rig.topo.fault_plan(0).trigger_reset();
  } else {
    qat::FaultRates always_fail;
    always_fail.error_rate = 1.0;
    rig.topo.fault_plan(0).set_rates_all(always_fail);
  }

  for (int i = 0; i < 10; ++i) {
    auto r = run_prf(*rig.engine, i);
    ASSERT_TRUE(r.is_ok()) << fc.name << " op " << i << ": "
                           << r.status().to_string();
    EXPECT_EQ(r.value(), expect_prf(i).value());
  }

  const engine::QatEngineStats& s = rig.engine->stats();
  // The first ops hit device 0, failed, and migrated to device 1 within the
  // same offload call; after breaker_threshold failures lane 0 tripped and
  // later ops spilled straight to lane 1.
  EXPECT_GT(s.device_migrations, 0u);
  EXPECT_GT(s.lane_breaker_opens, 0u);
  EXPECT_EQ(rig.engine->lane_breaker_state(0), engine::BreakerState::kOpen);
  // THE invariant: a healthy device exists, so nothing fell back to
  // software and no per-class breaker moved.
  EXPECT_EQ(s.sw_fallbacks, 0u);
  EXPECT_EQ(s.breaker_opens, 0u);
  EXPECT_EQ(rig.engine->breaker_state(qat::OpClass::kPrf),
            engine::BreakerState::kClosed);

  // Recover device 0.
  if (fc.use_reset_latch) {
    rig.topo.fault_plan(0).clear_reset();
  } else {
    rig.topo.fault_plan(0).set_rates_all(qat::FaultRates{});
  }
  if (fc.recover_via_generation) {
    // hot_remove + re_add bumps the generation twice; a tripped lane that
    // sees the bump re-probes without waiting out its cooldown.
    ASSERT_TRUE(rig.topo.hot_remove(0));
    ASSERT_TRUE(rig.topo.re_add(0));
  } else {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
  }

  // The re-probe must rebind lane 0: its device serves requests again.
  const uint64_t dev0_before = rig.topo.device(0).fw_counters().total_requests();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  int i = 100;
  while (rig.engine->lane_breaker_state(0) != engine::BreakerState::kClosed &&
         std::chrono::steady_clock::now() < deadline) {
    auto r = run_prf(*rig.engine, i++);
    ASSERT_TRUE(r.is_ok());
  }
  EXPECT_EQ(rig.engine->lane_breaker_state(0), engine::BreakerState::kClosed);
  EXPECT_GT(rig.engine->stats().lane_breaker_closes, 0u);
  // And traffic actually flows to it again (affinity restored).
  for (int k = 0; k < 4; ++k) ASSERT_TRUE(run_prf(*rig.engine, 200 + k).is_ok());
  EXPECT_GT(rig.topo.device(0).fw_counters().total_requests(), dev0_before);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TopologyFailover,
    ::testing::Values(
        FailoverCase{"error_rate_cooldown_reprobe", false, false},
        FailoverCase{"error_rate_generation_reprobe", false, true},
        FailoverCase{"reset_latch_cooldown_reprobe", true, false},
        FailoverCase{"reset_latch_generation_reprobe", true, true}),
    [](const ::testing::TestParamInfo<FailoverCase>& info) {
      return info.param.name;
    });

// ----------------------------------------- hot_remove/re_add under load ----

TEST(TopologyFailoverE2E, HotRemoveUnderLoadLosesNothing) {
  engine::QatEngineConfig ecfg;
  ecfg.offload_mode = engine::OffloadMode::kSync;
  ecfg.max_retries = 3;
  ecfg.retry_backoff_base_us = 10;
  ecfg.breaker_threshold = 2;
  ecfg.breaker_cooldown_ms = 10;
  TopoRig rig(/*devices=*/2, ecfg, /*preferred=*/0);

  // A background chaos thread rips device 0 out and plugs it back twice
  // while the foreground stream runs. The reset latch fails in-flight ring
  // entries with kDeviceReset (drained through responses, not silence), so
  // every op either completes on a device or migrates — nothing is lost.
  std::thread chaos([&] {
    for (int k = 0; k < 2; ++k) {
      std::this_thread::sleep_for(std::chrono::milliseconds(15));
      rig.topo.hot_remove(0);
      std::this_thread::sleep_for(std::chrono::milliseconds(15));
      rig.topo.re_add(0);
    }
  });

  constexpr int kOps = 300;
  int ok = 0;
  for (int i = 0; i < kOps; ++i) {
    auto r = run_prf(*rig.engine, i);
    ASSERT_TRUE(r.is_ok()) << "op " << i << ": " << r.status().to_string();
    ASSERT_EQ(r.value(), expect_prf(i).value());
    ++ok;
  }
  chaos.join();

  EXPECT_EQ(ok, kOps);
  // Conservation: every submitted op came back as a response (the reset
  // latch turns in-flight work into error responses; nothing was dropped,
  // so no deadline expiries are needed to balance the books).
  const engine::QatEngineStats& s = rig.engine->stats();
  EXPECT_EQ(s.submitted, s.completed + s.deadline_expiries);
  EXPECT_EQ(rig.engine->inflight_total(), 0u);
  EXPECT_EQ(rig.engine->pending_deadline_ops(), 0u);
  // The class breaker stayed closed throughout: device 1 was always up.
  EXPECT_EQ(rig.engine->breaker_state(qat::OpClass::kPrf),
            engine::BreakerState::kClosed);
  EXPECT_EQ(s.breaker_opens, 0u);
  EXPECT_EQ(rig.topo.hot_removes(), 2u);
  EXPECT_EQ(rig.topo.re_adds(), 2u);
}

// ----------------------------------------------- cross-device parity ----

TEST(TopologyParity, EveryDeviceComputesIdenticalResults) {
  // The same op forced through each device in turn must produce the same
  // bytes as the software provider — devices are interchangeable compute,
  // and a migrated op's result is indistinguishable from the affine one's.
  engine::QatEngineConfig ecfg;
  ecfg.offload_mode = engine::OffloadMode::kSync;
  TopoRig rig(/*devices=*/4, ecfg, /*preferred=*/0);

  for (int d = 0; d < 4; ++d) {
    // Take every other device offline so ops can only land on device d.
    for (int o = 0; o < 4; ++o) {
      if (o != d) rig.topo.hot_remove(o);
    }
    const uint64_t before = rig.topo.device(d).fw_counters().total_requests();
    auto r = run_prf(*rig.engine, 7);
    ASSERT_TRUE(r.is_ok());
    EXPECT_EQ(r.value(), expect_prf(7).value()) << "device " << d;
    EXPECT_GT(rig.topo.device(d).fw_counters().total_requests(), before);
    for (int o = 0; o < 4; ++o) {
      if (o != d) rig.topo.re_add(o);
    }
  }
}

// stats_json shape: the fields the GET /stats "topology" object and the
// bench gates read must exist and reflect the fleet.
TEST(TopologyStats, JsonCarriesFleetState) {
  qat::DeviceTopology topo(small_topology(2, 2));
  ASSERT_TRUE(topo.hot_remove(1));
  const std::string json = topo.stats_json();
  EXPECT_NE(json.find("\"devices\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"online\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"hot_removes\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"numa_node\":1"), std::string::npos) << json;

  engine::QatEngineConfig ecfg;
  ecfg.offload_mode = engine::OffloadMode::kSync;
  TopoRig rig(2, ecfg);
  ASSERT_TRUE(run_prf(*rig.engine, 1).is_ok());
  const std::string lanes = rig.engine->lanes_json();
  EXPECT_NE(lanes.find("\"device\":0"), std::string::npos) << lanes;
  EXPECT_NE(lanes.find("\"device\":1"), std::string::npos) << lanes;
  EXPECT_NE(lanes.find("\"breaker\":\"closed\""), std::string::npos) << lanes;
}

}  // namespace
}  // namespace qtls
