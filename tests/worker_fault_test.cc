// Regression for the worker failure-observation contract: a connection whose
// async offload op fails terminally (device error past the retry budget, or
// a dropped response expiring the per-op deadline) must be torn down and its
// slot released — run_until() observes the failure through stats().errors /
// async_failures instead of waiting forever on progress that cannot come.
#include <gtest/gtest.h>

#include <chrono>

#include "crypto/keystore.h"
#include "qat/fault.h"
#include "server_test_util.h"

namespace qtls::server {
namespace {

using testutil::run_to_completion;
using testutil::socketpair_connector;

struct WorkerFaultFixture {
  qat::FaultPlan plan;
  qat::QatDevice device;
  engine::QatEngineProvider qat;
  tls::TlsContext sctx;
  Worker worker;

  static qat::DeviceConfig device_config(qat::FaultPlan* plan) {
    qat::DeviceConfig cfg;
    cfg.num_endpoints = 1;
    cfg.engines_per_endpoint = 4;
    cfg.fault_plan = plan;
    return cfg;
  }

  static tls::TlsContextConfig server_config() {
    tls::TlsContextConfig scfg;
    scfg.is_server = true;
    scfg.async_mode = true;
    scfg.cipher_suites = {tls::CipherSuite::kTlsRsaWithAes128CbcSha};
    return scfg;
  }

  explicit WorkerFaultFixture(engine::QatEngineConfig ecfg, uint64_t seed)
      : plan(seed),
        device(device_config(&plan)),
        qat(device.allocate_instance(), ecfg),
        sctx(server_config(), &qat),
        worker(&sctx, &qat, WorkerConfig{}) {
    sctx.credentials().rsa_key = &test_rsa2048();
  }
};

tls::TlsContextConfig client_config() {
  tls::TlsContextConfig ccfg;
  ccfg.cipher_suites = {tls::CipherSuite::kTlsRsaWithAes128CbcSha};
  return ccfg;
}

// Drives one manual client handshake against the worker until it resolves
// (any result other than WANT_READ/WANT_WRITE) or the deadline passes.
tls::TlsResult pump_until_resolved(tls::TlsConnection* client,
                                   Worker* worker) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    const tls::TlsResult r = client->handshake();
    if (r != tls::TlsResult::kWantRead && r != tls::TlsResult::kWantWrite)
      return r;
    worker->run_once(0);
  }
  return tls::TlsResult::kWantRead;  // deadline: still unresolved
}

// Spins the worker until the failed connection is gone (or the deadline
// passes) — this is exactly the observation loop run_until callers use.
void drain_until_closed(WorkerFaultFixture* fx) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  fx->worker.run_until(
      [&] {
        return (fx->worker.stats().errors > 0 &&
                fx->worker.alive_connections() == 0 &&
                fx->qat.inflight_total() == 0) ||
               std::chrono::steady_clock::now() > deadline;
      },
      /*timeout_ms=*/0);
}

// Terminal device error with fallback disabled: the op surfaces
// kUnavailable, the TLS layer fails, the worker tears the connection down.
TEST(WorkerFault, TerminalDeviceErrorTearsDownConnection) {
  engine::QatEngineConfig ecfg;
  ecfg.max_retries = 0;
  ecfg.sw_fallback_on_device_error = false;
  WorkerFaultFixture fx(ecfg, /*seed=*/41);
  qat::FaultRates always_fail;
  always_fail.error_rate = 1.0;
  fx.plan.set_rates_all(always_fail);

  engine::SoftwareProvider client_provider(7);
  tls::TlsContext cctx(client_config(), &client_provider);
  auto pair = net::make_socketpair();
  ASSERT_TRUE(pair.is_ok());
  ASSERT_TRUE(fx.worker.adopt(pair.value().second).is_ok());
  net::SocketTransport transport(pair.value().first);
  tls::TlsConnection client(&cctx, &transport);

  // The client sees the connection die — a clean close, not a hang.
  const tls::TlsResult client_r = pump_until_resolved(&client, &fx.worker);
  EXPECT_TRUE(client_r == tls::TlsResult::kClosed ||
              client_r == tls::TlsResult::kError)
      << tls::tls_result_name(client_r);
  drain_until_closed(&fx);

  // The worker observed the failure, closed the connection and released its
  // slot: nothing alive, nothing idle, nothing parked, nothing inflight.
  const WorkerStats& ws = fx.worker.stats();
  EXPECT_EQ(ws.errors, 1u);
  EXPECT_EQ(ws.async_failures, 1u);
  EXPECT_EQ(ws.handshakes_completed, 0u);
  EXPECT_EQ(fx.worker.alive_connections(), 0u);
  EXPECT_EQ(fx.worker.idle_connections(), 0u);
  EXPECT_EQ(fx.qat.inflight_total(), 0u);
}

// Dropped response with fallback disabled: before per-op deadlines existed
// this was the unobservable case — the fiber stayed parked forever and
// run_until spun without any way to notice. The deadline sweep (riding the
// worker's failover poll) now expires the op and the teardown follows.
TEST(WorkerFault, DroppedResponseExpiresAndTearsDownConnection) {
  engine::QatEngineConfig ecfg;
  ecfg.max_retries = 0;
  // Generous against real device service times: only the dropped response
  // can ever hit this deadline.
  ecfg.op_deadline_us = 20'000;
  ecfg.sw_fallback_on_device_error = false;
  WorkerFaultFixture fx(ecfg, /*seed=*/42);
  // First PRF op of the handshake never comes back.
  fx.plan.schedule(qat::OpKind::kPrfTls12, 1, qat::FaultKind::kDrop);

  engine::SoftwareProvider client_provider(7);
  tls::TlsContext cctx(client_config(), &client_provider);
  auto pair = net::make_socketpair();
  ASSERT_TRUE(pair.is_ok());
  ASSERT_TRUE(fx.worker.adopt(pair.value().second).is_ok());
  net::SocketTransport transport(pair.value().first);
  tls::TlsConnection client(&cctx, &transport);

  const tls::TlsResult client_r = pump_until_resolved(&client, &fx.worker);
  EXPECT_TRUE(client_r == tls::TlsResult::kClosed ||
              client_r == tls::TlsResult::kError)
      << tls::tls_result_name(client_r);
  drain_until_closed(&fx);

  const WorkerStats& ws = fx.worker.stats();
  EXPECT_EQ(ws.errors, 1u);
  EXPECT_EQ(ws.async_failures, 1u);
  EXPECT_EQ(fx.worker.alive_connections(), 0u);
  EXPECT_EQ(fx.qat.stats().deadline_expiries, 1u);
  EXPECT_EQ(fx.qat.inflight_total(), 0u);
  EXPECT_EQ(fx.qat.pending_deadline_ops(), 0u);
}

// Same dropped response with fallback enabled: the connection survives — the
// expired op completes in software and the request is served normally.
TEST(WorkerFault, DroppedResponseWithFallbackServesRequest) {
  engine::QatEngineConfig ecfg;
  ecfg.max_retries = 0;
  // Generous against real device service times: only the dropped response
  // can ever hit this deadline.
  ecfg.op_deadline_us = 20'000;
  ecfg.sw_fallback_on_device_error = true;
  WorkerFaultFixture fx(ecfg, /*seed=*/43);
  fx.plan.schedule(qat::OpKind::kPrfTls12, 1, qat::FaultKind::kDrop);

  engine::SoftwareProvider client_provider(7);
  tls::TlsContext cctx(client_config(), &client_provider);
  client::Pool clients;
  client::ClientOptions copts;
  copts.max_requests = 1;
  clients.add(std::make_unique<client::HttpsClient>(
      &cctx, socketpair_connector(&fx.worker), copts, /*seed=*/99));

  ASSERT_TRUE(run_to_completion(&fx.worker, &clients, /*deadline_seconds=*/30));

  EXPECT_EQ(clients.aggregate().errors, 0u);
  EXPECT_EQ(clients.aggregate().requests, 1u);
  const WorkerStats& ws = fx.worker.stats();
  EXPECT_EQ(ws.errors, 0u);
  EXPECT_EQ(ws.async_failures, 0u);
  EXPECT_EQ(ws.requests_served, 1u);
  // At least the dropped op expired and completed in software; under heavy
  // slowdown (sanitizers) a slow-but-healthy op may expire spuriously too —
  // the fallback absorbs those as well.
  EXPECT_GE(fx.qat.stats().deadline_expiries, 1u);
  EXPECT_GE(fx.qat.stats().sw_fallbacks, 1u);
  EXPECT_EQ(fx.qat.inflight_total(), 0u);
}

}  // namespace
}  // namespace qtls::server
