// SlabPool / SlabRegistry unit tests (DESIGN.md §14): slot recycling,
// index addressing, occupancy conservation, and the global directory the
// /stats memory object reads.
#include "common/slab.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace qtls::common {
namespace {

struct Payload {
  uint64_t a = 0;
  uint64_t b = 0;
  explicit Payload(uint64_t v = 0) : a(v), b(~v) {}
};

TEST(SlabPool, CreateDestroyRecyclesSlots) {
  SlabPool<Payload> pool({}, 4);
  Payload* p1 = pool.create(1);
  Payload* p2 = pool.create(2);
  EXPECT_EQ(p1->a, 1u);
  EXPECT_EQ(p2->a, 2u);
  EXPECT_EQ(pool.live(), 2u);
  pool.destroy(p1);
  EXPECT_EQ(pool.live(), 1u);
  // The freed slot is the next one handed out (LIFO free list).
  Payload* p3 = pool.create(3);
  EXPECT_EQ(static_cast<void*>(p3), static_cast<void*>(p1));
  pool.destroy(p2);
  pool.destroy(p3);
  EXPECT_EQ(pool.live(), 0u);
}

TEST(SlabPool, IndexRoundTripsAcrossChunks) {
  SlabPool<Payload> pool({}, 3);  // small chunks force several carves
  std::vector<Payload*> objs;
  std::set<size_t> indices;
  for (uint64_t i = 0; i < 20; ++i) objs.push_back(pool.create(i));
  EXPECT_GE(pool.capacity(), 20u);
  for (Payload* p : objs) {
    const size_t idx = pool.index_of(p);
    EXPECT_TRUE(indices.insert(idx).second) << "duplicate index " << idx;
    EXPECT_EQ(pool.at(idx), p);
  }
  for (Payload* p : objs) pool.destroy(p);
}

TEST(SlabPool, ConservationCountersBalance) {
  SlabPool<Payload> pool({}, 8);
  std::vector<Payload*> live;
  uint64_t allocs = 0, frees = 0;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 7; ++i) {
      live.push_back(pool.create(static_cast<uint64_t>(i)));
      ++allocs;
    }
    // Free from the middle as well as the ends.
    while (live.size() > 3) {
      const size_t pick = live.size() / 2;
      pool.destroy(live[pick]);
      live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
      ++frees;
    }
  }
  const SlabStats s = pool.stats();
  EXPECT_EQ(s.total_allocs, allocs);
  EXPECT_EQ(s.total_frees, frees);
  EXPECT_EQ(s.live, allocs - frees);
  EXPECT_EQ(s.live, live.size());
  EXPECT_EQ(s.bytes_live, s.live * s.object_size);
  for (Payload* p : live) pool.destroy(p);
  EXPECT_EQ(pool.live(), 0u);
}

TEST(SlabRegistry, NamedPoolsAppearAndDeregister) {
  const size_t before = SlabRegistry::global().snapshot().size();
  {
    SlabPool<Payload> named("test.slab_registry", 4);
    Payload* p = named.create(7);
#if QTLS_SLAB_STATS_ENABLED
    bool found = false;
    for (const SlabStats& s : SlabRegistry::global().snapshot()) {
      if (s.name != "test.slab_registry") continue;
      found = true;
      EXPECT_EQ(s.live, 1u);
    }
    EXPECT_TRUE(found);
    const SlabStats totals = SlabRegistry::global().totals("test.");
    EXPECT_EQ(totals.live, 1u);
    EXPECT_NE(SlabRegistry::global().to_json().find("test.slab_registry"),
              std::string::npos);
#endif
    named.destroy(p);
  }
  EXPECT_EQ(SlabRegistry::global().snapshot().size(), before);
}

TEST(SlabPool, AnonymousPoolStaysOutOfRegistry) {
  const size_t before = SlabRegistry::global().snapshot().size();
  SlabPool<Payload> anon;
  Payload* p = anon.create(1);
  EXPECT_EQ(SlabRegistry::global().snapshot().size(), before);
  anon.destroy(p);
}

}  // namespace
}  // namespace qtls::common
