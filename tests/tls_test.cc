#include <gtest/gtest.h>

#include "crypto/keystore.h"
#include "tls_test_util.h"

namespace qtls::tls {
namespace {

using testutil::pump_handshake;
using testutil::pump_read;
using testutil::pump_write;

struct Pair {
  net::MemoryPipe pipe;
  engine::SoftwareProvider server_provider{1};
  engine::SoftwareProvider client_provider{2};
  std::unique_ptr<TlsContext> server_ctx;
  std::unique_ptr<TlsContext> client_ctx;
  std::unique_ptr<TlsConnection> server;
  std::unique_ptr<TlsConnection> client;

  explicit Pair(CipherSuite suite, CurveId curve = CurveId::kP256,
                bool tickets = false) {
    TlsContextConfig server_cfg;
    server_cfg.is_server = true;
    server_cfg.cipher_suites = {suite};
    server_cfg.curve = curve;
    server_cfg.use_session_tickets = tickets;
    server_cfg.drbg_seed = 111;
    server_ctx = std::make_unique<TlsContext>(server_cfg, &server_provider);
    server_ctx->credentials().rsa_key = &test_rsa2048();
    server_ctx->credentials().ecdsa_p256 = &test_ec_key_p256();
    server_ctx->credentials().ecdsa_p384 = &test_ec_key_p384();

    TlsContextConfig client_cfg;
    client_cfg.is_server = false;
    client_cfg.cipher_suites = {suite};
    client_cfg.curve = curve;
    client_cfg.drbg_seed = 222;
    client_ctx = std::make_unique<TlsContext>(client_cfg, &client_provider);

    reset_connections();
  }

  void reset_connections() {
    server = std::make_unique<TlsConnection>(server_ctx.get(), &pipe.b());
    client = std::make_unique<TlsConnection>(client_ctx.get(), &pipe.a());
  }
};

TEST(TlsHandshake, TlsRsaFullHandshakeAndEcho) {
  Pair pair(CipherSuite::kTlsRsaWithAes128CbcSha);
  const auto result = pump_handshake(pair.client.get(), pair.server.get());
  ASSERT_TRUE(result.ok) << "client=" << tls_result_name(result.client_last)
                         << " server=" << tls_result_name(result.server_last);
  EXPECT_FALSE(pair.server->resumed_session());
  EXPECT_EQ(pair.server->version(), ProtocolVersion::kTls12);

  // Echo application data both ways.
  ASSERT_EQ(pump_write(pair.client.get(), to_bytes("hello server")),
            TlsResult::kOk);
  Bytes got;
  ASSERT_EQ(pump_read(pair.server.get(), &got), TlsResult::kOk);
  EXPECT_EQ(to_string(got), "hello server");

  ASSERT_EQ(pump_write(pair.server.get(), to_bytes("hello client")),
            TlsResult::kOk);
  got.clear();
  ASSERT_EQ(pump_read(pair.client.get(), &got), TlsResult::kOk);
  EXPECT_EQ(to_string(got), "hello client");
}

TEST(TlsHandshake, EcdheRsaFullHandshake) {
  Pair pair(CipherSuite::kEcdheRsaWithAes128CbcSha);
  ASSERT_TRUE(pump_handshake(pair.client.get(), pair.server.get()).ok);
  EXPECT_EQ(pair.server->suite(), CipherSuite::kEcdheRsaWithAes128CbcSha);
}

TEST(TlsHandshake, EcdheEcdsaFullHandshake) {
  Pair pair(CipherSuite::kEcdheEcdsaWithAes128CbcSha);
  ASSERT_TRUE(pump_handshake(pair.client.get(), pair.server.get()).ok);
}

TEST(TlsHandshake, EcdheEcdsaP384) {
  Pair pair(CipherSuite::kEcdheEcdsaWithAes128CbcSha, CurveId::kP384);
  ASSERT_TRUE(pump_handshake(pair.client.get(), pair.server.get()).ok);
}

class CurveHandshakeTest : public ::testing::TestWithParam<CurveId> {};

INSTANTIATE_TEST_SUITE_P(AllCurves, CurveHandshakeTest,
                         ::testing::Values(CurveId::kP256, CurveId::kP384,
                                           CurveId::kB283, CurveId::kB409,
                                           CurveId::kK283, CurveId::kK409),
                         [](const auto& info) {
                           std::string n = curve_name(info.param);
                           n.erase(std::remove(n.begin(), n.end(), '-'),
                                   n.end());
                           return n;
                         });

TEST_P(CurveHandshakeTest, EcdheRsaOverEveryFig7cCurve) {
  Pair pair(CipherSuite::kEcdheRsaWithAes128CbcSha, GetParam());
  const auto result = pump_handshake(pair.client.get(), pair.server.get());
  ASSERT_TRUE(result.ok) << curve_name(GetParam());
  ASSERT_EQ(pump_write(pair.client.get(), to_bytes("x")), TlsResult::kOk);
  Bytes got;
  ASSERT_EQ(pump_read(pair.server.get(), &got), TlsResult::kOk);
  EXPECT_EQ(to_string(got), "x");
}

TEST(TlsHandshake, Table1OpCounts) {
  // The cross-validation behind the simulator's workload model: real
  // handshakes must perform exactly the server-side op counts of Table 1.
  {
    Pair pair(CipherSuite::kTlsRsaWithAes128CbcSha);
    ASSERT_TRUE(pump_handshake(pair.client.get(), pair.server.get()).ok);
    const OpCounters& ops = pair.server->op_counters();
    EXPECT_EQ(ops.rsa, 1);
    EXPECT_EQ(ops.ecc, 0);
    EXPECT_EQ(ops.prf, 4);
  }
  {
    Pair pair(CipherSuite::kEcdheRsaWithAes128CbcSha);
    ASSERT_TRUE(pump_handshake(pair.client.get(), pair.server.get()).ok);
    const OpCounters& ops = pair.server->op_counters();
    EXPECT_EQ(ops.rsa, 1);
    EXPECT_EQ(ops.ecc, 2);
    EXPECT_EQ(ops.prf, 4);
  }
  {
    Pair pair(CipherSuite::kEcdheEcdsaWithAes128CbcSha);
    ASSERT_TRUE(pump_handshake(pair.client.get(), pair.server.get()).ok);
    const OpCounters& ops = pair.server->op_counters();
    EXPECT_EQ(ops.rsa, 0);
    EXPECT_EQ(ops.ecc, 3);
    EXPECT_EQ(ops.prf, 4);
  }
  {
    Pair pair(CipherSuite::kTls13Aes128Sha256);
    ASSERT_TRUE(pump_handshake(pair.client.get(), pair.server.get()).ok);
    const OpCounters& ops = pair.server->op_counters();
    EXPECT_EQ(ops.rsa, 1);
    EXPECT_EQ(ops.ecc, 2);
    EXPECT_EQ(ops.prf, 0);
    EXPECT_GT(ops.hkdf, 4);  // Table 1: "> 4" key-derivation ops
  }
}

TEST(TlsHandshake, Tls13HandshakeAndEcho) {
  Pair pair(CipherSuite::kTls13Aes128Sha256);
  const auto result = pump_handshake(pair.client.get(), pair.server.get());
  ASSERT_TRUE(result.ok) << "client=" << tls_result_name(result.client_last)
                         << " server=" << tls_result_name(result.server_last);
  EXPECT_EQ(pair.server->version(), ProtocolVersion::kTls13);
  ASSERT_EQ(pump_write(pair.client.get(), to_bytes("over 1.3")),
            TlsResult::kOk);
  Bytes got;
  ASSERT_EQ(pump_read(pair.server.get(), &got), TlsResult::kOk);
  EXPECT_EQ(to_string(got), "over 1.3");
  ASSERT_EQ(pump_write(pair.server.get(), to_bytes("resp")), TlsResult::kOk);
  got.clear();
  ASSERT_EQ(pump_read(pair.client.get(), &got), TlsResult::kOk);
  EXPECT_EQ(to_string(got), "resp");
}

TEST(TlsHandshake, NoCommonSuiteFails) {
  net::MemoryPipe pipe;
  engine::SoftwareProvider sp{1}, cp{2};
  TlsContextConfig scfg;
  scfg.is_server = true;
  scfg.cipher_suites = {CipherSuite::kEcdheRsaWithAes128CbcSha};
  TlsContext sctx(scfg, &sp);
  sctx.credentials().rsa_key = &test_rsa2048();
  TlsContextConfig ccfg;
  ccfg.cipher_suites = {CipherSuite::kTlsRsaWithAes128CbcSha};
  TlsContext cctx(ccfg, &cp);
  TlsConnection server(&sctx, &pipe.b());
  TlsConnection client(&cctx, &pipe.a());
  const auto result = pump_handshake(&client, &server);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.server_last, TlsResult::kError);
}

TEST(TlsResumption, SessionIdAbbreviatedHandshake) {
  Pair pair(CipherSuite::kEcdheRsaWithAes128CbcSha);
  ASSERT_TRUE(pump_handshake(pair.client.get(), pair.server.get()).ok);
  const auto session = pair.client->established_session();
  ASSERT_TRUE(session.has_value());
  EXPECT_EQ(session->session_id.size(), kSessionIdSize);

  // Second connection offering the session: abbreviated handshake.
  pair.reset_connections();
  pair.client->offer_session(*session);
  ASSERT_TRUE(pump_handshake(pair.client.get(), pair.server.get()).ok);
  EXPECT_TRUE(pair.server->resumed_session());
  EXPECT_TRUE(pair.client->resumed_session());
  const OpCounters& ops = pair.server->op_counters();
  // Abbreviated handshake involves PRF calculations only (paper §5.3):
  // key expansion + 2 Finished.
  EXPECT_EQ(ops.rsa, 0);
  EXPECT_EQ(ops.ecc, 0);
  EXPECT_EQ(ops.prf, 3);
  EXPECT_EQ(pair.server_ctx->session_cache().hits(), 1u);

  // Data still flows.
  ASSERT_EQ(pump_write(pair.client.get(), to_bytes("resumed")),
            TlsResult::kOk);
  Bytes got;
  ASSERT_EQ(pump_read(pair.server.get(), &got), TlsResult::kOk);
  EXPECT_EQ(to_string(got), "resumed");
}

TEST(TlsResumption, TicketAbbreviatedHandshake) {
  Pair pair(CipherSuite::kEcdheRsaWithAes128CbcSha, CurveId::kP256,
            /*tickets=*/true);
  ASSERT_TRUE(pump_handshake(pair.client.get(), pair.server.get()).ok);
  const auto session = pair.client->established_session();
  ASSERT_TRUE(session.has_value());
  ASSERT_FALSE(session->ticket.empty());

  pair.reset_connections();
  pair.client->offer_session(*session);
  ASSERT_TRUE(pump_handshake(pair.client.get(), pair.server.get()).ok);
  EXPECT_TRUE(pair.server->resumed_session());
  EXPECT_EQ(pair.server->op_counters().rsa, 0);
  EXPECT_EQ(pair.server->op_counters().prf, 3);
}

TEST(TlsResumption, ExpiredSessionFallsBackToFull) {
  Pair pair(CipherSuite::kTlsRsaWithAes128CbcSha);
  uint64_t fake_now = 1'000'000;
  pair.server_ctx->set_clock([&fake_now] { return fake_now; });
  ASSERT_TRUE(pump_handshake(pair.client.get(), pair.server.get()).ok);
  const auto session = pair.client->established_session();
  ASSERT_TRUE(session.has_value());

  fake_now += 2 * 3'600'000;  // beyond the 1h lifetime
  pair.reset_connections();
  pair.client->offer_session(*session);
  ASSERT_TRUE(pump_handshake(pair.client.get(), pair.server.get()).ok);
  EXPECT_FALSE(pair.server->resumed_session());
  EXPECT_EQ(pair.server->op_counters().rsa, 1);  // full handshake again
}

TEST(TlsResumption, UnknownSessionIdFallsBackToFull) {
  Pair pair(CipherSuite::kTlsRsaWithAes128CbcSha);
  ClientSession bogus;
  bogus.suite = CipherSuite::kTlsRsaWithAes128CbcSha;
  bogus.session_id = Bytes(kSessionIdSize, 0xab);
  bogus.master_secret = Bytes(kMasterSecretSize, 0xcd);
  pair.client->offer_session(bogus);
  ASSERT_TRUE(pump_handshake(pair.client.get(), pair.server.get()).ok);
  EXPECT_FALSE(pair.server->resumed_session());
}

TEST(TlsData, LargeTransferFragmentsAt16K) {
  Pair pair(CipherSuite::kTlsRsaWithAes128CbcSha);
  ASSERT_TRUE(pump_handshake(pair.client.get(), pair.server.get()).ok);

  // 100 KB -> ceil(100/16) = 7 records (paper §5.4 cipher-op accounting).
  Bytes big(100 * 1024);
  for (size_t i = 0; i < big.size(); ++i)
    big[i] = static_cast<uint8_t>(i * 31 + 7);
  const int cipher_before = pair.server->op_counters().cipher;
  ASSERT_EQ(pump_write(pair.server.get(), big), TlsResult::kOk);
  EXPECT_EQ(pair.server->op_counters().cipher - cipher_before, 7);

  Bytes got;
  while (got.size() < big.size()) {
    const TlsResult r = pump_read(pair.client.get(), &got);
    ASSERT_EQ(r, TlsResult::kOk);
  }
  EXPECT_EQ(got, big);
}

TEST(TlsData, ShutdownDeliversCloseNotify) {
  Pair pair(CipherSuite::kTlsRsaWithAes128CbcSha);
  ASSERT_TRUE(pump_handshake(pair.client.get(), pair.server.get()).ok);
  ASSERT_EQ(pair.client->shutdown(), TlsResult::kOk);
  Bytes got;
  EXPECT_EQ(pump_read(pair.server.get(), &got), TlsResult::kClosed);
}

TEST(TlsData, ChunkedTransportStillWorks) {
  // Tiny transport chunks force record reassembly across many reads.
  Pair pair(CipherSuite::kEcdheRsaWithAes128CbcSha);
  pair.pipe.set_chunk_limit(7);
  ASSERT_TRUE(pump_handshake(pair.client.get(), pair.server.get()).ok);
  ASSERT_EQ(pump_write(pair.client.get(), to_bytes("chunked transport")),
            TlsResult::kOk);
  Bytes got;
  ASSERT_EQ(pump_read(pair.server.get(), &got), TlsResult::kOk);
  EXPECT_EQ(to_string(got), "chunked transport");
}

TEST(TlsData, BackpressureSurfacesWantWrite) {
  Pair pair(CipherSuite::kTlsRsaWithAes128CbcSha);
  ASSERT_TRUE(pump_handshake(pair.client.get(), pair.server.get()).ok);
  pair.pipe.set_capacity(64);  // tiny: one record cannot fit

  Bytes payload(8 * 1024, 0x5a);
  TlsResult r = pair.client->write(payload);
  EXPECT_EQ(r, TlsResult::kWantWrite);
  // Drain on the server side, then finish the write.
  Bytes got;
  int guard = 0;
  while (r == TlsResult::kWantWrite && guard++ < 10000) {
    (void)pump_read(pair.server.get(), &got);  // frees pipe capacity
    r = pair.client->write({});
  }
  EXPECT_EQ(r, TlsResult::kOk);
  while (got.size() < payload.size()) {
    ASSERT_EQ(pump_read(pair.server.get(), &got), TlsResult::kOk);
  }
  EXPECT_EQ(got, payload);
}

TEST(TlsData, CorruptedRecordFailsHandshake) {
  net::MemoryPipe pipe;
  engine::SoftwareProvider sp{1}, cp{2};
  TlsContextConfig scfg;
  scfg.is_server = true;
  scfg.cipher_suites = {CipherSuite::kTlsRsaWithAes128CbcSha};
  TlsContext sctx(scfg, &sp);
  sctx.credentials().rsa_key = &test_rsa2048();
  TlsConnection server(&sctx, &pipe.b());
  // A complete record whose handshake header claims a 16 MB message.
  const Bytes garbage = from_hex("160303000901ffffff0000000000");
  pipe.a().write(garbage.data(), garbage.size());
  EXPECT_EQ(server.handshake(), TlsResult::kError);

  // And a record with an impossible length field.
  net::MemoryPipe pipe2;
  TlsConnection server2(&sctx, &pipe2.b());
  const Bytes bad_len = from_hex("1603037fff");
  pipe2.a().write(bad_len.data(), bad_len.size());
  EXPECT_EQ(server2.handshake(), TlsResult::kError);
}

namespace {
Bytes drain_raw(Transport& t) {
  Bytes out;
  uint8_t buf[4096];
  for (;;) {
    auto io = t.read(buf, sizeof(buf));
    if (io.status != IoStatus::kOk) break;
    out.insert(out.end(), buf, buf + io.bytes);
  }
  return out;
}
}  // namespace

TEST(TlsAlerts, OversizedHandshakeClaimSendsDecodeError) {
  net::MemoryPipe pipe;
  engine::SoftwareProvider sp{1};
  TlsContextConfig scfg;
  scfg.is_server = true;
  scfg.cipher_suites = {CipherSuite::kTlsRsaWithAes128CbcSha};
  TlsContext sctx(scfg, &sp);
  sctx.credentials().rsa_key = &test_rsa2048();
  TlsConnection server(&sctx, &pipe.b());
  // Handshake header claiming a 16 MB message: fatal, and the peer must be
  // told why — a fatal decode_error alert on the wire, not a silent close.
  const Bytes garbage = from_hex("160303000901ffffff0000000000");
  pipe.a().write(garbage.data(), garbage.size());
  EXPECT_EQ(server.handshake(), TlsResult::kError);
  ASSERT_TRUE(server.last_alert_sent().has_value());
  EXPECT_EQ(*server.last_alert_sent(), AlertDescription::kDecodeError);
  const Bytes wire = drain_raw(pipe.a());
  // 5-byte record header (alert, TLS1.2, len 2) + level fatal + decode_error.
  ASSERT_EQ(wire.size(), 7u);
  EXPECT_EQ(wire[0], static_cast<uint8_t>(ContentType::kAlert));
  EXPECT_EQ(wire[5], static_cast<uint8_t>(AlertLevel::kFatal));
  EXPECT_EQ(wire[6], static_cast<uint8_t>(AlertDescription::kDecodeError));
}

TEST(TlsAlerts, OversizedRecordSendsRecordOverflow) {
  net::MemoryPipe pipe;
  engine::SoftwareProvider sp{1};
  TlsContextConfig scfg;
  scfg.is_server = true;
  scfg.cipher_suites = {CipherSuite::kTlsRsaWithAes128CbcSha};
  TlsContext sctx(scfg, &sp);
  sctx.credentials().rsa_key = &test_rsa2048();
  TlsConnection server(&sctx, &pipe.b());
  // Unprotected record claiming 0x7fff bytes: above the 2^14 plaintext
  // bound, rejected from the header alone with record_overflow.
  const Bytes bad_len = from_hex("1603037fff");
  pipe.a().write(bad_len.data(), bad_len.size());
  EXPECT_EQ(server.handshake(), TlsResult::kError);
  ASSERT_TRUE(server.last_alert_sent().has_value());
  EXPECT_EQ(*server.last_alert_sent(), AlertDescription::kRecordOverflow);
  const Bytes wire = drain_raw(pipe.a());
  ASSERT_EQ(wire.size(), 7u);
  EXPECT_EQ(wire[6], static_cast<uint8_t>(AlertDescription::kRecordOverflow));
}

TEST(TlsAlerts, SendAlertTearsDownWithReason) {
  Pair pair(CipherSuite::kTlsRsaWithAes128CbcSha);
  ASSERT_TRUE(pump_handshake(pair.client.get(), pair.server.get()).ok);
  // The overload plane's handshake/idle teardown path: an explicit alert.
  EXPECT_EQ(pair.server->send_alert(AlertLevel::kFatal,
                                    AlertDescription::kUserCanceled),
            TlsResult::kOk);
  ASSERT_TRUE(pair.server->last_alert_sent().has_value());
  EXPECT_EQ(*pair.server->last_alert_sent(),
            AlertDescription::kUserCanceled);
  // The peer observes the (encrypted) alert as an orderly close.
  Bytes got;
  EXPECT_EQ(pair.client->read(&got), TlsResult::kClosed);
}

TEST(TlsMessages, ClientHelloRoundTrip) {
  ClientHello hello;
  hello.version = ProtocolVersion::kTls12;
  hello.random = Bytes(kRandomSize, 0x11);
  hello.session_id = Bytes(kSessionIdSize, 0x22);
  hello.cipher_suites = {CipherSuite::kTlsRsaWithAes128CbcSha,
                         CipherSuite::kEcdheRsaWithAes128CbcSha};
  hello.curve = CurveId::kB409;
  hello.session_ticket = to_bytes("ticket-bytes");
  auto parsed = ClientHello::parse(hello.encode());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().random, hello.random);
  EXPECT_EQ(parsed.value().session_id, hello.session_id);
  EXPECT_EQ(parsed.value().cipher_suites, hello.cipher_suites);
  EXPECT_EQ(parsed.value().curve, CurveId::kB409);
  EXPECT_EQ(parsed.value().session_ticket, to_bytes("ticket-bytes"));
}

TEST(TlsMessages, TruncatedMessagesRejected) {
  ClientHello hello;
  hello.random = Bytes(kRandomSize, 0x11);
  hello.cipher_suites = {CipherSuite::kTlsRsaWithAes128CbcSha};
  Bytes enc = hello.encode();
  enc.pop_back();
  EXPECT_FALSE(ClientHello::parse(enc).is_ok());
  EXPECT_FALSE(ServerHello::parse(Bytes{0x03}).is_ok());
  EXPECT_FALSE(ServerKeyExchange::parse(Bytes{0x17, 0x00}).is_ok());
}

TEST(TlsSession, CacheLruEvictsOldest) {
  SessionCache cache(2, 1000000);
  SessionState s;
  s.master_secret = Bytes(48, 1);
  cache.put(Bytes(32, 1), s, 0);
  cache.put(Bytes(32, 2), s, 1);
  EXPECT_TRUE(cache.get(Bytes(32, 1), 2).has_value());  // refresh #1
  cache.put(Bytes(32, 3), s, 3);                        // evicts #2
  EXPECT_FALSE(cache.get(Bytes(32, 2), 4).has_value());
  EXPECT_TRUE(cache.get(Bytes(32, 1), 5).has_value());
  EXPECT_TRUE(cache.get(Bytes(32, 3), 6).has_value());
}

TEST(TlsSession, TicketTamperRejected) {
  TicketKeeper keeper(to_bytes("seed"), 1000000);
  HmacDrbg rng(HashAlg::kSha256, to_bytes("iv"));
  SessionState s;
  s.suite = CipherSuite::kEcdheRsaWithAes128CbcSha;
  s.master_secret = Bytes(48, 0x77);
  Bytes ticket = keeper.seal(s, 100, rng);
  auto ok = keeper.unseal(ticket, 200);
  ASSERT_TRUE(ok.is_ok());
  EXPECT_EQ(ok.value().master_secret, s.master_secret);
  EXPECT_EQ(ok.value().suite, s.suite);

  ticket[5] ^= 0x01;
  EXPECT_FALSE(keeper.unseal(ticket, 200).is_ok());
}

TEST(TlsSession, TicketExpiryEnforced) {
  TicketKeeper keeper(to_bytes("seed"), 1000);
  HmacDrbg rng(HashAlg::kSha256, to_bytes("iv"));
  SessionState s;
  s.master_secret = Bytes(48, 0x01);
  const Bytes ticket = keeper.seal(s, 100, rng);
  EXPECT_TRUE(keeper.unseal(ticket, 600).is_ok());
  EXPECT_FALSE(keeper.unseal(ticket, 5000).is_ok());
}

}  // namespace
}  // namespace qtls::tls
