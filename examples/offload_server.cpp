// Standalone offload server — the disaggregated end of the remote tier
// (DESIGN.md §13). Point workers at it with:
//
//   ssl_engine {
//       remote_offload { enable on; port 7433; }
//   }
//
// and every op the worker's QAT lanes cannot serve rides the batch-RPC
// channel here instead of falling straight to inline software.
//
//   ./offload_server [port] [stats_interval_s]
#include <csignal>
#include <cstdio>
#include <cstdlib>

#include "remote/offload_server.h"

using namespace qtls;

namespace {
std::atomic<bool> g_stop{false};
void on_signal(int) { g_stop.store(true); }
}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 7433;
  int stats_interval_s = 10;
  if (argc > 1) port = static_cast<uint16_t>(std::atoi(argv[1]));
  if (argc > 2) stats_interval_s = std::atoi(argv[2]);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  remote::OffloadServer server;
  const Status st = server.start(port);
  if (!st.is_ok()) {
    std::fprintf(stderr, "listen failed: %s\n", st.message().c_str());
    return 1;
  }
  std::printf("offload server on 127.0.0.1:%u\n", server.port());

  // serve() in slices so the stats line and the signal flag get a look-in.
  uint64_t rounds = 0;
  const uint64_t rounds_per_report =
      stats_interval_s > 0
          ? static_cast<uint64_t>(stats_interval_s) * 1000 / 20
          : 0;
  while (!g_stop.load(std::memory_order_relaxed)) {
    server.run_once(20);
    if (rounds_per_report && ++rounds % rounds_per_report == 0) {
      const remote::OffloadServerCore::Stats s = server.total_stats();
      std::printf(
          "conns=%zu frames=%llu ops=%llu ok=%llu refused=%llu bad=%llu\n",
          server.connections(),
          static_cast<unsigned long long>(s.frames_rx),
          static_cast<unsigned long long>(s.ops_rx),
          static_cast<unsigned long long>(s.ops_ok),
          static_cast<unsigned long long>(s.refused_expired),
          static_cast<unsigned long long>(s.bad_requests));
    }
  }
  std::printf("shutting down\n");
  return 0;
}
