// TLS terminator example — the second deployment shape the paper targets
// (§1: "TLS servers or terminators"): terminate TLS at the edge with QAT
// offload, forward plaintext HTTP to a backend.
//
//   client ──TLS──> terminator ──plaintext──> backend (in-process)
//
// The terminator drives TlsConnection directly (no Worker), showing the
// public API's WANT_READ/WANT_ASYNC handling in a bare event loop.
#include <chrono>
#include <cstdio>
#include <deque>

#include "crypto/keystore.h"
#include "engine/qat_engine.h"
#include "net/socket_transport.h"
#include "server/http.h"
#include "tls/connection.h"

using namespace qtls;

namespace {

// A trivial plaintext HTTP backend: consumes a request, emits a response.
class Backend {
 public:
  Bytes handle(BytesView request_bytes) {
    parser_.feed(request_bytes);
    Bytes out;
    while (auto request = parser_.next()) {
      ++requests_;
      const std::string body =
          "terminated TLS for " + request->path + " (request #" +
          std::to_string(requests_) + ")";
      append(out, server::build_http_response(200, to_bytes(body),
                                              request->keepalive));
    }
    return out;
  }
  int requests() const { return requests_; }

 private:
  server::HttpRequestParser parser_;
  int requests_ = 0;
};

}  // namespace

int main() {
  qat::QatDevice device;
  engine::QatEngineConfig engine_config;  // async offload
  engine::QatEngineProvider qat_engine(device.allocate_instance(),
                                       engine_config);

  tls::TlsContextConfig term_config;
  term_config.is_server = true;
  term_config.async_mode = true;
  term_config.cipher_suites = {tls::CipherSuite::kEcdheRsaWithAes128CbcSha};
  tls::TlsContext term_ctx(term_config, &qat_engine);
  term_ctx.credentials().rsa_key = &test_rsa2048();

  engine::SoftwareProvider client_provider;
  tls::TlsContextConfig client_config;
  client_config.cipher_suites = term_config.cipher_suites;
  tls::TlsContext client_ctx(client_config, &client_provider);

  // One terminated connection over a socketpair.
  auto pair = net::make_socketpair();
  if (!pair.is_ok()) {
    std::fprintf(stderr, "socketpair failed\n");
    return 1;
  }
  net::SocketTransport client_side(pair.value().first);
  net::SocketTransport term_side(pair.value().second);
  tls::TlsConnection client(&client_ctx, &client_side);
  tls::TlsConnection terminator(&term_ctx, &term_side);
  Backend backend;

  auto pump = [&](tls::TlsResult r) {
    if (r == tls::TlsResult::kWantAsync) qat_engine.poll();
    return r;
  };

  // Handshake.
  while (!(client.handshake_complete() && terminator.handshake_complete())) {
    if (!client.handshake_complete()) (void)client.handshake();
    if (!terminator.handshake_complete()) (void)pump(terminator.handshake());
  }
  std::printf("TLS terminated at the edge: %s, %d async RSA/EC/PRF ops "
              "offloaded\n",
              tls::cipher_suite_info(terminator.suite()).name,
              terminator.op_counters().rsa + terminator.op_counters().ecc +
                  terminator.op_counters().prf);

  // Three keepalive requests through the terminator.
  for (int i = 0; i < 3; ++i) {
    const Bytes request = server::build_http_request("/asset" +
                                                     std::to_string(i), true);
    while (pump(client.write(request)) == tls::TlsResult::kWantAsync) {
    }
    // Terminator: decrypt, forward plaintext to the backend, re-encrypt the
    // backend's answer.
    Bytes plaintext;
    while (pump(terminator.read(&plaintext)) == tls::TlsResult::kWantAsync) {
    }
    const Bytes response = backend.handle(plaintext);
    while (pump(terminator.write(response)) == tls::TlsResult::kWantAsync) {
    }
    Bytes decrypted;
    while (pump(client.read(&decrypted)) == tls::TlsResult::kWantAsync) {
    }
    auto head = server::parse_http_response_head(decrypted);
    std::printf("request %d -> %zu response bytes (status %d)\n", i,
                decrypted.size(), head ? head->status : -1);
  }

  std::printf("backend served %d plaintext requests behind the terminator\n",
              backend.requests());
  std::printf("device: %s\n", device.fw_counters().to_string().c_str());
  return backend.requests() == 3 ? 0 : 1;
}
