// Configuration explorer — the five paper configurations side by side on
// the virtual-time simulator, plus a knob you can turn (workers, suite)
// from the command line. A miniature of the Figure 7 benches, meant as the
// entry point into the sim API.
//
//   ./offload_configs [workers] [suite]
//   suite: tls-rsa | ecdhe-rsa | ecdhe-ecdsa | tls13
#include <cstdio>
#include <cstring>

#include "common/stats.h"
#include "sim/system.h"

using namespace qtls;

int main(int argc, char** argv) {
  int workers = 8;
  tls::CipherSuite suite = tls::CipherSuite::kTlsRsaWithAes128CbcSha;
  if (argc > 1) workers = std::atoi(argv[1]);
  if (argc > 2) {
    if (std::strcmp(argv[2], "ecdhe-rsa") == 0)
      suite = tls::CipherSuite::kEcdheRsaWithAes128CbcSha;
    else if (std::strcmp(argv[2], "ecdhe-ecdsa") == 0)
      suite = tls::CipherSuite::kEcdheEcdsaWithAes128CbcSha;
    else if (std::strcmp(argv[2], "tls13") == 0)
      suite = tls::CipherSuite::kTls13Aes128Sha256;
  }

  std::printf("five configurations, %d workers, %s\n\n", workers,
              tls::cipher_suite_info(suite).name);
  TextTable table({"config", "kCPS", "mean latency ms", "p99 ms",
                   "vs SW"});
  double sw_cps = 0;
  for (sim::Config cfg :
       {sim::Config::kSW, sim::Config::kQatS, sim::Config::kQatA,
        sim::Config::kQatAH, sim::Config::kQtls}) {
    sim::RunParams p;
    p.config = cfg;
    p.workers = workers;
    p.clients = 400;
    p.suite = suite;
    p.warmup = 600 * sim::kMs;
    p.duration = 700 * sim::kMs;
    const sim::RunResult r = sim::run_simulation(p);
    if (cfg == sim::Config::kSW) sw_cps = r.cps;
    table.add_row(
        {sim::config_name(cfg), format_double(r.cps / 1000, 1),
         format_double(r.latency.mean_nanos() / 1e6, 2),
         format_double(static_cast<double>(r.latency.percentile_nanos(99)) /
                           1e6, 2),
         format_double(r.cps / sw_cps, 2) + "x"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "The async framework (QAT+A) removes the offload-I/O blocking; the\n"
      "heuristic poller (QAT+AH) removes the polling thread; the kernel-\n"
      "bypass queue (QTLS) removes the user/kernel transitions (paper §3).\n");
  return 0;
}
