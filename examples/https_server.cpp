// HTTPS web server example — the paper's evaluation setup in one process:
// an event-driven worker with the full QTLS pipeline (async offload +
// heuristic polling + kernel-bypass notification), configured through the
// Appendix A.7 ssl_engine framework, plus an in-process client fleet.
//
// Default ("self test"): drive N clients over AF_UNIX socketpairs for a few
// seconds and print throughput/latency stats. With --listen <port> it
// instead serves HTTPS on 127.0.0.1:<port> through a WorkerPool until
// SIGTERM/SIGINT, then drains gracefully: accepts stop, in-flight requests
// finish, and stragglers are force-closed at the drain deadline (connect
// with the tls_terminator example or this binary's own client mode is left
// as an exercise — the wire format is this library's own; see DESIGN.md §5).
#include <csignal>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "client/https_client.h"
#include "crypto/keystore.h"
#include "server/control.h"
#include "server/worker_pool.h"

using namespace qtls;

namespace {

const char* kConf = R"(
worker_processes 2;
ssl_engine {
    use qat_engine;
    default_algorithm RSA,EC,DH,PKEY_CRYPTO;
    qat_topology {
        devices 2;                     # logical QAT cards (DESIGN.md 12)
        numa_nodes 1;
        spill_threshold 32;            # queue-depth gap before spillover
    }
    qat_engine {
        qat_offload_mode async;
        qat_notify_mode poll;          # kernel-bypass async queue
        qat_poll_mode heuristic;
        qat_heuristic_poll_asym_threshold 48;
        qat_heuristic_poll_sym_threshold 24;
    }
}
overload {
    handshake_timeout_ms 5000;         # accept -> handshake complete
    idle_timeout_ms 30000;             # keepalive wait / request trickle
    write_stall_timeout_ms 10000;      # peers that stop reading responses
    max_handshaking 256;               # admission cap per worker
    past_cap shed;                     # excess accepts get a clean close
    max_header_bytes 8192;             # HTTP parser bounds (431 past them)
    max_header_count 100;
}
control {                              # self-healing plane (DESIGN.md 15)
    heartbeat_interval_ms 100;         # supervision window
    missed_windows 5;                  # frozen windows before "wedged"
    eject_grace_ms 500;                # wait for an ejected worker thread
    supervise on;
}
credentials {
    rsa 2048;                          # SIGHUP/POST /reload re-resolves this
}
)";

// SIGTERM/SIGINT set the flag; the main thread notices and drains the pool.
volatile std::sig_atomic_t g_shutdown = 0;
void on_signal(int) { g_shutdown = 1; }

constexpr uint64_t kDrainDeadlineMs = 5000;

}  // namespace

int main(int argc, char** argv) {
  int listen_port = -1;
  int seconds = 3;
  int clients = 8;
  bool show_stats = false;
  const char* file_root = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--listen") == 0 && i + 1 < argc)
      listen_port = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc)
      seconds = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc)
      clients = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--file-root") == 0 && i + 1 < argc)
      file_root = argv[++i];
    else if (std::strcmp(argv[i], "--stats") == 0)
      show_stats = true;
  }

  // Accelerator + engine from the configuration framework.
  auto settings = server::parse_ssl_engine_settings(kConf);
  if (!settings.is_ok()) {
    std::fprintf(stderr, "config error: %s\n",
                 settings.status().to_string().c_str());
    return 1;
  }
  // Device fleet from the qat_topology{} block; each logical device is
  // DH8970-shaped (3 endpoints x 12 engines). The single-worker self-test
  // below rides device 0; the pool stripes workers across the fleet.
  qat::TopologyConfig topo_config;
  topo_config.num_devices = settings.value().topology.devices;
  topo_config.numa_nodes = settings.value().topology.numa_nodes;
  topo_config.spill_threshold = settings.value().topology.spill_threshold;
  qat::DeviceTopology topology(topo_config);
  engine::QatEngineProvider qat_engine(topology.device(0).allocate_instance(),
                                       settings.value().engine);

  tls::TlsContextConfig tls_config;
  tls_config.is_server = true;
  tls_config.async_mode =
      settings.value().engine.offload_mode == engine::OffloadMode::kAsync;
  tls_config.cipher_suites = {tls::CipherSuite::kEcdheRsaWithAes128CbcSha,
                              tls::CipherSuite::kTlsRsaWithAes128CbcSha};
  tls::TlsContext tls_ctx(tls_config, &qat_engine);
  tls_ctx.credentials().rsa_key = &test_rsa2048();
  tls_ctx.credentials().ecdsa_p256 = &test_ec_key_p256();

  server::WorkerConfig worker_config;
  worker_config.notify = settings.value().notify;
  worker_config.poll = settings.value().poll;
  worker_config.heuristic = settings.value().heuristic;
  worker_config.overload = settings.value().overload;
  worker_config.http_limits = settings.value().http_limits;
  worker_config.response_body_size = 1024;
  // Static-file streaming (DESIGN.md §11): --file-root overrides the conf's
  // http{file_root} knob; paths resolve under the root, misses answer 404.
  worker_config.file_root =
      file_root != nullptr ? file_root : settings.value().file_root;

  if (listen_port >= 0) {
    // Serving mode: a WorkerPool (SO_REUSEPORT accept sharing, one QAT
    // instance per worker) with SIGTERM/SIGINT wired to graceful drain and
    // the self-healing control plane (DESIGN.md §15) on top: SIGHUP hot
    // reloads the conf, the supervisor watchdogs every worker, and each
    // worker serves GET /healthz, GET /readyz and POST /reload.
    server::ControlPlane control;
    if (auto st = control.load(kConf); !st.is_ok()) {
      std::fprintf(stderr, "control load failed: %s\n", st.to_string().c_str());
      return 1;
    }
    server::WorkerPoolOptions options;
    options.workers = settings.value().worker_processes;
    options.worker_config = worker_config;
    options.worker_config.control = &control;
    options.tls_config = tls_config;
    options.engine_config = settings.value().engine;
    options.worker_affinity = settings.value().topology.worker_affinity;
    auto pool = std::make_unique<server::WorkerPool>(
        &topology, &test_rsa2048(), options);
    auto status = pool->start(static_cast<uint16_t>(listen_port));
    if (!status.is_ok()) {
      std::fprintf(stderr, "listen failed: %s\n", status.to_string().c_str());
      return 1;
    }
    control.attach(pool.get());
    control.install_sighup();
    control.start_supervisor();
    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);
    std::printf(
        "serving HTTPS on 127.0.0.1:%u with %d workers "
        "(SIGHUP reloads; SIGTERM/ctrl-c drains, deadline %llu ms)\n",
        pool->port(), pool->workers(),
        static_cast<unsigned long long>(kDrainDeadlineMs));
    while (!g_shutdown)
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::printf("draining: accepts stopped, in-flight requests finishing\n");
    control.stop_supervisor();
    pool->shutdown(kDrainDeadlineMs);
    const auto pstats = pool->stats();
    const auto cstats = control.stats();
    std::printf(
        "drained: %llu connections accepted, %llu reloads, %llu worker "
        "restarts\n%s",
        static_cast<unsigned long long>(pstats.totals.accepted),
        static_cast<unsigned long long>(cstats.reloads),
        static_cast<unsigned long long>(cstats.worker_restarts),
        pool->stats_text().c_str());
    return 0;
  }

  server::Worker worker(&tls_ctx, &qat_engine, worker_config);

  // Self test: in-process clients over socketpairs.
  engine::SoftwareProvider client_provider;
  tls::TlsContextConfig client_config;
  client_config.cipher_suites = tls_config.cipher_suites;
  tls::TlsContext client_ctx(client_config, &client_provider);

  client::Pool pool;
  for (int i = 0; i < clients; ++i) {
    client::ClientOptions copts;
    copts.keepalive = false;  // s_time style: handshake per request
    copts.full_handshake_ratio = 0.5;
    pool.add(std::make_unique<client::HttpsClient>(
        &client_ctx,
        [&worker]() -> int {
          auto pair = net::make_socketpair();
          if (!pair.is_ok()) return -1;
          (void)worker.adopt(pair.value().second);
          return pair.value().first;
        },
        copts, 1000 + static_cast<uint64_t>(i)));
  }

  std::printf("self test: %d clients, %d seconds, QTLS configuration\n",
              clients, seconds);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    for (auto& c : pool.clients()) c->step();
    worker.run_once(0);
  }

  const client::ClientStats stats = pool.aggregate();
  const auto& wstats = worker.stats();
  std::printf("\nresults over %ds:\n", seconds);
  std::printf("  handshakes: %llu (%llu resumed)\n",
              static_cast<unsigned long long>(stats.connections),
              static_cast<unsigned long long>(stats.resumed));
  std::printf("  requests:   %llu, errors: %llu\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.errors));
  std::printf("  CPS:        %.0f\n",
              static_cast<double>(stats.connections) / seconds);
  std::printf("  latency:    %s\n", stats.response_time.summary().c_str());
  std::printf("  worker: async parks=%llu disorder events=%llu\n",
              static_cast<unsigned long long>(wstats.async_parks),
              static_cast<unsigned long long>(wstats.disorder_events));
  if (worker.poller_stats()) {
    std::printf("  heuristic polls=%llu (timeliness=%llu efficiency=%llu)\n",
                static_cast<unsigned long long>(worker.poller_stats()->polls),
                static_cast<unsigned long long>(
                    worker.poller_stats()->timeliness_triggers),
                static_cast<unsigned long long>(
                    worker.poller_stats()->efficiency_triggers));
  }
  std::printf("  device: %s\n",
              topology.device(0).fw_counters().to_string().c_str());
  std::printf("  topology: %s\n", topology.stats_json().c_str());

  if (show_stats) {
    // Fetch the worker's own GET /stats endpoint (DESIGN.md §8) the way an
    // operator would, over a fresh connection.
    client::ClientOptions sopts;
    sopts.path = "/stats";
    sopts.max_requests = 1;
    client::HttpsClient stats_client(
        &client_ctx,
        [&worker]() -> int {
          auto pair = net::make_socketpair();
          if (!pair.is_ok()) return -1;
          (void)worker.adopt(pair.value().second);
          return pair.value().first;
        },
        sopts, 9999);
    while (stats_client.step()) worker.run_once(0);
    std::printf("\nGET /stats:\n%.*s\n",
                static_cast<int>(stats_client.last_body().size()),
                reinterpret_cast<const char*>(stats_client.last_body().data()));
  }
  return stats.errors == 0 ? 0 : 1;
}
