// Quickstart: the QTLS pipeline end to end in ~100 lines.
//
//   1. bring up the QAT device model and bind a crypto instance,
//   2. create a QAT engine provider in async offload mode,
//   3. run a TLS 1.2 handshake where every server-side crypto op follows
//      the four phases of the paper (§3.1): pre-processing (submit+pause),
//      QAT response retrieval (poll), async event notification, and
//      post-processing (resume),
//   4. exchange application data over the established session.
//
// Build: cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "crypto/keystore.h"
#include "engine/qat_engine.h"
#include "net/memory_transport.h"
#include "tls/connection.h"

using namespace qtls;

int main() {
  // --- 1. the accelerator ---------------------------------------------
  qat::DeviceConfig device_config;
  device_config.num_endpoints = 1;
  device_config.engines_per_endpoint = 8;
  qat::QatDevice device(device_config);

  // --- 2. the QAT engine (async offload mode) --------------------------
  engine::QatEngineConfig engine_config;
  engine_config.offload_mode = engine::OffloadMode::kAsync;
  engine::QatEngineProvider qat_engine(device.allocate_instance(),
                                       engine_config);

  // --- 3. TLS contexts --------------------------------------------------
  tls::TlsContextConfig server_config;
  server_config.is_server = true;
  server_config.async_mode = true;  // entry points may return kWantAsync
  server_config.cipher_suites = {tls::CipherSuite::kEcdheRsaWithAes128CbcSha};
  tls::TlsContext server_ctx(server_config, &qat_engine);
  server_ctx.credentials().rsa_key = &test_rsa2048();

  engine::SoftwareProvider client_provider;
  tls::TlsContextConfig client_config;
  client_config.cipher_suites = {tls::CipherSuite::kEcdheRsaWithAes128CbcSha};
  tls::TlsContext client_ctx(client_config, &client_provider);

  // --- 4. handshake over an in-memory transport ------------------------
  net::MemoryPipe pipe;
  tls::TlsConnection server(&server_ctx, &pipe.b());
  tls::TlsConnection client(&client_ctx, &pipe.a());

  int pauses = 0;
  while (!(server.handshake_complete() && client.handshake_complete())) {
    if (!client.handshake_complete()) (void)client.handshake();
    if (!server.handshake_complete()) {
      const tls::TlsResult r = server.handshake();
      if (r == tls::TlsResult::kWantAsync) {
        // Pre-processing done: a crypto request is in flight and the
        // server returned control instead of blocking. Retrieval:
        ++pauses;
        while (qat_engine.poll() == 0) {
          // response callback fires the async event once the engine is done
        }
        // Post-processing happens on the next server.handshake() call,
        // which resumes the paused fiber at its pause point.
      } else if (r == tls::TlsResult::kError) {
        std::fprintf(stderr, "handshake failed\n");
        return 1;
      }
    }
  }

  std::printf("handshake complete over %s (%s)\n",
              server.version() == tls::ProtocolVersion::kTls13 ? "TLS 1.3"
                                                               : "TLS 1.2",
              tls::cipher_suite_info(server.suite()).name);
  std::printf("async pauses observed: %d\n", pauses);
  const tls::OpCounters& ops = server.op_counters();
  std::printf("server-side ops (Table 1 row): RSA=%d ECC=%d PRF=%d\n",
              ops.rsa, ops.ecc, ops.prf);

  // --- 5. application data ----------------------------------------------
  while (client.write(to_bytes("GET / HTTP/1.1\r\n\r\n")) ==
         tls::TlsResult::kWantAsync) {
  }
  Bytes request;
  while (server.read(&request) == tls::TlsResult::kWantAsync)
    qat_engine.poll();
  std::printf("server decrypted %zu request bytes\n", request.size());

  while (server.write(to_bytes("HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nhi")) ==
         tls::TlsResult::kWantAsync)
    qat_engine.poll();
  Bytes response;
  while (client.read(&response) == tls::TlsResult::kWantAsync) {
  }
  std::printf("client decrypted %zu response bytes\n", response.size());

  const qat::FwCounters fw = device.fw_counters();
  std::printf("device fw_counters: %s\n", fw.to_string().c_str());
  return 0;
}
