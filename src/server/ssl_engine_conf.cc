#include "server/ssl_engine_conf.h"

#include <algorithm>
#include <cstdlib>

namespace qtls::server {

namespace {
bool has_algorithm(const std::vector<std::string>& algs,
                   const std::string& name) {
  return std::find(algs.begin(), algs.end(), name) != algs.end();
}
}  // namespace

Result<SslEngineSettings> parse_ssl_engine_settings(const ConfBlock& root) {
  SslEngineSettings out;
  out.worker_processes =
      static_cast<int>(root.get_int("worker_processes", 1));
  if (out.worker_processes < 1)
    return err(Code::kInvalidArgument, "worker_processes must be >= 1");

  // session_cache{} shapes the shared resumption plane; parsed before the
  // ssl_engine block so a software-only configuration still gets it.
  if (const ConfBlock* sc = root.find_block("session_cache")) {
    const int64_t shards = sc->get_int(
        "shards", static_cast<int64_t>(out.session.cache_shards));
    if (shards < 1 || shards > 4096)
      return err(Code::kInvalidArgument, "session_cache shards out of range");
    out.session.cache_shards = static_cast<size_t>(shards);
    const int64_t capacity = sc->get_int(
        "capacity", static_cast<int64_t>(out.session.cache_capacity));
    if (capacity < 0)
      return err(Code::kInvalidArgument, "session_cache capacity < 0");
    out.session.cache_capacity = static_cast<size_t>(capacity);
    const int64_t lifetime = sc->get_int(
        "lifetime_ms", static_cast<int64_t>(out.session.lifetime_ms));
    if (lifetime < 1)
      return err(Code::kInvalidArgument, "session_cache lifetime_ms < 1");
    out.session.lifetime_ms = static_cast<uint64_t>(lifetime);
    const int64_t rotate = sc->get_int(
        "ticket_rotate_interval_ms",
        static_cast<int64_t>(out.session.ticket_rotate_interval_ms));
    if (rotate < 0)
      return err(Code::kInvalidArgument,
                 "session_cache ticket_rotate_interval_ms < 0");
    out.session.ticket_rotate_interval_ms = static_cast<uint64_t>(rotate);
    const int64_t accept = sc->get_int(
        "ticket_accept_epochs",
        static_cast<int64_t>(out.session.ticket_accept_epochs));
    if (accept < 0 || accept > 64)
      return err(Code::kInvalidArgument,
                 "session_cache ticket_accept_epochs out of range");
    out.session.ticket_accept_epochs = static_cast<uint32_t>(accept);
  }

  // overload{} shapes the server-side overload-control plane (DESIGN.md
  // §10); like session_cache{} it applies to software-only configs too.
  if (const ConfBlock* ov = root.find_block("overload")) {
    auto get_ms = [&](const char* key, uint64_t dflt,
                      uint64_t* out) -> Status {
      const int64_t v = ov->get_int(key, static_cast<int64_t>(dflt));
      if (v < 0)
        return err(Code::kInvalidArgument, std::string("overload ") + key +
                                               " must be >= 0");
      *out = static_cast<uint64_t>(v);
      return Status::ok();
    };
    QTLS_RETURN_IF_ERROR(get_ms("handshake_timeout_ms",
                                out.overload.handshake_timeout_ms,
                                &out.overload.handshake_timeout_ms));
    QTLS_RETURN_IF_ERROR(get_ms("idle_timeout_ms",
                                out.overload.idle_timeout_ms,
                                &out.overload.idle_timeout_ms));
    QTLS_RETURN_IF_ERROR(get_ms("write_stall_timeout_ms",
                                out.overload.write_stall_timeout_ms,
                                &out.overload.write_stall_timeout_ms));

    const int64_t max_hs = ov->get_int(
        "max_handshaking", static_cast<int64_t>(out.overload.max_handshaking));
    if (max_hs < 0)
      return err(Code::kInvalidArgument, "overload max_handshaking < 0");
    out.overload.max_handshaking = static_cast<size_t>(max_hs);

    const int64_t max_async = ov->get_int(
        "max_async_inflight",
        static_cast<int64_t>(out.overload.max_async_inflight));
    if (max_async < 0)
      return err(Code::kInvalidArgument, "overload max_async_inflight < 0");
    out.overload.max_async_inflight = static_cast<size_t>(max_async);

    const std::string past_cap = ov->get_string("past_cap", "shed");
    if (past_cap == "shed") {
      out.overload.past_cap = OverloadConfig::PastCap::kShed;
    } else if (past_cap == "park") {
      out.overload.past_cap = OverloadConfig::PastCap::kPark;
    } else {
      return err(Code::kInvalidArgument, "bad overload past_cap: " + past_cap);
    }

    const int64_t backlog = ov->get_int(
        "park_backlog", static_cast<int64_t>(out.overload.park_backlog));
    if (backlog < 0)
      return err(Code::kInvalidArgument, "overload park_backlog < 0");
    out.overload.park_backlog = static_cast<size_t>(backlog);

    const int64_t hdr_bytes = ov->get_int(
        "max_header_bytes",
        static_cast<int64_t>(out.http_limits.max_header_bytes));
    if (hdr_bytes < 64)
      return err(Code::kInvalidArgument, "overload max_header_bytes < 64");
    out.http_limits.max_header_bytes = static_cast<size_t>(hdr_bytes);

    const int64_t hdr_count = ov->get_int(
        "max_header_count",
        static_cast<int64_t>(out.http_limits.max_header_count));
    if (hdr_count < 1)
      return err(Code::kInvalidArgument, "overload max_header_count < 1");
    out.http_limits.max_header_count = static_cast<size_t>(hdr_count);
  }

  // http{}: static-file streaming root (DESIGN.md §11).
  if (const ConfBlock* http = root.find_block("http"))
    out.file_root = http->get_string("file_root", "");

  // control{}: the self-healing control plane (DESIGN.md §15).
  if (const ConfBlock* ctl = root.find_block("control")) {
    const int64_t window = ctl->get_int(
        "heartbeat_interval_ms",
        static_cast<int64_t>(out.control.heartbeat_interval_ms));
    if (window < 1)
      return err(Code::kInvalidArgument, "control heartbeat_interval_ms < 1");
    out.control.heartbeat_interval_ms = static_cast<uint64_t>(window);

    const int64_t missed = ctl->get_int(
        "missed_windows", static_cast<int64_t>(out.control.missed_windows));
    if (missed < 1 || missed > 1000)
      return err(Code::kInvalidArgument,
                 "control missed_windows out of range");
    out.control.missed_windows = static_cast<int>(missed);

    const int64_t grace = ctl->get_int(
        "eject_grace_ms", static_cast<int64_t>(out.control.eject_grace_ms));
    if (grace < 0)
      return err(Code::kInvalidArgument, "control eject_grace_ms < 0");
    out.control.eject_grace_ms = static_cast<uint64_t>(grace);

    const std::string supervise = ctl->get_string("supervise", "on");
    if (supervise == "on") {
      out.control.supervise = true;
    } else if (supervise == "off") {
      out.control.supervise = false;
    } else {
      return err(Code::kInvalidArgument,
                 "bad control supervise: " + supervise);
    }
  }

  const ConfBlock* engine_block = root.find_block("ssl_engine");
  if (!engine_block) return out;  // software-only configuration

  const std::string use = engine_block->get_string("use");
  if (use != "qat_engine" && !use.empty())
    return err(Code::kInvalidArgument, "unknown engine: " + use);
  out.use_qat = use == "qat_engine";

  const auto algs = engine_block->get_list("default_algorithm");
  if (!algs.empty()) {
    out.engine.offload_rsa = has_algorithm(algs, "RSA");
    out.engine.offload_ec =
        has_algorithm(algs, "EC") || has_algorithm(algs, "DH");
    out.engine.offload_prf =
        has_algorithm(algs, "PRF") || has_algorithm(algs, "PKEY_CRYPTO");
    out.engine.offload_cipher = has_algorithm(algs, "CIPHER") ||
                                has_algorithm(algs, "PKEY_CRYPTO");
  }

  // qat_topology{}: the multi-device fleet shape (DESIGN.md §12).
  if (const ConfBlock* topo = engine_block->find_block("qat_topology")) {
    const int64_t devices = topo->get_int("devices", 1);
    if (devices < 1 || devices > 64)
      return err(Code::kInvalidArgument, "qat_topology devices out of range");
    out.topology.devices = static_cast<int>(devices);

    const int64_t nodes = topo->get_int("numa_nodes", 1);
    if (nodes < 1 || nodes > 16)
      return err(Code::kInvalidArgument,
                 "qat_topology numa_nodes out of range");
    out.topology.numa_nodes = static_cast<int>(nodes);

    const int64_t spill = topo->get_int(
        "spill_threshold", static_cast<int64_t>(out.topology.spill_threshold));
    if (spill < 0)
      return err(Code::kInvalidArgument, "qat_topology spill_threshold < 0");
    out.topology.spill_threshold = static_cast<size_t>(spill);

    for (const std::string& tok : topo->get_list("worker_affinity")) {
      char* end = nullptr;
      const long dev = std::strtol(tok.c_str(), &end, 10);
      if (!end || *end != '\0' || dev < 0 || dev >= out.topology.devices)
        return err(Code::kInvalidArgument,
                   "qat_topology worker_affinity entry out of range: " + tok);
      out.topology.worker_affinity.push_back(static_cast<int>(dev));
    }
  }

  // remote_offload{}: the disaggregated tier (DESIGN.md §13). Parsed before
  // the qat_engine{} early return so a remote-augmented software config is
  // still expressible.
  if (const ConfBlock* ro = engine_block->find_block("remote_offload")) {
    const std::string enable = ro->get_string("enable", "off");
    if (enable == "on") {
      out.remote.enabled = true;
    } else if (enable != "off") {
      return err(Code::kInvalidArgument,
                 "bad remote_offload enable: " + enable);
    }

    out.remote.host = ro->get_string("host", out.remote.host);

    const int64_t port = ro->get_int("port", 0);
    if (port < 0 || port > 65535)
      return err(Code::kInvalidArgument, "remote_offload port out of range");
    out.remote.port = static_cast<uint16_t>(port);
    if (out.remote.enabled && out.remote.port == 0)
      return err(Code::kInvalidArgument,
                 "remote_offload enabled without a port");

    const int64_t batch = ro->get_int(
        "max_batch", static_cast<int64_t>(out.remote.max_batch));
    if (batch < 1 || batch > 1024)
      return err(Code::kInvalidArgument,
                 "remote_offload max_batch out of range");
    out.remote.max_batch = static_cast<size_t>(batch);

    const int64_t window = ro->get_int(
        "coalesce_window_us",
        static_cast<int64_t>(out.remote.coalesce_window_us));
    if (window < 0)
      return err(Code::kInvalidArgument,
                 "remote_offload coalesce_window_us < 0");
    out.remote.coalesce_window_us = static_cast<uint64_t>(window);

    const int64_t deadline = ro->get_int(
        "op_deadline_us",
        static_cast<int64_t>(out.engine.remote_op_deadline_us));
    if (deadline < 0)
      return err(Code::kInvalidArgument,
                 "remote_offload op_deadline_us < 0");
    out.engine.remote_op_deadline_us = static_cast<uint64_t>(deadline);

    const int64_t threshold = ro->get_int(
        "breaker_threshold",
        static_cast<int64_t>(out.engine.remote_breaker_threshold));
    if (threshold < 1)
      return err(Code::kInvalidArgument,
                 "remote_offload breaker_threshold < 1");
    out.engine.remote_breaker_threshold = static_cast<int>(threshold);

    const int64_t cooldown = ro->get_int(
        "breaker_cooldown_ms",
        static_cast<int64_t>(out.engine.remote_breaker_cooldown_ms));
    if (cooldown < 0)
      return err(Code::kInvalidArgument,
                 "remote_offload breaker_cooldown_ms < 0");
    out.engine.remote_breaker_cooldown_ms = static_cast<uint64_t>(cooldown);
  }

  const ConfBlock* qat = engine_block->find_block("qat_engine");
  if (!qat) return out;

  const std::string mode = qat->get_string("qat_offload_mode", "async");
  if (mode == "async") {
    out.engine.offload_mode = engine::OffloadMode::kAsync;
  } else if (mode == "sync") {
    out.engine.offload_mode = engine::OffloadMode::kSync;
  } else {
    return err(Code::kInvalidArgument, "bad qat_offload_mode: " + mode);
  }

  const std::string notify = qat->get_string("qat_notify_mode", "poll");
  if (notify == "poll" || notify == "kernel_bypass") {
    out.notify = NotifyScheme::kKernelBypass;
  } else if (notify == "fd" || notify == "event") {
    out.notify = NotifyScheme::kFd;
  } else {
    return err(Code::kInvalidArgument, "bad qat_notify_mode: " + notify);
  }

  const std::string poll = qat->get_string("qat_poll_mode", "heuristic");
  if (poll == "heuristic") {
    out.poll = PollScheme::kHeuristic;
  } else if (poll == "timer") {
    out.poll = PollScheme::kTimer;
  } else if (poll == "inline") {
    out.poll = PollScheme::kInline;
  } else {
    return err(Code::kInvalidArgument, "bad qat_poll_mode: " + poll);
  }

  out.timer_interval = std::chrono::microseconds(
      qat->get_int("qat_timer_poll_interval", 10));
  out.heuristic.asym_threshold = static_cast<size_t>(
      qat->get_int("qat_heuristic_poll_asym_threshold", 48));
  out.heuristic.sym_threshold = static_cast<size_t>(
      qat->get_int("qat_heuristic_poll_sym_threshold", 24));

  // The kernel-bypass queue is single-threaded by construction; it requires
  // in-application polling (heuristic), not an external polling thread.
  if (out.notify == NotifyScheme::kKernelBypass &&
      out.poll == PollScheme::kTimer) {
    return err(Code::kInvalidArgument,
               "kernel-bypass notification requires heuristic/inline polling");
  }
  return out;
}

Result<SslEngineSettings> parse_ssl_engine_settings(const std::string& text) {
  QTLS_ASSIGN_OR_RETURN(auto root, parse_conf(text));
  return parse_ssl_engine_settings(*root);
}

}  // namespace qtls::server
