// The SSL Engine Framework of the paper's Appendix A.7: accelerator
// behaviour configured directly from an nginx-style conf file —
//
//   worker_processes 8;
//   ssl_engine {
//       use qat_engine;
//       default_algorithm RSA,EC,DH,PKEY_CRYPTO;
//       qat_engine {
//           qat_offload_mode async;        # async | sync
//           qat_notify_mode poll;          # poll (kernel-bypass) | fd
//           qat_poll_mode heuristic;       # heuristic | timer | inline
//           qat_timer_poll_interval 10;    # microseconds, timer mode
//           qat_heuristic_poll_asym_threshold 48;
//           qat_heuristic_poll_sym_threshold 24;
//       }
//       qat_topology {                     # multi-device fleet (DESIGN §12)
//           devices 4;                     # logical QAT devices
//           numa_nodes 2;                  # device i sits on node i % nodes
//           spill_threshold 32;            # queue-depth spillover margin
//           worker_affinity 0,1,0,1;       # optional explicit worker->device
//       }                                  # map (overrides NUMA striping)
//       remote_offload {                   # disaggregated tier (DESIGN §13)
//           enable on;                     # QAT -> remote -> software ladder
//           host 127.0.0.1;                # offload server address
//           port 7433;
//           max_batch 32;                  # ops coalesced per RPC frame
//           coalesce_window_us 50;         # flush latency bound
//           op_deadline_us 20000;          # per-op remote budget
//           breaker_threshold 4;           # remote-tier circuit breaker
//           breaker_cooldown_ms 200;
//       }
//   }
//   session_cache {
//       shards 16;                         # sharded cross-worker cache
//       capacity 10000;
//       lifetime_ms 3600000;
//       ticket_rotate_interval_ms 900000;  # ticket-key epoch length
//       ticket_accept_epochs 1;            # current + N previous keys
//   }
//   overload {
//       handshake_timeout_ms 5000;         # accept -> handshake complete
//       idle_timeout_ms 30000;             # keepalive / request trickle
//       write_stall_timeout_ms 10000;      # slowloris response readers
//       max_handshaking 256;               # admission cap per worker
//       max_async_inflight 1024;           # in-flight engine ops per worker
//       past_cap shed;                     # shed | park
//       park_backlog 64;                   # bounded accept backlog (park)
//       max_header_bytes 8192;             # HTTP parser bounds (431 past)
//       max_header_count 100;
//   }
//   http {
//       file_root /srv/www;                # static-file streaming root
//   }                                      # (DESIGN.md §11); empty = the
//                                          # synthetic benchmark object
//   control {                              # self-healing plane (DESIGN §15)
//       heartbeat_interval_ms 100;         # supervision window
//       missed_windows 5;                  # frozen windows before "wedged"
//       eject_grace_ms 500;                # wait for an ejected thread
//       supervise on;                      # run the supervisor thread
//   }
//   credentials {                          # resolved against the keystore
//       rsa 2048;                          # 2048 | 1024 (reload swaps key)
//   }
#pragma once

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "common/conf.h"
#include "engine/qat_engine.h"
#include "server/heuristic_poller.h"
#include "server/http.h"
#include "server/overload.h"
#include "tls/session_plane.h"

namespace qtls::server {

enum class NotifyScheme : uint8_t {
  kKernelBypass,  // application-defined async queue (§3.4) — "poll"
  kFd,            // eventfd through the I/O multiplexer
};

enum class PollScheme : uint8_t {
  kHeuristic,  // §4.3
  kTimer,      // external timer-based polling thread
  kInline,     // blocking self-poll (straight offload / QAT+S)
};

// The qat_topology{} block: how many logical devices the box carries, how
// they spread over NUMA nodes, and how workers bind to them. An explicit
// worker_affinity list (worker w -> device affinity[w % len]) overrides the
// default NUMA striping in DeviceTopology::preferred_device().
struct TopologySettings {
  int devices = 1;
  int numa_nodes = 1;
  size_t spill_threshold = 32;
  std::vector<int> worker_affinity;  // empty = NUMA striping

  int affinity_for(int worker_id, int num_workers,
                   const qat::DeviceTopology& topo) const {
    if (!worker_affinity.empty())
      return worker_affinity[static_cast<size_t>(worker_id) %
                             worker_affinity.size()] %
             std::max(1, topo.num_devices());
    return topo.preferred_device(worker_id, num_workers);
  }
};

// The remote_offload{} block: the disaggregated offload tier (DESIGN.md
// §13). When enabled, each worker dials the offload server and slots the
// channel between the QAT lanes and inline software in the fallback
// ladder. Deadline/breaker knobs land in QatEngineConfig.remote_* since
// the engine owns that policy.
struct RemoteOffloadSettings {
  bool enabled = false;
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  size_t max_batch = 32;
  uint64_t coalesce_window_us = 50;
};

// The control{} block: the self-healing control plane (DESIGN.md §15).
// heartbeat_interval_ms is the supervision window; a worker whose loop
// iteration AND progress counters are both frozen for missed_windows
// consecutive windows is wedged and crash-only recovered. eject_grace_ms
// bounds how long the supervisor waits for an ejected worker thread to exit
// before abandoning it to quarantine.
struct ControlSettings {
  uint64_t heartbeat_interval_ms = 100;
  int missed_windows = 5;
  uint64_t eject_grace_ms = 500;
  bool supervise = true;
};

struct SslEngineSettings {
  int worker_processes = 1;
  bool use_qat = false;
  engine::QatEngineConfig engine;
  // Multi-device topology (qat_topology{} block; DESIGN.md §12).
  TopologySettings topology;
  // Remote offload tier (remote_offload{} block; DESIGN.md §13).
  RemoteOffloadSettings remote;
  NotifyScheme notify = NotifyScheme::kKernelBypass;
  PollScheme poll = PollScheme::kHeuristic;
  std::chrono::microseconds timer_interval{10};
  HeuristicPollerConfig heuristic;
  // The shared resumption plane (session_cache{} block).
  tls::SessionPlaneConfig session;
  // Overload-control plane (overload{} block; DESIGN.md §10).
  OverloadConfig overload;
  HttpLimits http_limits;
  // Static-file root (http{} block; DESIGN.md §11). Empty = disabled.
  std::string file_root;
  // Self-healing control plane (control{} block; DESIGN.md §15).
  ControlSettings control;
};

// Parses the root config block (worker_processes + ssl_engine{} +
// session_cache{}).
Result<SslEngineSettings> parse_ssl_engine_settings(const ConfBlock& root);
Result<SslEngineSettings> parse_ssl_engine_settings(const std::string& text);

}  // namespace qtls::server
