// The heuristic polling scheme (paper §3.3/§4.3), verbatim logic:
//
//  Efficiency: coalesce responses — poll when the number of inflight
//  requests R_total reaches a threshold; a larger threshold (default 48)
//  applies while any asymmetric op is in flight (they take much longer),
//  else the smaller one (default 24).
//
//  Timeliness: each active TLS connection has at most one async crypto op
//  in flight, so when R_total == TC_active every active connection is
//  stalled on the accelerator — poll immediately or the event loop would
//  have nothing left to do.
//
//  Failover: if no heuristic poll triggered within an interval while
//  requests are in flight, force one (paper §4.3's 5 ms timer).
#pragma once

#include <cstdint>

#include "engine/qat_engine.h"

namespace qtls::server {

struct HeuristicPollerConfig {
  size_t asym_threshold = 48;   // qat_heuristic_poll_asym_threshold
  size_t sym_threshold = 24;    // qat_heuristic_poll_sym_threshold
  uint64_t failover_interval_ms = 5;
};

struct HeuristicPollerStats {
  uint64_t polls = 0;
  uint64_t retrieved = 0;
  uint64_t max_batch = 0;  // largest single-trigger retrieval (coalescing)
  uint64_t efficiency_triggers = 0;
  uint64_t timeliness_triggers = 0;
  uint64_t failover_triggers = 0;
};

class HeuristicPoller {
 public:
  HeuristicPoller(engine::QatEngineProvider* engine,
                  HeuristicPollerConfig config = {})
      : engine_(engine), config_(config) {}

  // Called wherever a crypto op may have been submitted or TC_active may
  // have changed (§4.3). `active_tls_connections` is TC_active =
  // TC_alive - TC_idle. Returns the number of responses retrieved.
  size_t maybe_poll(size_t active_tls_connections, uint64_t now_ms) {
    const size_t total = engine_->inflight_total();
    if (total == 0) return 0;

    const bool asym_inflight = engine_->inflight(qat::OpClass::kAsym) > 0;
    const size_t threshold =
        asym_inflight ? config_.asym_threshold : config_.sym_threshold;

    if (total >= threshold) {
      ++stats_.efficiency_triggers;
      return do_poll(now_ms);
    }
    if (active_tls_connections > 0 && total >= active_tls_connections) {
      ++stats_.timeliness_triggers;
      return do_poll(now_ms);
    }
    return 0;
  }

  // Failover check, called from a coarse timer (§4.3).
  size_t failover_poll(uint64_t now_ms) {
    if (engine_->inflight_total() == 0) return 0;
    if (now_ms - last_poll_ms_ < config_.failover_interval_ms) return 0;
    ++stats_.failover_triggers;
    return do_poll(now_ms);
  }

  const HeuristicPollerStats& stats() const { return stats_; }
  const HeuristicPollerConfig& config() const { return config_; }

 private:
  size_t do_poll(uint64_t now_ms) {
    // One trigger = one batched pass over all of the engine's instances;
    // every ready response comes back in this single call (the coalescing
    // §3.3 argues for), wait-free on the response-ring consumer side.
    ++stats_.polls;
    const size_t got = engine_->poll();
    stats_.retrieved += got;
    if (got > stats_.max_batch) stats_.max_batch = got;
    last_poll_ms_ = now_ms;
    return got;
  }

  engine::QatEngineProvider* engine_;
  HeuristicPollerConfig config_;
  HeuristicPollerStats stats_;
  uint64_t last_poll_ms_ = 0;
};

}  // namespace qtls::server
