// Overload-control plane configuration and accounting (DESIGN.md §10).
//
// The paper's async offload keeps cores busy exactly when the front-end is
// most fragile (thousands of in-flight handshakes, hostile peers); this
// block gives the server-side the missing counterpart of PR 2's QAT-side
// fault plan: per-connection deadlines, admission control and load
// shedding, and graceful drain. Lives in its own header so both the conf
// parser and the worker can see it without a circular include.
#pragma once

#include <cstddef>
#include <cstdint>

namespace qtls::server {

struct OverloadConfig {
  // Per-connection deadlines, armed on the event loop's timer wheel
  // (0 = disabled).
  uint64_t handshake_timeout_ms = 0;   // accept -> handshake complete
  uint64_t idle_timeout_ms = 0;        // keepalive wait / request trickle
  uint64_t write_stall_timeout_ms = 0; // peer draining our response at 1 B/s

  // Admission control (0 = unlimited).
  size_t max_handshaking = 0;     // concurrent incomplete handshakes
  size_t max_async_inflight = 0;  // in-flight engine ops per worker

  // Past the cap: shed (clean pre-handshake close) or park (bounded accept
  // backlog, admitted as capacity frees).
  enum class PastCap : uint8_t { kShed, kPark };
  PastCap past_cap = PastCap::kShed;
  size_t park_backlog = 64;
};

// Per-worker overload accounting, mirrored into the global metrics registry
// and surfaced in the GET /stats "overload" object.
struct OverloadStats {
  uint64_t shed = 0;                 // closed pre-handshake at the cap
  uint64_t parked = 0;               // queued in the accept backlog
  uint64_t park_overflow = 0;        // backlog full -> shed instead
  uint64_t admitted_from_park = 0;
  uint64_t handshake_timeouts = 0;
  uint64_t park_timeouts = 0;        // parked accepts aged out of the backlog
  uint64_t idle_timeouts = 0;
  uint64_t write_stall_timeouts = 0;
  uint64_t drain_refused = 0;        // accepts refused while draining
  uint64_t drain_force_closed = 0;   // still alive at the drain deadline
};

}  // namespace qtls::server
