// Self-healing control plane (DESIGN.md §15): the piece that lets a
// long-running QTLS fleet reconfigure and heal itself in place.
//
// Three pillars, one subsystem:
//
//  * Hot reload — a versioned RuntimeConfig snapshot (credentials, overload
//    caps, timer deadlines, remote-offload endpoints) rebuilt from conf text
//    on SIGHUP or POST /reload and published RCU-style: workers pick the new
//    generation up at the top of their own loop, in-flight handshakes keep
//    the credential snapshot they captured at accept, and the session plane
//    (ticket-key ring + cache) is explicitly PRESERVED so resumption hit
//    rate stays 1.0 across a reload.
//
//  * Worker watchdog — every worker stamps a relaxed-atomic heartbeat
//    (iteration count, progress count, phase tag) each loop pass; the
//    supervisor distinguishes "busy" (iterations frozen, progress counters
//    moving) from "wedged" (both frozen for N windows) and executes
//    crash-only recovery: eject, reap the worker's slab-backed connections
//    through the existing drain path, respawn on the same session plane and
//    topology lanes.
//
//  * Health surface — GET /healthz (liveness: all heartbeats fresh) and
//    GET /readyz (readiness: accepting, not draining, breaker ladder not
//    fully degraded to software), consumable by an external balancer.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/ssl_engine_conf.h"
#include "tls/context.h"

namespace qtls::server {

class WorkerPool;

// One published configuration generation. Immutable after publication; the
// worker's view is a shared_ptr it re-reads only when the generation counter
// moves (one relaxed load per loop pass on the hot path).
struct RuntimeConfig {
  uint64_t generation = 0;
  SslEngineSettings settings;
  // Null = no credentials{} block resolved yet; workers keep what they have.
  std::shared_ptr<const tls::ServerCredentials> credentials;
};

// Resolves the conf's credentials{} block against the built-in keystore —
// this reproduction's stand-in for re-reading PEM files off disk. Returns
// null when the block is absent (the reload keeps the previous snapshot).
std::shared_ptr<const tls::ServerCredentials> resolve_keystore_credentials(
    const ConfBlock& root);

class ControlPlane {
 public:
  using CredentialsResolver =
      std::function<std::shared_ptr<const tls::ServerCredentials>(
          const ConfBlock&)>;

  struct Options {
    // Millisecond clock for supervision windows and health ages (null =
    // steady_clock). Tests inject the workers' virtual clock so detection
    // is deterministic.
    std::function<uint64_t()> clock;
    // Null = resolve_keystore_credentials.
    CredentialsResolver credentials_resolver;
    // Recover wedged workers inside check_now(). Tests turn this off to
    // observe the unready window between detection and recovery.
    bool auto_recover = true;
  };

  ControlPlane();
  explicit ControlPlane(Options opts);
  ~ControlPlane();

  ControlPlane(const ControlPlane&) = delete;
  ControlPlane& operator=(const ControlPlane&) = delete;

  // ---------------------------------------------------------- hot reload --
  // Parse + publish a new generation from conf text. The text is retained:
  // reload_now() (SIGHUP, POST /reload) re-parses it, so a caller that
  // rewrites the text first gets classic file-reload semantics. Thread-safe.
  // On parse error nothing is published and the old generation keeps
  // serving (reload_failures counts it).
  Status load(const std::string& conf_text);
  Status reload_now();
  // SIGHUP-safe deferred reload: flips a flag the supervisor (or the next
  // check_now) acts on. The only member function safe from a signal handler.
  void request_reload();
  // Routes SIGHUP at this instance (one instance per process; the last
  // installer wins). The handler only flips the reload flag.
  void install_sighup();

  std::shared_ptr<const RuntimeConfig> current() const;
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  // ------------------------------------------------------------ watchdog --
  // The pool must outlive the control plane (or detach(nullptr) first).
  // Attach after pool.start() and before start_supervisor().
  void attach(WorkerPool* pool);
  void start_supervisor();
  void stop_supervisor();

  struct SupervisionReport {
    int fresh = 0;      // workers whose loop iterated since last check
    int busy = 0;       // iterations frozen but progress advancing
    int wedged = 0;     // newly declared wedged this pass
    int recovered = 0;  // replacements spawned after a joined eject
    int abandoned = 0;  // replacements spawned around a quarantined zombie
    bool reloaded = false;
  };
  // One deterministic supervision pass at `now_ms`: process a pending
  // reload request, score every worker's heartbeat as fresh/busy/frozen,
  // declare wedges past missed_windows, and (auto_recover) replace them.
  // Each call is one heartbeat window; the supervisor thread calls it every
  // heartbeat_interval_ms, tests drive it directly against virtual time.
  SupervisionReport check_now(uint64_t now_ms);
  // Crash-only recovery of one worker (also used with auto_recover off).
  // Returns true when a replacement worker is accepting again.
  bool recover(int worker_index);

  // ------------------------------------------------------- health surface --
  // Liveness: no worker currently declared wedged (the supervisor replaces
  // wedged workers, so sustained unhealthiness means recovery is failing).
  bool healthy() const { return wedged_now_.load(std::memory_order_acquire) == 0; }
  // Readiness: pool attached + accepting (not draining/stopping), no wedge
  // in progress, breaker ladder not fully degraded to inline software.
  bool ready() const;
  // HTTP bodies for the worker-served endpoints; *http_status gets 200/503.
  std::string healthz_json(uint64_t now_ms, int* http_status) const;
  std::string readyz_json(int* http_status) const;

  struct Stats {
    uint64_t reloads = 0;
    uint64_t reload_failures = 0;
    uint64_t plane_changes_ignored = 0;  // session_cache{} edits at reload
    uint64_t wedge_events = 0;
    uint64_t busy_holds = 0;
    uint64_t worker_restarts = 0;
    uint64_t workers_abandoned = 0;
    uint64_t last_time_to_detect_ms = 0;   // frozen -> declared wedged
    uint64_t last_time_to_recover_ms = 0;  // declared -> replacement up
  };
  Stats stats() const;
  ControlSettings control_settings() const;

 private:
  // Per-worker supervision state (guarded by mu_; only check_now writes).
  struct Watch {
    uint64_t iterations = 0;
    uint64_t progress = 0;
    int missed = 0;
    uint64_t first_frozen_ms = 0;
    bool wedged = false;
  };

  Status publish(const std::string& conf_text);
  void supervisor_main();
  void recount_wedged_locked();

  Options opts_;
  mutable std::mutex mu_;
  std::shared_ptr<const RuntimeConfig> current_;  // guarded by mu_
  std::string conf_text_;                         // guarded by mu_
  ControlSettings csettings_;                     // guarded by mu_
  std::vector<Watch> watches_;                    // guarded by mu_

  WorkerPool* pool_ = nullptr;  // set before any thread observes it
  std::atomic<uint64_t> generation_{0};
  std::atomic<bool> reload_requested_{false};
  std::atomic<int> wedged_now_{0};

  // Episode counters (relaxed: single-writer supervisor, many readers).
  std::atomic<uint64_t> reloads_{0};
  std::atomic<uint64_t> reload_failures_{0};
  std::atomic<uint64_t> plane_changes_ignored_{0};
  std::atomic<uint64_t> wedge_events_{0};
  std::atomic<uint64_t> busy_holds_{0};
  std::atomic<uint64_t> worker_restarts_{0};
  std::atomic<uint64_t> workers_abandoned_{0};
  std::atomic<uint64_t> last_time_to_detect_ms_{0};
  std::atomic<uint64_t> last_time_to_recover_ms_{0};

  std::atomic<bool> stop_supervisor_{false};
  std::thread supervisor_;

  uint64_t clock_ms() const;
};

}  // namespace qtls::server
