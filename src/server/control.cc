#include "server/control.h"

#include <csignal>

#include <chrono>
#include <sstream>

#include "common/log.h"
#include "crypto/keystore.h"
#include "obs/metrics.h"
#include "server/worker_pool.h"

namespace qtls::server {

namespace {

// Global-registry mirrors of the control-plane episode counters, so /stats
// and the periodic dumps surface reload and recovery activity pool-wide.
struct ControlObsCounters {
  obs::Counter reloads, reload_failures, plane_changes_ignored, wedge_events,
      busy_holds, worker_restarts, workers_abandoned;
  obs::Gauge reload_generation, time_to_detect_ms, time_to_recover_ms;

  ControlObsCounters() {
    auto& reg = obs::MetricsRegistry::global();
    reloads = reg.counter("control.reloads");
    reload_failures = reg.counter("control.reload_failures");
    plane_changes_ignored = reg.counter("control.plane_changes_ignored");
    wedge_events = reg.counter("control.wedge_events");
    busy_holds = reg.counter("control.busy_holds");
    worker_restarts = reg.counter("control.worker_restarts");
    workers_abandoned = reg.counter("control.workers_abandoned");
    reload_generation = reg.gauge("control.reload_generation");
    time_to_detect_ms = reg.gauge("control.time_to_detect_ms");
    time_to_recover_ms = reg.gauge("control.time_to_recover_ms");
  }
};

ControlObsCounters& control_obs() {
  static ControlObsCounters counters;
  return counters;
}

uint64_t steady_now_ms() {
  using namespace std::chrono;
  return static_cast<uint64_t>(
      duration_cast<milliseconds>(steady_clock::now().time_since_epoch())
          .count());
}

// SIGHUP routing: one control plane per process (the last installer wins).
// The handler only flips an atomic flag — async-signal-safe by design.
std::atomic<ControlPlane*> g_sighup_target{nullptr};

void on_sighup(int) {
  if (ControlPlane* plane = g_sighup_target.load(std::memory_order_relaxed))
    plane->request_reload();
}

bool plane_shape_equal(const tls::SessionPlaneConfig& a,
                       const tls::SessionPlaneConfig& b) {
  return a.cache_shards == b.cache_shards &&
         a.cache_capacity == b.cache_capacity &&
         a.lifetime_ms == b.lifetime_ms &&
         a.ticket_rotate_interval_ms == b.ticket_rotate_interval_ms &&
         a.ticket_accept_epochs == b.ticket_accept_epochs;
}

}  // namespace

std::shared_ptr<const tls::ServerCredentials> resolve_keystore_credentials(
    const ConfBlock& root) {
  const ConfBlock* block = root.find_block("credentials");
  if (block == nullptr) return nullptr;
  auto out = std::make_shared<tls::ServerCredentials>();
  const int64_t bits = block->get_int("rsa", 2048);
  out->rsa_key = bits == 1024 ? &test_rsa1024() : &test_rsa2048();
  out->ecdsa_p256 = &test_ec_key_p256();
  out->ecdsa_p384 = &test_ec_key_p384();
  return out;
}

ControlPlane::ControlPlane() : ControlPlane(Options{}) {}

ControlPlane::ControlPlane(Options opts) : opts_(std::move(opts)) {
  if (!opts_.credentials_resolver)
    opts_.credentials_resolver = resolve_keystore_credentials;
}

ControlPlane::~ControlPlane() {
  stop_supervisor();
  ControlPlane* self = this;
  if (g_sighup_target.compare_exchange_strong(self, nullptr)) {
    // A late SIGHUP after teardown must not hit the default action
    // (terminate) just because the reload target went away.
    std::signal(SIGHUP, SIG_IGN);
  }
}

uint64_t ControlPlane::clock_ms() const {
  return opts_.clock ? opts_.clock() : steady_now_ms();
}

// ------------------------------------------------------------ hot reload ----

Status ControlPlane::publish(const std::string& conf_text) {
  auto fail = [this](Status st) {
    reload_failures_.fetch_add(1, std::memory_order_relaxed);
    control_obs().reload_failures.inc();
    QTLS_WARN << "reload rejected, old generation keeps serving: "
              << st.message();
    return st;
  };
  auto root = parse_conf(conf_text);
  if (!root.is_ok()) return fail(root.status());
  auto settings = parse_ssl_engine_settings(*root.value());
  if (!settings.is_ok()) return fail(settings.status());
  std::shared_ptr<const tls::ServerCredentials> creds =
      opts_.credentials_resolver(*root.value());

  std::lock_guard<std::mutex> lock(mu_);
  auto next = std::make_shared<RuntimeConfig>();
  next->settings = std::move(settings).take();
  next->credentials =
      creds ? creds : (current_ ? current_->credentials : nullptr);
  if (current_ != nullptr &&
      !plane_shape_equal(current_->settings.session, next->settings.session)) {
    // The resumption plane is PRESERVED across reloads: rebuilding the
    // ticket-key ring or cache would orphan every outstanding ticket and
    // session, cratering the hit rate the reload was never asked to touch.
    // Shape changes need a restart; say so instead of silently obeying.
    QTLS_WARN << "reload: session_cache{} shape change ignored — the "
                 "ticket-key ring and session cache are preserved across "
                 "reloads (restart to reshape the plane)";
    plane_changes_ignored_.fetch_add(1, std::memory_order_relaxed);
    control_obs().plane_changes_ignored.inc();
    next->settings.session = current_->settings.session;
  }
  next->generation = generation_.load(std::memory_order_relaxed) + 1;
  conf_text_ = conf_text;
  csettings_ = next->settings.control;
  current_ = next;
  generation_.store(next->generation, std::memory_order_release);
  reloads_.fetch_add(1, std::memory_order_relaxed);
  control_obs().reloads.inc();
  control_obs().reload_generation.set(
      static_cast<int64_t>(next->generation));
  return Status::ok();
}

Status ControlPlane::load(const std::string& conf_text) {
  return publish(conf_text);
}

Status ControlPlane::reload_now() {
  std::string text;
  {
    std::lock_guard<std::mutex> lock(mu_);
    text = conf_text_;
  }
  if (text.empty())
    return err(Code::kFailedPrecondition, "no configuration loaded");
  return publish(text);
}

void ControlPlane::request_reload() {
  reload_requested_.store(true, std::memory_order_release);
}

void ControlPlane::install_sighup() {
  g_sighup_target.store(this, std::memory_order_release);
  struct sigaction sa {};
  sa.sa_handler = on_sighup;
  sigemptyset(&sa.sa_mask);
  // Deliberately no SA_RESTART: the EINTR-hardened transports and event
  // loop absorb interrupted syscalls, and this keeps the reload signal from
  // being invisibly swallowed inside a long-blocking call.
  sa.sa_flags = 0;
  ::sigaction(SIGHUP, &sa, nullptr);
}

std::shared_ptr<const RuntimeConfig> ControlPlane::current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

ControlSettings ControlPlane::control_settings() const {
  std::lock_guard<std::mutex> lock(mu_);
  return csettings_;
}

// -------------------------------------------------------------- watchdog ----

void ControlPlane::attach(WorkerPool* pool) { pool_ = pool; }

void ControlPlane::start_supervisor() {
  if (supervisor_.joinable()) return;
  if (!control_settings().supervise) {
    QTLS_INFO << "control: supervisor disabled by conf (supervise off)";
    return;
  }
  stop_supervisor_.store(false, std::memory_order_release);
  supervisor_ = std::thread([this] { supervisor_main(); });
}

void ControlPlane::stop_supervisor() {
  stop_supervisor_.store(true, std::memory_order_release);
  if (supervisor_.joinable()) supervisor_.join();
}

void ControlPlane::supervisor_main() {
  uint64_t interval = control_settings().heartbeat_interval_ms;
  uint64_t next = clock_ms() + interval;
  while (!stop_supervisor_.load(std::memory_order_acquire)) {
    // Short sleep slices keep both stop_supervisor() and a pending SIGHUP
    // reload responsive regardless of the heartbeat window.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    const bool reload_pending =
        reload_requested_.load(std::memory_order_acquire);
    const uint64_t now = clock_ms();
    if (!reload_pending && now < next) continue;
    (void)check_now(now);
    interval = control_settings().heartbeat_interval_ms;
    next = now + interval;
  }
}

void ControlPlane::recount_wedged_locked() {
  int wedged = 0;
  for (const Watch& w : watches_)
    if (w.wedged) ++wedged;
  wedged_now_.store(wedged, std::memory_order_release);
}

ControlPlane::SupervisionReport ControlPlane::check_now(uint64_t now_ms) {
  SupervisionReport rep;
  if (reload_requested_.exchange(false, std::memory_order_acq_rel))
    rep.reloaded = reload_now().is_ok();
  if (pool_ == nullptr) return rep;

  const std::vector<WorkerHeartbeatView> hbs = pool_->heartbeats();
  std::vector<int> to_recover;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (watches_.size() != hbs.size()) watches_.assign(hbs.size(), Watch{});
    for (size_t i = 0; i < hbs.size(); ++i) {
      Watch& w = watches_[i];
      const WorkerHeartbeatView& hb = hbs[i];
      if (hb.recovering) {
        w = Watch{};
        continue;
      }
      if (hb.iterations != w.iterations) {
        // Fresh: the loop completed at least one pass since last window.
        w.iterations = hb.iterations;
        w.progress = hb.progress;
        w.missed = 0;
        w.wedged = false;
        ++rep.fresh;
        continue;
      }
      if (hb.progress != w.progress) {
        // Busy, not wedged: the current pass is long (a dispatch burst, a
        // huge batch) but handlers are still advancing the progress
        // counters. Hold — restarting a busy worker IS the false positive.
        w.progress = hb.progress;
        w.missed = 0;
        busy_holds_.fetch_add(1, std::memory_order_relaxed);
        control_obs().busy_holds.inc();
        ++rep.busy;
        continue;
      }
      // Frozen: no loop pass AND no handler progress this window.
      if (w.missed == 0) w.first_frozen_ms = now_ms;
      ++w.missed;
      if (w.missed >= csettings_.missed_windows && !w.wedged) {
        w.wedged = true;
        ++rep.wedged;
        wedge_events_.fetch_add(1, std::memory_order_relaxed);
        control_obs().wedge_events.inc();
        const uint64_t detect_ms =
            now_ms >= w.first_frozen_ms ? now_ms - w.first_frozen_ms : 0;
        last_time_to_detect_ms_.store(detect_ms, std::memory_order_relaxed);
        control_obs().time_to_detect_ms.set(static_cast<int64_t>(detect_ms));
        QTLS_WARN << "control: worker " << i << " wedged ("
                  << w.missed << " frozen windows, phase "
                  << static_cast<int>(hb.phase) << ")";
        if (opts_.auto_recover) to_recover.push_back(static_cast<int>(i));
      }
    }
    recount_wedged_locked();
  }
  const uint64_t abandoned_before =
      workers_abandoned_.load(std::memory_order_relaxed);
  for (int idx : to_recover)
    if (recover(idx)) ++rep.recovered;
  rep.abandoned = static_cast<int>(
      workers_abandoned_.load(std::memory_order_relaxed) - abandoned_before);
  rep.recovered -= rep.abandoned;
  return rep;
}

bool ControlPlane::recover(int worker_index) {
  if (pool_ == nullptr) return false;
  const uint64_t grace = control_settings().eject_grace_ms;
  const uint64_t t0 = steady_now_ms();
  const RecoverOutcome out = pool_->recover_worker(worker_index, grace);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (static_cast<size_t>(worker_index) < watches_.size())
      watches_[static_cast<size_t>(worker_index)] = Watch{};
    recount_wedged_locked();
  }
  if (!out.restarted) return false;
  worker_restarts_.fetch_add(1, std::memory_order_relaxed);
  control_obs().worker_restarts.inc();
  if (!out.joined) {
    workers_abandoned_.fetch_add(1, std::memory_order_relaxed);
    control_obs().workers_abandoned.inc();
  }
  const uint64_t recover_ms = steady_now_ms() - t0;
  last_time_to_recover_ms_.store(recover_ms, std::memory_order_relaxed);
  control_obs().time_to_recover_ms.set(static_cast<int64_t>(recover_ms));
  QTLS_WARN << "control: worker " << worker_index << " replaced ("
            << (out.joined ? "joined" : "abandoned to quarantine")
            << ", reaped " << out.reaped << " connections, "
            << recover_ms << " ms)";
  return true;
}

// -------------------------------------------------------- health surface ----

bool ControlPlane::ready() const {
  if (pool_ == nullptr) return false;
  if (wedged_now_.load(std::memory_order_acquire) != 0) return false;
  if (pool_->any_draining()) return false;
  if (pool_->fully_degraded()) return false;
  return true;
}

std::string ControlPlane::healthz_json(uint64_t now_ms,
                                       int* http_status) const {
  std::vector<WorkerHeartbeatView> hbs;
  if (pool_ != nullptr) hbs = pool_->heartbeats();
  std::ostringstream os;
  const bool ok = healthy();
  if (http_status != nullptr) *http_status = ok ? 200 : 503;
  os << "{\"status\":\"" << (ok ? "ok" : "wedged") << '"'
     << ",\"supervisor\":" << (supervisor_.joinable() ? "true" : "false")
     << ",\"generation\":" << generation() << ",\"workers\":[";
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < hbs.size(); ++i) {
    const WorkerHeartbeatView& hb = hbs[i];
    const uint64_t age =
        now_ms >= hb.stamp_ms ? now_ms - hb.stamp_ms : 0;
    os << (i ? "," : "") << "{\"iterations\":" << hb.iterations
       << ",\"progress\":" << hb.progress
       << ",\"phase\":" << static_cast<int>(hb.phase)
       << ",\"age_ms\":" << age << ",\"missed\":"
       << (i < watches_.size() ? watches_[i].missed : 0) << ",\"wedged\":"
       << ((i < watches_.size() && watches_[i].wedged) ? "true" : "false")
       << ",\"recovering\":" << (hb.recovering ? "true" : "false") << "}";
  }
  os << "]}";
  return os.str();
}

std::string ControlPlane::readyz_json(int* http_status) const {
  const bool attached = pool_ != nullptr;
  const bool draining = attached && pool_->any_draining();
  const bool degraded = attached && pool_->fully_degraded();
  const int wedged = wedged_now_.load(std::memory_order_acquire);
  const bool ok = attached && !draining && !degraded && wedged == 0;
  if (http_status != nullptr) *http_status = ok ? 200 : 503;
  std::ostringstream os;
  os << "{\"ready\":" << (ok ? "true" : "false")
     << ",\"accepting\":" << ((attached && !draining) ? "true" : "false")
     << ",\"draining\":" << (draining ? "true" : "false")
     << ",\"wedged\":" << wedged
     << ",\"degraded_to_software\":" << (degraded ? "true" : "false")
     << ",\"generation\":" << generation() << "}";
  return os.str();
}

ControlPlane::Stats ControlPlane::stats() const {
  Stats out;
  out.reloads = reloads_.load(std::memory_order_relaxed);
  out.reload_failures = reload_failures_.load(std::memory_order_relaxed);
  out.plane_changes_ignored =
      plane_changes_ignored_.load(std::memory_order_relaxed);
  out.wedge_events = wedge_events_.load(std::memory_order_relaxed);
  out.busy_holds = busy_holds_.load(std::memory_order_relaxed);
  out.worker_restarts = worker_restarts_.load(std::memory_order_relaxed);
  out.workers_abandoned = workers_abandoned_.load(std::memory_order_relaxed);
  out.last_time_to_detect_ms =
      last_time_to_detect_ms_.load(std::memory_order_relaxed);
  out.last_time_to_recover_ms =
      last_time_to_recover_ms_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace qtls::server
