// Minimal HTTP/1.1: enough for the paper's workloads — GET of a fixed
// object, keepalive on/off, content-length framing. Parser buffers are
// bounded (DESIGN.md §10): past the header-size or header-count caps the
// request is flagged `too_large` so the worker can answer 431 and close
// instead of growing memory under a hostile peer.
#pragma once

#include <optional>
#include <string>

#include "common/bytes.h"

namespace qtls::server {

// Parser bounds. Defaults are deliberately far above anything the benchmark
// clients send and far below the old 64 KB header-bomb tripwire.
struct HttpLimits {
  size_t max_header_bytes = 8 * 1024;  // request line + headers + CRLFCRLF
  size_t max_header_count = 100;       // lines after the request line
};

struct HttpRequest {
  std::string method;
  std::string path;
  bool keepalive = true;   // HTTP/1.1 default
  size_t header_bytes = 0; // consumed from the buffer
};

// Incremental request parser: feed bytes, poll for a complete request.
class HttpRequestParser {
 public:
  HttpRequestParser() = default;
  explicit HttpRequestParser(HttpLimits limits) : limits_(limits) {}

  void feed(BytesView data) { append(buffer_, data); }
  // Returns a parsed request once the header is complete (bodies are not
  // used by the benchmark workloads). nullopt = need more bytes.
  std::optional<HttpRequest> next();
  bool error() const { return error_; }
  // Limit violation (oversized or too many headers): the connection
  // deserves a 431 and a close. Implies error().
  bool too_large() const { return too_large_; }
  size_t buffered() const { return buffer_.size(); }
  const HttpLimits& limits() const { return limits_; }

 private:
  HttpLimits limits_;
  Bytes buffer_;
  bool error_ = false;
  bool too_large_ = false;
};

Bytes build_http_request(const std::string& path, bool keepalive);
// Body is clamped to kMaxResponseBody — the echo path must not amplify an
// attacker-sized input into an attacker-sized allocation chain.
Bytes build_http_response(int status, BytesView body, bool keepalive);
// Header-only variant for the streamed static-file path (DESIGN.md §11):
// the body follows in bounded chunks, so Content-Length is supplied by the
// caller and nothing is buffered here.
Bytes build_http_response_head(int status, size_t content_length,
                               bool keepalive);
constexpr size_t kMaxResponseBody = 4 * 1024 * 1024;

// Parses a response header; returns body length and header size.
struct HttpResponseHead {
  int status = 0;
  size_t content_length = 0;
  size_t header_bytes = 0;
  bool keepalive = true;
};
std::optional<HttpResponseHead> parse_http_response_head(BytesView data);

}  // namespace qtls::server
