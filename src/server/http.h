// Minimal HTTP/1.1: enough for the paper's workloads — GET of a fixed
// object, keepalive on/off, content-length framing.
#pragma once

#include <optional>
#include <string>

#include "common/bytes.h"

namespace qtls::server {

struct HttpRequest {
  std::string method;
  std::string path;
  bool keepalive = true;   // HTTP/1.1 default
  size_t header_bytes = 0; // consumed from the buffer
};

// Incremental request parser: feed bytes, poll for a complete request.
class HttpRequestParser {
 public:
  void feed(BytesView data) { append(buffer_, data); }
  // Returns a parsed request once the header is complete (bodies are not
  // used by the benchmark workloads). nullopt = need more bytes.
  std::optional<HttpRequest> next();
  bool error() const { return error_; }
  size_t buffered() const { return buffer_.size(); }

 private:
  Bytes buffer_;
  bool error_ = false;
};

Bytes build_http_request(const std::string& path, bool keepalive);
Bytes build_http_response(int status, BytesView body, bool keepalive);

// Parses a response header; returns body length and header size.
struct HttpResponseHead {
  int status = 0;
  size_t content_length = 0;
  size_t header_bytes = 0;
  bool keepalive = true;
};
std::optional<HttpResponseHead> parse_http_response_head(BytesView data);

}  // namespace qtls::server
