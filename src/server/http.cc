#include "server/http.h"

#include <algorithm>
#include <cstdio>

namespace qtls::server {

namespace {
// Case-insensitive substring search for header names.
bool contains_ci(const std::string& haystack, const std::string& needle) {
  auto it = std::search(haystack.begin(), haystack.end(), needle.begin(),
                        needle.end(), [](char a, char b) {
                          return std::tolower(static_cast<uint8_t>(a)) ==
                                 std::tolower(static_cast<uint8_t>(b));
                        });
  return it != haystack.end();
}
}  // namespace

std::optional<HttpRequest> HttpRequestParser::next() {
  const std::string text(buffer_.begin(), buffer_.end());
  const size_t end = text.find("\r\n\r\n");
  if (end == std::string::npos) {
    // Bound the buffer while the header is still incomplete: a peer that
    // has sent max_header_bytes without a terminator can never produce a
    // request we would accept.
    if (buffer_.size() > limits_.max_header_bytes) {
      error_ = true;
      too_large_ = true;
    }
    return std::nullopt;
  }
  if (end + 4 > limits_.max_header_bytes) {
    error_ = true;
    too_large_ = true;
    return std::nullopt;
  }
  const std::string head = text.substr(0, end);
  // Header-count cap: lines beyond the request line.
  size_t lines = 0;
  for (size_t pos = head.find("\r\n"); pos != std::string::npos;
       pos = head.find("\r\n", pos + 2))
    ++lines;
  if (lines > limits_.max_header_count) {
    error_ = true;
    too_large_ = true;
    return std::nullopt;
  }
  const size_t line_end = head.find("\r\n");
  const std::string request_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);

  HttpRequest req;
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    error_ = true;
    return std::nullopt;
  }
  req.method = request_line.substr(0, sp1);
  req.path = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const bool http10 = request_line.find("HTTP/1.0") != std::string::npos;
  req.keepalive = http10 ? contains_ci(head, "connection: keep-alive")
                         : !contains_ci(head, "connection: close");
  req.header_bytes = end + 4;
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<ptrdiff_t>(end + 4));
  return req;
}

Bytes build_http_request(const std::string& path, bool keepalive) {
  std::string req = "GET " + path + " HTTP/1.1\r\nHost: qtls\r\n";
  if (!keepalive) req += "Connection: close\r\n";
  req += "\r\n";
  return to_bytes(req);
}

Bytes build_http_response_head(int status, size_t content_length,
                               bool keepalive) {
  char head[256];
  std::snprintf(head, sizeof(head),
                "HTTP/1.1 %d %s\r\nServer: qtls\r\nContent-Length: %zu\r\n"
                "Connection: %s\r\n\r\n",
                status, status == 200 ? "OK" : "Error", content_length,
                keepalive ? "keep-alive" : "close");
  return to_bytes(std::string(head));
}

Bytes build_http_response(int status, BytesView body, bool keepalive) {
  if (body.size() > kMaxResponseBody)
    body = body.subspan(0, kMaxResponseBody);
  Bytes out = build_http_response_head(status, body.size(), keepalive);
  append(out, body);
  return out;
}

std::optional<HttpResponseHead> parse_http_response_head(BytesView data) {
  const std::string text(data.begin(), data.end());
  const size_t end = text.find("\r\n\r\n");
  if (end == std::string::npos) return std::nullopt;
  HttpResponseHead head;
  head.header_bytes = end + 4;
  if (text.size() < 12 || text.compare(0, 5, "HTTP/") != 0) return std::nullopt;
  head.status = std::atoi(text.c_str() + 9);
  const size_t cl = text.find("Content-Length:");
  if (cl != std::string::npos && cl < end)
    head.content_length =
        static_cast<size_t>(std::atoll(text.c_str() + cl + 15));
  head.keepalive = !contains_ci(text.substr(0, end), "connection: close");
  return head;
}

}  // namespace qtls::server
