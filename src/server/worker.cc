#include "server/worker.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <sstream>
#include <vector>

#include "common/log.h"
#include "obs/metrics.h"
#include "server/control.h"

namespace qtls::server {

namespace {
// Global-registry mirrors of the per-worker OverloadStats, so /stats and
// the periodic dumps see pool-wide overload pressure (same idiom as the
// engine failure counters).
struct OverloadObsCounters {
  obs::Counter shed, parked, handshake_timeout, park_timeout, idle_timeout,
      write_stall_timeout, drain_refused, drain_force_closed;

  OverloadObsCounters() {
    auto& reg = obs::MetricsRegistry::global();
    shed = reg.counter("overload.shed");
    parked = reg.counter("overload.parked");
    handshake_timeout = reg.counter("overload.handshake_timeout");
    park_timeout = reg.counter("overload.park_timeout");
    idle_timeout = reg.counter("overload.idle_timeout");
    write_stall_timeout = reg.counter("overload.write_stall_timeout");
    drain_refused = reg.counter("overload.drain_refused");
    drain_force_closed = reg.counter("overload.drain_force_closed");
  }
};

OverloadObsCounters& overload_obs() {
  static OverloadObsCounters counters;
  return counters;
}

// Memory plane (DESIGN.md §14): per-worker footprint gauges mirrored into
// the global registry so /stats and the million_conn bench read one place.
struct MemoryObsGauges {
  obs::Gauge bytes_per_conn, slab_bytes_reserved;

  MemoryObsGauges() {
    auto& reg = obs::MetricsRegistry::global();
    bytes_per_conn = reg.gauge("memory.bytes_per_conn");
    slab_bytes_reserved = reg.gauge("memory.slab_bytes_reserved");
  }
};

MemoryObsGauges& memory_obs() {
  static MemoryObsGauges gauges;
  return gauges;
}
}  // namespace

// Slab-allocated (server.conn pool): transport and TLS state are embedded
// by value — one slot per connection instead of a constellation of mallocs.
// Declaration order matters: `tls` holds a pointer into `transport`, so it
// must be destroyed first (reverse declaration order).
struct Worker::Conn {
  int fd = -1;
  std::optional<net::SocketTransport> transport;
  std::optional<tls::TlsConnection> tls;
  HttpRequestParser parser;
  Bytes inbound;           // decrypted bytes pending HTTP parsing
  Endpoint endpoint = Endpoint::kFile;  // what the current request resolves to
  std::string request_path;         // path of the request being answered
  bool response_inflight = false;   // response built but write not started
  bool write_in_progress = false;   // write started, not yet completed
  bool response_keepalive = true;

  // Static-file streaming state (DESIGN.md §11). The fd stays open across
  // kWantAsync/kWantWrite parks; `file_staging` is the bounded chunk buffer
  // (at most one chunk of the file is ever in memory).
  int file_fd = -1;
  size_t file_off = 0;   // next pread offset
  size_t file_left = 0;  // bytes not yet handed to the TLS layer
  Bytes file_staging;

  ~Conn() {
    if (file_fd >= 0) ::close(file_fd);
  }

  // Async bookkeeping (§4.2).
  Handler async_handler = nullptr;   // handler to reschedule on async event
  bool expecting_async = false;
  bool deferred_read = false;        // saved read event (event disorder)
  bool fd_registered = false;        // wait-ctx eventfd added to epoll

  bool in_async_resume = false;      // handler running off an async event
  bool idle = false;
  uint64_t id = 0;
  Worker* worker = nullptr;

  // Overload plane (DESIGN.md §10).
  net::TimerWheel::TimerId deadline_timer = 0;  // 0 = none armed
  DeadlineKind deadline_kind = DeadlineKind::kNone;
  bool counted_handshaking = false;  // contributes to handshaking_
};

// One accepted-but-not-admitted fd in the overload backlog (server.parked
// pool). Doubly linked so a park deadline firing mid-queue unlinks in O(1);
// the deadline timer is cancelled by unlink_parked on every exit path, so a
// node is never destroyed with its timer still armed.
struct Worker::ParkedAccept {
  int fd = -1;
  ParkedAccept* prev = nullptr;
  ParkedAccept* next = nullptr;
  net::TimerWheel::TimerId deadline_timer = 0;  // 0 = none armed
};

Worker::Conn* Worker::find_by_id(uint64_t conn_id) {
  auto it = conns_by_id_.find(conn_id);
  return it == conns_by_id_.end() ? nullptr : it->second;
}

Worker::Worker(tls::TlsContext* tls_ctx, engine::QatEngineProvider* qat,
               WorkerConfig config)
    : tls_ctx_(tls_ctx),
      qat_(qat),
      config_(config),
      conn_pool_(std::make_unique<common::SlabPool<Conn>>("server.conn")),
      park_pool_(
          std::make_unique<common::SlabPool<ParkedAccept>>("server.parked")),
      scratch_pool_("server.hs_scratch") {
  if (qat_ && config_.poll == PollScheme::kHeuristic)
    poller_ = std::make_unique<HeuristicPoller>(qat_, config_.heuristic);
  if (config_.clock) loop_.set_clock(config_.clock);
  response_body_.resize(config_.response_body_size);
  for (size_t i = 0; i < response_body_.size(); ++i)
    response_body_[i] = static_cast<uint8_t>('a' + i % 26);
}

Worker::~Worker() {
  // No fiber may outlive its connection: run every paused offload job to
  // completion before the connections are destroyed.
  for (auto& [fd, conn] : conns_) {
    conn->expecting_async = false;
    conn->async_handler = nullptr;
    if (conn->tls->has_paused_job())
      conn->tls->drain_paused_job([this] {
        if (qat_) qat_->poll();
      });
  }
  // Return every slab object before its pool dies — a pool destroyed with
  // live slots is the leak signature the churn soak hunts.
  for (auto& [fd, conn] : conns_) conn_pool_->destroy(conn);
  conns_.clear();
  while (parked_head_ != nullptr) {
    ParkedAccept* node = parked_head_;
    unlink_parked(node);
    ::close(node->fd);
    park_pool_->destroy(node);
  }
}

uint64_t Worker::now_ms() const { return loop_.now_ms(); }

Status Worker::add_listener(uint16_t port, bool reuseport) {
  QTLS_RETURN_IF_ERROR(listener_.listen(port, 512, reuseport));
  listener_armed_ = true;
  return loop_.add(listener_.fd(), true, false,
                   [this](net::FdEvents) { on_listener_readable(); });
}

uint16_t Worker::listen_port() const { return listener_.port(); }

void Worker::on_listener_readable() {
  for (;;) {
    const int fd = listener_.accept_fd();
    if (fd < 0) return;
    note_progress();
    admit_or_reject(fd);
  }
}

Status Worker::adopt(int fd) {
  const Status st = net::set_nonblocking(fd);
  if (!st.is_ok()) {
    // A silently-blocking fd would wedge the whole event loop on its first
    // read — refuse the connection instead of serving it anyway.
    ::close(fd);
    return st;
  }
  admit_or_reject(fd);
  return Status::ok();
}

// ---------------------------------------------------------- admission ----

bool Worker::admission_ok() const {
  if (draining_) return false;
  const OverloadConfig& oc = config_.overload;
  if (oc.max_handshaking != 0 && handshaking_ >= oc.max_handshaking)
    return false;
  if (oc.max_async_inflight != 0 && qat_ &&
      qat_->inflight_total() >= oc.max_async_inflight)
    return false;
  return true;
}

void Worker::admit_or_reject(int fd) {
  if (admission_ok()) {
    setup_connection(fd);
    return;
  }
  if (draining_) {
    // Drain refuses everything: the listener is disarmed, but a connect may
    // have raced the disarm (or arrived via adopt).
    ++overload_stats_.drain_refused;
    overload_obs().drain_refused.inc();
    ::close(fd);
    return;
  }
  const OverloadConfig& oc = config_.overload;
  if (oc.past_cap == OverloadConfig::PastCap::kPark &&
      parked_count_ < oc.park_backlog) {
    // Parked: the fd stays accepted (the peer sees an established TCP
    // connection) but no TLS state exists yet; admitted as capacity frees.
    park_accept(fd);
    return;
  }
  if (oc.past_cap == OverloadConfig::PastCap::kPark)
    ++overload_stats_.park_overflow;
  // Shed pre-handshake: a plain close is a clean FIN — cheaper for both
  // sides than a TLS alert the handshake never earned.
  ++overload_stats_.shed;
  overload_obs().shed.inc();
  ::close(fd);
}

void Worker::park_accept(int fd) {
  ParkedAccept* node = park_pool_->create();
  node->fd = fd;
  node->prev = parked_tail_;
  if (parked_tail_ != nullptr)
    parked_tail_->next = node;
  else
    parked_head_ = node;
  parked_tail_ = node;
  ++parked_count_;
  // A parked peer has been waiting on its handshake since accept — it ages
  // against the handshake budget like an admitted connection would. The
  // pre-fix worker parked raw fds with no deadline at all: a peer that hit
  // its handshake deadline simply never left the backlog.
  const uint64_t delay = config_.overload.handshake_timeout_ms;
  if (delay != 0)
    node->deadline_timer = loop_.timers().arm(
        now_ms(), delay, [this, node] { on_park_deadline(node); });
  ++overload_stats_.parked;
  overload_obs().parked.inc();
}

void Worker::unlink_parked(ParkedAccept* node) {
  if (node->prev != nullptr)
    node->prev->next = node->next;
  else
    parked_head_ = node->next;
  if (node->next != nullptr)
    node->next->prev = node->prev;
  else
    parked_tail_ = node->prev;
  node->prev = node->next = nullptr;
  --parked_count_;
  if (node->deadline_timer != 0) {
    (void)loop_.timers().cancel(node->deadline_timer);
    node->deadline_timer = 0;
  }
}

void Worker::on_park_deadline(ParkedAccept* node) {
  note_progress();
  node->deadline_timer = 0;  // fired, nothing to cancel
  // Unlink BEFORE destroy — destroying a node still linked into the backlog
  // leaves its neighbours pointing at a recycled slab slot (the
  // use-after-free the ParkDeadline regression test reproduces under ASan).
  unlink_parked(node);
  ++overload_stats_.park_timeouts;
  overload_obs().park_timeout.inc();
  ::close(node->fd);
  park_pool_->destroy(node);
}

void Worker::admit_parked() {
  while (parked_head_ != nullptr && admission_ok()) {
    ParkedAccept* node = parked_head_;
    const int fd = node->fd;
    unlink_parked(node);
    park_pool_->destroy(node);
    ++overload_stats_.admitted_from_park;
    setup_connection(fd);
  }
}

void Worker::setup_connection(int fd) {
  Conn* c = conn_pool_->create();
  c->fd = fd;
  c->id = next_conn_id_++;
  c->worker = this;
  c->transport.emplace(fd);
  c->tls.emplace(tls_ctx_, &*c->transport, &scratch_pool_);
  c->parser = HttpRequestParser(config_.http_limits);
  conns_.emplace(fd, c);
  conns_by_id_.emplace(c->id, c);
  ++stats_.accepted;
  c->counted_handshaking = true;
  ++handshaking_;
  arm_deadline(c, DeadlineKind::kHandshake,
               config_.overload.handshake_timeout_ms);

  if (config_.notify == NotifyScheme::kKernelBypass) {
    // §4.4: application-level callback inserted into the ASYNC_WAIT_CTX;
    // the response callback notifies by queueing the async handler. The
    // queue entry resolves the connection by id at drain time — the
    // connection may have died in between.
    c->tls->wait_ctx()->set_callback(
        [](void* arg) {
          Conn* conn = static_cast<Conn*>(arg);
          Worker* worker = conn->worker;
          const uint64_t id = conn->id;
          worker->async_queue_.push([worker, id] {
            if (Conn* live = worker->find_by_id(id))
              worker->on_async_event(live);
          });
        },
        c);
  } else {
    // FD scheme: create and register the shared notification FD up front so
    // a response can never race ahead of its registration (§4.4's
    // one-FD-per-connection optimization).
    asyncx::WaitCtx* wctx = c->tls->wait_ctx();
    const int efd = wctx->ensure_fd();
    if (efd >= 0) {
      (void)loop_.add(efd, true, false, [this, c](net::FdEvents) {
        c->tls->wait_ctx()->clear_fd();
        on_async_event(c);
      });
      c->fd_registered = true;
    }
  }

  auto status = loop_.add(fd, true, false, [this, c](net::FdEvents events) {
    on_socket_event(c, events);
  });
  if (!status.is_ok()) {
    QTLS_WARN << "epoll add failed: " << status.to_string();
    close_connection(c, true);
    return;
  }
  handshake_handler(c);
  maybe_heuristic_poll();
}

void Worker::close_connection(Conn* conn, bool error) {
  if (error) {
    ++stats_.errors;
    // A connection dying while resuming from an async event means the
    // offload op it was parked on failed terminally (device error past the
    // retry budget, or deadline expiry with sw-fallback disabled). Counted
    // separately so run_until callers can observe permanent offload
    // failures instead of waiting on a completion that will never come.
    if (conn->in_async_resume) ++stats_.async_failures;
  } else {
    ++stats_.closed;
  }
  set_idle(conn, false);
  cancel_deadline(conn);
  note_handshake_over(conn);
  // Retire the id first so async-queue entries referencing this connection
  // become no-ops, then run any paused offload job to completion — its
  // response callback references this connection's wait context.
  conns_by_id_.erase(conn->id);
  if (conn->expecting_async) --pending_async_;
  conn->expecting_async = false;
  conn->async_handler = nullptr;
  if (conn->tls->has_paused_job())
    conn->tls->drain_paused_job([this] {
      if (qat_) qat_->poll();
    });
  if (conn->fd_registered && conn->tls->wait_ctx()->has_fd())
    (void)loop_.remove(conn->tls->wait_ctx()->fd());
  (void)loop_.remove(conn->fd);
  conns_.erase(conn->fd);
  conn_pool_->destroy(conn);  // slot recycled; conn is dead past this line
  // Capacity freed: pull a parked accept in, and let a drain in progress
  // observe the shrinking population.
  admit_parked();
  finish_drain_check();
}

void Worker::note_handshake_over(Conn* conn) {
  if (!conn->counted_handshaking) return;
  conn->counted_handshaking = false;
  --handshaking_;
}

// ---------------------------------------------------------- deadlines ----

void Worker::arm_deadline(Conn* conn, DeadlineKind kind, uint64_t delay_ms) {
  cancel_deadline(conn);
  if (delay_ms == 0) return;  // disabled
  conn->deadline_kind = kind;
  conn->deadline_timer =
      loop_.timers().arm(now_ms(), delay_ms, [this, id = conn->id] {
        if (Conn* live = find_by_id(id)) on_deadline(live);
      });
}

void Worker::cancel_deadline(Conn* conn) {
  if (conn->deadline_timer != 0) {
    (void)loop_.timers().cancel(conn->deadline_timer);
    conn->deadline_timer = 0;
  }
  conn->deadline_kind = DeadlineKind::kNone;
}

void Worker::on_deadline(Conn* conn) {
  note_progress();
  const DeadlineKind kind = conn->deadline_kind;
  conn->deadline_timer = 0;  // fired, nothing to cancel
  conn->deadline_kind = DeadlineKind::kNone;
  // Pick the alert the teardown deserves (DESIGN.md §10). A paused fiber
  // owns the record stream — calling any entry point would resume the wrong
  // operation — so alerts are skipped there; close_connection drains the
  // job and the pending offload slot via the PR 2 sweep.
  const bool can_alert = !conn->tls->has_paused_job();
  switch (kind) {
    case DeadlineKind::kHandshake:
      ++overload_stats_.handshake_timeouts;
      overload_obs().handshake_timeout.inc();
      if (can_alert)
        (void)conn->tls->send_alert(tls::AlertLevel::kFatal,
                                    tls::AlertDescription::kUserCanceled);
      break;
    case DeadlineKind::kIdle:
      ++overload_stats_.idle_timeouts;
      overload_obs().idle_timeout.inc();
      if (can_alert)
        (void)conn->tls->send_alert(tls::AlertLevel::kWarning,
                                    tls::AlertDescription::kCloseNotify);
      break;
    case DeadlineKind::kWriteStall:
      // The peer is not draining our bytes — an alert would only join the
      // queue it refuses to read. Close without ceremony.
      ++overload_stats_.write_stall_timeouts;
      overload_obs().write_stall_timeout.inc();
      break;
    case DeadlineKind::kNone:
      return;  // cancelled in the same advance; nothing to do
  }
  close_connection(conn, /*error=*/false);
}

void Worker::set_idle(Conn* conn, bool idle) {
  if (conn->idle == idle) return;
  conn->idle = idle;
  idle_count_ += idle ? 1 : static_cast<size_t>(-1);
}

// ----------------------------------------------------------- dispatch ----

bool Worker::dispatch_result(Conn* conn, tls::TlsResult r, Handler self) {
  switch (r) {
    case tls::TlsResult::kOk:
      return true;
    case tls::TlsResult::kWantAsync:
      park_async(conn, self);
      return false;
    case tls::TlsResult::kWantRead:
      (void)loop_.modify(conn->fd, true, false);
      return false;
    case tls::TlsResult::kWantWrite:
      (void)loop_.modify(conn->fd, true, true);
      return false;
    case tls::TlsResult::kClosed:
      close_connection(conn, false);
      return false;
    case tls::TlsResult::kError:
      close_connection(conn, true);
      return false;
  }
  return false;
}

void Worker::park_async(Conn* conn, Handler handler) {
  ++stats_.async_parks;
  conn->async_handler = handler;
  if (!conn->expecting_async) ++pending_async_;
  conn->expecting_async = true;
  maybe_heuristic_poll();
}

void Worker::on_async_event(Conn* conn) {
  if (!conn->expecting_async) return;  // stale event (connection moved on)
  note_progress();
  const int fd = conn->fd;  // captured before the handler may destroy conn
  conn->expecting_async = false;
  --pending_async_;
  conn->in_async_resume = true;
  Handler handler = conn->async_handler;
  conn->async_handler = nullptr;
  if (handler) (this->*handler)(conn);

  // §4.2: restore the saved read event, if one arrived out of order.
  // The map lookup also tells us whether the handler destroyed the
  // connection (terminal offload failure path) — only touch conn if alive.
  auto it = conns_.find(fd);
  if (it == conns_.end() || it->second != conn) return;
  conn->in_async_resume = false;
  if (conn->deferred_read && !conn->expecting_async) {
    conn->deferred_read = false;
    net::FdEvents ev;
    ev.readable = true;
    on_socket_event(conn, ev);
  }
}

void Worker::on_socket_event(Conn* conn, net::FdEvents events) {
  note_progress();
  if (events.error) {
    close_connection(conn, true);
    return;
  }
  if (conn->expecting_async) {
    // Event disorder (§4.2): the only event we expect now is the async
    // event. Save the read event; it is replayed after the async resume.
    if (events.readable) {
      conn->deferred_read = true;
      ++stats_.disorder_events;
    }
    return;
  }
  if (!conn->tls->handshake_complete()) {
    handshake_handler(conn);
  } else if (events.writable && conn->write_in_progress) {
    write_handler(conn);
  } else if (events.readable) {
    read_handler(conn);
  }
  maybe_heuristic_poll();
}

// ----------------------------------------------------------- handlers ----

void Worker::handshake_handler(Conn* conn) {
  const tls::TlsResult r = conn->tls->handshake();
  if (!dispatch_result(conn, r, &Worker::handshake_handler)) return;
  ++stats_.handshakes_completed;
  if (conn->tls->resumed_session()) ++stats_.resumed_handshakes;
  // Handshake capacity freed: admit parked accepts, swap the handshake
  // deadline for the idle/request one.
  note_handshake_over(conn);
  arm_deadline(conn, DeadlineKind::kIdle, config_.overload.idle_timeout_ms);
  admit_parked();
  (void)loop_.modify(conn->fd, true, false);
  // The client's first request may already sit decoded in the TLS buffers
  // (sent back-to-back with its Finished); epoll would never fire for it.
  read_handler(conn);
}

void Worker::read_handler(Conn* conn) {
  set_idle(conn, false);
  for (;;) {
    // conn->inbound (not a stack local) is the read target: a paused async
    // read job holds a pointer to it across resumes.
    const tls::TlsResult r = conn->tls->read(&conn->inbound);
    if (r == tls::TlsResult::kWantRead) {
      // No complete record yet. If no request is pending either, the
      // connection returns to idle (keepalive wait).
      if (conn->parser.buffered() == 0 && !conn->response_inflight)
        set_idle(conn, true);
      (void)loop_.modify(conn->fd, true, false);
      return;
    }
    if (!dispatch_result(conn, r, &Worker::read_handler)) return;
    conn->parser.feed(conn->inbound);
    conn->inbound.clear();
    auto request = conn->parser.next();
    if (conn->parser.error()) {
      if (conn->parser.too_large() && !conn->tls->has_paused_job()) {
        // Parser bound exceeded: answer 431 before closing so a
        // misconfigured (rather than hostile) client learns why. Best
        // effort — a kWantAsync seal is drained by close_connection.
        (void)conn->tls->write(build_http_response(431, {}, false));
      }
      close_connection(conn, true);
      return;
    }
    if (request.has_value()) {
      conn->response_keepalive = request->keepalive;
      if (request->path == "/stats")
        conn->endpoint = Endpoint::kStats;
      else if (request->path == "/healthz")
        conn->endpoint = Endpoint::kHealthz;
      else if (request->path == "/readyz")
        conn->endpoint = Endpoint::kReadyz;
      else if (request->path == "/reload")
        conn->endpoint = Endpoint::kReload;
      else
        conn->endpoint = Endpoint::kFile;
      conn->request_path = request->path;
      conn->response_inflight = true;
      write_handler(conn);
      return;
    }
    // Partial request: keep reading.
  }
}

// Static-file path (DESIGN.md §11) -----------------------------------------

namespace {
// pread chunk size: 64 KB = four 16 KB records per TLS write, so every chunk
// drives one batched seal submission.
constexpr size_t kFileReadChunk = 64 * 1024;
}  // namespace

bool Worker::open_static_file(Conn* conn) {
  const std::string& path = conn->request_path;
  // Reject anything that could escape the root: relative paths and any
  // dot-dot segment (conservative: any ".." substring).
  if (path.empty() || path[0] != '/' ||
      path.find("..") != std::string::npos)
    return false;
  const std::string full = config_.file_root + path;
  const int fd = ::open(full.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;
  struct stat st;
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    return false;
  }
  conn->file_fd = fd;
  conn->file_off = 0;
  conn->file_left = static_cast<size_t>(st.st_size);
  return true;
}

void Worker::finish_file(Conn* conn) {
  if (conn->file_fd >= 0) ::close(conn->file_fd);
  conn->file_fd = -1;
  conn->file_off = 0;
  conn->file_left = 0;
  conn->file_staging.clear();
  conn->file_staging.shrink_to_fit();
}

tls::TlsResult Worker::stream_file(Conn* conn) {
  // Bounded staging: pread one chunk, hand it to the TLS layer (which seals
  // it as one record batch), repeat. A kWantAsync/kWantWrite return parks
  // the connection mid-file; the resume path finishes the in-flight write
  // and re-enters this loop at file_off.
  while (conn->file_left > 0) {
    const size_t chunk = std::min(conn->file_left, kFileReadChunk);
    conn->file_staging.resize(chunk);
    const ssize_t n = ::pread(conn->file_fd, conn->file_staging.data(), chunk,
                              static_cast<off_t>(conn->file_off));
    if (n <= 0) {
      // Truncated under us or I/O error: the head already promised
      // Content-Length bytes, so the only honest move is to kill the
      // connection.
      finish_file(conn);
      return tls::TlsResult::kError;
    }
    conn->file_staging.resize(static_cast<size_t>(n));
    conn->file_off += static_cast<size_t>(n);
    conn->file_left -= static_cast<size_t>(n);
    const tls::TlsResult r = conn->tls->write(conn->file_staging);
    if (r != tls::TlsResult::kOk) return r;
  }
  finish_file(conn);
  return tls::TlsResult::kOk;
}

void Worker::write_handler(Conn* conn) {
  tls::TlsResult r;
  if (conn->response_inflight && !conn->tls->handshake_complete()) {
    close_connection(conn, true);
    return;
  }
  if (conn->response_inflight) {
    // First call builds and queues the response; resumed calls pass empty
    // (the connection's write buffer already holds the data).
    conn->response_inflight = false;
    conn->write_in_progress = true;
    if (!config_.file_root.empty() && conn->endpoint == Endpoint::kFile) {
      // Static-file path: head first (Content-Length from fstat), then the
      // streamed body. Resolution failure is a 404 through the buffered
      // builder — error bodies are tiny.
      if (open_static_file(conn)) {
        r = conn->tls->write(build_http_response_head(
            200, conn->file_left, conn->response_keepalive));
        if (r == tls::TlsResult::kOk) r = stream_file(conn);
      } else {
        r = conn->tls->write(
            build_http_response(404, {}, conn->response_keepalive));
      }
    } else if (conn->endpoint != Endpoint::kFile) {
      // Control/observability endpoints: /stats, /healthz, /readyz, /reload.
      Bytes body;
      int http_status = 200;
      if (conn->endpoint == Endpoint::kStats) {
        const std::string json = stats_json();
        body.assign(json.begin(), json.end());
      } else {
        const std::string json = control_response(conn->endpoint, &http_status);
        body.assign(json.begin(), json.end());
      }
      r = conn->tls->write(build_http_response(http_status, BytesView(body),
                                               conn->response_keepalive));
    } else {
      r = conn->tls->write(build_http_response(200, BytesView(response_body_),
                                               conn->response_keepalive));
    }
  } else {
    // Resume: finish the write that parked us, then keep streaming if a
    // static file is still open.
    r = conn->tls->write({});
    if (r == tls::TlsResult::kOk && conn->file_fd >= 0)
      r = stream_file(conn);
  }
  if (r == tls::TlsResult::kWantAsync || r == tls::TlsResult::kWantWrite) {
    if (r == tls::TlsResult::kWantAsync) {
      park_async(conn, &Worker::write_handler);
    } else {
      // Transport backpressure: the slowloris window. The stall deadline is
      // armed once and NOT reset by partial progress — a peer draining one
      // byte per second never pushes it out.
      if (conn->deadline_kind != DeadlineKind::kWriteStall)
        arm_deadline(conn, DeadlineKind::kWriteStall,
                     config_.overload.write_stall_timeout_ms);
      (void)loop_.modify(conn->fd, true, true);
    }
    return;
  }
  conn->write_in_progress = false;
  if (r != tls::TlsResult::kOk) {
    close_connection(conn, r == tls::TlsResult::kClosed ? false : true);
    return;
  }
  ++stats_.requests_served;
  // Response fully flushed: back to the keepalive wait.
  arm_deadline(conn, DeadlineKind::kIdle, config_.overload.idle_timeout_ms);
  if (!conn->response_keepalive) {
    (void)conn->tls->shutdown();
    close_connection(conn, false);
    return;
  }
  (void)loop_.modify(conn->fd, true, false);
  // A pipelined next request may already be buffered in the TLS layer;
  // read_handler settles the connection back to idle if there is none.
  read_handler(conn);
}

// ---------------------------------------------------------- memory plane ----

size_t Worker::conn_footprint(const Conn& conn) const {
  // sizeof(Conn) covers the embedded transport + TlsConnection (by-value
  // members); heap_footprint() adds what they own on the heap.
  size_t n = sizeof(Conn);
  if (conn.tls.has_value()) n += conn.tls->heap_footprint();
  n += conn.inbound.capacity();
  n += conn.file_staging.capacity();
  n += conn.request_path.capacity();
  n += conn.parser.buffered();
  return n;
}

size_t Worker::bytes_per_conn() const {
  if (conns_.empty()) return 0;
  size_t total = 0;
  for (const auto& [fd, conn] : conns_) total += conn_footprint(*conn);
  return total / conns_.size();
}

size_t Worker::released_scratch_connections() const {
  size_t n = 0;
  for (const auto& [fd, conn] : conns_)
    if (conn->tls.has_value() && conn->tls->handshake_state_released()) ++n;
  return n;
}

namespace {
const char* breaker_name(engine::BreakerState s) {
  switch (s) {
    case engine::BreakerState::kClosed: return "closed";
    case engine::BreakerState::kOpen: return "open";
    case engine::BreakerState::kHalfOpen: return "half_open";
  }
  return "?";
}
}  // namespace

std::string Worker::stats_json() const {
  std::ostringstream os;
  os << "{\"worker\":{"
     << "\"accepted\":" << stats_.accepted
     << ",\"handshakes_completed\":" << stats_.handshakes_completed
     << ",\"requests_served\":" << stats_.requests_served
     << ",\"closed\":" << stats_.closed << ",\"errors\":" << stats_.errors
     << ",\"disorder_events\":" << stats_.disorder_events
     << ",\"async_parks\":" << stats_.async_parks
     << ",\"async_failures\":" << stats_.async_failures
     << ",\"alive\":" << alive_connections()
     << ",\"active\":" << active_connections() << "}";
  os << ",\"overload\":{"
     << "\"shed\":" << overload_stats_.shed
     << ",\"parked\":" << overload_stats_.parked
     << ",\"park_overflow\":" << overload_stats_.park_overflow
     << ",\"admitted_from_park\":" << overload_stats_.admitted_from_park
     << ",\"handshake_timeouts\":" << overload_stats_.handshake_timeouts
     << ",\"park_timeouts\":" << overload_stats_.park_timeouts
     << ",\"idle_timeouts\":" << overload_stats_.idle_timeouts
     << ",\"write_stall_timeouts\":" << overload_stats_.write_stall_timeouts
     << ",\"drain_refused\":" << overload_stats_.drain_refused
     << ",\"drain_force_closed\":" << overload_stats_.drain_force_closed
     << ",\"handshaking\":" << handshaking_
     << ",\"parked_now\":" << parked_count_
     << ",\"draining\":" << (draining_ ? "true" : "false") << "}";
  // Memory plane (DESIGN.md §14): what an alive connection costs, how much
  // of the fleet released its handshake scratch, and the slab directory.
  {
    const size_t bpc = bytes_per_conn();
    const common::SlabStats slab_totals =
        common::SlabRegistry::global().totals();
    memory_obs().bytes_per_conn.set(static_cast<int64_t>(bpc));
    memory_obs().slab_bytes_reserved.set(
        static_cast<int64_t>(slab_totals.bytes_reserved));
    os << ",\"memory\":{"
       << "\"bytes_per_conn\":" << bpc
       << ",\"released_scratch\":" << released_scratch_connections()
       << ",\"slab_live\":" << slab_totals.live
       << ",\"slab_bytes_reserved\":" << slab_totals.bytes_reserved
       << ",\"slabs\":" << common::SlabRegistry::global().to_json() << "}";
  }
  if (qat_) {
    const engine::QatEngineStats& e = qat_->stats();
    os << ",\"engine\":{"
       << "\"submitted\":" << e.submitted << ",\"completed\":" << e.completed
       << ",\"device_errors\":" << e.device_errors
       << ",\"op_retries\":" << e.op_retries
       << ",\"deadline_expiries\":" << e.deadline_expiries
       << ",\"sw_fallbacks\":" << e.sw_fallbacks
       << ",\"breaker_opens\":" << e.breaker_opens
       << ",\"breaker_closes\":" << e.breaker_closes
       << ",\"device_migrations\":" << e.device_migrations
       << ",\"lane_spillovers\":" << e.lane_spillovers
       << ",\"lane_breaker_opens\":" << e.lane_breaker_opens
       << ",\"lane_breaker_closes\":" << e.lane_breaker_closes
       << ",\"breaker\":{";
    for (int c = 0; c < qat::kNumOpClasses; ++c) {
      os << (c ? "," : "") << '"'
         << qat::op_class_name(static_cast<qat::OpClass>(c)) << "\":\""
         << breaker_name(qat_->breaker_state(static_cast<qat::OpClass>(c)))
         << '"';
    }
    os << "}}";
    // Remote offload tier (DESIGN.md §13): ladder position between the QAT
    // lanes and inline software, plus the channel's own counters.
    os << ",\"remote\":" << qat_->remote_json();
    // Multi-device topology (DESIGN.md §12): the fleet view plus this
    // worker's per-device lanes.
    if (qat::DeviceTopology* topo = qat_->topology()) {
      os << ",\"topology\":{\"fleet\":" << topo->stats_json()
         << ",\"preferred_device\":" << qat_->preferred_device()
         << ",\"lanes\":" << qat_->lanes_json() << "}";
    }
  }
  if (const HeuristicPollerStats* p = poller_stats()) {
    os << ",\"poller\":{"
       << "\"polls\":" << p->polls << ",\"retrieved\":" << p->retrieved
       << ",\"max_batch\":" << p->max_batch
       << ",\"efficiency_triggers\":" << p->efficiency_triggers
       << ",\"timeliness_triggers\":" << p->timeliness_triggers
       << ",\"failover_triggers\":" << p->failover_triggers << "}";
  }
  // Control plane (DESIGN.md §15): what generation this worker runs and the
  // heartbeat the supervisor scores.
  os << ",\"control\":{"
     << "\"applied_generation\":"
     << applied_generation_.load(std::memory_order_relaxed)
     << ",\"heartbeat\":{\"iterations\":"
     << heartbeat_.iterations.load(std::memory_order_relaxed)
     << ",\"progress\":" << heartbeat_.progress.load(std::memory_order_relaxed)
     << ",\"phase\":"
     << static_cast<int>(heartbeat_.phase.load(std::memory_order_relaxed))
     << "}}";
  os << ",\"session\":"
     << tls_ctx_->session_plane().stats_json(tls_ctx_->now_ms());
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
  // TX data-plane copy meter (DESIGN.md §11): payload bytes memcpy'd per
  // byte handed to the transport. 1.0 ≈ the single unavoidable staging pass;
  // the legacy coalesced plane sits near 3.
  const uint64_t copied = snap.counter_value("record.bytes_copied");
  const uint64_t sent = snap.counter_value("record.bytes_sent");
  os << ",\"record\":{"
     << "\"bytes_copied\":" << copied << ",\"bytes_sent\":" << sent
     << ",\"copied_per_byte\":"
     << (sent != 0 ? static_cast<double>(copied) / static_cast<double>(sent)
                   : 0.0)
     << "}";
  os << ",\"metrics\":" << snap.to_json() << "}";
  return os.str();
}

// --------------------------------------------------------------- drain ----

void Worker::request_drain(uint64_t deadline_ms) {
  drain_delay_ms_.store(deadline_ms, std::memory_order_release);
  drain_requested_.store(true, std::memory_order_release);
}

void Worker::begin_drain() {
  draining_ = true;
  // The absolute deadline is computed HERE, on the worker's own (possibly
  // virtual) clock — request_drain may have been called from another thread
  // against a different clock entirely.
  const uint64_t delay = drain_delay_ms_.load(std::memory_order_acquire);
  drain_deadline_ms_ = now_ms() + delay;

  // No new accepts: disarm the listener and refuse the parked backlog.
  if (listener_armed_) {
    (void)loop_.remove(listener_.fd());
    listener_armed_ = false;
  }
  while (parked_head_ != nullptr) {
    ParkedAccept* node = parked_head_;
    unlink_parked(node);
    ++overload_stats_.drain_refused;
    overload_obs().drain_refused.inc();
    ::close(node->fd);
    park_pool_->destroy(node);
  }

  // Idle keepalive connections have nothing in flight: close them now with
  // an orderly close_notify. In-flight handshakes and requests keep going
  // until they finish or the deadline force-closes them.
  std::vector<uint64_t> idle_ids;
  for (auto& [fd, conn] : conns_)
    if (conn->idle) idle_ids.push_back(conn->id);
  for (uint64_t id : idle_ids) {
    Conn* conn = find_by_id(id);
    if (!conn) continue;
    if (!conn->tls->has_paused_job())
      (void)conn->tls->send_alert(tls::AlertLevel::kWarning,
                                  tls::AlertDescription::kCloseNotify);
    close_connection(conn, /*error=*/false);
  }

  // Force-close whatever survives the deadline.
  loop_.timers().arm(now_ms(), delay, [this] {
    std::vector<uint64_t> ids;
    for (auto& [fd, conn] : conns_) ids.push_back(conn->id);
    for (uint64_t id : ids) {
      Conn* conn = find_by_id(id);
      if (!conn) continue;
      ++overload_stats_.drain_force_closed;
      overload_obs().drain_force_closed.inc();
      close_connection(conn, /*error=*/false);
    }
    finish_drain_check();
  });
  finish_drain_check();
}

void Worker::finish_drain_check() {
  if (draining_ && conns_.empty() && parked_count_ == 0)
    drained_.store(true, std::memory_order_release);
}

// ------------------------------------------------------- control plane ----

void Worker::maybe_apply_runtime_config() {
  ControlPlane* control = config_.control;
  // Hot path: one relaxed load per pass; everything below runs only when a
  // new generation was published since we last looked.
  const uint64_t gen = control->generation();
  if (gen == applied_generation_.load(std::memory_order_relaxed)) return;
  heartbeat_.phase.store(static_cast<uint8_t>(WorkerPhase::kApplyConfig),
                         std::memory_order_relaxed);
  const std::shared_ptr<const RuntimeConfig> rc = control->current();
  if (!rc) return;
  // Worker-thread application point (DESIGN.md §15): overload caps govern
  // admissions and newly armed deadlines from this pass on; http limits
  // bind new parsers; in-flight connections keep what they started with.
  config_.overload = rc->settings.overload;
  config_.http_limits = rc->settings.http_limits;
  config_.file_root = rc->settings.file_root;
  // Credential swap is RCU-by-refcount: the context's snapshot changes for
  // connections accepted from now on, while live handshakes hold the
  // shared_ptr they captured at accept.
  if (rc->credentials) tls_ctx_->set_credentials(*rc->credentials);
  if (config_.remote_rebind) config_.remote_rebind(rc->settings.remote);
  applied_generation_.store(rc->generation, std::memory_order_relaxed);
  QTLS_INFO << "worker applied config generation " << rc->generation;
}

std::string Worker::control_response(Endpoint endpoint, int* http_status) {
  *http_status = 200;
  ControlPlane* control = config_.control;
  std::ostringstream os;
  switch (endpoint) {
    case Endpoint::kHealthz:
      if (control) return control->healthz_json(now_ms(), http_status);
      // No control plane attached: liveness degenerates to "this worker is
      // serving the request", which it demonstrably is.
      os << "{\"status\":\"ok\",\"supervised\":false}";
      return os.str();
    case Endpoint::kReadyz:
      if (control) return control->readyz_json(http_status);
      *http_status = draining_ ? 503 : 200;
      os << "{\"ready\":" << (draining_ ? "false" : "true")
         << ",\"supervised\":false}";
      return os.str();
    case Endpoint::kReload: {
      if (!control) {
        *http_status = 404;
        return "{\"error\":\"no control plane attached\"}";
      }
      // Synchronous: parse + publish here, then apply our own view before
      // answering so the response reflects the generation it created.
      const Status st = control->reload_now();
      if (!st.is_ok()) {
        *http_status = 500;
        os << "{\"ok\":false,\"error\":\"" << st.to_string() << "\"}";
        return os.str();
      }
      maybe_apply_runtime_config();
      os << "{\"ok\":true,\"generation\":" << control->generation() << "}";
      return os.str();
    }
    case Endpoint::kFile:
    case Endpoint::kStats:
      break;  // not ours
  }
  *http_status = 500;
  return "{}";
}

// ---------------------------------------------------------------- loop ----

void Worker::maybe_heuristic_poll() {
  if (poller_) (void)poller_->maybe_poll(active_connections(), now_ms());
}

int Worker::run_once(int timeout_ms) {
  if (config_.loop_hook) config_.loop_hook(*this);
  if (config_.control != nullptr) maybe_apply_runtime_config();
  if (drain_requested_.load(std::memory_order_acquire) && !draining_)
    begin_drain();
  // §3.4: as long as async work is pending, keep the loop spinning rather
  // than sleep-waiting in epoll.
  const bool work_pending =
      !async_queue_.empty() || (qat_ && qat_->inflight_total() > 0);
  heartbeat_.phase.store(static_cast<uint8_t>(WorkerPhase::kPoll),
                         std::memory_order_relaxed);
  const int n = loop_.run_once(work_pending ? 0 : timeout_ms);

  maybe_heuristic_poll();
  if (poller_) (void)poller_->failover_poll(now_ms());

  // End of the main event loop: drain the kernel-bypass async queue.
  heartbeat_.phase.store(static_cast<uint8_t>(WorkerPhase::kAsyncDrain),
                         std::memory_order_relaxed);
  async_queue_.drain();
  maybe_heuristic_poll();
  // Heartbeat: one completed pass (the supervisor scores freshness on this).
  heartbeat_.phase.store(static_cast<uint8_t>(WorkerPhase::kIdle),
                         std::memory_order_relaxed);
  heartbeat_.stamp_ms.store(now_ms(), std::memory_order_relaxed);
  heartbeat_.iterations.fetch_add(1, std::memory_order_relaxed);
  return n;
}

// Failure observation contract: a connection whose offload op fails
// terminally is torn down inside some run_once iteration (the deadline
// sweep rides the failover poll, so even a dropped response resolves within
// ~failover_interval_ms + op_deadline_us). `stop` predicates waiting on
// progress counters should also watch stats().errors / async_failures —
// a failed connection advances those, never the progress counters.
// A pending eject (crash-only recovery, DESIGN.md §15) exits the loop ahead
// of the caller's own predicate.
void Worker::run_until(const std::function<bool()>& stop, int timeout_ms) {
  while (!eject_requested() && !stop()) run_once(timeout_ms);
}

}  // namespace qtls::server
