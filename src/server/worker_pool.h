// Multi-worker deployment — the paper's §5.1 setup in one process: N
// workers, each on its own thread with its own event loop, TLS context and
// QAT instance (instances distributed evenly across the card's endpoints),
// all accepting from the same port via SO_REUSEPORT, the way multi-process
// Nginx shares a listener.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "remote/channel.h"
#include "server/ssl_engine_conf.h"
#include "server/worker.h"

namespace qtls::server {

struct WorkerPoolOptions {
  int workers = 2;
  WorkerConfig worker_config;
  // Template for each worker's TLS context (each worker gets its own copy:
  // contexts are single-threaded like per-process Nginx state).
  tls::TlsContextConfig tls_config;
  engine::QatEngineConfig engine_config;
  // Instances assigned per worker (paper: one each; §2.3 allows more).
  int instances_per_worker = 1;
  // Topology pools only: explicit worker->device map (worker w prefers
  // device worker_affinity[w % size]); empty = NUMA striping
  // (DeviceTopology::preferred_device). Mirrors conf `worker_affinity`.
  std::vector<int> worker_affinity;
  // Remote offload tier (DESIGN.md §13): when enabled each worker dials
  // the offload server and slots the channel between its QAT lanes and
  // inline software. A failed dial logs and degrades to the two-tier
  // ladder rather than failing pool start.
  RemoteOffloadSettings remote;
  size_t response_body_size = 1024;
  // Periodic observability dump: every interval the pool logs stats_text()
  // (pool totals + the global metrics registry). 0 disables the dump thread.
  uint64_t stats_dump_interval_ms = 0;
};

struct WorkerPoolStats {
  WorkerStats totals;
  std::vector<uint64_t> per_worker_handshakes;
  // Shared resumption plane (one cache/ring for the whole pool).
  uint64_t session_hits = 0;
  uint64_t session_misses = 0;
  uint64_t tickets_unsealed = 0;
  // Watchdog recoveries executed over the pool's lifetime (DESIGN.md §15).
  uint64_t worker_restarts = 0;
};

// Snapshot of one worker's heartbeat as the supervisor scores it.
struct WorkerHeartbeatView {
  uint64_t iterations = 0;
  uint64_t progress = 0;
  uint64_t stamp_ms = 0;
  uint8_t phase = 0;
  bool draining = false;
  bool recovering = false;  // mid-replacement; exempt from wedge scoring
  uint64_t applied_generation = 0;
};

// What recover_worker accomplished.
struct RecoverOutcome {
  bool restarted = false;  // a replacement worker is accepting again
  bool joined = false;     // the old thread exited and was joined (vs zombie)
  size_t reaped = 0;       // connections + parked accepts reclaimed
};

class WorkerPool {
 public:
  // `device` outlives the pool; credentials are shared const state.
  WorkerPool(qat::QatDevice* device, const RsaPrivateKey* rsa_key,
             WorkerPoolOptions options);
  // Multi-device form (DESIGN.md §12): workers draw their instances from
  // the topology with NUMA-style affinity (or the explicit worker_affinity
  // map), and each worker's engine runs one lane per device it touches —
  // a hot-removed device shifts that worker's load to its other lanes.
  // `topology` outlives the pool.
  WorkerPool(qat::DeviceTopology* topology, const RsaPrivateKey* rsa_key,
             WorkerPoolOptions options);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Binds all workers to the same port (0 = ephemeral: the first worker
  // picks, the rest join it) and starts the worker threads.
  Status start(uint16_t port);
  void stop();

  // Graceful drain (DESIGN.md §10): every worker stops accepting, finishes
  // in-flight handshakes and keepalive requests, and force-closes whatever
  // is still alive `deadline_ms` after the drain begins. Blocks until all
  // worker threads have exited (bounded by the deadline plus one loop
  // iteration). Safe to call once; stop() afterwards is a no-op.
  void shutdown(uint64_t deadline_ms);

  uint16_t port() const { return port_; }
  int workers() const { return static_cast<int>(cells_.size()); }
  WorkerPoolStats stats() const;
  qat::DeviceTopology* topology() const { return topology_; }
  // Per-worker engine/worker handles (bench + test instrumentation).
  Worker* worker(int i) { return cells_[static_cast<size_t>(i)]->worker.get(); }
  engine::QatEngineProvider* engine(int i) {
    return cells_[static_cast<size_t>(i)]->engine.get();
  }

  // The pool-wide resumption plane every worker's context points at; a
  // session established on any worker resumes on any other.
  tls::SessionPlane& session_plane() { return *session_plane_; }
  const tls::SessionPlane& session_plane() const { return *session_plane_; }

  // Human-readable dump: pool totals followed by the global metrics
  // registry (per-stage histograms, fault counters). What the periodic
  // dump thread logs; also usable on demand.
  std::string stats_text() const;

  // --- control-plane views (DESIGN.md §15) ------------------------------
  // One heartbeat snapshot per worker slot, in slot order.
  std::vector<WorkerHeartbeatView> heartbeats() const;
  // Readiness inputs: any worker draining (or the pool stopping), and
  // whether the offload ladder has fully degraded to inline software on
  // every accelerated worker (all op-class breakers open AND no usable
  // remote tier). Software-only pools are never "degraded".
  bool any_draining() const;
  bool fully_degraded() const;

  // Crash-only recovery of worker slot `i` (the supervisor's arm): request
  // eject, wait up to `grace_ms` (wall clock) for the thread to come back,
  // then either join + destroy the worker — the destructor IS the reap:
  // paused offload jobs drain and every slab-backed connection returns to
  // its pool — or quarantine the wedged thread's whole cell as a zombie
  // (listener share darkened via dup2(/dev/null) so the kernel stops
  // handing it connections) and respawn a fresh worker on the same session
  // plane, port and topology lanes either way.
  RecoverOutcome recover_worker(int worker_index, uint64_t grace_ms);
  uint64_t total_worker_restarts() const {
    return total_restarts_.load(std::memory_order_relaxed);
  }

 private:
  struct Cell {
    std::unique_ptr<engine::QatEngineProvider> engine;
    // Remote tier channel (DESIGN.md §13); null when disabled or the dial
    // failed. Owned here so it outlives the engine that points at it.
    std::unique_ptr<remote::RemoteChannel> remote;
    // Channels retired by a reload rebind: kept alive (not destroyed) so a
    // late response for an op submitted pre-reload never touches freed
    // state; the engine's deadline sweep resolves those ops.
    std::vector<std::unique_ptr<remote::RemoteChannel>> retired_remotes;
    RemoteOffloadSettings remote_settings;  // what `remote` was dialed with
    std::unique_ptr<tls::TlsContext> ctx;
    std::unique_ptr<Worker> worker;
    std::thread thread;
    // Shared with the worker thread's lambda (never `this`, never the
    // Cell): a quarantined zombie thread can outlive both.
    std::shared_ptr<std::atomic<bool>> stop_flag;
    std::shared_ptr<std::atomic<bool>> exited;
    bool recovering = false;  // guarded by cells_mu_
    uint64_t restarts = 0;
  };

  // A wedged worker thread that missed its eject grace: its state is
  // quarantined (kept alive, listener darkened), never freed under it.
  struct Zombie {
    std::unique_ptr<Worker> worker;
    std::unique_ptr<engine::QatEngineProvider> engine;
    std::unique_ptr<tls::TlsContext> ctx;
    std::unique_ptr<remote::RemoteChannel> remote;
    std::vector<std::unique_ptr<remote::RemoteChannel>> retired_remotes;
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> stop_flag;
    std::shared_ptr<std::atomic<bool>> exited;
  };

  Status build_cell_engine_ctx(int index, Cell* cell);
  Status build_cell_worker(int index, Cell* cell, uint16_t port);
  void spawn_cell_thread(Cell* cell);
  void rebind_remote(Cell* cell, const RemoteOffloadSettings& ro);
  void reap_zombies();

  qat::QatDevice* device_;                    // legacy single-device pools
  qat::DeviceTopology* topology_ = nullptr;   // multi-device pools
  const RsaPrivateKey* rsa_key_;
  WorkerPoolOptions options_;
  std::unique_ptr<tls::SessionPlane> session_plane_;
  // Guards cells_ slot contents (worker/engine/remote swaps during
  // recovery and rebinds) and zombies_. Never held across a join or the
  // eject grace wait, so healthz-serving workers are never stalled into
  // looking wedged themselves.
  mutable std::mutex cells_mu_;
  std::vector<std::unique_ptr<Cell>> cells_;
  std::vector<std::unique_ptr<Zombie>> zombies_;  // guarded by cells_mu_
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> total_restarts_{0};
  bool started_ = false;
  uint16_t port_ = 0;
  std::thread dump_thread_;
};

}  // namespace qtls::server
