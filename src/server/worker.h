// The event-driven HTTPS worker — the reproduction of the paper's modified
// Nginx worker (§4.2–§4.4):
//  * one epoll loop handling many connections;
//  * TLS entry points returning WANT_ASYNC park the connection with an
//    async handler (the same handler is rescheduled on the async event);
//  * event disorder (§4.2): a read event arriving while an async event is
//    expected is saved and replayed after the async resume;
//  * notification: kernel-bypass async queue drained at the end of each
//    loop iteration, or eventfd through epoll;
//  * heuristic polling hooks wherever ops are submitted or TC_active moves,
//    plus the failover timer;
//  * stub_status-style accounting: TC_active = TC_alive - TC_idle.
#pragma once

#include <atomic>
#include <memory>
#include <unordered_map>

#include "common/slab.h"
#include "net/event_loop.h"
#include "net/socket_transport.h"
#include "server/async_queue.h"
#include "server/heuristic_poller.h"
#include "server/http.h"
#include "server/overload.h"
#include "server/ssl_engine_conf.h"
#include "tls/connection.h"

namespace qtls::server {

class ControlPlane;
class Worker;

// Which part of the loop pass a worker is in when its heartbeat is read —
// purely diagnostic (shown in /healthz), never used for wedge decisions.
enum class WorkerPhase : uint8_t {
  kIdle = 0,        // between passes
  kApplyConfig = 1, // applying a new RuntimeConfig generation
  kPoll = 2,        // epoll dispatch + handlers
  kAsyncDrain = 3,  // kernel-bypass queue drain
};

// Relaxed-atomic heartbeat the supervisor reads cross-thread (DESIGN.md
// §15). `iterations` moves once per completed run_once pass; `progress`
// moves once per handled event/deadline/accept, so a worker stuck inside
// one very long pass still reads as busy (not wedged) while its handlers
// advance. Both frozen for N windows = wedged.
struct WorkerHeartbeat {
  std::atomic<uint64_t> iterations{0};
  std::atomic<uint64_t> progress{0};
  std::atomic<uint64_t> stamp_ms{0};  // worker-clock time of the last pass
  std::atomic<uint8_t> phase{0};      // WorkerPhase
};

struct WorkerConfig {
  NotifyScheme notify = NotifyScheme::kKernelBypass;
  PollScheme poll = PollScheme::kHeuristic;
  HeuristicPollerConfig heuristic;
  size_t response_body_size = 1024;  // the served "file"
  // Static-file root (DESIGN.md §11). When non-empty, GETs other than
  // /stats are resolved under this directory and streamed through a
  // bounded pread-into-sealed-record loop (never whole-file buffered);
  // misses answer 404. Empty = the synthetic response_body_size object.
  std::string file_root;
  OverloadConfig overload;           // timeouts + admission (DESIGN.md §10)
  HttpLimits http_limits;            // parser bounds (431 past them)
  // Millisecond clock for deadlines (null = CLOCK_MONOTONIC). Tests inject
  // virtual time so timeout behaviour is deterministic.
  std::function<uint64_t()> clock;
  // Self-healing control plane (DESIGN.md §15). When set, the worker applies
  // the newest RuntimeConfig generation at the top of each loop pass (one
  // relaxed load when nothing changed) and serves /healthz, /readyz and
  // POST /reload alongside /stats.
  ControlPlane* control = nullptr;
  // Bound by WorkerPool: re-dials the remote offload tier on THIS worker's
  // thread when a reload changed remote_offload{} (the engine's backend
  // pointer is only ever touched from its own worker).
  std::function<void(const RemoteOffloadSettings&)> remote_rebind;
  // Test hook invoked at the top of every run_once pass — deterministic
  // wedge/busy injection for the watchdog tests. Production leaves it empty.
  std::function<void(Worker&)> loop_hook;
};

struct WorkerStats {
  uint64_t accepted = 0;
  uint64_t handshakes_completed = 0;
  uint64_t resumed_handshakes = 0;
  uint64_t requests_served = 0;
  uint64_t closed = 0;
  uint64_t errors = 0;
  uint64_t disorder_events = 0;   // §4.2 read-before-async occurrences
  uint64_t async_parks = 0;       // WANT_ASYNC occurrences
  uint64_t async_failures = 0;    // connections torn down because the async
                                  // op they were parked on erred/expired
};

class Worker {
 public:
  // `qat` may be null (pure-software worker). The TLS context decides
  // whether entry points use fibers (async_mode).
  Worker(tls::TlsContext* tls_ctx, engine::QatEngineProvider* qat,
         WorkerConfig config);
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  // Listen on 127.0.0.1:port (0 = ephemeral). With `reuseport`, several
  // workers can share the same port (the multi-worker deployment of §5.1).
  Status add_listener(uint16_t port, bool reuseport = false);
  uint16_t listen_port() const;

  // Adopt an already-connected fd as a TLS server connection (socketpair
  // tests and in-process benches).
  Status adopt(int fd);

  // One event-loop iteration: epoll dispatch, heuristic polls, async-queue
  // drain. Returns number of epoll events dispatched.
  int run_once(int timeout_ms = 10);
  // Loop until `stop()` returns true.
  void run_until(const std::function<bool()>& stop, int timeout_ms = 10);

  // stub_status counters (§4.3).
  size_t alive_connections() const { return conns_.size(); }
  size_t idle_connections() const { return idle_count_; }
  size_t active_connections() const { return conns_.size() - idle_count_; }
  size_t handshaking_connections() const { return handshaking_; }
  size_t parked_accepts() const { return parked_count_; }

  // Memory accounting (DESIGN.md §14): average heap bytes pinned per alive
  // connection — connection object + TLS buffers + handshake scratch when
  // still held. Mirrored into the "memory.bytes_per_conn" gauge by
  // stats_json(); the footprint regression test and bench/million_conn gate
  // on it.
  size_t bytes_per_conn() const;
  // Alive connections whose handshake scratch has been wiped and released.
  size_t released_scratch_connections() const;
  // Connections parked on an in-flight offload (expecting_async). A worker
  // is quiescent only when this is zero — a caller observing "no active
  // connections" while this is non-zero is mid-op, not done (the
  // ActiveIdleAccounting race: a final close_notify decrypt parks the
  // connection non-idle until its async op completes).
  size_t pending_async_connections() const { return pending_async_; }

  // Graceful drain (DESIGN.md §10). Cross-thread-safe: the worker thread
  // observes the request at its next run_once, stops accepting (listener
  // disarmed, parked accepts closed), lets in-flight handshakes and
  // keepalive requests finish, and force-closes whatever is still alive
  // `deadline_ms` later (measured on the worker's own clock). Once every
  // connection is gone, drained() flips — the pool's run loop exits on it.
  void request_drain(uint64_t deadline_ms);
  bool draining() const { return drain_requested_.load(std::memory_order_acquire); }
  bool drained() const { return drained_.load(std::memory_order_acquire); }

  // --- self-healing control plane (DESIGN.md §15) -----------------------
  // The heartbeat the supervisor scores; stamped by the worker thread with
  // relaxed atomics, readable from any thread.
  const WorkerHeartbeat& heartbeat() const { return heartbeat_; }
  // Handlers bump this per event so the supervisor can tell "busy" from
  // "wedged"; public so wedge-injection hooks can simulate a busy stall.
  void note_progress() {
    heartbeat_.progress.fetch_add(1, std::memory_order_relaxed);
  }
  // Crash-only eject: run_until exits at its next predicate check with no
  // drain ceremony (the destructor is the reap). Cross-thread-safe; also
  // observed by cooperative wedge hooks so an ejected loop unblocks.
  void request_eject() { eject_requested_.store(true, std::memory_order_release); }
  bool eject_requested() const {
    return eject_requested_.load(std::memory_order_acquire);
  }
  // RuntimeConfig generation this worker most recently applied.
  uint64_t applied_generation() const {
    return applied_generation_.load(std::memory_order_relaxed);
  }
  // The listener fd (or -1): the pool quarantines a zombie's reuseport
  // share by dup2-ing /dev/null over it.
  int listener_fd() const { return listener_armed_ ? listener_.fd() : -1; }

  const WorkerStats& stats() const { return stats_; }
  const OverloadStats& overload_stats() const { return overload_stats_; }
  const HeuristicPollerStats* poller_stats() const {
    return poller_ ? &poller_->stats() : nullptr;
  }
  const AsyncEventQueue& async_queue() const { return async_queue_; }

  // The GET /stats payload: worker counters, engine failure/fallback
  // counters and breaker states, poller stats, and the global metrics
  // registry snapshot (per-stage latency histograms). Runs on the worker
  // thread (it serves the request), so worker state needs no locking.
  std::string stats_json() const;

 private:
  struct Conn;
  struct ParkedAccept;
  using Handler = void (Worker::*)(Conn*);

  enum class DeadlineKind : uint8_t { kNone, kHandshake, kIdle, kWriteStall };
  // What a parsed GET resolves to: the static/synthetic file path or one of
  // the built-in control/observability endpoints.
  enum class Endpoint : uint8_t { kFile, kStats, kHealthz, kReadyz, kReload };

  void on_listener_readable();
  void setup_connection(int fd);
  void close_connection(Conn* conn, bool error);

  // Overload plane.
  bool admission_ok() const;
  void admit_or_reject(int fd);   // shed/park/setup per the overload config
  void admit_parked();            // pull parked accepts as capacity frees
  // Park an accepted fd in the slab-backed backlog, aging against the
  // handshake deadline (a parked peer is mid-"handshake" as far as it can
  // tell). The deadline fire unlinks the node BEFORE destroying it — the
  // lifetime bug this PR's regression test pins down.
  void park_accept(int fd);
  void unlink_parked(ParkedAccept* node);  // dequeue + cancel its deadline
  void on_park_deadline(ParkedAccept* node);
  size_t conn_footprint(const Conn& conn) const;
  void arm_deadline(Conn* conn, DeadlineKind kind, uint64_t delay_ms);
  void cancel_deadline(Conn* conn);
  void on_deadline(Conn* conn);
  void note_handshake_over(Conn* conn);  // handshaking_ bookkeeping
  void begin_drain();
  void finish_drain_check();

  // The TLS handlers — counterparts of ngx_ssl_handshake_handler etc.
  void handshake_handler(Conn* conn);
  void read_handler(Conn* conn);
  void write_handler(Conn* conn);

  // Static-file path (DESIGN.md §11): resolve + open under file_root
  // (false = miss → 404), stream the next chunks through the TLS layer,
  // and release the fd.
  bool open_static_file(Conn* conn);
  tls::TlsResult stream_file(Conn* conn);
  void finish_file(Conn* conn);

  // Dispatch one TlsResult: park on WANT_ASYNC, adjust epoll interest on
  // WANT_READ/WANT_WRITE, close on error. Returns true when r == kOk.
  bool dispatch_result(Conn* conn, tls::TlsResult r, Handler self);
  void park_async(Conn* conn, Handler handler);
  void on_async_event(Conn* conn);
  void on_socket_event(Conn* conn, net::FdEvents events);
  void set_idle(Conn* conn, bool idle);

  void maybe_heuristic_poll();
  // Apply a newly published RuntimeConfig generation on the worker thread
  // (credentials, overload caps, http limits, file root, remote rebind).
  void maybe_apply_runtime_config();
  // Body + status for /healthz, /readyz and /reload (POST /reload runs the
  // reload synchronously so the response reflects the new generation).
  std::string control_response(Endpoint endpoint, int* http_status);
  uint64_t now_ms() const;
  // Resolve a queued async event to a still-alive connection (the kernel-
  // bypass queue may outlive a connection that erred out meanwhile).
  Conn* find_by_id(uint64_t conn_id);

  tls::TlsContext* tls_ctx_;
  engine::QatEngineProvider* qat_;
  WorkerConfig config_;
  net::EventLoop loop_;
  net::TcpListener listener_;
  bool listener_armed_ = false;

  // Slab pools (DESIGN.md §14): connection objects, handshake scratch, and
  // parked-accept nodes all come from per-worker pools — one allocation
  // class each, exact occupancy counters, no per-connection heap churn.
  // unique_ptr because Conn/ParkedAccept are defined in the .cc; the pools
  // are built in the constructor and must outlive every object they own.
  std::unique_ptr<common::SlabPool<Conn>> conn_pool_;
  std::unique_ptr<common::SlabPool<ParkedAccept>> park_pool_;
  common::SlabPool<tls::HandshakeScratch> scratch_pool_;

  std::unordered_map<int, Conn*> conns_;  // owned by conn_pool_
  std::unordered_map<uint64_t, Conn*> conns_by_id_;
  uint64_t next_conn_id_ = 1;
  size_t idle_count_ = 0;
  size_t pending_async_ = 0;  // conns with expecting_async set

  AsyncEventQueue async_queue_;
  std::unique_ptr<HeuristicPoller> poller_;
  Bytes response_body_;
  WorkerStats stats_;

  // Overload plane state (worker-thread-owned except the two atomics).
  OverloadStats overload_stats_;
  size_t handshaking_ = 0;          // connections with incomplete handshakes
  // Accept backlog: intrusive FIFO of slab-allocated ParkedAccept nodes
  // (doubly linked for O(1) mid-queue removal when a park deadline fires).
  ParkedAccept* parked_head_ = nullptr;
  ParkedAccept* parked_tail_ = nullptr;
  size_t parked_count_ = 0;
  std::atomic<bool> drain_requested_{false};
  std::atomic<uint64_t> drain_delay_ms_{0};
  std::atomic<bool> drained_{false};
  // Control plane (DESIGN.md §15).
  WorkerHeartbeat heartbeat_;
  std::atomic<bool> eject_requested_{false};
  std::atomic<uint64_t> applied_generation_{0};
  bool draining_ = false;           // worker-thread view of the drain
  uint64_t drain_deadline_ms_ = 0;
};

}  // namespace qtls::server
