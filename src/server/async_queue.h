// The application-defined async queue of the kernel-bypass notification
// scheme (paper §3.4/§4.4): the QAT response callback completes notification
// by appending the paused connection's async handler to this queue — a
// plain function call, no user/kernel transition — and the worker drains the
// queue at the end of each event-loop iteration.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>

namespace qtls::server {

class AsyncEventQueue {
 public:
  using AsyncHandler = std::function<void()>;

  void push(AsyncHandler handler) {
    queue_.push_back(std::move(handler));
    ++pushed_;
  }

  bool empty() const { return queue_.empty(); }
  size_t size() const { return queue_.size(); }

  // Drains handlers queued so far. Handlers may push again (e.g. a resumed
  // job immediately offloads its next op); those run in the next drain so
  // one drain cannot live-lock the loop.
  size_t drain() {
    size_t n = queue_.size();
    for (size_t i = 0; i < n; ++i) {
      AsyncHandler handler = std::move(queue_.front());
      queue_.pop_front();
      handler();
    }
    drained_ += n;
    return n;
  }

  uint64_t total_pushed() const { return pushed_; }
  uint64_t total_drained() const { return drained_; }

 private:
  std::deque<AsyncHandler> queue_;
  uint64_t pushed_ = 0;
  uint64_t drained_ = 0;
};

}  // namespace qtls::server
