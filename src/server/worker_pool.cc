#include "server/worker_pool.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include <poll.h>
#include <unistd.h>

#include "common/log.h"
#include "crypto/keystore.h"
#include "net/socket_transport.h"
#include "obs/metrics.h"

namespace qtls::server {

namespace {

// Dials the offload server (DESIGN.md §13) and waits briefly for the
// non-blocking connect to land. Returns null on failure: the worker then
// runs the classic two-tier ladder.
std::unique_ptr<remote::RemoteChannel> dial_remote(
    const RemoteOffloadSettings& ro) {
  Result<int> fd = net::tcp_connect(ro.port);
  if (!fd.is_ok()) {
    QTLS_WARN << "remote offload dial failed: " << fd.status().message();
    return nullptr;
  }
  struct pollfd pfd{fd.value(), POLLOUT, 0};
  if (::poll(&pfd, 1, /*timeout_ms=*/100) <= 0 ||
      (pfd.revents & (POLLERR | POLLHUP))) {
    QTLS_WARN << "remote offload connect to port " << ro.port
              << " did not complete";
    ::close(fd.value());
    return nullptr;
  }
  remote::RemoteChannelConfig cfg;
  cfg.max_batch = ro.max_batch;
  cfg.coalesce_window_us = ro.coalesce_window_us;
  return std::make_unique<remote::RemoteChannel>(
      std::make_unique<net::SocketTransport>(fd.value()), cfg);
}

}  // namespace

WorkerPool::WorkerPool(qat::QatDevice* device, const RsaPrivateKey* rsa_key,
                       WorkerPoolOptions options)
    : device_(device), rsa_key_(rsa_key), options_(options) {}

WorkerPool::WorkerPool(qat::DeviceTopology* topology,
                       const RsaPrivateKey* rsa_key, WorkerPoolOptions options)
    : device_(nullptr),
      topology_(topology),
      rsa_key_(rsa_key),
      options_(options) {}

WorkerPool::~WorkerPool() { stop(); }

Status WorkerPool::start(uint16_t port) {
  if (started_) return err(Code::kFailedPrecondition, "already started");

  // One resumption plane for the whole pool, seeded from the BASE config
  // seed (per-worker contexts get perturbed seeds below, which is exactly
  // why per-context ticket keys could never unseal across workers).
  {
    tls::SessionPlaneConfig pcfg;
    pcfg.cache_shards = options_.tls_config.session_cache_shards;
    pcfg.cache_capacity = options_.tls_config.session_cache_capacity;
    pcfg.lifetime_ms = options_.tls_config.session_lifetime_ms;
    pcfg.ticket_rotate_interval_ms =
        options_.tls_config.ticket_rotate_interval_ms;
    pcfg.ticket_accept_epochs = options_.tls_config.ticket_accept_epochs;
    pcfg.seed = options_.tls_config.drbg_seed;
    session_plane_ = std::make_unique<tls::SessionPlane>(pcfg);
  }

  for (int i = 0; i < options_.workers; ++i) {
    auto cell = std::make_unique<Cell>();

    engine::QatEngineConfig ecfg = options_.engine_config;
    ecfg.drbg_seed ^= static_cast<uint64_t>(i + 1) * 0x9e3779b97f4a7c15ULL;
    if (topology_) {
      // Topology pool: one placement decision per instance (affine device
      // unless offline/deep), grouped by device into per-lane sets.
      const int preferred =
          options_.worker_affinity.empty()
              ? topology_->preferred_device(i, options_.workers)
              : options_.worker_affinity[static_cast<size_t>(i) %
                                         options_.worker_affinity.size()] %
                    topology_->num_devices();
      auto placements = topology_->allocate_for_worker(
          i, options_.workers, options_.instances_per_worker);
      if (placements.empty())
        return err(Code::kResourceExhausted, "no QAT instances left");
      std::vector<engine::DeviceInstanceSet> sets;
      for (const auto& p : placements) {
        auto it = std::find_if(sets.begin(), sets.end(),
                               [&](const engine::DeviceInstanceSet& s) {
                                 return s.device_id == p.device;
                               });
        if (it == sets.end()) {
          sets.push_back(engine::DeviceInstanceSet{p.device, {}});
          it = sets.end() - 1;
        }
        it->instances.push_back(p.instance);
      }
      cell->engine = std::make_unique<engine::QatEngineProvider>(
          topology_, preferred, std::move(sets), ecfg);
    } else {
      std::vector<qat::CryptoInstance*> instances;
      for (int k = 0; k < options_.instances_per_worker; ++k) {
        qat::CryptoInstance* inst = device_->allocate_instance();
        if (!inst)
          return err(Code::kResourceExhausted, "no QAT instances left");
        instances.push_back(inst);
      }
      cell->engine = std::make_unique<engine::QatEngineProvider>(
          std::move(instances), ecfg);
    }

    // Remote tier (DESIGN.md §13): each worker gets its own channel so a
    // single slow worker cannot head-of-line block the others' batches.
    if (options_.remote.enabled && options_.remote.port != 0) {
      cell->remote = dial_remote(options_.remote);
      if (cell->remote)
        cell->engine->set_remote_backend(cell->remote.get());
    }

    tls::TlsContextConfig tcfg = options_.tls_config;
    tcfg.is_server = true;
    tcfg.drbg_seed ^= static_cast<uint64_t>(i + 1) * 0xc2b2ae3d27d4eb4fULL;
    cell->ctx = std::make_unique<tls::TlsContext>(tcfg, cell->engine.get());
    cell->ctx->set_session_plane(session_plane_.get());
    cell->ctx->credentials().rsa_key = rsa_key_;
    cell->ctx->credentials().ecdsa_p256 = &test_ec_key_p256();
    cell->ctx->credentials().ecdsa_p384 = &test_ec_key_p384();

    WorkerConfig wcfg = options_.worker_config;
    wcfg.response_body_size = options_.response_body_size;
    cell->worker = std::make_unique<Worker>(cell->ctx.get(),
                                            cell->engine.get(), wcfg);

    // All workers bind the same port with SO_REUSEPORT; the first (with
    // port 0) picks the ephemeral port the rest join.
    QTLS_RETURN_IF_ERROR(cell->worker->add_listener(
        i == 0 ? port : port_, /*reuseport=*/true));
    if (i == 0) port_ = cell->worker->listen_port();

    cells_.push_back(std::move(cell));
  }

  for (auto& cell : cells_) {
    Worker* worker = cell->worker.get();
    cell->thread = std::thread([this, worker] {
      // The loop also exits when a requested drain completes — the worker
      // drives its own deadline; the pool just waits for the thread.
      worker->run_until(
          [this, worker] { return stopping_.load() || worker->drained(); },
          /*timeout_ms=*/5);
    });
  }
  if (options_.stats_dump_interval_ms > 0) {
    dump_thread_ = std::thread([this] {
      const auto interval =
          std::chrono::milliseconds(options_.stats_dump_interval_ms);
      auto next = std::chrono::steady_clock::now() + interval;
      // Sleep in short slices so stop() is never held up by a long interval.
      while (!stopping_.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        if (std::chrono::steady_clock::now() < next) continue;
        next += interval;
        QTLS_INFO << "stats dump\n" << stats_text();
      }
    });
  }
  started_ = true;
  return Status::ok();
}

void WorkerPool::stop() {
  if (!started_) return;
  stopping_.store(true);
  for (auto& cell : cells_) {
    if (cell->thread.joinable()) cell->thread.join();
  }
  if (dump_thread_.joinable()) dump_thread_.join();
  started_ = false;
}

void WorkerPool::shutdown(uint64_t deadline_ms) {
  if (!started_) return;
  for (auto& cell : cells_) cell->worker->request_drain(deadline_ms);
  // Worker threads exit on their own once drained (force-close at the
  // deadline bounds this); the join is the wait.
  for (auto& cell : cells_) {
    if (cell->thread.joinable()) cell->thread.join();
  }
  stopping_.store(true);  // ends the dump thread; makes stop() a no-op join
  if (dump_thread_.joinable()) dump_thread_.join();
  started_ = false;
}

WorkerPoolStats WorkerPool::stats() const {
  WorkerPoolStats out;
  for (const auto& cell : cells_) {
    const WorkerStats& s = cell->worker->stats();
    out.totals.accepted += s.accepted;
    out.totals.handshakes_completed += s.handshakes_completed;
    out.totals.resumed_handshakes += s.resumed_handshakes;
    out.totals.requests_served += s.requests_served;
    out.totals.closed += s.closed;
    out.totals.errors += s.errors;
    out.totals.disorder_events += s.disorder_events;
    out.totals.async_parks += s.async_parks;
    out.per_worker_handshakes.push_back(s.handshakes_completed);
  }
  if (session_plane_) {
    out.session_hits = session_plane_->cache().hits();
    out.session_misses = session_plane_->cache().misses();
    out.tickets_unsealed = session_plane_->tickets().unseal_ok();
  }
  return out;
}

std::string WorkerPool::stats_text() const {
  const WorkerPoolStats s = stats();
  std::ostringstream os;
  os << "pool: workers=" << cells_.size()
     << " handshakes=" << s.totals.handshakes_completed
     << " requests=" << s.totals.requests_served
     << " errors=" << s.totals.errors
     << " async_parks=" << s.totals.async_parks << '\n';
  os << "session: hits=" << s.session_hits << " misses=" << s.session_misses
     << " tickets_unsealed=" << s.tickets_unsealed << '\n';
  if (topology_) os << "topology: " << topology_->stats_json() << '\n';
  os << obs::MetricsRegistry::global().snapshot().to_text();
  return os.str();
}

}  // namespace qtls::server
