#include "server/worker_pool.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include "common/log.h"
#include "crypto/keystore.h"
#include "net/socket_transport.h"
#include "obs/metrics.h"

namespace qtls::server {

namespace {

// Dials the offload server (DESIGN.md §13) and waits briefly for the
// non-blocking connect to land. Returns null on failure: the worker then
// runs the classic two-tier ladder.
std::unique_ptr<remote::RemoteChannel> dial_remote(
    const RemoteOffloadSettings& ro) {
  Result<int> fd = net::tcp_connect(ro.port);
  if (!fd.is_ok()) {
    QTLS_WARN << "remote offload dial failed: " << fd.status().message();
    return nullptr;
  }
  struct pollfd pfd{fd.value(), POLLOUT, 0};
  if (::poll(&pfd, 1, /*timeout_ms=*/100) <= 0 ||
      (pfd.revents & (POLLERR | POLLHUP))) {
    QTLS_WARN << "remote offload connect to port " << ro.port
              << " did not complete";
    ::close(fd.value());
    return nullptr;
  }
  remote::RemoteChannelConfig cfg;
  cfg.max_batch = ro.max_batch;
  cfg.coalesce_window_us = ro.coalesce_window_us;
  return std::make_unique<remote::RemoteChannel>(
      std::make_unique<net::SocketTransport>(fd.value()), cfg);
}

// Darkens a zombie worker's SO_REUSEPORT share: dup2(/dev/null) over the
// listener fd atomically removes it from the kernel's reuseport group while
// keeping the fd NUMBER pinned — closing it outright would let the next
// accept() recycle the number under a thread that still believes it owns it.
void quarantine_listener_fd(int lfd) {
  if (lfd < 0) return;
  const int devnull = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
  if (devnull < 0) return;
  (void)::dup2(devnull, lfd);
  ::close(devnull);
}

bool remote_settings_equal(const RemoteOffloadSettings& a,
                           const RemoteOffloadSettings& b) {
  return a.enabled == b.enabled && a.port == b.port && a.host == b.host &&
         a.max_batch == b.max_batch &&
         a.coalesce_window_us == b.coalesce_window_us;
}

}  // namespace

WorkerPool::WorkerPool(qat::QatDevice* device, const RsaPrivateKey* rsa_key,
                       WorkerPoolOptions options)
    : device_(device), rsa_key_(rsa_key), options_(options) {}

WorkerPool::WorkerPool(qat::DeviceTopology* topology,
                       const RsaPrivateKey* rsa_key, WorkerPoolOptions options)
    : device_(nullptr),
      topology_(topology),
      rsa_key_(rsa_key),
      options_(options) {}

WorkerPool::~WorkerPool() { stop(); }

// Engine + remote channel + TLS context for one worker slot. Also the
// rebuild path when a zombie quarantine walks off with the originals.
Status WorkerPool::build_cell_engine_ctx(int i, Cell* cell) {
  engine::QatEngineConfig ecfg = options_.engine_config;
  ecfg.drbg_seed ^= static_cast<uint64_t>(i + 1) * 0x9e3779b97f4a7c15ULL;
  if (topology_) {
    // Topology pool: one placement decision per instance (affine device
    // unless offline/deep), grouped by device into per-lane sets.
    const int preferred =
        options_.worker_affinity.empty()
            ? topology_->preferred_device(i, options_.workers)
            : options_.worker_affinity[static_cast<size_t>(i) %
                                       options_.worker_affinity.size()] %
                  topology_->num_devices();
    auto placements = topology_->allocate_for_worker(
        i, options_.workers, options_.instances_per_worker);
    if (placements.empty())
      return err(Code::kResourceExhausted, "no QAT instances left");
    std::vector<engine::DeviceInstanceSet> sets;
    for (const auto& p : placements) {
      auto it = std::find_if(sets.begin(), sets.end(),
                             [&](const engine::DeviceInstanceSet& s) {
                               return s.device_id == p.device;
                             });
      if (it == sets.end()) {
        sets.push_back(engine::DeviceInstanceSet{p.device, {}});
        it = sets.end() - 1;
      }
      it->instances.push_back(p.instance);
    }
    cell->engine = std::make_unique<engine::QatEngineProvider>(
        topology_, preferred, std::move(sets), ecfg);
  } else {
    std::vector<qat::CryptoInstance*> instances;
    for (int k = 0; k < options_.instances_per_worker; ++k) {
      qat::CryptoInstance* inst = device_->allocate_instance();
      if (!inst) return err(Code::kResourceExhausted, "no QAT instances left");
      instances.push_back(inst);
    }
    cell->engine =
        std::make_unique<engine::QatEngineProvider>(std::move(instances), ecfg);
  }

  // Remote tier (DESIGN.md §13): each worker gets its own channel so a
  // single slow worker cannot head-of-line block the others' batches.
  if (cell->remote_settings.enabled && cell->remote_settings.port != 0) {
    cell->remote = dial_remote(cell->remote_settings);
    if (cell->remote) cell->engine->set_remote_backend(cell->remote.get());
  }

  tls::TlsContextConfig tcfg = options_.tls_config;
  tcfg.is_server = true;
  tcfg.drbg_seed ^= static_cast<uint64_t>(i + 1) * 0xc2b2ae3d27d4eb4fULL;
  cell->ctx = std::make_unique<tls::TlsContext>(tcfg, cell->engine.get());
  cell->ctx->set_session_plane(session_plane_.get());
  cell->ctx->credentials().rsa_key = rsa_key_;
  cell->ctx->credentials().ecdsa_p256 = &test_ec_key_p256();
  cell->ctx->credentials().ecdsa_p384 = &test_ec_key_p384();
  return Status::ok();
}

// Worker + reuseport listener for one slot. Shared by start() and the
// watchdog respawn: a replacement worker binds the SAME port (reuseport)
// against the SAME session plane, so the fleet's resumption state and
// accept share survive a recovery.
Status WorkerPool::build_cell_worker(int i, Cell* cell, uint16_t port) {
  WorkerConfig wcfg = options_.worker_config;
  wcfg.response_body_size = options_.response_body_size;
  // Reload rebinds of the remote tier run ON the worker's own thread (the
  // engine's backend pointer is not atomic); the pool arbitrates via
  // cells_mu_ and a thread-identity check.
  wcfg.remote_rebind = [this, cell](const RemoteOffloadSettings& ro) {
    rebind_remote(cell, ro);
  };
  cell->worker =
      std::make_unique<Worker>(cell->ctx.get(), cell->engine.get(), wcfg);
  QTLS_RETURN_IF_ERROR(cell->worker->add_listener(port, /*reuseport=*/true));
  if (port_ == 0) port_ = cell->worker->listen_port();
  (void)i;
  return Status::ok();
}

// Requires cells_mu_ held (cell->thread is read under the same lock by
// rebind_remote's thread-identity check).
void WorkerPool::spawn_cell_thread(Cell* cell) {
  cell->stop_flag = std::make_shared<std::atomic<bool>>(false);
  cell->exited = std::make_shared<std::atomic<bool>>(false);
  // The lambda captures the raw Worker* and the shared flags — never `this`
  // or the Cell — so a thread quarantined as a zombie can never chase the
  // pool or a recycled slot.
  Worker* worker = cell->worker.get();
  auto stop_flag = cell->stop_flag;
  auto exited = cell->exited;
  cell->thread = std::thread([worker, stop_flag, exited] {
    // The loop also exits when a requested drain completes — the worker
    // drives its own deadline; the pool just waits for the thread. An eject
    // (crash-only recovery) short-circuits inside run_until itself.
    worker->run_until(
        [worker, &stop = *stop_flag] {
          return stop.load(std::memory_order_acquire) || worker->drained();
        },
        /*timeout_ms=*/5);
    exited->store(true, std::memory_order_release);
  });
}

Status WorkerPool::start(uint16_t port) {
  if (started_) return err(Code::kFailedPrecondition, "already started");

  // One resumption plane for the whole pool, seeded from the BASE config
  // seed (per-worker contexts get perturbed seeds below, which is exactly
  // why per-context ticket keys could never unseal across workers).
  {
    tls::SessionPlaneConfig pcfg;
    pcfg.cache_shards = options_.tls_config.session_cache_shards;
    pcfg.cache_capacity = options_.tls_config.session_cache_capacity;
    pcfg.lifetime_ms = options_.tls_config.session_lifetime_ms;
    pcfg.ticket_rotate_interval_ms =
        options_.tls_config.ticket_rotate_interval_ms;
    pcfg.ticket_accept_epochs = options_.tls_config.ticket_accept_epochs;
    pcfg.seed = options_.tls_config.drbg_seed;
    session_plane_ = std::make_unique<tls::SessionPlane>(pcfg);
  }

  for (int i = 0; i < options_.workers; ++i) {
    auto cell = std::make_unique<Cell>();
    cell->remote_settings = options_.remote;
    QTLS_RETURN_IF_ERROR(build_cell_engine_ctx(i, cell.get()));
    // All workers bind the same port with SO_REUSEPORT; the first (with
    // port 0) picks the ephemeral port the rest join.
    QTLS_RETURN_IF_ERROR(
        build_cell_worker(i, cell.get(), i == 0 ? port : port_));
    cells_.push_back(std::move(cell));
  }

  {
    std::lock_guard<std::mutex> lock(cells_mu_);
    for (auto& cell : cells_) spawn_cell_thread(cell.get());
  }
  if (options_.stats_dump_interval_ms > 0) {
    dump_thread_ = std::thread([this] {
      const auto interval =
          std::chrono::milliseconds(options_.stats_dump_interval_ms);
      auto next = std::chrono::steady_clock::now() + interval;
      // Sleep in short slices so stop() is never held up by a long interval.
      while (!stopping_.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        if (std::chrono::steady_clock::now() < next) continue;
        next += interval;
        QTLS_INFO << "stats dump\n" << stats_text();
      }
    });
  }
  started_ = true;
  return Status::ok();
}

void WorkerPool::stop() {
  if (!started_) return;
  stopping_.store(true);
  {
    std::lock_guard<std::mutex> lock(cells_mu_);
    for (auto& cell : cells_)
      if (cell->stop_flag)
        cell->stop_flag->store(true, std::memory_order_release);
  }
  for (auto& cell : cells_) {
    if (cell->thread.joinable()) cell->thread.join();
  }
  reap_zombies();
  if (dump_thread_.joinable()) dump_thread_.join();
  started_ = false;
}

void WorkerPool::shutdown(uint64_t deadline_ms) {
  if (!started_) return;
  for (auto& cell : cells_) cell->worker->request_drain(deadline_ms);
  // Worker threads exit on their own once drained (force-close at the
  // deadline bounds this); the join is the wait.
  for (auto& cell : cells_) {
    if (cell->thread.joinable()) cell->thread.join();
  }
  reap_zombies();
  stopping_.store(true);  // ends the dump thread; makes stop() a no-op join
  if (dump_thread_.joinable()) dump_thread_.join();
  started_ = false;
}

// ------------------------------------------------ watchdog recovery ----

RecoverOutcome WorkerPool::recover_worker(int worker_index, uint64_t grace_ms) {
  RecoverOutcome out;
  Worker* victim = nullptr;
  std::shared_ptr<std::atomic<bool>> exited;
  {
    std::lock_guard<std::mutex> lock(cells_mu_);
    if (!started_ || stopping_.load() || worker_index < 0 ||
        static_cast<size_t>(worker_index) >= cells_.size())
      return out;
    Cell* cell = cells_[static_cast<size_t>(worker_index)].get();
    if (cell->recovering || !cell->worker) return out;
    cell->recovering = true;
    victim = cell->worker.get();
    exited = cell->exited;
  }

  // Crash-only: eject the loop (no close_notify ceremony for a thread that
  // may never run again) and give it a bounded WALL-CLOCK grace — a wedged
  // worker may be frozen against a virtual clock, but its thread either
  // comes back or it doesn't. The mutex is NOT held here: healthz-serving
  // workers must never stall behind a recovery into looking wedged
  // themselves.
  victim->request_eject();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(grace_ms);
  while (!exited->load(std::memory_order_acquire) &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  std::lock_guard<std::mutex> lock(cells_mu_);
  Cell* cell = cells_[static_cast<size_t>(worker_index)].get();
  if (stopping_.load()) {
    // A pool shutdown raced the grace wait: leave the slot alone (stop()
    // owns the joins now) rather than spawn a thread nobody will reap.
    cell->recovering = false;
    return out;
  }
  if (exited->load(std::memory_order_acquire)) {
    // The thread is out of the loop: join it (near-instant past the exited
    // flag), then destroy the worker. The destructor IS the reap — paused
    // offload jobs drain, every slab-backed connection and parked accept
    // returns to its pool (the conservation the control tests assert), and
    // the listener share closes with it.
    if (cell->thread.joinable()) cell->thread.join();
    out.joined = true;
    out.reaped = victim->alive_connections() + victim->parked_accepts();
    cell->worker.reset();
  } else {
    // Genuinely wedged thread: it cannot be joined and cannot be killed
    // safely. Dark its listener share and quarantine the WHOLE cell —
    // worker, engine, context, channels stay alive for as long as the
    // zombie might touch them; nothing is freed under a running thread.
    quarantine_listener_fd(victim->listener_fd());
    auto z = std::make_unique<Zombie>();
    z->worker = std::move(cell->worker);
    z->engine = std::move(cell->engine);
    z->ctx = std::move(cell->ctx);
    z->remote = std::move(cell->remote);
    z->retired_remotes = std::move(cell->retired_remotes);
    z->thread = std::move(cell->thread);
    z->stop_flag = cell->stop_flag;
    z->exited = exited;
    zombies_.push_back(std::move(z));
    // Fresh engine + context for the replacement (the zombie keeps its
    // instances; a topology pool re-allocates lanes, the legacy pool draws
    // spare instances from the device).
    const Status st = build_cell_engine_ctx(worker_index, cell);
    if (!st.is_ok()) {
      QTLS_ERROR << "worker " << worker_index
                 << " quarantined but replacement engine failed: "
                 << st.to_string();
      cell->recovering = false;
      return out;
    }
  }

  const Status st = build_cell_worker(worker_index, cell, port_);
  if (!st.is_ok()) {
    QTLS_ERROR << "worker " << worker_index
               << " replacement failed to bind: " << st.to_string();
    cell->recovering = false;
    return out;
  }
  spawn_cell_thread(cell);
  ++cell->restarts;
  total_restarts_.fetch_add(1, std::memory_order_relaxed);
  cell->recovering = false;
  out.restarted = true;
  return out;
}

void WorkerPool::reap_zombies() {
  std::vector<std::unique_ptr<Zombie>> zombies;
  {
    std::lock_guard<std::mutex> lock(cells_mu_);
    zombies.swap(zombies_);
  }
  for (auto& z : zombies) {
    z->stop_flag->store(true, std::memory_order_release);
    // A quarantined thread that has since unwedged exits at its next
    // predicate check; give it a short bounded chance, then leak the
    // zombie's state deliberately — blocking shutdown forever or freeing
    // memory under a running thread are both worse than a bounded leak.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
    while (!z->exited->load(std::memory_order_acquire) &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    if (z->exited->load(std::memory_order_acquire)) {
      if (z->thread.joinable()) z->thread.join();
      continue;  // unique_ptrs clean up normally
    }
    QTLS_ERROR << "zombie worker still wedged at shutdown; leaking its state";
    if (z->thread.joinable()) z->thread.detach();
    (void)z->worker.release();
    (void)z->engine.release();
    (void)z->ctx.release();
    (void)z->remote.release();
    for (auto& r : z->retired_remotes) (void)r.release();
  }
}

// ------------------------------------------------ control-plane views ----

// Runs ON the worker's own thread (the reload apply step), so swapping the
// engine's backend pointer is race-free with the submit path. The old
// channel is retired, not destroyed: a late response for an op submitted
// pre-reload resolves through the engine's deadline sweep instead of
// touching freed state.
void WorkerPool::rebind_remote(Cell* cell, const RemoteOffloadSettings& ro) {
  std::lock_guard<std::mutex> lock(cells_mu_);
  // A quarantined zombie that unwedges mid-apply must not touch the
  // replacement worker's channel: only the thread currently bound to the
  // cell may rebind.
  if (std::this_thread::get_id() != cell->thread.get_id()) return;
  if (remote_settings_equal(cell->remote_settings, ro)) return;
  if (cell->remote) {
    cell->engine->set_remote_backend(nullptr);
    cell->retired_remotes.push_back(std::move(cell->remote));
  }
  if (ro.enabled && ro.port != 0) {
    cell->remote = dial_remote(ro);
    if (cell->remote) cell->engine->set_remote_backend(cell->remote.get());
  }
  cell->remote_settings = ro;
  QTLS_INFO << "reload: remote offload tier re-bound (enabled="
            << (ro.enabled ? "yes" : "no") << " port=" << ro.port << ")";
}

std::vector<WorkerHeartbeatView> WorkerPool::heartbeats() const {
  std::vector<WorkerHeartbeatView> out;
  std::lock_guard<std::mutex> lock(cells_mu_);
  out.reserve(cells_.size());
  for (const auto& cell : cells_) {
    WorkerHeartbeatView v;
    v.recovering = cell->recovering || !cell->worker;
    if (cell->worker) {
      const WorkerHeartbeat& hb = cell->worker->heartbeat();
      v.iterations = hb.iterations.load(std::memory_order_relaxed);
      v.progress = hb.progress.load(std::memory_order_relaxed);
      v.stamp_ms = hb.stamp_ms.load(std::memory_order_relaxed);
      v.phase = hb.phase.load(std::memory_order_relaxed);
      v.draining = cell->worker->draining();
      v.applied_generation = cell->worker->applied_generation();
    }
    out.push_back(v);
  }
  return out;
}

bool WorkerPool::any_draining() const {
  if (stopping_.load(std::memory_order_acquire)) return true;
  std::lock_guard<std::mutex> lock(cells_mu_);
  for (const auto& cell : cells_)
    if (cell->worker && cell->worker->draining()) return true;
  return false;
}

// "Fully degraded to software": every accelerated worker has all of its
// op-class breakers open AND no usable remote tier (no channel, or the
// remote breaker is open too) — the ladder has nothing left but inline
// software. Uses only atomic breaker reads; never touches the engine's
// worker-owned submit state.
bool WorkerPool::fully_degraded() const {
  std::lock_guard<std::mutex> lock(cells_mu_);
  bool any_engine = false;
  for (const auto& cell : cells_) {
    if (cell->recovering || !cell->worker || !cell->engine) continue;
    any_engine = true;
    const auto* engine = cell->engine.get();
    for (int c = 0; c < qat::kNumOpClasses; ++c) {
      if (engine->breaker_state(static_cast<qat::OpClass>(c)) !=
          engine::BreakerState::kOpen)
        return false;
    }
    if (cell->remote &&
        engine->remote_breaker_state() != engine::BreakerState::kOpen)
      return false;
  }
  return any_engine;
}

// -------------------------------------------------------------- stats ----

WorkerPoolStats WorkerPool::stats() const {
  WorkerPoolStats out;
  std::lock_guard<std::mutex> lock(cells_mu_);
  for (const auto& cell : cells_) {
    if (!cell->worker) continue;  // slot mid-recovery
    const WorkerStats& s = cell->worker->stats();
    out.totals.accepted += s.accepted;
    out.totals.handshakes_completed += s.handshakes_completed;
    out.totals.resumed_handshakes += s.resumed_handshakes;
    out.totals.requests_served += s.requests_served;
    out.totals.closed += s.closed;
    out.totals.errors += s.errors;
    out.totals.disorder_events += s.disorder_events;
    out.totals.async_parks += s.async_parks;
    out.per_worker_handshakes.push_back(s.handshakes_completed);
  }
  if (session_plane_) {
    out.session_hits = session_plane_->cache().hits();
    out.session_misses = session_plane_->cache().misses();
    out.tickets_unsealed = session_plane_->tickets().unseal_ok();
  }
  out.worker_restarts = total_restarts_.load(std::memory_order_relaxed);
  return out;
}

std::string WorkerPool::stats_text() const {
  const WorkerPoolStats s = stats();
  std::ostringstream os;
  os << "pool: workers=" << cells_.size()
     << " handshakes=" << s.totals.handshakes_completed
     << " requests=" << s.totals.requests_served
     << " errors=" << s.totals.errors
     << " async_parks=" << s.totals.async_parks
     << " worker_restarts=" << s.worker_restarts << '\n';
  os << "session: hits=" << s.session_hits << " misses=" << s.session_misses
     << " tickets_unsealed=" << s.tickets_unsealed << '\n';
  if (topology_) os << "topology: " << topology_->stats_json() << '\n';
  os << obs::MetricsRegistry::global().snapshot().to_text();
  return os.str();
}

}  // namespace qtls::server
