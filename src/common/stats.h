// Streaming statistics for the benchmark harness: mean/stddev accumulation
// and an HDR-style log-bucketed latency histogram with percentile queries.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace qtls {

class OnlineStats {
 public:
  void add(double x);
  void merge(const OnlineStats& other);

  uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Latency histogram over [1ns, ~1000s] with ~2.4% relative bucket error:
// 64 major (power-of-two) buckets x 32 linear sub-buckets. Percentile
// queries return the bucket midpoint, so the worst-case relative error is
// half a bucket width — (1/64)/(1+1/64) ≈ 1.54%, comfortably inside the
// documented ~2.4% bound (tests/stats_property_test.cc is the regression).
//
// record() never heap-allocates: the bucket array is sized at construction
// and only incremented afterwards (the obs registry's no-allocation
// recording contract leans on this; regression in tests/obs_test.cc).
class LatencyHistogram {
 public:
  static constexpr int kSubBits = 5;
  static constexpr int kSubBuckets = 1 << kSubBits;
  static constexpr size_t kNumBuckets = 64 * kSubBuckets;

  // Bucket mapping, public so external sharded accumulators (src/obs) can
  // bucket with identical geometry and merge raw cells back in.
  static size_t bucket_index(uint64_t v);
  static uint64_t bucket_low(size_t idx);

  void record(uint64_t nanos);
  void merge(const LatencyHistogram& other);
  // Merge raw bucket cells produced with bucket_index() geometry (`n` may
  // be <= kNumBuckets; missing tail buckets count as empty).
  void merge_counts(const uint64_t* bucket_counts, size_t n, uint64_t count,
                    uint64_t sum, uint64_t max);

  uint64_t count() const { return count_; }
  double mean_nanos() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0;
  }
  // p in [0, 100].
  uint64_t percentile_nanos(double p) const;
  uint64_t max_nanos() const { return max_; }

  std::string summary() const;  // "p50=... p95=... p99=... max=..."

 private:
  std::vector<uint64_t> buckets_ = std::vector<uint64_t>(kNumBuckets, 0);
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
};

// Fixed-width text table used by every figure bench so the output reads like
// the paper's plots (one row per x value, one column per configuration).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::string format_double(double v, int precision = 1);

}  // namespace qtls
