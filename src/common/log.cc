#include "common/log.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>

namespace qtls {

namespace {
std::atomic<LogLevel> g_threshold{LogLevel::kWarn};
std::mutex g_mutex;

const char* base_name(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

char level_char(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return 'D';
    case LogLevel::kInfo: return 'I';
    case LogLevel::kWarn: return 'W';
    case LogLevel::kError: return 'E';
    default: return '?';
  }
}
}  // namespace

LogLevel log_threshold() { return g_threshold.load(std::memory_order_relaxed); }

void set_log_threshold(LogLevel level) {
  g_threshold.store(level, std::memory_order_relaxed);
}

void log_write(LogLevel level, const char* file, int line, const std::string& msg) {
  using namespace std::chrono;
  const auto now = duration_cast<microseconds>(
                       steady_clock::now().time_since_epoch())
                       .count();
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%c %10lld.%06llds %s:%d] %s\n", level_char(level),
               static_cast<long long>(now / 1000000),
               static_cast<long long>(now % 1000000), base_name(file), line,
               msg.c_str());
}

}  // namespace qtls
