// Lightweight error handling for the QTLS stack.
//
// The TLS/QAT layers report recoverable conditions (WANT_READ, WANT_ASYNC,
// ring-full retry) through dedicated enums; Status/Result are for genuine
// failures (malformed record, bad signature, exhausted resource).
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace qtls {

enum class Code {
  kOk = 0,
  kInvalidArgument,
  kFailedPrecondition,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,
  kInternal,
  kUnimplemented,
  kProtocolError,   // malformed/unexpected TLS message
  kCryptoError,     // signature/MAC/padding verification failure
  kIoError,
  kUnavailable,     // device/offload path failed; retry or fall back
};

inline const char* code_name(Code c) {
  switch (c) {
    case Code::kOk: return "OK";
    case Code::kInvalidArgument: return "INVALID_ARGUMENT";
    case Code::kFailedPrecondition: return "FAILED_PRECONDITION";
    case Code::kOutOfRange: return "OUT_OF_RANGE";
    case Code::kNotFound: return "NOT_FOUND";
    case Code::kAlreadyExists: return "ALREADY_EXISTS";
    case Code::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case Code::kInternal: return "INTERNAL";
    case Code::kUnimplemented: return "UNIMPLEMENTED";
    case Code::kProtocolError: return "PROTOCOL_ERROR";
    case Code::kCryptoError: return "CRYPTO_ERROR";
    case Code::kIoError: return "IO_ERROR";
    case Code::kUnavailable: return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

class [[nodiscard]] Status {
 public:
  Status() : code_(Code::kOk) {}
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status ok() { return Status(); }

  bool is_ok() const { return code_ == Code::kOk; }
  explicit operator bool() const { return is_ok(); }
  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  std::string to_string() const {
    if (is_ok()) return "OK";
    std::string s = code_name(code_);
    if (!msg_.empty()) {
      s += ": ";
      s += msg_;
    }
    return s;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  Code code_;
  std::string msg_;
};

inline Status err(Code code, std::string msg = "") {
  return Status(code, std::move(msg));
}

// Result<T>: a value or a Status. Kept minimal on purpose — no exceptions
// cross module boundaries in the hot path.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : v_(std::move(status)) {
    assert(!std::get<Status>(v_).is_ok() && "Result from OK status");
  }

  bool is_ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return is_ok(); }

  const T& value() const& {
    assert(is_ok());
    return std::get<T>(v_);
  }
  T& value() & {
    assert(is_ok());
    return std::get<T>(v_);
  }
  T&& take() && {
    assert(is_ok());
    return std::move(std::get<T>(v_));
  }

  Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(v_);
  }

 private:
  std::variant<T, Status> v_;
};

#define QTLS_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::qtls::Status qtls_status_ = (expr);       \
    if (!qtls_status_.is_ok()) return qtls_status_; \
  } while (0)

#define QTLS_CONCAT_INNER_(a, b) a##b
#define QTLS_CONCAT_(a, b) QTLS_CONCAT_INNER_(a, b)

#define QTLS_ASSIGN_OR_RETURN(lhs, expr)                         \
  auto QTLS_CONCAT_(qtls_result_, __LINE__) = (expr);            \
  if (!QTLS_CONCAT_(qtls_result_, __LINE__).is_ok())             \
    return QTLS_CONCAT_(qtls_result_, __LINE__).status();        \
  lhs = std::move(QTLS_CONCAT_(qtls_result_, __LINE__)).take()

}  // namespace qtls
