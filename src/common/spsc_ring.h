// Bounded single-producer/single-consumer ring. This is the transport under
// the QAT device model's hardware-assisted request/response ring pairs and
// under the kernel-bypass async event queue.
//
// Capacity is a power of two fixed at construction; try_push fails when the
// ring is full — that failure is load-bearing: it drives the paper's §3.2
// "failure of crypto submission" retry path.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <new>
#include <optional>
#include <vector>

namespace qtls {

// Fixed 64 rather than std::hardware_destructive_interference_size: the
// value is baked into the ABI of this header and gcc warns that the standard
// constant can vary across -mtune settings.
inline constexpr size_t kCacheLine = 64;

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(size_t capacity_pow2) : buf_(round_up(capacity_pow2)) {
    mask_ = buf_.size() - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  size_t capacity() const { return buf_.size(); }

  bool try_push(T value) {
    const size_t head = head_.load(std::memory_order_relaxed);
    const size_t tail = tail_cache_;
    if (head - tail >= buf_.size()) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head - tail_cache_ >= buf_.size()) return false;
    }
    buf_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  std::optional<T> try_pop() {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_cache_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail == head_cache_) return std::nullopt;
    }
    T value = std::move(buf_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return value;
  }

  // Consumer-side snapshot; producer-side callers treat it as a hint.
  size_t size_hint() const {
    return head_.load(std::memory_order_acquire) -
           tail_.load(std::memory_order_acquire);
  }
  bool empty_hint() const { return size_hint() == 0; }

 private:
  static size_t round_up(size_t v) {
    size_t p = 1;
    while (p < v) p <<= 1;
    return p < 2 ? 2 : p;
  }

  std::vector<T> buf_;
  size_t mask_;
  alignas(kCacheLine) std::atomic<size_t> head_{0};
  alignas(kCacheLine) size_t tail_cache_ = 0;
  alignas(kCacheLine) std::atomic<size_t> tail_{0};
  alignas(kCacheLine) size_t head_cache_ = 0;
};

}  // namespace qtls
