// FutexEvent: a 32-bit eventcount for one-shot sleep/wake handoff.
//
// The waiter samples the sequence with prepare(), publishes its intent to
// sleep, re-checks its condition, then calls wait_for(ticket, timeout). A
// signal() that lands anywhere after prepare() bumps the sequence, so the
// wait returns immediately instead of losing the wakeup. On Linux this maps
// straight onto FUTEX_WAIT/FUTEX_WAKE on the 32-bit word, which both wakes
// and times out in microseconds — unlike libstdc++'s counting_semaphore<>,
// whose 64-bit counter falls onto the proxy-wait pool and takes multiple
// milliseconds to wake or expire. There is also no credit counter, so
// duplicate signals can never overflow anything.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <ctime>
#else
#include <condition_variable>
#include <mutex>
#endif

namespace qtls {

class FutexEvent {
 public:
  FutexEvent() = default;
  FutexEvent(const FutexEvent&) = delete;
  FutexEvent& operator=(const FutexEvent&) = delete;

  // Sample the sequence before publishing intent to sleep; pass the result
  // to wait_for(). Any signal() after this call invalidates the ticket.
  uint32_t prepare() const { return seq_.load(std::memory_order_acquire); }

  // Sleep until signalled or the timeout expires. Returns immediately if a
  // signal already landed since prepare() (sequence mismatch). Spurious
  // returns are allowed; callers re-check their condition in a loop.
  void wait_for(uint32_t ticket, std::chrono::nanoseconds timeout) {
#if defined(__linux__)
    static_assert(sizeof(seq_) == 4, "futex word must be 32 bits");
    if (seq_.load(std::memory_order_acquire) != ticket) return;
    struct timespec ts;
    ts.tv_sec = static_cast<time_t>(timeout.count() / 1000000000);
    ts.tv_nsec = static_cast<long>(timeout.count() % 1000000000);
    syscall(SYS_futex, reinterpret_cast<uint32_t*>(&seq_), FUTEX_WAIT_PRIVATE,
            ticket, &ts, nullptr, 0);
#else
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait_for(lock, timeout, [&] {
      return seq_.load(std::memory_order_acquire) != ticket;
    });
#endif
  }

  // Invalidate outstanding tickets and wake one waiter.
  void signal() {
    seq_.fetch_add(1, std::memory_order_release);
#if defined(__linux__)
    syscall(SYS_futex, reinterpret_cast<uint32_t*>(&seq_), FUTEX_WAKE_PRIVATE,
            1, nullptr, nullptr, 0);
#else
    {
      std::lock_guard<std::mutex> lock(mutex_);
    }
    cv_.notify_all();
#endif
  }

 private:
  std::atomic<uint32_t> seq_{0};
#if !defined(__linux__)
  std::mutex mutex_;
  std::condition_variable cv_;
#endif
};

}  // namespace qtls
