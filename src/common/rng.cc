#include "common/rng.h"

#include <cmath>

namespace qtls {

namespace {
inline uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

uint64_t splitmix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

void Rng::reseed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

uint64_t Rng::next_u64() {
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

uint64_t Rng::uniform(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::exponential(double mean) {
  double u = uniform01();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

void Rng::fill(uint8_t* out, size_t n) {
  size_t i = 0;
  while (i + 8 <= n) {
    uint64_t v = next_u64();
    for (int k = 0; k < 8; ++k) out[i++] = static_cast<uint8_t>(v >> (8 * k));
  }
  if (i < n) {
    uint64_t v = next_u64();
    while (i < n) {
      out[i++] = static_cast<uint8_t>(v);
      v >>= 8;
    }
  }
}

Bytes Rng::bytes(size_t n) {
  Bytes out(n);
  fill(out.data(), n);
  return out;
}

}  // namespace qtls
