// Bounded multi-producer/single-consumer ring (Vyukov-style sequenced
// cells). This is the response side of the QAT device model: every engine
// thread pushes completed responses concurrently; poll() — the single
// consumer — drains them wait-free (no CAS, no lock, one acquire load per
// element).
//
// Like SpscRing, try_push failing when the ring is full is load-bearing:
// the device bounds per-instance inflight so that an engine's push can
// never fail in practice, and the submit-side gate is what surfaces the
// backpressure (§3.2 retry path).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/spsc_ring.h"  // kCacheLine

namespace qtls {

template <typename T>
class MpscRing {
 public:
  explicit MpscRing(size_t capacity_pow2) : cells_(round_up(capacity_pow2)) {
    mask_ = cells_.size() - 1;
    for (size_t i = 0; i < cells_.size(); ++i)
      cells_[i].seq.store(i, std::memory_order_relaxed);
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  size_t capacity() const { return cells_.size(); }

  // Lock-free multi-producer push; false when the ring is full.
  bool try_push(T value) {
    size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const size_t seq = cell.seq.load(std::memory_order_acquire);
      const intptr_t dif =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          cell.value = std::move(value);
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // the cell a full lap ahead is still unconsumed
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  // Single-consumer pop: wait-free, one acquire load per element.
  std::optional<T> try_pop() {
    const size_t pos = tail_.load(std::memory_order_relaxed);
    Cell& cell = cells_[pos & mask_];
    const size_t seq = cell.seq.load(std::memory_order_acquire);
    if (static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1) < 0)
      return std::nullopt;
    T value = std::move(cell.value);
    cell.seq.store(pos + cells_.size(), std::memory_order_release);
    tail_.store(pos + 1, std::memory_order_relaxed);
    return value;
  }

  // Batched single-consumer drain into `out`; returns elements moved.
  size_t pop_batch(T* out, size_t max) {
    size_t got = 0;
    while (got < max) {
      auto value = try_pop();
      if (!value.has_value()) break;
      out[got++] = std::move(*value);
    }
    return got;
  }

  // Approximate occupancy; exact only when producers and consumer are quiet.
  size_t size_hint() const {
    const size_t head = head_.load(std::memory_order_acquire);
    const size_t tail = tail_.load(std::memory_order_acquire);
    return head >= tail ? head - tail : 0;
  }
  bool empty_hint() const { return size_hint() == 0; }

 private:
  struct Cell {
    std::atomic<size_t> seq;
    T value;
  };

  static size_t round_up(size_t v) {
    size_t p = 1;
    while (p < v) p <<= 1;
    return p < 2 ? 2 : p;
  }

  std::vector<Cell> cells_;
  size_t mask_;
  alignas(kCacheLine) std::atomic<size_t> head_{0};
  alignas(kCacheLine) std::atomic<size_t> tail_{0};
};

}  // namespace qtls
