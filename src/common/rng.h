// Deterministic fast RNG (xoshiro256**) used for:
//  - workload generation in the simulator (reproducible figures),
//  - nonces/randoms in tests and examples.
// The TLS stack itself draws through crypto/drbg.h, which can be seeded from
// this for determinism or from the OS for the examples.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace qtls {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(uint64_t seed);

  uint64_t next_u64();
  uint32_t next_u32() { return static_cast<uint32_t>(next_u64() >> 32); }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t uniform(uint64_t bound);
  // Uniform double in [0, 1).
  double uniform01();
  // Exponentially distributed with the given mean (for Poisson arrivals).
  double exponential(double mean);

  void fill(uint8_t* out, size_t n);
  Bytes bytes(size_t n);

 private:
  uint64_t s_[4];
};

}  // namespace qtls
