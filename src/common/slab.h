// Slab allocation for per-connection state (DESIGN.md §14).
//
// A production front-end holding a million mostly-idle connections cannot
// afford one malloc per connection object, per timer, per parked accept:
// the allocator metadata alone rivals the payload, churn fragments the
// heap, and teardown bugs hide behind the general-purpose allocator's
// tolerance. A SlabPool carves fixed-size slots out of chunked storage,
// hands them out through an intrusive free list (O(1) alloc/free, no
// per-object heap traffic after a chunk is carved), and — crucially for the
// bug-hunt half of the scale pass — keeps exact occupancy counters, so
// "every connect/handshake/close cycle returns the pool to its prior
// occupancy" is an assertable invariant rather than a hope.
//
// Threading: a pool is single-threaded by design, like the worker event
// loop and timer wheel that own one. Cross-thread use needs one pool per
// thread (the churn soak exercises exactly that pattern under TSan).
//
// QTLS_SLAB_STATS (CMake knob, default ON) compiles the process-wide
// SlabRegistry that named pools report into; /stats and the million_conn
// bench read it. With the knob off, registration is a no-op and a pool is
// nothing but chunks + a free list.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#ifndef QTLS_SLAB_STATS_ENABLED
#define QTLS_SLAB_STATS_ENABLED 1
#endif

namespace qtls::common {

struct SlabStats {
  std::string name;        // empty for anonymous pools
  size_t object_size = 0;  // bytes per slot (>= sizeof(T))
  size_t live = 0;         // objects currently allocated
  size_t capacity = 0;     // slots across all carved chunks
  size_t chunks = 0;
  uint64_t total_allocs = 0;
  uint64_t total_frees = 0;
  size_t bytes_reserved = 0;  // capacity * object_size
  size_t bytes_live = 0;      // live * object_size
};

// Type-erased view a registry entry exposes (the registry cannot name every
// SlabPool<T> instantiation).
class SlabPoolBase {
 public:
  virtual ~SlabPoolBase() = default;
  virtual SlabStats stats() const = 0;
};

#if QTLS_SLAB_STATS_ENABLED

// Process-wide directory of named pools. Registration is cold-path (pool
// construction); snapshot() is for /stats and benches. Pools deregister on
// destruction, so a snapshot never dereferences a dead pool.
class SlabRegistry {
 public:
  static SlabRegistry& global() {
    static SlabRegistry registry;
    return registry;
  }

  void add(const SlabPoolBase* pool) {
    std::lock_guard<std::mutex> lock(mu_);
    pools_.push_back(pool);
  }
  void remove(const SlabPoolBase* pool) {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < pools_.size(); ++i) {
      if (pools_[i] == pool) {
        pools_[i] = pools_.back();
        pools_.pop_back();
        return;
      }
    }
  }

  std::vector<SlabStats> snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<SlabStats> out;
    out.reserve(pools_.size());
    for (const SlabPoolBase* pool : pools_) out.push_back(pool->stats());
    return out;
  }

  // Aggregate over pools whose name starts with `prefix` (empty = all).
  SlabStats totals(const std::string& prefix = {}) const {
    SlabStats total;
    total.name = prefix.empty() ? "all" : prefix;
    for (const SlabStats& s : snapshot()) {
      if (!prefix.empty() && s.name.rfind(prefix, 0) != 0) continue;
      total.live += s.live;
      total.capacity += s.capacity;
      total.chunks += s.chunks;
      total.total_allocs += s.total_allocs;
      total.total_frees += s.total_frees;
      total.bytes_reserved += s.bytes_reserved;
      total.bytes_live += s.bytes_live;
    }
    return total;
  }

  // The GET /stats "memory.slabs" array.
  std::string to_json() const {
    std::ostringstream os;
    os << "[";
    bool first = true;
    for (const SlabStats& s : snapshot()) {
      os << (first ? "" : ",") << "{\"name\":\"" << s.name
         << "\",\"object_size\":" << s.object_size << ",\"live\":" << s.live
         << ",\"capacity\":" << s.capacity
         << ",\"allocs\":" << s.total_allocs << ",\"frees\":" << s.total_frees
         << ",\"bytes_reserved\":" << s.bytes_reserved << "}";
      first = false;
    }
    os << "]";
    return os.str();
  }

 private:
  mutable std::mutex mu_;
  std::vector<const SlabPoolBase*> pools_;
};

#else  // !QTLS_SLAB_STATS_ENABLED — no-op mirror

class SlabRegistry {
 public:
  static SlabRegistry& global() {
    static SlabRegistry registry;
    return registry;
  }
  void add(const SlabPoolBase*) {}
  void remove(const SlabPoolBase*) {}
  std::vector<SlabStats> snapshot() const { return {}; }
  SlabStats totals(const std::string& = {}) const { return {}; }
  std::string to_json() const { return "[]"; }
};

#endif  // QTLS_SLAB_STATS_ENABLED

// Fixed-size-class object pool. Slots are index-addressable — index_of()/
// at() — so owners like the timer wheel can hand out compact generation-
// tagged handles instead of raw pointers.
template <typename T>
class SlabPool final : public SlabPoolBase {
 public:
  // `name` registers the pool with the global SlabRegistry (empty =
  // anonymous, unregistered). `slots_per_chunk` trades chunk-carve
  // frequency against reserved-memory granularity.
  explicit SlabPool(std::string name = {}, size_t slots_per_chunk = 256)
      : name_(std::move(name)),
        slots_per_chunk_(slots_per_chunk == 0 ? 1 : slots_per_chunk) {
    if (!name_.empty()) SlabRegistry::global().add(this);
  }

  ~SlabPool() override {
    // Live objects at pool destruction are a caller bug (a leak the churn
    // soak asserts against); their destructors are deliberately NOT run —
    // running ~T on a slot the owner thinks is alive would hide the bug.
    if (!name_.empty()) SlabRegistry::global().remove(this);
  }

  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  template <typename... Args>
  T* create(Args&&... args) {
    Slot* slot = free_head_;
    if (slot != nullptr) {
      free_head_ = slot->next_free;
    } else {
      slot = carve();
    }
    total_allocs_.fetch_add(1, std::memory_order_relaxed);
    live_.fetch_add(1, std::memory_order_relaxed);
    return new (slot->storage) T(std::forward<Args>(args)...);
  }

  void destroy(T* obj) {
    if (obj == nullptr) return;
    obj->~T();
    Slot* slot = slot_of(obj);
    slot->next_free = free_head_;
    free_head_ = slot;
    total_frees_.fetch_add(1, std::memory_order_relaxed);
    live_.fetch_sub(1, std::memory_order_relaxed);
  }

  // Stable dense index of a live object: chunk * slots_per_chunk + offset.
  // O(log chunks) — owners on hot paths (timer arm) call this per alloc.
  size_t index_of(const T* obj) const {
    const Slot* slot = slot_of(obj);
    auto it = std::upper_bound(
        sorted_bases_.begin(), sorted_bases_.end(), slot,
        [](const Slot* s, const ChunkBase& b) { return s < b.base; });
    if (it != sorted_bases_.begin()) {
      const ChunkBase& b = *(it - 1);
      if (slot < b.base + slots_per_chunk_)
        return b.chunk * slots_per_chunk_ +
               static_cast<size_t>(slot - b.base);
    }
    assert(false && "index_of: object not from this pool");
    return SIZE_MAX;
  }

  // The object in slot `index`. The caller owns liveness discipline (pair
  // with a generation tag, as the timer wheel does): at() on a freed slot
  // returns a pointer into free-list storage, never out-of-bounds memory.
  T* at(size_t index) {
    const size_t c = index / slots_per_chunk_;
    if (c >= chunks_.size()) return nullptr;
    return std::launder(reinterpret_cast<T*>(
        chunks_[c][index % slots_per_chunk_].storage));
  }

  size_t live() const { return live_.load(std::memory_order_relaxed); }
  size_t capacity() const {
    return capacity_.load(std::memory_order_relaxed);
  }

  // Safe to call from another thread (the /stats endpoint snapshots every
  // registered pool): counters are relaxed atomics, so a concurrent
  // snapshot is approximate but never a data race.
  SlabStats stats() const override {
    SlabStats s;
    s.name = name_;
    s.object_size = sizeof(Slot);
    s.live = live();
    s.capacity = capacity();
    s.chunks = s.capacity / slots_per_chunk_;
    s.total_allocs = total_allocs_.load(std::memory_order_relaxed);
    s.total_frees = total_frees_.load(std::memory_order_relaxed);
    s.bytes_reserved = s.capacity * sizeof(Slot);
    s.bytes_live = s.live * sizeof(Slot);
    return s;
  }

 private:
  union Slot {
    Slot* next_free;
    alignas(T) unsigned char storage[sizeof(T)];
  };

  static Slot* slot_of(const T* obj) {
    // Standard-layout union: the storage array is at offset 0.
    return const_cast<Slot*>(reinterpret_cast<const Slot*>(
        reinterpret_cast<const unsigned char*>(obj)));
  }

  struct ChunkBase {
    const Slot* base;
    size_t chunk;
  };

  Slot* carve() {
    chunks_.push_back(std::make_unique<Slot[]>(slots_per_chunk_));
    Slot* base = chunks_.back().get();
    const ChunkBase entry{base, chunks_.size() - 1};
    sorted_bases_.insert(
        std::upper_bound(sorted_bases_.begin(), sorted_bases_.end(), entry,
                         [](const ChunkBase& a, const ChunkBase& b) {
                           return a.base < b.base;
                         }),
        entry);
    capacity_.store(chunks_.size() * slots_per_chunk_,
                    std::memory_order_relaxed);
    // Slot 0 is handed to the caller; the rest seed the free list in
    // ascending order (keeps early allocations cache-adjacent).
    for (size_t i = slots_per_chunk_; i-- > 1;) {
      base[i].next_free = free_head_;
      free_head_ = &base[i];
    }
    return base;
  }

  std::string name_;
  size_t slots_per_chunk_;
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::vector<ChunkBase> sorted_bases_;  // owner-thread only, for index_of
  Slot* free_head_ = nullptr;
  std::atomic<size_t> live_{0};
  std::atomic<size_t> capacity_{0};
  std::atomic<uint64_t> total_allocs_{0};
  std::atomic<uint64_t> total_frees_{0};
};

}  // namespace qtls::common
