// Nginx-style configuration parser backing the SSL Engine Framework of the
// paper's Appendix A.7:
//
//   worker_processes 8;
//   ssl_engine {
//       use qat_engine;
//       default_algorithm RSA,EC,DH,PKEY_CRYPTO;
//       qat_engine {
//           qat_offload_mode async;
//           qat_notify_mode poll;
//           qat_poll_mode heuristic;
//           qat_heuristic_poll_asym_threshold 48;
//           qat_heuristic_poll_sym_threshold 24;
//       }
//   }
//
// Grammar: a block is a sequence of directives `name arg... ;` and nested
// blocks `name arg... { ... }`. '#' starts a comment to end of line.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace qtls {

struct ConfDirective {
  std::string name;
  std::vector<std::string> args;
  int line = 0;

  const std::string& arg(size_t i) const {
    static const std::string kEmpty;
    return i < args.size() ? args[i] : kEmpty;
  }
};

class ConfBlock {
 public:
  ConfBlock() = default;
  ConfBlock(std::string name, std::vector<std::string> args)
      : name_(std::move(name)), args_(std::move(args)) {}

  const std::string& name() const { return name_; }
  const std::vector<std::string>& args() const { return args_; }

  const std::vector<ConfDirective>& directives() const { return directives_; }
  const std::vector<std::unique_ptr<ConfBlock>>& blocks() const {
    return blocks_;
  }

  // First matching directive/block or nullptr.
  const ConfDirective* find(const std::string& name) const;
  const ConfBlock* find_block(const std::string& name) const;

  // Typed lookups with defaults.
  std::string get_string(const std::string& name,
                         const std::string& dflt = "") const;
  int64_t get_int(const std::string& name, int64_t dflt) const;
  bool get_bool(const std::string& name, bool dflt) const;
  // Comma-separated list argument, e.g. `default_algorithm RSA,EC,DH;`.
  std::vector<std::string> get_list(const std::string& name) const;

  void add_directive(ConfDirective d) { directives_.push_back(std::move(d)); }
  ConfBlock* add_block(std::string name, std::vector<std::string> args);

 private:
  std::string name_;
  std::vector<std::string> args_;
  std::vector<ConfDirective> directives_;
  std::vector<std::unique_ptr<ConfBlock>> blocks_;
};

// Parses configuration text into a root block named "".
Result<std::unique_ptr<ConfBlock>> parse_conf(const std::string& text);
Result<std::unique_ptr<ConfBlock>> parse_conf_file(const std::string& path);

std::vector<std::string> split_csv(const std::string& s);

}  // namespace qtls
