#include "common/bytes.h"

#include <stdexcept>

namespace qtls {

namespace {
int hex_val(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(BytesView data) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

Bytes from_hex(const std::string& hex) {
  if (hex.size() % 2 != 0) throw std::invalid_argument("odd hex length");
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = hex_val(hex[i]);
    int lo = hex_val(hex[i + 1]);
    if (hi < 0 || lo < 0) throw std::invalid_argument("bad hex digit");
    out.push_back(static_cast<uint8_t>(hi << 4 | lo));
  }
  return out;
}

bool ct_equal(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  uint8_t acc = 0;
  for (size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

void secure_wipe(void* p, size_t n) {
  volatile uint8_t* vp = static_cast<volatile uint8_t*>(p);
  for (size_t i = 0; i < n; ++i) vp[i] = 0;
}

}  // namespace qtls
