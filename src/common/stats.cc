#include "common/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace qtls {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const uint64_t total = n_ + other.n_;
  mean_ += delta * static_cast<double>(other.n_) / static_cast<double>(total);
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) /
                         static_cast<double>(total);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ = total;
}

double OnlineStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

size_t LatencyHistogram::bucket_index(uint64_t v) {
  if (v < kSubBuckets) return static_cast<size_t>(v);
  const int msb = 63 - std::countl_zero(v);
  const int major = msb - kSubBits + 1;
  const uint64_t sub = (v >> (msb - kSubBits)) & (kSubBuckets - 1);
  return static_cast<size_t>(major) * kSubBuckets + static_cast<size_t>(sub);
}

uint64_t LatencyHistogram::bucket_low(size_t idx) {
  const size_t major = idx / kSubBuckets;
  const size_t sub = idx % kSubBuckets;
  if (major == 0) return sub;
  const int msb = static_cast<int>(major) + kSubBits - 1;
  return (1ULL << msb) | (static_cast<uint64_t>(sub) << (msb - kSubBits));
}

void LatencyHistogram::record(uint64_t nanos) {
  size_t idx = bucket_index(nanos);
  if (idx >= buckets_.size()) idx = buckets_.size() - 1;
  ++buckets_[idx];
  ++count_;
  sum_ += nanos;
  max_ = std::max(max_, nanos);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

void LatencyHistogram::merge_counts(const uint64_t* bucket_counts, size_t n,
                                    uint64_t count, uint64_t sum,
                                    uint64_t max) {
  if (n > buckets_.size()) n = buckets_.size();
  for (size_t i = 0; i < n; ++i) buckets_[i] += bucket_counts[i];
  count_ += count;
  sum_ += sum;
  max_ = std::max(max_, max);
}

uint64_t LatencyHistogram::percentile_nanos(double p) const {
  if (count_ == 0) return 0;
  const double target = p / 100.0 * static_cast<double>(count_);
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (static_cast<double>(seen) >= target) {
      // Bucket midpoint: halves the worst-case relative error vs returning
      // the lower edge (the ~2.4% bound documented in the header). The
      // sub-unit buckets (idx < kSubBuckets, width 1) stay exact.
      const uint64_t low = bucket_low(i);
      const uint64_t width =
          i + 1 < buckets_.size() ? bucket_low(i + 1) - low : 0;
      return low + width / 2;
    }
  }
  return max_;
}

std::string LatencyHistogram::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.1fus p50=%.1fus p95=%.1fus p99=%.1fus max=%.1fus",
                static_cast<unsigned long long>(count_), mean_nanos() / 1e3,
                static_cast<double>(percentile_nanos(50)) / 1e3,
                static_cast<double>(percentile_nanos(95)) / 1e3,
                static_cast<double>(percentile_nanos(99)) / 1e3,
                static_cast<double>(max_) / 1e3);
  return buf;
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_)
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << (i == 0 ? "" : "  ");
      os << cell << std::string(widths[i] - cell.size(), ' ');
    }
    os << '\n';
  };
  emit_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace qtls
