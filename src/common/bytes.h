// Byte-buffer helpers shared by the crypto and TLS layers.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace qtls {

using Bytes = std::vector<uint8_t>;
using BytesView = std::span<const uint8_t>;

std::string to_hex(BytesView data);
Bytes from_hex(const std::string& hex);

inline Bytes to_bytes(const std::string& s) {
  return Bytes(s.begin(), s.end());
}

inline std::string to_string(BytesView b) {
  return std::string(b.begin(), b.end());
}

inline void append(Bytes& dst, BytesView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

inline void append_u8(Bytes& dst, uint8_t v) { dst.push_back(v); }

inline void append_u16(Bytes& dst, uint16_t v) {
  dst.push_back(static_cast<uint8_t>(v >> 8));
  dst.push_back(static_cast<uint8_t>(v));
}

inline void append_u24(Bytes& dst, uint32_t v) {
  dst.push_back(static_cast<uint8_t>(v >> 16));
  dst.push_back(static_cast<uint8_t>(v >> 8));
  dst.push_back(static_cast<uint8_t>(v));
}

inline void append_u32(Bytes& dst, uint32_t v) {
  dst.push_back(static_cast<uint8_t>(v >> 24));
  dst.push_back(static_cast<uint8_t>(v >> 16));
  dst.push_back(static_cast<uint8_t>(v >> 8));
  dst.push_back(static_cast<uint8_t>(v));
}

inline void append_u64(Bytes& dst, uint64_t v) {
  append_u32(dst, static_cast<uint32_t>(v >> 32));
  append_u32(dst, static_cast<uint32_t>(v));
}

// Big-endian reader with bounds tracking; TLS parsers check ok() once per
// message rather than per field.
class ByteReader {
 public:
  explicit ByteReader(BytesView data) : data_(data) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }

  uint8_t u8() {
    if (!check(1)) return 0;
    return data_[pos_++];
  }
  uint16_t u16() {
    if (!check(2)) return 0;
    uint16_t v = static_cast<uint16_t>(data_[pos_] << 8 | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  uint32_t u24() {
    if (!check(3)) return 0;
    uint32_t v = static_cast<uint32_t>(data_[pos_]) << 16 |
                 static_cast<uint32_t>(data_[pos_ + 1]) << 8 |
                 static_cast<uint32_t>(data_[pos_ + 2]);
    pos_ += 3;
    return v;
  }
  uint32_t u32() {
    if (!check(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = v << 8 | data_[pos_ + i];
    pos_ += 4;
    return v;
  }
  uint64_t u64() {
    uint64_t hi = u32();
    return hi << 32 | u32();
  }
  Bytes bytes(size_t n) {
    if (!check(n)) return {};
    Bytes out(data_.begin() + static_cast<ptrdiff_t>(pos_),
              data_.begin() + static_cast<ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }
  BytesView view(size_t n) {
    if (!check(n)) return {};
    BytesView out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  void skip(size_t n) { check(n) ? void(pos_ += n) : void(); }

 private:
  bool check(size_t n) {
    if (pos_ + n > data_.size()) {
      ok_ = false;
      return false;
    }
    return ok_;
  }

  BytesView data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// Constant-time-ish equality for MACs/verify data. The crypto here is not
// side-channel hardened (see DESIGN.md), but comparisons are still branch-
// free to keep the idiom right.
bool ct_equal(BytesView a, BytesView b);

// Best-effort secure wipe (private keys, premaster secrets).
void secure_wipe(void* p, size_t n);

}  // namespace qtls
