// Minimal leveled logger. Not asynchronous: logging is off the hot path in
// both planes (DES code never logs per-event at default level).
#pragma once

#include <cstdio>
#include <sstream>
#include <string>

namespace qtls {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel log_threshold();
void set_log_threshold(LogLevel level);
void log_write(LogLevel level, const char* file, int line, const std::string& msg);

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogLine() { log_write(level_, file_, line_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream os_;
};
}  // namespace detail

#define QTLS_LOG(level)                                        \
  if (::qtls::LogLevel::level < ::qtls::log_threshold()) {     \
  } else                                                       \
    ::qtls::detail::LogLine(::qtls::LogLevel::level, __FILE__, __LINE__)

#define QTLS_DEBUG QTLS_LOG(kDebug)
#define QTLS_INFO QTLS_LOG(kInfo)
#define QTLS_WARN QTLS_LOG(kWarn)
#define QTLS_ERROR QTLS_LOG(kError)

}  // namespace qtls
