#include "common/conf.h"

#include <cctype>
#include <fstream>
#include <sstream>

namespace qtls {

namespace {

struct Token {
  enum Kind { kWord, kSemi, kOpen, kClose, kEnd } kind;
  std::string text;
  int line;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Result<Token> next() {
    skip_ws_and_comments();
    if (pos_ >= text_.size()) return Token{Token::kEnd, "", line_};
    const char c = text_[pos_];
    if (c == ';') {
      ++pos_;
      return Token{Token::kSemi, ";", line_};
    }
    if (c == '{') {
      ++pos_;
      return Token{Token::kOpen, "{", line_};
    }
    if (c == '}') {
      ++pos_;
      return Token{Token::kClose, "}", line_};
    }
    if (c == '"' || c == '\'') return quoted(c);
    std::string word;
    while (pos_ < text_.size() && !std::isspace(static_cast<uint8_t>(text_[pos_])) &&
           text_[pos_] != ';' && text_[pos_] != '{' && text_[pos_] != '}' &&
           text_[pos_] != '#') {
      word.push_back(text_[pos_++]);
    }
    return Token{Token::kWord, word, line_};
  }

 private:
  void skip_ws_and_comments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<uint8_t>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  Result<Token> quoted(char quote) {
    const int start_line = line_;
    ++pos_;
    std::string word;
    while (pos_ < text_.size() && text_[pos_] != quote) {
      if (text_[pos_] == '\n') ++line_;
      word.push_back(text_[pos_++]);
    }
    if (pos_ >= text_.size())
      return err(Code::kInvalidArgument,
                 "unterminated quote at line " + std::to_string(start_line));
    ++pos_;
    return Token{Token::kWord, word, start_line};
  }

  const std::string& text_;
  size_t pos_ = 0;
  int line_ = 1;
};

Status parse_block_body(Lexer& lexer, ConfBlock* block, bool is_root) {
  std::vector<std::string> words;
  int first_line = 0;
  for (;;) {
    QTLS_ASSIGN_OR_RETURN(Token tok, lexer.next());
    switch (tok.kind) {
      case Token::kWord:
        if (words.empty()) first_line = tok.line;
        words.push_back(std::move(tok.text));
        break;
      case Token::kSemi: {
        if (words.empty())
          return err(Code::kInvalidArgument,
                     "empty directive at line " + std::to_string(tok.line));
        ConfDirective d;
        d.name = words.front();
        d.args.assign(words.begin() + 1, words.end());
        d.line = first_line;
        block->add_directive(std::move(d));
        words.clear();
        break;
      }
      case Token::kOpen: {
        if (words.empty())
          return err(Code::kInvalidArgument,
                     "unnamed block at line " + std::to_string(tok.line));
        std::string name = words.front();
        std::vector<std::string> args(words.begin() + 1, words.end());
        words.clear();
        ConfBlock* child = block->add_block(std::move(name), std::move(args));
        QTLS_RETURN_IF_ERROR(parse_block_body(lexer, child, false));
        break;
      }
      case Token::kClose:
        if (is_root)
          return err(Code::kInvalidArgument,
                     "unbalanced '}' at line " + std::to_string(tok.line));
        if (!words.empty())
          return err(Code::kInvalidArgument,
                     "directive missing ';' before '}' at line " +
                         std::to_string(tok.line));
        return Status::ok();
      case Token::kEnd:
        if (!is_root)
          return err(Code::kInvalidArgument, "missing '}' at end of input");
        if (!words.empty())
          return err(Code::kInvalidArgument, "directive missing ';' at end");
        return Status::ok();
    }
  }
}

}  // namespace

const ConfDirective* ConfBlock::find(const std::string& name) const {
  for (const auto& d : directives_)
    if (d.name == name) return &d;
  return nullptr;
}

const ConfBlock* ConfBlock::find_block(const std::string& name) const {
  for (const auto& b : blocks_)
    if (b->name() == name) return b.get();
  return nullptr;
}

std::string ConfBlock::get_string(const std::string& name,
                                  const std::string& dflt) const {
  const ConfDirective* d = find(name);
  return d && !d->args.empty() ? d->args[0] : dflt;
}

int64_t ConfBlock::get_int(const std::string& name, int64_t dflt) const {
  const ConfDirective* d = find(name);
  if (!d || d->args.empty()) return dflt;
  try {
    return std::stoll(d->args[0]);
  } catch (...) {
    return dflt;
  }
}

bool ConfBlock::get_bool(const std::string& name, bool dflt) const {
  const ConfDirective* d = find(name);
  if (!d || d->args.empty()) return dflt;
  const std::string& v = d->args[0];
  if (v == "on" || v == "true" || v == "yes" || v == "1") return true;
  if (v == "off" || v == "false" || v == "no" || v == "0") return false;
  return dflt;
}

std::vector<std::string> ConfBlock::get_list(const std::string& name) const {
  const ConfDirective* d = find(name);
  if (!d) return {};
  std::vector<std::string> out;
  for (const auto& arg : d->args) {
    auto parts = split_csv(arg);
    out.insert(out.end(), parts.begin(), parts.end());
  }
  return out;
}

ConfBlock* ConfBlock::add_block(std::string name,
                                std::vector<std::string> args) {
  blocks_.push_back(
      std::make_unique<ConfBlock>(std::move(name), std::move(args)));
  return blocks_.back().get();
}

Result<std::unique_ptr<ConfBlock>> parse_conf(const std::string& text) {
  auto root = std::make_unique<ConfBlock>();
  Lexer lexer(text);
  QTLS_RETURN_IF_ERROR(parse_block_body(lexer, root.get(), true));
  return root;
}

Result<std::unique_ptr<ConfBlock>> parse_conf_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return err(Code::kNotFound, "cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_conf(ss.str());
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else if (!std::isspace(static_cast<uint8_t>(c))) {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

}  // namespace qtls
