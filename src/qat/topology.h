// Multi-device QAT topology (DESIGN.md §12): a fleet-scale box carries
// several accelerator cards, each on a NUMA node, and the serving layer has
// to answer three questions the single-card model never asked:
//
//  * placement — which device does a worker's instance set come from?
//    NUMA-style affinity: workers are striped across nodes the way irqbalance
//    pins VF interrupts, and instances come from a node-local card unless it
//    is saturated (queue-depth-aware spillover, qatlib's ADF-style even
//    VF distribution being the grounding shape);
//  * balancing — per-device queue depth steers both instance allocation and
//    per-op lane choice in the engine layer;
//  * failover — hot_remove() models surprise link-down: every op at the
//    device's service point fails with kDeviceReset (in-flight ops drain
//    through responses or the PR 2 deadline sweep; nothing is lost), load
//    shifts to surviving devices via the engine's per-device breaker, and
//    re_add() re-probes/rebalances.
//
// Each logical device owns its endpoints/engines/rings AND its own FaultPlan
// — devices fail independently, which is the whole point of having more
// than one.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "qat/device.h"
#include "qat/fault.h"

namespace qtls::qat {

struct TopologyConfig {
  int num_devices = 1;
  // Per-device shape (endpoints/engines/rings). `fault_plan` is ignored:
  // the topology provisions one plan per device so they fail independently.
  DeviceConfig device;
  // NUMA nodes the devices are spread across (device i sits on node
  // i % numa_nodes, matching how cards populate sockets round-robin).
  int numa_nodes = 1;
  // Queue-depth-aware spillover: a placement leaves its affine device when
  // that device's depth exceeds the fleet minimum by more than this.
  size_t spill_threshold = 32;
  // Seed for the per-device fault plans (device i gets seed ^ f(i)).
  uint64_t fault_seed = 0x746f706fULL;  // "topo"
};

// One device's placement-relevant state. `online` flips on hot_remove /
// re_add; `generation` counts those flips so engine lanes can notice a
// re-add and re-probe promptly.
struct TopologyDeviceStats {
  int id = 0;
  int numa_node = 0;
  bool online = true;
  uint64_t generation = 0;
  size_t queue_depth = 0;
  size_t instances_allocated = 0;
  uint64_t requests = 0;   // fw request total
  uint64_t responses = 0;  // fw response total
};

class DeviceTopology {
 public:
  explicit DeviceTopology(TopologyConfig config);

  DeviceTopology(const DeviceTopology&) = delete;
  DeviceTopology& operator=(const DeviceTopology&) = delete;

  int num_devices() const { return static_cast<int>(devices_.size()); }
  QatDevice& device(int i) { return *devices_[static_cast<size_t>(i)]->dev; }
  FaultPlan& fault_plan(int i) {
    return *devices_[static_cast<size_t>(i)]->plan;
  }
  int numa_node_of(int i) const {
    return devices_[static_cast<size_t>(i)]->numa_node;
  }
  size_t spill_threshold() const { return config_.spill_threshold; }

  bool online(int i) const {
    return devices_[static_cast<size_t>(i)]->online.load(
        std::memory_order_acquire);
  }
  int online_devices() const;

  // Bumped on every hot_remove()/re_add(); engine lanes compare it against
  // their cached value to re-probe a re-added device without waiting out a
  // full breaker cooldown.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  // Queue depth (submitted, not yet retrieved) of one device.
  size_t queue_depth(int i) const {
    return devices_[static_cast<size_t>(i)]->dev->inflight();
  }

  // NUMA-style worker→device affinity: workers are striped across nodes
  // (worker w sits on node w % numa_nodes, like SO_REUSEPORT workers pinned
  // round-robin), then across that node's devices. With fewer devices than
  // nodes this degenerates to plain round-robin over devices.
  int preferred_device(int worker_id, int num_workers) const;

  // Placement decision: the affine device unless it is offline or its queue
  // depth exceeds the online minimum by more than spill_threshold — then the
  // shallowest online device. Returns -1 when every device is offline.
  int pick_device(int preferred) const;

  struct Placement {
    CryptoInstance* instance = nullptr;
    int device = -1;
  };
  // Allocate `count` instances for one worker, one placement decision per
  // instance (so a saturated affine device spills only the overflow).
  // Placements land on offline devices never; returns what it could get.
  std::vector<Placement> allocate_for_worker(int worker_id, int num_workers,
                                             int count);

  // Surprise link-down. Marks the device offline for placement, then fails
  // every op at its service point with kDeviceReset (the FaultPlan reset
  // latch): in-flight ops drain through error responses — or, for requests
  // already dropped, through the engine's deadline sweep — so conservation
  // holds; new submissions migrate through the engine's per-device breaker.
  // Returns false if the device was already offline.
  bool hot_remove(int i);

  // The device comes back: clears the reset latch, marks it online, bumps
  // the generation so engine lanes re-probe and placement rebalances onto
  // it. Returns false if the device was already online.
  bool re_add(int i);

  uint64_t hot_removes() const {
    return hot_removes_.load(std::memory_order_relaxed);
  }
  uint64_t re_adds() const { return re_adds_.load(std::memory_order_relaxed); }

  std::vector<TopologyDeviceStats> stats() const;
  // The GET /stats "topology" object.
  std::string stats_json() const;

 private:
  struct Slot {
    std::unique_ptr<QatDevice> dev;
    std::unique_ptr<FaultPlan> plan;
    int numa_node = 0;
    std::atomic<bool> online{true};
    std::atomic<size_t> instances{0};
  };

  TopologyConfig config_;
  std::vector<std::unique_ptr<Slot>> devices_;
  std::atomic<uint64_t> generation_{0};
  std::atomic<uint64_t> hot_removes_{0};
  std::atomic<uint64_t> re_adds_{0};
};

}  // namespace qtls::qat
