#include "qat/fault.h"

namespace qtls::qat {

FaultPlan::FaultPlan(uint64_t seed) : rng_(seed) {}

void FaultPlan::set_rates(OpKind kind, const FaultRates& rates) {
  std::lock_guard<std::mutex> lock(mu_);
  rates_[static_cast<int>(kind)] = rates;
}

void FaultPlan::set_rates_all(const FaultRates& rates) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& r : rates_) r = rates;
}

void FaultPlan::schedule(OpKind kind, uint64_t nth, FaultKind fault,
                         uint64_t stall_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  scheduled_[{static_cast<uint8_t>(kind), nth}] =
      FaultDecision{fault, stall_ns};
}

uint64_t FaultPlan::ops_seen(OpKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  return seen_[static_cast<int>(kind)];
}

FaultDecision FaultPlan::decide(OpKind kind) {
  counters_.decisions.fetch_add(1, std::memory_order_relaxed);

  // A reset outranks everything: the device is down, nothing is served.
  if (reset_active()) {
    counters_.reset_failures.fetch_add(1, std::memory_order_relaxed);
    return {FaultKind::kReset, 0};
  }

  FaultDecision decision;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const int idx = static_cast<int>(kind);
    const uint64_t nth = ++seen_[idx];

    const auto it = scheduled_.find({static_cast<uint8_t>(kind), nth});
    if (it != scheduled_.end()) {
      decision = it->second;
    } else {
      const FaultRates& r = rates_[idx];
      if (r.error_rate > 0 || r.drop_rate > 0 || r.stall_rate > 0) {
        // One draw, stacked thresholds — keeps the per-kind decision stream
        // a function of (seed, service order) alone.
        const double u = rng_.uniform01();
        if (u < r.error_rate) {
          decision = {FaultKind::kError, 0};
        } else if (u < r.error_rate + r.drop_rate) {
          decision = {FaultKind::kDrop, 0};
        } else if (u < r.error_rate + r.drop_rate + r.stall_rate) {
          decision = {FaultKind::kStall, r.stall_ns};
        }
      }
    }
  }

  switch (decision.kind) {
    case FaultKind::kError:
      counters_.injected_errors.fetch_add(1, std::memory_order_relaxed);
      break;
    case FaultKind::kDrop:
      counters_.injected_drops.fetch_add(1, std::memory_order_relaxed);
      break;
    case FaultKind::kStall:
      counters_.injected_stalls.fetch_add(1, std::memory_order_relaxed);
      break;
    case FaultKind::kReset:
      counters_.reset_failures.fetch_add(1, std::memory_order_relaxed);
      break;
    case FaultKind::kNone:
      break;
  }
  return decision;
}

}  // namespace qtls::qat
