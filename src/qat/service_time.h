// Calibrated service-time model shared by the real-time device backend
// (optional latency padding) and the virtual-time simulator that reproduces
// the paper's figures.
//
// Calibration anchors (see EXPERIMENTS.md for the derivation):
//  * DH8970 card limit ≈ 100K RSA-2048/s (paper §5.2, Fig. 7a plateau).
//    3 endpoints x 12 engines = 36 engines -> 360 us per RSA-2048 op.
//  * ECDHE-RSA card limit ≈ 40K CPS (Fig. 7b plateau) with 1 RSA + 2 P-256
//    ops per handshake -> 36/40K = 900 us of engine time per handshake
//    -> P-256 point multiplication ≈ 270 us on an engine.
//  * Symmetric/PRF ops are one to two orders of magnitude cheaper.
#pragma once

#include <cstdint>

#include "qat/api.h"

namespace qtls::qat {

struct ServiceTimeModel {
  // Nanoseconds of engine occupancy per operation.
  uint64_t rsa2048_priv_ns = 350'000;
  uint64_t rsa2048_pub_ns = 12'000;
  uint64_t ec_p256_ns = 270'000;
  uint64_t ec_p384_ns = 540'000;
  uint64_t ec_binary283_ns = 300'000;
  uint64_t ec_binary409_ns = 620'000;
  uint64_t prf_ns = 3'000;
  uint64_t hkdf_ns = 6'000;       // modelled only; not offloadable (§5.2)
  uint64_t cipher_per_16k_ns = 25'000;

  uint64_t service_ns(OpKind kind) const {
    switch (kind) {
      case OpKind::kRsa2048Priv: return rsa2048_priv_ns;
      case OpKind::kRsa2048Pub: return rsa2048_pub_ns;
      case OpKind::kEcP256: return ec_p256_ns;
      case OpKind::kEcP384: return ec_p384_ns;
      case OpKind::kEcBinary283: return ec_binary283_ns;
      case OpKind::kEcBinary409: return ec_binary409_ns;
      case OpKind::kPrfTls12: return prf_ns;
      case OpKind::kHkdf: return hkdf_ns;
      case OpKind::kCipher16k: return cipher_per_16k_ns;
    }
    return prf_ns;
  }
};

}  // namespace qtls::qat
