// Deterministic fault injection for the QAT device model.
//
// The offload discipline (paper §3.2) already models the accelerator
// *refusing* work (ring full -> submit returns false); this layer models the
// accelerator *failing* work the way a real card does — firmware errors,
// lost responses, stuck engines, device resets — so the engine, worker and
// TLS layers have exercised error paths (the real QAT_Engine degrades to
// software crypto on exactly these conditions).
//
// A FaultPlan is a seeded, schedulable fault source consulted at the device
// model's service point. Both backends honor the same plan:
//   * real-time (qat/device.cc): QatEndpoint::serve() asks the plan before
//     executing a request's compute closure (engine threads; thread-safe);
//   * virtual-time (sim/qat_sim.cc): SimQatInstance::submit() asks the plan
//     when the op is dispatched onto a virtual engine.
//
// Fault taxonomy (DESIGN.md "Failure model & degradation"):
//   kError  respond with a CPA-style error status; compute never runs
//   kDrop   the response is lost: the device-side slot is freed but no
//           response is ever delivered — only an engine-level deadline
//           recovers the caller
//   kStall  the engine is stuck for stall_ns before serving normally
//   kReset  device reset: every op at the service point fails with
//           kDeviceReset until clear_reset() (re-probe) is called
//
// Faults come from two sources that compose:
//   * per-OpKind rates (Bernoulli draws from a seeded xoshiro stream), and
//   * scheduled one-shots ("the Nth op of this kind fails like so") for
//     table-driven deterministic tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <utility>

#include "common/rng.h"
#include "qat/api.h"

namespace qtls::qat {

enum class FaultKind : uint8_t { kNone, kError, kDrop, kStall, kReset };

inline const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kNone: return "none";
    case FaultKind::kError: return "error";
    case FaultKind::kDrop: return "drop";
    case FaultKind::kStall: return "stall";
    case FaultKind::kReset: return "reset";
  }
  return "?";
}

struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  uint64_t stall_ns = 0;  // engine occupancy added before serving (kStall)
};

// Per-OpKind fault probabilities. Rates are evaluated in the order
// error, drop, stall over a single uniform draw, so they may sum to at
// most 1.0.
struct FaultRates {
  double error_rate = 0.0;
  double drop_rate = 0.0;
  double stall_rate = 0.0;
  uint64_t stall_ns = 0;
};

// Injection counters, written at the service point (engine threads in the
// real backend) — relaxed atomics, aggregated on read like FwCounters.
struct FaultCounters {
  std::atomic<uint64_t> decisions{0};        // service-point consultations
  std::atomic<uint64_t> injected_errors{0};
  std::atomic<uint64_t> injected_drops{0};
  std::atomic<uint64_t> injected_stalls{0};
  std::atomic<uint64_t> reset_failures{0};   // ops failed by an open reset

  uint64_t injected_total() const {
    return injected_errors.load(std::memory_order_relaxed) +
           injected_drops.load(std::memory_order_relaxed) +
           injected_stalls.load(std::memory_order_relaxed) +
           reset_failures.load(std::memory_order_relaxed);
  }
};

class FaultPlan {
 public:
  explicit FaultPlan(uint64_t seed = 0x6661756c74ULL);  // "fault"

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  // Rate-based faults for one op kind / every op kind.
  void set_rates(OpKind kind, const FaultRates& rates);
  void set_rates_all(const FaultRates& rates);

  // Schedule a one-shot fault on the `nth` (1-based) op of `kind` observed
  // at the service point. Scheduled faults win over rate draws.
  void schedule(OpKind kind, uint64_t nth, FaultKind fault,
                uint64_t stall_ns = 0);

  // Device reset: every decide() fails with kReset until clear_reset().
  // clear_reset() models the device coming back after a re-probe window.
  void trigger_reset() { reset_.store(true, std::memory_order_release); }
  void clear_reset() { reset_.store(false, std::memory_order_release); }
  bool reset_active() const { return reset_.load(std::memory_order_acquire); }

  // The service-point consultation. Thread-safe (engine threads in the
  // real-time backend); the decision stream is deterministic given the seed
  // and the per-kind service order.
  FaultDecision decide(OpKind kind);

  const FaultCounters& counters() const { return counters_; }
  // Ops of `kind` seen at the service point so far.
  uint64_t ops_seen(OpKind kind) const;

 private:
  mutable std::mutex mu_;
  Rng rng_;
  FaultRates rates_[kNumOpKinds];
  // (kind, 1-based nth op of that kind) -> decision.
  std::map<std::pair<uint8_t, uint64_t>, FaultDecision> scheduled_;
  uint64_t seen_[kNumOpKinds] = {};
  std::atomic<bool> reset_{false};
  FaultCounters counters_;
};

}  // namespace qtls::qat
