// Request/response types of the QAT device model — the moral equivalent of
// the QAT userspace driver's cpaCySym*/cpaCyRsa* surface, reduced to what
// the TLS offload path needs:
//   * non-blocking submit onto a bounded request ring (can fail: ring full),
//   * parallel service across computation engines,
//   * responses retrieved by polling, delivered through a per-request
//     callback (the QAT Engine registers it; §3.2 of the paper).
#pragma once

#include <cstdint>
#include <functional>

#include "obs/trace.h"

namespace qtls::qat {

// The three inflight classes the heuristic polling scheme counts
// independently (paper §4.3: R_asym, R_cipher, R_prf).
enum class OpClass : uint8_t { kAsym = 0, kCipher = 1, kPrf = 2 };
constexpr int kNumOpClasses = 3;

inline const char* op_class_name(OpClass c) {
  switch (c) {
    case OpClass::kAsym: return "asym";
    case OpClass::kCipher: return "cipher";
    case OpClass::kPrf: return "prf";
  }
  return "?";
}

// Finer-grained op kinds, used for accounting and the service-time model.
enum class OpKind : uint8_t {
  kRsa2048Priv,
  kRsa2048Pub,
  kEcP256,      // one scalar multiplication
  kEcP384,
  kEcBinary283,
  kEcBinary409,
  kPrfTls12,
  kHkdf,        // not offloadable via QAT Engine (paper §5.2), here for model
  kCipher16k,   // chained cipher on up to a 16 KB record
};

constexpr int kNumOpKinds = 9;

inline OpClass op_class_of(OpKind kind) {
  switch (kind) {
    case OpKind::kRsa2048Priv:
    case OpKind::kRsa2048Pub:
    case OpKind::kEcP256:
    case OpKind::kEcP384:
    case OpKind::kEcBinary283:
    case OpKind::kEcBinary409:
      return OpClass::kAsym;
    case OpKind::kPrfTls12:
    case OpKind::kHkdf:
      return OpClass::kPrf;
    case OpKind::kCipher16k:
      return OpClass::kCipher;
  }
  return OpClass::kPrf;
}

// Completion status of one request — the model's reduction of the driver's
// CpaStatus. kSuccess/kComputeError describe the computation itself;
// kDeviceError/kDeviceReset are device-level failures (the computation never
// ran) and are the retry/fallback triggers for the engine layer.
enum class CryptoStatus : uint8_t {
  kSuccess = 0,
  kComputeError,  // compute() returned false: deterministic input failure
  kDeviceError,   // CPA_STATUS_FAIL-style firmware error (transient)
  kDeviceReset,   // failed because the device reset with the op in flight
};

inline const char* crypto_status_name(CryptoStatus s) {
  switch (s) {
    case CryptoStatus::kSuccess: return "success";
    case CryptoStatus::kComputeError: return "compute_error";
    case CryptoStatus::kDeviceError: return "device_error";
    case CryptoStatus::kDeviceReset: return "device_reset";
  }
  return "?";
}

// True for statuses the engine may retry or degrade to software for —
// the computation itself never ran.
inline bool is_device_failure(CryptoStatus s) {
  return s == CryptoStatus::kDeviceError || s == CryptoStatus::kDeviceReset;
}

struct CryptoResponse {
  uint64_t request_id = 0;
  OpKind kind = OpKind::kPrfTls12;
  bool success = false;  // status == kSuccess (kept for existing callers)
  CryptoStatus status = CryptoStatus::kComputeError;
  void* user_tag = nullptr;
  // Lifecycle stamps copied from the request at service time (sampled
  // requests only; obs/trace.h).
  obs::TraceStamps trace;
};

using ResponseCallback = std::function<void(const CryptoResponse&)>;

struct CryptoRequest {
  uint64_t request_id = 0;
  OpKind kind = OpKind::kPrfTls12;
  // The actual computation, executed on an engine thread in the real-time
  // backend. Must be self-contained (owns its inputs, writes its outputs to
  // caller-owned storage that outlives the request).
  std::function<bool()> compute;
  // Invoked from poll() on the polling thread, never from engine threads —
  // matching the QAT driver contract that callbacks run in the polling
  // context.
  ResponseCallback on_response;
  void* user_tag = nullptr;
  // Lifecycle stamps (obs/trace.h): the submitter calls obs::trace_begin()
  // to make the sampling decision; the device stamps ring-enqueue through
  // poll-drain as the request moves.
  obs::TraceStamps trace;
};

}  // namespace qtls::qat
