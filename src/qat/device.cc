#include "qat/device.h"

#include <chrono>
#include <sstream>

#include "common/log.h"

namespace qtls::qat {

// ---------------------------------------------------------------------------
// CryptoInstance
// ---------------------------------------------------------------------------

CryptoInstance::CryptoInstance(QatEndpoint* endpoint, int id,
                               size_t ring_capacity)
    : endpoint_(endpoint), id_(id), request_ring_(ring_capacity) {}

bool CryptoInstance::submit(CryptoRequest req) {
  const OpClass cls = op_class_of(req.kind);
  if (!request_ring_.try_push(std::move(req))) return false;
  inflight_.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(endpoint_->counter_mutex_);
    ++endpoint_->counters_.requests[static_cast<int>(cls)];
  }
  endpoint_->kick();
  return true;
}

size_t CryptoInstance::poll(size_t max) {
  // Move ready responses out under the lock, run callbacks outside it: a
  // callback may submit a follow-up request to this same instance.
  std::vector<std::pair<CryptoResponse, ResponseCallback>> ready;
  {
    std::lock_guard<std::mutex> lock(response_mutex_);
    while (!responses_.empty() && ready.size() < max) {
      ready.push_back(std::move(responses_.front()));
      responses_.pop_front();
    }
  }
  for (auto& [response, callback] : ready) {
    inflight_.fetch_sub(1, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(endpoint_->counter_mutex_);
      ++endpoint_->counters_.responses[static_cast<int>(
          op_class_of(response.kind))];
    }
    if (callback) callback(response);
  }
  return ready.size();
}

// ---------------------------------------------------------------------------
// QatEndpoint
// ---------------------------------------------------------------------------

QatEndpoint::QatEndpoint(const DeviceConfig& config, int id)
    : config_(config), id_(id) {
  engines_.reserve(static_cast<size_t>(config.engines_per_endpoint));
  for (int e = 0; e < config.engines_per_endpoint; ++e)
    engines_.emplace_back([this, e] { engine_main(e); });
}

QatEndpoint::~QatEndpoint() {
  {
    std::lock_guard<std::mutex> lock(dispatch_mutex_);
    stopping_ = true;
  }
  dispatch_cv_.notify_all();
  for (auto& t : engines_) t.join();
}

CryptoInstance* QatEndpoint::allocate_instance() {
  std::lock_guard<std::mutex> lock(dispatch_mutex_);
  if (static_cast<int>(instances_.size()) >= config_.max_instances_per_endpoint)
    return nullptr;
  instances_.push_back(std::make_unique<CryptoInstance>(
      this, static_cast<int>(instances_.size()), config_.ring_capacity));
  return instances_.back().get();
}

void QatEndpoint::kick() { dispatch_cv_.notify_one(); }

bool QatEndpoint::pop_request_locked(CryptoRequest* out,
                                     CryptoInstance** from) {
  const size_t n = instances_.size();
  for (size_t step = 0; step < n; ++step) {
    CryptoInstance* inst = instances_[(rr_cursor_ + step) % n].get();
    auto req = inst->request_ring_.try_pop();
    if (req.has_value()) {
      rr_cursor_ = (rr_cursor_ + step + 1) % n;
      *out = std::move(*req);
      *from = inst;
      return true;
    }
  }
  return false;
}

void QatEndpoint::engine_main(int engine_id) {
  (void)engine_id;
  std::unique_lock<std::mutex> lock(dispatch_mutex_);
  for (;;) {
    CryptoRequest req;
    CryptoInstance* from = nullptr;
    while (!stopping_ && !pop_request_locked(&req, &from)) {
      // Timed wait: a submit that races the wait is recovered on timeout.
      dispatch_cv_.wait_for(lock, std::chrono::milliseconds(1));
    }
    if (stopping_) return;

    busy_.fetch_add(1, std::memory_order_relaxed);
    lock.unlock();

    CryptoResponse response;
    response.request_id = req.request_id;
    response.kind = req.kind;
    response.user_tag = req.user_tag;
    response.success = req.compute ? req.compute() : true;
    if (config_.extra_service_ns > 0) {
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::nanoseconds(config_.extra_service_ns);
      while (std::chrono::steady_clock::now() < deadline) {
        // busy wait: models occupancy of a computation engine
      }
    }

    if (config_.delivery == ResponseDelivery::kInterrupt) {
      // Interrupt-style delivery: invoked from the engine thread, like a
      // kernel interrupt handler preempting the application.
      from->inflight_.fetch_sub(1, std::memory_order_release);
      {
        std::lock_guard<std::mutex> clock_(counter_mutex_);
        ++counters_.responses[static_cast<int>(op_class_of(response.kind))];
      }
      if (req.on_response) req.on_response(response);
    } else {
      std::lock_guard<std::mutex> rlock(from->response_mutex_);
      from->responses_.emplace_back(std::move(response),
                                    std::move(req.on_response));
    }
    busy_.fetch_sub(1, std::memory_order_relaxed);

    lock.lock();
  }
}

FwCounters QatEndpoint::fw_counters() const {
  std::lock_guard<std::mutex> lock(counter_mutex_);
  return counters_;
}

std::string FwCounters::to_string() const {
  std::ostringstream os;
  for (int c = 0; c < kNumOpClasses; ++c) {
    os << op_class_name(static_cast<OpClass>(c)) << ": req=" << requests[c]
       << " resp=" << responses[c];
    if (c + 1 < kNumOpClasses) os << ", ";
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// QatDevice
// ---------------------------------------------------------------------------

QatDevice::QatDevice(const DeviceConfig& config) : config_(config) {
  for (int i = 0; i < config.num_endpoints; ++i)
    endpoints_.push_back(std::make_unique<QatEndpoint>(config, i));
}

CryptoInstance* QatDevice::allocate_instance() {
  // Round-robin across endpoints; if one endpoint is full, try the others.
  for (int attempt = 0; attempt < num_endpoints(); ++attempt) {
    const size_t idx =
        next_endpoint_.fetch_add(1, std::memory_order_relaxed) %
        endpoints_.size();
    if (CryptoInstance* inst = endpoints_[idx]->allocate_instance())
      return inst;
  }
  return nullptr;
}

FwCounters QatDevice::fw_counters() const {
  FwCounters total;
  for (const auto& ep : endpoints_) {
    const FwCounters c = ep->fw_counters();
    for (int i = 0; i < kNumOpClasses; ++i) {
      total.requests[i] += c.requests[i];
      total.responses[i] += c.responses[i];
    }
  }
  return total;
}

}  // namespace qtls::qat
