#include "qat/device.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "common/log.h"

namespace qtls::qat {

namespace {
// How many responses poll() moves out of the MPSC ring per drain pass
// before running their callbacks (stack-allocated batch buffer).
constexpr size_t kPollBatch = 32;

size_t round_up_pow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p < 2 ? 2 : p;
}
}  // namespace

// ---------------------------------------------------------------------------
// CryptoInstance
// ---------------------------------------------------------------------------

CryptoInstance::CryptoInstance(QatEndpoint* endpoint, int id,
                               size_t ring_capacity, size_t response_capacity)
    : endpoint_(endpoint),
      id_(id),
      request_ring_(ring_capacity),
      response_ring_(round_up_pow2(response_capacity)) {}

bool CryptoInstance::push_request(CryptoRequest& req) {
  // Gate on the inflight bound first: it guarantees the bounded response
  // ring always has room for every request we accept, so an engine's
  // response push can never fail. Inflight only decreases concurrently
  // (poll), so the check cannot admit too many.
  if (inflight_.load(std::memory_order_acquire) >= inflight_limit())
    return false;
  const OpClass cls = op_class_of(req.kind);
  obs::stamp_now(req.trace, obs::Stage::kRingEnqueue);
  if (!request_ring_.try_push(std::move(req))) return false;
  inflight_.fetch_add(1, std::memory_order_release);
  req_counters_.v[static_cast<int>(cls)].fetch_add(1,
                                                   std::memory_order_relaxed);
  return true;
}

bool CryptoInstance::submit(CryptoRequest req) {
  if (!push_request(req)) return false;
  endpoint_->kick();
  return true;
}

size_t CryptoInstance::submit_batch(std::span<CryptoRequest> reqs) {
  size_t accepted = 0;
  for (CryptoRequest& req : reqs) {
    if (!push_request(req)) break;
    ++accepted;
  }
  if (accepted > 0) endpoint_->kick();
  return accepted;
}

size_t CryptoInstance::poll(size_t max) {
  if (poll_guard_.test_and_set(std::memory_order_acquire)) return 0;
  ResponseEntry batch[kPollBatch];
  size_t total = 0;
  while (total < max) {
    const size_t want = std::min(kPollBatch, max - total);
    const size_t got = response_ring_.pop_batch(batch, want);
    if (got == 0) break;
    total += got;
    for (size_t i = 0; i < got; ++i) {
      inflight_.fetch_sub(1, std::memory_order_release);
      obs::stamp_now(batch[i].response.trace, obs::Stage::kPollDrain);
      // Callbacks run outside any ring operation: one may submit a
      // follow-up request to this same instance.
      if (batch[i].callback) batch[i].callback(batch[i].response);
      batch[i] = ResponseEntry{};
    }
  }
  poll_guard_.clear(std::memory_order_release);
  return total;
}

// ---------------------------------------------------------------------------
// QatEndpoint
// ---------------------------------------------------------------------------

QatEndpoint::QatEndpoint(const DeviceConfig& config, int id)
    : config_(config), id_(id) {
  instances_.resize(static_cast<size_t>(config.max_instances_per_endpoint));
  engine_slots_.reserve(static_cast<size_t>(config.engines_per_endpoint));
  engines_.reserve(static_cast<size_t>(config.engines_per_endpoint));
  for (int e = 0; e < config.engines_per_endpoint; ++e)
    engine_slots_.push_back(std::make_unique<EngineSlot>());
  for (int e = 0; e < config.engines_per_endpoint; ++e)
    engines_.emplace_back([this, e] { engine_main(e); });
}

QatEndpoint::~QatEndpoint() {
  stopping_.store(true, std::memory_order_release);
  for (auto& slot : engine_slots_) slot->wake.signal();
  for (auto& t : engines_) t.join();
}

CryptoInstance* QatEndpoint::allocate_instance() {
  std::lock_guard<std::mutex> lock(alloc_mutex_);
  const size_t n = num_instances_.load(std::memory_order_relaxed);
  if (n >= instances_.size()) return nullptr;
  // The response ring must absorb every request this instance can have in
  // flight: the request ring plus one per engine in service, with slack for
  // submit/poll races.
  const size_t response_capacity =
      config_.ring_capacity * 2 +
      static_cast<size_t>(config_.engines_per_endpoint);
  instances_[n] = std::make_unique<CryptoInstance>(
      this, static_cast<int>(n), config_.ring_capacity, response_capacity);
  CryptoInstance* inst = instances_[n].get();
  // Publish: engines load num_instances_ with acquire before indexing.
  num_instances_.store(n + 1, std::memory_order_release);
  return inst;
}

void QatEndpoint::kick() {
  // Wake at most one sleeping engine; if all are awake they will find the
  // request while scanning. Flipping `asleep` false transfers ownership of
  // exactly one wake.signal() to this submitter, so each sleep sees at most
  // one targeted wakeup.
  const size_t n = engine_slots_.size();
  const size_t start = wake_cursor_.fetch_add(1, std::memory_order_relaxed);
  for (size_t i = 0; i < n; ++i) {
    EngineSlot& slot = *engine_slots_[(start + i) % n];
    bool expected = true;
    if (slot.asleep.compare_exchange_strong(expected, false,
                                            std::memory_order_acq_rel)) {
      slot.wake.signal();
      return;
    }
  }
}

bool QatEndpoint::claim_request(CryptoRequest* out, CryptoInstance** from) {
  const size_t n = num_instances_.load(std::memory_order_acquire);
  if (n == 0) return false;
  const size_t start = rr_cursor_.fetch_add(1, std::memory_order_relaxed);
  for (size_t step = 0; step < n; ++step) {
    CryptoInstance* inst = instances_[(start + step) % n].get();
    if (inst->request_ring_.empty_hint()) continue;
    // Take the pop side of this instance's SPSC ring; skip, never wait, if
    // another engine holds it.
    if (inst->claim_.test_and_set(std::memory_order_acquire)) continue;
    auto req = inst->request_ring_.try_pop();
    inst->claim_.clear(std::memory_order_release);
    if (req.has_value()) {
      *out = std::move(*req);
      *from = inst;
      obs::stamp_now(out->trace, obs::Stage::kEngineClaim);
      return true;
    }
  }
  return false;
}

namespace {
// Busy wait: models occupancy of a computation engine.
void engine_busy_wait(uint64_t ns) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < deadline) {
  }
}
}  // namespace

void QatEndpoint::serve(EngineSlot& slot, CryptoRequest& req,
                        CryptoInstance* from) {
  busy_.fetch_add(1, std::memory_order_relaxed);
  obs::stamp_now(req.trace, obs::Stage::kServiceStart);

  // Fault injection (qat/fault.h): the service point is where firmware
  // errors, lost responses, and stalls happen on a real card.
  FaultDecision fault;
  if (config_.fault_plan) fault = config_.fault_plan->decide(req.kind);
  if (fault.kind == FaultKind::kStall && fault.stall_ns > 0)
    engine_busy_wait(fault.stall_ns);  // stuck engine, then serves normally

  CryptoResponse response;
  response.request_id = req.request_id;
  response.kind = req.kind;
  response.user_tag = req.user_tag;
  switch (fault.kind) {
    case FaultKind::kError:
      // CPA-style error status: the computation never ran.
      response.status = CryptoStatus::kDeviceError;
      break;
    case FaultKind::kReset:
      response.status = CryptoStatus::kDeviceReset;
      break;
    case FaultKind::kDrop:
      // Lost response: free the device-side slot but never deliver. The
      // response stripe is NOT incremented, so fw_counters shows
      // requests - responses == drops; only an engine-level deadline
      // recovers the submitter.
      from->inflight_.fetch_sub(1, std::memory_order_release);
      busy_.fetch_sub(1, std::memory_order_relaxed);
      return;
    case FaultKind::kNone:
    case FaultKind::kStall: {
      const bool ok = req.compute ? req.compute() : true;
      response.status =
          ok ? CryptoStatus::kSuccess : CryptoStatus::kComputeError;
      if (config_.extra_service_ns > 0)
        engine_busy_wait(config_.extra_service_ns);
      break;
    }
  }
  response.success = response.status == CryptoStatus::kSuccess;
  if (req.trace.sampled) {
    obs::stamp_now(req.trace, obs::Stage::kServiceDone);
    response.trace = req.trace;
  }

  slot.responses.v[static_cast<int>(op_class_of(response.kind))].fetch_add(
      1, std::memory_order_relaxed);

  if (config_.delivery == ResponseDelivery::kInterrupt) {
    // Interrupt-style delivery: invoked from the engine thread, like a
    // kernel interrupt handler preempting the application.
    from->inflight_.fetch_sub(1, std::memory_order_release);
    obs::stamp_now(response.trace, obs::Stage::kPollDrain);
    if (req.on_response) req.on_response(response);
  } else {
    CryptoInstance::ResponseEntry entry{std::move(response),
                                        std::move(req.on_response)};
    // The submit-side inflight gate sizes the response ring so this push
    // succeeds; the yield loop is a backstop, not a steady state.
    while (!from->response_ring_.try_push(std::move(entry)))
      std::this_thread::yield();
  }
  busy_.fetch_sub(1, std::memory_order_relaxed);
}

void QatEndpoint::engine_main(int engine_id) {
  EngineSlot& slot = *engine_slots_[static_cast<size_t>(engine_id)];
  CryptoRequest req;
  CryptoInstance* from = nullptr;
  // No idle spinning: an idle engine goes straight to the futex sleep.
  // Spinning (pause or sched_yield) was measured strictly harmful on
  // low-core-count hosts — a spinner holds the core for a scheduler slice
  // and convoys the submitter — while the futex wake is a few microseconds.
  while (!stopping_.load(std::memory_order_acquire)) {
    if (claim_request(&req, &from)) {
      serve(slot, req, from);
      continue;
    }
    // Take a wakeup ticket, commit to sleeping, then re-scan: a submit
    // that lands after the ticket invalidates it (wait_for returns
    // immediately), and one that lands before the asleep store is caught by
    // the re-scan. The timed wait is a backstop, not the wake path.
    const uint32_t ticket = slot.wake.prepare();
    slot.asleep.store(true, std::memory_order_seq_cst);
    if (claim_request(&req, &from)) {
      slot.asleep.store(false, std::memory_order_relaxed);
      serve(slot, req, from);
      continue;
    }
    if (stopping_.load(std::memory_order_acquire)) return;
    slot.wake.wait_for(ticket, std::chrono::milliseconds(1));
    slot.asleep.store(false, std::memory_order_relaxed);
  }
}

size_t QatEndpoint::inflight() const {
  size_t total = 0;
  const size_t n = num_instances_.load(std::memory_order_acquire);
  for (size_t i = 0; i < n; ++i) total += instances_[i]->inflight();
  return total;
}

FwCounters QatEndpoint::fw_counters() const {
  FwCounters total;
  const size_t n = num_instances_.load(std::memory_order_acquire);
  for (size_t i = 0; i < n; ++i)
    for (int c = 0; c < kNumOpClasses; ++c)
      total.requests[c] +=
          instances_[i]->req_counters_.v[c].load(std::memory_order_relaxed);
  for (const auto& slot : engine_slots_)
    for (int c = 0; c < kNumOpClasses; ++c)
      total.responses[c] +=
          slot->responses.v[c].load(std::memory_order_relaxed);
  return total;
}

std::string FwCounters::to_string() const {
  std::ostringstream os;
  for (int c = 0; c < kNumOpClasses; ++c) {
    os << op_class_name(static_cast<OpClass>(c)) << ": req=" << requests[c]
       << " resp=" << responses[c];
    if (c + 1 < kNumOpClasses) os << ", ";
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// QatDevice
// ---------------------------------------------------------------------------

QatDevice::QatDevice(const DeviceConfig& config) : config_(config) {
  for (int i = 0; i < config.num_endpoints; ++i)
    endpoints_.push_back(std::make_unique<QatEndpoint>(config, i));
}

CryptoInstance* QatDevice::allocate_instance() {
  // Round-robin across endpoints; if one endpoint is full, try the others.
  for (int attempt = 0; attempt < num_endpoints(); ++attempt) {
    const size_t idx =
        next_endpoint_.fetch_add(1, std::memory_order_relaxed) %
        endpoints_.size();
    if (CryptoInstance* inst = endpoints_[idx]->allocate_instance())
      return inst;
  }
  return nullptr;
}

size_t QatDevice::inflight() const {
  size_t total = 0;
  for (const auto& ep : endpoints_) total += ep->inflight();
  return total;
}

FwCounters QatDevice::fw_counters() const {
  FwCounters total;
  for (const auto& ep : endpoints_) {
    const FwCounters c = ep->fw_counters();
    for (int i = 0; i < kNumOpClasses; ++i) {
      total.requests[i] += c.requests[i];
      total.responses[i] += c.responses[i];
    }
  }
  return total;
}

}  // namespace qtls::qat
