// QAT device model (paper §2.3, Figure 2): a device hosts several endpoints;
// each endpoint owns parallel computation engines and hardware-assisted
// request/response ring pairs grouped into crypto instances. Software writes
// requests onto a request ring and reads responses back from a response
// ring; the hardware load-balances requests from all rings across all
// engines; response availability is indicated by polling.
//
// This is the real-time backend: engines are worker threads that execute
// the request's `compute` closure (real crypto). The virtual-time backend
// for the figure benches lives in src/sim/ and shares the service-time
// model (qat/service_time.h).
//
// Dispatch path (see DESIGN.md "Dispatch path"): the request/response path
// is lock-free end to end. Submits are SPSC ring pushes plus a per-engine
// futex-eventcount wakeup; engines claim requests through an atomic
// round-robin cursor and a per-instance claim flag (no lock while scanning);
// responses cross a bounded MPSC ring whose consumer side — poll() — is
// wait-free; firmware counters are striped relaxed atomics aggregated on
// read. The only mutex left is the cold instance-allocation path.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/futex_event.h"
#include "common/mpsc_ring.h"
#include "common/spsc_ring.h"
#include "common/status.h"
#include "qat/api.h"
#include "qat/fault.h"

namespace qtls::qat {

// Response availability can be indicated using either interrupt or polling
// (paper §2.3). QTLS selects polling (§3.3: one userspace polling operation
// costs far less than one kernel interrupt); the interrupt mode is kept as
// the foil — the callback fires from the engine thread, the way a kernel
// interrupt handler would preempt, so callbacks must be thread-safe (the
// FD-based notification channel is; the kernel-bypass queue is not).
enum class ResponseDelivery : uint8_t { kPolled, kInterrupt };

struct DeviceConfig {
  int num_endpoints = 3;          // DH8970: three independent endpoints
  int engines_per_endpoint = 12;  // parallel computation engines
  size_t ring_capacity = 64;      // per-instance request ring slots
  int max_instances_per_endpoint = 48;
  ResponseDelivery delivery = ResponseDelivery::kPolled;
  // Optional extra service delay (busy wait, nanoseconds) added on the
  // engine to emulate device latency in integration tests. 0 = compute time
  // only.
  uint64_t extra_service_ns = 0;
  // Optional fault-injection plan, consulted at the service point (see
  // qat/fault.h). Non-owning; must outlive the device. nullptr = fault-free.
  FaultPlan* fault_plan = nullptr;
};

class QatEndpoint;

// Per-class op counters, striped one block per engine / per instance so no
// two threads write the same cache line on the hot path.
struct alignas(kCacheLine) OpClassCounters {
  std::atomic<uint64_t> v[kNumOpClasses] = {};
};

// A crypto instance: the logical unit assigned to one process/thread. The
// submit side is wait-free (SPSC ring push: one producer — the owning
// thread). poll() drains the MPSC response ring wait-free and runs
// callbacks in the caller's context.
class CryptoInstance {
 public:
  CryptoInstance(QatEndpoint* endpoint, int id, size_t ring_capacity,
                 size_t response_capacity);

  // Non-blocking submit. Returns false when the request ring is full or the
  // instance is at its inflight bound (response-ring backpressure) — the
  // caller is expected to pause the offload job and retry later (§3.2).
  bool submit(CryptoRequest req);

  // Batched submit: pushes a prefix of `reqs` and issues ONE engine wakeup
  // for the whole batch. Returns the number accepted; stops at the first
  // ring-full/backpressure rejection, leaving the remainder untouched for
  // the §3.2 retry path.
  size_t submit_batch(std::span<CryptoRequest> reqs);

  // Retrieve up to `max` responses, invoking each request's callback.
  // Wait-free on the ring-consumer side; responses are drained in batches
  // and callbacks run between batches. Returns the number retrieved.
  // Concurrent callers are serialized by skip: a second poller gets 0.
  size_t poll(size_t max = static_cast<size_t>(-1));

  // Submitted but not yet retrieved (includes requests in service).
  size_t inflight() const { return inflight_.load(std::memory_order_acquire); }

  // Hard bound on inflight requests per instance; submits beyond it fail
  // like a full ring so the bounded response ring can never overflow.
  size_t inflight_limit() const { return response_ring_.capacity(); }

  int id() const { return id_; }
  QatEndpoint* endpoint() const { return endpoint_; }

 private:
  friend class QatEndpoint;

  struct ResponseEntry {
    CryptoResponse response;
    ResponseCallback callback;
  };

  // Common submit body; returns false without kicking on rejection.
  bool push_request(CryptoRequest& req);

  QatEndpoint* endpoint_;
  int id_;
  SpscRing<CryptoRequest> request_ring_;
  // Responses come from multiple engine threads: bounded MPSC ring.
  MpscRing<ResponseEntry> response_ring_;
  // Request-ring consumer guard: engines claim the pop side with a
  // test_and_set and skip on contention, preserving the SPSC invariant
  // without a shared lock.
  std::atomic_flag claim_ = ATOMIC_FLAG_INIT;
  // Response-ring consumer guard: serializes accidental concurrent pollers.
  std::atomic_flag poll_guard_ = ATOMIC_FLAG_INIT;
  std::atomic<size_t> inflight_{0};
  // Request-side firmware counters (written by the single submitter).
  OpClassCounters req_counters_;
};

// Firmware counters, readable like /sys/kernel/debug/qat*/fw_counters.
// Aggregated on read from the per-instance request stripes and per-engine
// response stripes; no mutex anywhere near the hot path.
struct FwCounters {
  uint64_t requests[kNumOpClasses] = {0, 0, 0};
  uint64_t responses[kNumOpClasses] = {0, 0, 0};
  uint64_t total_requests() const {
    return requests[0] + requests[1] + requests[2];
  }
  uint64_t total_responses() const {
    return responses[0] + responses[1] + responses[2];
  }
  std::string to_string() const;
};

class QatEndpoint {
 public:
  QatEndpoint(const DeviceConfig& config, int id);
  ~QatEndpoint();

  QatEndpoint(const QatEndpoint&) = delete;
  QatEndpoint& operator=(const QatEndpoint&) = delete;

  // Allocates a crypto instance; returns nullptr when the endpoint is at
  // its instance limit.
  CryptoInstance* allocate_instance();

  FwCounters fw_counters() const;
  int id() const { return id_; }
  int num_engines() const { return static_cast<int>(engines_.size()); }
  // Engines currently executing a request (for utilization probes).
  int busy_engines() const { return busy_.load(std::memory_order_relaxed); }
  // Submitted-but-not-retrieved requests across every instance — the
  // endpoint's queue depth, read by the topology balancer.
  size_t inflight() const;

 private:
  friend class CryptoInstance;

  // One engine's wakeup channel + response counter stripe. Heap-allocated
  // (the eventcount is immovable) and cache-line aligned.
  struct alignas(kCacheLine) EngineSlot {
    FutexEvent wake;
    // True while the engine is committed to sleeping; a submitter that
    // flips it false owns the matching wake.signal().
    std::atomic<bool> asleep{false};
    OpClassCounters responses;
  };

  void kick();  // wake one sleeping engine after a submit
  void engine_main(int engine_id);
  // Lock-free claim: scan instances from the shared round-robin cursor,
  // taking each instance's pop side via its claim flag (skip on
  // contention). Returns false when every ring is empty or contended.
  bool claim_request(CryptoRequest* out, CryptoInstance** from);
  void serve(EngineSlot& slot, CryptoRequest& req, CryptoInstance* from);

  DeviceConfig config_;
  int id_;

  std::atomic<bool> stopping_{false};
  alignas(kCacheLine) std::atomic<size_t> rr_cursor_{0};
  alignas(kCacheLine) std::atomic<size_t> wake_cursor_{0};

  // Instance slots are pre-sized to the endpoint limit so engines can scan
  // them without synchronizing against reallocation; `num_instances_` is
  // the release-published count. The mutex covers allocation only.
  std::mutex alloc_mutex_;
  std::vector<std::unique_ptr<CryptoInstance>> instances_;
  std::atomic<size_t> num_instances_{0};

  std::vector<std::unique_ptr<EngineSlot>> engine_slots_;
  std::vector<std::thread> engines_;
  std::atomic<int> busy_{0};
};

// The whole accelerator card (e.g. one DH8970 = three endpoints).
class QatDevice {
 public:
  explicit QatDevice(const DeviceConfig& config = {});

  // Allocates instances round-robin across endpoints, the way the paper's
  // evaluation distributes Nginx workers' instances evenly (§5.1).
  CryptoInstance* allocate_instance();

  QatEndpoint& endpoint(int i) { return *endpoints_[static_cast<size_t>(i)]; }
  int num_endpoints() const { return static_cast<int>(endpoints_.size()); }

  // Aggregated fw_counters across endpoints.
  FwCounters fw_counters() const;

  // Card-wide queue depth (submitted, not yet retrieved). The topology
  // balancer reads this to spill placements away from saturated devices.
  size_t inflight() const;

 private:
  DeviceConfig config_;
  std::vector<std::unique_ptr<QatEndpoint>> endpoints_;
  std::atomic<size_t> next_endpoint_{0};
};

}  // namespace qtls::qat
