// QAT device model (paper §2.3, Figure 2): a device hosts several endpoints;
// each endpoint owns parallel computation engines and hardware-assisted
// request/response ring pairs grouped into crypto instances. Software writes
// requests onto a request ring and reads responses back from a response
// ring; the hardware load-balances requests from all rings across all
// engines; response availability is indicated by polling.
//
// This is the real-time backend: engines are worker threads that execute
// the request's `compute` closure (real crypto). The virtual-time backend
// for the figure benches lives in src/sim/ and shares the service-time
// model (qat/service_time.h).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/spsc_ring.h"
#include "common/status.h"
#include "qat/api.h"

namespace qtls::qat {

// Response availability can be indicated using either interrupt or polling
// (paper §2.3). QTLS selects polling (§3.3: one userspace polling operation
// costs far less than one kernel interrupt); the interrupt mode is kept as
// the foil — the callback fires from the engine thread, the way a kernel
// interrupt handler would preempt, so callbacks must be thread-safe (the
// FD-based notification channel is; the kernel-bypass queue is not).
enum class ResponseDelivery : uint8_t { kPolled, kInterrupt };

struct DeviceConfig {
  int num_endpoints = 3;          // DH8970: three independent endpoints
  int engines_per_endpoint = 12;  // parallel computation engines
  size_t ring_capacity = 64;      // per-instance request ring slots
  int max_instances_per_endpoint = 48;
  ResponseDelivery delivery = ResponseDelivery::kPolled;
  // Optional extra service delay (busy wait, nanoseconds) added on the
  // engine to emulate device latency in integration tests. 0 = compute time
  // only.
  uint64_t extra_service_ns = 0;
};

class QatEndpoint;

// A crypto instance: the logical unit assigned to one process/thread. The
// submit side is wait-free (SPSC ring push). poll() drains the response
// queue and runs callbacks in the caller's context.
class CryptoInstance {
 public:
  CryptoInstance(QatEndpoint* endpoint, int id, size_t ring_capacity);

  // Non-blocking submit. Returns false when the request ring is full — the
  // caller is expected to pause the offload job and retry later (§3.2).
  bool submit(CryptoRequest req);

  // Retrieve up to `max` responses, invoking each request's callback.
  // Returns the number retrieved.
  size_t poll(size_t max = static_cast<size_t>(-1));

  // Submitted but not yet retrieved (includes requests in service).
  size_t inflight() const { return inflight_.load(std::memory_order_acquire); }

  int id() const { return id_; }
  QatEndpoint* endpoint() const { return endpoint_; }

 private:
  friend class QatEndpoint;

  QatEndpoint* endpoint_;
  int id_;
  SpscRing<CryptoRequest> request_ring_;
  // Responses come from multiple engine threads: mutex-guarded queue.
  std::mutex response_mutex_;
  std::deque<std::pair<CryptoResponse, ResponseCallback>> responses_;
  std::atomic<size_t> inflight_{0};
};

// Firmware counters, readable like /sys/kernel/debug/qat*/fw_counters.
struct FwCounters {
  uint64_t requests[kNumOpClasses] = {0, 0, 0};
  uint64_t responses[kNumOpClasses] = {0, 0, 0};
  uint64_t total_requests() const {
    return requests[0] + requests[1] + requests[2];
  }
  std::string to_string() const;
};

class QatEndpoint {
 public:
  QatEndpoint(const DeviceConfig& config, int id);
  ~QatEndpoint();

  QatEndpoint(const QatEndpoint&) = delete;
  QatEndpoint& operator=(const QatEndpoint&) = delete;

  // Allocates a crypto instance; returns nullptr when the endpoint is at
  // its instance limit.
  CryptoInstance* allocate_instance();

  FwCounters fw_counters() const;
  int id() const { return id_; }
  int num_engines() const { return static_cast<int>(engines_.size()); }
  // Engines currently executing a request (for utilization probes).
  int busy_engines() const { return busy_.load(std::memory_order_relaxed); }

 private:
  friend class CryptoInstance;

  void kick();  // wake engines after a submit
  void engine_main(int engine_id);
  // Pops one request from any instance ring, round-robin. Caller holds
  // dispatch_mutex_.
  bool pop_request_locked(CryptoRequest* out, CryptoInstance** from);

  DeviceConfig config_;
  int id_;

  std::mutex dispatch_mutex_;
  std::condition_variable dispatch_cv_;
  bool stopping_ = false;
  size_t rr_cursor_ = 0;

  std::vector<std::unique_ptr<CryptoInstance>> instances_;
  std::vector<std::thread> engines_;
  std::atomic<int> busy_{0};

  mutable std::mutex counter_mutex_;
  FwCounters counters_;
};

// The whole accelerator card (e.g. one DH8970 = three endpoints).
class QatDevice {
 public:
  explicit QatDevice(const DeviceConfig& config = {});

  // Allocates instances round-robin across endpoints, the way the paper's
  // evaluation distributes Nginx workers' instances evenly (§5.1).
  CryptoInstance* allocate_instance();

  QatEndpoint& endpoint(int i) { return *endpoints_[static_cast<size_t>(i)]; }
  int num_endpoints() const { return static_cast<int>(endpoints_.size()); }

  // Aggregated fw_counters across endpoints.
  FwCounters fw_counters() const;

 private:
  DeviceConfig config_;
  std::vector<std::unique_ptr<QatEndpoint>> endpoints_;
  std::atomic<size_t> next_endpoint_{0};
};

}  // namespace qtls::qat
