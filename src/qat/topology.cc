#include "qat/topology.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "common/log.h"
#include "obs/metrics.h"

namespace qtls::qat {

namespace {
struct TopologyObsCounters {
  obs::Counter hot_remove, re_add, spillover;
  TopologyObsCounters() {
    auto& reg = obs::MetricsRegistry::global();
    hot_remove = reg.counter("qat.topology.hot_remove");
    re_add = reg.counter("qat.topology.re_add");
    spillover = reg.counter("qat.topology.spillover");
  }
};

TopologyObsCounters& obs_counters() {
  static TopologyObsCounters counters;
  return counters;
}
}  // namespace

DeviceTopology::DeviceTopology(TopologyConfig config) : config_(config) {
  const int n = std::max(1, config_.num_devices);
  const int nodes = std::max(1, config_.numa_nodes);
  for (int i = 0; i < n; ++i) {
    auto slot = std::make_unique<Slot>();
    slot->numa_node = i % nodes;
    slot->plan = std::make_unique<FaultPlan>(
        config_.fault_seed ^ (static_cast<uint64_t>(i + 1) *
                              0x9e3779b97f4a7c15ULL));
    DeviceConfig dcfg = config_.device;
    dcfg.fault_plan = slot->plan.get();
    slot->dev = std::make_unique<QatDevice>(dcfg);
    devices_.push_back(std::move(slot));
  }
}

int DeviceTopology::online_devices() const {
  int n = 0;
  for (const auto& d : devices_)
    if (d->online.load(std::memory_order_acquire)) ++n;
  return n;
}

int DeviceTopology::preferred_device(int worker_id, int num_workers) const {
  const int n = num_devices();
  if (n <= 1) return 0;
  const int nodes = std::max(1, config_.numa_nodes);
  if (nodes <= 1 || num_workers <= 0)
    return worker_id % n;
  // Stripe workers across nodes, then across the node's devices: worker w on
  // node w % nodes picks among devices {d : d % nodes == node}, rotating by
  // how many co-node workers precede it.
  const int node = worker_id % nodes;
  std::vector<int> node_devices;
  for (int d = 0; d < n; ++d)
    if (d % nodes == node) node_devices.push_back(d);
  if (node_devices.empty()) return worker_id % n;  // node without a card
  const int rank = worker_id / nodes;  // position among the node's workers
  return node_devices[static_cast<size_t>(rank) % node_devices.size()];
}

int DeviceTopology::pick_device(int preferred) const {
  const int n = num_devices();
  if (preferred < 0 || preferred >= n) preferred = 0;

  size_t min_depth = std::numeric_limits<size_t>::max();
  int shallowest = -1;
  for (int d = 0; d < n; ++d) {
    if (!online(d)) continue;
    const size_t depth = queue_depth(d);
    if (depth < min_depth) {
      min_depth = depth;
      shallowest = d;
    }
  }
  if (shallowest < 0) return -1;  // every device offline
  if (!online(preferred)) return shallowest;
  if (queue_depth(preferred) > min_depth + config_.spill_threshold) {
    obs_counters().spillover.inc();
    return shallowest;
  }
  return preferred;
}

std::vector<DeviceTopology::Placement> DeviceTopology::allocate_for_worker(
    int worker_id, int num_workers, int count) {
  std::vector<Placement> out;
  const int preferred = preferred_device(worker_id, num_workers);
  for (int k = 0; k < count; ++k) {
    int dev = pick_device(preferred);
    if (dev < 0) break;
    CryptoInstance* inst = devices_[static_cast<size_t>(dev)]->dev
                               ->allocate_instance();
    if (!inst) {
      // Affine device out of instance slots: spill to any online device
      // that still has one.
      for (int d = 0; d < num_devices() && !inst; ++d) {
        if (!online(d) || d == dev) continue;
        inst = devices_[static_cast<size_t>(d)]->dev->allocate_instance();
        if (inst) dev = d;
      }
      if (!inst) break;  // fleet exhausted
    }
    devices_[static_cast<size_t>(dev)]->instances.fetch_add(
        1, std::memory_order_relaxed);
    out.push_back(Placement{inst, dev});
  }
  return out;
}

bool DeviceTopology::hot_remove(int i) {
  Slot& slot = *devices_[static_cast<size_t>(i)];
  bool expected = true;
  if (!slot.online.compare_exchange_strong(expected, false,
                                           std::memory_order_acq_rel))
    return false;
  // The reset latch fails every op at the service point with kDeviceReset
  // from here on — including requests already sitting in rings, so the
  // in-flight population drains through error responses, not silence.
  slot.plan->trigger_reset();
  generation_.fetch_add(1, std::memory_order_acq_rel);
  hot_removes_.fetch_add(1, std::memory_order_relaxed);
  obs_counters().hot_remove.inc();
  QTLS_WARN << "qat topology: device " << i << " hot-removed";
  return true;
}

bool DeviceTopology::re_add(int i) {
  Slot& slot = *devices_[static_cast<size_t>(i)];
  bool expected = false;
  if (!slot.online.compare_exchange_strong(expected, true,
                                           std::memory_order_acq_rel))
    return false;
  slot.plan->clear_reset();
  generation_.fetch_add(1, std::memory_order_acq_rel);
  re_adds_.fetch_add(1, std::memory_order_relaxed);
  obs_counters().re_add.inc();
  QTLS_INFO << "qat topology: device " << i << " re-added";
  return true;
}

std::vector<TopologyDeviceStats> DeviceTopology::stats() const {
  std::vector<TopologyDeviceStats> out;
  const uint64_t gen = generation();
  for (int i = 0; i < num_devices(); ++i) {
    const Slot& slot = *devices_[static_cast<size_t>(i)];
    TopologyDeviceStats s;
    s.id = i;
    s.numa_node = slot.numa_node;
    s.online = slot.online.load(std::memory_order_acquire);
    s.generation = gen;
    s.queue_depth = slot.dev->inflight();
    s.instances_allocated = slot.instances.load(std::memory_order_relaxed);
    const FwCounters fw = slot.dev->fw_counters();
    s.requests = fw.total_requests();
    s.responses = fw.responses[0] + fw.responses[1] + fw.responses[2];
    out.push_back(s);
  }
  return out;
}

std::string DeviceTopology::stats_json() const {
  std::ostringstream os;
  os << "{\"devices\":" << num_devices()
     << ",\"online\":" << online_devices()
     << ",\"generation\":" << generation()
     << ",\"hot_removes\":" << hot_removes()
     << ",\"re_adds\":" << re_adds() << ",\"device\":[";
  const auto all = stats();
  for (size_t i = 0; i < all.size(); ++i) {
    const TopologyDeviceStats& s = all[i];
    os << (i ? "," : "") << "{\"id\":" << s.id
       << ",\"numa_node\":" << s.numa_node
       << ",\"online\":" << (s.online ? "true" : "false")
       << ",\"queue_depth\":" << s.queue_depth
       << ",\"instances\":" << s.instances_allocated
       << ",\"requests\":" << s.requests
       << ",\"responses\":" << s.responses << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace qtls::qat
