#include "client/https_client.h"
#include <cassert>

#include <chrono>

#include "common/log.h"

namespace qtls::client {

namespace {
uint64_t now_ns() {
  using namespace std::chrono;
  return static_cast<uint64_t>(
      duration_cast<nanoseconds>(steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

HttpsClient::HttpsClient(tls::TlsContext* ctx, ConnectFn connect,
                         ClientOptions options, uint64_t seed)
    : ctx_(ctx),
      connect_(std::move(connect)),
      options_(options),
      rng_(seed) {
  // Clients run their TLS ops synchronously; async client contexts would
  // need the buffers here to be pause-stable.
  assert(!ctx->config().async_mode);
}

HttpsClient::~HttpsClient() = default;

void HttpsClient::open_connection() {
  const int fd = connect_();
  if (fd < 0) {
    ++stats_.errors;
    state_ = State::kIdle;
    return;
  }
  transport_ = std::make_unique<net::SocketTransport>(fd);
  tls_ = std::make_unique<tls::TlsConnection>(ctx_, transport_.get());
  offered_resumption_ = false;
  if (session_.has_value() &&
      rng_.uniform01() >= options_.full_handshake_ratio) {
    tls_->offer_session(*session_);
    offered_resumption_ = true;
    ++stats_.offered;
  }
  state_ = State::kHandshake;
  request_start_ns_ = now_ns();
}

void HttpsClient::fail_connection() {
  ++stats_.errors;
  tls_.reset();
  transport_.reset();
  state_ = State::kIdle;
}

void HttpsClient::finish_request() {
  ++stats_.requests;
  stats_.response_time.record(now_ns() - request_start_ns_);
  if (options_.max_requests > 0 && stats_.requests >= options_.max_requests) {
    (void)tls_->shutdown();
    tls_.reset();
    transport_.reset();
    finished_ = true;
    state_ = State::kClosed;
    return;
  }
  if (options_.keepalive) {
    request_sent_ = false;
    head_parsed_ = false;
    request_start_ns_ = now_ns();
    state_ = State::kSend;
  } else {
    (void)tls_->shutdown();
    tls_.reset();
    transport_.reset();
    state_ = State::kIdle;  // reconnect on the next step
  }
}

bool HttpsClient::step() {
  if (finished_) return false;
  switch (state_) {
    case State::kClosed:
      return false;
    case State::kIdle:
      open_connection();
      return true;
    case State::kHandshake: {
      const tls::TlsResult r = tls_->handshake();
      if (r == tls::TlsResult::kWantRead || r == tls::TlsResult::kWantWrite ||
          r == tls::TlsResult::kWantAsync)
        return true;
      if (r != tls::TlsResult::kOk) {
        fail_connection();
        return true;
      }
      ++stats_.connections;
      stats_.handshake_time.record(now_ns() - request_start_ns_);
      if (tls_->resumed_session()) ++stats_.resumed;
      if (tls_->established_session().has_value())
        session_ = tls_->established_session();
      request_sent_ = false;
      head_parsed_ = false;
      state_ = State::kSend;
      return true;
    }
    case State::kSend: {
      tls::TlsResult r;
      if (!request_sent_) {
        const Bytes request =
            server::build_http_request(options_.path, options_.keepalive);
        request_sent_ = true;
        r = tls_->write(request);
      } else {
        r = tls_->write({});
      }
      if (r == tls::TlsResult::kWantWrite || r == tls::TlsResult::kWantAsync)
        return true;
      if (r != tls::TlsResult::kOk) {
        fail_connection();
        return true;
      }
      rx_buffer_.clear();
      last_body_.clear();
      state_ = State::kRecvHead;
      return true;
    }
    case State::kRecvHead: {
      const tls::TlsResult r = tls_->read(&rx_buffer_);
      if (r == tls::TlsResult::kWantRead || r == tls::TlsResult::kWantAsync)
        return true;
      if (r != tls::TlsResult::kOk) {
        fail_connection();
        return true;
      }
      auto head = server::parse_http_response_head(rx_buffer_);
      if (!head.has_value()) return true;  // header incomplete, keep reading
      if (head->status != 200) {
        fail_connection();
        return true;
      }
      const size_t body_got = rx_buffer_.size() - head->header_bytes;
      stats_.bytes_received += rx_buffer_.size();
      last_body_.assign(rx_buffer_.begin() +
                            static_cast<ptrdiff_t>(head->header_bytes),
                        rx_buffer_.end());
      if (body_got >= head->content_length) {
        finish_request();
        return !finished_;
      }
      body_remaining_ = head->content_length - body_got;
      state_ = State::kRecvBody;
      return true;
    }
    case State::kRecvBody: {
      body_buffer_.clear();
      const tls::TlsResult r = tls_->read(&body_buffer_);
      if (r == tls::TlsResult::kWantRead || r == tls::TlsResult::kWantAsync)
        return true;
      if (r != tls::TlsResult::kOk) {
        fail_connection();
        return true;
      }
      stats_.bytes_received += body_buffer_.size();
      append(last_body_, body_buffer_);
      if (body_buffer_.size() >= body_remaining_) {
        body_remaining_ = 0;
        finish_request();
        return !finished_;
      }
      body_remaining_ -= body_buffer_.size();
      return true;
    }
  }
  return true;
}

ClientStats Pool::aggregate() const {
  ClientStats total;
  for (const auto& c : clients_) {
    const ClientStats& s = c->stats();
    total.connections += s.connections;
    total.offered += s.offered;
    total.resumed += s.resumed;
    total.requests += s.requests;
    total.bytes_received += s.bytes_received;
    total.errors += s.errors;
    total.response_time.merge(s.response_time);
    total.handshake_time.merge(s.handshake_time);
  }
  return total;
}

}  // namespace qtls::client
