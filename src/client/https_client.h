// Event-driven HTTPS load clients — in-process stand-ins for the paper's
// benchmark tools:
//  * s_time-like connection driver: open, full or abbreviated handshake,
//    one small request, close, repeat (CPS measurement; the `reuse` option
//    is the session-offer knob);
//  * ApacheBench-like transfer driver: keepalive connection requesting a
//    fixed object in a loop (throughput / response-time measurement).
//
// Clients are cooperative state machines: step() never blocks, so a test or
// bench can interleave many clients with one or more Workers in one thread.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "common/rng.h"
#include "common/stats.h"
#include "net/socket_transport.h"
#include "server/http.h"
#include "tls/connection.h"

namespace qtls::client {

// Returns a connected fd whose peer end has been handed to a server.
using ConnectFn = std::function<int()>;

struct ClientOptions {
  std::string path = "/index.html";
  bool keepalive = false;     // s_time: one request per connection
  // Fraction of connections performing a full handshake; the rest offer the
  // last established session (paper §5.3's full:abbreviated mix).
  double full_handshake_ratio = 1.0;
  // Stop issuing new requests/connections after this many completions
  // (0 = unlimited; the driver loop decides when to stop).
  uint64_t max_requests = 0;
};

struct ClientStats {
  uint64_t connections = 0;        // completed handshakes
  uint64_t offered = 0;            // connections that offered resumption
  uint64_t resumed = 0;            // offers the server actually accepted
  uint64_t requests = 0;           // completed request/response pairs
  uint64_t bytes_received = 0;
  uint64_t errors = 0;
  LatencyHistogram response_time;   // request -> full response
  LatencyHistogram handshake_time;  // connect -> handshake complete
};

class HttpsClient {
 public:
  HttpsClient(tls::TlsContext* ctx, ConnectFn connect, ClientOptions options,
              uint64_t seed = 1);
  ~HttpsClient();

  // Advance as far as possible without blocking. Returns true while active
  // (false once max_requests reached and the connection is closed).
  bool step();

  const ClientStats& stats() const { return stats_; }
  bool finished() const { return finished_; }
  // Body of the most recently completed response (e.g. the GET /stats JSON).
  const Bytes& last_body() const { return last_body_; }

 private:
  enum class State {
    kIdle,        // no connection
    kHandshake,
    kSend,
    kRecvHead,
    kRecvBody,
    kClosed,
  };

  void open_connection();
  void finish_request();
  void fail_connection();

  tls::TlsContext* ctx_;
  ConnectFn connect_;
  ClientOptions options_;
  Rng rng_;

  State state_ = State::kIdle;
  std::unique_ptr<net::SocketTransport> transport_;
  std::unique_ptr<tls::TlsConnection> tls_;
  std::optional<tls::ClientSession> session_;
  bool offered_resumption_ = false;

  Bytes rx_buffer_;
  Bytes body_buffer_;
  Bytes last_body_;
  size_t body_remaining_ = 0;
  bool head_parsed_ = false;
  bool request_sent_ = false;
  uint64_t request_start_ns_ = 0;

  ClientStats stats_;
  bool finished_ = false;
};

// Convenience: drive a set of clients and a worker until every client
// finishes or the deadline passes. Returns false on deadline.
class Pool {
 public:
  void add(std::unique_ptr<HttpsClient> client) {
    clients_.push_back(std::move(client));
  }
  std::vector<std::unique_ptr<HttpsClient>>& clients() { return clients_; }

  ClientStats aggregate() const;

 private:
  std::vector<std::unique_ptr<HttpsClient>> clients_;
};

}  // namespace qtls::client
