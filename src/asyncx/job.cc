#include "asyncx/job.h"

#include <atomic>
#include <cassert>

#include "common/log.h"

namespace qtls::asyncx {

namespace {

std::atomic<uint64_t> g_context_swaps{0};

// Per-thread state: current running job + pool of recycled jobs.
thread_local AsyncJob* t_current_job = nullptr;
thread_local std::vector<std::unique_ptr<AsyncJob>> t_pool;

std::unique_ptr<AsyncJob> acquire_job() {
  if (!t_pool.empty()) {
    auto job = std::move(t_pool.back());
    t_pool.pop_back();
    return job;
  }
  return std::make_unique<AsyncJob>();
}

void release_job(std::unique_ptr<AsyncJob> job) {
  constexpr size_t kMaxPooled = 1024;
  job->recycle();  // keeps the stack allocation alive for reuse
  if (t_pool.size() < kMaxPooled) t_pool.push_back(std::move(job));
}

}  // namespace

AsyncJob::AsyncJob() : stack_(new uint8_t[kStackSize]) {}

uint64_t AsyncJob::total_context_swaps() {
  return g_context_swaps.load(std::memory_order_relaxed);
}

void AsyncJob::trampoline() {
  AsyncJob* job = t_current_job;
  assert(job != nullptr);
  job->ret_ = job->fn_ ? job->fn_() : 0;
  job->finished_ = true;
  // Fall through: uc_link returns to caller_ctx_.
}

JobStatus start_job(AsyncJob** job, WaitCtx* wait_ctx, int* ret,
                    std::function<int()> fn) {
  assert(t_current_job == nullptr && "nested async jobs are not supported");

  AsyncJob* j = *job;
  if (j == nullptr) {
    // New job: arm a fresh fiber context.
    auto owned = acquire_job();
    j = owned.release();
    j->fn_ = std::move(fn);
    j->wait_ctx_ = wait_ctx;
    j->finished_ = false;
    j->entered_ = true;
    if (getcontext(&j->job_ctx_) != 0) {
      release_job(std::unique_ptr<AsyncJob>(j));
      return JobStatus::kError;
    }
    j->job_ctx_.uc_stack.ss_sp = j->stack_.get();
    j->job_ctx_.uc_stack.ss_size = AsyncJob::kStackSize;
    j->job_ctx_.uc_link = &j->caller_ctx_;
    makecontext(&j->job_ctx_, reinterpret_cast<void (*)()>(&AsyncJob::trampoline), 0);
  } else {
    // Resuming: the paused fiber jumps straight to its pause point.
    assert(!j->finished_);
    j->wait_ctx_ = wait_ctx ? wait_ctx : j->wait_ctx_;
  }

  t_current_job = j;
  g_context_swaps.fetch_add(1, std::memory_order_relaxed);
  swapcontext(&j->caller_ctx_, &j->job_ctx_);  // run/resume the fiber
  t_current_job = nullptr;

  if (j->finished_) {
    if (ret) *ret = j->ret_;
    *job = nullptr;
    release_job(std::unique_ptr<AsyncJob>(j));
    return JobStatus::kFinished;
  }
  *job = j;
  return JobStatus::kPaused;
}

void pause_job() {
  AsyncJob* j = t_current_job;
  assert(j != nullptr && "pause_job outside an async job");
  g_context_swaps.fetch_add(1, std::memory_order_relaxed);
  swapcontext(&j->job_ctx_, &j->caller_ctx_);
}

AsyncJob* get_current_job() { return t_current_job; }

size_t pooled_jobs() { return t_pool.size(); }

}  // namespace qtls::asyncx
