// Wait context attached to an async job — the reproduction of OpenSSL's
// ASYNC_WAIT_CTX as the paper extends it (§4.4):
//  * FD-based notification: a notification FD (eventfd) the application adds
//    to its I/O multiplexing set; the response callback signals it.
//  * Kernel-bypass notification: `callback` + `callback_arg` members (the
//    paper's new OpenSSL APIs SSL_set_async_callback /
//    ASYNC_WAIT_CTX_get_callback) so the QAT response callback can deliver
//    the async event by direct function call, no kernel transition.
#pragma once

#include <cstdint>
#include <functional>

namespace qtls::asyncx {

using NotifyCallback = void (*)(void* arg);

class WaitCtx {
 public:
  WaitCtx() = default;
  ~WaitCtx();

  WaitCtx(const WaitCtx&) = delete;
  WaitCtx& operator=(const WaitCtx&) = delete;

  // --- FD-based notification -------------------------------------------
  // Lazily creates the notification eventfd (the §4.4 optimization: one FD
  // shared across all async jobs of a TLS connection).
  int ensure_fd();
  int fd() const { return fd_; }
  bool has_fd() const { return fd_ >= 0; }
  // Signal from the response callback: makes the FD readable.
  void signal_fd();
  // Drain pending signals (application side, after epoll reports readable).
  void clear_fd();

  // --- Kernel-bypass notification --------------------------------------
  void set_callback(NotifyCallback cb, void* arg) {
    callback_ = cb;
    callback_arg_ = arg;
  }
  NotifyCallback callback() const { return callback_; }
  void* callback_arg() const { return callback_arg_; }
  bool has_callback() const { return callback_ != nullptr; }

  // Dispatch one async event through whichever scheme is configured:
  // callback if set (kernel-bypass), else FD signal if set, else no-op.
  // Returns true if a notification was delivered.
  bool notify();

 private:
  int fd_ = -1;
  NotifyCallback callback_ = nullptr;
  void* callback_arg_ = nullptr;
};

}  // namespace qtls::asyncx
