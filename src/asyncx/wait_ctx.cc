#include "asyncx/wait_ctx.h"

#include <sys/eventfd.h>
#include <unistd.h>

#include <cstdint>

#include "common/log.h"

namespace qtls::asyncx {

WaitCtx::~WaitCtx() {
  if (fd_ >= 0) ::close(fd_);
}

int WaitCtx::ensure_fd() {
  if (fd_ < 0) {
    fd_ = ::eventfd(0, EFD_NONBLOCK);
    if (fd_ < 0) QTLS_ERROR << "eventfd failed";
  }
  return fd_;
}

void WaitCtx::signal_fd() {
  if (fd_ < 0) return;
  const uint64_t one = 1;
  // The write enters the kernel — this is exactly the cost the
  // kernel-bypass scheme removes.
  [[maybe_unused]] ssize_t n = ::write(fd_, &one, sizeof(one));
}

void WaitCtx::clear_fd() {
  if (fd_ < 0) return;
  uint64_t value = 0;
  [[maybe_unused]] ssize_t n = ::read(fd_, &value, sizeof(value));
}

bool WaitCtx::notify() {
  if (callback_) {
    callback_(callback_arg_);
    return true;
  }
  if (fd_ >= 0) {
    signal_fd();
    return true;
  }
  return false;
}

}  // namespace qtls::asyncx
