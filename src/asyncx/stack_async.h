// Stack async — the paper's first-generation §4.1 implementation: instead of
// a fiber, the crypto call site carries an explicit state flag and the
// normal program sequence is re-entered and carefully skipped around.
//
//   state kIdle     : first call — submit the crypto request, flag kInflight,
//                     return "paused" to the caller.
//   state kInflight : response not yet retrieved — still paused.
//   state kReady    : response retrieved — jump over the submission and
//                     consume the result; flag returns to kIdle.
//   state kRetry    : the submission failed (ring full) — re-enter to
//                     resubmit.
//
// This is the intrusive variant the OpenSSL community rejected in favour of
// fiber async; we keep both, as the paper does, and benchmark the switch
// cost difference in bench/micro_async.
#pragma once

#include <optional>
#include <utility>

namespace qtls::asyncx {

enum class StackAsyncState { kIdle, kInflight, kReady, kRetry };

// One in-flight operation slot with a typed result. The TLS layer embeds one
// per connection (each connection has at most one async crypto op at a time,
// paper §3.3).
template <typename T>
class StackAsyncSlot {
 public:
  StackAsyncState state() const { return state_; }
  bool idle() const { return state_ == StackAsyncState::kIdle; }
  bool inflight() const { return state_ == StackAsyncState::kInflight; }
  bool ready() const { return state_ == StackAsyncState::kReady; }
  bool want_retry() const { return state_ == StackAsyncState::kRetry; }

  // Submission succeeded: mark inflight.
  void mark_inflight() { state_ = StackAsyncState::kInflight; }
  // Submission failed (e.g. QAT request ring full): mark for retry.
  void mark_retry() { state_ = StackAsyncState::kRetry; }
  // Response callback stores the result and flips the flag to ready.
  void complete(T result) {
    result_ = std::move(result);
    state_ = StackAsyncState::kReady;
  }
  // Consume the result; resets to idle. Precondition: ready().
  T take() {
    T out = std::move(*result_);
    result_.reset();
    state_ = StackAsyncState::kIdle;
    return out;
  }
  void reset() {
    result_.reset();
    state_ = StackAsyncState::kIdle;
  }

 private:
  StackAsyncState state_ = StackAsyncState::kIdle;
  std::optional<T> result_;
};

}  // namespace qtls::asyncx
