// Fiber async jobs — the paper's §4.1 "fiber async" implementation, the one
// adopted by OpenSSL 1.1.0 (ASYNC_start_job / ASYNC_pause_job /
// ASYNC_get_current_job), rebuilt on ucontext.
//
// Protocol (mirrors OpenSSL):
//   AsyncJob* job = nullptr;
//   switch (start_job(&job, &wait_ctx, &ret, fn)) {
//     case JobStatus::kFinished: // fn ran to completion; ret is its result,
//                                // job reset to nullptr
//     case JobStatus::kPaused:   // fn called pause_job(); keep `job` and
//                                // call start_job again later to resume at
//                                // the pause point
//     case JobStatus::kError:    // could not allocate a job
//   }
// Inside fn (any call depth): get_current_job() identifies the async
// context, pause_job() swaps back to the caller.
//
// Jobs are recycled through a per-thread pool: fiber creation costs a stack
// allocation, so steady-state handshakes reuse stacks (same reason OpenSSL
// pools ASYNC_JOBs).
#pragma once

#include <ucontext.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "asyncx/wait_ctx.h"

namespace qtls::asyncx {

enum class JobStatus { kFinished, kPaused, kError };

class AsyncJob {
 public:
  static constexpr size_t kStackSize = 256 * 1024;

  AsyncJob();

  WaitCtx* wait_ctx() const { return wait_ctx_; }
  int ret() const { return ret_; }

  // Diagnostic counters.
  static uint64_t total_context_swaps();

  // Internal: clears per-run state while keeping the stack allocation so the
  // per-thread pool reuses it. Called by the pool, not by users.
  void recycle() {
    fn_ = nullptr;
    wait_ctx_ = nullptr;
    ret_ = 0;
    finished_ = true;
    entered_ = false;
  }

 private:
  friend JobStatus start_job(AsyncJob** job, WaitCtx* wait_ctx, int* ret,
                             std::function<int()> fn);
  friend void pause_job();
  friend AsyncJob* get_current_job();
  friend class JobPool;

  static void trampoline();

  ucontext_t job_ctx_{};
  ucontext_t caller_ctx_{};
  std::unique_ptr<uint8_t[]> stack_;
  std::function<int()> fn_;
  WaitCtx* wait_ctx_ = nullptr;
  int ret_ = 0;
  bool finished_ = true;
  bool entered_ = false;  // context ever prepared (stack armed)
};

// OpenSSL-style API. `*job == nullptr` starts a new job, otherwise resumes
// the paused one. On kFinished the job is recycled and *job reset to null.
JobStatus start_job(AsyncJob** job, WaitCtx* wait_ctx, int* ret,
                    std::function<int()> fn);

// Must be called from inside a running job: swaps control back to the
// start_job caller, which observes kPaused.
void pause_job();

// Nullptr when not inside a job — the QAT Engine uses this to decide
// between the sync path and the async offload path (§4.1).
AsyncJob* get_current_job();

// Number of pooled (idle) jobs on this thread, for tests.
size_t pooled_jobs();

}  // namespace qtls::asyncx
