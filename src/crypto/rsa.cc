#include "crypto/rsa.h"

#include <sstream>

#include "crypto/kdf.h"
#include "crypto/primes.h"

namespace qtls {

void RsaPublicKey::precompute() {
  if (!mont_n && n.is_odd()) mont_n = std::make_shared<const MontCtx>(n);
}

void RsaPrivateKey::precompute() {
  pub.precompute();
  if (!mont_p && p.is_odd()) mont_p = std::make_shared<const MontCtx>(p);
  if (!mont_q && q.is_odd()) mont_q = std::make_shared<const MontCtx>(q);
}

RsaPrivateKey rsa_generate(size_t modulus_bits, HmacDrbg& rng) {
  const Bignum e(65537);
  for (;;) {
    Bignum p = generate_prime(modulus_bits / 2, rng);
    Bignum q = generate_prime(modulus_bits - modulus_bits / 2, rng);
    if (p == q) continue;
    if (Bignum::cmp(p, q) < 0) std::swap(p, q);

    const Bignum p1 = Bignum::sub(p, Bignum(1));
    const Bignum q1 = Bignum::sub(q, Bignum(1));
    const Bignum phi = Bignum::mul(p1, q1);
    if (!Bignum::gcd(e, phi).is_one()) continue;

    RsaPrivateKey key;
    key.pub.n = Bignum::mul(p, q);
    key.pub.e = e;
    key.d = Bignum::mod_inverse(e, phi);
    key.p = p;
    key.q = q;
    key.dp = Bignum::mod(key.d, p1);
    key.dq = Bignum::mod(key.d, q1);
    key.qinv = Bignum::mod_inverse(q, p);
    if (key.pub.n.bit_length() != modulus_bits) continue;
    key.precompute();
    return key;
  }
}

Bignum rsa_public_op(const RsaPublicKey& key, const Bignum& m) {
  if (key.mont_n) return key.mont_n->exp(m, key.e);
  return Bignum::mod_exp(m, key.e, key.n);
}

Bignum rsa_private_op(const RsaPrivateKey& key, const Bignum& c) {
  // CRT: m1 = c^dp mod p, m2 = c^dq mod q, h = qinv (m1 - m2) mod p,
  // m = m2 + h q.
  const Bignum m1 = key.mont_p ? key.mont_p->exp(c, key.dp)
                               : Bignum::mod_exp(c, key.dp, key.p);
  const Bignum m2 = key.mont_q ? key.mont_q->exp(c, key.dq)
                               : Bignum::mod_exp(c, key.dq, key.q);
  const Bignum diff = Bignum::mod_sub(m1, m2, key.p);
  const Bignum h = Bignum::mod_mul(key.qinv, diff, key.p);
  return Bignum::add(m2, Bignum::mul(h, key.q));
}

namespace {

// EMSA-PKCS1-v1_5: 0x00 0x01 FF..FF 0x00 digest
Result<Bytes> pkcs1_pad_type1(BytesView digest, size_t k) {
  if (digest.size() + 11 > k)
    return err(Code::kInvalidArgument, "digest too long for modulus");
  Bytes em(k, 0xff);
  em[0] = 0x00;
  em[1] = 0x01;
  em[k - digest.size() - 1] = 0x00;
  std::copy(digest.begin(), digest.end(), em.end() - static_cast<ptrdiff_t>(digest.size()));
  return em;
}

}  // namespace

Bytes rsa_sign_pkcs1(const RsaPrivateKey& key, BytesView digest) {
  const size_t k = key.modulus_bytes();
  auto em = pkcs1_pad_type1(digest, k);
  if (!em.is_ok()) return {};
  const Bignum m = Bignum::from_bytes_be(em.value());
  const Bignum s = rsa_private_op(key, m);
  return s.to_bytes_be(k);
}

Status rsa_verify_pkcs1(const RsaPublicKey& key, BytesView digest,
                        BytesView signature) {
  const size_t k = key.modulus_bytes();
  if (signature.size() != k)
    return err(Code::kCryptoError, "bad signature length");
  const Bignum s = Bignum::from_bytes_be(signature);
  if (Bignum::cmp(s, key.n) >= 0)
    return err(Code::kCryptoError, "signature out of range");
  const Bignum m = rsa_public_op(key, s);
  auto em = pkcs1_pad_type1(digest, k);
  if (!em.is_ok()) return em.status();
  if (!ct_equal(m.to_bytes_be(k), em.value()))
    return err(Code::kCryptoError, "signature mismatch");
  return Status::ok();
}

Result<Bytes> rsa_encrypt_pkcs1(const RsaPublicKey& key, BytesView msg,
                                HmacDrbg& rng) {
  const size_t k = key.modulus_bytes();
  if (msg.size() + 11 > k)
    return err(Code::kInvalidArgument, "message too long for modulus");
  // EME-PKCS1-v1_5: 0x00 0x02 PS(nonzero) 0x00 msg
  Bytes em(k);
  em[0] = 0x00;
  em[1] = 0x02;
  const size_t ps_len = k - msg.size() - 3;
  for (size_t i = 0; i < ps_len; ++i) {
    uint8_t b = 0;
    while (b == 0) rng.generate(&b, 1);
    em[2 + i] = b;
  }
  em[2 + ps_len] = 0x00;
  std::copy(msg.begin(), msg.end(), em.begin() + static_cast<ptrdiff_t>(3 + ps_len));
  const Bignum m = Bignum::from_bytes_be(em);
  return rsa_public_op(key, m).to_bytes_be(k);
}

Result<Bytes> rsa_decrypt_pkcs1(const RsaPrivateKey& key,
                                BytesView ciphertext) {
  const size_t k = key.modulus_bytes();
  if (ciphertext.size() != k)
    return err(Code::kCryptoError, "bad ciphertext length");
  const Bignum c = Bignum::from_bytes_be(ciphertext);
  if (Bignum::cmp(c, key.pub.n) >= 0)
    return err(Code::kCryptoError, "ciphertext out of range");
  const Bytes em = rsa_private_op(key, c).to_bytes_be(k);
  if (em.size() < 11 || em[0] != 0x00 || em[1] != 0x02)
    return err(Code::kCryptoError, "bad padding header");
  size_t sep = 0;
  for (size_t i = 2; i < em.size(); ++i) {
    if (em[i] == 0x00) {
      sep = i;
      break;
    }
  }
  if (sep < 10) return err(Code::kCryptoError, "bad padding");
  return Bytes(em.begin() + static_cast<ptrdiff_t>(sep + 1), em.end());
}

std::string RsaPrivateKey::serialize() const {
  std::ostringstream os;
  os << "n=" << pub.n.to_hex() << "\n";
  os << "e=" << pub.e.to_hex() << "\n";
  os << "d=" << d.to_hex() << "\n";
  os << "p=" << p.to_hex() << "\n";
  os << "q=" << q.to_hex() << "\n";
  os << "dp=" << dp.to_hex() << "\n";
  os << "dq=" << dq.to_hex() << "\n";
  os << "qinv=" << qinv.to_hex() << "\n";
  return os.str();
}

Result<RsaPrivateKey> RsaPrivateKey::deserialize(const std::string& text) {
  RsaPrivateKey key;
  std::istringstream is(text);
  std::string line;
  int fields = 0;
  while (std::getline(is, line)) {
    const size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    const std::string name = line.substr(0, eq);
    const Bignum value = Bignum::from_hex(line.substr(eq + 1));
    ++fields;
    if (name == "n") key.pub.n = value;
    else if (name == "e") key.pub.e = value;
    else if (name == "d") key.d = value;
    else if (name == "p") key.p = value;
    else if (name == "q") key.q = value;
    else if (name == "dp") key.dp = value;
    else if (name == "dq") key.dq = value;
    else if (name == "qinv") key.qinv = value;
    else --fields;
  }
  if (fields != 8) return err(Code::kInvalidArgument, "missing RSA fields");
  key.precompute();
  return key;
}

}  // namespace qtls
