// Arbitrary-precision unsigned integers for the crypto substrate.
//
// Representation: little-endian vector of 64-bit limbs, normalized so the
// most significant limb is nonzero (zero is the empty vector). All values
// are non-negative; the one algorithm that needs signed intermediates
// (extended gcd for modular inverse) handles sign locally.
//
// This is functional cryptography, not side-channel hardened (see
// DESIGN.md §6): branches and early exits depend on values. Performance is
// adequate for the real-execution plane (RSA-2048 sign in the low
// milliseconds); the figure benches charge calibrated costs instead.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace qtls {

struct BnDivMod;

class Bignum {
 public:
  Bignum() = default;
  explicit Bignum(uint64_t v) {
    if (v != 0) limbs_.push_back(v);
  }

  static Bignum from_bytes_be(BytesView bytes);
  static Bignum from_hex(const std::string& hex);

  // Big-endian, padded with leading zeros to `width` (0 = minimal, at least
  // one byte).
  Bytes to_bytes_be(size_t width = 0) const;
  std::string to_hex() const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  bool is_one() const { return limbs_.size() == 1 && limbs_[0] == 1; }
  size_t bit_length() const;
  size_t byte_length() const { return (bit_length() + 7) / 8; }
  bool bit(size_t i) const;
  uint64_t low_u64() const { return limbs_.empty() ? 0 : limbs_[0]; }

  size_t limb_count() const { return limbs_.size(); }
  uint64_t limb(size_t i) const { return i < limbs_.size() ? limbs_[i] : 0; }

  // -1 / 0 / +1.
  static int cmp(const Bignum& a, const Bignum& b);
  friend bool operator==(const Bignum& a, const Bignum& b) {
    return cmp(a, b) == 0;
  }
  friend bool operator<(const Bignum& a, const Bignum& b) {
    return cmp(a, b) < 0;
  }
  friend bool operator<=(const Bignum& a, const Bignum& b) {
    return cmp(a, b) <= 0;
  }
  friend bool operator>(const Bignum& a, const Bignum& b) {
    return cmp(a, b) > 0;
  }
  friend bool operator>=(const Bignum& a, const Bignum& b) {
    return cmp(a, b) >= 0;
  }

  static Bignum add(const Bignum& a, const Bignum& b);
  // Requires a >= b.
  static Bignum sub(const Bignum& a, const Bignum& b);
  static Bignum mul(const Bignum& a, const Bignum& b);
  static Bignum sqr(const Bignum& a) { return mul(a, a); }
  static Bignum shl(const Bignum& a, size_t bits);
  static Bignum shr(const Bignum& a, size_t bits);

  // Requires b != 0.
  static BnDivMod divmod(const Bignum& a, const Bignum& b);
  static Bignum mod(const Bignum& a, const Bignum& m);

  static Bignum mod_add(const Bignum& a, const Bignum& b, const Bignum& m);
  static Bignum mod_sub(const Bignum& a, const Bignum& b, const Bignum& m);
  static Bignum mod_mul(const Bignum& a, const Bignum& b, const Bignum& m);
  // a^e mod m; m odd uses Montgomery internally, even m falls back to
  // square-and-multiply with division.
  static Bignum mod_exp(const Bignum& a, const Bignum& e, const Bignum& m);
  // Multiplicative inverse of a mod m; returns zero if gcd(a, m) != 1.
  static Bignum mod_inverse(const Bignum& a, const Bignum& m);
  static Bignum gcd(const Bignum& a, const Bignum& b);

  // In-place helpers used by tight loops.
  void trim();

  std::vector<uint64_t>& limbs() { return limbs_; }
  const std::vector<uint64_t>& limbs() const { return limbs_; }

 private:
  std::vector<uint64_t> limbs_;
};

struct BnDivMod {
  Bignum quotient;
  Bignum remainder;
};

inline Bignum Bignum::mod(const Bignum& a, const Bignum& m) {
  return divmod(a, m).remainder;
}

// Montgomery context for repeated multiplication modulo an odd modulus.
class MontCtx {
 public:
  explicit MontCtx(const Bignum& modulus);

  const Bignum& modulus() const { return n_; }
  size_t limbs() const { return k_; }

  // Conversions to/from the Montgomery domain.
  Bignum to_mont(const Bignum& a) const;
  Bignum from_mont(const Bignum& a) const;

  // (a * b * R^-1) mod n for a, b already in the Montgomery domain.
  Bignum mul(const Bignum& a, const Bignum& b) const;
  // a^e mod n (a in the normal domain; result in the normal domain).
  Bignum exp(const Bignum& a, const Bignum& e) const;
  Bignum one_mont() const { return to_mont(Bignum(1)); }

 private:
  Bignum n_;
  size_t k_;        // limb count of n
  uint64_t n0inv_;  // -n^{-1} mod 2^64
  Bignum rr_;       // R^2 mod n, R = 2^(64k)
};

}  // namespace qtls
