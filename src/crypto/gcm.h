// AES-GCM (NIST SP 800-38D): CTR-mode encryption + GHASH authentication.
// Used as the record protection for the TLS 1.3 path (AES128-GCM-SHA256's
// codepoint), replacing the earlier CBC-HMAC stand-in.
#pragma once

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/aes.h"

namespace qtls {

constexpr size_t kGcmTagSize = 16;
constexpr size_t kGcmNonceSize = 12;

// Seals plaintext: returns ciphertext || 16-byte tag.
Bytes gcm_seal(const Aes& aes, BytesView nonce12, BytesView aad,
               BytesView plaintext);
// Appends ciphertext || tag to *out — the zero-copy path: ciphertext is
// encrypted directly into the output block.
void gcm_seal_into(const Aes& aes, BytesView nonce12, BytesView aad,
                   BytesView plaintext, Bytes* out);
void gcm_seal_into(BytesView key, BytesView nonce12, BytesView aad,
                   BytesView plaintext, Bytes* out);
// Opens ciphertext||tag; fails on authentication mismatch.
Result<Bytes> gcm_open(const Aes& aes, BytesView nonce12, BytesView aad,
                       BytesView ciphertext_and_tag);

// Convenience over raw keys.
Bytes gcm_seal(BytesView key, BytesView nonce12, BytesView aad,
               BytesView plaintext);
Result<Bytes> gcm_open(BytesView key, BytesView nonce12, BytesView aad,
                       BytesView ciphertext_and_tag);

}  // namespace qtls
