// Key-derivation functions:
//  - TLS 1.2 PRF (RFC 5246 §5): P_hash over HMAC, the "PRF ops" of Table 1.
//  - HKDF (RFC 5869) + the TLS 1.3 HkdfLabel expansion (RFC 8446 §7.1) —
//    the paper's §5.2 notes HKDF cannot be offloaded through the QAT Engine,
//    which is why Fig. 8's speedup is lower.
//  - HMAC-DRBG (SP 800-90A) as the stack's random generator.
#pragma once

#include "common/bytes.h"
#include "crypto/hash.h"

namespace qtls {

// TLS 1.2 PRF: PRF(secret, label, seed)[0..out_len).
Bytes tls12_prf(HashAlg alg, BytesView secret, const std::string& label,
                BytesView seed, size_t out_len);

Bytes hkdf_extract(HashAlg alg, BytesView salt, BytesView ikm);
Bytes hkdf_expand(HashAlg alg, BytesView prk, BytesView info, size_t out_len);
// TLS 1.3 HKDF-Expand-Label(secret, label, context, length); the "tls13 "
// prefix is applied internally.
Bytes hkdf_expand_label(HashAlg alg, BytesView secret, const std::string& label,
                        BytesView context, size_t out_len);
// Derive-Secret(secret, label, transcript) = Expand-Label(secret, label,
// Hash(transcript), Hash.length).
Bytes tls13_derive_secret(HashAlg alg, BytesView secret,
                          const std::string& label, BytesView transcript_hash);

// HMAC-DRBG without prediction resistance; reseeding is the caller's job.
class HmacDrbg {
 public:
  explicit HmacDrbg(HashAlg alg, BytesView seed);
  void reseed(BytesView seed);
  void generate(uint8_t* out, size_t n);
  Bytes generate(size_t n);

 private:
  void update(BytesView data);

  HashAlg alg_;
  Bytes k_;
  Bytes v_;
};

}  // namespace qtls
