// Binary-field elliptic curves y^2 + xy = x^3 + a x^2 + b over GF(2^m),
// covering the B-283/B-409 (a=1, pseudo-random b) and K-283/K-409 (Koblitz,
// a=0, b=1) classes of Figure 7c.
//
// Parameter provenance (see DESIGN.md §6): the *fields* are the NIST ones
// (same m, same reduction polynomial — performance is field-determined), but
// generators are derived deterministically by solving the curve equation via
// half-trace rather than copying the NIST base points, and B-curve b values
// are derived from SHA-256 of the curve name. Without the NIST group order
// these curves support key exchange (ECDH needs no order); ECDSA in the TLS
// layer stays on the prime curves.
#pragma once

#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/gf2m.h"

namespace qtls {

class HmacDrbg;

struct Ec2mPoint {
  Gf2mElem x;
  Gf2mElem y;
  bool infinity = true;

  static Ec2mPoint at_infinity() { return Ec2mPoint{}; }
  static Ec2mPoint affine(Gf2mElem px, Gf2mElem py) {
    return Ec2mPoint{px, py, false};
  }
};

class Ec2mCurve {
 public:
  // a must be zero() or one() for the curve classes used here.
  Ec2mCurve(std::string name, const Gf2mField& field, Gf2mElem a, Gf2mElem b);

  const std::string& name() const { return name_; }
  const Gf2mField& field() const { return field_; }
  const Gf2mElem& a() const { return a_; }
  const Gf2mElem& b() const { return b_; }
  const Ec2mPoint& generator() const { return generator_; }
  size_t scalar_bytes() const { return field_.elem_bytes(); }

  bool on_curve(const Ec2mPoint& pt) const;
  Ec2mPoint add(const Ec2mPoint& p1, const Ec2mPoint& p2) const;
  Ec2mPoint dbl(const Ec2mPoint& pt) const;
  Ec2mPoint negate(const Ec2mPoint& pt) const;
  // Scalar multiplication; scalar interpreted as a big-endian integer of up
  // to field-degree bits.
  Ec2mPoint mul(BytesView scalar, const Ec2mPoint& pt) const;
  Ec2mPoint mul_base(BytesView scalar) const { return mul(scalar, generator_); }

  // Solve y for a given x (returns false when x^3+ax^2+b has trace 1).
  bool solve_y(const Gf2mElem& x, Gf2mElem* y) const;

  Bytes encode_point(const Ec2mPoint& pt) const;  // 0x04 || X || Y
  Result<Ec2mPoint> decode_point(BytesView data) const;

 private:
  std::string name_;
  const Gf2mField& field_;
  Gf2mElem a_, b_;
  Ec2mPoint generator_;
};

const Ec2mCurve& curve_b283();
const Ec2mCurve& curve_b409();
const Ec2mCurve& curve_k283();
const Ec2mCurve& curve_k409();

struct Ec2mKeyPair {
  Bytes priv;      // scalar bytes
  Ec2mPoint pub;   // priv * G
};

Ec2mKeyPair ec2m_generate_key(const Ec2mCurve& curve, HmacDrbg& rng);
Result<Bytes> ec2m_shared_secret(const Ec2mCurve& curve, BytesView priv,
                                 const Ec2mPoint& peer);

}  // namespace qtls
