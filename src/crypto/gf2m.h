// GF(2^m) binary-field arithmetic in polynomial basis, backing the binary
// curves of Figure 7c (B-283/B-409/K-283/K-409 class). Elements are bit
// vectors over fixed reduction polynomials (the NIST trinomial/pentanomial
// for each m).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/bytes.h"

namespace qtls {

// Big enough for m = 409 (7 x 64 = 448 bits).
constexpr size_t kGf2mWords = 7;

struct Gf2mElem {
  std::array<uint64_t, kGf2mWords> w{};

  bool is_zero() const {
    for (uint64_t v : w)
      if (v) return false;
    return true;
  }
  bool is_one() const {
    if (w[0] != 1) return false;
    for (size_t i = 1; i < kGf2mWords; ++i)
      if (w[i]) return false;
    return true;
  }
  friend bool operator==(const Gf2mElem& a, const Gf2mElem& b) {
    return a.w == b.w;
  }
  bool bit(size_t i) const { return (w[i / 64] >> (i % 64)) & 1; }
  void set_bit(size_t i) { w[i / 64] |= 1ULL << (i % 64); }
};

class Gf2mField {
 public:
  // exponents: reduction polynomial exponents in decreasing order, e.g.
  // {283, 12, 7, 5, 0} for x^283 + x^12 + x^7 + x^5 + 1.
  explicit Gf2mField(std::vector<int> exponents);

  int degree() const { return m_; }
  size_t elem_bytes() const { return (static_cast<size_t>(m_) + 7) / 8; }

  static Gf2mElem zero() { return Gf2mElem{}; }
  static Gf2mElem one() {
    Gf2mElem e;
    e.w[0] = 1;
    return e;
  }
  static Gf2mElem add(const Gf2mElem& a, const Gf2mElem& b) {
    Gf2mElem out;
    for (size_t i = 0; i < kGf2mWords; ++i) out.w[i] = a.w[i] ^ b.w[i];
    return out;
  }

  Gf2mElem mul(const Gf2mElem& a, const Gf2mElem& b) const;
  Gf2mElem sqr(const Gf2mElem& a) const;
  // Multiplicative inverse; a must be nonzero.
  Gf2mElem inv(const Gf2mElem& a) const;
  Gf2mElem div(const Gf2mElem& a, const Gf2mElem& b) const {
    return mul(a, inv(b));
  }

  // Trace Tr(a) in {0,1}; z^2 + z = c is solvable iff Tr(c) == 0, and for
  // odd m the half-trace gives a solution.
  int trace(const Gf2mElem& a) const;
  Gf2mElem half_trace(const Gf2mElem& a) const;

  Bytes encode(const Gf2mElem& a) const;           // big-endian, elem_bytes
  Gf2mElem decode(BytesView data) const;           // truncates above m bits

  Gf2mElem from_u64(uint64_t v) const {
    Gf2mElem e;
    e.w[0] = v;
    return e;
  }

 private:
  void reduce(std::array<uint64_t, 2 * kGf2mWords>& t) const;

  int m_;
  std::vector<int> exps_;  // excluding the leading m term
};

// Shared field singletons for the two NIST binary field sizes.
const Gf2mField& gf2m_283();  // x^283 + x^12 + x^7 + x^5 + 1
const Gf2mField& gf2m_409();  // x^409 + x^87 + 1

}  // namespace qtls
