#include "crypto/gcm.h"

#include <cstring>

namespace qtls {

namespace {

struct Block {
  uint64_t hi = 0;  // bits 127..64 (big-endian view)
  uint64_t lo = 0;

  static Block from_bytes(const uint8_t* b) {
    Block out;
    for (int i = 0; i < 8; ++i) out.hi = out.hi << 8 | b[i];
    for (int i = 8; i < 16; ++i) out.lo = out.lo << 8 | b[i];
    return out;
  }
  void to_bytes(uint8_t* b) const {
    for (int i = 0; i < 8; ++i) b[i] = static_cast<uint8_t>(hi >> (56 - 8 * i));
    for (int i = 0; i < 8; ++i)
      b[8 + i] = static_cast<uint8_t>(lo >> (56 - 8 * i));
  }
  Block operator^(const Block& o) const { return Block{hi ^ o.hi, lo ^ o.lo}; }
};

// GF(2^128) multiplication per SP 800-38D algorithm 1 (bit-reflected
// convention folded into the shift direction).
Block gf_mult(const Block& x, const Block& y) {
  Block z{0, 0};
  Block v = y;
  for (int i = 0; i < 128; ++i) {
    const uint64_t bit =
        i < 64 ? (x.hi >> (63 - i)) & 1 : (x.lo >> (127 - i)) & 1;
    if (bit) z = z ^ v;
    const bool lsb = v.lo & 1;
    v.lo = (v.lo >> 1) | (v.hi << 63);
    v.hi >>= 1;
    if (lsb) v.hi ^= 0xe100000000000000ULL;  // R = 11100001 || 0^120
  }
  return z;
}

class Ghash {
 public:
  explicit Ghash(const Block& h) : h_(h) {}

  void update(BytesView data) {
    size_t off = 0;
    while (off < data.size()) {
      uint8_t block[16] = {0};
      const size_t take = std::min<size_t>(16, data.size() - off);
      std::memcpy(block, data.data() + off, take);
      absorb(Block::from_bytes(block));
      off += take;
    }
  }

  void absorb(const Block& b) { y_ = gf_mult(y_ ^ b, h_); }
  Block digest() const { return y_; }

 private:
  Block h_;
  Block y_{0, 0};
};

void inc32(uint8_t counter[16]) {
  for (int i = 15; i >= 12; --i) {
    if (++counter[i] != 0) break;
  }
}

// CTR keystream XOR, starting from the given counter block (pre-incremented
// by the caller for the first data block).
void ctr_xor(const Aes& aes, uint8_t counter[16], BytesView in, uint8_t* out) {
  size_t off = 0;
  uint8_t keystream[16];
  while (off < in.size()) {
    inc32(counter);
    aes.encrypt_block(counter, keystream);
    const size_t take = std::min<size_t>(16, in.size() - off);
    for (size_t i = 0; i < take; ++i) out[off + i] = in[off + i] ^ keystream[i];
    off += take;
  }
}

Block compute_tag_block(const Aes& aes, BytesView nonce12, BytesView aad,
                        BytesView ciphertext) {
  // H = AES_K(0^128)
  uint8_t zero[16] = {0};
  uint8_t h_bytes[16];
  aes.encrypt_block(zero, h_bytes);
  const Block h = Block::from_bytes(h_bytes);

  Ghash ghash(h);
  ghash.update(aad);
  ghash.update(ciphertext);
  Block lengths;
  lengths.hi = static_cast<uint64_t>(aad.size()) * 8;
  lengths.lo = static_cast<uint64_t>(ciphertext.size()) * 8;
  ghash.absorb(lengths);
  const Block s = ghash.digest();

  // J0 = nonce || 0^31 || 1 ; tag = AES_K(J0) xor S
  uint8_t j0[16] = {0};
  std::memcpy(j0, nonce12.data(), kGcmNonceSize);
  j0[15] = 1;
  uint8_t ej0[16];
  aes.encrypt_block(j0, ej0);
  return Block::from_bytes(ej0) ^ s;
}

}  // namespace

void gcm_seal_into(const Aes& aes, BytesView nonce12, BytesView aad,
                   BytesView plaintext, Bytes* out) {
  const size_t base = out->size();
  out->resize(base + plaintext.size() + kGcmTagSize);
  uint8_t* dst = out->data() + base;
  uint8_t counter[16] = {0};
  std::memcpy(counter, nonce12.data(), kGcmNonceSize);
  counter[15] = 1;  // J0; data blocks start at inc32(J0)
  ctr_xor(aes, counter, plaintext, dst);

  const Block tag =
      compute_tag_block(aes, nonce12, aad, BytesView(dst, plaintext.size()));
  tag.to_bytes(dst + plaintext.size());
}

Bytes gcm_seal(const Aes& aes, BytesView nonce12, BytesView aad,
               BytesView plaintext) {
  Bytes out;
  gcm_seal_into(aes, nonce12, aad, plaintext, &out);
  return out;
}

Result<Bytes> gcm_open(const Aes& aes, BytesView nonce12, BytesView aad,
                       BytesView ciphertext_and_tag) {
  if (ciphertext_and_tag.size() < kGcmTagSize)
    return err(Code::kCryptoError, "GCM input shorter than the tag");
  const size_t ct_len = ciphertext_and_tag.size() - kGcmTagSize;
  BytesView ciphertext = ciphertext_and_tag.subspan(0, ct_len);
  BytesView tag = ciphertext_and_tag.subspan(ct_len);

  const Block expect = compute_tag_block(aes, nonce12, aad, ciphertext);
  uint8_t expect_bytes[16];
  expect.to_bytes(expect_bytes);
  if (!ct_equal(BytesView(expect_bytes, kGcmTagSize), tag))
    return err(Code::kCryptoError, "GCM tag mismatch");

  Bytes out(ct_len);
  uint8_t counter[16] = {0};
  std::memcpy(counter, nonce12.data(), kGcmNonceSize);
  counter[15] = 1;
  ctr_xor(aes, counter, ciphertext, out.data());
  return out;
}

Bytes gcm_seal(BytesView key, BytesView nonce12, BytesView aad,
               BytesView plaintext) {
  Aes aes(key);
  return gcm_seal(aes, nonce12, aad, plaintext);
}

void gcm_seal_into(BytesView key, BytesView nonce12, BytesView aad,
                   BytesView plaintext, Bytes* out) {
  Aes aes(key);
  gcm_seal_into(aes, nonce12, aad, plaintext, out);
}

Result<Bytes> gcm_open(BytesView key, BytesView nonce12, BytesView aad,
                       BytesView ciphertext_and_tag) {
  Aes aes(key);
  return gcm_open(aes, nonce12, aad, ciphertext_and_tag);
}

}  // namespace qtls
