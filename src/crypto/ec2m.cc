#include "crypto/ec2m.h"

#include <stdexcept>

#include "crypto/hash.h"
#include "crypto/kdf.h"

namespace qtls {

namespace {

// Deterministic non-zero field element from a seed string.
Gf2mElem derive_elem(const Gf2mField& field, const std::string& seed) {
  for (uint32_t counter = 0;; ++counter) {
    Bytes input = to_bytes(seed);
    append_u32(input, counter);
    Bytes digest;
    while (digest.size() < field.elem_bytes()) {
      Bytes block = sha256(input);
      append(digest, block);
      input = block;
    }
    digest.resize(field.elem_bytes());
    Gf2mElem e = field.decode(digest);
    if (!e.is_zero()) return e;
  }
}

}  // namespace

Ec2mCurve::Ec2mCurve(std::string name, const Gf2mField& field, Gf2mElem a,
                     Gf2mElem b)
    : name_(std::move(name)), field_(field), a_(a), b_(b) {
  if (b_.is_zero()) throw std::invalid_argument("singular binary curve");
  // Derive a generator: walk deterministic x candidates until the curve
  // equation is solvable, then take (x, y).
  for (uint32_t counter = 0;; ++counter) {
    Gf2mElem x = derive_elem(field_, name_ + "-gen-" + std::to_string(counter));
    Gf2mElem y;
    if (!solve_y(x, &y)) continue;
    generator_ = Ec2mPoint::affine(x, y);
    if (on_curve(generator_)) break;
  }
}

bool Ec2mCurve::on_curve(const Ec2mPoint& pt) const {
  if (pt.infinity) return true;
  // y^2 + xy == x^3 + a x^2 + b
  const Gf2mElem y2 = field_.sqr(pt.y);
  const Gf2mElem xy = field_.mul(pt.x, pt.y);
  const Gf2mElem lhs = Gf2mField::add(y2, xy);
  const Gf2mElem x2 = field_.sqr(pt.x);
  const Gf2mElem x3 = field_.mul(x2, pt.x);
  Gf2mElem rhs = Gf2mField::add(x3, b_);
  if (!a_.is_zero()) rhs = Gf2mField::add(rhs, field_.mul(a_, x2));
  return lhs == rhs;
}

Ec2mPoint Ec2mCurve::negate(const Ec2mPoint& pt) const {
  if (pt.infinity) return pt;
  return Ec2mPoint::affine(pt.x, Gf2mField::add(pt.x, pt.y));
}

Ec2mPoint Ec2mCurve::dbl(const Ec2mPoint& pt) const {
  if (pt.infinity || pt.x.is_zero()) return Ec2mPoint::at_infinity();
  // lambda = x + y/x; x3 = lambda^2 + lambda + a; y3 = x^2 + (lambda+1)*x3
  const Gf2mElem lambda =
      Gf2mField::add(pt.x, field_.div(pt.y, pt.x));
  Gf2mElem x3 = Gf2mField::add(field_.sqr(lambda), lambda);
  x3 = Gf2mField::add(x3, a_);
  const Gf2mElem lp1 = Gf2mField::add(lambda, Gf2mField::one());
  const Gf2mElem y3 = Gf2mField::add(field_.sqr(pt.x), field_.mul(lp1, x3));
  return Ec2mPoint::affine(x3, y3);
}

Ec2mPoint Ec2mCurve::add(const Ec2mPoint& p1, const Ec2mPoint& p2) const {
  if (p1.infinity) return p2;
  if (p2.infinity) return p1;
  if (p1.x == p2.x) {
    if (p1.y == p2.y) return dbl(p1);
    return Ec2mPoint::at_infinity();  // P + (-P)
  }
  // lambda = (y1+y2)/(x1+x2)
  const Gf2mElem dx = Gf2mField::add(p1.x, p2.x);
  const Gf2mElem dy = Gf2mField::add(p1.y, p2.y);
  const Gf2mElem lambda = field_.div(dy, dx);
  // x3 = lambda^2 + lambda + x1 + x2 + a
  Gf2mElem x3 = Gf2mField::add(field_.sqr(lambda), lambda);
  x3 = Gf2mField::add(x3, dx);
  x3 = Gf2mField::add(x3, a_);
  // y3 = lambda*(x1 + x3) + x3 + y1
  Gf2mElem y3 = field_.mul(lambda, Gf2mField::add(p1.x, x3));
  y3 = Gf2mField::add(y3, x3);
  y3 = Gf2mField::add(y3, p1.y);
  return Ec2mPoint::affine(x3, y3);
}

Ec2mPoint Ec2mCurve::mul(BytesView scalar, const Ec2mPoint& pt) const {
  Ec2mPoint acc = Ec2mPoint::at_infinity();
  bool started = false;
  for (uint8_t byte : scalar) {
    for (int b = 7; b >= 0; --b) {
      if (started) acc = dbl(acc);
      if ((byte >> b) & 1) {
        acc = add(acc, pt);
        started = true;
      }
    }
  }
  return acc;
}

bool Ec2mCurve::solve_y(const Gf2mElem& x, Gf2mElem* y) const {
  if (x.is_zero()) return false;
  // Substitute y = x*z: z^2 + z = x + a + b/x^2.
  const Gf2mElem x2 = field_.sqr(x);
  Gf2mElem c = Gf2mField::add(x, a_);
  c = Gf2mField::add(c, field_.div(b_, x2));
  if (field_.trace(c) != 0) return false;
  const Gf2mElem z = field_.half_trace(c);
  // Verify (half-trace solves only for odd m; both our fields are odd).
  const Gf2mElem check = Gf2mField::add(field_.sqr(z), z);
  if (!(check == c)) return false;
  *y = field_.mul(x, z);
  return true;
}

Bytes Ec2mCurve::encode_point(const Ec2mPoint& pt) const {
  Bytes out;
  if (pt.infinity) {
    out.push_back(0x00);
    return out;
  }
  out.push_back(0x04);
  append(out, field_.encode(pt.x));
  append(out, field_.encode(pt.y));
  return out;
}

Result<Ec2mPoint> Ec2mCurve::decode_point(BytesView data) const {
  const size_t fb = field_.elem_bytes();
  if (data.size() == 1 && data[0] == 0x00) return Ec2mPoint::at_infinity();
  if (data.size() != 1 + 2 * fb || data[0] != 0x04)
    return err(Code::kInvalidArgument, "bad point encoding");
  Ec2mPoint pt = Ec2mPoint::affine(field_.decode(data.subspan(1, fb)),
                                   field_.decode(data.subspan(1 + fb, fb)));
  if (!on_curve(pt)) return err(Code::kCryptoError, "point not on curve");
  return pt;
}

const Ec2mCurve& curve_b283() {
  static const Ec2mCurve curve("B-283", gf2m_283(), Gf2mField::one(),
                               derive_elem(gf2m_283(), "QTLS-B283-b"));
  return curve;
}

const Ec2mCurve& curve_b409() {
  static const Ec2mCurve curve("B-409", gf2m_409(), Gf2mField::one(),
                               derive_elem(gf2m_409(), "QTLS-B409-b"));
  return curve;
}

const Ec2mCurve& curve_k283() {
  static const Ec2mCurve curve("K-283", gf2m_283(), Gf2mField::zero(),
                               Gf2mField::one());
  return curve;
}

const Ec2mCurve& curve_k409() {
  static const Ec2mCurve curve("K-409", gf2m_409(), Gf2mField::zero(),
                               Gf2mField::one());
  return curve;
}

Ec2mKeyPair ec2m_generate_key(const Ec2mCurve& curve, HmacDrbg& rng) {
  for (;;) {
    Bytes priv = rng.generate(curve.scalar_bytes());
    // Keep scalars below the field degree so mul cost is uniform.
    priv[0] &= 0x3f;
    Ec2mPoint pub = curve.mul_base(priv);
    if (!pub.infinity) return Ec2mKeyPair{std::move(priv), pub};
  }
}

Result<Bytes> ec2m_shared_secret(const Ec2mCurve& curve, BytesView priv,
                                 const Ec2mPoint& peer) {
  if (peer.infinity || !curve.on_curve(peer))
    return err(Code::kCryptoError, "invalid peer point");
  const Ec2mPoint shared = curve.mul(priv, peer);
  if (shared.infinity)
    return err(Code::kCryptoError, "degenerate ECDH result");
  return curve.field().encode(shared.x);
}

}  // namespace qtls
