#include "crypto/kdf.h"

namespace qtls {

Bytes tls12_prf(HashAlg alg, BytesView secret, const std::string& label,
                BytesView seed, size_t out_len) {
  // P_hash(secret, label + seed)
  Bytes label_seed = to_bytes(label);
  append(label_seed, seed);

  Bytes out;
  out.reserve(out_len);
  Bytes a = hmac(alg, secret, label_seed);  // A(1)
  while (out.size() < out_len) {
    Bytes a_seed = a;
    append(a_seed, label_seed);
    Bytes chunk = hmac(alg, secret, a_seed);
    const size_t take = std::min(chunk.size(), out_len - out.size());
    out.insert(out.end(), chunk.begin(), chunk.begin() + static_cast<ptrdiff_t>(take));
    a = hmac(alg, secret, a);  // A(i+1)
  }
  return out;
}

Bytes hkdf_extract(HashAlg alg, BytesView salt, BytesView ikm) {
  Bytes s(salt.begin(), salt.end());
  if (s.empty()) s.assign(hash_digest_size(alg), 0);
  return hmac(alg, s, ikm);
}

Bytes hkdf_expand(HashAlg alg, BytesView prk, BytesView info, size_t out_len) {
  const size_t digest = hash_digest_size(alg);
  Bytes out;
  out.reserve(out_len);
  Bytes t;
  uint8_t counter = 1;
  while (out.size() < out_len) {
    HmacCtx ctx(alg, prk);
    ctx.update(t);
    ctx.update(info);
    ctx.update(BytesView(&counter, 1));
    t = ctx.finish();
    const size_t take = std::min(digest, out_len - out.size());
    out.insert(out.end(), t.begin(), t.begin() + static_cast<ptrdiff_t>(take));
    ++counter;
  }
  return out;
}

Bytes hkdf_expand_label(HashAlg alg, BytesView secret, const std::string& label,
                        BytesView context, size_t out_len) {
  // struct { uint16 length; opaque label<7..255>; opaque context<0..255>; }
  Bytes info;
  append_u16(info, static_cast<uint16_t>(out_len));
  const std::string full_label = "tls13 " + label;
  append_u8(info, static_cast<uint8_t>(full_label.size()));
  append(info, to_bytes(full_label));
  append_u8(info, static_cast<uint8_t>(context.size()));
  append(info, context);
  return hkdf_expand(alg, secret, info, out_len);
}

Bytes tls13_derive_secret(HashAlg alg, BytesView secret,
                          const std::string& label, BytesView transcript_hash) {
  return hkdf_expand_label(alg, secret, label, transcript_hash,
                           hash_digest_size(alg));
}

HmacDrbg::HmacDrbg(HashAlg alg, BytesView seed) : alg_(alg) {
  k_.assign(hash_digest_size(alg), 0x00);
  v_.assign(hash_digest_size(alg), 0x01);
  update(seed);
}

void HmacDrbg::reseed(BytesView seed) { update(seed); }

void HmacDrbg::update(BytesView data) {
  {
    HmacCtx ctx(alg_, k_);
    ctx.update(v_);
    const uint8_t zero = 0x00;
    ctx.update(BytesView(&zero, 1));
    ctx.update(data);
    k_ = ctx.finish();
  }
  v_ = hmac(alg_, k_, v_);
  if (!data.empty()) {
    HmacCtx ctx(alg_, k_);
    ctx.update(v_);
    const uint8_t one = 0x01;
    ctx.update(BytesView(&one, 1));
    ctx.update(data);
    k_ = ctx.finish();
    v_ = hmac(alg_, k_, v_);
  }
}

void HmacDrbg::generate(uint8_t* out, size_t n) {
  size_t produced = 0;
  while (produced < n) {
    v_ = hmac(alg_, k_, v_);
    const size_t take = std::min(v_.size(), n - produced);
    std::copy(v_.begin(), v_.begin() + static_cast<ptrdiff_t>(take),
              out + produced);
    produced += take;
  }
  update({});
}

Bytes HmacDrbg::generate(size_t n) {
  Bytes out(n);
  generate(out.data(), n);
  return out;
}

}  // namespace qtls
