// Process-wide deterministic key material for tests, examples and benches.
// Keys are generated once per process from fixed DRBG seeds (RSA-2048
// generation costs ~a second with this bignum; everything downstream shares
// the cached copy).
#pragma once

#include "crypto/ec.h"
#include "crypto/kdf.h"
#include "crypto/rsa.h"

namespace qtls {

// RSA-2048 server key (e = 65537), deterministic.
const RsaPrivateKey& test_rsa2048();
// Smaller key for fast unit tests that only need algebra, not strength.
const RsaPrivateKey& test_rsa1024();

// ECDSA/ECDHE server keys on the prime curves.
const EcKeyPair& test_ec_key_p256();
const EcKeyPair& test_ec_key_p384();

// A deterministic DRBG for call sites that need reproducible randomness.
HmacDrbg make_test_drbg(uint64_t seed);

}  // namespace qtls
