#include "crypto/gf2m.h"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace qtls {

namespace {

int poly_degree(const uint64_t* w, size_t words) {
  for (size_t i = words; i-- > 0;) {
    if (w[i]) return static_cast<int>(i * 64) + 63 - std::countl_zero(w[i]);
  }
  return -1;
}

// t ^= src << bits, where src/dst are word arrays.
void xor_shifted(uint64_t* dst, const uint64_t* src, size_t src_words,
                 int bits) {
  const int word_shift = bits / 64;
  const int bit_shift = bits % 64;
  for (size_t i = 0; i < src_words; ++i) {
    if (!src[i]) continue;
    dst[i + static_cast<size_t>(word_shift)] ^= src[i] << bit_shift;
    if (bit_shift)
      dst[i + static_cast<size_t>(word_shift) + 1] ^=
          src[i] >> (64 - bit_shift);
  }
}

}  // namespace

Gf2mField::Gf2mField(std::vector<int> exponents) {
  if (exponents.size() < 2)
    throw std::invalid_argument("need at least x^m + 1");
  m_ = exponents.front();
  exps_.assign(exponents.begin() + 1, exponents.end());
  assert(m_ > 0 && m_ < static_cast<int>(kGf2mWords * 64));
}

void Gf2mField::reduce(std::array<uint64_t, 2 * kGf2mWords>& t) const {
  // Bit-serial reduction from the top; adequate for the real-execution plane
  // (the DES charges modelled costs).
  for (int i = poly_degree(t.data(), t.size()); i >= m_;
       i = poly_degree(t.data(), t.size())) {
    const int shift = i - m_;
    // x^i == x^shift * (sum of lower exponents)
    t[static_cast<size_t>(i) / 64] ^= 1ULL << (i % 64);
    for (int e : exps_) {
      const int pos = shift + e;
      t[static_cast<size_t>(pos) / 64] ^= 1ULL << (pos % 64);
    }
  }
}

Gf2mElem Gf2mField::mul(const Gf2mElem& a, const Gf2mElem& b) const {
  std::array<uint64_t, 2 * kGf2mWords> t{};
  // Right-to-left comb: for each bit position k, xor (a << k-within-word)
  // into t for every word of b with bit k set.
  std::array<uint64_t, kGf2mWords + 1> shifted{};
  for (size_t i = 0; i < kGf2mWords; ++i) shifted[i] = a.w[i];
  for (int k = 0; k < 64; ++k) {
    for (size_t j = 0; j < kGf2mWords; ++j) {
      if ((b.w[j] >> k) & 1) {
        for (size_t i = 0; i < shifted.size(); ++i) t[j + i] ^= shifted[i];
      }
    }
    if (k != 63) {
      // shifted <<= 1
      uint64_t carry = 0;
      for (size_t i = 0; i < shifted.size(); ++i) {
        const uint64_t next_carry = shifted[i] >> 63;
        shifted[i] = (shifted[i] << 1) | carry;
        carry = next_carry;
      }
    }
  }
  reduce(t);
  Gf2mElem out;
  for (size_t i = 0; i < kGf2mWords; ++i) out.w[i] = t[i];
  return out;
}

Gf2mElem Gf2mField::sqr(const Gf2mElem& a) const {
  // Squaring interleaves zero bits: expand each 32-bit half into 64 bits.
  static const auto kExpand = [] {
    std::array<uint16_t, 256> tab{};
    for (int v = 0; v < 256; ++v) {
      uint16_t r = 0;
      for (int b = 0; b < 8; ++b)
        if (v & (1 << b)) r |= static_cast<uint16_t>(1 << (2 * b));
      tab[static_cast<size_t>(v)] = r;
    }
    return tab;
  }();

  std::array<uint64_t, 2 * kGf2mWords> t{};
  for (size_t i = 0; i < kGf2mWords; ++i) {
    uint64_t lo = 0, hi = 0;
    for (int byte = 0; byte < 4; ++byte) {
      lo |= static_cast<uint64_t>(
                kExpand[(a.w[i] >> (8 * byte)) & 0xff])
            << (16 * byte);
      hi |= static_cast<uint64_t>(
                kExpand[(a.w[i] >> (32 + 8 * byte)) & 0xff])
            << (16 * byte);
    }
    t[2 * i] = lo;
    t[2 * i + 1] = hi;
  }
  reduce(t);
  Gf2mElem out;
  for (size_t i = 0; i < kGf2mWords; ++i) out.w[i] = t[i];
  return out;
}

Gf2mElem Gf2mField::inv(const Gf2mElem& a) const {
  assert(!a.is_zero());
  // Extended Euclid over GF(2)[x]: u*g1 + f*(...) = gcd. Oversized arrays
  // keep every shifted xor in bounds without degree-tracking subtleties.
  std::array<uint64_t, 2 * kGf2mWords> u{}, v{}, g1{}, g2{};
  for (size_t i = 0; i < kGf2mWords; ++i) u[i] = a.w[i];
  // v = reduction polynomial f
  v[static_cast<size_t>(m_) / 64] |= 1ULL << (m_ % 64);
  for (int e : exps_) v[static_cast<size_t>(e) / 64] |= 1ULL << (e % 64);
  g1[0] = 1;

  int du = poly_degree(u.data(), u.size());
  int dv = poly_degree(v.data(), v.size());
  while (du > 0) {
    int j = du - dv;
    if (j < 0) {
      std::swap(u, v);
      std::swap(g1, g2);
      std::swap(du, dv);
      j = -j;
    }
    xor_shifted(u.data(), v.data(), v.size() - static_cast<size_t>(j / 64 + 1),
                j);
    xor_shifted(g1.data(), g2.data(),
                g2.size() - static_cast<size_t>(j / 64 + 1), j);
    du = poly_degree(u.data(), u.size());
  }
  // du == 0 -> u == 1; g1 is the inverse (degree < m, already reduced since
  // all xors kept degree < m + 63 and f-degree steps keep g1 bounded).
  std::array<uint64_t, 2 * kGf2mWords> t{};
  for (size_t i = 0; i < g1.size(); ++i) t[i] = g1[i];
  reduce(t);
  Gf2mElem out;
  for (size_t i = 0; i < kGf2mWords; ++i) out.w[i] = t[i];
  return out;
}

int Gf2mField::trace(const Gf2mElem& a) const {
  // Tr(a) = sum a^{2^i}, i = 0..m-1.
  Gf2mElem acc = a;
  Gf2mElem t = a;
  for (int i = 1; i < m_; ++i) {
    t = sqr(t);
    acc = add(acc, t);
  }
  return acc.is_zero() ? 0 : (acc.is_one() ? 1 : -1);
}

Gf2mElem Gf2mField::half_trace(const Gf2mElem& a) const {
  // H(a) = sum a^{2^{2i}}, i = 0..(m-1)/2; solves z^2 + z = a for odd m when
  // Tr(a) = 0.
  Gf2mElem acc = a;
  Gf2mElem t = a;
  for (int i = 1; i <= (m_ - 1) / 2; ++i) {
    t = sqr(sqr(t));
    acc = add(acc, t);
  }
  return acc;
}

Bytes Gf2mField::encode(const Gf2mElem& a) const {
  const size_t len = elem_bytes();
  Bytes out(len, 0);
  for (size_t i = 0; i < len; ++i) {
    const size_t byte_from_lsb = len - 1 - i;
    out[i] = static_cast<uint8_t>(a.w[byte_from_lsb / 8] >>
                                  (8 * (byte_from_lsb % 8)));
  }
  return out;
}

Gf2mElem Gf2mField::decode(BytesView data) const {
  Gf2mElem out;
  const size_t len = data.size();
  for (size_t i = 0; i < len && i < kGf2mWords * 8; ++i) {
    const size_t byte_from_lsb = i;
    const size_t src = len - 1 - i;
    out.w[byte_from_lsb / 8] |= static_cast<uint64_t>(data[src])
                                << (8 * (byte_from_lsb % 8));
  }
  // Mask above m bits.
  for (int i = m_; i < static_cast<int>(kGf2mWords * 64); ++i) {
    out.w[static_cast<size_t>(i) / 64] &=
        ~(1ULL << (static_cast<size_t>(i) % 64));
  }
  return out;
}

const Gf2mField& gf2m_283() {
  static const Gf2mField field({283, 12, 7, 5, 0});
  return field;
}

const Gf2mField& gf2m_409() {
  static const Gf2mField field({409, 87, 0});
  return field;
}

}  // namespace qtls
