// RSA (PKCS#1 v1.5) — the asymmetric core of the TLS-RSA and ECDHE-RSA
// handshakes. The private operation uses the CRT; this is the op the paper
// offloads to QAT (qat_rsa_priv_dec / priv_enc in the QAT Engine).
#pragma once

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/bn.h"
#include "crypto/hash.h"

namespace qtls {

class HmacDrbg;

struct RsaPublicKey {
  Bignum n;
  Bignum e;

  size_t modulus_bytes() const { return n.byte_length(); }
};

struct RsaPrivateKey {
  RsaPublicKey pub;
  Bignum d;
  // CRT components.
  Bignum p, q, dp, dq, qinv;

  size_t modulus_bytes() const { return pub.modulus_bytes(); }

  // Serialization for key caching (hex fields, one per line).
  std::string serialize() const;
  static Result<RsaPrivateKey> deserialize(const std::string& text);
};

// Generates an RSA key with public exponent 65537.
RsaPrivateKey rsa_generate(size_t modulus_bits, HmacDrbg& rng);

// Raw modular exponentiation m^e mod n (no padding).
Bignum rsa_public_op(const RsaPublicKey& key, const Bignum& m);
// Raw CRT private op c^d mod n (no padding).
Bignum rsa_private_op(const RsaPrivateKey& key, const Bignum& c);

// PKCS#1 v1.5 signature over `digest` (DigestInfo omitted: the TLS 1.2
// ServerKeyExchange signature input is already hash output; we sign the
// digest bytes directly, both ends agree — see DESIGN.md §5).
Bytes rsa_sign_pkcs1(const RsaPrivateKey& key, BytesView digest);
Status rsa_verify_pkcs1(const RsaPublicKey& key, BytesView digest,
                        BytesView signature);

// PKCS#1 v1.5 type-2 encryption (the RSA-wrapped premaster secret).
Result<Bytes> rsa_encrypt_pkcs1(const RsaPublicKey& key, BytesView msg,
                                HmacDrbg& rng);
Result<Bytes> rsa_decrypt_pkcs1(const RsaPrivateKey& key, BytesView ciphertext);

}  // namespace qtls
