// RSA (PKCS#1 v1.5) — the asymmetric core of the TLS-RSA and ECDHE-RSA
// handshakes. The private operation uses the CRT; this is the op the paper
// offloads to QAT (qat_rsa_priv_dec / priv_enc in the QAT Engine).
#pragma once

#include <memory>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/bn.h"
#include "crypto/hash.h"

namespace qtls {

class HmacDrbg;

struct RsaPublicKey {
  Bignum n;
  Bignum e;
  // Montgomery context for n, built once at key load (precompute()) instead
  // of per rsa_public_op call. Shared: key copies reuse the same context.
  std::shared_ptr<const MontCtx> mont_n;

  size_t modulus_bytes() const { return n.byte_length(); }
  void precompute();
};

struct RsaPrivateKey {
  RsaPublicKey pub;
  Bignum d;
  // CRT components.
  Bignum p, q, dp, dq, qinv;
  // Montgomery contexts for p and q: the CRT private op costs two modular
  // exponentiations, and rebuilding a context per call (R^2 mod m needs
  // 2k shifted reductions) is pure per-handshake overhead.
  std::shared_ptr<const MontCtx> mont_p, mont_q;

  size_t modulus_bytes() const { return pub.modulus_bytes(); }
  // Build the cached Montgomery contexts. Key loaders (rsa_generate,
  // deserialize, keystore) call this; rsa_private_op falls back to the
  // uncached path when it was skipped.
  void precompute();

  // Serialization for key caching (hex fields, one per line).
  std::string serialize() const;
  static Result<RsaPrivateKey> deserialize(const std::string& text);
};

// Generates an RSA key with public exponent 65537.
RsaPrivateKey rsa_generate(size_t modulus_bits, HmacDrbg& rng);

// Raw modular exponentiation m^e mod n (no padding).
Bignum rsa_public_op(const RsaPublicKey& key, const Bignum& m);
// Raw CRT private op c^d mod n (no padding).
Bignum rsa_private_op(const RsaPrivateKey& key, const Bignum& c);

// PKCS#1 v1.5 signature over `digest` (DigestInfo omitted: the TLS 1.2
// ServerKeyExchange signature input is already hash output; we sign the
// digest bytes directly, both ends agree — see DESIGN.md §6).
Bytes rsa_sign_pkcs1(const RsaPrivateKey& key, BytesView digest);
Status rsa_verify_pkcs1(const RsaPublicKey& key, BytesView digest,
                        BytesView signature);

// PKCS#1 v1.5 type-2 encryption (the RSA-wrapped premaster secret).
Result<Bytes> rsa_encrypt_pkcs1(const RsaPublicKey& key, BytesView msg,
                                HmacDrbg& rng);
Result<Bytes> rsa_decrypt_pkcs1(const RsaPrivateKey& key, BytesView ciphertext);

}  // namespace qtls
