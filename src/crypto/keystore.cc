#include "crypto/keystore.h"

namespace qtls {

HmacDrbg make_test_drbg(uint64_t seed) {
  Bytes seed_bytes;
  append_u64(seed_bytes, seed);
  append(seed_bytes, to_bytes("qtls-test-drbg"));
  return HmacDrbg(HashAlg::kSha256, seed_bytes);
}

const RsaPrivateKey& test_rsa2048() {
  static const RsaPrivateKey key = [] {
    HmacDrbg rng = make_test_drbg(0x52534132303438ULL);  // "RSA2048"
    return rsa_generate(2048, rng);
  }();
  return key;
}

const RsaPrivateKey& test_rsa1024() {
  static const RsaPrivateKey key = [] {
    HmacDrbg rng = make_test_drbg(0x52534131303234ULL);
    return rsa_generate(1024, rng);
  }();
  return key;
}

const EcKeyPair& test_ec_key_p256() {
  static const EcKeyPair key = [] {
    HmacDrbg rng = make_test_drbg(0x45435032353600ULL);
    return ec_generate_key(curve_p256(), rng);
  }();
  return key;
}

const EcKeyPair& test_ec_key_p384() {
  static const EcKeyPair key = [] {
    HmacDrbg rng = make_test_drbg(0x45435033383400ULL);
    return ec_generate_key(curve_p384(), rng);
  }();
  return key;
}

}  // namespace qtls
