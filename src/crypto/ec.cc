#include "crypto/ec.h"

#include <algorithm>
#include <vector>

#include "crypto/kdf.h"
#include "crypto/primes.h"

namespace qtls {

// Jacobian point with coordinates in the Montgomery domain of the field.
struct EcCurve::Jacobian {
  Bignum x, y, z;  // infinity iff z == 0
  bool is_infinity() const { return z.is_zero(); }
};

EcCurve::EcCurve(std::string name, const std::string& p_hex,
                 const std::string& a_hex, const std::string& b_hex,
                 const std::string& gx_hex, const std::string& gy_hex,
                 const std::string& n_hex)
    : name_(std::move(name)),
      p_(Bignum::from_hex(p_hex)),
      a_(Bignum::from_hex(a_hex)),
      b_(Bignum::from_hex(b_hex)),
      gx_(Bignum::from_hex(gx_hex)),
      gy_(Bignum::from_hex(gy_hex)),
      n_(Bignum::from_hex(n_hex)),
      mont_(std::make_unique<MontCtx>(p_)) {
  a_mont_ = mont_->to_mont(a_);
  b_mont_ = mont_->to_mont(b_);
}

bool EcCurve::on_curve(const EcPoint& pt) const {
  if (pt.infinity) return true;
  if (Bignum::cmp(pt.x, p_) >= 0 || Bignum::cmp(pt.y, p_) >= 0) return false;
  // y^2 == x^3 + ax + b (mod p)
  const Bignum x = mont_->to_mont(pt.x);
  const Bignum y = mont_->to_mont(pt.y);
  const Bignum y2 = mont_->mul(y, y);
  const Bignum x2 = mont_->mul(x, x);
  const Bignum x3 = mont_->mul(x2, x);
  Bignum rhs = Bignum::mod_add(x3, mont_->mul(a_mont_, x), p_);
  rhs = Bignum::mod_add(rhs, b_mont_, p_);
  return Bignum::cmp(y2, rhs) == 0;
}

EcCurve::Jacobian EcCurve::to_jacobian(const EcPoint& pt) const {
  if (pt.infinity) return Jacobian{Bignum(), Bignum(), Bignum()};
  return Jacobian{mont_->to_mont(pt.x), mont_->to_mont(pt.y),
                  mont_->one_mont()};
}

EcPoint EcCurve::to_affine(const Jacobian& pt) const {
  if (pt.is_infinity()) return EcPoint::at_infinity();
  // x = X / Z^2, y = Y / Z^3
  const Bignum z_norm = mont_->from_mont(pt.z);
  const Bignum zinv = Bignum::mod_inverse(z_norm, p_);
  const Bignum zinv_m = mont_->to_mont(zinv);
  const Bignum zinv2 = mont_->mul(zinv_m, zinv_m);
  const Bignum zinv3 = mont_->mul(zinv2, zinv_m);
  return EcPoint::affine(mont_->from_mont(mont_->mul(pt.x, zinv2)),
                         mont_->from_mont(mont_->mul(pt.y, zinv3)));
}

// dbl-2007-bl style doubling (general a).
EcCurve::Jacobian EcCurve::jdbl(const Jacobian& pt) const {
  if (pt.is_infinity() || pt.y.is_zero())
    return Jacobian{Bignum(), Bignum(), Bignum()};
  const MontCtx& m = *mont_;
  const Bignum xx = m.mul(pt.x, pt.x);
  const Bignum yy = m.mul(pt.y, pt.y);
  const Bignum yyyy = m.mul(yy, yy);
  const Bignum zz = m.mul(pt.z, pt.z);
  // S = 2*((X+YY)^2 - XX - YYYY)
  Bignum t = Bignum::mod_add(pt.x, yy, p_);
  t = m.mul(t, t);
  t = Bignum::mod_sub(t, xx, p_);
  t = Bignum::mod_sub(t, yyyy, p_);
  const Bignum s = Bignum::mod_add(t, t, p_);
  // M = 3*XX + a*ZZ^2
  Bignum mm = Bignum::mod_add(xx, xx, p_);
  mm = Bignum::mod_add(mm, xx, p_);
  const Bignum zz2 = m.mul(zz, zz);
  mm = Bignum::mod_add(mm, m.mul(a_mont_, zz2), p_);
  // X3 = M^2 - 2S
  Bignum x3 = m.mul(mm, mm);
  x3 = Bignum::mod_sub(x3, Bignum::mod_add(s, s, p_), p_);
  // Y3 = M*(S - X3) - 8*YYYY
  Bignum y3 = m.mul(mm, Bignum::mod_sub(s, x3, p_));
  Bignum yyyy8 = Bignum::mod_add(yyyy, yyyy, p_);
  yyyy8 = Bignum::mod_add(yyyy8, yyyy8, p_);
  yyyy8 = Bignum::mod_add(yyyy8, yyyy8, p_);
  y3 = Bignum::mod_sub(y3, yyyy8, p_);
  // Z3 = (Y+Z)^2 - YY - ZZ = 2*Y*Z
  Bignum z3 = Bignum::mod_add(pt.y, pt.z, p_);
  z3 = m.mul(z3, z3);
  z3 = Bignum::mod_sub(z3, yy, p_);
  z3 = Bignum::mod_sub(z3, zz, p_);
  return Jacobian{x3, y3, z3};
}

// add-2007-bl general addition.
EcCurve::Jacobian EcCurve::jadd(const Jacobian& p1, const Jacobian& p2) const {
  if (p1.is_infinity()) return p2;
  if (p2.is_infinity()) return p1;
  const MontCtx& m = *mont_;
  const Bignum z1z1 = m.mul(p1.z, p1.z);
  const Bignum z2z2 = m.mul(p2.z, p2.z);
  const Bignum u1 = m.mul(p1.x, z2z2);
  const Bignum u2 = m.mul(p2.x, z1z1);
  const Bignum s1 = m.mul(m.mul(p1.y, p2.z), z2z2);
  const Bignum s2 = m.mul(m.mul(p2.y, p1.z), z1z1);
  if (Bignum::cmp(u1, u2) == 0) {
    if (Bignum::cmp(s1, s2) == 0) return jdbl(p1);
    return Jacobian{Bignum(), Bignum(), Bignum()};  // P + (-P) = O
  }
  const Bignum h = Bignum::mod_sub(u2, u1, p_);
  Bignum i = Bignum::mod_add(h, h, p_);
  i = m.mul(i, i);
  const Bignum j = m.mul(h, i);
  Bignum r = Bignum::mod_sub(s2, s1, p_);
  r = Bignum::mod_add(r, r, p_);
  const Bignum v = m.mul(u1, i);
  // X3 = r^2 - J - 2V
  Bignum x3 = m.mul(r, r);
  x3 = Bignum::mod_sub(x3, j, p_);
  x3 = Bignum::mod_sub(x3, Bignum::mod_add(v, v, p_), p_);
  // Y3 = r*(V - X3) - 2*S1*J
  Bignum y3 = m.mul(r, Bignum::mod_sub(v, x3, p_));
  Bignum s1j = m.mul(s1, j);
  y3 = Bignum::mod_sub(y3, Bignum::mod_add(s1j, s1j, p_), p_);
  // Z3 = ((Z1+Z2)^2 - Z1Z1 - Z2Z2) * H
  Bignum z3 = Bignum::mod_add(p1.z, p2.z, p_);
  z3 = m.mul(z3, z3);
  z3 = Bignum::mod_sub(z3, z1z1, p_);
  z3 = Bignum::mod_sub(z3, z2z2, p_);
  z3 = m.mul(z3, h);
  return Jacobian{x3, y3, z3};
}

EcPoint EcCurve::add(const EcPoint& p1, const EcPoint& p2) const {
  return to_affine(jadd(to_jacobian(p1), to_jacobian(p2)));
}

EcPoint EcCurve::dbl(const EcPoint& pt) const {
  return to_affine(jdbl(to_jacobian(pt)));
}

EcPoint EcCurve::mul(const Bignum& k, const EcPoint& pt) const {
  Bignum scalar = Bignum::cmp(k, n_) >= 0 ? Bignum::mod(k, n_) : k;
  if (scalar.is_zero() || pt.infinity) return EcPoint::at_infinity();

  // 4-bit fixed window.
  constexpr size_t kWindow = 4;
  const Jacobian base = to_jacobian(pt);
  std::vector<Jacobian> table(1 << kWindow,
                              Jacobian{Bignum(), Bignum(), Bignum()});
  table[1] = base;
  for (size_t i = 2; i < table.size(); ++i) table[i] = jadd(table[i - 1], base);

  const size_t bits = scalar.bit_length();
  const size_t windows = (bits + kWindow - 1) / kWindow;
  Jacobian acc{Bignum(), Bignum(), Bignum()};
  for (size_t w = windows; w-- > 0;) {
    for (size_t s = 0; s < kWindow; ++s) acc = jdbl(acc);
    uint64_t idx = 0;
    for (size_t b = kWindow; b-- > 0;)
      idx = (idx << 1) | (scalar.bit(w * kWindow + b) ? 1 : 0);
    if (idx != 0) acc = jadd(acc, table[idx]);
  }
  return to_affine(acc);
}

Bytes EcCurve::encode_point(const EcPoint& pt) const {
  const size_t fb = field_bytes();
  Bytes out;
  out.reserve(1 + 2 * fb);
  if (pt.infinity) {
    out.push_back(0x00);
    return out;
  }
  out.push_back(0x04);
  append(out, pt.x.to_bytes_be(fb));
  append(out, pt.y.to_bytes_be(fb));
  return out;
}

Result<EcPoint> EcCurve::decode_point(BytesView data) const {
  const size_t fb = field_bytes();
  if (data.size() == 1 && data[0] == 0x00) return EcPoint::at_infinity();
  if (data.size() != 1 + 2 * fb || data[0] != 0x04)
    return err(Code::kInvalidArgument, "bad point encoding");
  EcPoint pt = EcPoint::affine(Bignum::from_bytes_be(data.subspan(1, fb)),
                               Bignum::from_bytes_be(data.subspan(1 + fb, fb)));
  if (!on_curve(pt)) return err(Code::kCryptoError, "point not on curve");
  return pt;
}

const EcCurve& curve_p256() {
  static const EcCurve curve(
      "P-256",
      "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff",
      "ffffffff00000001000000000000000000000000fffffffffffffffffffffffc",
      "5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b",
      "6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296",
      "4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5",
      "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551");
  return curve;
}

const EcCurve& curve_p384() {
  static const EcCurve curve(
      "P-384",
      "fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe"
      "ffffffff0000000000000000ffffffff",
      "fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe"
      "ffffffff0000000000000000fffffffc",
      "b3312fa7e23ee7e4988e056be3f82d19181d9c6efe8141120314088f5013875a"
      "c656398d8a2ed19d2a85c8edd3ec2aef",
      "aa87ca22be8b05378eb1c71ef320ad746e1d3b628ba79b9859f741e082542a38"
      "5502f25dbf55296c3a545e3872760ab7",
      "3617de4a96262c6f5d9e98bf9292dc29f8f41dbd289a147ce9da3113b5f0b8c0"
      "0a60b1ce1d7e819d7a431d7c90ea0e5f",
      "ffffffffffffffffffffffffffffffffffffffffffffffffc7634d81f4372ddf"
      "581a0db248b0a77aecec196accc52973");
  return curve;
}

const char* curve_name(CurveId id) {
  switch (id) {
    case CurveId::kP256: return "P-256";
    case CurveId::kP384: return "P-384";
    case CurveId::kB283: return "B-283";
    case CurveId::kB409: return "B-409";
    case CurveId::kK283: return "K-283";
    case CurveId::kK409: return "K-409";
  }
  return "?";
}

bool curve_is_binary(CurveId id) {
  switch (id) {
    case CurveId::kB283:
    case CurveId::kB409:
    case CurveId::kK283:
    case CurveId::kK409:
      return true;
    default:
      return false;
  }
}

EcKeyPair ec_generate_key(const EcCurve& curve, HmacDrbg& rng) {
  for (;;) {
    Bignum d = random_below(curve.order(), rng);
    if (d.is_zero()) continue;
    return EcKeyPair{d, curve.mul_base(d)};
  }
}

Result<Bytes> ecdh_shared_secret(const EcCurve& curve, const Bignum& priv,
                                 const EcPoint& peer) {
  if (!curve.on_curve(peer) || peer.infinity)
    return err(Code::kCryptoError, "invalid peer point");
  const EcPoint shared = curve.mul(priv, peer);
  if (shared.infinity) return err(Code::kCryptoError, "degenerate ECDH result");
  return shared.x.to_bytes_be(curve.field_bytes());
}

Bytes EcdsaSignature::encode() const {
  // Fixed-width r || s keeps parsing trivial; width from r/s actual size is
  // ambiguous, so the caller supplies the curve on decode.
  const size_t w = std::max(r.byte_length(), s.byte_length());
  Bytes out;
  append(out, r.to_bytes_be(w));
  append(out, s.to_bytes_be(w));
  return out;
}

Result<EcdsaSignature> EcdsaSignature::decode(BytesView data,
                                              const EcCurve& curve) {
  (void)curve;
  if (data.size() % 2 != 0 || data.empty())
    return err(Code::kInvalidArgument, "bad signature encoding");
  const size_t half = data.size() / 2;
  return EcdsaSignature{Bignum::from_bytes_be(data.subspan(0, half)),
                        Bignum::from_bytes_be(data.subspan(half, half))};
}

namespace {
// Digest -> integer per FIPS 186-4: leftmost order-bits of the digest.
Bignum digest_to_scalar(const EcCurve& curve, BytesView digest) {
  Bignum z = Bignum::from_bytes_be(digest);
  const size_t order_bits = curve.order().bit_length();
  const size_t digest_bits = digest.size() * 8;
  if (digest_bits > order_bits) z = Bignum::shr(z, digest_bits - order_bits);
  return z;
}
}  // namespace

EcdsaSignature ecdsa_sign(const EcCurve& curve, const Bignum& priv,
                          BytesView digest, HmacDrbg& rng) {
  const Bignum& n = curve.order();
  const Bignum z = digest_to_scalar(curve, digest);
  for (;;) {
    Bignum k = random_below(n, rng);
    if (k.is_zero()) continue;
    const EcPoint kg = curve.mul_base(k);
    const Bignum r = Bignum::mod(kg.x, n);
    if (r.is_zero()) continue;
    const Bignum kinv = Bignum::mod_inverse(k, n);
    // s = k^-1 (z + r d) mod n
    Bignum s = Bignum::mod_mul(r, priv, n);
    s = Bignum::mod_add(s, Bignum::mod(z, n), n);
    s = Bignum::mod_mul(kinv, s, n);
    if (s.is_zero()) continue;
    return EcdsaSignature{r, s};
  }
}

Status ecdsa_verify(const EcCurve& curve, const EcPoint& pub, BytesView digest,
                    const EcdsaSignature& sig) {
  const Bignum& n = curve.order();
  if (sig.r.is_zero() || sig.s.is_zero() || Bignum::cmp(sig.r, n) >= 0 ||
      Bignum::cmp(sig.s, n) >= 0)
    return err(Code::kCryptoError, "signature out of range");
  if (!curve.on_curve(pub) || pub.infinity)
    return err(Code::kCryptoError, "invalid public key");
  const Bignum z = Bignum::mod(digest_to_scalar(curve, digest), n);
  const Bignum sinv = Bignum::mod_inverse(sig.s, n);
  const Bignum u1 = Bignum::mod_mul(z, sinv, n);
  const Bignum u2 = Bignum::mod_mul(sig.r, sinv, n);
  const EcPoint p1 = curve.mul_base(u1);
  const EcPoint p2 = curve.mul(u2, pub);
  const EcPoint sum = curve.add(p1, p2);
  if (sum.infinity) return err(Code::kCryptoError, "verification failed");
  if (Bignum::cmp(Bignum::mod(sum.x, n), sig.r) != 0)
    return err(Code::kCryptoError, "signature mismatch");
  return Status::ok();
}

}  // namespace qtls
