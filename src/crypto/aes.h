// AES-128/256 block cipher (FIPS 197) with CBC mode, plus the TLS
// "chained cipher" transform (AES-CBC + HMAC, MAC-then-encrypt) used by the
// AES128-SHA record protection the paper benchmarks in §5.4.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/hash.h"

namespace qtls {

class Aes {
 public:
  // key.size() must be 16 or 32.
  explicit Aes(BytesView key);

  void encrypt_block(const uint8_t in[16], uint8_t out[16]) const;
  void decrypt_block(const uint8_t in[16], uint8_t out[16]) const;

  size_t key_bits() const { return rounds_ == 10 ? 128 : 256; }

 private:
  int rounds_;
  // (rounds_ + 1) 16-byte round keys, column-major as in FIPS 197.
  std::array<uint8_t, 240> round_keys_;
};

// CBC with explicit IV; input must be a multiple of 16 (TLS pads first).
Bytes aes_cbc_encrypt(const Aes& aes, BytesView iv, BytesView plaintext);
// Same, writing into caller storage (out must hold plaintext.size() bytes).
void aes_cbc_encrypt_into(const Aes& aes, BytesView iv, BytesView plaintext,
                          uint8_t* out);
Result<Bytes> aes_cbc_decrypt(const Aes& aes, BytesView iv, BytesView ciphertext);

// TLS 1.2 CBC record protection, MAC-then-encrypt (RFC 5246 §6.2.3.2):
//   mac = HMAC(mac_key, seq || header || fragment)
//   padded = fragment || mac || pad bytes (each = pad_len) || pad_len
//   out = CBC-Encrypt(enc_key, iv, padded)
struct CbcHmacKeys {
  Bytes enc_key;
  Bytes mac_key;
  HashAlg mac_alg = HashAlg::kSha1;
};

Bytes cbc_hmac_seal(const CbcHmacKeys& keys, uint64_t seq, BytesView header,
                    BytesView iv, BytesView fragment);
// Appends the sealed record (same bytes as cbc_hmac_seal) to *out — the
// zero-copy path: ciphertext is encrypted directly into the output block.
void cbc_hmac_seal_into(const CbcHmacKeys& keys, uint64_t seq,
                        BytesView header, BytesView iv, BytesView fragment,
                        Bytes* out);
Result<Bytes> cbc_hmac_open(const CbcHmacKeys& keys, uint64_t seq,
                            BytesView header_without_len, BytesView iv,
                            BytesView ciphertext);

}  // namespace qtls
