// Prime-field elliptic curves (short Weierstrass y^2 = x^3 + ax + b) with
// Jacobian-coordinate arithmetic over Montgomery-domain field elements.
// Provides NIST P-256 and P-384 — the ECDHE groups and ECDSA curves of
// Figures 7b/7c/8.
#pragma once

#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/bn.h"

namespace qtls {

class HmacDrbg;

struct EcPoint {
  Bignum x;
  Bignum y;
  bool infinity = true;

  static EcPoint at_infinity() { return EcPoint{}; }
  static EcPoint affine(Bignum px, Bignum py) {
    return EcPoint{std::move(px), std::move(py), false};
  }
};

class EcCurve {
 public:
  EcCurve(std::string name, const std::string& p_hex, const std::string& a_hex,
          const std::string& b_hex, const std::string& gx_hex,
          const std::string& gy_hex, const std::string& n_hex);

  const std::string& name() const { return name_; }
  const Bignum& p() const { return p_; }
  const Bignum& a() const { return a_; }
  const Bignum& b() const { return b_; }
  const Bignum& order() const { return n_; }
  EcPoint generator() const { return EcPoint::affine(gx_, gy_); }
  size_t field_bytes() const { return p_.byte_length(); }

  bool on_curve(const EcPoint& pt) const;
  EcPoint add(const EcPoint& p1, const EcPoint& p2) const;
  EcPoint dbl(const EcPoint& pt) const;
  // Scalar multiplication k * pt (k reduced mod order internally).
  EcPoint mul(const Bignum& k, const EcPoint& pt) const;
  EcPoint mul_base(const Bignum& k) const { return mul(k, generator()); }

  // SEC1 uncompressed encoding: 0x04 || X || Y.
  Bytes encode_point(const EcPoint& pt) const;
  Result<EcPoint> decode_point(BytesView data) const;

  const MontCtx& field() const { return *mont_; }

 private:
  struct Jacobian;
  Jacobian to_jacobian(const EcPoint& pt) const;
  EcPoint to_affine(const Jacobian& pt) const;
  Jacobian jadd(const Jacobian& p1, const Jacobian& p2) const;
  Jacobian jdbl(const Jacobian& pt) const;

  std::string name_;
  Bignum p_, a_, b_, gx_, gy_, n_;
  std::unique_ptr<MontCtx> mont_;
  Bignum a_mont_, b_mont_;
};

// Built-in curves (lazily constructed singletons).
const EcCurve& curve_p256();
const EcCurve& curve_p384();

enum class CurveId : uint8_t {
  kP256 = 23,  // TLS NamedCurve secp256r1
  kP384 = 24,  // secp384r1
  kB283 = 9,   // sect283r1 (binary; see ec2m.h)
  kB409 = 11,  // sect409r1
  kK283 = 10,  // sect283k1
  kK409 = 12,  // sect409k1
};
const char* curve_name(CurveId id);
bool curve_is_binary(CurveId id);

struct EcKeyPair {
  Bignum priv;   // scalar d in [1, n-1]
  EcPoint pub;   // d * G
};

EcKeyPair ec_generate_key(const EcCurve& curve, HmacDrbg& rng);
// ECDH: x-coordinate of d * peer, serialized to field size.
Result<Bytes> ecdh_shared_secret(const EcCurve& curve, const Bignum& priv,
                                 const EcPoint& peer);

struct EcdsaSignature {
  Bignum r;
  Bignum s;

  Bytes encode() const;  // r || s, each padded to order size
  static Result<EcdsaSignature> decode(BytesView data, const EcCurve& curve);
};

EcdsaSignature ecdsa_sign(const EcCurve& curve, const Bignum& priv,
                          BytesView digest, HmacDrbg& rng);
Status ecdsa_verify(const EcCurve& curve, const EcPoint& pub, BytesView digest,
                    const EcdsaSignature& sig);

}  // namespace qtls
