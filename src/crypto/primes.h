// Probabilistic prime generation for RSA key generation: small-prime sieve
// followed by Miller–Rabin.
#pragma once

#include "crypto/bn.h"

namespace qtls {

class HmacDrbg;

// Miller–Rabin with `rounds` random bases (error < 4^-rounds).
bool is_probable_prime(const Bignum& n, int rounds, HmacDrbg& rng);

// Random `bits`-bit prime with the top two bits and the low bit set (so the
// product of two such primes has exactly 2*bits bits, as RSA needs).
Bignum generate_prime(size_t bits, HmacDrbg& rng, int mr_rounds = 12);

// Uniform random value in [0, bound).
Bignum random_below(const Bignum& bound, HmacDrbg& rng);
// Random value with exactly `bits` bits (top bit set).
Bignum random_bits(size_t bits, HmacDrbg& rng);

}  // namespace qtls
