#include "crypto/bn.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

namespace qtls {

using u128 = unsigned __int128;

void Bignum::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

Bignum Bignum::from_bytes_be(BytesView bytes) {
  Bignum out;
  out.limbs_.resize((bytes.size() + 7) / 8, 0);
  for (size_t i = 0; i < bytes.size(); ++i) {
    const size_t byte_from_lsb = bytes.size() - 1 - i;
    out.limbs_[byte_from_lsb / 8] |= static_cast<uint64_t>(bytes[i])
                                     << (8 * (byte_from_lsb % 8));
  }
  out.trim();
  return out;
}

Bignum Bignum::from_hex(const std::string& hex) {
  std::string h = hex;
  if (h.size() % 2 != 0) h.insert(h.begin(), '0');
  return from_bytes_be(qtls::from_hex(h));
}

Bytes Bignum::to_bytes_be(size_t width) const {
  size_t len = byte_length();
  if (len == 0) len = 1;
  if (width > len) len = width;
  Bytes out(len, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    for (size_t b = 0; b < 8; ++b) {
      const size_t byte_from_lsb = i * 8 + b;
      if (byte_from_lsb >= len) break;
      out[len - 1 - byte_from_lsb] =
          static_cast<uint8_t>(limbs_[i] >> (8 * b));
    }
  }
  return out;
}

std::string Bignum::to_hex() const {
  if (is_zero()) return "00";
  return qtls::to_hex(to_bytes_be());
}

size_t Bignum::bit_length() const {
  if (limbs_.empty()) return 0;
  return (limbs_.size() - 1) * 64 +
         (64 - static_cast<size_t>(std::countl_zero(limbs_.back())));
}

bool Bignum::bit(size_t i) const {
  const size_t limb_idx = i / 64;
  if (limb_idx >= limbs_.size()) return false;
  return (limbs_[limb_idx] >> (i % 64)) & 1;
}

int Bignum::cmp(const Bignum& a, const Bignum& b) {
  if (a.limbs_.size() != b.limbs_.size())
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  for (size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

Bignum Bignum::add(const Bignum& a, const Bignum& b) {
  const auto& x = a.limbs_.size() >= b.limbs_.size() ? a.limbs_ : b.limbs_;
  const auto& y = a.limbs_.size() >= b.limbs_.size() ? b.limbs_ : a.limbs_;
  Bignum out;
  out.limbs_.resize(x.size() + 1, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    u128 s = static_cast<u128>(x[i]) + (i < y.size() ? y[i] : 0) + carry;
    out.limbs_[i] = static_cast<uint64_t>(s);
    carry = static_cast<uint64_t>(s >> 64);
  }
  out.limbs_[x.size()] = carry;
  out.trim();
  return out;
}

Bignum Bignum::sub(const Bignum& a, const Bignum& b) {
  assert(cmp(a, b) >= 0 && "Bignum::sub underflow");
  Bignum out;
  out.limbs_.resize(a.limbs_.size(), 0);
  uint64_t borrow = 0;
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    const uint64_t bi = i < b.limbs_.size() ? b.limbs_[i] : 0;
    const uint64_t ai = a.limbs_[i];
    uint64_t d = ai - bi;
    const uint64_t borrow1 = ai < bi ? 1u : 0u;
    const uint64_t d2 = d - borrow;
    const uint64_t borrow2 = d < borrow ? 1u : 0u;
    out.limbs_[i] = d2;
    borrow = borrow1 | borrow2;
  }
  out.trim();
  return out;
}

Bignum Bignum::mul(const Bignum& a, const Bignum& b) {
  if (a.is_zero() || b.is_zero()) return Bignum();
  Bignum out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    uint64_t carry = 0;
    const uint64_t ai = a.limbs_[i];
    for (size_t j = 0; j < b.limbs_.size(); ++j) {
      u128 t = static_cast<u128>(ai) * b.limbs_[j] + out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<uint64_t>(t);
      carry = static_cast<uint64_t>(t >> 64);
    }
    out.limbs_[i + b.limbs_.size()] = carry;
  }
  out.trim();
  return out;
}

Bignum Bignum::shl(const Bignum& a, size_t bits) {
  if (a.is_zero() || bits == 0) {
    Bignum out = a;
    return out;
  }
  const size_t limb_shift = bits / 64;
  const size_t bit_shift = bits % 64;
  Bignum out;
  out.limbs_.assign(a.limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    out.limbs_[i + limb_shift] |= bit_shift ? (a.limbs_[i] << bit_shift)
                                            : a.limbs_[i];
    if (bit_shift)
      out.limbs_[i + limb_shift + 1] |= a.limbs_[i] >> (64 - bit_shift);
  }
  out.trim();
  return out;
}

Bignum Bignum::shr(const Bignum& a, size_t bits) {
  const size_t limb_shift = bits / 64;
  if (limb_shift >= a.limbs_.size()) return Bignum();
  const size_t bit_shift = bits % 64;
  Bignum out;
  out.limbs_.assign(a.limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.limbs_.size(); ++i) {
    out.limbs_[i] = bit_shift ? (a.limbs_[i + limb_shift] >> bit_shift)
                              : a.limbs_[i + limb_shift];
    if (bit_shift && i + limb_shift + 1 < a.limbs_.size())
      out.limbs_[i] |= a.limbs_[i + limb_shift + 1] << (64 - bit_shift);
  }
  out.trim();
  return out;
}

// Knuth TAOCP vol.2 algorithm D with 64-bit digits.
BnDivMod Bignum::divmod(const Bignum& a, const Bignum& b) {
  if (b.is_zero()) throw std::invalid_argument("Bignum division by zero");
  if (cmp(a, b) < 0) return {Bignum(), a};
  if (b.limbs_.size() == 1) {
    // Single-limb fast path.
    const uint64_t d = b.limbs_[0];
    Bignum q;
    q.limbs_.assign(a.limbs_.size(), 0);
    u128 rem = 0;
    for (size_t i = a.limbs_.size(); i-- > 0;) {
      u128 cur = (rem << 64) | a.limbs_[i];
      q.limbs_[i] = static_cast<uint64_t>(cur / d);
      rem = cur % d;
    }
    q.trim();
    return {q, Bignum(static_cast<uint64_t>(rem))};
  }

  // Normalize so the divisor's top limb has its high bit set.
  const size_t shift =
      static_cast<size_t>(std::countl_zero(b.limbs_.back()));
  Bignum u = shl(a, shift);
  Bignum v = shl(b, shift);
  const size_t n = v.limbs_.size();
  const size_t m = u.limbs_.size() - n;
  u.limbs_.resize(u.limbs_.size() + 1, 0);  // u[m+n] slot

  Bignum q;
  q.limbs_.assign(m + 1, 0);
  const uint64_t v1 = v.limbs_[n - 1];
  const uint64_t v2 = v.limbs_[n - 2];

  for (size_t j = m + 1; j-- > 0;) {
    const u128 top = (static_cast<u128>(u.limbs_[j + n]) << 64) |
                     u.limbs_[j + n - 1];
    u128 qhat = top / v1;
    u128 rhat = top % v1;
    while (qhat >> 64 ||
           qhat * v2 > ((rhat << 64) | u.limbs_[j + n - 2])) {
      --qhat;
      rhat += v1;
      if (rhat >> 64) break;
    }
    // u[j..j+n] -= qhat * v
    u128 borrow = 0;
    u128 carry = 0;
    for (size_t i = 0; i < n; ++i) {
      u128 p = qhat * v.limbs_[i] + carry;
      carry = p >> 64;
      const uint64_t plo = static_cast<uint64_t>(p);
      const uint64_t ui = u.limbs_[j + i];
      const uint64_t sub1 = ui - plo;
      uint64_t nb = ui < plo ? 1u : 0u;
      const uint64_t blo = static_cast<uint64_t>(borrow);
      const uint64_t sub2 = sub1 - blo;
      nb += sub1 < blo ? 1u : 0u;
      u.limbs_[j + i] = sub2;
      borrow = nb;
    }
    const u128 total_sub = carry + borrow;
    const uint64_t utop = u.limbs_[j + n];
    u.limbs_[j + n] = utop - static_cast<uint64_t>(total_sub);
    if (utop < static_cast<uint64_t>(total_sub)) {
      // qhat was one too large: add back.
      --qhat;
      u128 c = 0;
      for (size_t i = 0; i < n; ++i) {
        u128 s = static_cast<u128>(u.limbs_[j + i]) + v.limbs_[i] + c;
        u.limbs_[j + i] = static_cast<uint64_t>(s);
        c = s >> 64;
      }
      u.limbs_[j + n] += static_cast<uint64_t>(c);
    }
    q.limbs_[j] = static_cast<uint64_t>(qhat);
  }
  q.trim();
  u.trim();
  return {q, shr(u, shift)};
}

Bignum Bignum::mod_add(const Bignum& a, const Bignum& b, const Bignum& m) {
  Bignum s = add(a, b);
  if (cmp(s, m) >= 0) s = mod(s, m);
  return s;
}

Bignum Bignum::mod_sub(const Bignum& a, const Bignum& b, const Bignum& m) {
  Bignum ar = cmp(a, m) >= 0 ? mod(a, m) : a;
  Bignum br = cmp(b, m) >= 0 ? mod(b, m) : b;
  if (cmp(ar, br) >= 0) return sub(ar, br);
  return sub(add(ar, m), br);
}

Bignum Bignum::mod_mul(const Bignum& a, const Bignum& b, const Bignum& m) {
  return mod(mul(a, b), m);
}

Bignum Bignum::mod_exp(const Bignum& a, const Bignum& e, const Bignum& m) {
  if (m.is_zero()) throw std::invalid_argument("mod_exp modulus zero");
  if (m.is_one()) return Bignum();
  if (m.is_odd()) {
    MontCtx ctx(m);
    return ctx.exp(a, e);
  }
  // Rare path (even modulus): plain square-and-multiply.
  Bignum base = mod(a, m);
  Bignum result(1);
  for (size_t i = e.bit_length(); i-- > 0;) {
    result = mod_mul(result, result, m);
    if (e.bit(i)) result = mod_mul(result, base, m);
  }
  return result;
}

Bignum Bignum::gcd(const Bignum& a, const Bignum& b) {
  Bignum x = a, y = b;
  while (!y.is_zero()) {
    Bignum r = mod(x, y);
    x = y;
    y = r;
  }
  return x;
}

namespace {
// Signed value for the extended-Euclid bookkeeping.
struct SignedBig {
  Bignum mag;
  bool neg = false;

  static SignedBig diff(const SignedBig& a, const SignedBig& b) {
    // a - b
    if (a.neg == b.neg) {
      if (Bignum::cmp(a.mag, b.mag) >= 0)
        return {Bignum::sub(a.mag, b.mag), a.neg};
      return {Bignum::sub(b.mag, a.mag), !a.neg};
    }
    return {Bignum::add(a.mag, b.mag), a.neg};
  }
  static SignedBig mul(const SignedBig& a, const Bignum& b) {
    return {Bignum::mul(a.mag, b), a.neg};
  }
};
}  // namespace

Bignum Bignum::mod_inverse(const Bignum& a, const Bignum& m) {
  if (m.is_zero() || m.is_one()) return Bignum();
  Bignum r0 = m, r1 = mod(a, m);
  SignedBig t0{Bignum(), false}, t1{Bignum(1), false};
  while (!r1.is_zero()) {
    BnDivMod dm = divmod(r0, r1);
    SignedBig t2 = SignedBig::diff(t0, SignedBig::mul(t1, dm.quotient));
    r0 = r1;
    r1 = dm.remainder;
    t0 = t1;
    t1 = t2;
  }
  if (!r0.is_one()) return Bignum();  // not invertible
  if (t0.neg) return sub(m, mod(t0.mag, m));
  return mod(t0.mag, m);
}

// ---------------------------------------------------------------------------
// Montgomery arithmetic
// ---------------------------------------------------------------------------

namespace {
uint64_t neg_inv_mod_2_64(uint64_t n) {
  // Newton iteration: x_{k+1} = x_k (2 - n x_k); 6 iterations suffice for 64
  // bits starting from x ≡ n (mod 8) being its own inverse mod 8 for odd n.
  uint64_t x = n;
  for (int i = 0; i < 6; ++i) x *= 2 - n * x;
  return ~x + 1;  // -n^{-1}
}
}  // namespace

MontCtx::MontCtx(const Bignum& modulus) : n_(modulus) {
  if (!modulus.is_odd())
    throw std::invalid_argument("MontCtx requires odd modulus");
  k_ = n_.limb_count();
  n0inv_ = neg_inv_mod_2_64(n_.limb(0));
  // R^2 mod n, R = 2^(64k).
  Bignum r2 = Bignum::shl(Bignum(1), 64 * k_ * 2);
  rr_ = Bignum::mod(r2, n_);
}

Bignum MontCtx::to_mont(const Bignum& a) const { return mul(a, rr_); }

Bignum MontCtx::from_mont(const Bignum& a) const { return mul(a, Bignum(1)); }

// CIOS Montgomery multiplication.
Bignum MontCtx::mul(const Bignum& a, const Bignum& b) const {
  const size_t k = k_;
  // t has k+2 limbs.
  std::vector<uint64_t> t(k + 2, 0);
  for (size_t i = 0; i < k; ++i) {
    const uint64_t ai = a.limb(i);
    // t += ai * b
    uint64_t carry = 0;
    for (size_t j = 0; j < k; ++j) {
      u128 s = static_cast<u128>(ai) * b.limb(j) + t[j] + carry;
      t[j] = static_cast<uint64_t>(s);
      carry = static_cast<uint64_t>(s >> 64);
    }
    u128 s = static_cast<u128>(t[k]) + carry;
    t[k] = static_cast<uint64_t>(s);
    t[k + 1] = static_cast<uint64_t>(s >> 64);

    // m = t[0] * n0inv mod 2^64; t += m * n; t >>= 64
    const uint64_t m = t[0] * n0inv_;
    carry = 0;
    {
      u128 s0 = static_cast<u128>(m) * n_.limb(0) + t[0];
      carry = static_cast<uint64_t>(s0 >> 64);
    }
    for (size_t j = 1; j < k; ++j) {
      u128 sj = static_cast<u128>(m) * n_.limb(j) + t[j] + carry;
      t[j - 1] = static_cast<uint64_t>(sj);
      carry = static_cast<uint64_t>(sj >> 64);
    }
    u128 sk = static_cast<u128>(t[k]) + carry;
    t[k - 1] = static_cast<uint64_t>(sk);
    t[k] = t[k + 1] + static_cast<uint64_t>(sk >> 64);
    t[k + 1] = 0;
  }
  Bignum out;
  out.limbs().assign(t.begin(), t.begin() + static_cast<ptrdiff_t>(k + 1));
  out.trim();
  if (Bignum::cmp(out, n_) >= 0) out = Bignum::sub(out, n_);
  return out;
}

Bignum MontCtx::exp(const Bignum& a, const Bignum& e) const {
  if (e.is_zero()) return Bignum::mod(Bignum(1), n_);
  const Bignum base = to_mont(Bignum::mod(a, n_));

  // Fixed 4-bit windows.
  constexpr int kWindow = 4;
  std::vector<Bignum> table(1 << kWindow);
  table[0] = one_mont();
  table[1] = base;
  for (size_t i = 2; i < table.size(); ++i) table[i] = mul(table[i - 1], base);

  const size_t bits = e.bit_length();
  const size_t windows = (bits + kWindow - 1) / kWindow;
  Bignum acc = one_mont();
  for (size_t w = windows; w-- > 0;) {
    for (int s = 0; s < kWindow; ++s) acc = mul(acc, acc);
    uint64_t idx = 0;
    for (int b = kWindow - 1; b >= 0; --b) {
      idx = (idx << 1) | (e.bit(w * kWindow + static_cast<size_t>(b)) ? 1 : 0);
    }
    if (idx != 0) acc = mul(acc, table[idx]);
  }
  return from_mont(acc);
}

}  // namespace qtls
