#include "crypto/aes.h"

#include <cstring>
#include <stdexcept>

namespace qtls {

namespace {

// The S-box is generated (GF(2^8) inverse + affine map) rather than typed in,
// trading a few microseconds at startup for zero transcription risk.
struct SboxTables {
  uint8_t sbox[256];
  uint8_t inv_sbox[256];

  SboxTables() {
    // Build log/antilog tables over GF(2^8) with generator 3.
    uint8_t pow_tab[256];
    uint8_t log_tab[256] = {0};
    uint8_t x = 1;
    for (int i = 0; i < 255; ++i) {
      pow_tab[i] = x;
      log_tab[x] = static_cast<uint8_t>(i);
      // multiply x by 3 = x ^ xtime(x)
      uint8_t xt = static_cast<uint8_t>((x << 1) ^ ((x & 0x80) ? 0x1b : 0));
      x = static_cast<uint8_t>(x ^ xt);
    }
    pow_tab[255] = pow_tab[0];
    auto inv = [&](uint8_t v) -> uint8_t {
      if (v == 0) return 0;
      return pow_tab[255 - log_tab[v]];
    };
    for (int i = 0; i < 256; ++i) {
      uint8_t v = inv(static_cast<uint8_t>(i));
      // affine transform: bit b = v_b ^ v_{b+4} ^ v_{b+5} ^ v_{b+6} ^ v_{b+7}
      // ^ c_b with c = 0x63 (indices mod 8)
      uint8_t affine = 0;
      for (int b = 0; b < 8; ++b) {
        uint8_t bit = static_cast<uint8_t>(
            ((v >> b) ^ (v >> ((b + 4) & 7)) ^ (v >> ((b + 5) & 7)) ^
             (v >> ((b + 6) & 7)) ^ (v >> ((b + 7) & 7)) ^ (0x63 >> b)) &
            1);
        affine |= static_cast<uint8_t>(bit << b);
      }
      sbox[i] = affine;
    }
    for (int i = 0; i < 256; ++i) inv_sbox[sbox[i]] = static_cast<uint8_t>(i);
  }
};

const SboxTables& tables() {
  static const SboxTables t;
  return t;
}

inline uint8_t xtime(uint8_t v) {
  return static_cast<uint8_t>((v << 1) ^ ((v & 0x80) ? 0x1b : 0));
}

inline uint8_t gmul(uint8_t a, uint8_t b) {
  uint8_t r = 0;
  while (b) {
    if (b & 1) r ^= a;
    a = xtime(a);
    b >>= 1;
  }
  return r;
}

void sub_bytes(uint8_t s[16]) {
  const auto& t = tables();
  for (int i = 0; i < 16; ++i) s[i] = t.sbox[s[i]];
}

void inv_sub_bytes(uint8_t s[16]) {
  const auto& t = tables();
  for (int i = 0; i < 16; ++i) s[i] = t.inv_sbox[s[i]];
}

// State is column-major: s[4*c + r] is row r, column c.
void shift_rows(uint8_t s[16]) {
  uint8_t tmp[16];
  for (int c = 0; c < 4; ++c)
    for (int r = 0; r < 4; ++r) tmp[4 * c + r] = s[4 * ((c + r) % 4) + r];
  std::memcpy(s, tmp, 16);
}

void inv_shift_rows(uint8_t s[16]) {
  uint8_t tmp[16];
  for (int c = 0; c < 4; ++c)
    for (int r = 0; r < 4; ++r) tmp[4 * ((c + r) % 4) + r] = s[4 * c + r];
  std::memcpy(s, tmp, 16);
}

void mix_columns(uint8_t s[16]) {
  for (int c = 0; c < 4; ++c) {
    uint8_t* col = s + 4 * c;
    const uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = static_cast<uint8_t>(xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3);
    col[1] = static_cast<uint8_t>(a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3);
    col[2] = static_cast<uint8_t>(a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3));
    col[3] = static_cast<uint8_t>((xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3));
  }
}

void inv_mix_columns(uint8_t s[16]) {
  for (int c = 0; c < 4; ++c) {
    uint8_t* col = s + 4 * c;
    const uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = gmul(a0, 14) ^ gmul(a1, 11) ^ gmul(a2, 13) ^ gmul(a3, 9);
    col[1] = gmul(a0, 9) ^ gmul(a1, 14) ^ gmul(a2, 11) ^ gmul(a3, 13);
    col[2] = gmul(a0, 13) ^ gmul(a1, 9) ^ gmul(a2, 14) ^ gmul(a3, 11);
    col[3] = gmul(a0, 11) ^ gmul(a1, 13) ^ gmul(a2, 9) ^ gmul(a3, 14);
  }
}

}  // namespace

Aes::Aes(BytesView key) {
  const size_t nk = key.size() / 4;  // words
  if (key.size() != 16 && key.size() != 32)
    throw std::invalid_argument("AES key must be 16 or 32 bytes");
  rounds_ = key.size() == 16 ? 10 : 14;
  const size_t total_words = 4 * (static_cast<size_t>(rounds_) + 1);
  const auto& t = tables();

  uint8_t w[60][4];
  for (size_t i = 0; i < nk; ++i)
    for (int b = 0; b < 4; ++b) w[i][b] = key[4 * i + static_cast<size_t>(b)];

  uint8_t rcon = 1;
  for (size_t i = nk; i < total_words; ++i) {
    uint8_t temp[4];
    std::memcpy(temp, w[i - 1], 4);
    if (i % nk == 0) {
      // RotWord + SubWord + Rcon
      const uint8_t t0 = temp[0];
      temp[0] = static_cast<uint8_t>(t.sbox[temp[1]] ^ rcon);
      temp[1] = t.sbox[temp[2]];
      temp[2] = t.sbox[temp[3]];
      temp[3] = t.sbox[t0];
      rcon = xtime(rcon);
    } else if (nk > 6 && i % nk == 4) {
      for (int b = 0; b < 4; ++b) temp[b] = t.sbox[temp[b]];
    }
    for (int b = 0; b < 4; ++b) w[i][b] = w[i - nk][b] ^ temp[b];
  }
  for (size_t i = 0; i < total_words; ++i)
    std::memcpy(&round_keys_[4 * i], w[i], 4);
}

void Aes::encrypt_block(const uint8_t in[16], uint8_t out[16]) const {
  uint8_t s[16];
  std::memcpy(s, in, 16);
  for (int i = 0; i < 16; ++i) s[i] ^= round_keys_[i];
  for (int round = 1; round < rounds_; ++round) {
    sub_bytes(s);
    shift_rows(s);
    mix_columns(s);
    const uint8_t* rk = &round_keys_[16 * static_cast<size_t>(round)];
    for (int i = 0; i < 16; ++i) s[i] ^= rk[i];
  }
  sub_bytes(s);
  shift_rows(s);
  const uint8_t* rk = &round_keys_[16 * static_cast<size_t>(rounds_)];
  for (int i = 0; i < 16; ++i) s[i] ^= rk[i];
  std::memcpy(out, s, 16);
}

void Aes::decrypt_block(const uint8_t in[16], uint8_t out[16]) const {
  uint8_t s[16];
  std::memcpy(s, in, 16);
  const uint8_t* rk_last = &round_keys_[16 * static_cast<size_t>(rounds_)];
  for (int i = 0; i < 16; ++i) s[i] ^= rk_last[i];
  for (int round = rounds_ - 1; round >= 1; --round) {
    inv_shift_rows(s);
    inv_sub_bytes(s);
    const uint8_t* rk = &round_keys_[16 * static_cast<size_t>(round)];
    for (int i = 0; i < 16; ++i) s[i] ^= rk[i];
    inv_mix_columns(s);
  }
  inv_shift_rows(s);
  inv_sub_bytes(s);
  for (int i = 0; i < 16; ++i) s[i] ^= round_keys_[i];
  std::memcpy(out, s, 16);
}

void aes_cbc_encrypt_into(const Aes& aes, BytesView iv, BytesView plaintext,
                          uint8_t* out) {
  if (iv.size() != 16 || plaintext.size() % 16 != 0)
    throw std::invalid_argument("CBC: bad iv/plaintext size");
  uint8_t chain[16];
  std::memcpy(chain, iv.data(), 16);
  for (size_t off = 0; off < plaintext.size(); off += 16) {
    uint8_t block[16];
    for (int i = 0; i < 16; ++i)
      block[i] = plaintext[off + static_cast<size_t>(i)] ^ chain[i];
    aes.encrypt_block(block, out + off);
    std::memcpy(chain, out + off, 16);
  }
}

Bytes aes_cbc_encrypt(const Aes& aes, BytesView iv, BytesView plaintext) {
  Bytes out(plaintext.size());
  aes_cbc_encrypt_into(aes, iv, plaintext, out.data());
  return out;
}

Result<Bytes> aes_cbc_decrypt(const Aes& aes, BytesView iv,
                              BytesView ciphertext) {
  if (iv.size() != 16) return err(Code::kInvalidArgument, "CBC: bad iv");
  if (ciphertext.empty() || ciphertext.size() % 16 != 0)
    return err(Code::kInvalidArgument, "CBC: ciphertext not block-aligned");
  Bytes out(ciphertext.size());
  uint8_t chain[16];
  std::memcpy(chain, iv.data(), 16);
  for (size_t off = 0; off < ciphertext.size(); off += 16) {
    uint8_t block[16];
    aes.decrypt_block(&ciphertext[off], block);
    for (int i = 0; i < 16; ++i)
      out[off + static_cast<size_t>(i)] = block[i] ^ chain[i];
    std::memcpy(chain, &ciphertext[off], 16);
  }
  return out;
}

void cbc_hmac_seal_into(const CbcHmacKeys& keys, uint64_t seq,
                        BytesView header, BytesView iv, BytesView fragment,
                        Bytes* out) {
  // MAC over seq || header(with true fragment length) || fragment.
  HmacCtx mac(keys.mac_alg, keys.mac_key);
  Bytes seq_bytes;
  append_u64(seq_bytes, seq);
  mac.update(seq_bytes);
  mac.update(header);
  mac.update(fragment);
  Bytes tag = mac.finish();

  Bytes padded(fragment.begin(), fragment.end());
  append(padded, tag);
  const size_t pad_len = 16 - (padded.size() + 1) % 16;
  padded.insert(padded.end(), pad_len + 1, static_cast<uint8_t>(pad_len));

  Aes aes(keys.enc_key);
  // `iv` may alias *out (the record layer seals after the explicit IV it
  // wrote into the output block) — copy it before the resize can relocate.
  uint8_t iv_copy[16];
  if (iv.size() == 16) std::memcpy(iv_copy, iv.data(), 16);
  const size_t base = out->size();
  out->resize(base + padded.size());
  aes_cbc_encrypt_into(aes, BytesView(iv_copy, iv.size() == 16 ? 16 : 0),
                       padded, out->data() + base);
}

Bytes cbc_hmac_seal(const CbcHmacKeys& keys, uint64_t seq, BytesView header,
                    BytesView iv, BytesView fragment) {
  Bytes out;
  cbc_hmac_seal_into(keys, seq, header, iv, fragment, &out);
  return out;
}

Result<Bytes> cbc_hmac_open(const CbcHmacKeys& keys, uint64_t seq,
                            BytesView header_without_len, BytesView iv,
                            BytesView ciphertext) {
  Aes aes(keys.enc_key);
  QTLS_ASSIGN_OR_RETURN(Bytes padded, aes_cbc_decrypt(aes, iv, ciphertext));
  const size_t mac_len = hash_digest_size(keys.mac_alg);
  if (padded.empty()) return err(Code::kCryptoError, "empty record");
  const uint8_t pad_len = padded.back();
  if (padded.size() < static_cast<size_t>(pad_len) + 1 + mac_len)
    return err(Code::kCryptoError, "bad padding length");
  // All padding bytes must equal pad_len.
  uint8_t bad = 0;
  for (size_t i = padded.size() - 1 - pad_len; i < padded.size(); ++i)
    bad |= padded[i] ^ pad_len;
  if (bad) return err(Code::kCryptoError, "bad padding");
  const size_t frag_len = padded.size() - pad_len - 1 - mac_len;

  BytesView fragment(padded.data(), frag_len);
  BytesView tag(padded.data() + frag_len, mac_len);

  HmacCtx mac(keys.mac_alg, keys.mac_key);
  Bytes seq_bytes;
  append_u64(seq_bytes, seq);
  mac.update(seq_bytes);
  mac.update(header_without_len);
  Bytes len_bytes;
  append_u16(len_bytes, static_cast<uint16_t>(frag_len));
  mac.update(len_bytes);
  mac.update(fragment);
  Bytes expected = mac.finish();
  if (!ct_equal(tag, expected)) return err(Code::kCryptoError, "bad MAC");
  return Bytes(fragment.begin(), fragment.end());
}

}  // namespace qtls
