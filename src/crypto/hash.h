// Hash functions used by the TLS stack: SHA-1 (record MAC for AES128-SHA),
// SHA-256 (TLS 1.2 PRF, TLS 1.3 transcript), SHA-384 (PRF for *_SHA384
// suites), SHA-512 (backs SHA-384).
//
// A small streaming-context interface keeps HMAC/PRF/HKDF generic without
// virtual dispatch in the block loops.
#pragma once

#include <cstdint>
#include <memory>

#include "common/bytes.h"

namespace qtls {

enum class HashAlg : uint8_t { kSha1, kSha256, kSha384, kSha512 };

size_t hash_digest_size(HashAlg alg);
size_t hash_block_size(HashAlg alg);
const char* hash_name(HashAlg alg);

class HashCtx {
 public:
  virtual ~HashCtx() = default;
  virtual void update(BytesView data) = 0;
  virtual Bytes finish() = 0;  // context unusable afterwards
  virtual std::unique_ptr<HashCtx> clone() const = 0;
};

std::unique_ptr<HashCtx> make_hash(HashAlg alg);

Bytes hash(HashAlg alg, BytesView data);

// --- concrete one-shot helpers ---
Bytes sha1(BytesView data);
Bytes sha256(BytesView data);
Bytes sha384(BytesView data);
Bytes sha512(BytesView data);

// HMAC (FIPS 198-1).
class HmacCtx {
 public:
  HmacCtx(HashAlg alg, BytesView key);
  void update(BytesView data);
  Bytes finish();
  HashAlg alg() const { return alg_; }

 private:
  HashAlg alg_;
  Bytes opad_key_;  // key xor opad
  std::unique_ptr<HashCtx> inner_;
};

Bytes hmac(HashAlg alg, BytesView key, BytesView data);

}  // namespace qtls
