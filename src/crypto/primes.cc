#include "crypto/primes.h"

#include <array>

#include "crypto/kdf.h"

namespace qtls {

namespace {

// Primes below 1000 for fast trial division.
constexpr std::array<uint32_t, 168> kSmallPrimes = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
    191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263,
    269, 271, 277, 281, 283, 293, 307, 311, 313, 317, 331, 337, 347, 349,
    353, 359, 367, 373, 379, 383, 389, 397, 401, 409, 419, 421, 431, 433,
    439, 443, 449, 457, 461, 463, 467, 479, 487, 491, 499, 503, 509, 521,
    523, 541, 547, 557, 563, 569, 571, 577, 587, 593, 599, 601, 607, 613,
    617, 619, 631, 641, 643, 647, 653, 659, 661, 673, 677, 683, 691, 701,
    709, 719, 727, 733, 739, 743, 751, 757, 761, 769, 773, 787, 797, 809,
    811, 821, 823, 827, 829, 839, 853, 857, 859, 863, 877, 881, 883, 887,
    907, 911, 919, 929, 937, 941, 947, 953, 967, 971, 977, 983, 991, 997};

uint64_t mod_small(const Bignum& n, uint64_t d) {
  // Horner over limbs, most significant first.
  using u128 = unsigned __int128;
  u128 rem = 0;
  const auto& limbs = n.limbs();
  for (size_t i = limbs.size(); i-- > 0;)
    rem = ((rem << 64) | limbs[i]) % d;
  return static_cast<uint64_t>(rem);
}

}  // namespace

Bignum random_bits(size_t bits, HmacDrbg& rng) {
  const size_t nbytes = (bits + 7) / 8;
  Bytes raw = rng.generate(nbytes);
  // Clear excess top bits, then force the top bit.
  const size_t excess = nbytes * 8 - bits;
  raw[0] &= static_cast<uint8_t>(0xff >> excess);
  raw[0] |= static_cast<uint8_t>(0x80 >> excess);
  return Bignum::from_bytes_be(raw);
}

Bignum random_below(const Bignum& bound, HmacDrbg& rng) {
  const size_t bits = bound.bit_length();
  const size_t nbytes = (bits + 7) / 8;
  for (;;) {
    Bytes raw = rng.generate(nbytes);
    const size_t excess = nbytes * 8 - bits;
    raw[0] &= static_cast<uint8_t>(0xff >> excess);
    Bignum candidate = Bignum::from_bytes_be(raw);
    if (Bignum::cmp(candidate, bound) < 0) return candidate;
  }
}

bool is_probable_prime(const Bignum& n, int rounds, HmacDrbg& rng) {
  if (n.is_zero() || n.is_one()) return false;
  for (uint32_t p : kSmallPrimes) {
    const Bignum bp(p);
    if (n == bp) return true;
    if (mod_small(n, p) == 0) return false;
  }
  if (!n.is_odd()) return false;

  // n - 1 = d * 2^s
  const Bignum n_minus_1 = Bignum::sub(n, Bignum(1));
  size_t s = 0;
  Bignum d = n_minus_1;
  while (!d.is_odd()) {
    d = Bignum::shr(d, 1);
    ++s;
  }

  MontCtx ctx(n);
  const Bignum two(2);
  const Bignum n_minus_2 = Bignum::sub(n, two);
  for (int round = 0; round < rounds; ++round) {
    // a in [2, n-2]
    Bignum a = Bignum::add(random_below(n_minus_2, rng), two);
    if (Bignum::cmp(a, n_minus_1) >= 0) a = two;
    Bignum x = ctx.exp(a, d);
    if (x.is_one() || x == n_minus_1) continue;
    bool witness = true;
    for (size_t i = 1; i < s; ++i) {
      x = Bignum::mod_mul(x, x, n);
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

Bignum generate_prime(size_t bits, HmacDrbg& rng, int mr_rounds) {
  for (;;) {
    Bignum candidate = random_bits(bits, rng);
    // Top two bits set (so p*q keeps 2*bits bits), low bit set (odd).
    if (!candidate.bit(bits - 2))
      candidate = Bignum::add(candidate, Bignum::shl(Bignum(1), bits - 2));
    if (!candidate.is_odd()) candidate = Bignum::add(candidate, Bignum(1));
    if (is_probable_prime(candidate, mr_rounds, rng)) return candidate;
  }
}

}  // namespace qtls
