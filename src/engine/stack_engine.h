// Stack-async offload adapter — the paper's first-generation §4.1
// implementation (Figure 5), kept alongside fiber async just as the authors
// kept both: instead of a fiber that pauses anywhere, the call site carries
// an explicit state flag and re-enters the same operation, carefully
// skipping the parts that already ran.
//
//   state idle/retry : submit the crypto request
//       -> kPaused on success (flag := inflight)
//       -> kRetry  when the request ring is full (flag := retry)
//   state inflight   : response not yet retrieved -> kPaused
//   state ready      : consume the result -> kDone / kError (flag := idle)
//
// The trade-off the paper describes: no fiber management cost (see
// bench/micro_async), but the API is intrusive — every caller must be
// written as a re-entrant state machine, which is why OpenSSL rejected it
// and why the TLS layer here uses fiber async.
#pragma once

#include "asyncx/stack_async.h"
#include "asyncx/wait_ctx.h"
#include "engine/provider.h"
#include "qat/device.h"

namespace qtls::engine {

enum class StackStep : uint8_t { kPaused, kRetry, kDone, kError };

// One in-flight operation slot; embed one per connection (each connection
// has at most one async crypto op at a time, §3.3).
class StackAsyncOp {
 public:
  bool idle() const { return slot_.idle(); }
  Status status() const { return status_; }
  // Submissions made for the current logical op (1 + retries so far).
  int attempts() const { return attempts_; }

 private:
  friend class StackAsyncEngine;
  asyncx::StackAsyncSlot<Result<Bytes>> slot_;
  Status status_;
  int attempts_ = 0;
  uint64_t backoff_until_ns_ = 0;  // earliest resubmission (steady clock)
};

struct StackEngineConfig {
  // Transient device errors resubmit up to max_retries times with capped
  // exponential backoff — non-blocking: during backoff run() returns
  // kRetry without submitting, so the event loop keeps turning and the
  // caller simply re-enters later (the natural stack-async idiom).
  int max_retries = 3;
  uint64_t retry_backoff_base_us = 50;
  uint64_t retry_backoff_cap_us = 2'000;
};

class StackAsyncEngine {
 public:
  explicit StackAsyncEngine(qat::CryptoInstance* instance,
                            StackEngineConfig config = {})
      : instance_(instance), config_(config) {}

  // Start-or-resume `op`. On first entry (idle/retry) submits `compute` as
  // an offload of the given kind; on re-entry after the response callback,
  // moves the result into *out. `wctx` (nullable) receives the async event
  // notification when the response is retrieved.
  //
  // `compute` is only read on submission entries — re-entries may pass any
  // callable (it is ignored), mirroring how Figure 5's re-invoked crypto
  // API jumps over the submission block.
  StackStep run(StackAsyncOp* op, qat::OpKind kind,
                std::function<Result<Bytes>()> compute, Bytes* out,
                asyncx::WaitCtx* wctx = nullptr);

  // Drain responses (flips slots from inflight to ready).
  size_t poll(size_t max = static_cast<size_t>(-1)) {
    return instance_->poll(max);
  }

  uint64_t submitted() const { return submitted_; }
  uint64_t ring_full_events() const { return ring_full_; }
  uint64_t device_errors() const { return device_errors_; }
  uint64_t op_retries() const { return op_retries_; }

 private:
  qat::CryptoInstance* instance_;
  StackEngineConfig config_;
  uint64_t next_id_ = 1;
  uint64_t submitted_ = 0;
  uint64_t ring_full_ = 0;
  uint64_t device_errors_ = 0;  // responses with a device failure status
  uint64_t op_retries_ = 0;     // resubmissions after transient errors
};

}  // namespace qtls::engine
