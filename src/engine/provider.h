// Crypto provider interface — the seam where the paper swaps software
// crypto for QAT offload. The TLS library calls through this interface for
// every operation in Table 1 plus record protection; implementations:
//
//  * SoftwareProvider — the paper's SW baseline ("modern AES-NI
//    instructions" stands in for "runs on the CPU in this process").
//  * QatEngineProvider (engine/qat_engine.h) — offloads to the QAT device
//    model, in straight/blocking mode (QAT+S) or async mode (QAT+A/AH/QTLS).
//
// The interface is synchronous by contract: in async mode the QAT engine
// pauses the surrounding fiber (asyncx::pause_job) inside the call, exactly
// as OpenSSL's QAT Engine does, so the TLS code is identical either way.
#pragma once

#include <span>
#include <string>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/aes.h"
#include "crypto/ec.h"
#include "crypto/ec2m.h"
#include "crypto/kdf.h"
#include "crypto/rsa.h"

namespace qtls::engine {

using qtls::CurveId;

// An ephemeral ECDHE key share, curve-generic (prime or binary field).
struct KeyShare {
  CurveId curve = CurveId::kP256;
  Bytes priv;       // big-endian scalar
  Bytes pub_point;  // SEC1 uncompressed encoding
};

// One record of a batched seal: sealed bytes are APPENDED to *out (the
// caller pre-fills any prefix, e.g. the CBC explicit IV), so a provider can
// encrypt directly into the output block with no staging copy.
struct CipherSealJob {
  uint64_t seq = 0;
  BytesView header;    // 5-byte record header with the true fragment length
  BytesView iv;        // explicit IV (also the first bytes of *out)
  BytesView fragment;  // plaintext
  Bytes* out = nullptr;
};

struct AeadSealJob {
  BytesView nonce;      // per-record nonce (static iv XOR seq)
  BytesView aad;        // additional data with the protected length
  BytesView plaintext;  // fragment
  Bytes* out = nullptr;
};

class CryptoProvider {
 public:
  virtual ~CryptoProvider() = default;

  virtual const char* name() const = 0;

  // --- asymmetric ---------------------------------------------------------
  virtual Result<Bytes> rsa_sign(const RsaPrivateKey& key,
                                 BytesView digest) = 0;
  virtual Result<Bytes> rsa_decrypt(const RsaPrivateKey& key,
                                    BytesView ciphertext) = 0;
  virtual Result<KeyShare> ecdhe_keygen(CurveId curve) = 0;
  virtual Result<Bytes> ecdhe_derive(const KeyShare& mine,
                                     BytesView peer_point) = 0;
  // Prime curves only (see DESIGN.md §6 on binary-curve ECDSA).
  virtual Result<Bytes> ecdsa_sign(CurveId curve, const Bignum& priv,
                                   BytesView digest) = 0;

  // --- key derivation -------------------------------------------------------
  virtual Result<Bytes> prf_tls12(HashAlg alg, BytesView secret,
                                  const std::string& label, BytesView seed,
                                  size_t out_len) = 0;

  // --- record protection ----------------------------------------------------
  virtual Result<Bytes> cipher_seal(const CbcHmacKeys& keys, uint64_t seq,
                                    BytesView header, BytesView iv,
                                    BytesView fragment) = 0;
  virtual Result<Bytes> cipher_open(const CbcHmacKeys& keys, uint64_t seq,
                                    BytesView header_without_len, BytesView iv,
                                    BytesView ciphertext) = 0;
  // AEAD (AES-GCM) record protection — the TLS 1.3 path.
  virtual Result<Bytes> aead_seal(BytesView key, BytesView nonce,
                                  BytesView aad, BytesView plaintext) = 0;
  virtual Result<Bytes> aead_open(BytesView key, BytesView nonce,
                                  BytesView aad, BytesView ciphertext) = 0;

  // Batched record seal: seal every job, appending into job.out. The
  // defaults loop the single-record virtuals (one result copy per record);
  // the software provider seals straight into job.out and the QAT engine
  // submits the whole span as ONE device batch (qat submit_batch, §3.2).
  virtual Status cipher_seal_batch(const CbcHmacKeys& keys,
                                   std::span<CipherSealJob> jobs);
  virtual Status aead_seal_batch(BytesView key, std::span<AeadSealJob> jobs);
};

// Pure-CPU provider; also the fallback inside the QAT engine for algorithms
// whose offload switch is off (ssl_engine `default_algorithm`).
// Not thread-safe: one provider per worker, like one SSL_CTX engine binding
// per Nginx worker.
class SoftwareProvider : public CryptoProvider {
 public:
  explicit SoftwareProvider(uint64_t drbg_seed = 0x51544c53);

  const char* name() const override { return "software"; }

  Result<Bytes> rsa_sign(const RsaPrivateKey& key, BytesView digest) override;
  Result<Bytes> rsa_decrypt(const RsaPrivateKey& key,
                            BytesView ciphertext) override;
  Result<KeyShare> ecdhe_keygen(CurveId curve) override;
  Result<Bytes> ecdhe_derive(const KeyShare& mine,
                             BytesView peer_point) override;
  Result<Bytes> ecdsa_sign(CurveId curve, const Bignum& priv,
                           BytesView digest) override;
  Result<Bytes> prf_tls12(HashAlg alg, BytesView secret,
                          const std::string& label, BytesView seed,
                          size_t out_len) override;
  Result<Bytes> cipher_seal(const CbcHmacKeys& keys, uint64_t seq,
                            BytesView header, BytesView iv,
                            BytesView fragment) override;
  Result<Bytes> cipher_open(const CbcHmacKeys& keys, uint64_t seq,
                            BytesView header_without_len, BytesView iv,
                            BytesView ciphertext) override;
  Result<Bytes> aead_seal(BytesView key, BytesView nonce, BytesView aad,
                          BytesView plaintext) override;
  Result<Bytes> aead_open(BytesView key, BytesView nonce, BytesView aad,
                          BytesView ciphertext) override;
  // Seals each record directly into job.out (no staging copies).
  Status cipher_seal_batch(const CbcHmacKeys& keys,
                           std::span<CipherSealJob> jobs) override;
  Status aead_seal_batch(BytesView key, std::span<AeadSealJob> jobs) override;

  HmacDrbg& drbg() { return drbg_; }

 private:
  HmacDrbg drbg_;
};

// Curve-family helpers shared by providers.
const EcCurve* prime_curve(CurveId id);      // nullptr for binary ids
const Ec2mCurve* binary_curve(CurveId id);   // nullptr for prime ids

// Pure functions used by both the software path and the QAT engine-thread
// compute closures.
Result<KeyShare> ecdhe_keygen_impl(CurveId curve, HmacDrbg& rng);
Result<Bytes> ecdhe_derive_impl(const KeyShare& mine, BytesView peer_point);

}  // namespace qtls::engine
