#include "engine/qat_engine.h"

#include <cassert>
#include <thread>

#include "common/log.h"
#include "crypto/gcm.h"

namespace qtls::engine {

namespace {
// Generic holder for a completed offload; `done` flips in the response
// callback (polling context), after `compute` ran on an engine thread.
template <typename T>
struct TypedOpState {
  std::atomic<bool> done{false};
  Result<T> result = Status(Code::kInternal, "not computed");
};
}  // namespace

QatEngineProvider::QatEngineProvider(qat::CryptoInstance* instance,
                                     QatEngineConfig config)
    : QatEngineProvider(std::vector<qat::CryptoInstance*>{instance}, config) {}

QatEngineProvider::QatEngineProvider(
    std::vector<qat::CryptoInstance*> instances, QatEngineConfig config)
    : instances_(std::move(instances)),
      config_(config),
      fallback_(config.drbg_seed ^ 0x5a5a5a5aULL) {
  assert(!instances_.empty());
  for (auto& c : inflight_) c.store(0, std::memory_order_relaxed);
}

size_t QatEngineProvider::poll(size_t max) {
  // One pass over every assigned instance (§2.3: a process may hold
  // instances on several endpoints); each instance drains its MPSC
  // response ring in batches.
  size_t got = 0;
  for (qat::CryptoInstance* inst : instances_) {
    got += inst->poll(max - got);
    if (got >= max) break;
  }
  ++stats_.polls;
  stats_.polled_responses += got;
  if (got > stats_.max_poll_batch) stats_.max_poll_batch = got;
  return got;
}

qat::OpKind QatEngineProvider::ec_op_kind(CurveId curve) {
  switch (curve) {
    case CurveId::kP256: return qat::OpKind::kEcP256;
    case CurveId::kP384: return qat::OpKind::kEcP384;
    case CurveId::kB283:
    case CurveId::kK283: return qat::OpKind::kEcBinary283;
    case CurveId::kB409:
    case CurveId::kK409: return qat::OpKind::kEcBinary409;
  }
  return qat::OpKind::kEcP256;
}

template <typename T>
Result<T> QatEngineProvider::offload(qat::OpKind kind,
                                     std::function<Result<T>()> compute) {
  using State = TypedOpState<T>;
  auto state = std::make_shared<State>();

  asyncx::AsyncJob* job = asyncx::get_current_job();
  const bool async = config_.offload_mode == OffloadMode::kAsync && job;
  asyncx::WaitCtx* wctx = async ? job->wait_ctx() : nullptr;

  const qat::OpClass cls = qat::op_class_of(kind);
  // Counted before submission so the heuristic poller sees the request the
  // instant it exists (paper §4.3 counts at crypto-function invocation).
  inflight_[static_cast<int>(cls)].fetch_add(1, std::memory_order_release);

  auto build_request = [&] {
    qat::CryptoRequest req;
    req.request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
    req.kind = kind;
    req.compute = [state, compute] {
      state->result = compute();
      return state->result.is_ok();
    };
    req.on_response = [this, state, wctx, cls](const qat::CryptoResponse&) {
      inflight_[static_cast<int>(cls)].fetch_sub(1, std::memory_order_release);
      state->done.store(true, std::memory_order_release);
      // Async event notification (§3.4): kernel-bypass callback if set on
      // the wait context, otherwise the notification FD.
      if (wctx) wctx->notify();
    };
    return req;
  };

  // Requests round-robin across the assigned instances (§2.3); submission
  // retains the §3.2 failure path: a full request ring pauses the job
  // (async) or backs off (sync) and retries.
  qat::CryptoInstance* target = instances_[
      next_instance_.fetch_add(1, std::memory_order_relaxed) %
      instances_.size()];
  while (!target->submit(build_request())) {
    ++stats_.submit_retries;
    if (async) {
      // Notify immediately so the application reschedules this handler to
      // retry the submission.
      if (wctx) wctx->notify();
      asyncx::pause_job();
    } else {
      target->poll();
      std::this_thread::yield();
    }
  }
  ++stats_.submitted;

  if (async) {
    // Pre-processing ends here: pause until the async event arrives. The
    // loop tolerates spurious resumes (e.g. a resume triggered by the
    // retry-notification racing an actual response).
    while (!state->done.load(std::memory_order_acquire)) asyncx::pause_job();
  } else {
    ++stats_.sync_blocks;
    // Straight offload (QAT+S): burn the event loop until the response is
    // back — this is precisely Figure 3's blocking.
    while (!state->done.load(std::memory_order_acquire)) {
      if (config_.self_poll_when_blocking) {
        target->poll();
      } else {
        std::this_thread::yield();  // an external polling thread retrieves
      }
    }
  }
  ++stats_.completed;  // incremented on the calling thread, not the poller
  return std::move(state->result);
}

Result<Bytes> QatEngineProvider::rsa_sign(const RsaPrivateKey& key,
                                          BytesView digest) {
  if (!config_.offload_rsa) return fallback_.rsa_sign(key, digest);
  Bytes digest_copy(digest.begin(), digest.end());
  const RsaPrivateKey* key_ptr = &key;  // keys outlive connections
  return offload<Bytes>(qat::OpKind::kRsa2048Priv,
                        [key_ptr, digest_copy]() -> Result<Bytes> {
                          Bytes sig = rsa_sign_pkcs1(*key_ptr, digest_copy);
                          if (sig.empty())
                            return err(Code::kInvalidArgument, "bad digest");
                          return sig;
                        });
}

Result<Bytes> QatEngineProvider::rsa_decrypt(const RsaPrivateKey& key,
                                             BytesView ciphertext) {
  if (!config_.offload_rsa) return fallback_.rsa_decrypt(key, ciphertext);
  Bytes ct(ciphertext.begin(), ciphertext.end());
  const RsaPrivateKey* key_ptr = &key;
  return offload<Bytes>(
      qat::OpKind::kRsa2048Priv,
      [key_ptr, ct]() -> Result<Bytes> { return rsa_decrypt_pkcs1(*key_ptr, ct); });
}

Result<KeyShare> QatEngineProvider::ecdhe_keygen(CurveId curve) {
  if (!config_.offload_ec) return fallback_.ecdhe_keygen(curve);
  // Engine threads need private randomness: derive a one-shot DRBG.
  const uint64_t nonce =
      engine_drbg_nonce_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t seed = config_.drbg_seed ^ (nonce * 0x9e3779b97f4a7c15ULL);
  return offload<KeyShare>(ec_op_kind(curve),
                           [curve, seed]() -> Result<KeyShare> {
                             Bytes sb;
                             append_u64(sb, seed);
                             HmacDrbg rng(HashAlg::kSha256, sb);
                             return ecdhe_keygen_impl(curve, rng);
                           });
}

Result<Bytes> QatEngineProvider::ecdhe_derive(const KeyShare& mine,
                                              BytesView peer_point) {
  if (!config_.offload_ec) return fallback_.ecdhe_derive(mine, peer_point);
  KeyShare share = mine;
  Bytes peer(peer_point.begin(), peer_point.end());
  return offload<Bytes>(ec_op_kind(mine.curve),
                        [share, peer]() -> Result<Bytes> {
                          return ecdhe_derive_impl(share, peer);
                        });
}

Result<Bytes> QatEngineProvider::ecdsa_sign(CurveId curve, const Bignum& priv,
                                            BytesView digest) {
  if (!config_.offload_ec) return fallback_.ecdsa_sign(curve, priv, digest);
  const EcCurve* c = prime_curve(curve);
  if (!c)
    return err(Code::kUnimplemented, "ECDSA restricted to prime curves");
  const uint64_t nonce =
      engine_drbg_nonce_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t seed = config_.drbg_seed ^ (nonce * 0xc2b2ae3d27d4eb4fULL);
  Bignum priv_copy = priv;
  Bytes digest_copy(digest.begin(), digest.end());
  return offload<Bytes>(
      ec_op_kind(curve), [c, priv_copy, digest_copy, seed]() -> Result<Bytes> {
        Bytes sb;
        append_u64(sb, seed);
        HmacDrbg rng(HashAlg::kSha256, sb);
        return qtls::ecdsa_sign(*c, priv_copy, digest_copy, rng).encode();
      });
}

Result<Bytes> QatEngineProvider::prf_tls12(HashAlg alg, BytesView secret,
                                           const std::string& label,
                                           BytesView seed, size_t out_len) {
  if (!config_.offload_prf)
    return fallback_.prf_tls12(alg, secret, label, seed, out_len);
  Bytes secret_copy(secret.begin(), secret.end());
  Bytes seed_copy(seed.begin(), seed.end());
  return offload<Bytes>(
      qat::OpKind::kPrfTls12,
      [alg, secret_copy, label, seed_copy, out_len]() -> Result<Bytes> {
        return tls12_prf(alg, secret_copy, label, seed_copy, out_len);
      });
}

Result<Bytes> QatEngineProvider::cipher_seal(const CbcHmacKeys& keys,
                                             uint64_t seq, BytesView header,
                                             BytesView iv, BytesView fragment) {
  if (!config_.offload_cipher)
    return fallback_.cipher_seal(keys, seq, header, iv, fragment);
  CbcHmacKeys keys_copy = keys;
  Bytes header_copy(header.begin(), header.end());
  Bytes iv_copy(iv.begin(), iv.end());
  Bytes frag_copy(fragment.begin(), fragment.end());
  return offload<Bytes>(
      qat::OpKind::kCipher16k,
      [keys_copy, seq, header_copy, iv_copy, frag_copy]() -> Result<Bytes> {
        return cbc_hmac_seal(keys_copy, seq, header_copy, iv_copy, frag_copy);
      });
}

Result<Bytes> QatEngineProvider::cipher_open(const CbcHmacKeys& keys,
                                             uint64_t seq,
                                             BytesView header_without_len,
                                             BytesView iv,
                                             BytesView ciphertext) {
  if (!config_.offload_cipher)
    return fallback_.cipher_open(keys, seq, header_without_len, iv, ciphertext);
  CbcHmacKeys keys_copy = keys;
  Bytes header_copy(header_without_len.begin(), header_without_len.end());
  Bytes iv_copy(iv.begin(), iv.end());
  Bytes ct_copy(ciphertext.begin(), ciphertext.end());
  return offload<Bytes>(
      qat::OpKind::kCipher16k,
      [keys_copy, seq, header_copy, iv_copy, ct_copy]() -> Result<Bytes> {
        return cbc_hmac_open(keys_copy, seq, header_copy, iv_copy, ct_copy);
      });
}

Result<Bytes> QatEngineProvider::aead_seal(BytesView key, BytesView nonce,
                                           BytesView aad,
                                           BytesView plaintext) {
  if (!config_.offload_cipher)
    return fallback_.aead_seal(key, nonce, aad, plaintext);
  Bytes k(key.begin(), key.end());
  Bytes n(nonce.begin(), nonce.end());
  Bytes a(aad.begin(), aad.end());
  Bytes pt(plaintext.begin(), plaintext.end());
  return offload<Bytes>(qat::OpKind::kCipher16k,
                        [k, n, a, pt]() -> Result<Bytes> {
                          return gcm_seal(k, n, a, pt);
                        });
}

Result<Bytes> QatEngineProvider::aead_open(BytesView key, BytesView nonce,
                                           BytesView aad,
                                           BytesView ciphertext) {
  if (!config_.offload_cipher)
    return fallback_.aead_open(key, nonce, aad, ciphertext);
  Bytes k(key.begin(), key.end());
  Bytes n(nonce.begin(), nonce.end());
  Bytes a(aad.begin(), aad.end());
  Bytes ct(ciphertext.begin(), ciphertext.end());
  return offload<Bytes>(qat::OpKind::kCipher16k,
                        [k, n, a, ct]() -> Result<Bytes> {
                          return gcm_open(k, n, a, ct);
                        });
}

}  // namespace qtls::engine
